// Snapshot-vs-rebuild differential check (the ingest half of the oracle
// suite): an epoch-published snapshot must be bit-identical to a
// from-scratch rebuild of the same edge set. A pending tuple or zombie
// leaking across publication, a stale degree, or a missed transpose mirror
// all show up as a diff here. Runs as a seeded fuzz sweep over mutation
// streams with multiple flush boundaries, for both graph kinds.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ingest/writer.hpp"

namespace ing = lagraph::ingest;
namespace svc = lagraph::service;
using grb::Index;

namespace {

// SplitMix64, as in the conformance fuzzer: same seed, same stream.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
};

constexpr Index kNodes = 48;

lagraph::Graph<double> seed_graph(Rng &rng, lagraph::Kind kind) {
  grb::Matrix<double> a(kNodes, kNodes);
  std::vector<Index> ri, ci;
  std::vector<double> vv;
  for (int e = 0; e < 96; ++e) {
    Index i = rng.below(kNodes), j = rng.below(kNodes);
    ri.push_back(i);
    ci.push_back(j);
    vv.push_back(static_cast<double>(1 + rng.below(8)));
    if (kind == lagraph::Kind::adjacency_undirected && i != j) {
      ri.push_back(j);
      ci.push_back(i);
      vv.push_back(vv.back());
    }
  }
  a.build(std::span<const Index>(ri), std::span<const Index>(ci),
          std::span<const double>(vv), grb::Second{});
  return lagraph::Graph<double>(std::move(a), kind);
}

std::vector<std::tuple<Index, Index, double>> tuples_of(
    const grb::Matrix<double> &a) {
  std::vector<std::tuple<Index, Index, double>> out;
  a.for_each([&](Index i, Index j, const double &v) {
    out.emplace_back(i, j, v);
  });
  return out;
}

// The reference model: a map folded in submission order — exactly the
// semantics the pending-op fold must reproduce across any number of
// flush boundaries.
void apply_ref(std::map<std::pair<Index, Index>, double> &ref,
               const ing::Mutation &m, lagraph::Kind kind) {
  auto one = [&](Index i, Index j) {
    const auto key = std::make_pair(i, j);
    switch (m.op) {
      case ing::MutationOp::insert: ref[key] = m.weight; break;
      case ing::MutationOp::remove: ref.erase(key); break;
      case ing::MutationOp::upsert: {
        auto it = ref.find(key);
        if (it == ref.end()) {
          ref[key] = m.weight;
        } else {
          it->second = it->second + m.weight;
        }
        break;
      }
    }
  };
  one(m.src, m.dst);
  if (kind == lagraph::Kind::adjacency_undirected && m.src != m.dst) {
    one(m.dst, m.src);
  }
}

void run_sweep(lagraph::Kind kind, std::uint64_t seed) {
  Rng rng(seed);
  auto initial = seed_graph(rng, kind);

  std::map<std::pair<Index, Index>, double> ref;
  initial.a.for_each([&](Index i, Index j, const double &v) {
    ref[{i, j}] = v;
  });

  ing::WriterConfig cfg;
  cfg.grace_depth = 2;
  ing::Writer w(std::move(initial), cfg);

  // Several publish rounds, each a batch of mixed mutations: every
  // publish_now is a flush boundary the incremental maintenance must
  // survive, with earlier rounds' merges already baked into the CSR.
  const int rounds = 4;
  for (int r = 0; r < rounds; ++r) {
    std::vector<ing::Mutation> batch;
    const int count = 40 + static_cast<int>(rng.below(40));
    for (int q = 0; q < count; ++q) {
      ing::Mutation m;
      const auto k = rng.below(10);
      m.op = k < 4   ? ing::MutationOp::insert
             : k < 7 ? ing::MutationOp::upsert
                     : ing::MutationOp::remove;
      m.src = rng.below(kNodes);
      m.dst = rng.below(kNodes);
      m.weight = static_cast<double>(1 + rng.below(8));
      batch.push_back(m);
      apply_ref(ref, m, kind);
    }
    ASSERT_EQ(w.submit_batch(batch), 0);
    ASSERT_EQ(w.publish_now(), 0) << w.error_message();
  }

  auto snap = w.current();
  ASSERT_NE(snap, nullptr);
  const auto &g = snap->graph();

  // From-scratch rebuild of the same edge set through make_snapshot.
  grb::Matrix<double> fresh(kNodes, kNodes);
  {
    std::vector<Index> ri, ci;
    std::vector<double> vv;
    for (const auto &[ij, v] : ref) {
      ri.push_back(ij.first);
      ci.push_back(ij.second);
      vv.push_back(v);
    }
    fresh.build(std::span<const Index>(ri), std::span<const Index>(ci),
                std::span<const double>(vv), grb::Second{});
  }
  svc::SnapshotPtr rebuilt;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(svc::make_snapshot(
                &rebuilt, lagraph::Graph<double>(std::move(fresh), kind), msg),
            LAGRAPH_OK)
      << msg;

  // Bit-identical structure and values (double compares exact: both sides
  // fold each position's ops in the same submission order).
  EXPECT_EQ(tuples_of(g.a), tuples_of(rebuilt->graph().a))
      << "kind=" << lagraph::kind_name(kind) << " seed=" << seed;
  // Incrementally maintained properties match the from-scratch ones.
  EXPECT_EQ(g.ndiag, rebuilt->graph().ndiag);
  if (g.at.has_value()) {
    ASSERT_TRUE(rebuilt->graph().at.has_value());
    EXPECT_EQ(tuples_of(*g.at), tuples_of(*rebuilt->graph().at));
  }
  ASSERT_TRUE(g.row_degree.has_value());
  for (Index i = 0; i < kNodes; ++i) {
    auto a = g.row_degree->get(i);
    auto b = rebuilt->graph().row_degree->get(i);
    EXPECT_EQ(a.has_value(), b.has_value()) << "row " << i;
    if (a && b) EXPECT_EQ(*a, *b) << "row " << i;
  }
  // And the whole graph is self-consistent (no zombie visible, degrees
  // match structure, AT really the transpose).
  EXPECT_EQ(lagraph::check_graph(g, msg), LAGRAPH_OK) << msg;
}

}  // namespace

TEST(IngestRebuild, DirectedFuzzSweep) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_sweep(lagraph::Kind::adjacency_directed, seed);
  }
}

TEST(IngestRebuild, UndirectedFuzzSweep) {
  for (std::uint64_t seed = 101; seed <= 108; ++seed) {
    run_sweep(lagraph::Kind::adjacency_undirected, seed);
  }
}

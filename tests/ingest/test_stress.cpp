// Reader/writer race stress (ctest -L concurrency; TSan target): N query
// threads run against a continuous mutation stream and assert that every
// snapshot they observe is internally consistent — degrees match the
// structure, nvals matches the row pointers (no zombie visible), epochs
// only move forward. The engine rides along so the full submit → snapshot
// bind → query path is exercised under live publication.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "ingest/writer.hpp"
#include "service/engine.hpp"

namespace ing = lagraph::ingest;
namespace svc = lagraph::service;
using grb::Index;

namespace {

constexpr Index kNodes = 96;

lagraph::Graph<double> ring_graph(lagraph::Kind kind) {
  grb::Matrix<double> a(kNodes, kNodes);
  std::vector<Index> ri, ci;
  std::vector<double> vv;
  for (Index i = 0; i < kNodes; ++i) {
    ri.push_back(i);
    ci.push_back((i + 1) % kNodes);
    vv.push_back(1.0);
    if (kind == lagraph::Kind::adjacency_undirected) {
      ri.push_back((i + 1) % kNodes);
      ci.push_back(i);
      vv.push_back(1.0);
    }
  }
  a.build(std::span<const Index>(ri), std::span<const Index>(ci),
          std::span<const double>(vv), grb::Second{});
  return lagraph::Graph<double>(std::move(a), kind);
}

// Everything a reader may legally conclude from one immutable snapshot.
void assert_snapshot_consistent(const svc::SnapshotPtr &snap) {
  const auto &g = snap->graph();
  ASSERT_TRUE(g.a.is_finalized());
  Index sum = 0;
  for (Index i = 0; i < g.a.nrows(); ++i) sum += g.a.row_nvals(i);
  // No zombie visible: the structure accounts for exactly nvals entries.
  ASSERT_EQ(sum, g.a.nvals());
  ASSERT_TRUE(g.row_degree.has_value());
  for (Index i = 0; i < g.a.nrows(); ++i) {
    auto d = g.row_degree->get(i);
    ASSERT_EQ(d ? *d : 0, static_cast<std::int64_t>(g.a.row_nvals(i)))
        << "degree of row " << i << " diverges in epoch " << snap->epoch();
  }
  ASSERT_GE(g.ndiag, 0);
}

void stress(lagraph::Kind kind) {
  svc::EngineConfig ecfg;
  ecfg.threads = 2;
  svc::Engine engine(ecfg);

  ing::WriterConfig wcfg;
  wcfg.publish_threshold = 64;
  ing::Writer writer(ring_graph(kind), wcfg,
                     [&](const svc::SnapshotPtr &s) {
                       engine.install_snapshot(s);
                     });

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  const int kReaders = 3;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = writer.current();
        if (snap == nullptr) continue;
        // Epochs only move forward from any single reader's view.
        if (snap->epoch() < last_epoch) {
          failures.fetch_add(1);
          return;
        }
        last_epoch = snap->epoch();
        assert_snapshot_consistent(snap);
        if (::testing::Test::HasFatalFailure()) {
          failures.fetch_add(1);
          return;
        }
        // Every ~4th loop also drives the engine's bind-and-query path.
        if (t == 0 && (last_epoch & 3) == 0) {
          svc::Request req;
          req.kind = svc::QueryKind::bfs;
          req.source = last_epoch % kNodes;
          auto fut = engine.submit(req);
          auto res = fut.get();
          if (res.status < 0 &&
              res.status != LAGRAPH_SERVICE_NO_SNAPSHOT) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }

  // The mutation stream: continuous mixed batches, no explicit publishes —
  // the writer's own cadence decides epoch boundaries.
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  auto rnd = [&] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  const int kBatches = 150;
  for (int b = 0; b < kBatches; ++b) {
    std::vector<ing::Mutation> batch;
    for (int q = 0; q < 32; ++q) {
      ing::Mutation m;
      const auto k = rnd() % 10;
      m.op = k < 5   ? ing::MutationOp::insert
             : k < 8 ? ing::MutationOp::upsert
                     : ing::MutationOp::remove;
      m.src = rnd() % kNodes;
      m.dst = rnd() % kNodes;
      m.weight = 1.0 + static_cast<double>(rnd() % 4);
      batch.push_back(m);
    }
    int st = writer.submit_batch(batch);
    if (st == LAGRAPH_INGEST_QUEUE_FULL) {
      std::this_thread::yield();
      --b;  // retry: backpressure, not failure
      continue;
    }
    ASSERT_EQ(st, 0);
  }
  ASSERT_EQ(writer.publish_now(), 0) << writer.error_message();

  stop.store(true);
  for (auto &r : readers) r.join();
  writer.stop();
  engine.stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(writer.epoch(), 1u);
  // Grace-period reclamation kept the history bounded while readers
  // churned through ~75 epochs: only the grace window plus whatever the
  // engine and readers still pinned at the final sweep may remain.
  EXPECT_LE(writer.registry().size(), wcfg.grace_depth + kReaders + 5);
}

}  // namespace

TEST(IngestStress, DirectedReadersVsMutationStream) {
  stress(lagraph::Kind::adjacency_directed);
}

TEST(IngestStress, UndirectedReadersVsMutationStream) {
  stress(lagraph::Kind::adjacency_undirected);
}

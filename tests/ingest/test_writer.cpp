// Writer + SnapshotRegistry unit tests: epoch publication, incremental
// property maintenance, undirected mirroring, grace-period reclamation,
// and the submit-side error contract.
#include <gtest/gtest.h>

#include "ingest/writer.hpp"

namespace ing = lagraph::ingest;
namespace svc = lagraph::service;
using grb::Index;

namespace {

lagraph::Graph<double> path_graph(Index n, lagraph::Kind kind) {
  grb::Matrix<double> a(n, n);
  std::vector<Index> ri, ci;
  std::vector<double> vv;
  for (Index i = 0; i + 1 < n; ++i) {
    ri.push_back(i);
    ci.push_back(i + 1);
    vv.push_back(1.0);
    if (kind == lagraph::Kind::adjacency_undirected) {
      ri.push_back(i + 1);
      ci.push_back(i);
      vv.push_back(1.0);
    }
  }
  a.build(std::span<const Index>(ri), std::span<const Index>(ci),
          std::span<const double>(vv), grb::Second{});
  return lagraph::Graph<double>(std::move(a), kind);
}

}  // namespace

TEST(Registry, GracePeriodKeepsPinnedSnapshots) {
  ing::SnapshotRegistry reg(/*grace_depth=*/2);
  char msg[LAGRAPH_MSG_LEN];
  svc::SnapshotPtr pinned;
  for (int k = 0; k < 5; ++k) {
    svc::SnapshotPtr snap;
    ASSERT_EQ(svc::make_snapshot(
                  &snap, path_graph(4, lagraph::Kind::adjacency_directed), msg),
              LAGRAPH_OK)
        << msg;
    if (k == 0) pinned = snap;  // a reader still holding epoch 1
    reg.publish(std::move(snap));
  }
  // Head + grace window survive; unpinned older epochs are swept; the
  // pinned one must survive every sweep while the reader holds it.
  EXPECT_EQ(reg.size(), 3u);  // 2 grace + 1 pinned
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->graph().a.nrows(), 4u);
  pinned.reset();
  reg.reclaim();
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Writer, PublishesInitialEpochOnConstruction) {
  ing::Writer w(path_graph(8, lagraph::Kind::adjacency_directed));
  auto snap = w.current();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch(), 1u);
  EXPECT_EQ(w.epoch(), 1u);
  EXPECT_EQ(snap->entries(), 7u);
  EXPECT_TRUE(snap->graph().a.is_finalized());
  ASSERT_TRUE(snap->graph().row_degree.has_value());
  ASSERT_TRUE(snap->graph().at.has_value());
  EXPECT_EQ(snap->graph().ndiag, 0);
}

TEST(Writer, InsertDeleteUpsertMaintainsProperties) {
  ing::Writer w(path_graph(8, lagraph::Kind::adjacency_directed));
  const ing::Mutation muts[] = {
      {ing::MutationOp::insert, 0, 5, 2.0},   // new edge
      {ing::MutationOp::upsert, 0, 5, 3.0},   // accumulate onto it: 5.0
      {ing::MutationOp::upsert, 6, 6, 1.5},   // new diagonal entry
      {ing::MutationOp::remove, 0, 1, 0.0},   // delete a seed edge
      {ing::MutationOp::remove, 3, 3, 0.0},   // delete an absent entry: no-op
  };
  ASSERT_EQ(w.submit_batch(muts), 0);
  ASSERT_EQ(w.publish_now(), 0) << w.error_message();

  auto snap = w.current();
  ASSERT_NE(snap, nullptr);
  EXPECT_GE(snap->epoch(), 2u);
  const auto &g = snap->graph();
  // 7 seed edges - 1 delete + 2 inserts.
  EXPECT_EQ(g.a.nvals(), 8u);
  auto v = g.a.get(0, 5);
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 5.0);
  EXPECT_FALSE(g.a.has(0, 1));
  EXPECT_TRUE(g.a.has(6, 6));
  EXPECT_EQ(g.ndiag, 1);
  // Incrementally maintained degrees must agree with the structure, and
  // the mirrored transpose must be a real transpose.
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::check_graph(g, msg), LAGRAPH_OK) << msg;
  ASSERT_TRUE(g.row_degree.has_value());
  auto d0 = g.row_degree->get(0);
  ASSERT_TRUE(d0.has_value());
  EXPECT_EQ(*d0, 1);  // lost (0,1), gained (0,5)
}

TEST(Writer, UndirectedMutationsMirrorAndStaySymmetric) {
  ing::Writer w(path_graph(8, lagraph::Kind::adjacency_undirected));
  const ing::Mutation muts[] = {
      {ing::MutationOp::insert, 2, 6, 4.0},
      {ing::MutationOp::remove, 0, 1, 0.0},
  };
  ASSERT_EQ(w.submit_batch(muts), 0);
  ASSERT_EQ(w.publish_now(), 0) << w.error_message();

  const auto &g = w.current()->graph();
  EXPECT_TRUE(g.a.has(2, 6));
  EXPECT_TRUE(g.a.has(6, 2));
  EXPECT_FALSE(g.a.has(0, 1));
  EXPECT_FALSE(g.a.has(1, 0));
  EXPECT_EQ(g.a_pattern_is_symmetric, lagraph::BooleanProperty::yes);
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::check_graph(g, msg), LAGRAPH_OK) << msg;
}

TEST(Writer, EveryPublishBumpsTheEpochAndKeepsHistory) {
  ing::WriterConfig cfg;
  cfg.grace_depth = 3;
  ing::Writer w(path_graph(8, lagraph::Kind::adjacency_directed), cfg);
  for (int k = 0; k < 4; ++k) {
    ing::Mutation m{ing::MutationOp::insert, 7, static_cast<Index>(k), 1.0};
    ASSERT_EQ(w.submit(m), 0);
    ASSERT_EQ(w.publish_now(), 0);
  }
  EXPECT_EQ(w.epoch(), 5u);  // 1 initial + 4 forced
  EXPECT_EQ(w.current()->epoch(), 5u);
  EXPECT_LE(w.registry().size(), 5u);
}

TEST(Writer, PublishHookSeesEveryEpochInOrder) {
  std::vector<std::uint64_t> seen;
  std::mutex mu;
  ing::Writer w(path_graph(8, lagraph::Kind::adjacency_directed), {},
                [&](const svc::SnapshotPtr &s) {
                  std::lock_guard<std::mutex> lk(mu);
                  seen.push_back(s->epoch());
                });
  ing::Mutation m{ing::MutationOp::insert, 0, 7, 1.0};
  ASSERT_EQ(w.submit(m), 0);
  ASSERT_EQ(w.publish_now(), 0);
  w.stop();
  std::lock_guard<std::mutex> lk(mu);
  ASSERT_GE(seen.size(), 2u);
  for (std::size_t k = 1; k < seen.size(); ++k) {
    EXPECT_EQ(seen[k], seen[k - 1] + 1);
  }
}

TEST(Writer, RateLimitDefersDrainPublishButNotBarriers) {
  ing::WriterConfig cfg;
  cfg.min_publish_interval_ms = 60000;  // no drain-triggered epochs today
  cfg.publish_threshold = 1 << 20;
  ing::Writer w(path_graph(8, lagraph::Kind::adjacency_directed), cfg);
  ing::Mutation m{ing::MutationOp::insert, 0, 7, 1.0};
  ASSERT_EQ(w.submit(m), 0);
  // The barrier must cut through the rate limit and publish immediately.
  ASSERT_EQ(w.publish_now(), 0) << w.error_message();
  EXPECT_EQ(w.epoch(), 2u);
  EXPECT_TRUE(w.current()->graph().a.has(0, 7));

  // And shutdown must flush staged work even mid-interval.
  ing::Mutation m2{ing::MutationOp::insert, 7, 0, 1.0};
  ASSERT_EQ(w.submit(m2), 0);
  w.stop();
  EXPECT_EQ(w.epoch(), 3u);
  EXPECT_TRUE(w.current()->graph().a.has(7, 0));
}

TEST(Writer, RateLimitedEpochPublishesOnceIntervalElapses) {
  ing::WriterConfig cfg;
  cfg.min_publish_interval_ms = 30;  // short, but >> one loop iteration
  cfg.publish_threshold = 1 << 20;
  ing::Writer w(path_graph(8, lagraph::Kind::adjacency_directed), cfg);
  ing::Mutation m{ing::MutationOp::insert, 0, 7, 1.0};
  ASSERT_EQ(w.submit(m), 0);
  // No barrier, no threshold, a quiet stream: the timed wait alone must
  // publish the deferred epoch shortly after the interval elapses.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (w.epoch() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(w.epoch(), 2u);
  EXPECT_TRUE(w.current()->graph().a.has(0, 7));
}

TEST(Writer, SubmitErrorContract) {
  ing::Writer w(path_graph(4, lagraph::Kind::adjacency_directed));
  ing::Mutation oob{ing::MutationOp::insert, 9, 0, 1.0};
  EXPECT_EQ(w.submit(oob), LAGRAPH_INVALID_VALUE);
  w.stop();
  ing::Mutation ok{ing::MutationOp::insert, 0, 1, 1.0};
  EXPECT_EQ(w.submit(ok), LAGRAPH_INGEST_STOPPED);
  EXPECT_EQ(w.publish_now(), LAGRAPH_INGEST_STOPPED);
}

TEST(Writer, StatsCountersAdvance) {
  const auto before = grb::stats().snapshot();
  {
    ing::Writer w(path_graph(8, lagraph::Kind::adjacency_directed));
    ing::Mutation m{ing::MutationOp::insert, 0, 7, 1.0};
    ASSERT_EQ(w.submit(m), 0);
    ASSERT_EQ(w.publish_now(), 0);
  }
  const auto after = grb::stats().snapshot();
  EXPECT_GE(after.edges_ingested, before.edges_ingested + 1);
  EXPECT_GE(after.epochs_published, before.epochs_published + 2);
  EXPECT_GE(after.ingest_batches, before.ingest_batches + 1);
}

TEST(Writer, PendingIsZeroAtRestAndDrainsToZeroAfterPublish) {
  ing::WriterConfig cfg;
  cfg.publish_threshold = 1 << 20;  // nothing auto-publishes on backlog
  ing::Writer w(path_graph(16, lagraph::Kind::adjacency_directed), cfg);
  EXPECT_EQ(w.pending(), 0u);

  std::vector<ing::Mutation> muts;
  for (int i = 0; i < 4096; ++i) {
    muts.push_back({ing::MutationOp::upsert,
                    static_cast<Index>(i % 16),
                    static_cast<Index>((i * 7 + 3) % 16), 1.0});
  }
  ASSERT_EQ(w.submit_batch(muts), 0);
  // The writer thread drains concurrently, so the only bound that holds at
  // any instant is "no more than was ever submitted"...
  EXPECT_LE(w.pending(), muts.size());
  // ...and with no further submissions the gauge is monotone
  // non-increasing: only push() grows the queue, and only this thread
  // pushes.
  std::size_t prev = w.pending();
  for (int i = 0; i < 50; ++i) {
    const std::size_t now = w.pending();
    EXPECT_LE(now, prev);
    prev = now;
    if (now == 0) break;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  // publish_now barriers every mutation submitted before it: the backlog
  // gauge must read fully drained afterwards, deterministically.
  ASSERT_EQ(w.publish_now(), 0) << w.error_message();
  EXPECT_EQ(w.pending(), 0u);
  // And again after another burst — drain-to-zero is repeatable.
  ASSERT_EQ(w.submit_batch(muts), 0);
  ASSERT_EQ(w.publish_now(), 0) << w.error_message();
  EXPECT_EQ(w.pending(), 0u);
}

TEST(Writer, LastPublishSecondsTracksTheMostRecentEpoch) {
  ing::WriterConfig cfg;
  cfg.publish_threshold = 1 << 20;
  ing::Writer w(path_graph(64, lagraph::Kind::adjacency_directed), cfg);
  // The constructor publishes epoch 1; the gauge never goes negative and
  // reads the same from any thread.
  EXPECT_GE(w.last_publish_seconds(), 0.0);

  ing::Mutation m{ing::MutationOp::upsert, 0, 63, 1.0};
  ASSERT_EQ(w.submit(m), 0);
  ASSERT_EQ(w.publish_now(), 0) << w.error_message();
  const double first = w.last_publish_seconds();
  // A real epoch (flush + property maintenance + copy + publish) takes
  // measurable, sane wall time.
  EXPECT_GT(first, 0.0);
  EXPECT_LT(first, 60.0);

  // The gauge is "latency of the most recent epoch", not a running total:
  // after more publications it still reads a single-epoch-sized number.
  for (int round = 0; round < 3; ++round) {
    ing::Mutation m2{ing::MutationOp::upsert, static_cast<Index>(round + 1),
                     0, 1.0};
    ASSERT_EQ(w.submit(m2), 0);
    ASSERT_EQ(w.publish_now(), 0) << w.error_message();
    const double latest = w.last_publish_seconds();
    EXPECT_GT(latest, 0.0);
    EXPECT_LT(latest, 60.0);
  }
}

// Shared fixtures for the algorithm tests: small hand-built graphs plus
// generated random graphs, each available both as a lagraph::Graph and as a
// gapbs::Graph so LAGraph results can be validated against the direct
// implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "gapbs/graph.hpp"
#include "gen/generators.hpp"
#include "lagraph/lagraph.hpp"

namespace testutil {

using grb::Index;

struct TestGraph {
  std::string name;
  bool directed;
  gen::EdgeList edges;           // deduplicated by gapbs/lagraph builders
  gapbs::Graph ref;              // direct CSR form
  lagraph::Graph<double> lg;     // LAGraph form (weights as values)

  static TestGraph from_edges(std::string name, gen::EdgeList el,
                              bool directed) {
    TestGraph t;
    t.name = std::move(name);
    t.directed = directed;
    if (!el.weighted()) {
      gen::add_uniform_weights(el, 1, 9, 42);
    }
    t.ref = gapbs::Graph::build(el, directed);
    auto m = gen::to_matrix<double>(el);
    char msg[LAGRAPH_MSG_LEN];
    lagraph::make_graph(t.lg, std::move(m),
                        directed ? lagraph::Kind::adjacency_directed
                                 : lagraph::Kind::adjacency_undirected,
                        msg);
    t.edges = std::move(el);
    return t;
  }
};

/// A connected 8-node directed graph with a few cross edges.
inline TestGraph tiny_directed() {
  gen::EdgeList el;
  el.n = 8;
  const Index edges[][2] = {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4},
                            {4, 5}, {5, 0}, {2, 6}, {6, 7}, {7, 4},
                            {1, 6}, {5, 7}};
  for (auto &e : edges) el.push(e[0], e[1]);
  return TestGraph::from_edges("tiny_directed", std::move(el), true);
}

/// A small undirected graph with two triangles and a pendant path.
inline TestGraph tiny_undirected() {
  gen::EdgeList el;
  el.n = 7;
  const Index edges[][2] = {{0, 1}, {0, 2}, {1, 2}, {2, 3},
                            {3, 4}, {3, 5}, {4, 5}, {5, 6}};
  for (auto &e : edges) el.push(e[0], e[1]);
  gen::symmetrize(el);
  return TestGraph::from_edges("tiny_undirected", std::move(el), false);
}

/// Two components: a 4-cycle and a 3-path (undirected).
inline TestGraph two_components() {
  gen::EdgeList el;
  el.n = 7;
  const Index edges[][2] = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}};
  for (auto &e : edges) el.push(e[0], e[1]);
  gen::symmetrize(el);
  return TestGraph::from_edges("two_components", std::move(el), false);
}

/// Generated graphs for parameterized sweeps.
inline TestGraph random_undirected(int scale, int ef, std::uint64_t seed) {
  auto el = gen::uniform_random(scale, ef, seed);
  gen::remove_self_loops(el);
  return TestGraph::from_edges("urand", std::move(el), false);
}

inline TestGraph random_kron(int scale, int ef, std::uint64_t seed) {
  auto el = gen::kronecker(scale, ef, seed);
  return TestGraph::from_edges("kron", std::move(el), false);
}

inline TestGraph random_directed(int scale, int ef, std::uint64_t seed) {
  auto el = gen::twitter_like(scale, ef, seed);
  return TestGraph::from_edges("twitter", std::move(el), true);
}

inline TestGraph small_road(Index side, std::uint64_t seed) {
  auto el = gen::road_grid(side, side, seed);
  return TestGraph::from_edges("road", std::move(el), true);
}

/// Check a parent vector is a valid BFS tree (GAP's BFSVerifier logic):
/// reachable nodes agree with reference levels; parents are one level up
/// and connected by an edge.
inline void expect_valid_bfs_parents(const TestGraph &t,
                                     const grb::Vector<std::int64_t> &parent,
                                     gapbs::NodeId source) {
  auto levels = gapbs::bfs_levels_reference(t.ref, source);
  const Index n = t.ref.num_nodes();
  for (Index v = 0; v < n; ++v) {
    auto p = parent.get(v);
    if (levels[v] < 0) {
      EXPECT_FALSE(p.has_value()) << "unreachable node " << v << " has parent";
      continue;
    }
    ASSERT_TRUE(p.has_value()) << "reachable node " << v << " lacks parent";
    if (static_cast<gapbs::NodeId>(v) == source) {
      EXPECT_EQ(*p, source);
      continue;
    }
    auto pu = static_cast<Index>(*p);
    EXPECT_EQ(levels[pu] + 1, levels[v]) << "parent not one level up at " << v;
    bool has_edge = false;
    for (auto w : t.ref.out_neigh(static_cast<gapbs::NodeId>(pu))) {
      if (static_cast<Index>(w) == v) has_edge = true;
    }
    EXPECT_TRUE(has_edge) << "no edge " << pu << "->" << v;
  }
}

}  // namespace testutil

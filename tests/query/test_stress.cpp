// Concurrency stress for the query layer (the TSan target): multiple
// client threads firing cypher queries through a multi-worker
// service::Engine while an ingest::Writer mutates the graph and publishes
// epochs that are installed under the live traffic. Every future must
// resolve, every successful result must be internally consistent, and a
// query must see exactly one snapshot (no torn reads) — TSan watches the
// snapshot handoff, the engine queue, and the writer's publication path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "ingest/writer.hpp"
#include "query/query.hpp"
#include "service/engine.hpp"

namespace q = lagraph::query;
namespace svc = lagraph::service;
namespace ing = lagraph::ingest;
using grb::Index;

namespace {

lagraph::Graph<double> ring_graph(Index n) {
  grb::Matrix<double> a(n, n);
  for (Index i = 0; i < n; ++i) a.set_element(i, (i + 1) % n, 1.0);
  lagraph::Graph<double> g;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::make_graph(g, std::move(a),
                                lagraph::Kind::adjacency_directed, msg),
            LAGRAPH_OK)
      << msg;
  g.a.finalize();
  return g;
}

}  // namespace

TEST(QueryStress, ConcurrentCypherAgainstAMutatingWriter) {
  constexpr Index kNodes = 64;
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 50;
  constexpr int kMutations = 400;

  svc::EngineConfig cfg;
  cfg.threads = 4;
  svc::Engine engine(cfg);
  ing::WriterConfig wcfg;
  wcfg.publish_threshold = 16;  // frequent epochs under traffic
  ing::Writer writer(ring_graph(kNodes), wcfg,
                     [&engine](const svc::SnapshotPtr &s) {
                       engine.install_snapshot(s);
                     });

  const std::string patterns[] = {
      "MATCH (a)-[]->(b) RETURN COUNT(*)",
      "MATCH (a)-[]->(b)-[]->(c) WHERE a <> c RETURN COUNT(*)",
      "MATCH (a)-[]->(b) WHERE a = 5 RETURN b",
      "MATCH (a)-[]-(b) WHERE a.out >= 1 RETURN COUNT(*) LIMIT 1",
  };

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<svc::QueryResult>> futs;
      futs.reserve(kQueriesPerClient);
      for (int i = 0; i < kQueriesPerClient; ++i) {
        svc::Request req;
        req.kind = svc::QueryKind::cypher;
        req.query = patterns[(c + i) % 4];
        futs.push_back(engine.submit(req));
      }
      for (auto &f : futs) {
        auto res = f.get();
        if (res.status != LAGRAPH_OK) {
          ++failures;
          continue;
        }
        // Internal consistency: a snapshot was bound, the plan one-liner
        // was produced, and the table has coherent column/row shapes.
        if (res.snapshot_id == 0 ||
            res.plan.find("cypher[") == std::string::npos) {
          ++failures;
        }
        for (const auto &col : res.table.data) {
          if (col.size() != res.table.rows()) ++failures;
        }
      }
    });
  }

  std::thread mutator([&] {
    for (int i = 0; i < kMutations; ++i) {
      ing::Mutation m;
      m.op = (i % 5 == 4) ? ing::MutationOp::remove : ing::MutationOp::upsert;
      m.src = static_cast<Index>((i * 2654435761ull) % kNodes);
      m.dst = static_cast<Index>((i * 40503ull + 7) % kNodes);
      m.weight = 1.0;
      ASSERT_EQ(writer.submit(m), 0);
      if (i % 64 == 63) writer.publish_now();
    }
  });

  for (auto &t : clients) t.join();
  mutator.join();
  writer.publish_now();
  engine.drain();
  writer.stop();
  engine.stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(writer.error_status(), 0) << writer.error_message();
  auto counters = engine.counters();
  EXPECT_EQ(counters.completed,
            static_cast<std::uint64_t>(kClients * kQueriesPerClient));
  EXPECT_EQ(counters.failed, 0u);
  EXPECT_GE(writer.epoch(), 2u);
}

TEST(QueryStress, SnapshotIsolationAcrossInstalls) {
  // Two alternating graphs with different edge counts: every COUNT(*)
  // answer must equal one of the two valid totals — never a mix.
  constexpr Index kNodes = 32;
  svc::EngineConfig cfg;
  cfg.threads = 3;
  svc::Engine engine(cfg);

  auto make_snap = [&](bool dense) {
    grb::Matrix<double> a(kNodes, kNodes);
    for (Index i = 0; i < kNodes; ++i) {
      a.set_element(i, (i + 1) % kNodes, 1.0);
      if (dense) a.set_element(i, (i + 2) % kNodes, 1.0);
    }
    lagraph::Graph<double> g;
    char msg[LAGRAPH_MSG_LEN];
    EXPECT_EQ(lagraph::make_graph(g, std::move(a),
                                  lagraph::Kind::adjacency_directed, msg),
              LAGRAPH_OK);
    g.a.finalize();
    svc::SnapshotPtr snap;
    EXPECT_EQ(svc::make_snapshot(&snap, std::move(g), msg), LAGRAPH_OK);
    return snap;
  };

  engine.install_snapshot(make_snap(false));
  std::atomic<bool> stop{false};
  std::thread installer([&] {
    bool dense = true;
    while (!stop.load()) {
      engine.install_snapshot(make_snap(dense));
      dense = !dense;
    }
  });

  std::vector<std::future<svc::QueryResult>> futs;
  for (int i = 0; i < 200; ++i) {
    svc::Request req;
    req.kind = svc::QueryKind::cypher;
    req.query = "MATCH (a)-[]->(b) RETURN COUNT(*)";
    futs.push_back(engine.submit(req));
  }
  int sparse_seen = 0, dense_seen = 0;
  for (auto &f : futs) {
    auto res = f.get();
    ASSERT_EQ(res.status, LAGRAPH_OK) << res.error;
    const std::int64_t count = res.table.data[0][0];
    if (count == kNodes) {
      ++sparse_seen;
    } else if (count == 2 * kNodes) {
      ++dense_seen;
    } else {
      FAIL() << "torn snapshot: COUNT(*) = " << count;
    }
  }
  stop.store(true);
  installer.join();
  engine.stop();
  EXPECT_EQ(sparse_seen + dense_seen, 200);
}

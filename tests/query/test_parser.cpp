// Parser unit tests: grammar coverage, '<-[]-' normalization, variable
// scoping, keyword case-insensitivity, and the error contract (status
// LAGRAPH_INVALID_VALUE with a position-bearing message).
#include <gtest/gtest.h>

#include <string>

#include "query/query.hpp"

namespace q = lagraph::query;

namespace {

q::Query must_parse(const std::string &text) {
  q::Query out;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(q::parse(&out, text, msg), LAGRAPH_OK) << text << ": " << msg;
  return out;
}

std::string must_fail(const std::string &text) {
  q::Query out;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(q::parse(&out, text, msg), LAGRAPH_INVALID_VALUE) << text;
  return msg;
}

}  // namespace

TEST(QueryParser, ChainPatternVariablesInFirstAppearanceOrder) {
  q::Query p = must_parse("MATCH (a)-[]->(b)-[]->(c) RETURN a, c");
  ASSERT_EQ(p.vars.size(), 3u);
  EXPECT_EQ(p.vars[0], "a");
  EXPECT_EQ(p.vars[1], "b");
  EXPECT_EQ(p.vars[2], "c");
  ASSERT_EQ(p.edges.size(), 2u);
  EXPECT_EQ(p.edges[0].src, 0);
  EXPECT_EQ(p.edges[0].dst, 1);
  EXPECT_EQ(p.edges[0].dir, q::EdgeDir::out);
  EXPECT_EQ(p.edges[1].src, 1);
  EXPECT_EQ(p.edges[1].dst, 2);
  EXPECT_FALSE(p.count_only);
  ASSERT_EQ(p.returns.size(), 2u);
  EXPECT_EQ(p.returns[0], 0);
  EXPECT_EQ(p.returns[1], 2);
  EXPECT_EQ(p.limit, -1);
}

TEST(QueryParser, ReverseArrowNormalizesToForwardWithSwappedEndpoints) {
  q::Query p = must_parse("MATCH (a)<-[]-(b) RETURN a");
  ASSERT_EQ(p.edges.size(), 1u);
  // (a)<-[]-(b) means an arc b -> a.
  EXPECT_EQ(p.edges[0].src, p.find_var("b"));
  EXPECT_EQ(p.edges[0].dst, p.find_var("a"));
  EXPECT_EQ(p.edges[0].dir, q::EdgeDir::out);
}

TEST(QueryParser, UndirectedEdgeAndMultiplePatterns) {
  q::Query p = must_parse("MATCH (a)-[]-(b), (b)-[]->(c) RETURN COUNT(*)");
  ASSERT_EQ(p.edges.size(), 2u);
  EXPECT_EQ(p.edges[0].dir, q::EdgeDir::both);
  EXPECT_EQ(p.edges[1].dir, q::EdgeDir::out);
  EXPECT_TRUE(p.count_only);
  EXPECT_TRUE(p.returns.empty());
}

TEST(QueryParser, WherePredicatesAndLimit) {
  q::Query p = must_parse(
      "MATCH (x)-[]->(y) WHERE x = 3 AND x <> y AND y.out >= 2 "
      "AND y.in < 5 RETURN y LIMIT 10");
  ASSERT_EQ(p.pins.size(), 1u);
  EXPECT_EQ(p.pins[0].var, 0);
  EXPECT_EQ(p.pins[0].node, 3);
  ASSERT_EQ(p.neqs.size(), 1u);
  EXPECT_EQ(p.neqs[0].a, 0);
  EXPECT_EQ(p.neqs[0].b, 1);
  ASSERT_EQ(p.degs.size(), 2u);
  EXPECT_TRUE(p.degs[0].out_degree);
  EXPECT_EQ(p.degs[0].cmp, q::CmpOp::ge);
  EXPECT_EQ(p.degs[0].bound, 2);
  EXPECT_FALSE(p.degs[1].out_degree);
  EXPECT_EQ(p.degs[1].cmp, q::CmpOp::lt);
  EXPECT_EQ(p.limit, 10);
}

TEST(QueryParser, KeywordsAreCaseInsensitive) {
  q::Query p = must_parse("match (a)-[]->(b) where a = 1 return count(*)");
  EXPECT_TRUE(p.count_only);
  ASSERT_EQ(p.pins.size(), 1u);
  // Variables stay case-sensitive: A and a would be distinct.
  q::Query p2 = must_parse("MATCH (A)-[]->(a) RETURN A, a");
  EXPECT_EQ(p2.vars.size(), 2u);
}

TEST(QueryParser, RepeatedVariableBindsTheSameSlot) {
  // A triangle written as a closed chain: (a)->(b)->(c)->(a).
  q::Query p = must_parse(
      "MATCH (a)-[]->(b)-[]->(c)-[]->(a) RETURN COUNT(*)");
  EXPECT_EQ(p.vars.size(), 3u);
  ASSERT_EQ(p.edges.size(), 3u);
  EXPECT_EQ(p.edges[2].src, 2);
  EXPECT_EQ(p.edges[2].dst, 0);
}

TEST(QueryParser, ErrorsCarryStatusAndContext) {
  must_fail("");
  must_fail("MATCH (a)-[]->(b)");               // missing RETURN
  must_fail("MATCH (a)-[]->(b) RETURN");        // missing projection
  must_fail("MATCH (a)-[->(b) RETURN a");       // bad edge token
  must_fail("MATCH (a)-[]->(b) RETURN a, z");   // unknown return var
  must_fail("MATCH (a)-[]->(b) WHERE z = 1 RETURN a");  // unbound WHERE var
  must_fail("MATCH (a)-[]->(b) RETURN a trailing");     // trailing input
  must_fail("MATCH (a)-[]->(b) WHERE a.sideways > 1 RETURN a");
  // Messages carry the failure position and a reason.
  const std::string m = must_fail("MATCH (a)-[]->(b) RETURN z");
  EXPECT_NE(m.find("offset"), std::string::npos) << m;
  EXPECT_NE(m.find("unknown variable"), std::string::npos) << m;
}

TEST(QueryParser, NullOutIsRejectedNotCrashed) {
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_LT(q::parse(nullptr, "MATCH (a)-[]->(b) RETURN a", msg), 0);
}

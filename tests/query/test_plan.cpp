// Multi-op optimizer unit tests: the compiled pruning schedule itself —
// edge-chain reordering away from textual order, mask pushdown into the
// traversal ops, cached-property CSE, the naive baseline's shape, and the
// EXPLAIN renderings the CLI and the request log surface.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "query/query.hpp"

namespace q = lagraph::query;
using grb::Index;

namespace {

// A directed "funnel": a few hub nodes 0..2 fan out to everything, node
// n-1 has exactly one in-edge. Selectivity differences the optimizer can
// exploit are extreme by construction.
lagraph::Graph<double> funnel_graph(Index n, bool cache_properties) {
  grb::Matrix<double> a(n, n);
  for (Index h = 0; h < 3; ++h) {
    for (Index v = 3; v + 1 < n; ++v) a.set_element(h, v, 1.0);
  }
  a.set_element(3, n - 1, 1.0);
  lagraph::Graph<double> g;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::make_graph(g, std::move(a),
                                lagraph::Kind::adjacency_directed, msg),
            LAGRAPH_OK)
      << msg;
  g.a.finalize();
  if (cache_properties) {
    EXPECT_EQ(lagraph::property_at(g, msg), LAGRAPH_OK) << msg;
    EXPECT_EQ(lagraph::property_row_degree(g, msg), LAGRAPH_OK) << msg;
    EXPECT_EQ(lagraph::property_col_degree(g, msg), LAGRAPH_OK) << msg;
    (*g.at).finalize();
  }
  return g;
}

q::Query parse_ok(const std::string &text) {
  q::Query p;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(q::parse(&p, text, msg), LAGRAPH_OK) << msg;
  return p;
}

q::QueryPlan compile_ok(const q::Query &p, const lagraph::Graph<double> &g,
                        bool optimize) {
  q::QueryPlan plan;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(q::compile(&plan, p, g, optimize, msg), LAGRAPH_OK) << msg;
  return plan;
}

std::vector<int> prune_edge_sequence(const q::QueryPlan &plan) {
  std::vector<int> seq;
  for (const auto &s : plan.steps) {
    if (s.kind == q::PlanStep::Kind::prune) seq.push_back(s.edge);
  }
  return seq;
}

int masked_prunes(const q::QueryPlan &plan) {
  int k = 0;
  for (const auto &s : plan.steps) {
    if (s.kind == q::PlanStep::Kind::prune && s.masked) ++k;
  }
  return k;
}

const char *kChain =
    "MATCH (a)-[]->(b)-[]->(c)-[]->(d) WHERE d = 63 RETURN COUNT(*)";

}  // namespace

TEST(QueryPlan, NaiveBaselineIsTextualOrderAndUnmasked) {
  auto g = funnel_graph(64, /*cache_properties=*/true);
  q::Query p = parse_ok(kChain);
  q::QueryPlan plan = compile_ok(p, g, /*optimize=*/false);
  EXPECT_FALSE(plan.optimized);
  // One pass over the edges in textual order, each propagated forward.
  EXPECT_EQ(prune_edge_sequence(plan), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(masked_prunes(plan), 0);
  // Enumeration in textual variable order.
  EXPECT_EQ(plan.enum_order, (std::vector<int>{0, 1, 2, 3}));
  for (const auto &s : plan.steps) {
    if (s.kind == q::PlanStep::Kind::prune) {
      EXPECT_TRUE(s.forward);
    }
  }
}

TEST(QueryPlan, OptimizerReordersChainToStartFromThePin) {
  auto g = funnel_graph(64, /*cache_properties=*/true);
  q::Query p = parse_ok(kChain);
  q::QueryPlan plan = compile_ok(p, g, /*optimize=*/true);
  EXPECT_TRUE(plan.optimized);
  auto seq = prune_edge_sequence(plan);
  ASSERT_FALSE(seq.empty());
  // Propagation must begin at the pinned variable d, i.e. with the last
  // textual edge (c)-[]->(d) walked in reverse — not edge 0.
  EXPECT_EQ(seq.front(), 2);
  const auto &first = plan.steps[4];  // after the 4 seeds
  EXPECT_EQ(first.kind, q::PlanStep::Kind::prune);
  EXPECT_FALSE(first.forward);
  EXPECT_EQ(first.from, p.find_var("d"));
  // And the enumeration order starts at the pin too.
  ASSERT_FALSE(plan.enum_order.empty());
  EXPECT_EQ(plan.enum_order.front(), p.find_var("d"));
  // The pinned start makes every estimate strictly smaller than "all
  // nodes"; the naive plan's intermediate estimates stay at n.
  q::QueryPlan naive = compile_ok(p, g, /*optimize=*/false);
  ASSERT_EQ(plan.est.size(), 4u);
  EXPECT_LT(plan.est[1], naive.est[1]);
  EXPECT_LT(plan.est[2], naive.est[2]);
}

TEST(QueryPlan, OptimizerPushesMasksOnceCandidatesAreStrict) {
  auto g = funnel_graph(64, /*cache_properties=*/true);
  q::Query p = parse_ok(kChain);
  q::QueryPlan opt = compile_ok(p, g, /*optimize=*/true);
  q::QueryPlan naive = compile_ok(p, g, /*optimize=*/false);
  // At least the backward-tightening replay runs masked (targets are
  // strict subsets by then); naive never masks.
  EXPECT_GE(masked_prunes(opt), 1);
  EXPECT_EQ(masked_prunes(naive), 0);
}

TEST(QueryPlan, ReverseTraversalUsesTheCachedTransposeWhenPresent) {
  auto with = funnel_graph(64, /*cache_properties=*/true);
  auto without = funnel_graph(64, /*cache_properties=*/false);
  q::Query p = parse_ok(kChain);
  q::QueryPlan cached = compile_ok(p, with, true);
  q::QueryPlan cold = compile_ok(p, without, true);
  EXPECT_TRUE(cached.reuse_transpose);
  EXPECT_TRUE(cached.reuse_row_degree);
  EXPECT_TRUE(cached.reuse_col_degree);
  bool via_at = false;
  for (const auto &s : cached.steps) via_at = via_at || s.via_transpose;
  EXPECT_TRUE(via_at);
  EXPECT_FALSE(cold.reuse_transpose);
  for (const auto &s : cold.steps) EXPECT_FALSE(s.via_transpose);
}

TEST(QueryPlan, DegreePredicateCompilesToAFilterStep) {
  auto g = funnel_graph(64, true);
  q::Query p =
      parse_ok("MATCH (a)-[]->(b) WHERE a.out >= 3 RETURN COUNT(*)");
  q::QueryPlan plan = compile_ok(p, g, true);
  bool filtered = false;
  for (const auto &s : plan.steps) {
    if (s.kind == q::PlanStep::Kind::degree_filter) {
      filtered = true;
      EXPECT_EQ(s.var, p.find_var("a"));
      EXPECT_EQ(s.deg, 0);
    }
  }
  EXPECT_TRUE(filtered);
}

TEST(QueryPlan, ExplainRendersBothModes) {
  auto g = funnel_graph(64, true);
  q::Query p = parse_ok(kChain);
  q::QueryPlan opt = compile_ok(p, g, true);
  q::QueryPlan naive = compile_ok(p, g, false);
  const std::string eo = opt.explain(p);
  const std::string en = naive.explain(p);
  EXPECT_NE(eo.find("query plan (optimized)"), std::string::npos) << eo;
  EXPECT_NE(en.find("query plan (naive)"), std::string::npos) << en;
  EXPECT_NE(eo.find("seed d := pinned"), std::string::npos) << eo;
  EXPECT_NE(eo.find("mask=pushed"), std::string::npos) << eo;
  EXPECT_NE(eo.find("enum order:"), std::string::npos) << eo;
  // One-line summaries (request log / slow-query records) stay short and
  // carry the mode tag.
  const std::string lo = opt.explain_line();
  const std::string ln = naive.explain_line();
  EXPECT_NE(lo.find("cypher[opt]"), std::string::npos) << lo;
  EXPECT_NE(ln.find("cypher[naive]"), std::string::npos) << ln;
  EXPECT_LE(lo.size(), 128u);
  EXPECT_LE(ln.size(), 128u);
}

TEST(QueryPlan, CompileRejectsNullAndEmpty) {
  auto g = funnel_graph(8, false);
  q::Query p = parse_ok("MATCH (a)-[]->(b) RETURN a");
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_LT(q::compile(nullptr, p, g, true, msg), 0);
  q::Query empty;
  q::QueryPlan plan;
  EXPECT_LT(q::compile(&plan, empty, g, true, msg), 0);
}

// Execution tests for the compiled query pipeline: direct semantic units
// on tiny graphs, the golden-file queries (independent Python references
// from tests/golden/gen_golden.py), differential spot checks + a budgeted
// fuzz run against the tuple-at-a-time oracle, and the service::Engine
// integration (QueryKind::cypher end to end).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "query/query.hpp"
#include "query/testing/qtest.hpp"
#include "service/engine.hpp"

#ifndef LAGRAPH_GOLDEN_DIR
#define LAGRAPH_GOLDEN_DIR "tests/golden"
#endif

namespace q = lagraph::query;
namespace qt = lagraph::query::testing;
namespace svc = lagraph::service;
using grb::Index;

namespace {

lagraph::Graph<double> graph_from_edges(
    Index n, bool directed,
    const std::vector<std::pair<Index, Index>> &edges) {
  qt::QueryScenario s;
  s.n = n;
  s.directed = directed;
  for (const auto &e : edges) s.edges.emplace_back(e.first, e.second);
  return qt::build_graph(s, /*cache_properties=*/true);
}

q::ResultSet run_ok(const std::string &text,
                    const lagraph::Graph<double> &g) {
  q::ResultSet rs;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(q::run(&rs, text, g, msg), LAGRAPH_OK) << text << ": " << msg;
  return rs;
}

// tests/golden/<name>.edges, same format as the algorithm golden tests.
lagraph::Graph<double> load_golden_graph(const std::string &name) {
  std::ifstream in(std::string(LAGRAPH_GOLDEN_DIR) + "/" + name + ".edges");
  EXPECT_TRUE(in.good()) << "missing " << name << ".edges";
  Index n = 0;
  bool directed = false;
  std::vector<std::pair<Index, Index>> edges;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok == "n") {
      ls >> n;
    } else if (tok == "directed") {
      int d = 0;
      ls >> d;
      directed = d != 0;
    } else {
      Index u = std::stoull(tok), v = 0;
      ls >> v;
      edges.emplace_back(u, v);
    }
  }
  return graph_from_edges(n, directed, edges);
}

std::string load_golden_text(const std::string &file) {
  std::ifstream in(std::string(LAGRAPH_GOLDEN_DIR) + "/" + file);
  EXPECT_TRUE(in.good()) << "missing " << file;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

TEST(QueryExec, TriangleCountOnDirectedCycle) {
  // 0->1->2->0: exactly 3 homomorphic triangle embeddings (one per
  // starting corner).
  auto g = graph_from_edges(3, true, {{0, 1}, {1, 2}, {2, 0}});
  auto rs = run_ok(
      "MATCH (a)-[]->(b)-[]->(c)-[]->(a) RETURN COUNT(*)", g);
  ASSERT_EQ(rs.columns, (std::vector<std::string>{"count"}));
  ASSERT_EQ(rs.rows(), 1u);
  EXPECT_EQ(rs.data[0][0], 3);
}

TEST(QueryExec, ProjectionIsSortedAndLimited) {
  auto g = graph_from_edges(4, true, {{0, 1}, {0, 2}, {0, 3}, {2, 3}});
  auto all = run_ok("MATCH (a)-[]->(b) RETURN a, b", g);
  ASSERT_EQ(all.rows(), 4u);
  // Lexicographic row order.
  EXPECT_EQ(all.data[0], (std::vector<std::int64_t>{0, 0, 0, 2}));
  EXPECT_EQ(all.data[1], (std::vector<std::int64_t>{1, 2, 3, 3}));
  auto limited = run_ok("MATCH (a)-[]->(b) RETURN a, b LIMIT 2", g);
  ASSERT_EQ(limited.rows(), 2u);
  EXPECT_EQ(limited.data[1], (std::vector<std::int64_t>{1, 2}));
  // LIMIT 0 is a valid degenerate query.
  EXPECT_EQ(run_ok("MATCH (a)-[]->(b) RETURN a LIMIT 0", g).rows(), 0u);
}

TEST(QueryExec, HomomorphismUnlessNeq) {
  // 0<->1: the 2-hop pattern may fold back (a=c) unless a <> c.
  auto g = graph_from_edges(2, true, {{0, 1}, {1, 0}});
  auto folded =
      run_ok("MATCH (a)-[]->(b)-[]->(c) RETURN COUNT(*)", g);
  EXPECT_EQ(folded.data[0][0], 2);  // 0-1-0 and 1-0-1
  auto strict = run_ok(
      "MATCH (a)-[]->(b)-[]->(c) WHERE a <> c RETURN COUNT(*)", g);
  EXPECT_EQ(strict.data[0][0], 0);
}

TEST(QueryExec, BothDirectionEdgeMatchesEitherArc) {
  auto g = graph_from_edges(3, true, {{0, 1}});
  EXPECT_EQ(run_ok("MATCH (a)-[]-(b) RETURN COUNT(*)", g).data[0][0], 2);
  EXPECT_EQ(run_ok("MATCH (a)-[]->(b) RETURN COUNT(*)", g).data[0][0], 1);
}

TEST(QueryExec, DegreePredicatesSeeIsolatedNodes) {
  // Node 2 is isolated: out-degree 0 must satisfy `< 1`.
  auto g = graph_from_edges(3, true, {{0, 1}});
  auto rs = run_ok("MATCH (a) WHERE a.out < 1 RETURN a", g);
  // A single-node pattern: every node with out-degree 0.
  ASSERT_EQ(rs.rows(), 2u);
  EXPECT_EQ(rs.data[0], (std::vector<std::int64_t>{1, 2}));
}

TEST(QueryExec, OutOfRangeAndConflictingPinsYieldEmpty) {
  auto g = graph_from_edges(3, true, {{0, 1}, {1, 2}});
  EXPECT_EQ(
      run_ok("MATCH (a)-[]->(b) WHERE a = 99 RETURN COUNT(*)", g).data[0][0],
      0);
  EXPECT_EQ(run_ok("MATCH (a)-[]->(b) WHERE a = 0 AND a = 1 RETURN COUNT(*)",
                   g)
                .data[0][0],
            0);
}

TEST(QueryExec, NaiveAndOptimizedPlansAgree) {
  auto g = graph_from_edges(
      5, true, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}, {1, 3}});
  const std::string text =
      "MATCH (a)-[]->(b)-[]->(c) WHERE a <> c AND b.out >= 1 RETURN a, c";
  q::Query p;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(q::parse(&p, text, msg), LAGRAPH_OK) << msg;
  q::ResultSet opt, naive;
  q::QueryPlan po, pn;
  ASSERT_EQ(q::compile(&po, p, g, true, msg), LAGRAPH_OK) << msg;
  ASSERT_EQ(q::compile(&pn, p, g, false, msg), LAGRAPH_OK) << msg;
  ASSERT_EQ(q::execute(&opt, p, po, g, msg), LAGRAPH_OK) << msg;
  ASSERT_EQ(q::execute(&naive, p, pn, g, msg), LAGRAPH_OK) << msg;
  EXPECT_EQ(opt, naive);
}

// ---------------------------------------------------------------------------
// Golden-file queries: fixed queries over the committed fixtures, checked
// against tests/golden/*.golden written by the independent Python
// references in gen_golden.py. The query strings here must match the
// GOLDEN_QUERIES table there verbatim (in spirit: same constraints).

struct GoldenQuery {
  const char *graph;
  const char *file;
  const char *text;
};

class QueryGolden : public ::testing::TestWithParam<GoldenQuery> {};

TEST_P(QueryGolden, MatchesIndependentReference) {
  const GoldenQuery &gq = GetParam();
  auto g = load_golden_graph(gq.graph);
  auto rs = run_ok(gq.text, g);
  EXPECT_EQ(rs.to_string(), load_golden_text(gq.file))
      << gq.graph << ": " << gq.text;
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, QueryGolden,
    ::testing::Values(
        GoldenQuery{"karate", "karate.q_nbrs.golden",
                    "MATCH (a)-[]-(b) WHERE a = 0 RETURN b"},
        GoldenQuery{"karate", "karate.q_wedge_count.golden",
                    "MATCH (a)-[]->(b)-[]->(c) WHERE a = 33 AND a <> c "
                    "RETURN COUNT(*)"},
        GoldenQuery{"path", "path.q_pairs.golden",
                    "MATCH (a)-[]->(b)-[]->(c) RETURN a, c LIMIT 5"},
        GoldenQuery{"wdag", "wdag.q_fanout.golden",
                    "MATCH (a)-[]->(b) WHERE a.out >= 2 RETURN a, b"}),
    [](const ::testing::TestParamInfo<GoldenQuery> &info) {
      std::string name = info.param.file;
      const auto dot = name.find('.');
      return name.substr(0, dot) + "_" + std::to_string(info.index);
    });

// ---------------------------------------------------------------------------
// Differential checks against the tuple-at-a-time oracle.

TEST(QueryDiff, SpotScenariosSweepClean) {
  for (std::uint64_t seed : {3u, 11u, 29u}) {
    auto s = qt::generate(seed);
    auto mm = qt::check_sweep(s);
    EXPECT_FALSE(mm.has_value()) << mm->to_string();
  }
}

TEST(QueryDiff, BudgetedFuzzAgainstOracle) {
  qt::QueryFuzzOptions fo;
  fo.max_scenarios = 400;  // ~7k instances; the 10k+ run lives in check.sh
  fo.seed = 1;
  auto rep = qt::fuzz(fo);
  EXPECT_TRUE(rep.ok) << "seed " << rep.failing_seed << "\n"
                      << rep.detail << "\n"
                      << rep.repro;
  EXPECT_EQ(rep.scenarios, 400u);
  EXPECT_EQ(rep.instances,
            400u * 2 * grb::testing::sweep_configs().size());
}

TEST(QueryDiff, ScenarioSerializationRoundTrips) {
  auto s = qt::generate(17);
  std::string text = qt::serialize(s);
  qt::QueryScenario back;
  std::string err;
  ASSERT_TRUE(qt::parse_scenario(text, &back, &err)) << err;
  EXPECT_EQ(back.seed, s.seed);
  EXPECT_EQ(back.n, s.n);
  EXPECT_EQ(back.directed, s.directed);
  EXPECT_EQ(back.edges, s.edges);
  EXPECT_EQ(back.text, s.text);
  // Unknown keys are skipped (append-only format contract).
  std::string grown = text;
  grown.insert(grown.find("query "), "future_knob 7\n");
  qt::QueryScenario tolerant;
  EXPECT_TRUE(qt::parse_scenario(grown, &tolerant, &err)) << err;
  EXPECT_EQ(tolerant.edges, s.edges);
}

// ---------------------------------------------------------------------------
// service::Engine integration: cypher as a first-class query kind.

TEST(QueryEngine, CypherThroughTheEngineMatchesDirectExecution) {
  auto g = graph_from_edges(
      6, true, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 4}, {4, 5}});
  const std::string text =
      "MATCH (a)-[]->(b)-[]->(c) WHERE a <> c RETURN a, c";
  q::ResultSet direct = run_ok(text, g);

  svc::SnapshotPtr snap;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(svc::make_snapshot(&snap, std::move(g), msg), LAGRAPH_OK) << msg;
  svc::Engine engine(snap);
  svc::Request req;
  req.kind = svc::QueryKind::cypher;
  req.query = text;
  auto res = engine.submit(req).get();
  ASSERT_EQ(res.status, LAGRAPH_OK) << res.error;
  EXPECT_EQ(res.kind, svc::QueryKind::cypher);
  EXPECT_EQ(res.table, direct);
  EXPECT_NE(res.plan.find("cypher[opt]"), std::string::npos) << res.plan;
  // The request log keeps the plan one-liner as the summary.
  engine.drain();
  bool logged = false;
  for (const auto &r : engine.request_log().recent(16)) {
    if (r.kind == static_cast<std::uint8_t>(svc::QueryKind::cypher)) {
      logged = true;
      EXPECT_NE(std::string(r.plan).find("cypher["), std::string::npos);
    }
  }
  EXPECT_TRUE(logged);
  engine.stop();
}

TEST(QueryEngine, MalformedCypherFailsTheFutureNotTheEngine) {
  auto g = graph_from_edges(3, true, {{0, 1}});
  svc::SnapshotPtr snap;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(svc::make_snapshot(&snap, std::move(g), msg), LAGRAPH_OK) << msg;
  svc::Engine engine(snap);
  svc::Request bad;
  bad.kind = svc::QueryKind::cypher;
  bad.query = "MATCH (a)-[]->(b)";  // missing RETURN
  auto res = engine.submit(bad).get();
  EXPECT_LT(res.status, 0);
  EXPECT_FALSE(res.error.empty());
  // Engine still serves afterwards.
  svc::Request good;
  good.kind = svc::QueryKind::cypher;
  good.query = "MATCH (a)-[]->(b) RETURN COUNT(*)";
  auto ok = engine.submit(good).get();
  ASSERT_EQ(ok.status, LAGRAPH_OK) << ok.error;
  EXPECT_EQ(ok.table.data[0][0], 1);
  engine.stop();
}

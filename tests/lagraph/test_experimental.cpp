// Tests for the experimental algorithm tier (§II-E): k-truss, local
// clustering coefficient, Bellman-Ford, and multi-source BFS.
#include <gtest/gtest.h>

#include <map>

#include "common/test_graphs.hpp"

using grb::Index;
namespace lx = lagraph::experimental;

// -- k-truss ---------------------------------------------------------------------

TEST(KTruss, TriangleSurvives3Truss) {
  auto t = testutil::tiny_undirected();  // two triangles + pendant path
  grb::Matrix<std::uint32_t> truss(0, 0);
  int iters = 0;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lx::k_truss(&truss, &iters, t.lg, 3, msg), LAGRAPH_OK) << msg;
  // the two triangles survive (6 undirected edges = 12 entries); the
  // pendant edges 2-3 and 5-6 are pruned
  EXPECT_EQ(truss.nvals(), 12u);
  EXPECT_TRUE(truss.has(0, 1));
  EXPECT_TRUE(truss.has(3, 4));
  EXPECT_FALSE(truss.has(5, 6));
  EXPECT_FALSE(truss.has(2, 3));
  EXPECT_GE(iters, 1);
}

TEST(KTruss, K4CliqueIs4Truss) {
  gen::EdgeList el;
  el.n = 5;
  for (Index i = 0; i < 4; ++i) {
    for (Index j = i + 1; j < 4; ++j) el.push(i, j);
  }
  el.push(3, 4);  // pendant
  gen::symmetrize(el);
  auto t = testutil::TestGraph::from_edges("k4", std::move(el), false);
  grb::Matrix<std::uint32_t> truss(0, 0);
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lx::k_truss(&truss, nullptr, t.lg, 4, msg), LAGRAPH_OK);
  EXPECT_EQ(truss.nvals(), 12u);  // K4 only
  // every surviving edge has support exactly 2 (k-2)
  truss.for_each([](Index, Index, const std::uint32_t &s) {
    EXPECT_EQ(s, 2u);
  });
  // 5-truss of a K4 is empty
  ASSERT_EQ(lx::k_truss(&truss, nullptr, t.lg, 5, msg), LAGRAPH_OK);
  EXPECT_EQ(truss.nvals(), 0u);
}

TEST(KTruss, InvalidArguments) {
  auto t = testutil::tiny_undirected();
  grb::Matrix<std::uint32_t> truss(0, 0);
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lx::k_truss(&truss, nullptr, t.lg, 2, msg),
            LAGRAPH_INVALID_VALUE);
  auto d = testutil::tiny_directed();
  EXPECT_EQ(lx::k_truss(&truss, nullptr, d.lg, 3, msg),
            LAGRAPH_PROPERTY_MISSING);
}

// -- local clustering coefficient ---------------------------------------------------

TEST(Lcc, TriangleHasCoefficientOne) {
  gen::EdgeList el;
  el.n = 3;
  el.push(0, 1);
  el.push(1, 2);
  el.push(0, 2);
  gen::symmetrize(el);
  auto t = testutil::TestGraph::from_edges("tri", std::move(el), false);
  grb::Vector<double> lcc;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lx::local_clustering_coefficient(&lcc, t.lg, msg), LAGRAPH_OK);
  for (Index v = 0; v < 3; ++v) EXPECT_DOUBLE_EQ(*lcc.get(v), 1.0);
}

TEST(Lcc, PathHasCoefficientZero) {
  gen::EdgeList el;
  el.n = 4;
  for (Index i = 0; i < 3; ++i) el.push(i, i + 1);
  gen::symmetrize(el);
  auto t = testutil::TestGraph::from_edges("path", std::move(el), false);
  grb::Vector<double> lcc;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lx::local_clustering_coefficient(&lcc, t.lg, msg), LAGRAPH_OK);
  EXPECT_EQ(lcc.nvals(), 4u);  // dense output
  for (Index v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ(*lcc.get(v), 0.0);
}

TEST(Lcc, MatchesBruteForceOnGenerated) {
  auto t = testutil::random_kron(6, 6, 3);
  grb::Vector<double> lcc;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lx::local_clustering_coefficient(&lcc, t.lg, msg), LAGRAPH_OK);
  // brute force from the reference CSR
  const auto n = t.ref.num_nodes();
  for (gapbs::NodeId v = 0; v < n; ++v) {
    auto neigh = t.ref.out_neigh(v);
    double closed = 0;
    for (auto a : neigh) {
      for (auto b : neigh) {
        if (a == b) continue;
        for (auto c : t.ref.out_neigh(a)) {
          if (c == b) closed += 1;
        }
      }
    }
    double deg = static_cast<double>(neigh.size());
    double want = deg >= 2 ? closed / (deg * (deg - 1.0)) : 0.0;
    EXPECT_NEAR(lcc.get(static_cast<Index>(v)).value_or(-1), want, 1e-9)
        << "node " << v;
  }
}

// -- Bellman-Ford ----------------------------------------------------------------------

TEST(BellmanFord, MatchesDijkstraOnPositiveWeights) {
  auto t = testutil::random_directed(6, 6, 2);
  grb::Vector<double> dist;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lx::bellman_ford(&dist, t.lg, 0, msg), LAGRAPH_OK);
  auto want = gapbs::dijkstra(t.ref, 0);
  for (Index v = 0; v < dist.size(); ++v) {
    if (std::isinf(want[v])) {
      EXPECT_FALSE(dist.has(v));
    } else {
      EXPECT_DOUBLE_EQ(*dist.get(v), want[v]);
    }
  }
}

TEST(BellmanFord, HandlesNegativeEdges) {
  gen::EdgeList el;
  el.n = 4;
  el.push(0, 1);
  el.push(1, 2);
  el.push(0, 2);
  el.push(2, 3);
  el.weight = {5.0, -3.0, 4.0, 1.0};
  auto t = testutil::TestGraph::from_edges("neg", std::move(el), true);
  grb::Vector<double> dist;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lx::bellman_ford(&dist, t.lg, 0, msg), LAGRAPH_OK);
  EXPECT_DOUBLE_EQ(*dist.get(2), 2.0);  // 0->1->2 beats 0->2
  EXPECT_DOUBLE_EQ(*dist.get(3), 3.0);
}

TEST(BellmanFord, DetectsNegativeCycle) {
  gen::EdgeList el;
  el.n = 3;
  el.push(0, 1);
  el.push(1, 2);
  el.push(2, 0);
  el.weight = {1.0, -3.0, 1.0};
  auto t = testutil::TestGraph::from_edges("negcycle", std::move(el), true);
  grb::Vector<double> dist;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lx::bellman_ford(&dist, t.lg, 0, msg), LAGRAPH_INVALID_VALUE);
  EXPECT_NE(std::string(msg).find("negative cycle"), std::string::npos);
}

// -- multi-source BFS --------------------------------------------------------------------

TEST(Msbfs, MatchesSingleSourceBfs) {
  auto t = testutil::random_kron(6, 6, 4);
  const grb::Index sources[] = {0, 7, 33};
  grb::Matrix<std::int64_t> level(0, 0);
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lx::msbfs_levels(&level, t.lg, sources, msg), LAGRAPH_OK) << msg;
  ASSERT_EQ(level.nrows(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    auto want = gapbs::bfs_levels_reference(
        t.ref, static_cast<gapbs::NodeId>(sources[i]));
    for (Index v = 0; v < t.lg.nodes(); ++v) {
      auto got = level.get(i, v);
      if (want[v] < 0) {
        EXPECT_FALSE(got.has_value()) << "row " << i << " node " << v;
      } else {
        ASSERT_TRUE(got.has_value()) << "row " << i << " node " << v;
        EXPECT_EQ(*got, want[v]) << "row " << i << " node " << v;
      }
    }
  }
}

TEST(Msbfs, EmptyBatchIsError) {
  auto t = testutil::tiny_directed();
  grb::Matrix<std::int64_t> level(0, 0);
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lx::msbfs_levels(&level, t.lg, {}, msg), LAGRAPH_INVALID_VALUE);
}

// -- CDLP --------------------------------------------------------------------------

TEST(Cdlp, RecoversTwoCliques) {
  // Two 5-cliques joined by one bridge edge: labels must split 5/5.
  gen::EdgeList el;
  el.n = 10;
  for (Index a = 0; a < 5; ++a) {
    for (Index b = a + 1; b < 5; ++b) {
      el.push(a, b);
      el.push(a + 5, b + 5);
    }
  }
  el.push(0, 5);
  gen::symmetrize(el);
  auto t = testutil::TestGraph::from_edges("cliques", std::move(el), false);
  grb::Vector<grb::Index> labels;
  int rounds = 0;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lx::cdlp(&labels, &rounds, t.lg, 20, msg), LAGRAPH_OK) << msg;
  EXPECT_EQ(labels.nvals(), 10u);
  // within each clique, all labels agree
  auto l0 = *labels.get(1);
  auto l5 = *labels.get(6);
  for (Index v = 1; v < 5; ++v) EXPECT_EQ(*labels.get(v), l0) << v;
  for (Index v = 6; v < 10; ++v) EXPECT_EQ(*labels.get(v), l5) << v;
  EXPECT_NE(l0, l5);
  EXPECT_GE(rounds, 1);
}

TEST(Cdlp, IsolatedNodesKeepOwnLabel) {
  // A triangle (converges to one label under synchronous propagation — a
  // lone edge would oscillate, the classic LPA two-cycle) plus two isolated
  // nodes that must keep their own labels.
  gen::EdgeList el;
  el.n = 5;
  el.push(0, 1);
  el.push(1, 2);
  el.push(0, 2);
  gen::symmetrize(el);
  auto t = testutil::TestGraph::from_edges("iso", std::move(el), false);
  grb::Vector<grb::Index> labels;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lx::cdlp(&labels, nullptr, t.lg, 10, msg), LAGRAPH_OK);
  EXPECT_EQ(*labels.get(3), 3u);
  EXPECT_EQ(*labels.get(4), 4u);
  EXPECT_EQ(*labels.get(0), *labels.get(1));
  EXPECT_EQ(*labels.get(1), *labels.get(2));
}

TEST(Cdlp, PlantedPartitionRecovery) {
  auto el = gen::planted_partition(4, 16, 8, 0.95, 7);
  gen::remove_self_loops(el);
  auto t = testutil::TestGraph::from_edges("sbm", std::move(el), false);
  grb::Vector<grb::Index> labels;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lx::cdlp(&labels, nullptr, t.lg, 50, msg), LAGRAPH_OK);
  // majority agreement within each planted community
  std::size_t agree = 0;
  for (Index c = 0; c < 4; ++c) {
    std::map<grb::Index, std::size_t> votes;
    for (Index v = c * 16; v < (c + 1) * 16; ++v) ++votes[*labels.get(v)];
    std::size_t best = 0;
    for (auto &[l, n] : votes) best = std::max(best, n);
    agree += best;
  }
  EXPECT_GT(agree, 48u);  // > 75% purity on a strongly-separated SBM
}

TEST(Cdlp, InvalidArguments) {
  auto t = testutil::tiny_undirected();
  grb::Vector<grb::Index> labels;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lx::cdlp(&labels, nullptr, t.lg, 0, msg), LAGRAPH_INVALID_VALUE);
  EXPECT_EQ(lx::cdlp<double>(nullptr, nullptr, t.lg, 5, msg),
            LAGRAPH_NULL_POINTER);
}

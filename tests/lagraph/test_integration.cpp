// End-to-end integration test: the full user pipeline on one graph —
// generate, write to Matrix Market, read back, wrap in a Graph, cache
// properties, run all six GAP kernels plus the experimental tier, and
// validate every result against the direct oracles. This is the "someone
// actually adopts the library" test.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "common/test_graphs.hpp"

using grb::Index;

TEST(Integration, FullPipelineOnKronGraph) {
  char msg[LAGRAPH_MSG_LEN];

  // 1. generate and persist
  auto el = gen::kronecker(7, 8, 0xfeedULL);
  gen::add_uniform_weights(el, 1, 9, 3);
  auto original = gen::to_matrix<double>(el);
  std::stringstream file;
  ASSERT_EQ(lagraph::mm_write(original, file, msg), LAGRAPH_OK);

  // 2. load and build the Graph
  grb::Matrix<double> loaded(0, 0);
  ASSERT_EQ(lagraph::mm_read(loaded, file, msg), LAGRAPH_OK);
  ASSERT_EQ(loaded, original);
  lagraph::Graph<double> g;
  ASSERT_EQ(lagraph::make_graph(g, std::move(loaded),
                                lagraph::Kind::adjacency_undirected, msg),
            LAGRAPH_OK);

  // 3. cache everything an Advanced-mode user would
  ASSERT_EQ(lagraph::property_at(g, msg), LAGRAPH_OK);
  ASSERT_EQ(lagraph::property_row_degree(g, msg), LAGRAPH_OK);
  ASSERT_EQ(lagraph::property_col_degree(g, msg), LAGRAPH_OK);
  ASSERT_EQ(lagraph::property_symmetric_pattern(g, msg), LAGRAPH_OK);
  ASSERT_EQ(lagraph::property_ndiag(g, msg), LAGRAPH_OK);
  ASSERT_EQ(lagraph::check_graph(g, msg), LAGRAPH_OK) << msg;

  // reference views
  auto ref = gapbs::Graph::build(el, /*directed=*/false);

  // 4. the six kernels, each validated
  {  // BFS
    grb::Vector<std::int64_t> level;
    ASSERT_EQ(lagraph::advanced::bfs_do(&level, nullptr, g, 1, msg),
              LAGRAPH_OK);
    auto want = gapbs::bfs_levels_reference(ref, 1);
    for (Index v = 0; v < g.nodes(); ++v) {
      if (want[v] < 0) {
        EXPECT_FALSE(level.has(v));
      } else {
        EXPECT_EQ(level.get(v).value_or(-1), want[v]);
      }
    }
  }
  {  // PR
    grb::Vector<double> r;
    ASSERT_EQ(lagraph::advanced::pagerank_gap(&r, nullptr, g, 0.85, 1e-9,
                                              300, msg),
              LAGRAPH_OK);
    auto want = gapbs::pagerank(ref, 0.85, 1e-9, 300);
    for (Index v = 0; v < g.nodes(); ++v) {
      EXPECT_NEAR(r.get(v).value_or(0), want[v], 1e-6);
    }
  }
  {  // CC
    grb::Vector<Index> comp;
    ASSERT_EQ(lagraph::connected_components(&comp, g, msg), LAGRAPH_OK);
    auto want = gapbs::cc_reference(ref);
    std::map<gapbs::NodeId, Index> m1;
    for (Index v = 0; v < g.nodes(); ++v) {
      auto [it, ins] = m1.try_emplace(want[v], *comp.get(v));
      EXPECT_EQ(it->second, *comp.get(v));
    }
  }
  {  // SSSP
    grb::Vector<double> dist;
    ASSERT_EQ(lagraph::advanced::sssp_delta_stepping(&dist, g, 1, 3.0, msg),
              LAGRAPH_OK);
    auto want = gapbs::dijkstra(ref, 1);
    for (Index v = 0; v < g.nodes(); ++v) {
      if (std::isinf(want[v])) {
        EXPECT_FALSE(dist.has(v));
      } else {
        EXPECT_DOUBLE_EQ(dist.get(v).value_or(-1), want[v]);
      }
    }
  }
  {  // TC
    std::uint64_t count = 0;
    ASSERT_EQ(lagraph::triangle_count(&count, g, msg), LAGRAPH_OK);
    EXPECT_EQ(count, gapbs::tc_reference(ref));
  }
  {  // BC
    const grb::Index srcs[] = {1, 2};
    grb::Vector<double> c;
    ASSERT_EQ(lagraph::betweenness_centrality(&c, g, srcs, msg), LAGRAPH_OK);
    const gapbs::NodeId rsrcs[] = {1, 2};
    auto want = gapbs::bc_reference(ref, rsrcs);
    for (Index v = 0; v < g.nodes(); ++v) {
      EXPECT_NEAR(c.get(v).value_or(0), want[v], 1e-6);
    }
  }

  // 5. experimental tier smoke pass on the same graph
  {
    grb::Vector<grb::Bool> mis;
    ASSERT_EQ(lagraph::experimental::maximal_independent_set(&mis, g, 9, msg),
              LAGRAPH_OK);
    EXPECT_GT(mis.nvals(), 0u);
    grb::Vector<std::int64_t> core;
    ASSERT_EQ(lagraph::experimental::coreness(&core, g, msg), LAGRAPH_OK);
    grb::Vector<double> lcc;
    ASSERT_EQ(lagraph::experimental::local_clustering_coefficient(&lcc, g,
                                                                  msg),
              LAGRAPH_OK);
    grb::Vector<double> bf;
    ASSERT_EQ(lagraph::experimental::bellman_ford(&bf, g, 1, msg),
              LAGRAPH_OK);
  }

  // 6. the cache must have stayed consistent throughout
  EXPECT_EQ(lagraph::check_graph(g, msg), LAGRAPH_OK) << msg;
}

TEST(Integration, FormatsSurviveTheWholePipeline) {
  // Run BFS + CC with the adjacency matrix in each matrix format; answers
  // must be identical.
  auto t = testutil::random_kron(7, 6, 5);
  char msg[LAGRAPH_MSG_LEN];
  grb::Vector<std::int64_t> want_level;
  ASSERT_EQ(lagraph::bfs(&want_level, nullptr, t.lg, 0, msg), LAGRAPH_OK);
  grb::Vector<Index> want_comp;
  ASSERT_EQ(lagraph::connected_components(&want_comp, t.lg, msg), LAGRAPH_OK);

  for (int fmt = 0; fmt < 3; ++fmt) {
    auto g2 = t.lg;  // copy
    lagraph::delete_properties(g2, msg);
    if (fmt == 0) {
      g2.a.to_hypersparse();
    } else if (fmt == 1) {
      g2.a.to_bitmap();
    }  // fmt 2: leave CSR
    grb::Vector<std::int64_t> level;
    ASSERT_EQ(lagraph::bfs(&level, nullptr, g2, 0, msg), LAGRAPH_OK)
        << "fmt " << fmt;
    EXPECT_EQ(level, want_level) << "fmt " << fmt;
    grb::Vector<Index> comp;
    ASSERT_EQ(lagraph::connected_components(&comp, g2, msg), LAGRAPH_OK);
    EXPECT_EQ(comp, want_comp) << "fmt " << fmt;
  }
}

TEST(Integration, BinaryFormatFasterPathRoundTrip) {
  // The BinRead/BinWrite pair on a real generated graph, through the Graph.
  auto t = testutil::random_directed(8, 8, 2);
  char msg[LAGRAPH_MSG_LEN];
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_EQ(lagraph::bin_write(t.lg.a, blob, msg), LAGRAPH_OK);
  grb::Matrix<double> back(0, 0);
  ASSERT_EQ(lagraph::bin_read(back, blob, msg), LAGRAPH_OK);
  EXPECT_EQ(back, t.lg.a);
}

// Tests for the §V utility functions: Pattern, IsEqual/IsAll, SortByDegree,
// SampleDegree, TypeName/KindName, Tic/Toc, Sort1/2/3, memory wrappers.
#include <gtest/gtest.h>

#include <thread>

#include "common/test_graphs.hpp"

using grb::Index;

TEST(Utils, Pattern) {
  grb::Matrix<double> a(2, 2);
  a.set_element(0, 1, 3.25);
  a.set_element(1, 0, -1.0);
  grb::Matrix<grb::Bool> p(0, 0);
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::pattern(p, a, msg), LAGRAPH_OK);
  EXPECT_EQ(p.nvals(), 2u);
  EXPECT_EQ(p.get(0, 1), grb::Bool(1));
}

TEST(Utils, IsEqual) {
  grb::Matrix<double> a(2, 2);
  a.set_element(0, 0, 1.0);
  grb::Matrix<double> b = a;
  bool eq = false;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::is_equal(&eq, a, b, msg), LAGRAPH_OK);
  EXPECT_TRUE(eq);
  b.set_element(0, 0, 2.0);
  ASSERT_EQ(lagraph::is_equal(&eq, a, b, msg), LAGRAPH_OK);
  EXPECT_FALSE(eq);
  // different pattern
  grb::Matrix<double> c(2, 2);
  c.set_element(1, 1, 1.0);
  ASSERT_EQ(lagraph::is_equal(&eq, a, c, msg), LAGRAPH_OK);
  EXPECT_FALSE(eq);
}

TEST(Utils, IsAllWithCustomComparator) {
  grb::Matrix<double> a(1, 2);
  a.set_element(0, 0, 1.0);
  a.set_element(0, 1, 5.0);
  grb::Matrix<double> b(1, 2);
  b.set_element(0, 0, 1.1);
  b.set_element(0, 1, 5.05);
  bool close = false;
  char msg[LAGRAPH_MSG_LEN];
  auto near = [](double x, double y) { return std::fabs(x - y) < 0.2; };
  ASSERT_EQ(lagraph::is_all(&close, a, b, near, msg), LAGRAPH_OK);
  EXPECT_TRUE(close);
}

TEST(Utils, SortByDegree) {
  auto t = testutil::tiny_undirected();
  char msg[LAGRAPH_MSG_LEN];
  // advanced-style: degrees must be cached first
  std::vector<Index> perm;
  EXPECT_EQ(lagraph::sort_by_degree(perm, t.lg, true, true, msg),
            LAGRAPH_PROPERTY_MISSING);
  lagraph::property_row_degree(t.lg, msg);
  ASSERT_EQ(lagraph::sort_by_degree(perm, t.lg, true, true, msg), LAGRAPH_OK);
  ASSERT_EQ(perm.size(), t.lg.nodes());
  // ascending degrees
  auto degree_of = [&](Index v) {
    return t.lg.row_degree->get(v).value_or(0);
  };
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(degree_of(perm[i - 1]), degree_of(perm[i]));
  }
  // descending
  ASSERT_EQ(lagraph::sort_by_degree(perm, t.lg, true, false, msg),
            LAGRAPH_OK);
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_GE(degree_of(perm[i - 1]), degree_of(perm[i]));
  }
}

TEST(Utils, SampleDegree) {
  auto t = testutil::random_kron(8, 8, 2);
  char msg[LAGRAPH_MSG_LEN];
  lagraph::property_row_degree(t.lg, msg);
  double mean = 0;
  double median = 0;
  ASSERT_EQ(lagraph::sample_degree(&mean, &median, t.lg, true, 200, 7, msg),
            LAGRAPH_OK);
  EXPECT_GT(mean, 0.0);
  EXPECT_GE(median, 0.0);
  // Kronecker graphs are skewed: mean well above median.
  EXPECT_GT(mean, median);
}

TEST(Utils, TypeNames) {
  EXPECT_STREQ(lagraph::type_name<double>(), "fp64");
  EXPECT_STREQ(lagraph::type_name<float>(), "fp32");
  EXPECT_STREQ(lagraph::type_name<std::int64_t>(), "int64");
  EXPECT_STREQ(lagraph::type_name<std::uint64_t>(), "uint64");
  EXPECT_STREQ(lagraph::type_name<grb::Bool>(), "bool");
}

TEST(Utils, KindNames) {
  EXPECT_STREQ(lagraph::kind_name(lagraph::Kind::adjacency_directed),
               "directed");
  EXPECT_STREQ(lagraph::kind_name(lagraph::Kind::adjacency_undirected),
               "undirected");
}

TEST(Utils, TicTocMeasuresTime) {
  lagraph::Timer t;
  lagraph::tic(t);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  double elapsed = lagraph::toc(t);
  EXPECT_GE(elapsed, 0.010);
  EXPECT_LT(elapsed, 5.0);
}

TEST(Utils, Sort1) {
  std::vector<std::int64_t> a = {5, 1, 4, 1, 3};
  lagraph::sort1(a);
  EXPECT_EQ(a, (std::vector<std::int64_t>{1, 1, 3, 4, 5}));
}

TEST(Utils, Sort2KeepsPairsTogether) {
  std::vector<std::int64_t> a = {3, 1, 2, 1};
  std::vector<std::int64_t> b = {30, 11, 20, 10};
  lagraph::sort2(a, b);
  EXPECT_EQ(a, (std::vector<std::int64_t>{1, 1, 2, 3}));
  EXPECT_EQ(b, (std::vector<std::int64_t>{10, 11, 20, 30}));
}

TEST(Utils, Sort3LexicographicTriples) {
  std::vector<std::int64_t> a = {2, 1, 2, 1};
  std::vector<std::int64_t> b = {1, 2, 1, 2};
  std::vector<std::int64_t> c = {9, 8, 7, 6};
  lagraph::sort3(a, b, c);
  EXPECT_EQ(a, (std::vector<std::int64_t>{1, 1, 2, 2}));
  EXPECT_EQ(b, (std::vector<std::int64_t>{2, 2, 1, 1}));
  EXPECT_EQ(c, (std::vector<std::int64_t>{6, 8, 7, 9}));
}

namespace {
int g_malloc_calls = 0;
void *counting_malloc(std::size_t n) {
  ++g_malloc_calls;
  return std::malloc(n);
}
void *counting_calloc(std::size_t c, std::size_t s) {
  return std::calloc(c, s);
}
void *counting_realloc(void *p, std::size_t n) { return std::realloc(p, n); }
void counting_free(void *p) { std::free(p); }
}  // namespace

TEST(Utils, MemoryManagerHooks) {
  char msg[LAGRAPH_MSG_LEN];
  lagraph::MemoryFunctions fns{counting_malloc, counting_calloc,
                               counting_realloc, counting_free};
  ASSERT_EQ(lagraph::set_memory_functions(fns, msg), LAGRAPH_OK);
  void *p = lagraph::lagraph_malloc(64);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(g_malloc_calls, 1);
  p = lagraph::lagraph_realloc(p, 128);
  lagraph::lagraph_free(p);
  // partial registration rejected
  lagraph::MemoryFunctions bad{counting_malloc, nullptr, nullptr, nullptr};
  EXPECT_EQ(lagraph::set_memory_functions(bad, msg), LAGRAPH_INVALID_VALUE);
  // reset to defaults
  ASSERT_EQ(lagraph::set_memory_functions({}, msg), LAGRAPH_OK);
  p = lagraph::lagraph_calloc(4, 8);
  EXPECT_NE(p, nullptr);
  lagraph::lagraph_free(p);
  EXPECT_EQ(g_malloc_calls, 1);
}

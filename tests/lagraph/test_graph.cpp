// Tests for the Graph object: move construction (LAGraph_New), cached
// properties, consistency checking, and display (paper §II-A, §V).
#include <gtest/gtest.h>

#include <sstream>

#include "common/test_graphs.hpp"

using grb::Index;
using lagraph::BooleanProperty;
using lagraph::Graph;
using lagraph::Kind;

namespace {

grb::Matrix<double> small() {
  grb::Matrix<double> m(4, 4);
  m.set_element(0, 1, 1.0);
  m.set_element(1, 2, 1.0);
  m.set_element(2, 0, 1.0);
  m.set_element(2, 3, 1.0);
  return m;
}

}  // namespace

TEST(Graph, MakeGraphMovesMatrix) {
  auto m = small();
  EXPECT_EQ(m.nvals(), 4u);
  Graph<double> g;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::make_graph(g, std::move(m), Kind::adjacency_directed,
                                msg),
            LAGRAPH_OK);
  // The paper's move semantics: "Following this call, M will be NULL."
  EXPECT_EQ(m.nrows(), 0u);
  EXPECT_EQ(g.a.nvals(), 4u);
  EXPECT_EQ(g.kind, Kind::adjacency_directed);
  // properties all unknown initially
  EXPECT_FALSE(g.at.has_value());
  EXPECT_FALSE(g.row_degree.has_value());
  EXPECT_EQ(g.a_pattern_is_symmetric, BooleanProperty::unknown);
  EXPECT_EQ(g.ndiag, -1);
}

TEST(Graph, MakeGraphRejectsRectangular) {
  grb::Matrix<double> m(2, 3);
  Graph<double> g;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::make_graph(g, std::move(m), Kind::adjacency_directed,
                                msg),
            LAGRAPH_INVALID_VALUE);
  EXPECT_GT(std::strlen(msg), 0u);
}

TEST(Graph, PropertyAtComputesTranspose) {
  Graph<double> g(small(), Kind::adjacency_directed);
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::property_at(g, msg), LAGRAPH_OK);
  ASSERT_TRUE(g.at.has_value());
  EXPECT_TRUE(g.at->has(1, 0));
  EXPECT_TRUE(g.at->has(3, 2));
  // idempotent
  ASSERT_EQ(lagraph::property_at(g, msg), LAGRAPH_OK);
}

TEST(Graph, PropertyAtUndirectedIsNoOp) {
  auto t = testutil::tiny_undirected();
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::property_at(t.lg, msg), LAGRAPH_OK);
  EXPECT_FALSE(t.lg.at.has_value());
  // transpose_view falls back to A itself
  EXPECT_EQ(t.lg.transpose_view(), &t.lg.a);
}

TEST(Graph, PropertyDegrees) {
  Graph<double> g(small(), Kind::adjacency_directed);
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::property_row_degree(g, msg), LAGRAPH_OK);
  ASSERT_EQ(lagraph::property_col_degree(g, msg), LAGRAPH_OK);
  EXPECT_EQ(g.row_degree->get(2), 2);
  EXPECT_EQ(g.row_degree->get(0), 1);
  EXPECT_FALSE(g.row_degree->has(3));  // no out-edges: no entry
  EXPECT_EQ(g.col_degree->get(0), 1);
  EXPECT_EQ(g.col_degree->get(3), 1);
}

TEST(Graph, PropertySymmetricPattern) {
  Graph<double> g(small(), Kind::adjacency_directed);
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::property_symmetric_pattern(g, msg), LAGRAPH_OK);
  EXPECT_EQ(g.a_pattern_is_symmetric, BooleanProperty::no);

  auto t = testutil::tiny_undirected();
  ASSERT_EQ(lagraph::property_symmetric_pattern(t.lg, msg), LAGRAPH_OK);
  EXPECT_EQ(t.lg.a_pattern_is_symmetric, BooleanProperty::yes);
}

TEST(Graph, PropertyNDiag) {
  auto m = small();
  m.set_element(1, 1, 5.0);
  Graph<double> g(std::move(m), Kind::adjacency_directed);
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::property_ndiag(g, msg), LAGRAPH_OK);
  EXPECT_EQ(g.ndiag, 1);
}

TEST(Graph, DeleteProperties) {
  Graph<double> g(small(), Kind::adjacency_directed);
  char msg[LAGRAPH_MSG_LEN];
  lagraph::property_at(g, msg);
  lagraph::property_row_degree(g, msg);
  lagraph::property_ndiag(g, msg);
  ASSERT_EQ(lagraph::delete_properties(g, msg), LAGRAPH_OK);
  EXPECT_FALSE(g.at.has_value());
  EXPECT_FALSE(g.row_degree.has_value());
  EXPECT_EQ(g.ndiag, -1);
  EXPECT_EQ(g.a_pattern_is_symmetric, BooleanProperty::unknown);
}

TEST(Graph, CheckGraphAcceptsConsistent) {
  Graph<double> g(small(), Kind::adjacency_directed);
  char msg[LAGRAPH_MSG_LEN];
  lagraph::property_at(g, msg);
  lagraph::property_row_degree(g, msg);
  lagraph::property_ndiag(g, msg);
  EXPECT_EQ(lagraph::check_graph(g, msg), LAGRAPH_OK);
}

TEST(Graph, CheckGraphDetectsStaleTranspose) {
  // The Graph is not opaque: user code can corrupt it; check_graph is the
  // safety net (paper §V).
  Graph<double> g(small(), Kind::adjacency_directed);
  char msg[LAGRAPH_MSG_LEN];
  lagraph::property_at(g, msg);
  g.a.set_element(3, 0, 7.0);  // modify A without updating AT
  EXPECT_EQ(lagraph::check_graph(g, msg), LAGRAPH_INVALID_GRAPH);
  EXPECT_NE(std::string(msg).find("transpose"), std::string::npos);
}

TEST(Graph, CheckGraphDetectsWrongDegrees) {
  Graph<double> g(small(), Kind::adjacency_directed);
  char msg[LAGRAPH_MSG_LEN];
  lagraph::property_row_degree(g, msg);
  g.row_degree->set_element(0, 99);
  EXPECT_EQ(lagraph::check_graph(g, msg), LAGRAPH_INVALID_GRAPH);
}

TEST(Graph, CheckGraphDetectsBogusSymmetryFlag) {
  Graph<double> g(small(), Kind::adjacency_directed);
  g.a_pattern_is_symmetric = BooleanProperty::yes;  // a lie
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::check_graph(g, msg), LAGRAPH_INVALID_GRAPH);
}

TEST(Graph, CheckGraphDetectsWrongNDiag) {
  Graph<double> g(small(), Kind::adjacency_directed);
  g.ndiag = 3;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::check_graph(g, msg), LAGRAPH_INVALID_GRAPH);
}

TEST(Graph, DisplayGraphPrints) {
  Graph<double> g(small(), Kind::adjacency_directed);
  std::ostringstream os;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::display_graph(g, os, msg), LAGRAPH_OK);
  EXPECT_NE(os.str().find("directed"), std::string::npos);
  EXPECT_NE(os.str().find("4 nodes"), std::string::npos);
}

TEST(Graph, UserCanSetPropertiesDirectly) {
  // Non-opaque design: an algorithm that computes AT may store it itself.
  Graph<double> g(small(), Kind::adjacency_directed);
  g.at = grb::transposed(g.a);
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::check_graph(g, msg), LAGRAPH_OK);
  EXPECT_EQ(g.transpose_view(), &*g.at);
}

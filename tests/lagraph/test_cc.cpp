// Connected components (FastSV) tests: labels validated against the BFS
// flood-fill oracle — component partition must match exactly, and FastSV's
// labels are the minimum node id of each component.
#include <gtest/gtest.h>

#include <map>

#include "common/test_graphs.hpp"

using grb::Index;

namespace {

void expect_same_partition(const testutil::TestGraph &t,
                           const grb::Vector<Index> &comp) {
  auto want = gapbs::cc_reference(t.ref);
  ASSERT_EQ(comp.size(), want.size());
  ASSERT_EQ(comp.nvals(), comp.size());  // every node labelled
  // same partition: label equality must match reference label equality
  std::map<gapbs::NodeId, Index> ref_to_got;
  for (Index v = 0; v < comp.size(); ++v) {
    Index got = *comp.get(v);
    auto [it, inserted] = ref_to_got.try_emplace(want[v], got);
    EXPECT_EQ(it->second, got) << "node " << v << " split from its component";
  }
  // distinct reference components must have distinct labels
  std::map<Index, gapbs::NodeId> got_to_ref;
  for (Index v = 0; v < comp.size(); ++v) {
    Index got = *comp.get(v);
    auto [it, inserted] = got_to_ref.try_emplace(got, want[v]);
    EXPECT_EQ(it->second, want[v]) << "node " << v << " merged components";
  }
}

void expect_min_labels(const grb::Vector<Index> &comp) {
  // FastSV converges to the minimum id in each tree.
  for (Index v = 0; v < comp.size(); ++v) {
    Index label = *comp.get(v);
    EXPECT_LE(label, v);
    EXPECT_EQ(*comp.get(label), label) << "label " << label << " not a root";
  }
}

}  // namespace

TEST(Cc, TwoComponents) {
  auto t = testutil::two_components();
  grb::Vector<Index> comp;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::connected_components(&comp, t.lg, msg), LAGRAPH_OK)
      << msg;
  expect_same_partition(t, comp);
  expect_min_labels(comp);
  EXPECT_EQ(*comp.get(0), 0u);
  EXPECT_EQ(*comp.get(4), 4u);
}

TEST(Cc, SingleComponent) {
  auto t = testutil::tiny_undirected();
  grb::Vector<Index> comp;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::connected_components(&comp, t.lg, msg), LAGRAPH_OK);
  for (Index v = 0; v < comp.size(); ++v) EXPECT_EQ(*comp.get(v), 0u);
}

TEST(Cc, IsolatedVertices) {
  gen::EdgeList el;
  el.n = 6;
  el.push(1, 2);
  gen::symmetrize(el);
  auto t = testutil::TestGraph::from_edges("isolated", std::move(el), false);
  grb::Vector<Index> comp;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::connected_components(&comp, t.lg, msg), LAGRAPH_OK);
  EXPECT_EQ(comp.nvals(), 6u);
  EXPECT_EQ(*comp.get(0), 0u);
  EXPECT_EQ(*comp.get(1), 1u);
  EXPECT_EQ(*comp.get(2), 1u);
  EXPECT_EQ(*comp.get(5), 5u);
}

TEST(Cc, DirectedGraphUsesWeakConnectivity) {
  // 0 -> 1 -> 2 with no back edges: weakly one component.
  gen::EdgeList el;
  el.n = 3;
  el.push(0, 1);
  el.push(1, 2);
  auto t = testutil::TestGraph::from_edges("chain", std::move(el), true);
  grb::Vector<Index> comp;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::connected_components(&comp, t.lg, msg), LAGRAPH_OK);
  EXPECT_EQ(*comp.get(0), 0u);
  EXPECT_EQ(*comp.get(1), 0u);
  EXPECT_EQ(*comp.get(2), 0u);
}

TEST(Cc, MatchesOracleOnGeneratedGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    // sparse random graphs: several components at this density
    auto t = testutil::random_undirected(7, 1, seed);
    grb::Vector<Index> comp;
    char msg[LAGRAPH_MSG_LEN];
    ASSERT_EQ(lagraph::connected_components(&comp, t.lg, msg), LAGRAPH_OK);
    expect_same_partition(t, comp);
    expect_min_labels(comp);
    // also against the gapbs SV kernel's partition
    auto got2 = gapbs::cc(t.ref);
    auto want = gapbs::cc_reference(t.ref);
    std::map<gapbs::NodeId, gapbs::NodeId> m;
    for (std::size_t v = 0; v < want.size(); ++v) {
      auto [it, ins] = m.try_emplace(want[v], got2[v]);
      EXPECT_EQ(it->second, got2[v]);
    }
  }
}

TEST(Cc, KronGraphMostlyOneGiantComponent) {
  auto t = testutil::random_kron(8, 8, 9);
  grb::Vector<Index> comp;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::connected_components(&comp, t.lg, msg), LAGRAPH_OK);
  expect_same_partition(t, comp);
}

TEST(Cc, NullOutputIsError) {
  auto t = testutil::two_components();
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::connected_components<double>(nullptr, t.lg, msg),
            LAGRAPH_NULL_POINTER);
}

// Triangle counting tests: against the brute-force oracle and the gapbs
// kernel, with and without the degree presort, fused and unfused.
#include <gtest/gtest.h>

#include "common/test_graphs.hpp"

using grb::Index;
using lagraph::TcPresort;

TEST(Tc, TinyUndirectedHasTwoTriangles) {
  auto t = testutil::tiny_undirected();
  std::uint64_t count = 0;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::triangle_count(&count, t.lg, msg), LAGRAPH_OK) << msg;
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(gapbs::tc_reference(t.ref), 2u);
}

TEST(Tc, CliqueCounts) {
  // K5 has C(5,3) = 10 triangles.
  gen::EdgeList el;
  el.n = 5;
  for (Index i = 0; i < 5; ++i) {
    for (Index j = i + 1; j < 5; ++j) el.push(i, j);
  }
  gen::symmetrize(el);
  auto t = testutil::TestGraph::from_edges("k5", std::move(el), false);
  std::uint64_t count = 0;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::triangle_count(&count, t.lg, msg), LAGRAPH_OK);
  EXPECT_EQ(count, 10u);
}

TEST(Tc, TriangleFreeGraph) {
  // A 6-cycle has no triangles.
  gen::EdgeList el;
  el.n = 6;
  for (Index i = 0; i < 6; ++i) el.push(i, (i + 1) % 6);
  gen::symmetrize(el);
  auto t = testutil::TestGraph::from_edges("c6", std::move(el), false);
  std::uint64_t count = 99;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::triangle_count(&count, t.lg, msg), LAGRAPH_OK);
  EXPECT_EQ(count, 0u);
}

TEST(Tc, MatchesOraclesOnGeneratedGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto t = testutil::random_kron(7, 6, seed);
    std::uint64_t count = 0;
    char msg[LAGRAPH_MSG_LEN];
    ASSERT_EQ(lagraph::triangle_count(&count, t.lg, msg), LAGRAPH_OK) << msg;
    EXPECT_EQ(count, gapbs::tc_reference(t.ref)) << "seed " << seed;
    EXPECT_EQ(count, gapbs::tc(t.ref)) << "seed " << seed;
  }
}

TEST(Tc, PresortOnOffAndFusedAllAgree) {
  auto t = testutil::random_kron(8, 8, 4);
  char msg[LAGRAPH_MSG_LEN];
  lagraph::property_row_degree(t.lg, msg);
  lagraph::property_ndiag(t.lg, msg);
  lagraph::property_symmetric_pattern(t.lg, msg);
  std::uint64_t want = gapbs::tc_reference(t.ref);
  for (auto presort : {TcPresort::automatic, TcPresort::yes, TcPresort::no}) {
    for (bool fused : {false, true}) {
      std::uint64_t count = 0;
      ASSERT_EQ(lagraph::advanced::triangle_count(&count, t.lg, presort,
                                                  fused, msg),
                LAGRAPH_OK)
          << msg;
      EXPECT_EQ(count, want) << "presort=" << int(presort)
                             << " fused=" << fused;
    }
  }
}

TEST(Tc, BasicModeStripsSelfLoops) {
  gen::EdgeList el;
  el.n = 3;
  el.push(0, 1);
  el.push(1, 2);
  el.push(0, 2);
  gen::symmetrize(el);
  el.push(1, 1);  // self loop
  auto t = testutil::TestGraph::from_edges("loop", std::move(el), false);
  std::uint64_t count = 0;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::triangle_count(&count, t.lg, msg), LAGRAPH_OK) << msg;
  EXPECT_EQ(count, 1u);
}

TEST(Tc, DirectedGraphIsRejected) {
  auto t = testutil::tiny_directed();
  std::uint64_t count = 0;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::triangle_count(&count, t.lg, msg),
            LAGRAPH_INVALID_GRAPH);
}

TEST(Tc, AdvancedModeRequiresProperties) {
  auto t = testutil::tiny_undirected();
  std::uint64_t count = 0;
  char msg[LAGRAPH_MSG_LEN];
  // ndiag unknown -> property missing
  EXPECT_EQ(lagraph::advanced::triangle_count(&count, t.lg,
                                              TcPresort::automatic, false,
                                              msg),
            LAGRAPH_PROPERTY_MISSING);
  lagraph::property_ndiag(t.lg, msg);
  // degrees missing for the automatic heuristic
  EXPECT_EQ(lagraph::advanced::triangle_count(&count, t.lg,
                                              TcPresort::automatic, false,
                                              msg),
            LAGRAPH_PROPERTY_MISSING);
  // presort=no works without degrees
  EXPECT_EQ(lagraph::advanced::triangle_count(&count, t.lg, TcPresort::no,
                                              false, msg),
            LAGRAPH_OK);
  EXPECT_EQ(count, 2u);
}

// Golden-file tests: the six GAP kernels (BFS, BC, PageRank, SSSP, TC, CC)
// on three tiny committed graphs (path, karate club, weighted DAG), checked
// against reference outputs computed by tests/golden/gen_golden.py — an
// independent Python implementation, not a snapshot of library output.
// Regenerate the .golden files with `python3 tests/golden/gen_golden.py`.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "lagraph/lagraph.hpp"

#ifndef LAGRAPH_GOLDEN_DIR
#define LAGRAPH_GOLDEN_DIR "tests/golden"
#endif

namespace {

using grb::Index;

struct GoldenGraph {
  std::string name;
  bool directed = false;
  Index n = 0;
  lagraph::Graph<double> lg;
};

GoldenGraph load_graph(const std::string &name) {
  GoldenGraph g;
  g.name = name;
  std::ifstream in(std::string(LAGRAPH_GOLDEN_DIR) + "/" + name + ".edges");
  EXPECT_TRUE(in.good()) << "missing " << name << ".edges";
  gen::EdgeList el;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok == "n") {
      ls >> g.n;
    } else if (tok == "directed") {
      int d = 0;
      ls >> d;
      g.directed = d != 0;
    } else {
      Index u = std::stoull(tok), v = 0;
      double w = 1.0;
      ls >> v >> w;
      el.src.push_back(u);
      el.dst.push_back(v);
      el.weight.push_back(w);
    }
  }
  el.n = g.n;
  if (!g.directed) gen::symmetrize(el);
  auto m = gen::to_matrix<double>(el);
  char msg[LAGRAPH_MSG_LEN];
  int status = lagraph::make_graph(g.lg, std::move(m),
                                   g.directed
                                       ? lagraph::Kind::adjacency_directed
                                       : lagraph::Kind::adjacency_undirected,
                                   msg);
  EXPECT_EQ(status, LAGRAPH_OK) << msg;
  return g;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> load_golden_vec(const std::string &graph,
                                    const std::string &algo) {
  std::ifstream in(std::string(LAGRAPH_GOLDEN_DIR) + "/" + graph + "." +
                   algo + ".golden");
  EXPECT_TRUE(in.good()) << "missing " << graph << "." << algo << ".golden";
  std::vector<double> out;
  Index i = 0;
  std::string val;
  while (in >> i >> val) {
    if (out.size() <= i) out.resize(i + 1, 0.0);
    out[i] = (val == "inf") ? kInf : std::stod(val);
  }
  return out;
}

std::uint64_t load_golden_scalar(const std::string &graph,
                                 const std::string &algo) {
  std::ifstream in(std::string(LAGRAPH_GOLDEN_DIR) + "/" + graph + "." +
                   algo + ".golden");
  EXPECT_TRUE(in.good()) << "missing " << graph << "." << algo << ".golden";
  std::uint64_t x = 0;
  in >> x;
  return x;
}

class Golden : public ::testing::TestWithParam<const char *> {};

TEST_P(Golden, Bfs) {
  GoldenGraph g = load_graph(GetParam());
  auto want = load_golden_vec(g.name, "bfs");
  grb::Vector<std::int64_t> level, parent;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::bfs(&level, &parent, g.lg, 0, msg), LAGRAPH_OK) << msg;
  ASSERT_EQ(level.size(), g.n);
  for (Index v = 0; v < g.n; ++v) {
    auto got = level.get(v);
    if (want[v] < 0) {
      EXPECT_FALSE(got.has_value()) << g.name << " node " << v;
    } else {
      ASSERT_TRUE(got.has_value()) << g.name << " node " << v;
      EXPECT_EQ(*got, static_cast<std::int64_t>(want[v]))
          << g.name << " node " << v;
    }
  }
  // Parents form a valid tree: the source is its own parent, every other
  // reached node's parent is one level shallower.
  for (Index v = 0; v < g.n; ++v) {
    auto p = parent.get(v);
    EXPECT_EQ(p.has_value(), want[v] >= 0) << g.name << " node " << v;
    if (!p) continue;
    if (v == 0) {
      EXPECT_EQ(*p, 0) << g.name << ": source parent";
    } else {
      auto pl = level.get(static_cast<Index>(*p));
      ASSERT_TRUE(pl.has_value());
      EXPECT_EQ(*pl + 1, static_cast<std::int64_t>(want[v]))
          << g.name << " node " << v << " parent " << *p;
    }
  }
}

TEST_P(Golden, PageRank) {
  GoldenGraph g = load_graph(GetParam());
  auto want = load_golden_vec(g.name, "pr");
  grb::Vector<double> r;
  int iters = 0;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::pagerank(&r, &iters, g.lg, 0.85, 1e-8, 200, msg),
            LAGRAPH_OK)
      << msg;
  ASSERT_EQ(r.size(), g.n);
  for (Index v = 0; v < g.n; ++v) {
    auto got = r.get(v);
    ASSERT_TRUE(got.has_value()) << g.name << " node " << v;
    EXPECT_NEAR(*got, want[v], 1e-6) << g.name << " node " << v;
  }
}

TEST_P(Golden, Sssp) {
  GoldenGraph g = load_graph(GetParam());
  auto want = load_golden_vec(g.name, "sssp");
  grb::Vector<double> dist;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::sssp(&dist, g.lg, 0, 0.0, msg), LAGRAPH_OK) << msg;
  for (Index v = 0; v < g.n; ++v) {
    auto got = dist.get(v);
    if (std::isinf(want[v])) {
      EXPECT_TRUE(!got.has_value() || std::isinf(*got))
          << g.name << " node " << v << " should be unreachable";
    } else {
      ASSERT_TRUE(got.has_value()) << g.name << " node " << v;
      EXPECT_NEAR(*got, want[v], 1e-9) << g.name << " node " << v;
    }
  }
}

TEST_P(Golden, BetweennessCentrality) {
  GoldenGraph g = load_graph(GetParam());
  auto want = load_golden_vec(g.name, "bc");
  const std::vector<Index> sources{0, 1, 2, 3};
  grb::Vector<double> c;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::betweenness_centrality(
                &c, g.lg, std::span<const Index>(sources), msg),
            LAGRAPH_OK)
      << msg;
  for (Index v = 0; v < g.n; ++v) {
    double got = c.get(v).value_or(0.0);  // absent == zero centrality
    EXPECT_NEAR(got, want[v], 1e-6) << g.name << " node " << v;
  }
}

TEST_P(Golden, ConnectedComponents) {
  GoldenGraph g = load_graph(GetParam());
  auto want = load_golden_vec(g.name, "cc");
  grb::Vector<Index> comp;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::connected_components(&comp, g.lg, msg), LAGRAPH_OK)
      << msg;
  // Canonicalize the library's labels to min-node-id before comparing.
  std::map<Index, Index> canon;
  for (Index v = 0; v < g.n; ++v) {
    auto lab = comp.get(v);
    ASSERT_TRUE(lab.has_value()) << g.name << " node " << v;
    auto [it, fresh] = canon.try_emplace(*lab, v);
    (void)fresh;
    EXPECT_EQ(it->second, static_cast<Index>(want[v]))
        << g.name << " node " << v;
  }
}

TEST_P(Golden, TriangleCount) {
  GoldenGraph g = load_graph(GetParam());
  if (g.directed) GTEST_SKIP() << "triangle count needs a symmetric pattern";
  std::uint64_t count = 0;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::triangle_count(&count, g.lg, msg), LAGRAPH_OK) << msg;
  EXPECT_EQ(count, load_golden_scalar(g.name, "tc")) << g.name;
}

INSTANTIATE_TEST_SUITE_P(Graphs, Golden,
                         ::testing::Values("path", "karate", "wdag"),
                         [](const auto &info) {
                           return std::string(info.param);
                         });

}  // namespace

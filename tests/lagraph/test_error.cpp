// Tests for the calling conventions and error handling of §II-C/D: status
// codes, message buffers, and the LAGRAPH_TRY / GRB_TRY macros.
#include <gtest/gtest.h>

#include "common/test_graphs.hpp"

using grb::Index;

TEST(Error, SuccessClearsMessage) {
  auto t = testutil::tiny_directed();
  char msg[LAGRAPH_MSG_LEN];
  std::snprintf(msg, sizeof(msg), "stale text from a previous call");
  grb::Vector<std::int64_t> level;
  ASSERT_EQ(lagraph::bfs(&level, nullptr, t.lg, 0, msg), LAGRAPH_OK);
  EXPECT_EQ(msg[0], '\0');  // "fill the message array with an empty string"
}

TEST(Error, FailureSetsMessage) {
  auto t = testutil::tiny_directed();
  char msg[LAGRAPH_MSG_LEN];
  grb::Vector<std::int64_t> level;
  EXPECT_LT(lagraph::bfs(&level, nullptr, t.lg, 9999, msg), 0);
  EXPECT_GT(std::strlen(msg), 0u);
}

TEST(Error, NullMsgIsAllowed) {
  auto t = testutil::tiny_directed();
  grb::Vector<std::int64_t> level;
  EXPECT_EQ(lagraph::bfs(&level, nullptr, t.lg, 0, nullptr), LAGRAPH_OK);
  EXPECT_LT(lagraph::bfs(&level, nullptr, t.lg, 9999, nullptr), 0);
}

TEST(Error, StatusNames) {
  EXPECT_STREQ(lagraph::status_name(LAGRAPH_OK), "ok");
  EXPECT_STREQ(lagraph::status_name(LAGRAPH_PROPERTY_MISSING),
               "required cached property missing");
  EXPECT_STREQ(lagraph::status_name(LAGRAPH_WARN_CONVERGENCE),
               "warning: did not converge");
}

TEST(Error, WarningsArePositive) {
  auto t = testutil::random_directed(5, 4, 1);
  grb::Vector<double> r;
  char msg[LAGRAPH_MSG_LEN];
  int status = lagraph::pagerank(&r, nullptr, t.lg, 0.85, 1e-15, 2, msg);
  EXPECT_GT(status, 0);  // warning, not error: the result is still usable
  EXPECT_EQ(r.size(), t.lg.nodes());
}

// -- LAGRAPH_TRY / GRB_TRY ----------------------------------------------------

namespace {

int try_macro_demo(testutil::TestGraph &t, Index source, char *msg,
                   bool *caught) {
  *caught = false;
  grb::Vector<std::int64_t> level;
  // The paper's idiom: define LAGraph_CATCH, then wrap calls in LAGRAPH_TRY.
#define LAGraph_CATCH(status)   \
  {                             \
    *caught = true;             \
    return status;              \
  }
  LAGRAPH_TRY(lagraph::bfs(&level, nullptr, t.lg, source, msg));
  LAGRAPH_TRY(lagraph::bfs(&level, nullptr, t.lg, source + 1, msg));
#undef LAGraph_CATCH
  return LAGRAPH_OK;
}

int grb_try_demo(bool *caught) {
  *caught = false;
#define GrB_CATCH(info)      \
  {                          \
    *caught = true;          \
    return info;             \
  }
  grb::Vector<int> v(4);
  GRB_TRY(v.set_element(1, 10));   // fine
  GRB_TRY(v.set_element(99, 10));  // throws -> caught -> returns info
#undef GrB_CATCH
  return 0;
}

}  // namespace

TEST(Error, LagraphTryInvokesCatchOnError) {
  auto t = testutil::tiny_directed();
  char msg[LAGRAPH_MSG_LEN];
  bool caught = false;
  EXPECT_EQ(try_macro_demo(t, 0, msg, &caught), LAGRAPH_OK);
  EXPECT_FALSE(caught);
  EXPECT_LT(try_macro_demo(t, 9999, msg, &caught), 0);
  EXPECT_TRUE(caught);
}

TEST(Error, GrbTryInvokesCatchOnException) {
  bool caught = false;
  int status = grb_try_demo(&caught);
  EXPECT_TRUE(caught);
  EXPECT_EQ(status, static_cast<int>(grb::Info::index_out_of_bounds));
}

TEST(Error, GrbExceptionCarriesInfo) {
  grb::Vector<int> v(4);
  try {
    v.set_element(100, 1);
    FAIL() << "expected exception";
  } catch (const grb::Exception &e) {
    EXPECT_EQ(e.info(), grb::Info::index_out_of_bounds);
    EXPECT_NE(std::string(e.what()).find("index_out_of_bounds"),
              std::string::npos);
  }
}

TEST(Error, ReturnConventionDocumented) {
  // =0 success, <0 error, >0 warning (paper §II-C).
  static_assert(LAGRAPH_OK == 0);
  static_assert(LAGRAPH_INVALID_GRAPH < 0);
  static_assert(LAGRAPH_PROPERTY_MISSING < 0);
  static_assert(LAGRAPH_WARN_CONVERGENCE > 0);
}

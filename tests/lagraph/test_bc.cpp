// Betweenness centrality tests: the batched linear-algebra BC against the
// textbook Brandes oracle, push-only vs direction-optimized, batch
// composition.
#include <gtest/gtest.h>

#include "common/test_graphs.hpp"

using grb::Index;

namespace {

void expect_scores(const testutil::TestGraph &t,
                   const grb::Vector<double> &got,
                   std::span<const gapbs::NodeId> sources, double tol) {
  auto want = gapbs::bc_reference(t.ref, sources);
  ASSERT_EQ(got.size(), want.size());
  for (Index v = 0; v < got.size(); ++v) {
    double g = got.get(v).value_or(0.0);
    EXPECT_NEAR(g, want[v], tol) << t.name << " node " << v;
  }
}

std::vector<grb::Index> to_idx(std::span<const gapbs::NodeId> s) {
  return {s.begin(), s.end()};
}

}  // namespace

TEST(Bc, TinyDirectedSingleSource) {
  auto t = testutil::tiny_directed();
  const gapbs::NodeId srcs[] = {0};
  auto idx = to_idx(srcs);
  grb::Vector<double> c;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::betweenness_centrality(&c, t.lg, idx, msg), LAGRAPH_OK)
      << msg;
  expect_scores(t, c, srcs, 1e-9);
}

TEST(Bc, TinyUndirectedBatch) {
  auto t = testutil::tiny_undirected();
  const gapbs::NodeId srcs[] = {0, 3, 6};
  auto idx = to_idx(srcs);
  grb::Vector<double> c;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::betweenness_centrality(&c, t.lg, idx, msg), LAGRAPH_OK);
  expect_scores(t, c, srcs, 1e-9);
}

TEST(Bc, MatchesBrandesOnGeneratedGraphs) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    auto t = testutil::random_directed(6, 6, seed);
    const gapbs::NodeId srcs[] = {0, 5, 17, 31};
    auto idx = to_idx(srcs);
    grb::Vector<double> c;
    char msg[LAGRAPH_MSG_LEN];
    ASSERT_EQ(lagraph::betweenness_centrality(&c, t.lg, idx, msg),
              LAGRAPH_OK);
    expect_scores(t, c, srcs, 1e-6);
  }
}

TEST(Bc, PushOnlyMatchesDirectionOptimized) {
  auto t = testutil::random_kron(7, 8, 3);
  char msg[LAGRAPH_MSG_LEN];
  lagraph::property_at(t.lg, msg);
  const grb::Index idx[] = {1, 2, 3, 4};
  grb::Vector<double> c1;
  grb::Vector<double> c2;
  ASSERT_EQ(lagraph::advanced::betweenness_centrality(&c1, t.lg, idx, false,
                                                      msg),
            LAGRAPH_OK);
  ASSERT_EQ(lagraph::advanced::betweenness_centrality(&c2, t.lg, idx, true,
                                                      msg),
            LAGRAPH_OK);
  for (Index v = 0; v < c1.size(); ++v) {
    EXPECT_NEAR(c1.get(v).value_or(0), c2.get(v).value_or(0), 1e-6);
  }
}

TEST(Bc, BatchEqualsSumOfSingletons) {
  auto t = testutil::tiny_undirected();
  char msg[LAGRAPH_MSG_LEN];
  const grb::Index batch[] = {1, 4};
  grb::Vector<double> cb;
  ASSERT_EQ(lagraph::betweenness_centrality(&cb, t.lg, batch, msg),
            LAGRAPH_OK);
  grb::Vector<double> c1;
  grb::Vector<double> c2;
  const grb::Index s1[] = {1};
  const grb::Index s2[] = {4};
  ASSERT_EQ(lagraph::betweenness_centrality(&c1, t.lg, s1, msg), LAGRAPH_OK);
  ASSERT_EQ(lagraph::betweenness_centrality(&c2, t.lg, s2, msg), LAGRAPH_OK);
  for (Index v = 0; v < cb.size(); ++v) {
    EXPECT_NEAR(cb.get(v).value_or(0),
                c1.get(v).value_or(0) + c2.get(v).value_or(0), 1e-9);
  }
}

TEST(Bc, SourceNodeScoresZeroOnPath) {
  // On a path 0-1-2-3-4 from source 0, interior nodes get scores, the
  // endpoints get zero.
  gen::EdgeList el;
  el.n = 5;
  for (Index i = 0; i < 4; ++i) el.push(i, i + 1);
  gen::symmetrize(el);
  auto t = testutil::TestGraph::from_edges("path", std::move(el), false);
  const grb::Index srcs[] = {0};
  grb::Vector<double> c;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::betweenness_centrality(&c, t.lg, srcs, msg), LAGRAPH_OK);
  EXPECT_NEAR(c.get(0).value_or(0), 0.0, 1e-12);
  EXPECT_NEAR(c.get(1).value_or(0), 3.0, 1e-12);
  EXPECT_NEAR(c.get(2).value_or(0), 2.0, 1e-12);
  EXPECT_NEAR(c.get(3).value_or(0), 1.0, 1e-12);
  EXPECT_NEAR(c.get(4).value_or(0), 0.0, 1e-12);
}

TEST(Bc, EmptyBatchIsError) {
  auto t = testutil::tiny_directed();
  grb::Vector<double> c;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::betweenness_centrality(&c, t.lg, {}, msg),
            LAGRAPH_INVALID_VALUE);
}

TEST(Bc, AdvancedDirectionOptNeedsTranspose) {
  auto t = testutil::tiny_directed();
  grb::Vector<double> c;
  char msg[LAGRAPH_MSG_LEN];
  const grb::Index srcs[] = {0};
  EXPECT_EQ(lagraph::advanced::betweenness_centrality(&c, t.lg, srcs, true,
                                                      msg),
            LAGRAPH_PROPERTY_MISSING);
  // push-only works without
  EXPECT_EQ(lagraph::advanced::betweenness_centrality(&c, t.lg, srcs, false,
                                                      msg),
            LAGRAPH_OK);
}

// BFS tests: levels against the reference BFS, parents validated as a BFS
// tree (any valid parent is acceptable — the paper's benign race), push vs
// direction-optimizing agreement, Basic vs Advanced mode behaviour,
// parameterized over generated graphs.
#include <gtest/gtest.h>

#include "common/test_graphs.hpp"

using grb::Index;
using testutil::TestGraph;

namespace {

void check_levels(const TestGraph &t, const grb::Vector<std::int64_t> &level,
                  gapbs::NodeId src) {
  auto want = gapbs::bfs_levels_reference(t.ref, src);
  for (Index v = 0; v < static_cast<Index>(want.size()); ++v) {
    auto got = level.get(v);
    if (want[v] < 0) {
      EXPECT_FALSE(got.has_value()) << t.name << " node " << v;
    } else {
      ASSERT_TRUE(got.has_value()) << t.name << " node " << v;
      EXPECT_EQ(*got, want[v]) << t.name << " node " << v;
    }
  }
}

}  // namespace

TEST(Bfs, TinyDirectedLevelsAndParents) {
  auto t = testutil::tiny_directed();
  grb::Vector<std::int64_t> level;
  grb::Vector<std::int64_t> parent;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::bfs(&level, &parent, t.lg, 0, msg), LAGRAPH_OK) << msg;
  check_levels(t, level, 0);
  testutil::expect_valid_bfs_parents(t, parent, 0);
}

TEST(Bfs, TinyUndirected) {
  auto t = testutil::tiny_undirected();
  grb::Vector<std::int64_t> level;
  grb::Vector<std::int64_t> parent;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::bfs(&level, &parent, t.lg, 3, msg), LAGRAPH_OK) << msg;
  check_levels(t, level, 3);
  testutil::expect_valid_bfs_parents(t, parent, 3);
}

TEST(Bfs, DisconnectedNodesHaveNoEntries) {
  auto t = testutil::two_components();
  grb::Vector<std::int64_t> level;
  grb::Vector<std::int64_t> parent;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::bfs(&level, &parent, t.lg, 0, msg), LAGRAPH_OK);
  EXPECT_EQ(level.nvals(), 4u);  // the 4-cycle only
  EXPECT_FALSE(parent.has(5));
}

TEST(Bfs, LevelOnlyAndParentOnly) {
  auto t = testutil::tiny_directed();
  grb::Vector<std::int64_t> level;
  grb::Vector<std::int64_t> parent;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::bfs(&level, nullptr, t.lg, 0, msg), LAGRAPH_OK);
  check_levels(t, level, 0);
  ASSERT_EQ(lagraph::bfs(nullptr, &parent, t.lg, 0, msg), LAGRAPH_OK);
  testutil::expect_valid_bfs_parents(t, parent, 0);
}

TEST(Bfs, NoOutputsIsAnError) {
  auto t = testutil::tiny_directed();
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_LT(lagraph::bfs<double>(nullptr, nullptr, t.lg, 0, msg), 0);
}

TEST(Bfs, SourceOutOfRangeFails) {
  auto t = testutil::tiny_directed();
  grb::Vector<std::int64_t> level;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_LT(lagraph::bfs(&level, nullptr, t.lg, 100, msg), 0);
}

TEST(Bfs, AdvancedDoRequiresCachedTranspose) {
  // Advanced mode never computes properties behind the caller's back
  // (paper §II-B): a directed graph without AT must error.
  auto t = testutil::tiny_directed();
  grb::Vector<std::int64_t> level;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_FALSE(t.lg.at.has_value());
  EXPECT_EQ(lagraph::advanced::bfs_do(&level, nullptr, t.lg, 0, msg),
            LAGRAPH_PROPERTY_MISSING);
  // and it must NOT have cached anything as a side effect
  EXPECT_FALSE(t.lg.at.has_value());
  // Basic mode computes the property and succeeds
  ASSERT_EQ(lagraph::bfs(&level, nullptr, t.lg, 0, msg), LAGRAPH_OK);
  EXPECT_TRUE(t.lg.at.has_value());
}

TEST(Bfs, PushOnlyMatchesDirectionOptimizing) {
  auto t = testutil::random_kron(8, 8, 7);
  char msg[LAGRAPH_MSG_LEN];
  lagraph::property_at(t.lg, msg);
  grb::Vector<std::int64_t> level_push;
  grb::Vector<std::int64_t> level_do;
  ASSERT_EQ(lagraph::advanced::bfs_push(&level_push, nullptr, t.lg, 1, msg),
            LAGRAPH_OK);
  ASSERT_EQ(lagraph::advanced::bfs_do(&level_do, nullptr, t.lg, 1, msg),
            LAGRAPH_OK);
  EXPECT_EQ(level_push, level_do);
}

struct BfsSweep {
  int scale;
  int ef;
  std::uint64_t seed;
  bool directed;
};

class BfsParam : public ::testing::TestWithParam<BfsSweep> {};

TEST_P(BfsParam, MatchesReferenceOnGeneratedGraphs) {
  auto p = GetParam();
  auto t = p.directed ? testutil::random_directed(p.scale, p.ef, p.seed)
                      : testutil::random_undirected(p.scale, p.ef, p.seed);
  char msg[LAGRAPH_MSG_LEN];
  for (Index src : {Index(0), Index(3), Index((1u << p.scale) - 1)}) {
    grb::Vector<std::int64_t> level;
    grb::Vector<std::int64_t> parent;
    ASSERT_EQ(lagraph::bfs(&level, &parent, t.lg, src, msg), LAGRAPH_OK)
        << msg;
    auto want = gapbs::bfs_levels_reference(t.ref, static_cast<gapbs::NodeId>(src));
    for (Index v = 0; v < t.lg.nodes(); ++v) {
      auto got = level.get(v);
      if (want[v] < 0) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, want[v]);
      }
    }
    testutil::expect_valid_bfs_parents(t, parent, static_cast<gapbs::NodeId>(src));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BfsParam,
    ::testing::Values(BfsSweep{5, 4, 1, false}, BfsSweep{6, 8, 2, false},
                      BfsSweep{7, 4, 3, true}, BfsSweep{8, 6, 4, true},
                      BfsSweep{8, 16, 5, false}),
    [](const ::testing::TestParamInfo<BfsSweep> &info) {
      return "s" + std::to_string(info.param.scale) + "_e" +
             std::to_string(info.param.ef) + "_seed" +
             std::to_string(info.param.seed) +
             (info.param.directed ? "_dir" : "_und");
    });

TEST(Bfs, HighDiameterRoadGraph) {
  auto t = testutil::small_road(24, 11);
  char msg[LAGRAPH_MSG_LEN];
  grb::Vector<std::int64_t> level;
  ASSERT_EQ(lagraph::bfs(&level, nullptr, t.lg, 0, msg), LAGRAPH_OK);
  auto want = gapbs::bfs_levels_reference(t.ref, 0);
  std::int64_t maxlvl = 0;
  for (auto l : want) maxlvl = std::max(maxlvl, l);
  EXPECT_GE(maxlvl, 24);  // the grid really is high-diameter
  for (Index v = 0; v < t.lg.nodes(); ++v) {
    auto got = level.get(v);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, want[v]);
  }
}

// SSSP tests: delta-stepping distances against Dijkstra, over several delta
// values, weight ranges, and generated graphs.
#include <gtest/gtest.h>

#include "common/test_graphs.hpp"

using grb::Index;

namespace {

void expect_distances(const testutil::TestGraph &t,
                      const grb::Vector<double> &dist, gapbs::NodeId src) {
  auto want = gapbs::dijkstra(t.ref, src);
  for (Index v = 0; v < static_cast<Index>(want.size()); ++v) {
    auto got = dist.get(v);
    if (std::isinf(want[v])) {
      EXPECT_FALSE(got.has_value()) << "unreachable " << v << " has distance";
    } else {
      ASSERT_TRUE(got.has_value()) << "reachable " << v << " missing";
      EXPECT_DOUBLE_EQ(*got, want[v]) << "node " << v;
    }
  }
}

}  // namespace

TEST(Sssp, TinyDirected) {
  auto t = testutil::tiny_directed();
  grb::Vector<double> dist;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::sssp(&dist, t.lg, 0, 3.0, msg), LAGRAPH_OK) << msg;
  expect_distances(t, dist, 0);
}

TEST(Sssp, DeltaSweepGivesSameAnswer) {
  auto t = testutil::random_directed(7, 6, 9);
  char msg[LAGRAPH_MSG_LEN];
  grb::Vector<double> ref;
  ASSERT_EQ(lagraph::sssp(&ref, t.lg, 2, 2.0, msg), LAGRAPH_OK);
  for (double delta : {1.0, 4.0, 16.0, 64.0, 1000.0}) {
    grb::Vector<double> dist;
    ASSERT_EQ(lagraph::sssp(&dist, t.lg, 2, delta, msg), LAGRAPH_OK)
        << "delta=" << delta;
    EXPECT_EQ(dist, ref) << "delta=" << delta;
  }
  expect_distances(t, ref, 2);
}

TEST(Sssp, MatchesDijkstraOnGeneratedGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto t = testutil::random_undirected(6, 5, seed);
    grb::Vector<double> dist;
    char msg[LAGRAPH_MSG_LEN];
    ASSERT_EQ(lagraph::sssp(&dist, t.lg, 0, 3.0, msg), LAGRAPH_OK);
    expect_distances(t, dist, 0);
  }
}

TEST(Sssp, RoadGridWithLargeWeights) {
  auto el = gen::road_grid(12, 12, 5);
  gen::add_uniform_weights(el, 1, 255, 77);
  auto t = testutil::TestGraph::from_edges("road", std::move(el), true);
  grb::Vector<double> dist;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::sssp(&dist, t.lg, 0, 0.0, msg), LAGRAPH_OK);  // auto Δ
  expect_distances(t, dist, 0);
}

TEST(Sssp, DisconnectedTargetsHaveNoEntry) {
  auto t = testutil::two_components();
  grb::Vector<double> dist;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::sssp(&dist, t.lg, 0, 2.0, msg), LAGRAPH_OK);
  EXPECT_FALSE(dist.has(4));
  EXPECT_FALSE(dist.has(6));
  EXPECT_EQ(dist.get(0), 0.0);
}

TEST(Sssp, SourceItselfIsZero) {
  auto t = testutil::tiny_undirected();
  grb::Vector<double> dist;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::sssp(&dist, t.lg, 5, 2.0, msg), LAGRAPH_OK);
  EXPECT_EQ(dist.get(5), 0.0);
}

TEST(Sssp, InvalidArgumentsFail) {
  auto t = testutil::tiny_directed();
  grb::Vector<double> dist;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::advanced::sssp_delta_stepping(&dist, t.lg, 0, -1.0, msg),
            LAGRAPH_INVALID_VALUE);
  EXPECT_EQ(lagraph::advanced::sssp_delta_stepping(&dist, t.lg, 999, 2.0, msg),
            LAGRAPH_INVALID_VALUE);
  EXPECT_EQ(lagraph::advanced::sssp_delta_stepping<double>(nullptr, t.lg, 0,
                                                           2.0, msg),
            LAGRAPH_NULL_POINTER);
}

TEST(Sssp, HeavyEdgesOnly) {
  // All weights above delta: every relaxation goes through the heavy phase.
  gen::EdgeList el;
  el.n = 4;
  el.push(0, 1);
  el.push(1, 2);
  el.push(2, 3);
  el.weight = {10.0, 20.0, 30.0};
  auto t = testutil::TestGraph::from_edges("heavy", std::move(el), true);
  grb::Vector<double> dist;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::sssp(&dist, t.lg, 0, 2.0, msg), LAGRAPH_OK);
  EXPECT_EQ(dist.get(1), 10.0);
  EXPECT_EQ(dist.get(2), 30.0);
  EXPECT_EQ(dist.get(3), 60.0);
}

TEST(Sssp, ShortcutViaLongerHopCount) {
  // A two-hop path that is cheaper than the direct edge.
  gen::EdgeList el;
  el.n = 3;
  el.push(0, 2);
  el.push(0, 1);
  el.push(1, 2);
  el.weight = {10.0, 1.0, 1.0};
  auto t = testutil::TestGraph::from_edges("short", std::move(el), true);
  grb::Vector<double> dist;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::sssp(&dist, t.lg, 0, 5.0, msg), LAGRAPH_OK);
  EXPECT_EQ(dist.get(2), 2.0);
}

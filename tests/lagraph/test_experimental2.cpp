// Tests for the second batch of experimental algorithms: maximal
// independent set, k-core / coreness, and personalized PageRank.
#include <gtest/gtest.h>

#include <map>

#include "common/test_graphs.hpp"

using grb::Index;
namespace lx = lagraph::experimental;

// -- maximal independent set ---------------------------------------------------

namespace {

void expect_valid_mis(const testutil::TestGraph &t,
                      const grb::Vector<grb::Bool> &set) {
  // independent: no two members adjacent
  set.for_each([&](Index v, const grb::Bool &) {
    for (auto w : t.ref.out_neigh(static_cast<gapbs::NodeId>(v))) {
      EXPECT_FALSE(set.has(static_cast<Index>(w)))
          << "members " << v << " and " << w << " are adjacent";
    }
  });
  // maximal: every non-member has a member neighbour
  for (Index v = 0; v < t.lg.nodes(); ++v) {
    if (set.has(v)) continue;
    bool covered = false;
    for (auto w : t.ref.out_neigh(static_cast<gapbs::NodeId>(v))) {
      if (set.has(static_cast<Index>(w))) covered = true;
    }
    EXPECT_TRUE(covered) << "node " << v << " could be added";
  }
}

}  // namespace

TEST(Mis, ValidOnTinyGraph) {
  auto t = testutil::tiny_undirected();
  grb::Vector<grb::Bool> set;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lx::maximal_independent_set(&set, t.lg, 42, msg), LAGRAPH_OK)
      << msg;
  EXPECT_GT(set.nvals(), 0u);
  expect_valid_mis(t, set);
}

TEST(Mis, ValidOnGeneratedGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto t = testutil::random_kron(7, 4, seed);
    grb::Vector<grb::Bool> set;
    char msg[LAGRAPH_MSG_LEN];
    ASSERT_EQ(lx::maximal_independent_set(&set, t.lg, seed * 7, msg),
              LAGRAPH_OK);
    expect_valid_mis(t, set);
  }
}

TEST(Mis, EdgelessGraphTakesEverything) {
  gen::EdgeList el;
  el.n = 5;
  auto t = testutil::TestGraph::from_edges("empty", std::move(el), false);
  grb::Vector<grb::Bool> set;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lx::maximal_independent_set(&set, t.lg, 1, msg), LAGRAPH_OK);
  EXPECT_EQ(set.nvals(), 5u);
}

TEST(Mis, DirectedGraphRejected) {
  auto t = testutil::tiny_directed();
  grb::Vector<grb::Bool> set;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lx::maximal_independent_set(&set, t.lg, 1, msg),
            LAGRAPH_PROPERTY_MISSING);
}

// -- k-core -----------------------------------------------------------------------

TEST(KCore, TriangleWithTailPeelsToTriangle) {
  // triangle 0-1-2 plus path 2-3-4: the 2-core is the triangle.
  gen::EdgeList el;
  el.n = 5;
  el.push(0, 1);
  el.push(1, 2);
  el.push(0, 2);
  el.push(2, 3);
  el.push(3, 4);
  gen::symmetrize(el);
  auto t = testutil::TestGraph::from_edges("tri_tail", std::move(el), false);
  grb::Vector<grb::Bool> core;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lx::k_core(&core, t.lg, 2, msg), LAGRAPH_OK) << msg;
  EXPECT_EQ(core.nvals(), 3u);
  EXPECT_TRUE(core.has(0));
  EXPECT_TRUE(core.has(1));
  EXPECT_TRUE(core.has(2));
  // 3-core is empty
  ASSERT_EQ(lx::k_core(&core, t.lg, 3, msg), LAGRAPH_OK);
  EXPECT_EQ(core.nvals(), 0u);
}

TEST(KCore, CorenessDecomposition) {
  // K4 (coreness 3) + pendant (coreness 1) + isolated (coreness 0)
  gen::EdgeList el;
  el.n = 6;
  for (Index i = 0; i < 4; ++i) {
    for (Index j = i + 1; j < 4; ++j) el.push(i, j);
  }
  el.push(3, 4);
  gen::symmetrize(el);
  auto t = testutil::TestGraph::from_edges("k4p", std::move(el), false);
  grb::Vector<std::int64_t> c;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lx::coreness(&c, t.lg, msg), LAGRAPH_OK);
  EXPECT_EQ(*c.get(0), 3);
  EXPECT_EQ(*c.get(3), 3);
  EXPECT_EQ(*c.get(4), 1);
  EXPECT_EQ(*c.get(5), 0);
}

TEST(KCore, MatchesBruteForceOnGenerated) {
  auto t = testutil::random_kron(6, 4, 9);
  char msg[LAGRAPH_MSG_LEN];
  grb::Vector<grb::Bool> core;
  ASSERT_EQ(lx::k_core(&core, t.lg, 3, msg), LAGRAPH_OK);
  // brute force peel on the reference CSR
  const auto n = t.ref.num_nodes();
  std::vector<bool> alive(n, true);
  bool changed = true;
  while (changed) {
    changed = false;
    for (gapbs::NodeId v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      int deg = 0;
      for (auto w : t.ref.out_neigh(v)) {
        if (alive[w]) ++deg;
      }
      if (deg < 3) {
        alive[v] = false;
        changed = true;
      }
    }
  }
  for (gapbs::NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(core.has(static_cast<Index>(v)), alive[v]) << "node " << v;
  }
}

TEST(KCore, InvalidK) {
  auto t = testutil::tiny_undirected();
  grb::Vector<grb::Bool> core;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lx::k_core(&core, t.lg, 0, msg), LAGRAPH_INVALID_VALUE);
}

// -- personalized PageRank ------------------------------------------------------------

TEST(Ppr, ConcentratesNearTheSeed) {
  auto t = testutil::random_kron(8, 8, 2);
  char msg[LAGRAPH_MSG_LEN];
  lagraph::property_at(t.lg, msg);
  lagraph::property_row_degree(t.lg, msg);
  const grb::Index seeds[] = {5};
  grb::Vector<double> r;
  ASSERT_EQ(lx::personalized_pagerank(&r, nullptr, t.lg, seeds, 0.85, 1e-10,
                                      500, msg),
            LAGRAPH_OK)
      << msg;
  // proper distribution
  double sum = 0;
  grb::reduce(sum, grb::NoAccum{}, grb::PlusMonoid<double>{}, r);
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // the seed outranks the global-PageRank ordering of a far-away node: the
  // seed itself must hold a large share
  EXPECT_GT(r.get(5).value_or(0), 0.1);
}

TEST(Ppr, SeedSetSplitsTeleport) {
  auto t = testutil::tiny_undirected();
  char msg[LAGRAPH_MSG_LEN];
  lagraph::property_at(t.lg, msg);
  lagraph::property_row_degree(t.lg, msg);
  const grb::Index seeds[] = {0, 6};
  grb::Vector<double> r;
  ASSERT_EQ(lx::personalized_pagerank(&r, nullptr, t.lg, seeds, 0.85, 1e-10,
                                      500, msg),
            LAGRAPH_OK);
  double sum = 0;
  grb::reduce(sum, grb::NoAccum{}, grb::PlusMonoid<double>{}, r);
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(r.get(0).value_or(0), r.get(3).value_or(0));
}

TEST(Ppr, UniformSeedsOverAllNodesEqualsGlobalPagerank) {
  // Teleporting to every node uniformly IS ordinary (dangling-aware)
  // PageRank.
  auto t = testutil::random_directed(6, 6, 4);
  char msg[LAGRAPH_MSG_LEN];
  lagraph::property_at(t.lg, msg);
  lagraph::property_row_degree(t.lg, msg);
  std::vector<grb::Index> all(t.lg.nodes());
  for (grb::Index i = 0; i < t.lg.nodes(); ++i) all[i] = i;
  grb::Vector<double> ppr;
  ASSERT_EQ(lx::personalized_pagerank(&ppr, nullptr, t.lg, all, 0.85, 1e-12,
                                      800, msg),
            LAGRAPH_OK);
  grb::Vector<double> global;
  ASSERT_EQ(lagraph::pagerank_dangling_aware(&global, nullptr, t.lg, 0.85,
                                             1e-12, 800, msg),
            LAGRAPH_OK);
  for (grb::Index v = 0; v < t.lg.nodes(); ++v) {
    EXPECT_NEAR(ppr.get(v).value_or(0), global.get(v).value_or(0), 1e-7)
        << "node " << v;
  }
}

TEST(Ppr, InvalidArguments) {
  auto t = testutil::tiny_directed();
  char msg[LAGRAPH_MSG_LEN];
  grb::Vector<double> r;
  const grb::Index seeds[] = {0};
  // missing properties
  EXPECT_EQ(lx::personalized_pagerank(&r, nullptr, t.lg, seeds, 0.85, 1e-6,
                                      100, msg),
            LAGRAPH_PROPERTY_MISSING);
  lagraph::property_at(t.lg, msg);
  lagraph::property_row_degree(t.lg, msg);
  EXPECT_EQ(lx::personalized_pagerank(&r, nullptr, t.lg, {}, 0.85, 1e-6, 100,
                                      msg),
            LAGRAPH_INVALID_VALUE);
  const grb::Index bad[] = {999};
  EXPECT_EQ(lx::personalized_pagerank(&r, nullptr, t.lg, bad, 0.85, 1e-6,
                                      100, msg),
            LAGRAPH_INVALID_VALUE);
}

// Graph I/O tests: Matrix Market read/write round trips (real, integer,
// pattern, symmetric), binary round trips, and malformed-input handling.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/test_graphs.hpp"

using grb::Index;

namespace {

grb::Matrix<double> sample() {
  grb::Matrix<double> a(3, 4);
  a.set_element(0, 1, 1.5);
  a.set_element(1, 0, -2.0);
  a.set_element(2, 3, 42.0);
  return a;
}

}  // namespace

TEST(Io, MmWriteReadRoundTrip) {
  auto a = sample();
  std::stringstream ss;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::mm_write(a, ss, msg), LAGRAPH_OK);
  grb::Matrix<double> b(0, 0);
  ASSERT_EQ(lagraph::mm_read(b, ss, msg), LAGRAPH_OK) << msg;
  EXPECT_EQ(a, b);
}

TEST(Io, MmWriteIntegerBanner) {
  grb::Matrix<std::int64_t> a(2, 2);
  a.set_element(0, 0, 7);
  std::stringstream ss;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::mm_write(a, ss, msg), LAGRAPH_OK);
  EXPECT_NE(ss.str().find("integer"), std::string::npos);
  grb::Matrix<std::int64_t> b(0, 0);
  ASSERT_EQ(lagraph::mm_read(b, ss, msg), LAGRAPH_OK);
  EXPECT_EQ(a, b);
}

TEST(Io, MmReadPattern) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 2\n"
      "3 1\n");
  grb::Matrix<double> a(0, 0);
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::mm_read(a, ss, msg), LAGRAPH_OK) << msg;
  EXPECT_EQ(a.nvals(), 2u);
  EXPECT_EQ(a.get(0, 1), 1.0);  // pattern entries read as 1
  EXPECT_EQ(a.get(2, 0), 1.0);
}

TEST(Io, MmReadSymmetricExpandsEntries) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n");
  grb::Matrix<double> a(0, 0);
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::mm_read(a, ss, msg), LAGRAPH_OK);
  EXPECT_EQ(a.nvals(), 3u);  // off-diagonal mirrored, diagonal not
  EXPECT_EQ(a.get(1, 0), 5.0);
  EXPECT_EQ(a.get(0, 1), 5.0);
  EXPECT_EQ(a.get(2, 2), 7.0);
}

TEST(Io, MmReadRejectsGarbage) {
  char msg[LAGRAPH_MSG_LEN];
  grb::Matrix<double> a(0, 0);
  {
    std::stringstream ss("not a matrix market file\n");
    EXPECT_EQ(lagraph::mm_read(a, ss, msg), LAGRAPH_IO_ERROR);
    EXPECT_GT(std::strlen(msg), 0u);
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "5 5 1.0\n");  // out of bounds
    EXPECT_EQ(lagraph::mm_read(a, ss, msg), LAGRAPH_IO_ERROR);
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 3\n"
        "1 1 1.0\n");  // truncated
    EXPECT_EQ(lagraph::mm_read(a, ss, msg), LAGRAPH_IO_ERROR);
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix array real general\n"
        "2 2\n");  // dense format unsupported
    EXPECT_EQ(lagraph::mm_read(a, ss, msg), LAGRAPH_IO_ERROR);
  }
}

TEST(Io, MmReadZeroBasedIndexRejected) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "0 1 1.0\n");
  grb::Matrix<double> a(0, 0);
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::mm_read(a, ss, msg), LAGRAPH_IO_ERROR);
}

TEST(Io, BinRoundTrip) {
  auto a = sample();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::bin_write(a, ss, msg), LAGRAPH_OK);
  grb::Matrix<double> b(0, 0);
  ASSERT_EQ(lagraph::bin_read(b, ss, msg), LAGRAPH_OK) << msg;
  EXPECT_EQ(a, b);
}

TEST(Io, BinRejectsWrongMagicAndType) {
  char msg[LAGRAPH_MSG_LEN];
  {
    std::stringstream ss("BOGUSMAGIC.....................");
    grb::Matrix<double> b(0, 0);
    EXPECT_EQ(lagraph::bin_read(b, ss, msg), LAGRAPH_IO_ERROR);
  }
  {
    // written as double, read as int64 -> type size mismatch caught
    auto a = sample();
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_EQ(lagraph::bin_write(a, ss, msg), LAGRAPH_OK);
    grb::Matrix<std::int32_t> b(0, 0);
    EXPECT_EQ(lagraph::bin_read(b, ss, msg), LAGRAPH_IO_ERROR);
  }
}

TEST(Io, FileRoundTripThroughGraph) {
  auto t = testutil::random_kron(6, 4, 3);
  const std::string path = "/tmp/lagraph_io_test.mtx";
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::mm_write(t.lg.a, path, msg), LAGRAPH_OK);
  grb::Matrix<double> back(0, 0);
  ASSERT_EQ(lagraph::mm_read(back, path, msg), LAGRAPH_OK);
  EXPECT_EQ(t.lg.a, back);
  std::remove(path.c_str());
}

TEST(Io, MissingFileError) {
  grb::Matrix<double> a(0, 0);
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::mm_read(a, std::string("/nonexistent/nope.mtx"), msg),
            LAGRAPH_IO_ERROR);
}

// -- Graphalytics ingestion -------------------------------------------------------

TEST(Graphalytics, ParseVertexAndEdgeBuffers) {
  lagraph::GraphalyticsData data;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::graphalytics_parse_vertices(
                data, "# comment\n10\n20\n30\n40\n", msg),
            LAGRAPH_OK);
  ASSERT_EQ(lagraph::graphalytics_parse_edges(
                data, "10 20 1.5\n20 30 2.5\n# c\n30 10 0.5\n", msg),
            LAGRAPH_OK)
      << msg;
  EXPECT_EQ(data.vertex_ids.size(), 4u);
  EXPECT_EQ(data.src.size(), 3u);
  ASSERT_TRUE(data.weighted());
  EXPECT_EQ(data.weight[1], 2.5);
  grb::Matrix<double> a(0, 0);
  ASSERT_EQ(lagraph::graphalytics_build(a, nullptr, data, msg), LAGRAPH_OK);
  EXPECT_EQ(a.nrows(), 4u);
  EXPECT_EQ(a.get(0, 1), 1.5);  // 10 -> 20 relabelled to 0 -> 1
  EXPECT_EQ(a.get(2, 0), 0.5);
}

TEST(Graphalytics, UnweightedEdgesGetOnes) {
  lagraph::GraphalyticsData data;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::graphalytics_parse_vertices(data, "1\n2\n", msg),
            LAGRAPH_OK);
  ASSERT_EQ(lagraph::graphalytics_parse_edges(data, "1 2\n2 1\n", msg),
            LAGRAPH_OK);
  EXPECT_FALSE(data.weighted());
  grb::Matrix<double> a(0, 0);
  ASSERT_EQ(lagraph::graphalytics_build(a, nullptr, data, msg), LAGRAPH_OK);
  EXPECT_EQ(a.get(0, 1), 1.0);
}

TEST(Graphalytics, MalformedInputsRejected) {
  char msg[LAGRAPH_MSG_LEN];
  {
    lagraph::GraphalyticsData d;
    EXPECT_EQ(lagraph::graphalytics_parse_vertices(d, "abc\n", msg),
              LAGRAPH_IO_ERROR);
  }
  {
    lagraph::GraphalyticsData d;
    lagraph::graphalytics_parse_vertices(d, "1\n2\n", msg);
    EXPECT_EQ(lagraph::graphalytics_parse_edges(d, "1\n", msg),
              LAGRAPH_IO_ERROR);  // missing target
    lagraph::GraphalyticsData d2;
    lagraph::graphalytics_parse_vertices(d2, "1\n2\n", msg);
    EXPECT_EQ(lagraph::graphalytics_parse_edges(d2, "1 2 3.0\n1 2\n", msg),
              LAGRAPH_IO_ERROR);  // inconsistent weights
  }
  {
    lagraph::GraphalyticsData d;
    lagraph::graphalytics_parse_vertices(d, "1\n1\n", msg);  // duplicate id
    lagraph::graphalytics_parse_edges(d, "1 1\n", msg);
    grb::Matrix<double> a(0, 0);
    EXPECT_EQ(lagraph::graphalytics_build(a, nullptr, d, msg),
              LAGRAPH_IO_ERROR);
  }
  {
    lagraph::GraphalyticsData d;
    lagraph::graphalytics_parse_vertices(d, "1\n", msg);
    lagraph::graphalytics_parse_edges(d, "1 99\n", msg);  // unknown endpoint
    grb::Matrix<double> a(0, 0);
    EXPECT_EQ(lagraph::graphalytics_build(a, nullptr, d, msg),
              LAGRAPH_IO_ERROR);
  }
}

TEST(Graphalytics, FileRoundTripIntoGraph) {
  // write a small dataset, read it back with graphalytics_read
  const std::string vp = "/tmp/lagraph_ga_test.v";
  const std::string ep = "/tmp/lagraph_ga_test.e";
  {
    std::ofstream v(vp);
    v << "100\n200\n300\n";
    std::ofstream e(ep);
    e << "100 200 5\n200 300 7\n";
  }
  lagraph::Graph<double> g;
  std::vector<std::uint64_t> ids;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::graphalytics_read(g, &ids, vp, ep, /*directed=*/false,
                                       msg),
            LAGRAPH_OK)
      << msg;
  EXPECT_EQ(g.nodes(), 3u);
  EXPECT_EQ(g.entries(), 4u);  // undirected: mirrored
  EXPECT_EQ(g.kind, lagraph::Kind::adjacency_undirected);
  EXPECT_EQ(ids[1], 200u);
  EXPECT_EQ(g.a.get(1, 0), 5.0);
  std::remove(vp.c_str());
  std::remove(ep.c_str());
}

// PageRank tests: agreement with the GAP-style reference, dangling-node
// behaviour of the two variants, convergence reporting.
#include <gtest/gtest.h>

#include "common/test_graphs.hpp"

using grb::Index;

namespace {

void expect_close(const grb::Vector<double> &got,
                  const std::vector<double> &want, double tol,
                  const char *what) {
  ASSERT_EQ(got.size(), want.size());
  for (Index i = 0; i < got.size(); ++i) {
    auto x = got.get(i);
    ASSERT_TRUE(x.has_value()) << what << " missing rank at " << i;
    EXPECT_NEAR(*x, want[i], tol) << what << " node " << i;
  }
}

}  // namespace

TEST(PageRank, MatchesGapReferenceTiny) {
  auto t = testutil::tiny_directed();
  grb::Vector<double> r;
  int iters = 0;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::pagerank(&r, &iters, t.lg, 0.85, 1e-8, 200, msg),
            LAGRAPH_OK)
      << msg;
  auto want = gapbs::pagerank(t.ref, 0.85, 1e-8, 200);
  expect_close(r, want, 1e-6, "tiny");
  EXPECT_GT(iters, 1);
}

TEST(PageRank, MatchesGapReferenceGenerated) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    auto t = testutil::random_directed(7, 8, seed);
    grb::Vector<double> r;
    char msg[LAGRAPH_MSG_LEN];
    ASSERT_EQ(lagraph::pagerank(&r, nullptr, t.lg, 0.85, 1e-9, 500, msg),
              LAGRAPH_OK);
    auto want = gapbs::pagerank(t.ref, 0.85, 1e-9, 500);
    expect_close(r, want, 1e-6, "generated");
  }
}

TEST(PageRank, UndirectedGraph) {
  auto t = testutil::random_undirected(6, 6, 5);
  grb::Vector<double> r;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::pagerank(&r, nullptr, t.lg, 0.85, 1e-9, 500, msg),
            LAGRAPH_OK);
  auto want = gapbs::pagerank(t.ref, 0.85, 1e-9, 500);
  expect_close(r, want, 1e-6, "undirected");
}

TEST(PageRank, GapVariantLeaksRankOnDanglingNodes) {
  // Graph with a dangling node (2 has no out-edges): the GAP formulation
  // loses its rank mass; the sum of ranks is < 1 (paper §IV-C).
  gen::EdgeList el;
  el.n = 3;
  el.push(0, 1);
  el.push(1, 2);
  auto t = testutil::TestGraph::from_edges("dangle", std::move(el), true);
  grb::Vector<double> r;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::pagerank(&r, nullptr, t.lg, 0.85, 1e-12, 500, msg),
            LAGRAPH_OK);
  double sum = 0;
  grb::reduce(sum, grb::NoAccum{}, grb::PlusMonoid<double>{}, r);
  EXPECT_LT(sum, 0.9);  // mass leaked
  // ...and it matches the equally-leaky GAP reference
  auto want = gapbs::pagerank(t.ref, 0.85, 1e-12, 500);
  expect_close(r, want, 1e-8, "dangling");
}

TEST(PageRank, GraphalyticsVariantConservesRankMass) {
  gen::EdgeList el;
  el.n = 3;
  el.push(0, 1);
  el.push(1, 2);
  auto t = testutil::TestGraph::from_edges("dangle", std::move(el), true);
  grb::Vector<double> r;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::pagerank_dangling_aware(&r, nullptr, t.lg, 0.85, 1e-12,
                                             500, msg),
            LAGRAPH_OK);
  double sum = 0;
  grb::reduce(sum, grb::NoAccum{}, grb::PlusMonoid<double>{}, r);
  EXPECT_NEAR(sum, 1.0, 1e-6);  // dangling mass redistributed
}

TEST(PageRank, VariantsAgreeWithoutDanglingNodes) {
  // On a graph where every node has out-edges the two variants coincide.
  auto t = testutil::tiny_directed();
  grb::Vector<double> r1;
  grb::Vector<double> r2;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::pagerank(&r1, nullptr, t.lg, 0.85, 1e-10, 500, msg),
            LAGRAPH_OK);
  ASSERT_EQ(lagraph::pagerank_dangling_aware(&r2, nullptr, t.lg, 0.85, 1e-10,
                                             500, msg),
            LAGRAPH_OK);
  for (Index i = 0; i < r1.size(); ++i) {
    EXPECT_NEAR(*r1.get(i), *r2.get(i), 1e-8);
  }
}

TEST(PageRank, IterationLimitGivesWarning) {
  auto t = testutil::random_directed(6, 6, 3);
  grb::Vector<double> r;
  int iters = 0;
  char msg[LAGRAPH_MSG_LEN];
  int status = lagraph::pagerank(&r, &iters, t.lg, 0.85, 1e-15, 3, msg);
  EXPECT_EQ(status, LAGRAPH_WARN_CONVERGENCE);
  EXPECT_EQ(iters, 3);
}

TEST(PageRank, AdvancedModeRequiresProperties) {
  auto t = testutil::tiny_directed();
  grb::Vector<double> r;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::advanced::pagerank_gap(&r, nullptr, t.lg, 0.85, 1e-4,
                                            100, msg),
            LAGRAPH_PROPERTY_MISSING);
  lagraph::property_at(t.lg, msg);
  EXPECT_EQ(lagraph::advanced::pagerank_gap(&r, nullptr, t.lg, 0.85, 1e-4,
                                            100, msg),
            LAGRAPH_PROPERTY_MISSING);  // still missing degrees
  lagraph::property_row_degree(t.lg, msg);
  EXPECT_EQ(lagraph::advanced::pagerank_gap(&r, nullptr, t.lg, 0.85, 1e-4,
                                            100, msg),
            LAGRAPH_OK);
}

TEST(PageRank, NullOutputIsError) {
  auto t = testutil::tiny_directed();
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::pagerank<double>(nullptr, nullptr, t.lg, 0.85, 1e-4, 10,
                                      msg),
            LAGRAPH_NULL_POINTER);
}

// Property test for the multi-source BFS family: on random Erdős–Rényi and
// power-law graphs, directed and undirected, the batched levels from every
// msbfs entry point must match the per-source BFS levels exactly:
//
//   - msbfs_levels            (word-parallel kernel, ns×n level matrix)
//   - msbfs_levels_reference  (linear-algebra executable specification)
//   - msbfs_levels_demux      (word-parallel kernel, per-source vectors)
//
// Truth comes from two independent implementations: the gapbs sequential
// reference and lagraph::bfs. Source batches deliberately exceed 64 so the
// kernel's word grouping (and the partial last group) is exercised, and
// directed graphs run both with and without the cached transpose to cover
// the pull and push-only paths.
#include <gtest/gtest.h>

#include <vector>

#include "common/test_graphs.hpp"

namespace lx = lagraph::experimental;
using grb::Index;

namespace {

std::vector<Index> pick_sources(Index n, std::size_t count,
                                std::uint64_t seed) {
  std::vector<Index> s;
  std::uint64_t x = seed;
  for (std::size_t i = 0; i < count; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    s.push_back(static_cast<Index>(x >> 16) % n);
  }
  return s;
}

// Note: runs msbfs first (so a directed graph without a cached transpose
// exercises the push-only path), then the Basic-mode bfs, which caches the
// transpose onto the graph as a side effect.
void expect_all_forms_match(testutil::TestGraph &t,
                            const std::vector<Index> &sources) {
  const auto ns = sources.size();
  const Index n = t.lg.nodes();
  char msg[LAGRAPH_MSG_LEN];

  grb::Matrix<std::int64_t> fast(0, 0);
  ASSERT_EQ(lx::msbfs_levels(&fast, t.lg, sources, msg), LAGRAPH_OK) << msg;
  grb::Matrix<std::int64_t> ref(0, 0);
  ASSERT_EQ(lx::msbfs_levels_reference(&ref, t.lg, sources, msg), LAGRAPH_OK)
      << msg;
  std::vector<grb::Vector<std::int64_t>> demux;
  ASSERT_EQ(lx::msbfs_levels_demux(&demux, t.lg, sources, msg), LAGRAPH_OK)
      << msg;
  ASSERT_EQ(demux.size(), ns);

  for (std::size_t i = 0; i < ns; ++i) {
    auto want = gapbs::bfs_levels_reference(
        t.ref, static_cast<gapbs::NodeId>(sources[i]));
    for (Index v = 0; v < n; ++v) {
      auto a = fast.get(i, v);
      auto b = ref.get(i, v);
      auto c = demux[i].get(v);
      if (want[v] < 0) {
        EXPECT_FALSE(a.has_value())
            << t.name << " fast: row " << i << " node " << v;
        EXPECT_FALSE(b.has_value())
            << t.name << " reference: row " << i << " node " << v;
        EXPECT_FALSE(c.has_value())
            << t.name << " demux: row " << i << " node " << v;
      } else {
        ASSERT_TRUE(a.has_value())
            << t.name << " fast: row " << i << " node " << v;
        ASSERT_TRUE(b.has_value())
            << t.name << " reference: row " << i << " node " << v;
        ASSERT_TRUE(c.has_value())
            << t.name << " demux: row " << i << " node " << v;
        EXPECT_EQ(*a, want[v]) << t.name << " fast: row " << i << " node " << v;
        EXPECT_EQ(*b, want[v])
            << t.name << " reference: row " << i << " node " << v;
        EXPECT_EQ(*c, want[v])
            << t.name << " demux: row " << i << " node " << v;
      }
    }
    // Belt and braces: the stable-tier single-source BFS agrees too.
    grb::Vector<std::int64_t> level;
    ASSERT_EQ(lagraph::bfs(&level,
                           static_cast<grb::Vector<std::int64_t> *>(nullptr),
                           t.lg, sources[i], msg),
              LAGRAPH_OK)
        << msg;
    for (Index v = 0; v < n; ++v) {
      auto d = level.get(v);
      auto c = demux[i].get(v);
      EXPECT_EQ(d.has_value(), c.has_value())
          << t.name << " bfs_level: row " << i << " node " << v;
      if (d && c) {
        EXPECT_EQ(*d, *c) << t.name << " bfs_level: row " << i << " node " << v;
      }
    }
  }
}

}  // namespace

TEST(MsbfsProperty, ErdosRenyiUndirected) {
  for (std::uint64_t seed : {1ull, 7ull}) {
    auto t = testutil::random_undirected(8, 4, seed);
    expect_all_forms_match(t, pick_sources(t.lg.nodes(), 80, seed));
  }
}

TEST(MsbfsProperty, ErdosRenyiDirected) {
  for (std::uint64_t seed : {3ull, 9ull}) {
    auto el = gen::uniform_random(8, 4, seed);
    gen::remove_self_loops(el);
    auto t = testutil::TestGraph::from_edges("er_directed", std::move(el),
                                             /*directed=*/true);
    // Push-only first (no cached transpose)...
    expect_all_forms_match(t, pick_sources(t.lg.nodes(), 70, seed));
    // ...then with the transpose cached so the pull path runs as well.
    char msg[LAGRAPH_MSG_LEN];
    ASSERT_EQ(lagraph::property_at(t.lg, msg), LAGRAPH_OK) << msg;
    expect_all_forms_match(t, pick_sources(t.lg.nodes(), 70, seed + 1));
  }
}

TEST(MsbfsProperty, PowerLawUndirected) {
  for (std::uint64_t seed : {2ull, 5ull}) {
    auto t = testutil::random_kron(8, 6, seed);
    expect_all_forms_match(t, pick_sources(t.lg.nodes(), 80, seed));
  }
}

TEST(MsbfsProperty, PowerLawDirected) {
  for (std::uint64_t seed : {4ull, 8ull}) {
    auto t = testutil::random_directed(8, 6, seed);
    expect_all_forms_match(t, pick_sources(t.lg.nodes(), 70, seed));
    char msg[LAGRAPH_MSG_LEN];
    ASSERT_EQ(lagraph::property_at(t.lg, msg), LAGRAPH_OK) << msg;
    expect_all_forms_match(t, pick_sources(t.lg.nodes(), 70, seed + 1));
  }
}

TEST(MsbfsProperty, PartialWordGroupAndDuplicates) {
  // 3 sources (partial group) including a duplicate pair: each row must
  // still carry its own complete level set.
  auto t = testutil::tiny_undirected();
  std::vector<Index> sources = {0, 3, 0};
  expect_all_forms_match(t, sources);
}

TEST(MsbfsProperty, FinalizedGraphIsUntouched) {
  // The service layer runs the kernel against finalized snapshots; the
  // debug tripwires in grb assert no lazy mutation happens mid-query.
  auto t = testutil::random_kron(7, 4, 11);
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::property_at(t.lg, msg), LAGRAPH_OK) << msg;
  t.lg.a.finalize();
  EXPECT_TRUE(t.lg.a.is_finalized());
  std::vector<grb::Vector<std::int64_t>> demux;
  auto sources = pick_sources(t.lg.nodes(), 66, 13);
  ASSERT_EQ(lx::msbfs_levels_demux(&demux, t.lg, sources, msg), LAGRAPH_OK)
      << msg;
  EXPECT_TRUE(t.lg.a.is_finalized());
}

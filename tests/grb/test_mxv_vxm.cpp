// Tests for mxv (pull) and vxm (push), including transposed descriptors,
// masks pushed into the kernels, and the BFS step with any.secondi.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "grb/grb.hpp"

using grb::Index;
using grb::Matrix;
using grb::Vector;
using grb::no_mask;

namespace {

// Directed graph:
// 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 3, 3 -> 0
Matrix<double> path_graph() {
  Matrix<double> a(4, 4);
  std::vector<Index> ri = {0, 0, 1, 2, 3};
  std::vector<Index> ci = {1, 2, 2, 3, 0};
  std::vector<double> vx = {1.0, 2.0, 3.0, 4.0, 5.0};
  a.build(ri, ci, vx);
  return a;
}

}  // namespace

TEST(Vxm, PlusTimesBasic) {
  auto a = path_graph();
  Vector<double> u(4);
  u.set_element(0, 1.0);
  u.set_element(1, 10.0);
  Vector<double> w(4);
  grb::vxm(w, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, u, a);
  // w(j) = sum_k u(k) * a(k,j): w(1)=1*1, w(2)=1*2+10*3, others empty
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_EQ(w.get(1), 1.0);
  EXPECT_EQ(w.get(2), 32.0);
}

TEST(Mxv, PlusTimesBasic) {
  auto a = path_graph();
  Vector<double> u(4);
  u.set_element(2, 1.0);
  u.set_element(3, 1.0);
  Vector<double> w(4);
  grb::mxv(w, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a, u);
  // w(i) = sum_k a(i,k) u(k): w(0)=a(0,2)=2, w(1)=a(1,2)=3, w(2)=a(2,3)=4
  EXPECT_EQ(w.nvals(), 3u);
  EXPECT_EQ(w.get(0), 2.0);
  EXPECT_EQ(w.get(1), 3.0);
  EXPECT_EQ(w.get(2), 4.0);
}

TEST(MxvVxm, TransposeDescriptorEquivalence) {
  auto a = path_graph();
  auto at = grb::transposed(a);
  Vector<double> u(4);
  u.set_element(0, 2.0);
  u.set_element(2, 5.0);

  // mxv(Aᵀ, u) computed two ways: explicit transpose vs descriptor.
  Vector<double> w1(4);
  Vector<double> w2(4);
  grb::mxv(w1, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, at, u);
  grb::mxv(w2, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a, u,
           grb::desc::T0);
  EXPECT_EQ(w1, w2);

  // vxm(u, Aᵀ) likewise.
  Vector<double> w3(4);
  Vector<double> w4(4);
  grb::vxm(w3, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, u, at);
  grb::vxm(w4, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, u, a,
           grb::desc::T0);
  EXPECT_EQ(w3, w4);
}

TEST(MxvVxm, PushPullAgree) {
  // vxm(u, A) == mxv(A, u) under transposition: uᵀA == (Aᵀu)ᵀ.
  auto a = path_graph();
  auto at = grb::transposed(a);
  Vector<double> u(4);
  u.set_element(1, 3.0);
  u.set_element(3, 7.0);
  Vector<double> push(4);
  Vector<double> pull(4);
  grb::vxm(push, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, u, a);
  grb::mxv(pull, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, at, u);
  EXPECT_EQ(push, pull);
}

TEST(Vxm, MaskRestrictsOutput) {
  auto a = path_graph();
  Vector<double> u(4);
  u.set_element(0, 1.0);
  Vector<grb::Bool> m(4);
  m.set_element(2, true);
  Vector<double> w(4);
  grb::vxm(w, m, grb::NoAccum{}, grb::PlusTimes<double>{}, u, a);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.get(2), 2.0);
}

TEST(Vxm, ComplementedStructuralMaskWithReplace) {
  auto a = path_graph();
  Vector<double> u(4);
  u.set_element(0, 1.0);
  Vector<grb::Bool> visited(4);
  visited.set_element(2, false);  // structural: presence matters, not value
  Vector<double> w(4);
  w.set_element(3, 99.0);  // stale content, replace must clear it
  grb::vxm(w, visited, grb::NoAccum{}, grb::PlusTimes<double>{}, u, a,
           grb::desc::RSC);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.get(1), 1.0);  // 2 masked out, 3 replaced away
}

TEST(Vxm, AccumulatorMergesWithOldContent) {
  auto a = path_graph();
  Vector<double> u(4);
  u.set_element(0, 1.0);
  Vector<double> w(4);
  w.set_element(1, 100.0);
  w.set_element(3, 50.0);
  grb::vxm(w, no_mask, grb::Plus{}, grb::PlusTimes<double>{}, u, a);
  EXPECT_EQ(w.get(1), 101.0);  // accumulated
  EXPECT_EQ(w.get(2), 2.0);    // new entry
  EXPECT_EQ(w.get(3), 50.0);   // untouched
}

TEST(Vxm, BfsStepAnySecondIGivesParents) {
  // frontier at node 0; push step finds children 1, 2 with parent id 0.
  auto a = path_graph();
  Vector<std::uint64_t> q(4);
  q.set_element(0, 0);
  Vector<std::uint64_t> p(4);
  p.set_element(0, 0);  // root's parent is itself
  grb::vxm(q, p, grb::NoAccum{}, grb::AnySecondI<std::uint64_t>{}, q, a,
           grb::desc::RSC);
  EXPECT_EQ(q.nvals(), 2u);
  EXPECT_EQ(q.get(1), 0u);
  EXPECT_EQ(q.get(2), 0u);
}

TEST(Mxv, BfsPullStepAnySecondI) {
  // Pull step: q⟨¬s(p), r⟩ = Aᵀ any.secondi q over the explicit transpose.
  auto a = path_graph();
  auto at = grb::transposed(a);
  Vector<std::uint64_t> q(4);
  q.set_element(0, 0);
  Vector<std::uint64_t> p(4);
  p.set_element(0, 0);
  grb::mxv(q, p, grb::NoAccum{}, grb::AnySecondI<std::uint64_t>{}, at, q,
           grb::desc::RSC);
  EXPECT_EQ(q.nvals(), 2u);
  EXPECT_EQ(q.get(1), 0u);
  EXPECT_EQ(q.get(2), 0u);
}

TEST(Mxv, MinPlusRelaxation) {
  auto a = path_graph();
  auto at = grb::transposed(a);
  Vector<double> dist(4);
  dist.set_element(0, 0.0);
  Vector<double> w(4);
  grb::mxv(w, no_mask, grb::NoAccum{}, grb::MinPlus<double>{}, at, dist);
  // relax out-edges of 0: dist 1 = 1, dist 2 = 2 (via min over in-edges)
  EXPECT_EQ(w.get(1), 1.0);
  EXPECT_EQ(w.get(2), 2.0);
}

TEST(MxvVxm, DimensionMismatchThrows) {
  auto a = path_graph();
  Vector<double> u(5);
  Vector<double> w(4);
  EXPECT_THROW(grb::vxm(w, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{},
                        u, a),
               grb::Exception);
  Vector<double> u4(4);
  Vector<double> w5(5);
  EXPECT_THROW(grb::mxv(w5, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{},
                        a, u4),
               grb::Exception);
}

TEST(Vxm, EmptyFrontierYieldsEmptyResult) {
  auto a = path_graph();
  Vector<double> u(4);
  Vector<double> w(4);
  w.set_element(0, 5.0);
  grb::vxm(w, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, u, a);
  EXPECT_EQ(w.nvals(), 0u);  // no accumulator: w is overwritten by empty t
}

TEST(Vxm, BitmapFrontierMatchesSparse) {
  auto a = path_graph();
  Vector<double> u(4);
  u.set_element(0, 1.0);
  u.set_element(1, 1.0);
  u.set_element(3, 1.0);
  Vector<double> w_sparse(4);
  grb::vxm(w_sparse, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, u, a);
  u.to_bitmap();
  Vector<double> w_bitmap(4);
  grb::vxm(w_bitmap, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, u, a);
  EXPECT_EQ(w_sparse, w_bitmap);
}

// Exhaustive tests of the mask/accumulator/replace output step (spec §2.3 of
// the GraphBLAS C API, Table I footnote of the paper): the eight
// combinations of {valued, structural} × {plain, complemented} × {merge,
// replace}, with and without an accumulator.
#include <gtest/gtest.h>

#include <vector>

#include "grb/grb.hpp"

using grb::Index;
using grb::Vector;
using grb::no_mask;

namespace {

// Fixture data:
//   w (old):   [10, 20,  -,  -, 50]  (entries at 0,1,4)
//   t (new):   [ -,  2,  3,  4,  -]  (entries at 1,2,3)
//   m (mask):  [ 1,  0,  1,  -,  1]  (entries at 0,1,2,4; value 0 at 1)
struct Fix {
  Vector<int> w{5};
  Vector<int> t{5};
  Vector<int> m{5};
  Fix() {
    w.set_element(0, 10);
    w.set_element(1, 20);
    w.set_element(4, 50);
    t.set_element(1, 2);
    t.set_element(2, 3);
    t.set_element(3, 4);
    m.set_element(0, 1);
    m.set_element(1, 0);  // explicit zero: in structural mask, not in valued
    m.set_element(2, 1);
    m.set_element(4, 1);
  }
};

// Drive the output step through apply (identity), the simplest op.
template <typename MaskT, typename Accum>
Vector<int> run(Fix f, const MaskT &mask, Accum accum, grb::Descriptor d) {
  grb::apply(f.w, mask, accum, grb::Identity{}, f.t, d);
  return f.w;
}

}  // namespace

TEST(MaskSemantics, NoMaskNoAccumOverwrites) {
  Fix f;
  auto w = run(f, no_mask, grb::NoAccum{}, {});
  EXPECT_EQ(w, f.t);
}

TEST(MaskSemantics, NoMaskAccumMergesUnion) {
  Fix f;
  auto w = run(f, no_mask, grb::Plus{}, {});
  EXPECT_EQ(w.get(0), 10);  // only in w
  EXPECT_EQ(w.get(1), 22);  // both: accumulated
  EXPECT_EQ(w.get(2), 3);   // only in t
  EXPECT_EQ(w.get(3), 4);
  EXPECT_EQ(w.get(4), 50);
}

TEST(MaskSemantics, ValuedMaskMerge) {
  Fix f;
  auto w = run(f, f.m, grb::NoAccum{}, {});
  // mask selects {0,2,4} (1 has explicit zero -> excluded in valued mode)
  EXPECT_FALSE(w.has(0));   // in mask, t missing -> deleted
  EXPECT_EQ(w.get(1), 20);  // outside mask: old kept (merge)
  EXPECT_EQ(w.get(2), 3);   // in mask, t present
  EXPECT_FALSE(w.has(3));   // outside mask, no old entry
  EXPECT_FALSE(w.has(4));   // in mask, t missing -> deleted
}

TEST(MaskSemantics, StructuralMaskMerge) {
  Fix f;
  auto w = run(f, f.m, grb::NoAccum{}, grb::desc::S);
  // structural mask selects {0,1,2,4}
  EXPECT_FALSE(w.has(0));
  EXPECT_EQ(w.get(1), 2);  // now inside mask: overwritten by t
  EXPECT_EQ(w.get(2), 3);
  EXPECT_FALSE(w.has(3));
  EXPECT_FALSE(w.has(4));
}

TEST(MaskSemantics, ValuedMaskReplace) {
  Fix f;
  auto w = run(f, f.m, grb::NoAccum{}, grb::desc::R);
  // replace deletes everything outside the mask
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.get(2), 3);
}

TEST(MaskSemantics, ComplementedValuedMerge) {
  Fix f;
  auto w = run(f, f.m, grb::NoAccum{}, grb::desc::C);
  // complement selects {1,3}
  EXPECT_EQ(w.get(0), 10);  // outside complement: kept
  EXPECT_EQ(w.get(1), 2);
  EXPECT_EQ(w.get(3), 4);
  EXPECT_EQ(w.get(4), 50);
  EXPECT_FALSE(w.has(2));
}

TEST(MaskSemantics, ComplementedStructuralReplace) {
  Fix f;
  auto w = run(f, f.m, grb::NoAccum{}, grb::desc::RSC);
  // structural complement selects {3} only
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.get(3), 4);
}

TEST(MaskSemantics, AccumInsideMaskKeepsOldWhereTMissing) {
  Fix f;
  auto w = run(f, f.m, grb::Plus{}, grb::desc::S);
  // structural mask {0,1,2,4}; accumulator keeps old entries lacking t
  EXPECT_EQ(w.get(0), 10);
  EXPECT_EQ(w.get(1), 22);
  EXPECT_EQ(w.get(2), 3);
  EXPECT_FALSE(w.has(3));  // outside mask, nothing old
  EXPECT_EQ(w.get(4), 50);
}

TEST(MaskSemantics, AccumWithReplace) {
  Fix f;
  auto w = run(f, f.m, grb::Plus{}, grb::desc::RS);
  EXPECT_EQ(w.get(0), 10);
  EXPECT_EQ(w.get(1), 22);
  EXPECT_EQ(w.get(2), 3);
  EXPECT_FALSE(w.has(3));
  EXPECT_EQ(w.get(4), 50);
}

TEST(MaskSemantics, ComplementOfNoMaskSelectsNothing) {
  Fix f;
  auto w = run(f, no_mask, grb::NoAccum{}, grb::desc::C);
  // complement of the implicit all-true mask: nothing computed, w untouched
  EXPECT_EQ(w.get(0), 10);
  EXPECT_EQ(w.get(1), 20);
  EXPECT_EQ(w.get(4), 50);
  EXPECT_EQ(w.nvals(), 3u);
}

TEST(MaskSemantics, ComplementOfNoMaskWithReplaceClearsAll) {
  Fix f;
  auto w = run(f, no_mask, grb::NoAccum{}, grb::desc::RC);
  EXPECT_EQ(w.nvals(), 0u);
}

TEST(MaskSemantics, EmptyMaskSelectsNothing) {
  Fix f;
  Vector<int> empty(5);
  auto w = run(f, empty, grb::NoAccum{}, {});
  EXPECT_EQ(w.nvals(), 3u);  // merge: all old entries survive
}

TEST(MaskSemantics, BitmapMaskMatchesSparseMask) {
  Fix f1;
  Fix f2;
  auto w1 = run(f1, f1.m, grb::NoAccum{}, grb::desc::SC);
  f2.m.to_bitmap();
  auto w2 = run(f2, f2.m, grb::NoAccum{}, grb::desc::SC);
  EXPECT_EQ(w1, w2);
}

// Query-corpus replay, alongside the kernel corpus in the conformance
// suite: every committed tests/corpus/query/*.repro must parse and agree
// with the tuple-at-a-time oracle under the full RunConfig sweep in both
// compilation modes. The corpus is regenerated (seed_*.repro only) with
// `lagraph_cli fuzz --query --emit-corpus tests/corpus/query`; the
// shrunk_*.repro files are hand-reduced regressions and never regenerated.
#include <gtest/gtest.h>

#include <string>

#include "query/testing/qtest.hpp"

#ifndef LAGRAPH_CORPUS_DIR
#define LAGRAPH_CORPUS_DIR "tests/corpus"
#endif

namespace qt = lagraph::query::testing;

TEST(QueryConformance, QueryCorpusReplaysClean) {
  const std::string dir = std::string(LAGRAPH_CORPUS_DIR) + "/query";
  grb::testing::ReplayOutcome out = qt::replay_corpus(dir);
  EXPECT_GE(out.files, 2) << "query corpus missing or too small: " << dir;
  EXPECT_EQ(out.failures, 0) << out.detail;
  EXPECT_GT(out.instances, 0u);
}

TEST(QueryConformance, HandShrunkRegressionsPresent) {
  std::string err;
  for (const char *name : {"shrunk_degree_hub", "shrunk_pin_cycle"}) {
    const std::string path = std::string(LAGRAPH_CORPUS_DIR) + "/query/" +
                             name + ".repro";
    auto mm = qt::replay_file(path, &err);
    EXPECT_TRUE(err.empty()) << path << ": " << err;
    EXPECT_FALSE(mm.has_value()) << mm->to_string();
  }
}

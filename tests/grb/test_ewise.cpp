// Tests for eWiseAdd (union) and eWiseMult (intersection) on vectors and
// matrices.
#include <gtest/gtest.h>

#include <vector>

#include "grb/grb.hpp"

using grb::Index;
using grb::Matrix;
using grb::Vector;
using grb::no_mask;

namespace {

Vector<double> vec(std::vector<std::pair<Index, double>> entries, Index n) {
  Vector<double> v(n);
  for (auto &[i, x] : entries) v.set_element(i, x);
  return v;
}

}  // namespace

TEST(EWise, AddUnionSemantics) {
  auto u = vec({{0, 1.0}, {2, 3.0}}, 5);
  auto v = vec({{2, 10.0}, {4, 5.0}}, 5);
  Vector<double> w(5);
  grb::eWiseAdd(w, no_mask, grb::NoAccum{}, grb::Plus{}, u, v);
  EXPECT_EQ(w.nvals(), 3u);
  EXPECT_EQ(w.get(0), 1.0);   // only in u: passes through
  EXPECT_EQ(w.get(2), 13.0);  // in both: op applied
  EXPECT_EQ(w.get(4), 5.0);   // only in v: passes through
}

TEST(EWise, MultIntersectionSemantics) {
  auto u = vec({{0, 1.0}, {2, 3.0}}, 5);
  auto v = vec({{2, 10.0}, {4, 5.0}}, 5);
  Vector<double> w(5);
  grb::eWiseMult(w, no_mask, grb::NoAccum{}, grb::Times{}, u, v);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.get(2), 30.0);
}

TEST(EWise, AddWithNonCommutativeOpUsesUnionPassThrough) {
  // min∪ is how SSSP merges tentative distances.
  auto u = vec({{0, 5.0}, {1, 2.0}}, 3);
  auto v = vec({{0, 3.0}, {2, 7.0}}, 3);
  Vector<double> w(3);
  grb::eWiseAdd(w, no_mask, grb::NoAccum{}, grb::Min{}, u, v);
  EXPECT_EQ(w.get(0), 3.0);
  EXPECT_EQ(w.get(1), 2.0);
  EXPECT_EQ(w.get(2), 7.0);
}

TEST(EWise, DivIntersectionForBCBacktrack) {
  // W⟨s(S)⟩ = B div∩ P from the BC backtrack phase.
  auto b = vec({{0, 6.0}, {1, 8.0}}, 3);
  auto p = vec({{0, 2.0}, {1, 4.0}, {2, 5.0}}, 3);
  Vector<double> w(3);
  grb::eWiseMult(w, no_mask, grb::NoAccum{}, grb::Div{}, b, p);
  EXPECT_EQ(w.get(0), 3.0);
  EXPECT_EQ(w.get(1), 2.0);
  EXPECT_FALSE(w.get(2).has_value());
}

TEST(EWise, MixedFormatsAgree) {
  auto u = vec({{0, 1.0}, {2, 3.0}, {3, 4.0}}, 4);
  auto v = vec({{1, 2.0}, {2, 10.0}}, 4);
  Vector<double> w_ss(4);
  grb::eWiseAdd(w_ss, no_mask, grb::NoAccum{}, grb::Plus{}, u, v);
  u.to_bitmap();
  Vector<double> w_bs(4);
  grb::eWiseAdd(w_bs, no_mask, grb::NoAccum{}, grb::Plus{}, u, v);
  v.to_bitmap();
  Vector<double> w_bb(4);
  grb::eWiseAdd(w_bb, no_mask, grb::NoAccum{}, grb::Plus{}, u, v);
  EXPECT_EQ(w_ss, w_bs);
  EXPECT_EQ(w_ss, w_bb);
}

TEST(EWise, MatrixAddAndMult) {
  Matrix<int> a(2, 2);
  Matrix<int> b(2, 2);
  a.set_element(0, 0, 1);
  a.set_element(0, 1, 2);
  b.set_element(0, 1, 10);
  b.set_element(1, 1, 20);
  Matrix<int> add(2, 2);
  grb::eWiseAdd(add, no_mask, grb::NoAccum{}, grb::Plus{}, a, b);
  EXPECT_EQ(add.nvals(), 3u);
  EXPECT_EQ(add.get(0, 0), 1);
  EXPECT_EQ(add.get(0, 1), 12);
  EXPECT_EQ(add.get(1, 1), 20);
  Matrix<int> mult(2, 2);
  grb::eWiseMult(mult, no_mask, grb::NoAccum{}, grb::Times{}, a, b);
  EXPECT_EQ(mult.nvals(), 1u);
  EXPECT_EQ(mult.get(0, 1), 20);
}

TEST(EWise, MatrixMaskAndAccum) {
  Matrix<int> a(2, 2);
  Matrix<int> b(2, 2);
  a.set_element(0, 0, 1);
  a.set_element(1, 1, 2);
  b.set_element(0, 0, 10);
  b.set_element(1, 1, 20);
  Matrix<grb::Bool> m(2, 2);
  m.set_element(0, 0, true);
  Matrix<int> c(2, 2);
  c.set_element(0, 0, 100);
  c.set_element(1, 1, 200);
  grb::eWiseAdd(c, m, grb::Plus{}, grb::Plus{}, a, b);
  EXPECT_EQ(c.get(0, 0), 111);  // inside mask: accumulated
  EXPECT_EQ(c.get(1, 1), 200);  // outside mask: untouched (merge semantics)
}

TEST(EWise, VectorDimensionMismatchThrows) {
  Vector<double> u(3);
  Vector<double> v(4);
  Vector<double> w(3);
  EXPECT_THROW(grb::eWiseAdd(w, no_mask, grb::NoAccum{}, grb::Plus{}, u, v),
               grb::Exception);
}

TEST(EWise, NeForTerminationCheck) {
  // FastSV termination: diff = dup ≠ gf, then reduce with plus.
  auto u = vec({{0, 1.0}, {1, 2.0}, {2, 3.0}}, 3);
  auto v = vec({{0, 1.0}, {1, 5.0}, {2, 3.0}}, 3);
  Vector<double> diff(3);
  grb::eWiseMult(diff, no_mask, grb::NoAccum{}, grb::Ne{}, u, v);
  double sum = 0;
  grb::reduce(sum, grb::NoAccum{}, grb::PlusMonoid<double>{}, diff);
  EXPECT_EQ(sum, 1.0);
}

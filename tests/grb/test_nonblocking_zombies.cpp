// Non-blocking mode visibility: set_element defers to a pending-tuple list
// and remove_element creates "zombies" (CSR format only), both merged on the
// next finish(). The spec'd contract is that deferred state is *never*
// observable — nvals/get/extract_tuples/reduce must reflect the logical
// content as if every mutation had been applied eagerly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "grb/grb.hpp"

namespace {

using grb::Index;
using T = std::int64_t;
using Mat = grb::Matrix<T>;
using Vec = grb::Vector<T>;

Mat build3x3() {
  // (0,0)=1 (0,2)=10 (1,1)=100 (2,0)=1000
  Mat a(3, 3);
  std::vector<Index> r{0, 0, 1, 2}, c{0, 2, 1, 0};
  std::vector<T> v{1, 10, 100, 1000};
  a.build(r, c, v);
  return a;
}

T reduce_plus(const Mat &a) {
  T s = 0;
  grb::reduce(s, grb::NoAccum{}, grb::PlusMonoid<T>{}, a);
  return s;
}

TEST(NonBlockingZombies, ZombieInvisibleToNvals) {
  Mat a = build3x3();
  ASSERT_EQ(a.nvals(), 4u);
  a.remove_element(0, 2);
  ASSERT_TRUE(a.has_pending()) << "CSR remove_element should defer a zombie";
  EXPECT_EQ(a.nvals(), 3u) << "zombie counted by nvals before flush";
}

TEST(NonBlockingZombies, ZombieInvisibleToGet) {
  Mat a = build3x3();
  a.remove_element(1, 1);
  ASSERT_TRUE(a.has_pending());
  EXPECT_FALSE(a.get(1, 1).has_value()) << "zombie readable via get()";
  // Untouched entries survive the merge intact.
  EXPECT_EQ(a.get(2, 0).value_or(-1), 1000);
}

TEST(NonBlockingZombies, ZombieInvisibleToExtractTuples) {
  Mat a = build3x3();
  a.remove_element(0, 0);
  a.remove_element(2, 0);
  ASSERT_TRUE(a.has_pending());
  std::vector<Index> r, c;
  std::vector<T> v;
  a.extract_tuples(r, c, v);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(r, (std::vector<Index>{0, 1}));
  EXPECT_EQ(c, (std::vector<Index>{2, 1}));
  EXPECT_EQ(v, (std::vector<T>{10, 100}));
}

TEST(NonBlockingZombies, ZombieInvisibleToReduce) {
  Mat a = build3x3();
  ASSERT_EQ(reduce_plus(a), 1111);
  a.remove_element(2, 0);
  ASSERT_TRUE(a.has_pending());
  EXPECT_EQ(reduce_plus(a), 111) << "zombie value leaked into reduce";
}

TEST(NonBlockingZombies, PendingInsertVisibleToReads) {
  Mat a = build3x3();
  a.set_element(2, 2, 7);
  ASSERT_TRUE(a.has_pending());
  EXPECT_EQ(a.nvals(), 5u);
  EXPECT_EQ(a.get(2, 2).value_or(-1), 7);
}

TEST(NonBlockingZombies, RemoveThenSetResurrects) {
  Mat a = build3x3();
  a.remove_element(0, 0);
  a.set_element(0, 0, 42);
  ASSERT_TRUE(a.has_pending());
  EXPECT_EQ(a.get(0, 0).value_or(-1), 42);
  EXPECT_EQ(a.nvals(), 4u);
}

TEST(NonBlockingZombies, SetThenRemoveStaysDead) {
  Mat a = build3x3();
  a.set_element(1, 2, 42);
  a.remove_element(1, 2);
  ASSERT_TRUE(a.has_pending());
  EXPECT_FALSE(a.get(1, 2).has_value());
  EXPECT_EQ(a.nvals(), 4u);
}

TEST(NonBlockingZombies, LaterWriteWins) {
  Mat a = build3x3();
  a.set_element(0, 1, 5);
  a.set_element(0, 1, 6);
  ASSERT_TRUE(a.has_pending());
  EXPECT_EQ(a.get(0, 1).value_or(-1), 6);
  EXPECT_EQ(a.nvals(), 5u);
}

TEST(NonBlockingZombies, ZombieForAbsentEntryIsNoOp) {
  Mat a = build3x3();
  a.remove_element(2, 2);  // never present
  EXPECT_EQ(a.nvals(), 4u);
  EXPECT_EQ(reduce_plus(a), 1111);
}

TEST(NonBlockingZombies, InterleavedAcrossFlushes) {
  // Mutations, a flushing read, then more mutations: each batch of deferred
  // work must merge against the already-merged state, not the original.
  Mat a = build3x3();
  a.remove_element(0, 0);
  ASSERT_EQ(a.nvals(), 3u);  // forces the first flush
  ASSERT_FALSE(a.has_pending());
  a.set_element(0, 0, 2);
  a.remove_element(1, 1);
  ASSERT_TRUE(a.has_pending());
  EXPECT_EQ(a.nvals(), 3u);
  EXPECT_EQ(a.get(0, 0).value_or(-1), 2);
  EXPECT_FALSE(a.get(1, 1).has_value());
  EXPECT_EQ(reduce_plus(a), 1012);
}

TEST(NonBlockingZombies, BitmapMutatesEagerly) {
  Mat a = build3x3();
  a.to_bitmap();
  a.remove_element(0, 0);
  EXPECT_FALSE(a.has_pending()) << "bitmap deletes should apply in place";
  EXPECT_EQ(a.nvals(), 3u);
  a.set_element(0, 0, 9);
  EXPECT_FALSE(a.has_pending());
  EXPECT_EQ(a.get(0, 0).value_or(-1), 9);
}

TEST(NonBlockingZombies, HypersparseConvertsOnMutation) {
  Mat a = build3x3();
  a.to_hypersparse();
  a.remove_element(0, 2);
  EXPECT_EQ(a.nvals(), 3u);
  EXPECT_FALSE(a.get(0, 2).has_value());
}

TEST(NonBlockingZombies, VectorMutationsAreImmediate) {
  Vec u(4);
  std::vector<Index> ix{0, 1, 3};
  std::vector<T> v{1, 10, 100};
  u.build(ix, v);
  u.remove_element(1);
  EXPECT_EQ(u.nvals(), 2u);
  EXPECT_FALSE(u.get(1).has_value());
  T s = 0;
  grb::reduce(s, grb::NoAccum{}, grb::PlusMonoid<T>{}, u);
  EXPECT_EQ(s, 101);
}

TEST(NonBlockingZombies, KernelInputFlushesDeferredWork) {
  // A matrix with pending work fed into a kernel must behave as if flushed.
  Mat a = build3x3();
  a.remove_element(0, 0);
  a.set_element(2, 2, 3);
  ASSERT_TRUE(a.has_pending());
  Vec ones(3);
  std::vector<Index> ix{0, 1, 2};
  std::vector<T> v{1, 1, 1};
  ones.build(ix, v);
  Vec w(3);
  grb::mxv(w, grb::no_mask, grb::NoAccum{}, grb::PlusTimes<T>{}, a,
           ones);
  EXPECT_EQ(w.get(0).value_or(-1), 10);    // (0,0) zombie gone, (0,2)=10
  EXPECT_EQ(w.get(1).value_or(-1), 100);
  EXPECT_EQ(w.get(2).value_or(-1), 1003);  // 1000 + new (2,2)=3
}

}  // namespace

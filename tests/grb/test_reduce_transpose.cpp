// Tests for reduce (row-wise, to-scalar) and transpose.
#include <gtest/gtest.h>

#include <vector>

#include "grb/grb.hpp"

using grb::Index;
using grb::Matrix;
using grb::Vector;
using grb::no_mask;

namespace {

Matrix<double> sample() {
  // [ 1 2 . ]
  // [ . 3 . ]
  // [ 4 . 5 ]
  Matrix<double> a(3, 3);
  std::vector<Index> ri = {0, 0, 1, 2, 2};
  std::vector<Index> ci = {0, 1, 1, 0, 2};
  std::vector<double> vx = {1, 2, 3, 4, 5};
  a.build(ri, ci, vx);
  return a;
}

}  // namespace

TEST(Reduce, RowWiseToVector) {
  auto a = sample();
  Vector<double> w(3);
  grb::reduce(w, no_mask, grb::NoAccum{}, grb::PlusMonoid<double>{}, a);
  EXPECT_EQ(w.get(0), 3.0);
  EXPECT_EQ(w.get(1), 3.0);
  EXPECT_EQ(w.get(2), 9.0);
}

TEST(Reduce, ColumnWiseViaTransposeDescriptor) {
  auto a = sample();
  Vector<double> w(3);
  grb::reduce(w, no_mask, grb::NoAccum{}, grb::PlusMonoid<double>{}, a,
              grb::desc::T0);
  EXPECT_EQ(w.get(0), 5.0);
  EXPECT_EQ(w.get(1), 5.0);
  EXPECT_EQ(w.get(2), 5.0);
}

TEST(Reduce, RowDegreesWithPlusPairSemantics) {
  // Degrees = row-wise reduce of the pattern (count entries).
  auto a = sample();
  Matrix<std::uint64_t> pat(3, 3);
  grb::apply(pat, no_mask, grb::NoAccum{}, grb::One{}, a);
  Vector<std::uint64_t> deg(3);
  grb::reduce(deg, no_mask, grb::NoAccum{}, grb::PlusMonoid<std::uint64_t>{},
              pat);
  EXPECT_EQ(deg.get(0), 2u);
  EXPECT_EQ(deg.get(1), 1u);
  EXPECT_EQ(deg.get(2), 2u);
}

TEST(Reduce, MatrixToScalar) {
  auto a = sample();
  double s = 0;
  grb::reduce(s, grb::NoAccum{}, grb::PlusMonoid<double>{}, a);
  EXPECT_EQ(s, 15.0);
}

TEST(Reduce, VectorToScalarMinMax) {
  Vector<double> u(5);
  u.set_element(1, 4.0);
  u.set_element(3, -2.0);
  double mn = 0;
  double mx = 0;
  grb::reduce(mn, grb::NoAccum{}, grb::MinMonoid<double>{}, u);
  grb::reduce(mx, grb::NoAccum{}, grb::MaxMonoid<double>{}, u);
  EXPECT_EQ(mn, -2.0);
  EXPECT_EQ(mx, 4.0);
}

TEST(Reduce, EmptyYieldsIdentity) {
  Vector<double> u(5);
  double s = 99;
  grb::reduce(s, grb::NoAccum{}, grb::PlusMonoid<double>{}, u);
  EXPECT_EQ(s, 0.0);
}

TEST(Reduce, ScalarAccumulates) {
  Vector<double> u(2);
  u.set_element(0, 5.0);
  double s = 10.0;
  grb::reduce(s, grb::Plus{}, grb::PlusMonoid<double>{}, u);
  EXPECT_EQ(s, 15.0);
}

TEST(Reduce, RowReduceSkipsEmptyRows) {
  Matrix<double> a(3, 3);
  a.set_element(0, 0, 1.0);
  Vector<double> w(3);
  grb::reduce(w, no_mask, grb::NoAccum{}, grb::PlusMonoid<double>{}, a);
  EXPECT_EQ(w.nvals(), 1u);
}

TEST(Transpose, Basic) {
  auto a = sample();
  Matrix<double> at(3, 3);
  grb::transpose(at, no_mask, grb::NoAccum{}, a);
  EXPECT_EQ(at.nvals(), a.nvals());
  a.for_each([&](Index i, Index j, const double &x) {
    EXPECT_EQ(at.get(j, i), x);
  });
}

TEST(Transpose, InvolutionIsIdentity) {
  auto a = sample();
  auto att = grb::transposed(grb::transposed(a));
  EXPECT_EQ(a, att);
}

TEST(Transpose, RectangularShape) {
  Matrix<int> a(2, 5);
  a.set_element(0, 4, 7);
  auto at = grb::transposed(a);
  EXPECT_EQ(at.nrows(), 5u);
  EXPECT_EQ(at.ncols(), 2u);
  EXPECT_EQ(at.get(4, 0), 7);
}

TEST(Transpose, JumbledInputHandled) {
  grb::config().lazy_sort = true;
  Matrix<int> a(1, 4);
  std::vector<Index> rp = {0, 3};
  std::vector<Index> ci = {2, 0, 3};
  std::vector<int> vx = {20, 0, 30};
  a.adopt_csr(std::move(rp), std::move(ci), std::move(vx), true);
  auto at = grb::transposed(a);
  EXPECT_EQ(at.get(0, 0), 0);
  EXPECT_EQ(at.get(2, 0), 20);
  EXPECT_EQ(at.get(3, 0), 30);
}

TEST(Transpose, WithMaskKeepsOnlyMaskedEntries) {
  auto a = sample();
  Matrix<grb::Bool> m(3, 3);
  m.set_element(1, 0, true);  // aᵀ(1,0) = a(0,1) = 2
  Matrix<double> at(3, 3);
  grb::transpose(at, m, grb::NoAccum{}, a);
  EXPECT_EQ(at.nvals(), 1u);
  EXPECT_EQ(at.get(1, 0), 2.0);
}

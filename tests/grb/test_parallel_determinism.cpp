// Determinism suite for the parallel kernel layer (ctest label "parallel").
//
// Every parallelized kernel must produce results bit-identical to the serial
// path (Config::num_threads = 1) for any thread count: the nnz-balanced
// partitioner hands each thread a contiguous ascending chunk, and chunk
// partials are always folded in chunk order, which reproduces the serial
// left-to-right fold exactly. These tests pin that contract on an
// Erdős–Rényi graph and a power-law Kronecker graph, at thread counts 4 and
// 8, with integer-valued double weights so floating-point addition is exact.
//
// A std::thread stress test at the bottom doubles as the TSan target for
// -DLAGRAPH_SANITIZE=thread builds. Under TSan the stress threads pin
// num_threads = 1: libgomp is not TSan-instrumented, so OpenMP barriers
// would produce false positives; the sanitizer run instead checks the
// read-only sharing contract of finalized containers plus the workspace
// pool's locking, which are the data structures the OpenMP paths share.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "grb/grb.hpp"

using grb::Index;
using grb::Matrix;
using grb::Vector;
using grb::no_mask;

namespace {

struct ThreadGuard {
  explicit ThreadGuard(int n) { grb::config().num_threads = n; }
  ~ThreadGuard() { grb::config().num_threads = 0; }
};

Matrix<double> make_graph(bool powerlaw, int scale) {
  auto el = powerlaw ? gen::kronecker(scale, 8, 0xfeedULL)
                     : gen::uniform_random(scale, 8, 0xbeefULL);
  gen::add_uniform_weights(el, 1, 255, 0x77ULL);
  Matrix<double> a = gen::to_matrix<double>(el);
  a.finalize();
  return a;
}

Vector<double> make_frontier(Index n, int denom) {
  std::vector<Index> idx;
  std::vector<double> val;
  std::uint64_t state = 0x2468ULL;
  for (Index i = 0; i < n; ++i) {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    if (state % static_cast<std::uint64_t>(denom) == 0) {
      idx.push_back(i);
      val.push_back(static_cast<double>(1 + state % 100));
    }
  }
  Vector<double> v(n);
  v.adopt_sparse(std::move(idx), std::move(val));
  return v;
}

template <typename T>
void expect_identical(const Vector<T> &serial, const Vector<T> &par,
                      const char *what) {
  std::vector<Index> si, pi;
  std::vector<T> sv, pv;
  serial.extract_tuples(si, sv);
  par.extract_tuples(pi, pv);
  ASSERT_EQ(si, pi) << what << ": index sets differ";
  ASSERT_EQ(sv.size(), pv.size()) << what;
  for (std::size_t k = 0; k < sv.size(); ++k) {
    ASSERT_EQ(sv[k], pv[k]) << what << " at slot " << k;  // bitwise, no EPS
  }
}

template <typename T>
void expect_identical(const Matrix<T> &serial, const Matrix<T> &par,
                      const char *what) {
  std::vector<Index> sr, sc, pr, pc;
  std::vector<T> sv, pv;
  serial.extract_tuples(sr, sc, sv);
  par.extract_tuples(pr, pc, pv);
  ASSERT_EQ(sr, pr) << what << ": row sets differ";
  ASSERT_EQ(sc, pc) << what << ": column sets differ";
  ASSERT_EQ(sv.size(), pv.size()) << what;
  for (std::size_t k = 0; k < sv.size(); ++k) {
    ASSERT_EQ(sv[k], pv[k]) << what << " at slot " << k;
  }
}

// Run `op` at num_threads=1 and at each parallel thread count and require
// bit-identical results. `op` returns the container to compare.
template <typename MakeResult>
void check_thread_sweep(MakeResult &&op, const char *what) {
  ThreadGuard serial_guard(1);
  auto ref = op();
  for (int t : {4, 8}) {
    grb::config().num_threads = t;
    auto got = op();
    expect_identical(ref, got, what);
  }
}

class ParallelDeterminism : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    a_ = make_graph(GetParam(), 11);
    at_ = grb::transposed(a_);
    at_.finalize();
    n_ = a_.nrows();
    frontier_ = make_frontier(n_, 16);
    grb::Vector<double> d1(n_), d2(n_);
    grb::reduce(d1, no_mask, grb::NoAccum{}, grb::PlusMonoid<double>{}, a_);
    grb::reduce(d2, no_mask, grb::NoAccum{}, grb::PlusMonoid<double>{}, at_);
    d1.to_bitmap();
    d2.to_bitmap();
    dense1_ = std::move(d1);
    dense2_ = std::move(d2);
  }

  Matrix<double> a_, at_;
  Vector<double> frontier_, dense1_, dense2_;
  Index n_ = 0;
};

TEST_P(ParallelDeterminism, VxmPushUnmasked) {
  check_thread_sweep(
      [&] {
        Vector<double> w(n_);
        grb::vxm(w, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{},
                 frontier_, a_);
        return w;
      },
      "vxm push (plus.times)");
}

TEST_P(ParallelDeterminism, VxmPushMasked) {
  check_thread_sweep(
      [&] {
        Vector<double> w(n_);
        grb::Descriptor d;
        d.mask_complement = true;
        grb::vxm(w, frontier_, grb::NoAccum{}, grb::PlusTimes<double>{},
                 frontier_, a_, d);
        return w;
      },
      "vxm push (complemented mask)");
}

TEST_P(ParallelDeterminism, VxmPushMinPlus) {
  check_thread_sweep(
      [&] {
        Vector<double> w(n_);
        grb::vxm(w, no_mask, grb::NoAccum{}, grb::MinPlus<double>{}, frontier_,
                 a_);
        return w;
      },
      "vxm push (min.plus, terminal monoid)");
}

TEST_P(ParallelDeterminism, VxmPushAnySecondi) {
  // The BFS parent semiring: any monoid is all-terminal, secondi is
  // positional. The parallel merge must keep the serial "first product
  // wins" value per slot.
  check_thread_sweep(
      [&] {
        Vector<std::int64_t> w(n_);
        grb::vxm(w, no_mask, grb::NoAccum{}, grb::AnySecondI<std::int64_t>{},
                 frontier_, a_);
        return w;
      },
      "vxm push (any.secondi)");
}

TEST_P(ParallelDeterminism, MxvPull) {
  check_thread_sweep(
      [&] {
        Vector<double> w(n_);
        grb::mxv(w, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a_,
                 dense1_);
        return w;
      },
      "mxv pull (plus.times)");
}

TEST_P(ParallelDeterminism, MxvPullTerminal) {
  check_thread_sweep(
      [&] {
        Vector<double> w(n_);
        grb::mxv(w, no_mask, grb::NoAccum{}, grb::MinPlus<double>{}, a_,
                 dense1_);
        return w;
      },
      "mxv pull (min.plus short-circuit)");
}

TEST_P(ParallelDeterminism, MxmGustavson) {
  check_thread_sweep(
      [&] {
        Matrix<double> c(n_, n_);
        grb::mxm(c, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a_, at_);
        return c;
      },
      "mxm gustavson");
}

TEST_P(ParallelDeterminism, MxmDotMasked) {
  check_thread_sweep(
      [&] {
        Matrix<double> c(n_, n_);
        grb::Descriptor d;
        d.transpose_b = true;
        d.mask_structural = true;
        grb::mxm(c, a_, grb::NoAccum{}, grb::PlusPair<double>{}, a_, at_, d);
        return c;
      },
      "mxm dot (structural mask)");
}

TEST_P(ParallelDeterminism, EwiseVectors) {
  check_thread_sweep(
      [&] {
        Vector<double> w(n_);
        grb::eWiseAdd(w, no_mask, grb::NoAccum{}, grb::Min{}, dense1_,
                      dense2_);
        Vector<double> w2(n_);
        grb::eWiseMult(w2, no_mask, grb::NoAccum{}, grb::Plus{}, w, dense2_);
        return w2;
      },
      "eWiseAdd + eWiseMult (vector)");
}

TEST_P(ParallelDeterminism, EwiseSparseVectors) {
  Vector<double> f2 = make_frontier(n_, 8);
  check_thread_sweep(
      [&] {
        Vector<double> w(n_);
        grb::eWiseAdd(w, no_mask, grb::NoAccum{}, grb::Plus{}, frontier_, f2);
        return w;
      },
      "eWiseAdd (sparse-sparse merge)");
}

TEST_P(ParallelDeterminism, EwiseMatrices) {
  check_thread_sweep(
      [&] {
        Matrix<double> c(n_, n_);
        grb::eWiseAdd(c, no_mask, grb::NoAccum{}, grb::Plus{}, a_, at_);
        return c;
      },
      "eWiseAdd (matrix)");
}

TEST_P(ParallelDeterminism, ApplyAndSelect) {
  check_thread_sweep(
      [&] {
        Vector<double> w(n_);
        grb::apply2nd(w, no_mask, grb::NoAccum{}, grb::Times{}, dense1_, 3.0);
        Vector<double> w2(n_);
        grb::select(
            w2, no_mask, grb::NoAccum{},
            [](const double &x, Index, Index, const double &th) {
              return x > th;
            },
            w, 100.0);
        return w2;
      },
      "apply2nd + select (vector)");
}

TEST_P(ParallelDeterminism, ApplyAndSelectMatrix) {
  check_thread_sweep(
      [&] {
        Matrix<double> c(n_, n_);
        grb::apply2nd(c, no_mask, grb::NoAccum{}, grb::Plus{}, a_, 1.0);
        Matrix<double> c2(n_, n_);
        grb::select(
            c2, no_mask, grb::NoAccum{},
            [](const double &x, Index, Index, const double &th) {
              return x > th;
            },
            c, 128.0);
        return c2;
      },
      "apply2nd + select (matrix)");
}

TEST_P(ParallelDeterminism, ReduceAllForms) {
  check_thread_sweep(
      [&] {
        Vector<double> rows(n_);
        grb::reduce(rows, no_mask, grb::NoAccum{}, grb::PlusMonoid<double>{},
                    a_);
        double ms = 0.0;
        grb::reduce(ms, grb::NoAccum{}, grb::PlusMonoid<double>{}, a_);
        double vs = 0.0;
        grb::reduce(vs, grb::NoAccum{}, grb::MinMonoid<double>{}, rows);
        // Fold the scalars back into the vector so one comparison covers
        // all three reduction forms.
        Vector<double> out(n_);
        grb::apply2nd(out, no_mask, grb::NoAccum{}, grb::Plus{}, rows,
                      ms + vs);
        return out;
      },
      "reduce (rows + matrix scalar + vector scalar)");
}

TEST_P(ParallelDeterminism, Transpose) {
  check_thread_sweep([&] { return grb::transposed(a_); },
                     "transpose (parallel counting sort)");
}

TEST_P(ParallelDeterminism, BuildFromTuples) {
  std::vector<Index> bi, bj;
  std::vector<double> bv;
  a_.extract_tuples(bi, bj, bv);
  check_thread_sweep(
      [&] {
        Matrix<double> t(n_, n_);
        t.build(bi, bj, bv);
        t.finalize();
        return t;
      },
      "Matrix::build (parallel counting sort + row sorts)");
}

INSTANTIATE_TEST_SUITE_P(Graphs, ParallelDeterminism, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool> &info) {
                           return info.param ? "kron_powerlaw" : "er_uniform";
                         });

// Stress test: several std::threads hammer finalized shared containers with
// the full kernel mix at once. This is the TSan target: under
// -DLAGRAPH_SANITIZE=thread the main thread pins num_threads = 1 before
// spawning (libgomp is uninstrumented and its barriers would be false
// positives), so what TSan checks is the cross-thread contract — finalized matrices are read-only,
// the workspace pool locks correctly, and Stats counters are atomic. In
// normal builds the workers keep their thread override, so OpenMP teams from
// concurrent top-level callers also get exercised.
TEST(ParallelStress, ConcurrentKernelsOnSharedGraph) {
  Matrix<double> a = make_graph(true, 10);
  Matrix<double> at = grb::transposed(a);
  at.finalize();
  const Index n = a.nrows();
  Vector<double> f = make_frontier(n, 16);
  f.finalize();

  constexpr int kWorkers = 4;
#if defined(__SANITIZE_THREAD__)
  // Set before the workers spawn: Config is plain data under the
  // single-writer contract, so the override must not be written from
  // inside the pool.
  ThreadGuard tsan_serial(1);
#endif
  std::vector<Vector<double>> results(kWorkers, Vector<double>(n));
  std::vector<std::thread> pool;
  for (int w = 0; w < kWorkers; ++w) {
    pool.emplace_back([&, w] {
      for (int iter = 0; iter < 3; ++iter) {
        Vector<double> push(n);
        grb::vxm(push, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, f,
                 a);
        Vector<double> rows(n);
        grb::reduce(rows, no_mask, grb::NoAccum{}, grb::PlusMonoid<double>{},
                    w % 2 == 0 ? a : at);
        rows.to_bitmap();
        Vector<double> pull(n);
        grb::mxv(pull, no_mask, grb::NoAccum{}, grb::MinPlus<double>{}, a,
                 rows);
        Vector<double> sum(n);
        grb::eWiseAdd(sum, no_mask, grb::NoAccum{}, grb::Plus{}, push, pull);
        results[w] = std::move(sum);
      }
    });
  }
  for (auto &t : pool) t.join();

  // All workers computed the same function of the same inputs.
  for (int w = 1; w < kWorkers; ++w) {
    expect_identical(results[0], results[w], "stress worker result");
  }
}

}  // namespace

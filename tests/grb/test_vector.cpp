// Unit tests for grb::Vector: element access, build/extractTuples, format
// conversions, and mask semantics.
#include <gtest/gtest.h>

#include <vector>

#include "grb/grb.hpp"

using grb::Index;
using grb::Vector;

TEST(Vector, EmptyConstruction) {
  Vector<double> v(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.nvals(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(v.has(3));
  EXPECT_FALSE(v.get(3).has_value());
}

TEST(Vector, SetGetRemove) {
  Vector<int> v(8);
  v.set_element(3, 42);
  v.set_element(1, 7);
  v.set_element(3, 43);  // overwrite
  EXPECT_EQ(v.nvals(), 2u);
  EXPECT_EQ(v.get(3), 43);
  EXPECT_EQ(v.get(1), 7);
  v.remove_element(3);
  EXPECT_EQ(v.nvals(), 1u);
  EXPECT_FALSE(v.has(3));
  v.remove_element(3);  // idempotent
  EXPECT_EQ(v.nvals(), 1u);
}

TEST(Vector, IndexOutOfBoundsThrows) {
  Vector<int> v(4);
  EXPECT_THROW(v.set_element(4, 1), grb::Exception);
  EXPECT_THROW((void)v.get(100), grb::Exception);
  try {
    v.set_element(9, 1);
    FAIL() << "expected throw";
  } catch (const grb::Exception &e) {
    EXPECT_EQ(e.info(), grb::Info::index_out_of_bounds);
  }
}

TEST(Vector, BuildSortsAndCombinesDuplicates) {
  Vector<int> v(10);
  std::vector<Index> idx = {5, 2, 5, 9, 2};
  std::vector<int> val = {1, 10, 2, 3, 20};
  v.build(idx, val, grb::Plus{});
  EXPECT_EQ(v.nvals(), 3u);
  EXPECT_EQ(v.get(2), 30);
  EXPECT_EQ(v.get(5), 3);
  EXPECT_EQ(v.get(9), 3);
}

TEST(Vector, BuildDupSecondKeepsLast) {
  Vector<int> v(4);
  std::vector<Index> idx = {1, 1, 1};
  std::vector<int> val = {5, 6, 7};
  v.build(idx, val, grb::Second{});
  EXPECT_EQ(v.get(1), 7);
}

TEST(Vector, BuildOutOfBoundsThrows) {
  Vector<int> v(4);
  std::vector<Index> idx = {7};
  std::vector<int> val = {1};
  EXPECT_THROW(v.build(idx, val), grb::Exception);
}

TEST(Vector, ExtractTuplesRoundTrip) {
  Vector<double> v(100);
  for (Index i = 0; i < 100; i += 7) v.set_element(i, 0.5 * double(i));
  std::vector<Index> idx;
  std::vector<double> val;
  v.extract_tuples(idx, val);
  ASSERT_EQ(idx.size(), v.nvals());
  Vector<double> w(100);
  w.build(idx, val);
  EXPECT_EQ(v, w);
}

TEST(Vector, FormatConversionPreservesContent) {
  Vector<int> v(32);
  for (Index i = 0; i < 32; i += 3) v.set_element(i, int(i));
  Vector<int> orig = v;
  v.to_bitmap();
  EXPECT_EQ(v.format(), Vector<int>::Format::bitmap);
  EXPECT_EQ(v, orig);
  v.to_sparse();
  EXPECT_EQ(v.format(), Vector<int>::Format::sparse);
  EXPECT_EQ(v, orig);
}

TEST(Vector, BitmapSetGet) {
  Vector<int> v(16);
  v.to_bitmap();
  v.set_element(5, 50);
  EXPECT_EQ(v.nvals(), 1u);
  EXPECT_EQ(v.get(5), 50);
  v.remove_element(5);
  EXPECT_EQ(v.nvals(), 0u);
}

TEST(Vector, FullConstructor) {
  auto v = Vector<double>::full(6, 2.5);
  EXPECT_EQ(v.nvals(), 6u);
  for (Index i = 0; i < 6; ++i) EXPECT_EQ(v.get(i), 2.5);
}

TEST(Vector, ForEachVisitsAscending) {
  Vector<int> v(50);
  v.set_element(40, 4);
  v.set_element(3, 1);
  v.set_element(17, 2);
  std::vector<Index> seen;
  v.for_each([&](Index i, const int &) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<Index>{3, 17, 40}));
  v.to_bitmap();
  seen.clear();
  v.for_each([&](Index i, const int &) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<Index>{3, 17, 40}));
}

TEST(Vector, MaskTestValuedVsStructural) {
  Vector<int> v(5);
  v.set_element(1, 0);  // explicit zero
  v.set_element(2, 9);
  // valued: explicit zero is not in the mask
  EXPECT_FALSE(v.mask_test(1, /*structural=*/false));
  EXPECT_TRUE(v.mask_test(1, /*structural=*/true));
  EXPECT_TRUE(v.mask_test(2, false));
  EXPECT_FALSE(v.mask_test(3, false));
  EXPECT_FALSE(v.mask_test(3, true));
  v.to_bitmap();
  EXPECT_FALSE(v.mask_test(1, false));
  EXPECT_TRUE(v.mask_test(1, true));
}

TEST(Vector, ResizeDropsTail) {
  Vector<int> v(10);
  v.set_element(2, 1);
  v.set_element(8, 2);
  v.resize(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.nvals(), 1u);
  EXPECT_TRUE(v.has(2));
}

TEST(Vector, ClearKeepsSize) {
  Vector<int> v(10);
  v.set_element(2, 1);
  v.clear();
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.nvals(), 0u);
}

TEST(Vector, AutoFormatSwitchOnDensity) {
  grb::config().bitmap_switch_density = 1.0 / 16.0;
  Vector<int> v(64);
  std::vector<Index> idx;
  std::vector<int> val;
  for (Index i = 0; i < 32; ++i) {
    idx.push_back(i);
    val.push_back(1);
  }
  v.build(idx, val);  // density 0.5 > 1/16
  EXPECT_EQ(v.format(), Vector<int>::Format::bitmap);
}

TEST(Vector, EqualityIgnoresFormat) {
  Vector<int> a(20);
  Vector<int> b(20);
  a.set_element(4, 1);
  b.set_element(4, 1);
  b.to_bitmap();
  EXPECT_EQ(a, b);
  b.set_element(5, 2);
  EXPECT_FALSE(a == b);
}

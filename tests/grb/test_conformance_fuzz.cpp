// Differential conformance suite (ctest -L conformance).
//
// Every Table I operation is executed through the real grb kernels under the
// full Config sweep (threads {1,4,8} × forced storage format × planner
// direction hints) and compared bit-exactly against the naive oracle in
// grb/testing/oracle.hpp. Three layers:
//   - a systematic sweep: hand-built scenarios per op × descriptor variant,
//   - a budgeted seeded fuzz run (≥10k op instances),
//   - replay of the committed corpus under tests/corpus/.
// The harness itself is tested too: an injected kernel bug must be caught
// and shrunk to a tiny self-contained repro.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "grb/config.hpp"
#include "grb/testing/differ.hpp"

#ifndef LAGRAPH_CORPUS_DIR
#define LAGRAPH_CORPUS_DIR "tests/corpus"
#endif

namespace {

using namespace grb::testing;
using grb::Index;

// ---------------------------------------------------------------------------
// Systematic sweep: one deterministic scenario per (op, variant). The
// variant bits rotate descriptor flags, accumulator, selector enums, and
// storage formats; normalize() clamps the generously-filled containers into
// whatever shape the op needs.
Scenario craft(OpKind op, unsigned variant) {
  Scenario s;
  s.seed = 0;
  s.op = op;
  s.dm = 4;
  s.dk = 3;
  s.dn = 5;
  s.has_mask = (variant & 1u) != 0;
  s.comp = (variant & 2u) != 0;
  s.structural = (variant & 4u) != 0;
  s.replace = (variant & 8u) != 0;
  s.accum = (variant & 16u) != 0 ? AccumKind::plus : AccumKind::none;
  s.ta = (variant & 32u) != 0;
  s.sr = static_cast<SemiringKind>(variant % static_cast<unsigned>(
                                                 SemiringKind::kCount));
  s.monoid = static_cast<MonoidKind>(variant %
                                     static_cast<unsigned>(MonoidKind::kCount));
  s.binop = static_cast<BinOpKind>(variant %
                                   static_cast<unsigned>(BinOpKind::kCount));
  s.unop = static_cast<UnaryKind>(variant %
                                  static_cast<unsigned>(UnaryKind::kCount));
  s.sel = static_cast<SelectKind>(variant %
                                  static_cast<unsigned>(SelectKind::kCount));
  s.thunk = static_cast<std::int64_t>(variant % 3) - 1;
  s.scalar = 7;
  s.col = variant % 3;
  s.rows_all = (variant & 64u) != 0;
  s.cols_all = (variant & 64u) == 0;
  s.rows = {0, 2};
  s.cols = {1, 3};

  auto fill_m = [&](MatData &md, unsigned salt) {
    md.fmt = static_cast<MatFmt>((variant + salt) %
                                 static_cast<unsigned>(MatFmt::kCount));
    md.ri.clear();
    md.ci.clear();
    md.vv.clear();
    for (unsigned t = 0; t < 7; ++t) {
      md.ri.push_back((t * 3 + salt) % 5);
      md.ci.push_back((t * 2 + salt + variant) % 5);
      md.vv.push_back(static_cast<std::int64_t>(t * 7 + salt) - 9);
    }
  };
  auto fill_v = [&](VecData &vd, unsigned salt) {
    vd.fmt = static_cast<VecFmt>((variant + salt) %
                                 static_cast<unsigned>(VecFmt::kCount));
    vd.ix.clear();
    vd.vv.clear();
    for (unsigned t = 0; t < 4; ++t) {
      vd.ix.push_back((t * 2 + salt) % 5);
      vd.vv.push_back(static_cast<std::int64_t>(t * 5 + salt) - 6);
    }
  };
  fill_m(s.a, 0);
  fill_m(s.b, 1);
  fill_m(s.cinit, 2);
  fill_m(s.mmask, 3);
  fill_v(s.u, 0);
  fill_v(s.v, 1);
  fill_v(s.winit, 2);
  fill_v(s.vmask, 3);

  if (op == OpKind::mutate_m || op == OpKind::mutate_v) {
    auto &muts = (op == OpKind::mutate_m) ? s.a.muts : s.u.muts;
    muts.clear();
    for (unsigned t = 0; t < 4; ++t) {
      Mutation mu;
      mu.del = (t + variant) % 2 == 0;
      mu.i = (t * 2 + variant) % 5;
      mu.j = (t + 1) % 5;
      mu.v = static_cast<std::int64_t>(t) + 1;
      mu.probe = static_cast<int>((t + variant) % 4);
      muts.push_back(mu);
    }
  }
  normalize(s);
  return s;
}

TEST(Conformance, SweepCoversThreadsAndFormats) {
  auto sweep = sweep_configs();
  ASSERT_EQ(sweep.size(), 9u);
  std::set<int> threads, formats;
  bool push = false, pull = false;
  for (const auto &rc : sweep) {
    threads.insert(rc.threads);
    formats.insert(rc.force_format);
    push |= rc.force_push;
    pull |= rc.force_pull;
  }
  EXPECT_EQ(threads, (std::set<int>{1, 4, 8}));
  EXPECT_EQ(formats, (std::set<int>{0, 1, 2}));
  EXPECT_TRUE(push);
  EXPECT_TRUE(pull);
}

TEST(Conformance, SystematicSweepAllOps) {
  std::uint64_t instances = 0;
  for (int o = 0; o < static_cast<int>(OpKind::kCount); ++o) {
    const auto op = static_cast<OpKind>(o);
    for (unsigned variant = 0; variant < 32; ++variant) {
      Scenario s = craft(op, variant);
      auto mm = check_sweep(s, &instances);
      ASSERT_FALSE(mm.has_value())
          << "op=" << op_name(op) << " variant=" << variant << "\n"
          << mm->to_string();
    }
  }
  // 29 ops × 32 variants × 9 configs.
  EXPECT_GE(instances, 7000u);
}

// ---------------------------------------------------------------------------
// The fused kernels must be bit-exact against the oracle's unfused
// composition AND actually take the single-sweep path for at least some of
// the sweep (replace=true + bitmap stamp targets meet the fast-path gate) —
// otherwise this would only ever test the fallback.
TEST(Conformance, FusedKernelsDispatchFusedAndMatchOracle) {
  const auto before = grb::stats().snapshot().fused_dispatches;
  std::uint64_t instances = 0;
  for (OpKind op : {OpKind::fused_mxv_apply, OpKind::fused_vxm_select}) {
    // Bit 8 sets replace; bit 32 (ta) stays clear so fusion is reachable.
    for (unsigned variant : {8u, 9u, 12u, 24u}) {
      Scenario s = craft(op, variant);
      auto mm = check_sweep(s, &instances);
      ASSERT_FALSE(mm.has_value())
          << "op=" << op_name(op) << " variant=" << variant << "\n"
          << mm->to_string();
    }
  }
  EXPECT_GT(instances, 0u);
  EXPECT_GT(grb::stats().snapshot().fused_dispatches, before);
}

// ---------------------------------------------------------------------------
// Seeded fuzz: the acceptance bar is ≥10k op instances, all bit-exact.
TEST(Conformance, FuzzTenThousandInstances) {
  FuzzOptions opt;
  opt.max_scenarios = 1200;  // × 9 sweep points = 10800 instances
  opt.seed = 1;
  FuzzReport rep = fuzz(opt);
  EXPECT_TRUE(rep.ok) << rep.detail;
  EXPECT_EQ(rep.scenarios, 1200u);
  EXPECT_GE(rep.instances, 10000u);
}

// ---------------------------------------------------------------------------
// Corpus replay: every committed .repro must parse and agree under the sweep.
TEST(Conformance, CorpusReplaysClean) {
  ReplayOutcome out = replay_corpus(LAGRAPH_CORPUS_DIR);
  EXPECT_GE(out.files, 20) << "corpus missing or too small: "
                           << LAGRAPH_CORPUS_DIR;
  EXPECT_EQ(out.failures, 0) << out.detail;
  EXPECT_GT(out.instances, 0u);
}

// ---------------------------------------------------------------------------
// Round-trip: serialize → parse → serialize is the identity, and the parsed
// scenario is semantically identical (same oracle result).
TEST(Conformance, ReproRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Scenario s = generate(seed);
    std::string text = serialize(s);
    std::string err;
    auto parsed = parse(text, &err);
    ASSERT_TRUE(parsed.has_value()) << "seed " << seed << ": " << err;
    EXPECT_EQ(serialize(*parsed), text) << "seed " << seed;
    EXPECT_EQ(run_oracle(*parsed), run_oracle(s)) << "seed " << seed;
  }
}

TEST(Conformance, ParseRejectsGarbage) {
  std::string err;
  EXPECT_FALSE(parse("not a repro file", &err).has_value());
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_FALSE(parse("grb-repro v1\nop bogus_op\nend\n", &err).has_value());
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------------
// Harness self-test: inject a kernel bug and demand the fuzzer catches it
// and shrinks it to a tiny repro (the acceptance bar is ≤8×8).
TEST(Conformance, InjectedBugIsCaughtAndShrunk) {
  // "Bug": mxm silently drops its lexicographically first output entry.
  CorruptHook drop_first = [](const Scenario &s, const RunConfig &,
                              Result &r) {
    if (s.op == OpKind::mxm && !r.mat.empty()) r.mat.erase(r.mat.begin());
  };
  FuzzOptions opt;
  opt.max_scenarios = 5000;
  opt.seed = 1;
  opt.corrupt = drop_first;
  FuzzReport rep = fuzz(opt);
  ASSERT_FALSE(rep.ok) << "injected mxm bug was not detected";
  ASSERT_TRUE(rep.shrunk.has_value());

  const Scenario &sh = *rep.shrunk;
  EXPECT_EQ(sh.op, OpKind::mxm);
  EXPECT_LE(sh.dm, 8u);
  EXPECT_LE(sh.dk, 8u);
  EXPECT_LE(sh.dn, 8u);
  // The shrunk repro is self-contained: it parses back and still exhibits
  // the mismatch under the injected bug.
  std::string err;
  auto parsed = parse(rep.repro, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  bool still_fails = false;
  for (const auto &rc : sweep_configs()) {
    if (check_one(*parsed, rc, &drop_first)) {
      still_fails = true;
      break;
    }
  }
  EXPECT_TRUE(still_fails) << "shrunk repro no longer reproduces";
  // And without the bug the same repro passes — the scenario is not
  // inherently broken, the injected defect was the cause.
  EXPECT_FALSE(check_sweep(*parsed).has_value());
}

TEST(Conformance, InjectedValueBugShrinksToMinimalVector) {
  // "Bug": vector apply adds one to every output value.
  CorruptHook off_by_one = [](const Scenario &s, const RunConfig &,
                              Result &r) {
    if (s.op == OpKind::apply_v) {
      for (auto &[i, x] : r.vec) x += 1;
    }
  };
  FuzzOptions opt;
  opt.max_scenarios = 5000;
  opt.seed = 1;
  opt.corrupt = off_by_one;
  FuzzReport rep = fuzz(opt);
  ASSERT_FALSE(rep.ok);
  ASSERT_TRUE(rep.shrunk.has_value());
  EXPECT_EQ(rep.shrunk->op, OpKind::apply_v);
  EXPECT_LE(rep.shrunk->dn, 8u);
  // A minimal off-by-one witness needs no more than one input entry.
  EXPECT_LE(rep.shrunk->u.ix.size(), 1u);
}

TEST(Conformance, MinimizerReachesSmallFixedPoint) {
  // Minimize against a structural predicate: "the A operand is non-empty".
  Scenario s = generate(99);
  s.op = OpKind::transpose_m;
  normalize(s);
  if (s.a.vv.empty()) {
    s.a.ri = {0};
    s.a.ci = {0};
    s.a.vv = {1};
    normalize(s);
  }
  FailPred pred = [](const Scenario &t) { return !t.a.vv.empty(); };
  Scenario shrunk = minimize(s, pred);
  EXPECT_TRUE(pred(shrunk));
  EXPECT_EQ(shrunk.a.vv.size(), 1u);
  EXPECT_LE(shrunk.dm, 1u);
  EXPECT_LE(shrunk.dn, 1u);
  EXPECT_FALSE(shrunk.has_mask);
  EXPECT_EQ(shrunk.accum, AccumKind::none);
}

TEST(Conformance, MismatchReportIsSelfContained) {
  CorruptHook corrupt = [](const Scenario &s, const RunConfig &, Result &r) {
    if (s.op == OpKind::reduce_v2s) r.scalar += 1;
  };
  std::optional<Mismatch> mm;
  for (std::uint64_t seed = 1; seed <= 2000 && !mm; ++seed) {
    Scenario s = generate(seed);
    if (s.op != OpKind::reduce_v2s) continue;
    mm = check_one(s, sweep_configs().front(), &corrupt);
  }
  ASSERT_TRUE(mm.has_value());
  std::string text = mm->to_string();
  EXPECT_NE(text.find("reduce_v2s"), std::string::npos);
  EXPECT_NE(text.find("grb-repro v1"), std::string::npos)
      << "mismatch report must embed the replayable repro";
}

}  // namespace

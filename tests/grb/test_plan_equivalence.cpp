// Planner equivalence suite (ctest label "plan").
//
// The grb::plan planner may pick any direction, operand format, or thread
// team it likes — but the numbers must never change. These tests pin that
// property: every kernel entry point, swept over input matrix formats
// (csr / hypersparse / bitmap) × Config::force_format (none / bitmap) ×
// thread counts (1 / 4) × mask shapes (none / structural / complemented),
// must be bit-identical to the forced-serial-sparse reference configuration
// (num_threads = 1, force_format = sparse) on an Erdős–Rényi and a
// power-law Kronecker graph. A push-only BFS level loop is compared against
// the pull-forced one the same way, plus direct unit tests of the decision
// precedence (caller hint > Config override > cost model) and the
// PlanCache memo.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "gen/generators.hpp"
#include "grb/grb.hpp"

using grb::Index;
using grb::Matrix;
using grb::Vector;
using grb::no_mask;

namespace {

// Save/restore every Config knob the planner reads, so tests can't leak
// overrides into each other.
struct ConfigGuard {
  ConfigGuard() { saved_ = snapshot(); }
  ~ConfigGuard() { restore(saved_); }

  struct Knobs {
    int num_threads;
    bool force_push;
    bool force_pull;
    grb::ForceFormat force_format;
  };
  static Knobs snapshot() {
    const auto &c = grb::config();
    return {c.num_threads, c.force_push, c.force_pull, c.force_format};
  }
  static void restore(const Knobs &k) {
    auto &c = grb::config();
    c.num_threads = k.num_threads;
    c.force_push = k.force_push;
    c.force_pull = k.force_pull;
    c.force_format = k.force_format;
  }

 private:
  Knobs saved_;
};

Matrix<double> make_graph(bool powerlaw, int scale) {
  auto el = powerlaw ? gen::kronecker(scale, 8, 0xfaceULL)
                     : gen::uniform_random(scale, 8, 0xcafeULL);
  gen::add_uniform_weights(el, 1, 255, 0x99ULL);
  Matrix<double> a = gen::to_matrix<double>(el);
  a.finish();
  return a;
}

Vector<double> make_frontier(Index n, int denom) {
  std::vector<Index> idx;
  std::vector<double> val;
  std::uint64_t state = 0x1357ULL;
  for (Index i = 0; i < n; ++i) {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    if (state % static_cast<std::uint64_t>(denom) == 0) {
      idx.push_back(i);
      val.push_back(static_cast<double>(1 + state % 50));
    }
  }
  Vector<double> v(n);
  v.adopt_sparse(std::move(idx), std::move(val));
  return v;
}

Vector<grb::Bool> make_mask(Index n, int denom) {
  std::vector<Index> idx;
  std::vector<grb::Bool> val;
  for (Index i = 0; i < n; ++i) {
    if (i % static_cast<Index>(denom) == 0) {
      idx.push_back(i);
      val.push_back(grb::Bool(1));
    }
  }
  Vector<grb::Bool> m(n);
  m.adopt_sparse(std::move(idx), std::move(val));
  return m;
}

template <typename T>
void expect_identical(const Vector<T> &ref, const Vector<T> &got,
                      const char *what) {
  std::vector<Index> ri, gi;
  std::vector<T> rv, gv;
  ref.extract_tuples(ri, rv);
  got.extract_tuples(gi, gv);
  ASSERT_EQ(ri, gi) << what << ": index sets differ";
  ASSERT_EQ(rv.size(), gv.size()) << what;
  for (std::size_t k = 0; k < rv.size(); ++k) {
    ASSERT_EQ(rv[k], gv[k]) << what << " at slot " << k;  // bitwise, no EPS
  }
}

template <typename T>
void expect_identical(const Matrix<T> &ref, const Matrix<T> &got,
                      const char *what) {
  std::vector<Index> rr, rc, gr, gc;
  std::vector<T> rv, gv;
  ref.extract_tuples(rr, rc, rv);
  got.extract_tuples(gr, gc, gv);
  ASSERT_EQ(rr, gr) << what << ": row sets differ";
  ASSERT_EQ(rc, gc) << what << ": column sets differ";
  ASSERT_EQ(rv.size(), gv.size()) << what;
  for (std::size_t k = 0; k < rv.size(); ++k) {
    ASSERT_EQ(rv[k], gv[k]) << what << " at slot " << k;
  }
}

enum class MatFmt { csr, hypersparse, bitmap };

void set_format(const Matrix<double> &a, MatFmt f) {
  switch (f) {
    case MatFmt::csr: a.to_csr(); break;
    case MatFmt::hypersparse: a.to_hypersparse(); break;
    case MatFmt::bitmap: a.to_bitmap(); break;
  }
}

const char *fmt_name(MatFmt f) {
  switch (f) {
    case MatFmt::csr: return "csr";
    case MatFmt::hypersparse: return "hypersparse";
    case MatFmt::bitmap: return "bitmap";
  }
  return "?";
}

// Run `op` once in the reference configuration (serial, force_format =
// sparse, matrix in csr), then sweep every planner-visible knob and demand
// bit-identical results. `op` receives the matrix to use and returns the
// container to compare.
template <typename OpFn>
void sweep_against_reference(const Matrix<double> &a, OpFn &&op,
                             const char *what) {
  ConfigGuard guard;
  auto &cfg = grb::config();
  cfg.num_threads = 1;
  cfg.force_push = false;
  cfg.force_pull = false;
  cfg.force_format = grb::ForceFormat::sparse;
  set_format(a, MatFmt::csr);
  auto ref = op(a);

  for (MatFmt f : {MatFmt::csr, MatFmt::hypersparse, MatFmt::bitmap}) {
    for (grb::ForceFormat ff :
         {grb::ForceFormat::none, grb::ForceFormat::bitmap}) {
      for (int threads : {1, 4}) {
        cfg.num_threads = threads;
        cfg.force_format = ff;
        set_format(a, f);
        auto got = op(a);
        std::string label = std::string(what) + " [" + fmt_name(f) +
                            (ff == grb::ForceFormat::bitmap ? ", force bitmap"
                                                            : ", no force") +
                            ", t=" + std::to_string(threads) + "]";
        expect_identical(ref, got, label.c_str());
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
  set_format(a, MatFmt::csr);
}

class PlanEquivalence : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    a_ = make_graph(GetParam(), 8);
    n_ = a_.nrows();
    frontier_ = make_frontier(n_, 8);
    mask_ = make_mask(n_, 3);
  }
  Matrix<double> a_{0, 0};
  Index n_ = 0;
  Vector<double> frontier_;
  Vector<grb::Bool> mask_;
};

TEST_P(PlanEquivalence, VxmPush) {
  grb::PlusTimes<double> sr;
  sweep_against_reference(
      a_,
      [&](const Matrix<double> &a) {
        Vector<double> w(n_);
        grb::vxm(w, no_mask, grb::NoAccum{}, sr, frontier_, a);
        return w;
      },
      "vxm push unmasked");
  sweep_against_reference(
      a_,
      [&](const Matrix<double> &a) {
        Vector<double> w(n_);
        grb::vxm(w, mask_, grb::NoAccum{}, sr, frontier_, a, grb::desc::S);
        return w;
      },
      "vxm push structural mask");
  sweep_against_reference(
      a_,
      [&](const Matrix<double> &a) {
        Vector<double> w(n_);
        grb::vxm(w, mask_, grb::NoAccum{}, sr, frontier_, a, grb::desc::SC);
        return w;
      },
      "vxm push complemented mask");
}

TEST_P(PlanEquivalence, VxmPullTransposed) {
  grb::PlusTimes<double> sr;
  sweep_against_reference(
      a_,
      [&](const Matrix<double> &a) {
        Vector<double> w(n_);
        grb::vxm(w, no_mask, grb::NoAccum{}, sr, frontier_, a, grb::desc::T0);
        return w;
      },
      "vxm pull unmasked");
  sweep_against_reference(
      a_,
      [&](const Matrix<double> &a) {
        Vector<double> w(n_);
        grb::vxm(w, mask_, grb::NoAccum{}, sr, frontier_, a,
                 grb::desc::T0.S());
        return w;
      },
      "vxm pull structural mask");
}

TEST_P(PlanEquivalence, MxvBothDirections) {
  grb::PlusTimes<double> sr;
  sweep_against_reference(
      a_,
      [&](const Matrix<double> &a) {
        Vector<double> w(n_);
        grb::mxv(w, no_mask, grb::NoAccum{}, sr, a, frontier_);
        return w;
      },
      "mxv pull unmasked");
  sweep_against_reference(
      a_,
      [&](const Matrix<double> &a) {
        Vector<double> w(n_);
        grb::mxv(w, mask_, grb::NoAccum{}, sr, a, frontier_, grb::desc::SC);
        return w;
      },
      "mxv pull complemented mask");
  sweep_against_reference(
      a_,
      [&](const Matrix<double> &a) {
        Vector<double> w(n_);
        grb::mxv(w, no_mask, grb::NoAccum{}, sr, a, frontier_, grb::desc::T0);
        return w;
      },
      "mxv push (transposed)");
}

TEST_P(PlanEquivalence, MxvTerminalMonoid) {
  // The `any` monoid exercises the terminal short-circuit paths in both
  // kernels and is the BFS workhorse.
  grb::AnySecond<double> sr;
  sweep_against_reference(
      a_,
      [&](const Matrix<double> &a) {
        Vector<double> w(n_);
        grb::mxv(w, mask_, grb::NoAccum{}, sr, a, frontier_, grb::desc::S);
        return w;
      },
      "mxv any.second structural mask");
}

TEST_P(PlanEquivalence, MxmMaskedDot) {
  grb::PlusTimes<double> sr;
  sweep_against_reference(
      a_,
      [&](const Matrix<double> &a) {
        // The triangle-counting shape: C⟨s(A)⟩ = A ⊕.⊗ Aᵀ via the dot
        // kernel (aliased operands, so the planner must keep A in csr).
        Matrix<double> c(n_, n_);
        grb::mxm(c, a, grb::NoAccum{}, sr, a, a, grb::desc::T1.S());
        return c;
      },
      "mxm masked dot (aliased)");
}

TEST_P(PlanEquivalence, MxmMaskedDotDistinct) {
  grb::PlusTimes<double> sr;
  Matrix<double> b = grb::transposed(a_);
  b.finish();
  sweep_against_reference(
      a_,
      [&](const Matrix<double> &a) {
        Matrix<double> c(n_, n_);
        grb::mxm(c, a, grb::NoAccum{}, sr, a, b, grb::desc::T1.S());
        return c;
      },
      "mxm masked dot (distinct B)");
}

TEST_P(PlanEquivalence, EwiseVector) {
  Vector<double> u = make_frontier(n_, 4);
  Vector<double> v = make_frontier(n_, 2);
  // The planner owns the bitmap-promotion choice; sweep the *input* formats
  // explicitly since the matrix format plays no role here.
  for (bool u_bitmap : {false, true}) {
    for (bool v_bitmap : {false, true}) {
      sweep_against_reference(
          a_,
          [&](const Matrix<double> &) {
            if (u_bitmap) u.to_bitmap(); else u.to_sparse();
            if (v_bitmap) v.to_bitmap(); else v.to_sparse();
            Vector<double> w(n_);
            grb::eWiseAdd(w, no_mask, grb::NoAccum{}, grb::Plus{}, u, v);
            return w;
          },
          "eWiseAdd");
      sweep_against_reference(
          a_,
          [&](const Matrix<double> &) {
            if (u_bitmap) u.to_bitmap(); else u.to_sparse();
            if (v_bitmap) v.to_bitmap(); else v.to_sparse();
            Vector<double> w(n_);
            grb::eWiseMult(w, no_mask, grb::NoAccum{}, grb::Times{}, u, v);
            return w;
          },
          "eWiseMult");
    }
  }
}

TEST_P(PlanEquivalence, ReduceApply) {
  sweep_against_reference(
      a_,
      [&](const Matrix<double> &a) {
        Vector<double> w(n_);
        grb::reduce(w, no_mask, grb::NoAccum{}, grb::PlusMonoid<double>{}, a);
        return w;
      },
      "reduce rows");
  sweep_against_reference(
      a_,
      [&](const Matrix<double> &a) {
        Matrix<double> c(n_, n_);
        grb::apply(c, grb::no_mask, grb::NoAccum{},
                   [](const double &x) { return x * 2.0; }, a);
        return c;
      },
      "apply matrix");
}

// BFS levels must not depend on the per-level direction choice: a push-only
// run (force_push) and a pull-leaning run (force_pull) of the same masked
// traversal loop yield identical level sets. (Parents may legitimately
// differ under the `any` monoid; levels are direction-invariant.)
Vector<std::int64_t> bfs_levels(const Matrix<double> &a,
                                const Matrix<double> &at, Index source) {
  const Index n = a.nrows();
  grb::AnySecondI<std::int64_t> sr;
  Vector<std::int64_t> q(n);
  q.set_element(source, static_cast<std::int64_t>(source));
  Vector<std::int64_t> p(n);
  p.set_element(source, static_cast<std::int64_t>(source));
  grb::plan::prepare(p, grb::plan::iterative_output_format(n));
  Vector<std::int64_t> lv(n);
  lv.set_element(source, 0);
  grb::plan::prepare(lv, grb::plan::iterative_output_format(n));

  Index nvisited = 1;
  std::int64_t depth = 0;
  while (q.nvals() != 0) {
    grb::plan::OpDesc od;
    od.op = grb::plan::OpKind::traversal;
    od.out_size = n;
    od.a_rows = n;
    od.a_cols = n;
    od.a_nvals = a.nvals();
    od.u_nvals = q.nvals();
    od.pull_candidates = n - nvisited;
    od.masked = true;
    od.mask_complement = true;
    od.mask_structural = true;
    od.mask_nvals = nvisited;
    od.has_terminal = true;
    od.has_transpose = true;
    const auto pl = grb::plan::make_plan(od);
    if (pl.direction == grb::plan::Direction::pull) {
      grb::mxv(q, p, grb::NoAccum{}, sr, at, q, grb::desc::RSC);
    } else {
      grb::vxm(q, p, grb::NoAccum{}, sr, q, a, grb::desc::RSC);
    }
    if (q.nvals() == 0) break;
    grb::assign(p, q, grb::NoAccum{}, q, grb::Indices::all(), grb::desc::S);
    ++depth;
    grb::assign(lv, q, grb::NoAccum{}, depth, grb::Indices::all(),
                grb::desc::S);
    nvisited += q.nvals();
    if (nvisited == n) break;
  }
  return lv;
}

TEST_P(PlanEquivalence, BfsDirectionInvariance) {
  Matrix<double> at = grb::transposed(a_);
  at.finish();
  ConfigGuard guard;
  auto &cfg = grb::config();
  cfg.num_threads = 1;
  cfg.force_push = true;
  auto ref = bfs_levels(a_, at, 0);
  cfg.force_push = false;

  for (bool force_pull : {false, true}) {
    for (int threads : {1, 4}) {
      cfg.force_pull = force_pull;
      cfg.num_threads = threads;
      auto got = bfs_levels(a_, at, 0);
      expect_identical(ref, got,
                       force_pull ? "bfs levels (force_pull)"
                                  : "bfs levels (cost model)");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, PlanEquivalence, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool> &info) {
                           return info.param ? "kronecker" : "erdos_renyi";
                         });

// ---- decision-precedence unit tests ------------------------------------

grb::plan::OpDesc traversal_desc(Index n, Index nq, Index candidates,
                                 bool has_transpose) {
  grb::plan::OpDesc od;
  od.op = grb::plan::OpKind::traversal;
  od.out_size = n;
  od.a_rows = n;
  od.a_cols = n;
  od.a_nvals = n * 16;  // mean degree 16
  od.u_nvals = nq;
  od.pull_candidates = candidates;
  od.masked = true;
  od.mask_complement = true;
  od.mask_structural = true;
  od.has_terminal = true;
  od.has_transpose = has_transpose;
  return od;
}

TEST(PlanDecision, CostModelPicksPullOnDenseFrontier) {
  ConfigGuard guard;
  ConfigGuard::restore({0, false, false, grb::ForceFormat::none});
  // Dense frontier, few unvisited candidates: pull is clearly cheaper.
  auto od = traversal_desc(4096, 2048, 256, true);
  auto pl = grb::plan::make_plan(od);
  EXPECT_EQ(pl.direction, grb::plan::Direction::pull);
  EXPECT_EQ(pl.chosen, grb::plan::Chosen::cost_model);
  EXPECT_LT(pl.cost_pull, pl.cost_push);
  // Tiny frontier: push.
  od = traversal_desc(4096, 2, 4094, true);
  pl = grb::plan::make_plan(od);
  EXPECT_EQ(pl.direction, grb::plan::Direction::push);
}

TEST(PlanDecision, PullNeedsTransposePath) {
  ConfigGuard guard;
  ConfigGuard::restore({0, false, false, grb::ForceFormat::none});
  auto od = traversal_desc(4096, 2048, 256, /*has_transpose=*/false);
  auto pl = grb::plan::make_plan(od);
  EXPECT_EQ(pl.direction, grb::plan::Direction::push);
  // Even a config override cannot conjure a pull path.
  grb::config().force_pull = true;
  pl = grb::plan::make_plan(od);
  EXPECT_EQ(pl.direction, grb::plan::Direction::push);
}

TEST(PlanDecision, PrecedenceHintOverConfigOverModel) {
  ConfigGuard guard;
  ConfigGuard::restore({0, false, false, grb::ForceFormat::none});
  auto od = traversal_desc(4096, 2048, 256, true);  // model says pull

  grb::config().force_push = true;  // config says push
  auto pl = grb::plan::make_plan(od);
  EXPECT_EQ(pl.direction, grb::plan::Direction::push);
  EXPECT_EQ(pl.chosen, grb::plan::Chosen::config_override);

  od.hint = grb::plan::Direction::pull;  // hint says pull: hint wins
  pl = grb::plan::make_plan(od);
  EXPECT_EQ(pl.direction, grb::plan::Direction::pull);
  EXPECT_EQ(pl.chosen, grb::plan::Chosen::caller_hint);
}

TEST(PlanDecision, OverriddenCounterOnlyOnOutcomeChange) {
  ConfigGuard guard;
  ConfigGuard::restore({0, false, false, grb::ForceFormat::none});
  auto od = traversal_desc(4096, 2, 4094, true);  // model says push
  const auto before = grb::stats().plans_overridden.load();
  grb::config().force_push = true;  // agrees with the model: no override
  (void)grb::plan::make_plan(od);
  EXPECT_EQ(grb::stats().plans_overridden.load(), before);
  grb::config().force_push = false;
  grb::config().force_pull = true;  // disagrees: counts
  (void)grb::plan::make_plan(od);
  EXPECT_EQ(grb::stats().plans_overridden.load(), before + 1);
}

TEST(PlanCacheTest, MemoizesWithinScope) {
  ConfigGuard guard;
  ConfigGuard::restore({0, false, false, grb::ForceFormat::none});
  grb::plan::PlanCache cache;
  auto od = traversal_desc(4096, 64, 4032, true);

  const auto hits_before = grb::stats().plans_cached.load();
  {
    grb::plan::CacheScope scope(&cache);
    auto first = grb::plan::make_plan(od);
    EXPECT_EQ(cache.size(), 1u);
    auto second = grb::plan::make_plan(od);
    EXPECT_EQ(second.direction, first.direction);
    EXPECT_EQ(second.chosen, grb::plan::Chosen::cached);
    EXPECT_EQ(grb::stats().plans_cached.load(), hits_before + 1);
    // A different shape bucket misses.
    auto od2 = traversal_desc(4096, 2048, 256, true);
    (void)grb::plan::make_plan(od2);
    EXPECT_EQ(cache.size(), 2u);
  }
  // Outside the scope nothing is cached.
  EXPECT_EQ(grb::plan::active_cache(), nullptr);
  const auto hits_after = grb::stats().plans_cached.load();
  (void)grb::plan::make_plan(od);
  EXPECT_EQ(grb::stats().plans_cached.load(), hits_after);
}

TEST(PlanCacheTest, ConfigKnobsPartitionTheKey) {
  ConfigGuard guard;
  ConfigGuard::restore({0, false, false, grb::ForceFormat::none});
  auto od = traversal_desc(4096, 2048, 256, true);
  const auto base_key = grb::plan::cache_key(od);
  grb::config().force_push = true;
  EXPECT_NE(grb::plan::cache_key(od), base_key)
      << "a cached plan must not outlive the override it was made under";
  grb::config().force_push = false;
  grb::config().force_format = grb::ForceFormat::sparse;
  EXPECT_NE(grb::plan::cache_key(od), base_key);
}

// ---- calibration: fitted coefficients are result-invisible --------------
//
// Calibration only translates cost-model units into nanoseconds for
// explain/trace output; decisions compare units against units. Installing
// wildly wrong coefficients must therefore change neither results nor the
// planner's direction/dispatch choices.

struct CalibrationReset {
  CalibrationReset() { grb::plan::reset_calibration(); }
  ~CalibrationReset() { grb::plan::reset_calibration(); }
};

TEST(PlanCalibration, CoefficientsNeverChangeResultsOrDirection) {
  ConfigGuard guard;
  CalibrationReset cal;
  ConfigGuard::restore({0, false, false, grb::ForceFormat::none});

  Matrix<double> a = make_graph(true, 8);
  Matrix<double> at = grb::transposed(a);
  at.finish();
  auto ref_lv = bfs_levels(a, at, 0);
  auto od = traversal_desc(4096, 2048, 256, true);
  const auto ref_pl = grb::plan::make_plan(od);

  const std::pair<double, double> extremes[] = {{1e6, 1e-3}, {1e-3, 1e6}};
  for (const auto &[push_ns, pull_ns] : extremes) {
    grb::plan::Calibration c;
    c.push_ns_per_unit = push_ns;
    c.pull_ns_per_unit = pull_ns;
    c.samples = 1000;
    c.loaded = true;
    grb::plan::set_calibration(c);
    auto got_lv = bfs_levels(a, at, 0);
    expect_identical(ref_lv, got_lv, "bfs levels under extreme calibration");
    const auto pl = grb::plan::make_plan(od);
    EXPECT_EQ(pl.direction, ref_pl.direction);
    EXPECT_EQ(pl.chosen, ref_pl.chosen);
    EXPECT_EQ(pl.use_fused, ref_pl.use_fused);
  }
}

TEST(PlanCalibration, RoundTripPersistence) {
  CalibrationReset cal;
  grb::plan::Calibration c;
  c.push_ns_per_unit = 3.25;
  c.pull_ns_per_unit = 7.5;
  c.samples = 420;
  c.fitted_at_epoch_s = 1700000000;
  c.loaded = true;
  grb::plan::set_calibration(c);

  const std::string path =
      ::testing::TempDir() + "lagraph_cal_roundtrip.json";
  ASSERT_TRUE(grb::plan::save_calibration(path));
  grb::plan::reset_calibration();
  ASSERT_FALSE(grb::plan::calibration_snapshot().loaded);

  ASSERT_TRUE(grb::plan::load_calibration(path));
  const auto got = grb::plan::calibration_snapshot();
  EXPECT_TRUE(got.loaded);
  EXPECT_DOUBLE_EQ(got.push_ns_per_unit, 3.25);
  EXPECT_DOUBLE_EQ(got.pull_ns_per_unit, 7.5);
  EXPECT_EQ(got.samples, 420u);
  EXPECT_EQ(got.fitted_at_epoch_s, 1700000000u);
  EXPECT_EQ(got.source, path);
  std::remove(path.c_str());
}

TEST(PlanCalibration, LoadRejectsMissingFile) {
  CalibrationReset cal;
  EXPECT_FALSE(
      grb::plan::load_calibration("/nonexistent/dir/lagraph_cal.json"));
  EXPECT_FALSE(grb::plan::calibration_snapshot().loaded);
}

TEST(PlanCalibration, ObserveSpanSeedsThenFoldsEwma) {
  CalibrationReset cal;
  const auto before = grb::stats().snapshot().calibration_updates;
  grb::plan::observe_span_ns(grb::plan::Direction::push, 100.0, 200);
  auto got = grb::plan::calibration_snapshot();
  EXPECT_DOUBLE_EQ(got.push_ns_per_unit, 2.0);  // first sample seeds outright
  EXPECT_DOUBLE_EQ(got.pull_ns_per_unit, 0.0);  // other direction untouched
  grb::plan::observe_span_ns(grb::plan::Direction::push, 100.0, 400);
  got = grb::plan::calibration_snapshot();
  EXPECT_DOUBLE_EQ(got.push_ns_per_unit, 0.95 * 2.0 + 0.05 * 4.0);
  EXPECT_EQ(got.samples, 2u);
  EXPECT_EQ(grb::stats().snapshot().calibration_updates, before + 2);
}

TEST(PlanFormat, HypersparseRowptrRequiresExplicitPrepare) {
  // The satellite fix: raw access must not silently expand hypersparse
  // storage; the conversion goes through plan::prepare and is counted.
  Matrix<double> a(1u << 20, 1u << 20);
  a.set_element(5, 7, 1.0);
  a.set_element(1000000, 3, 2.0);
  a.finish();
  a.to_hypersparse();
  EXPECT_THROW((void)a.rowptr(), grb::Exception);
  const auto conv_before = grb::stats().format_conversions.load();
  grb::plan::prepare(a, grb::plan::MatFormat::csr);
  EXPECT_EQ(grb::stats().format_conversions.load(), conv_before + 1);
  EXPECT_NO_THROW((void)a.rowptr());
  // Preparing an already-csr matrix is free and uncounted.
  grb::plan::prepare(a, grb::plan::MatFormat::csr);
  EXPECT_EQ(grb::stats().format_conversions.load(), conv_before + 1);
}

}  // namespace

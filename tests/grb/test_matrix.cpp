// Unit tests for grb::Matrix: build, pending tuples, lazy sort, format
// conversions, and iteration.
#include <gtest/gtest.h>

#include <vector>

#include "grb/grb.hpp"

using grb::Index;
using grb::Matrix;

namespace {

Matrix<int> small_matrix() {
  // 3x4:  [ .  1  .  2 ]
  //       [ 3  .  .  . ]
  //       [ .  .  4  . ]
  Matrix<int> a(3, 4);
  std::vector<Index> ri = {0, 0, 1, 2};
  std::vector<Index> ci = {1, 3, 0, 2};
  std::vector<int> vx = {1, 2, 3, 4};
  a.build(ri, ci, vx);
  return a;
}

}  // namespace

TEST(Matrix, EmptyConstruction) {
  Matrix<double> a(5, 7);
  EXPECT_EQ(a.nrows(), 5u);
  EXPECT_EQ(a.ncols(), 7u);
  EXPECT_EQ(a.nvals(), 0u);
}

TEST(Matrix, BuildAndGet) {
  auto a = small_matrix();
  EXPECT_EQ(a.nvals(), 4u);
  EXPECT_EQ(a.get(0, 1), 1);
  EXPECT_EQ(a.get(0, 3), 2);
  EXPECT_EQ(a.get(1, 0), 3);
  EXPECT_EQ(a.get(2, 2), 4);
  EXPECT_FALSE(a.get(0, 0).has_value());
}

TEST(Matrix, BuildCombinesDuplicatesWithPlus) {
  Matrix<int> a(2, 2);
  std::vector<Index> ri = {0, 0, 0};
  std::vector<Index> ci = {1, 1, 1};
  std::vector<int> vx = {1, 2, 3};
  a.build(ri, ci, vx, grb::Plus{});
  EXPECT_EQ(a.nvals(), 1u);
  EXPECT_EQ(a.get(0, 1), 6);
}

TEST(Matrix, BuildUnsortedInput) {
  Matrix<int> a(3, 3);
  std::vector<Index> ri = {2, 0, 1, 0};
  std::vector<Index> ci = {2, 2, 1, 0};
  std::vector<int> vx = {9, 8, 7, 6};
  a.build(ri, ci, vx);
  EXPECT_EQ(a.get(0, 0), 6);
  EXPECT_EQ(a.get(0, 2), 8);
  EXPECT_EQ(a.get(1, 1), 7);
  EXPECT_EQ(a.get(2, 2), 9);
}

TEST(Matrix, BuildOutOfBoundsThrows) {
  Matrix<int> a(2, 2);
  std::vector<Index> ri = {2};
  std::vector<Index> ci = {0};
  std::vector<int> vx = {1};
  EXPECT_THROW(a.build(ri, ci, vx), grb::Exception);
}

TEST(Matrix, SetElementGoesPendingThenMerges) {
  auto a = small_matrix();
  a.set_element(2, 3, 99);
  EXPECT_TRUE(a.has_pending());
  // nvals() forces the merge
  EXPECT_EQ(a.nvals(), 5u);
  EXPECT_FALSE(a.has_pending());
  EXPECT_EQ(a.get(2, 3), 99);
}

TEST(Matrix, PendingLaterWriteWins) {
  Matrix<int> a(2, 2);
  a.set_element(0, 0, 1);
  a.set_element(0, 0, 2);
  a.set_element(0, 0, 3);
  EXPECT_EQ(a.get(0, 0), 3);
  EXPECT_EQ(a.nvals(), 1u);
}

TEST(Matrix, PendingOverwritesExisting) {
  auto a = small_matrix();
  a.set_element(0, 1, -1);
  EXPECT_EQ(a.get(0, 1), -1);
  EXPECT_EQ(a.nvals(), 4u);
}

TEST(Matrix, ExtractTuplesRowMajorSorted) {
  auto a = small_matrix();
  std::vector<Index> ri;
  std::vector<Index> ci;
  std::vector<int> vx;
  a.extract_tuples(ri, ci, vx);
  EXPECT_EQ(ri, (std::vector<Index>{0, 0, 1, 2}));
  EXPECT_EQ(ci, (std::vector<Index>{1, 3, 0, 2}));
  EXPECT_EQ(vx, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Matrix, JumbledAdoptionAndLazySort) {
  grb::config().lazy_sort = true;
  Matrix<int> a(2, 4);
  std::vector<Index> rp = {0, 3, 4};
  std::vector<Index> ci = {3, 0, 2, 1};  // row 0 unsorted
  std::vector<int> vx = {30, 0, 20, 11};
  a.adopt_csr(std::move(rp), std::move(ci), std::move(vx), /*jumbled=*/true);
  EXPECT_TRUE(a.jumbled());
  // get() triggers the deferred sort
  EXPECT_EQ(a.get(0, 2), 20);
  EXPECT_FALSE(a.jumbled());
  std::vector<Index> cols;
  a.for_each_in_row(0, [&](Index j, const int &) { cols.push_back(j); });
  EXPECT_EQ(cols, (std::vector<Index>{0, 2, 3}));
}

TEST(Matrix, EagerSortWhenLazySortDisabled) {
  grb::config().lazy_sort = false;
  auto before = grb::stats().eager_sorts.load();
  Matrix<int> a(1, 4);
  std::vector<Index> rp = {0, 2};
  std::vector<Index> ci = {3, 1};
  std::vector<int> vx = {30, 10};
  a.adopt_csr(std::move(rp), std::move(ci), std::move(vx), /*jumbled=*/true);
  EXPECT_FALSE(a.jumbled());
  EXPECT_EQ(grb::stats().eager_sorts.load(), before + 1);
  grb::config().lazy_sort = true;
}

TEST(Matrix, BitmapConversionRoundTrip) {
  auto a = small_matrix();
  Matrix<int> orig = a;
  a.to_bitmap();
  EXPECT_EQ(a.format(), Matrix<int>::Format::bitmap);
  EXPECT_EQ(a.nvals(), 4u);
  EXPECT_EQ(a, orig);
  a.to_csr();
  EXPECT_EQ(a.format(), Matrix<int>::Format::csr);
  EXPECT_EQ(a, orig);
}

TEST(Matrix, BitmapSetElementDirect) {
  auto a = small_matrix();
  a.to_bitmap();
  a.set_element(1, 1, 5);
  EXPECT_EQ(a.nvals(), 5u);
  EXPECT_EQ(a.get(1, 1), 5);
}

TEST(Matrix, FullMatrix) {
  auto a = Matrix<double>::full_matrix(2, 3, 1.5);
  EXPECT_EQ(a.nvals(), 6u);
  EXPECT_EQ(a.get(1, 2), 1.5);
  Index count = 0;
  a.for_each([&](Index, Index, const double &x) {
    EXPECT_EQ(x, 1.5);
    ++count;
  });
  EXPECT_EQ(count, 6u);
}

TEST(Matrix, RowNvals) {
  auto a = small_matrix();
  EXPECT_EQ(a.row_nvals(0), 2u);
  EXPECT_EQ(a.row_nvals(1), 1u);
  EXPECT_EQ(a.row_nvals(2), 1u);
}

TEST(Matrix, MaskTestValuedVsStructural) {
  Matrix<int> a(2, 2);
  std::vector<Index> ri = {0, 1};
  std::vector<Index> ci = {0, 1};
  std::vector<int> vx = {0, 5};  // explicit zero at (0,0)
  a.build(ri, ci, vx);
  EXPECT_FALSE(a.mask_test(0, 0, false));
  EXPECT_TRUE(a.mask_test(0, 0, true));
  EXPECT_TRUE(a.mask_test(1, 1, false));
  EXPECT_FALSE(a.mask_test(1, 0, true));
}

TEST(Matrix, EqualityIgnoresFormat) {
  auto a = small_matrix();
  auto b = small_matrix();
  b.to_bitmap();
  EXPECT_EQ(a, b);
  b.set_element(0, 0, 1);
  EXPECT_FALSE(a == b);
}

TEST(Matrix, GetOutOfBoundsThrows) {
  Matrix<int> a(2, 2);
  EXPECT_THROW((void)a.get(2, 0), grb::Exception);
  EXPECT_THROW(a.set_element(0, 2, 1), grb::Exception);
}

TEST(Matrix, RemoveElementCreatesZombie) {
  auto a = small_matrix();
  a.remove_element(0, 1);
  EXPECT_TRUE(a.has_pending());  // the zombie waits on the pending list
  EXPECT_EQ(a.nvals(), 3u);      // buried on the implicit finish()
  EXPECT_FALSE(a.has(0, 1));
  EXPECT_EQ(a.get(0, 3), 2);     // neighbours untouched
}

TEST(Matrix, RemoveMissingElementIsNoOp) {
  auto a = small_matrix();
  a.remove_element(0, 0);  // no entry there
  EXPECT_EQ(a.nvals(), 4u);
}

TEST(Matrix, InterleavedSetAndRemoveLastOpWins) {
  Matrix<int> a(2, 2);
  a.set_element(0, 0, 1);
  a.remove_element(0, 0);
  a.set_element(0, 0, 2);
  EXPECT_EQ(a.get(0, 0), 2);
  a.set_element(0, 1, 3);
  a.remove_element(0, 1);
  EXPECT_FALSE(a.has(0, 1));
  EXPECT_EQ(a.nvals(), 1u);
}

TEST(Matrix, RemoveElementBitmapAndFull) {
  auto a = small_matrix();
  a.to_bitmap();
  a.remove_element(2, 2);
  EXPECT_EQ(a.nvals(), 3u);
  auto f = Matrix<int>::full_matrix(2, 2, 7);
  f.remove_element(1, 1);
  EXPECT_EQ(f.nvals(), 3u);
  EXPECT_FALSE(f.has(1, 1));
  EXPECT_EQ(f.get(0, 0), 7);
}

TEST(Matrix, ZombiesSurviveRoundTripThroughOps) {
  auto a = small_matrix();
  a.remove_element(1, 0);
  auto at = grb::transposed(a);  // forces the pending merge
  EXPECT_EQ(at.nvals(), 3u);
  EXPECT_FALSE(at.has(0, 1));
}

// -- hypersparse format -------------------------------------------------------

TEST(Matrix, HypersparseRoundTrip) {
  // 1000 rows, entries in only 3 of them
  Matrix<int> a(1000, 1000);
  a.set_element(5, 7, 1);
  a.set_element(500, 2, 2);
  a.set_element(999, 999, 3);
  Matrix<int> orig = a;
  a.to_hypersparse();
  EXPECT_EQ(a.format(), Matrix<int>::Format::hypersparse);
  EXPECT_EQ(a.nvals(), 3u);
  EXPECT_EQ(a.nrows_nonempty(), 3u);
  EXPECT_EQ(a.get(500, 2), 2);
  EXPECT_FALSE(a.has(500, 3));
  EXPECT_EQ(a.row_nvals(500), 1u);
  EXPECT_EQ(a.row_nvals(501), 0u);
  EXPECT_EQ(a, orig);
  a.to_csr();
  EXPECT_EQ(a, orig);
}

TEST(Matrix, HypersparseIteration) {
  Matrix<int> a(100, 100);
  a.set_element(10, 1, 1);
  a.set_element(10, 5, 2);
  a.set_element(90, 0, 3);
  a.to_hypersparse();
  std::vector<std::tuple<Index, Index, int>> seen;
  a.for_each([&](Index i, Index j, const int &x) {
    seen.emplace_back(i, j, x);
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], std::make_tuple(Index(10), Index(1), 1));
  EXPECT_EQ(seen[2], std::make_tuple(Index(90), Index(0), 3));
  // empty-row iteration is a no-op
  int calls = 0;
  a.for_each_in_row(50, [&](Index, const int &) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(Matrix, HypersparseSetElementDensifies) {
  Matrix<int> a(50, 50);
  a.set_element(3, 3, 1);
  a.to_hypersparse();
  a.set_element(7, 7, 2);  // converts back to CSR via the pending list
  EXPECT_EQ(a.nvals(), 2u);
  EXPECT_EQ(a.get(7, 7), 2);
}

TEST(Matrix, HypersparseOpsMatchCsr) {
  // mxv/vxm/mxm over a hypersparse operand agree with the CSR answers.
  Matrix<double> a(64, 64);
  a.set_element(3, 9, 2.0);
  a.set_element(9, 30, 4.0);
  a.set_element(30, 3, 8.0);
  Matrix<double> a_hyper = a;
  a_hyper.to_hypersparse();

  grb::Vector<double> u(64);
  u.set_element(3, 1.0);
  u.set_element(9, 1.0);
  grb::Vector<double> w1(64);
  grb::Vector<double> w2(64);
  grb::vxm(w1, grb::no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, u, a);
  grb::vxm(w2, grb::no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, u,
           a_hyper);
  EXPECT_EQ(w1, w2);

  grb::Matrix<double> c1(64, 64);
  grb::Matrix<double> c2(64, 64);
  grb::mxm(c1, grb::no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a, a);
  grb::mxm(c2, grb::no_mask, grb::NoAccum{}, grb::PlusTimes<double>{},
           a_hyper, a_hyper);
  EXPECT_EQ(c1, c2);

  auto t1 = grb::transposed(a);
  auto t2 = grb::transposed(a_hyper);
  EXPECT_EQ(t1, t2);
}

TEST(Matrix, HypersparseEmptyMatrix) {
  Matrix<int> a(1000, 1000);
  a.to_hypersparse();
  EXPECT_EQ(a.nvals(), 0u);
  EXPECT_EQ(a.nrows_nonempty(), 0u);
  EXPECT_FALSE(a.has(0, 0));
}

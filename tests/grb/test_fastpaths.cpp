// Regression tests for the performance fast paths: the in-place assign
// variants, mixed-format element-wise kernels, the sparse-probe pull mode,
// bitmap-probing dots, and aliased mxm operands. Each fast path is compared
// against the generic path on identical inputs.
#include <gtest/gtest.h>

#include <random>

#include "grb/grb.hpp"

using grb::Index;
using grb::Matrix;
using grb::Vector;
using grb::no_mask;

namespace {

Vector<double> random_vec(Index n, double density, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u01(0, 1);
  std::uniform_int_distribution<int> uv(-9, 9);
  Vector<double> v(n);
  for (Index i = 0; i < n; ++i) {
    if (u01(rng) < density) v.set_element(i, uv(rng));
  }
  return v;
}

Matrix<double> random_mat(Index n, double density, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u01(0, 1);
  std::uniform_int_distribution<int> uv(1, 9);
  Matrix<double> a(n, n);
  std::vector<Index> ri, ci;
  std::vector<double> vx;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (u01(rng) < density) {
        ri.push_back(i);
        ci.push_back(j);
        vx.push_back(uv(rng));
      }
    }
  }
  a.build(std::span<const Index>(ri), std::span<const Index>(ci),
          std::span<const double>(vx));
  return a;
}

}  // namespace

TEST(FastPath, InPlaceAccumAssignMatchesGeneral) {
  for (unsigned seed = 1; seed <= 5; ++seed) {
    auto w0 = random_vec(64, 0.6, seed);
    auto u = random_vec(64, 0.2, seed + 100);
    // fast path: w bitmap
    auto w_fast = w0;
    w_fast.to_bitmap();
    grb::assign(w_fast, no_mask, grb::Min{}, u, grb::Indices::all());
    // general path: w sparse
    auto w_gen = w0;
    w_gen.to_sparse();
    grb::assign(w_gen, no_mask, grb::Min{}, u, grb::Indices::all());
    EXPECT_EQ(w_fast, w_gen) << "seed " << seed;
  }
}

TEST(FastPath, MaskedSelfScatterMatchesGeneral) {
  // p⟨s(q)⟩ = q (the BFS parent update) where the mask IS the source.
  for (unsigned seed = 1; seed <= 5; ++seed) {
    auto p0 = random_vec(64, 0.4, seed);
    auto q = random_vec(64, 0.3, seed + 7);
    auto p_fast = p0;
    p_fast.to_bitmap();
    grb::assign(p_fast, q, grb::NoAccum{}, q, grb::Indices::all(),
                grb::desc::S);
    auto p_gen = p0;
    p_gen.to_sparse();
    grb::assign(p_gen, q, grb::NoAccum{}, q, grb::Indices::all(),
                grb::desc::S);
    EXPECT_EQ(p_fast, p_gen) << "seed " << seed;
  }
}

TEST(FastPath, MaskedScalarAssignMatchesGeneral) {
  for (unsigned seed = 1; seed <= 5; ++seed) {
    auto w0 = random_vec(64, 0.5, seed);
    auto m = random_vec(64, 0.4, seed + 9);
    for (bool structural : {true, false}) {
      grb::Descriptor d;
      d.mask_structural = structural;
      auto w_fast = w0;
      w_fast.to_bitmap();
      grb::assign(w_fast, m, grb::NoAccum{}, 5.0, grb::Indices::all(), d);
      auto w_gen = w0;
      w_gen.to_sparse();
      grb::assign(w_gen, m, grb::NoAccum{}, 5.0, grb::Indices::all(), d);
      EXPECT_EQ(w_fast, w_gen) << "seed " << seed << " s=" << structural;
    }
  }
}

TEST(FastPath, UnmaskedScalarFillOnBitmap) {
  auto w = random_vec(32, 0.5, 3);
  w.to_bitmap();
  grb::assign(w, no_mask, grb::NoAccum{}, 2.5, grb::Indices::all());
  EXPECT_EQ(w.nvals(), 32u);
  for (Index i = 0; i < 32; ++i) EXPECT_EQ(w.get(i), 2.5);
}

TEST(FastPath, EWiseIntersectionMixedFormats) {
  for (unsigned seed = 1; seed <= 5; ++seed) {
    auto u = random_vec(80, 0.1, seed);
    auto v = random_vec(80, 0.7, seed + 3);
    v.to_bitmap();
    Vector<double> w1(80);
    grb::eWiseMult(w1, no_mask, grb::NoAccum{}, grb::Times{}, u, v);
    // same with both sparse
    auto v2 = v;
    v2.to_sparse();
    Vector<double> w2(80);
    grb::eWiseMult(w2, no_mask, grb::NoAccum{}, grb::Times{}, u, v2);
    EXPECT_EQ(w1, w2);
    // and swapped operand order (bitmap first)
    Vector<double> w3(80);
    grb::eWiseMult(w3, no_mask, grb::NoAccum{}, grb::Times{}, v, u);
    v.to_sparse();
    Vector<double> w4(80);
    grb::eWiseMult(w4, no_mask, grb::NoAccum{}, grb::Times{}, v, u);
    EXPECT_EQ(w3, w4);
  }
}

TEST(FastPath, PullWithSparseProbesMatchesBitmapProbes) {
  // dot_kernel honours the bitmap-disable knob; both modes must agree.
  auto a = random_mat(48, 0.2, 11);
  auto u = random_vec(48, 0.5, 12);
  Vector<double> w_bitmap(48);
  grb::config().bitmap_switch_density = 1.0 / 16.0;
  grb::mxv(w_bitmap, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a, u);
  Vector<double> w_sparse(48);
  grb::config().bitmap_switch_density = 2.0;  // bitmap disabled
  grb::mxv(w_sparse, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a, u);
  grb::config().bitmap_switch_density = 1.0 / 16.0;
  EXPECT_EQ(w_bitmap, w_sparse);
}

TEST(FastPath, AliasedMxmOperands) {
  // C⟨s(A)⟩ = A ⊕.⊗ Aᵀ with a == b == mask (the k-truss shape) must not
  // corrupt state even when format conversions kick in.
  auto a = random_mat(24, 0.5, 21);  // dense enough to trigger bitmap paths
  Matrix<double> c1(24, 24);
  grb::mxm(c1, a, grb::NoAccum{}, grb::PlusTimes<double>{}, a, a,
           grb::Descriptor{}.T1().S());
  // reference: explicit transpose + gustavson + masked copy
  auto at = grb::transposed(a);
  Matrix<double> full(24, 24);
  grb::mxm(full, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a, at);
  Matrix<double> c2(24, 24);
  grb::apply(c2, a, grb::NoAccum{}, grb::Identity{}, full, grb::desc::S);
  EXPECT_EQ(c1, c2);
}

TEST(FastPath, BitmapDotMatchesMergeDot) {
  // Dense A (bitmap-probing dots) vs the same computation with A sparse.
  auto a = random_mat(32, 0.6, 31);
  auto b = random_mat(32, 0.1, 32);
  auto m = random_mat(32, 0.3, 33);
  Matrix<double> c1(32, 32);
  grb::mxm(c1, m, grb::NoAccum{}, grb::PlusTimes<double>{}, a, b,
           grb::Descriptor{}.T1().S());
  Matrix<double> c2(32, 32);
  grb::config().bitmap_switch_density = 2.0;  // force merge dots
  grb::mxm(c2, m, grb::NoAccum{}, grb::PlusTimes<double>{}, a, b,
           grb::Descriptor{}.T1().S());
  grb::config().bitmap_switch_density = 1.0 / 16.0;
  EXPECT_EQ(c1, c2);
}

TEST(Kronecker, SmallProduct) {
  // A = [1 2; 3 0] (0 = no entry), B = [0 1; 1 0] pattern
  Matrix<double> a(2, 2);
  a.set_element(0, 0, 1.0);
  a.set_element(0, 1, 2.0);
  a.set_element(1, 0, 3.0);
  Matrix<double> b(2, 2);
  b.set_element(0, 1, 1.0);
  b.set_element(1, 0, 1.0);
  Matrix<double> c(4, 4);
  grb::kronecker(c, no_mask, grb::NoAccum{}, grb::Times{}, a, b);
  EXPECT_EQ(c.nvals(), 6u);
  EXPECT_EQ(c.get(0, 1), 1.0);  // a(0,0)*b(0,1)
  EXPECT_EQ(c.get(1, 0), 1.0);  // a(0,0)*b(1,0)
  EXPECT_EQ(c.get(0, 3), 2.0);  // a(0,1)*b(0,1)
  EXPECT_EQ(c.get(1, 2), 2.0);
  EXPECT_EQ(c.get(2, 1), 3.0);  // a(1,0)*b(0,1)
  EXPECT_EQ(c.get(3, 0), 3.0);
}

TEST(Kronecker, PowerGrowsKroneckerGraph) {
  // The Graph500 construction: repeated Kronecker powers of a seed graph.
  Matrix<double> seed(2, 2);
  seed.set_element(0, 0, 1.0);
  seed.set_element(0, 1, 1.0);
  seed.set_element(1, 0, 1.0);
  Matrix<double> g = seed;
  for (int k = 0; k < 3; ++k) {
    Matrix<double> next(g.nrows() * 2, g.ncols() * 2);
    grb::kronecker(next, no_mask, grb::NoAccum{}, grb::Times{}, g, seed);
    g = std::move(next);
  }
  EXPECT_EQ(g.nrows(), 16u);
  EXPECT_EQ(g.nvals(), 81u);  // 3^4
}

TEST(Kronecker, DimensionChecks) {
  Matrix<double> a(2, 2);
  Matrix<double> b(3, 3);
  Matrix<double> wrong(5, 5);
  EXPECT_THROW(grb::kronecker(wrong, no_mask, grb::NoAccum{}, grb::Times{},
                              a, b),
               grb::Exception);
}

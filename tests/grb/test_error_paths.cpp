// Table-driven error-path conformance: every malformed call must throw
// grb::Exception carrying the spec'd Info code — never assert, never return a
// wrong answer silently. One row per misuse; the table loop reports the row
// name on failure so a regression pinpoints the offending check.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "grb/grb.hpp"

namespace {

using grb::Index;
using grb::Info;
using T = std::int64_t;
using Mat = grb::Matrix<T>;
using Vec = grb::Vector<T>;

Mat small_mat(Index m, Index n) {
  Mat a(m, n);
  if (m > 0 && n > 0) {
    std::vector<Index> r{0}, c{0};
    std::vector<T> v{1};
    a.build(r, c, v);
  }
  return a;
}

Vec small_vec(Index n) {
  Vec u(n);
  if (n > 0) {
    std::vector<Index> ix{0};
    std::vector<T> v{1};
    u.build(ix, v);
  }
  return u;
}

struct Case {
  const char *name;
  Info expected;
  std::function<void()> run;
};

const grb::Descriptor kDefault{};

std::vector<Case> make_cases() {
  using grb::no_mask;
  using grb::NoAccum;
  std::vector<Case> cases;

  // --- mxm / mxv / vxm shape checks ------------------------------------
  cases.push_back({"mxm inner dimension mismatch", Info::dimension_mismatch,
                   [] {
                     Mat a = small_mat(2, 3), b = small_mat(4, 2);
                     Mat c(2, 2);
                     grb::mxm(c, no_mask, NoAccum{},
                              grb::PlusTimes<T>{}, a, b, kDefault);
                   }});
  cases.push_back({"mxm output row mismatch", Info::dimension_mismatch, [] {
                     Mat a = small_mat(2, 3), b = small_mat(3, 2);
                     Mat c(5, 2);
                     grb::mxm(c, no_mask, NoAccum{},
                              grb::PlusTimes<T>{}, a, b, kDefault);
                   }});
  cases.push_back({"mxm output column mismatch", Info::dimension_mismatch,
                   [] {
                     Mat a = small_mat(2, 3), b = small_mat(3, 2);
                     Mat c(2, 7);
                     grb::mxm(c, no_mask, NoAccum{},
                              grb::PlusTimes<T>{}, a, b, kDefault);
                   }});
  cases.push_back({"mxv input size mismatch", Info::dimension_mismatch, [] {
                     Mat a = small_mat(2, 3);
                     Vec u = small_vec(4), w = small_vec(2);
                     grb::mxv(w, no_mask, NoAccum{},
                              grb::PlusTimes<T>{}, a, u, kDefault);
                   }});
  cases.push_back({"mxv output size mismatch", Info::dimension_mismatch, [] {
                     Mat a = small_mat(2, 3);
                     Vec u = small_vec(3), w = small_vec(9);
                     grb::mxv(w, no_mask, NoAccum{},
                              grb::PlusTimes<T>{}, a, u, kDefault);
                   }});
  cases.push_back({"mxv transposed input mismatch", Info::dimension_mismatch,
                   [] {
                     Mat a = small_mat(2, 3);
                     Vec u = small_vec(3), w = small_vec(3);
                     grb::Descriptor d;
                     d.transpose_a = true;  // Aᵀ is 3x2, u must be length 2.
                     grb::mxv(w, no_mask, NoAccum{},
                              grb::PlusTimes<T>{}, a, u, d);
                   }});
  cases.push_back({"vxm input size mismatch", Info::dimension_mismatch, [] {
                     Mat a = small_mat(2, 3);
                     Vec u = small_vec(3), w = small_vec(3);
                     grb::vxm(w, no_mask, NoAccum{},
                              grb::PlusTimes<T>{}, u, a, kDefault);
                   }});

  // --- element-wise shape checks ---------------------------------------
  cases.push_back({"eWiseAdd vector input mismatch", Info::dimension_mismatch,
                   [] {
                     Vec u = small_vec(3), v = small_vec(4), w = small_vec(3);
                     grb::eWiseAdd(w, no_mask, NoAccum{}, grb::Plus{}, u, v,
                                   kDefault);
                   }});
  cases.push_back({"eWiseAdd vector output mismatch", Info::dimension_mismatch,
                   [] {
                     Vec u = small_vec(3), v = small_vec(3), w = small_vec(5);
                     grb::eWiseAdd(w, no_mask, NoAccum{}, grb::Plus{}, u, v,
                                   kDefault);
                   }});
  cases.push_back({"eWiseMult matrix shape mismatch", Info::dimension_mismatch,
                   [] {
                     Mat a = small_mat(2, 3), b = small_mat(2, 4), c(2, 3);
                     grb::eWiseMult(c, no_mask, NoAccum{}, grb::Times{}, a, b,
                                    kDefault);
                   }});
  cases.push_back({"eWiseMult matrix output mismatch", Info::dimension_mismatch,
                   [] {
                     Mat a = small_mat(2, 3), b = small_mat(2, 3), c(3, 3);
                     grb::eWiseMult(c, no_mask, NoAccum{}, grb::Times{}, a, b,
                                    kDefault);
                   }});

  // --- apply / select / reduce -----------------------------------------
  cases.push_back({"apply vector size mismatch", Info::dimension_mismatch, [] {
                     Vec u = small_vec(3), w = small_vec(4);
                     grb::apply(w, no_mask, NoAccum{}, grb::Identity{}, u,
                                kDefault);
                   }});
  cases.push_back({"apply matrix shape mismatch", Info::dimension_mismatch,
                   [] {
                     Mat a = small_mat(2, 3), c(3, 2);
                     grb::apply(c, no_mask, NoAccum{}, grb::Identity{}, a,
                                kDefault);
                   }});
  cases.push_back({"select vector size mismatch", Info::dimension_mismatch,
                   [] {
                     Vec u = small_vec(3), w = small_vec(2);
                     grb::select(w, no_mask, NoAccum{}, grb::ValueNe{}, u, 0,
                                 kDefault);
                   }});
  cases.push_back({"select matrix shape mismatch", Info::dimension_mismatch,
                   [] {
                     Mat a = small_mat(2, 3), c(2, 2);
                     grb::select(c, no_mask, NoAccum{}, grb::Tril{}, a, 0,
                                 kDefault);
                   }});
  cases.push_back({"reduce matrix-to-vector size mismatch",
                   Info::dimension_mismatch, [] {
                     Mat a = small_mat(2, 3);
                     Vec w = small_vec(3);  // must be nrows(a) == 2
                     grb::reduce(w, no_mask, NoAccum{}, grb::PlusMonoid<T>{},
                                 a, kDefault);
                   }});

  // --- masks ------------------------------------------------------------
  cases.push_back({"vector mask size mismatch", Info::dimension_mismatch, [] {
                     Vec u = small_vec(3), v = small_vec(3), w = small_vec(3);
                     Vec mask = small_vec(4);
                     grb::eWiseAdd(w, mask, NoAccum{}, grb::Plus{}, u, v,
                                   kDefault);
                   }});
  cases.push_back({"matrix mask shape mismatch", Info::dimension_mismatch, [] {
                     Mat a = small_mat(2, 3), b = small_mat(2, 3), c(2, 3);
                     Mat mask = small_mat(3, 3);
                     grb::eWiseAdd(c, mask, NoAccum{}, grb::Plus{}, a, b,
                                   kDefault);
                   }});

  // --- extract ----------------------------------------------------------
  cases.push_back({"extract output size mismatch", Info::dimension_mismatch,
                   [] {
                     Vec u = small_vec(5), w = small_vec(3);
                     std::vector<Index> ix{0, 1};
                     grb::extract(w, no_mask, NoAccum{}, u, grb::Indices(ix),
                                  kDefault);
                   }});
  cases.push_back({"extract index out of bounds", Info::index_out_of_bounds,
                   [] {
                     Vec u = small_vec(5), w = small_vec(2);
                     std::vector<Index> ix{0, 9};
                     grb::extract(w, no_mask, NoAccum{}, u, grb::Indices(ix),
                                  kDefault);
                   }});
  cases.push_back({"extract matrix row index out of bounds",
                   Info::index_out_of_bounds, [] {
                     Mat a = small_mat(3, 3), c(2, 3);
                     std::vector<Index> rows{0, 7};
                     grb::extract(c, no_mask, NoAccum{}, a, grb::Indices(rows),
                                  grb::Indices::all(), kDefault);
                   }});
  cases.push_back({"extract_col column out of bounds",
                   Info::index_out_of_bounds, [] {
                     Mat a = small_mat(3, 3);
                     Vec w = small_vec(3);
                     grb::extract_col(w, no_mask, NoAccum{}, a, 5, kDefault);
                   }});

  // --- assign -----------------------------------------------------------
  cases.push_back({"assign source size mismatch", Info::dimension_mismatch,
                   [] {
                     Vec w = small_vec(5), u = small_vec(3);
                     std::vector<Index> ix{0, 1};  // region is 2, u is 3
                     grb::assign(w, no_mask, NoAccum{}, u, grb::Indices(ix),
                                 kDefault);
                   }});
  cases.push_back({"assign index out of bounds", Info::index_out_of_bounds,
                   [] {
                     Vec w = small_vec(3), u = small_vec(2);
                     std::vector<Index> ix{0, 8};
                     grb::assign(w, no_mask, NoAccum{}, u, grb::Indices(ix),
                                 kDefault);
                   }});
  cases.push_back({"scalar assign index out of bounds",
                   Info::index_out_of_bounds, [] {
                     Vec w = small_vec(3);
                     std::vector<Index> ix{4};
                     grb::assign(w, no_mask, NoAccum{}, T{7}, grb::Indices(ix),
                                 kDefault);
                   }});
  cases.push_back({"matrix assign source shape mismatch",
                   Info::dimension_mismatch, [] {
                     Mat c = small_mat(4, 4), a = small_mat(3, 2);
                     std::vector<Index> rows{0, 1}, cols{0, 1};
                     grb::assign(c, no_mask, NoAccum{}, a, grb::Indices(rows),
                                 grb::Indices(cols), kDefault);
                   }});
  cases.push_back({"matrix assign row index out of bounds",
                   Info::index_out_of_bounds, [] {
                     Mat c = small_mat(4, 4), a = small_mat(2, 2);
                     std::vector<Index> rows{0, 9}, cols{0, 1};
                     grb::assign(c, no_mask, NoAccum{}, a, grb::Indices(rows),
                                 grb::Indices(cols), kDefault);
                   }});
  cases.push_back({"matrix assign duplicate row index", Info::invalid_value,
                   [] {
                     Mat c = small_mat(4, 4), a = small_mat(2, 2);
                     std::vector<Index> rows{1, 1}, cols{0, 1};
                     grb::assign(c, no_mask, NoAccum{}, a, grb::Indices(rows),
                                 grb::Indices(cols), kDefault);
                   }});

  // --- build / element access -------------------------------------------
  cases.push_back({"vector build length mismatch", Info::invalid_value, [] {
                     Vec u(4);
                     std::vector<Index> ix{0, 1};
                     std::vector<T> vals{1};
                     u.build(ix, vals);
                   }});
  cases.push_back({"vector build index out of bounds",
                   Info::index_out_of_bounds, [] {
                     Vec u(4);
                     std::vector<Index> ix{0, 6};
                     std::vector<T> vals{1, 2};
                     u.build(ix, vals);
                   }});
  cases.push_back({"matrix build length mismatch", Info::invalid_value, [] {
                     Mat a(3, 3);
                     std::vector<Index> r{0, 1}, c{0, 1};
                     std::vector<T> vals{1};
                     a.build(r, c, vals);
                   }});
  cases.push_back({"matrix build index out of bounds",
                   Info::index_out_of_bounds, [] {
                     Mat a(3, 3);
                     std::vector<Index> r{0, 5}, c{0, 1};
                     std::vector<T> vals{1, 2};
                     a.build(r, c, vals);
                   }});
  cases.push_back({"matrix set_element out of bounds",
                   Info::index_out_of_bounds, [] {
                     Mat a = small_mat(3, 3);
                     a.set_element(3, 0, T{1});
                   }});
  cases.push_back({"vector set_element out of bounds",
                   Info::index_out_of_bounds, [] {
                     Vec u = small_vec(3);
                     u.set_element(3, T{1});
                   }});
  cases.push_back({"hypersparse rowptr access", Info::invalid_value, [] {
                     Mat a = small_mat(3, 3);
                     a.to_hypersparse();
                     (void)a.rowptr();
                   }});

  // --- kronecker / transpose --------------------------------------------
  cases.push_back({"kronecker output shape mismatch",
                   Info::dimension_mismatch, [] {
                     Mat a = small_mat(2, 2), b = small_mat(3, 3), c(5, 6);
                     grb::kronecker(c, no_mask, NoAccum{}, grb::Times{}, a, b,
                                    kDefault);
                   }});
  cases.push_back({"transpose output shape mismatch",
                   Info::dimension_mismatch, [] {
                     Mat a = small_mat(2, 3), c(2, 3);  // must be 3x2
                     grb::transpose(c, no_mask, NoAccum{}, a, kDefault);
                   }});

  // --- default-constructed (uninitialized) containers --------------------
  // A default-constructed Matrix/Vector is 0-dimensional; using one where a
  // real operand is expected must surface as a dimension error, not a crash.
  cases.push_back({"default-constructed matrix operand",
                   Info::dimension_mismatch, [] {
                     Mat a;  // 0x0
                     Mat b = small_mat(3, 2), c(3, 2);
                     grb::mxm(c, no_mask, NoAccum{},
                              grb::PlusTimes<T>{}, a, b, kDefault);
                   }});
  cases.push_back({"default-constructed vector operand",
                   Info::dimension_mismatch, [] {
                     Vec u;  // length 0
                     Mat a = small_mat(2, 3);
                     Vec w = small_vec(2);
                     grb::mxv(w, no_mask, NoAccum{},
                              grb::PlusTimes<T>{}, a, u, kDefault);
                   }});

  // --- index-width overflow guards ---------------------------------------
  // A container forced to u32 storage must reject out-of-range builds and
  // stage batches with the spec'd code — never truncate silently. The limit
  // is lowered so tiny test containers can trip the guard; WidthGuard
  // restores the full Config even when the case throws.
  struct WidthGuard {
    grb::Config saved = grb::config();
    explicit WidthGuard(Index limit) {
      grb::config().force_index_width = grb::ForceIndexWidth::u32;
      grb::config().u32_index_limit = limit;
    }
    ~WidthGuard() { grb::config() = saved; }
  };
  cases.push_back({"build exceeds forced u32 width", Info::index_out_of_bounds,
                   [] {
                     WidthGuard g(4);
                     Mat a(8, 8);  // dims outside the modeled u32 domain
                     std::vector<Index> r{0}, c{0};
                     std::vector<T> v{1};
                     a.build(r, c, v);
                     a.finalize();
                   }});
  cases.push_back({"stage_tuples batch exceeds forced u32 width",
                   Info::index_out_of_bounds, [] {
                     Mat a(4, 4);
                     std::vector<Index> r{0, 1, 2}, c{1, 2, 3};
                     std::vector<T> v{1, 2, 3};
                     a.build(r, c, v);
                     WidthGuard g(6);
                     // 3 existing + 3 staged = 6 >= limit: rejected on the
                     // projected count, before any pending-list mutation.
                     std::vector<std::uint8_t> ops(r.size(), Mat::kPendSet);
                     a.stage_tuples(r, c, v, ops);
                   }});

  return cases;
}

TEST(ErrorPaths, TableDriven) {
  for (const Case &c : make_cases()) {
    SCOPED_TRACE(c.name);
    bool threw = false;
    try {
      c.run();
    } catch (const grb::Exception &e) {
      threw = true;
      EXPECT_EQ(e.info(), c.expected)
          << c.name << ": threw " << grb::info_name(e.info()) << ", expected "
          << grb::info_name(c.expected);
    } catch (const std::exception &e) {
      threw = true;
      ADD_FAILURE() << c.name << ": threw non-grb exception: " << e.what();
    }
    EXPECT_TRUE(threw) << c.name << ": expected grb::Exception, none thrown";
  }
}

// Successful calls after a failed one must still work: error checks fire
// before any output mutation, so a caught Exception leaves operands usable.
TEST(ErrorPaths, FailedCallLeavesOperandsUsable) {
  Mat a = small_mat(2, 3), b = small_mat(3, 2);
  Mat bad(5, 2), good(2, 2);
  EXPECT_THROW(grb::mxm(bad, grb::no_mask, grb::NoAccum{},
                        grb::PlusTimes<T>{}, a, b, kDefault),
               grb::Exception);
  grb::mxm(good, grb::no_mask, grb::NoAccum{}, grb::PlusTimes<T>{}, a,
           b, kDefault);
  EXPECT_EQ(good.nvals(), 1u);
  auto x = good.get(0, 0);
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x, 1);
}

}  // namespace

// Tests for the "single writer OR finalized" threading contract
// (grb/matrix.hpp): finalize() drains every deferred mutation so const
// access becomes genuinely read-only, mutators drop the flag again, and the
// debug tripwires catch contract violations.
#include <gtest/gtest.h>

#include "grb/grb.hpp"

using grb::Index;

TEST(Finalize, DrainsPendingWorkAndFreezes) {
  grb::Matrix<double> a(100, 100);
  for (Index i = 0; i < 50; ++i) a.set_element(i, (i * 7) % 100, 1.0 + i);
  EXPECT_FALSE(a.is_finalized());
  a.finalize();
  EXPECT_TRUE(a.is_finalized());
  EXPECT_EQ(a.nvals(), 50u);
  // All reads on a finalized matrix must leave it finalized.
  EXPECT_TRUE(a.has(0, 0));
  double sum = 0;
  a.for_each([&](Index, Index, const double &x) { sum += x; });
  EXPECT_GT(sum, 0.0);
  EXPECT_TRUE(a.is_finalized());
}

TEST(Finalize, HypersparseIsExpandedUpFront) {
  // A few entries in a huge matrix normally live in hypersparse storage, and
  // the kernels' rowptr() accessor would silently convert — a write. A
  // finalized matrix must already be past that.
  grb::Matrix<double> a(1u << 20, 1u << 20);
  a.set_element(3, 5, 1.0);
  a.set_element(70000, 9, 2.0);
  a.finalize();
  EXPECT_NE(a.format(), grb::Matrix<double>::Format::hypersparse);
  EXPECT_TRUE(a.is_finalized());
  EXPECT_EQ(a.nvals(), 2u);
}

TEST(Finalize, MutationDropsTheFlag) {
  grb::Matrix<double> a(10, 10);
  a.set_element(1, 2, 3.0);
  a.finalize();
  ASSERT_TRUE(a.is_finalized());
  a.set_element(4, 5, 6.0);  // back to single-writer mode
  EXPECT_FALSE(a.is_finalized());
  a.finalize();
  ASSERT_TRUE(a.is_finalized());
  a.remove_element(1, 2);
  EXPECT_FALSE(a.is_finalized());
  a.finalize();
  a.clear();
  EXPECT_FALSE(a.is_finalized());
}

TEST(Finalize, VectorContract) {
  grb::Vector<double> v(1000);
  for (Index i = 0; i < 20; ++i) v.set_element(i * 31, 1.0);
  EXPECT_FALSE(v.is_finalized());
  v.finalize();
  EXPECT_TRUE(v.is_finalized());
  EXPECT_EQ(v.nvals(), 20u);
  double sum = 0;
  v.for_each([&](Index, const double &x) { sum += x; });
  EXPECT_EQ(sum, 20.0);
  EXPECT_TRUE(v.is_finalized());
  v.set_element(5, 2.0);
  EXPECT_FALSE(v.is_finalized());
}

TEST(Finalize, CountsInStats) {
  auto &st = grb::stats();
  const auto before = st.finalize_calls.load();
  grb::Matrix<double> a(4, 4);
  a.set_element(0, 1, 1.0);
  a.finalize();
  grb::Vector<double> v(4);
  v.finalize();
  EXPECT_EQ(st.finalize_calls.load(), before + 2);
}

TEST(Finalize, IdempotentAndCheapOnEmpty) {
  grb::Matrix<double> a(8, 8);
  a.finalize();
  a.finalize();
  EXPECT_TRUE(a.is_finalized());
  EXPECT_EQ(a.nvals(), 0u);
}

#ifndef NDEBUG
// The tripwires only exist in debug builds (assert); in release they compile
// away and the contract is documentation-only.
TEST(FinalizeDeathTest, LazyPathOnFinalizedMatrixAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  grb::Matrix<double> a(1u << 20, 1u << 20);
  a.set_element(1, 2, 3.0);
  a.finalize();
  // Forcing a format change on a finalized matrix must trip the assert.
  EXPECT_DEATH(a.to_bitmap(), "finalized");
}
#endif

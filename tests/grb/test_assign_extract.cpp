// Tests for assign and extract, including the scatter/gather forms FastSV
// depends on and the GrB_assign region semantics.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "grb/grb.hpp"

using grb::Index;
using grb::Indices;
using grb::Matrix;
using grb::Vector;
using grb::no_mask;

TEST(Extract, SubvectorByList) {
  Vector<int> u(6);
  for (Index i = 0; i < 6; ++i) u.set_element(i, int(i) * 10);
  std::vector<Index> picks = {4, 0, 2};
  Vector<int> w(3);
  grb::extract(w, no_mask, grb::NoAccum{}, u, Indices(picks));
  EXPECT_EQ(w.get(0), 40);
  EXPECT_EQ(w.get(1), 0);
  EXPECT_EQ(w.get(2), 20);
}

TEST(Extract, GatherThroughParentVector) {
  // FastSV grandparent step: gf = f(f), gathering f at indices f.
  Vector<Index> f(5);
  std::vector<Index> parent = {1, 2, 2, 4, 4};
  for (Index i = 0; i < 5; ++i) f.set_element(i, parent[i]);
  std::vector<Index> fidx;
  std::vector<Index> fval;
  f.extract_tuples(fidx, fval);
  Vector<Index> gf(5);
  grb::extract(gf, no_mask, grb::NoAccum{}, f, Indices(fval));
  EXPECT_EQ(gf.get(0), 2u);  // f(f(0)) = f(1) = 2
  EXPECT_EQ(gf.get(1), 2u);
  EXPECT_EQ(gf.get(3), 4u);
}

TEST(Extract, MissingEntriesStayMissing) {
  Vector<int> u(5);
  u.set_element(1, 11);
  std::vector<Index> picks = {0, 1};
  Vector<int> w(2);
  grb::extract(w, no_mask, grb::NoAccum{}, u, Indices(picks));
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.get(1), 11);
}

TEST(Extract, SubmatrixInducedSubgraph) {
  Matrix<int> a(4, 4);
  a.set_element(0, 1, 1);
  a.set_element(1, 2, 2);
  a.set_element(2, 3, 3);
  a.set_element(3, 0, 4);
  std::vector<Index> rows = {1, 2};
  std::vector<Index> cols = {2, 3};
  Matrix<int> c(2, 2);
  grb::extract(c, no_mask, grb::NoAccum{}, a, Indices(rows), Indices(cols));
  EXPECT_EQ(c.nvals(), 2u);
  EXPECT_EQ(c.get(0, 0), 2);  // a(1,2)
  EXPECT_EQ(c.get(1, 1), 3);  // a(2,3)
}

TEST(Extract, PermutationReordersGraph) {
  // The TC degree-sort: A(p, p).
  Matrix<int> a(3, 3);
  a.set_element(0, 1, 1);
  a.set_element(1, 2, 2);
  std::vector<Index> p = {2, 1, 0};
  Matrix<int> c(3, 3);
  grb::extract(c, no_mask, grb::NoAccum{}, a, Indices(p), Indices(p));
  EXPECT_EQ(c.get(2, 1), 1);  // old (0,1) lands at (2,1)
  EXPECT_EQ(c.get(1, 0), 2);  // old (1,2) lands at (1,0)
}

TEST(Extract, ColumnVector) {
  Matrix<int> a(3, 3);
  a.set_element(0, 1, 5);
  a.set_element(2, 1, 7);
  Vector<int> w(3);
  grb::extract_col(w, no_mask, grb::NoAccum{}, a, 1);
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_EQ(w.get(0), 5);
  EXPECT_EQ(w.get(2), 7);
}

TEST(Assign, ScalarToAll) {
  Vector<double> w(4);
  w.set_element(1, 9.0);
  grb::assign(w, no_mask, grb::NoAccum{}, 0.25, Indices::all());
  EXPECT_EQ(w.nvals(), 4u);
  for (Index i = 0; i < 4; ++i) EXPECT_EQ(w.get(i), 0.25);
}

TEST(Assign, ScalarToSubset) {
  Vector<int> w(5);
  std::vector<Index> region = {1, 3};
  grb::assign(w, no_mask, grb::NoAccum{}, 7, Indices(region));
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_EQ(w.get(1), 7);
  EXPECT_EQ(w.get(3), 7);
}

TEST(Assign, VectorWithStructuralMaskUpdatesParents) {
  // BFS parent update: p⟨s(q)⟩ = q.
  Vector<Index> p(5);
  p.set_element(0, 0);
  Vector<Index> q(5);
  q.set_element(1, 0);
  q.set_element(2, 0);
  grb::assign(p, q, grb::NoAccum{}, q, Indices::all(), grb::desc::S);
  EXPECT_EQ(p.nvals(), 3u);
  EXPECT_EQ(p.get(0), 0u);
  EXPECT_EQ(p.get(1), 0u);
  EXPECT_EQ(p.get(2), 0u);
}

TEST(Assign, ScatterMinWithDuplicateIndices) {
  // FastSV stochastic hooking: f(x) min= mngf where x has duplicates;
  // duplicates combine through the accumulator.
  Vector<Index> f(4);
  for (Index i = 0; i < 4; ++i) f.set_element(i, i);
  Vector<Index> mngf(4);
  mngf.set_element(0, 3);
  mngf.set_element(1, 1);
  mngf.set_element(2, 0);
  mngf.set_element(3, 2);
  std::vector<Index> x = {2, 2, 2, 2};  // all scatter to position 2
  grb::assign(f, no_mask, grb::Min{}, mngf, Indices(x));
  EXPECT_EQ(f.get(2), 0u);  // min(f(2)=2, min(3,1,0,2)=0)
  EXPECT_EQ(f.get(0), 0u);  // untouched positions keep old values
  EXPECT_EQ(f.get(1), 1u);
  EXPECT_EQ(f.get(3), 3u);
}

TEST(Assign, NoAccumDeletesMissingEntriesInRegion) {
  Vector<int> w(4);
  for (Index i = 0; i < 4; ++i) w.set_element(i, int(i) + 1);
  Vector<int> u(2);
  u.set_element(0, 100);  // u(1) missing
  std::vector<Index> region = {1, 2};
  grb::assign(w, no_mask, grb::NoAccum{}, u, Indices(region));
  EXPECT_EQ(w.get(1), 100);
  EXPECT_FALSE(w.has(2));  // deleted: region position with no source entry
  EXPECT_EQ(w.get(0), 1);
  EXPECT_EQ(w.get(3), 4);
}

TEST(Assign, AccumKeepsEntriesMissingFromSource) {
  Vector<int> w(3);
  w.set_element(0, 1);
  w.set_element(1, 2);
  Vector<int> u(3);
  u.set_element(0, 10);
  grb::assign(w, no_mask, grb::Plus{}, u, Indices::all());
  EXPECT_EQ(w.get(0), 11);
  EXPECT_EQ(w.get(1), 2);
}

TEST(Assign, ReplaceClearsOutsideMask) {
  Vector<int> w(4);
  for (Index i = 0; i < 4; ++i) w.set_element(i, 1);
  Vector<grb::Bool> m(4);
  m.set_element(0, true);
  grb::assign(w, m, grb::NoAccum{}, 5, Indices::all(), grb::desc::R);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.get(0), 5);
}

TEST(Assign, MatrixScalarWithMaskFastPath) {
  // BC: S[d]⟨s(F)⟩ = 1 on a fresh matrix takes the pattern of F.
  Matrix<double> f(2, 4);
  f.set_element(0, 1, 3.0);
  f.set_element(1, 2, 0.0);  // explicit zero: structural mask still selects
  Matrix<grb::Bool> s(2, 4);
  grb::assign(s, f, grb::NoAccum{}, true, Indices::all(), Indices::all(),
              grb::desc::S);
  EXPECT_EQ(s.nvals(), 2u);
  EXPECT_EQ(s.get(0, 1), true);
  EXPECT_EQ(s.get(1, 2), true);
}

TEST(Assign, MatrixScalarColumnRegion) {
  // BC init: P(:, s) = 1 for the batch's source column.
  Matrix<double> p(3, 5);
  std::vector<Index> col = {2};
  grb::assign(p, no_mask, grb::NoAccum{}, 1.0, Indices::all(), Indices(col));
  EXPECT_EQ(p.nvals(), 3u);
  for (Index i = 0; i < 3; ++i) EXPECT_EQ(p.get(i, 2), 1.0);
}

TEST(Assign, MatrixToSubmatrix) {
  Matrix<int> c(3, 3);
  c.set_element(0, 0, 9);
  Matrix<int> a(2, 2);
  a.set_element(0, 0, 1);
  a.set_element(1, 1, 2);
  std::vector<Index> rows = {1, 2};
  std::vector<Index> cols = {1, 2};
  grb::assign(c, no_mask, grb::NoAccum{}, a, Indices(rows), Indices(cols));
  EXPECT_EQ(c.get(0, 0), 9);  // outside region: untouched
  EXPECT_EQ(c.get(1, 1), 1);
  EXPECT_EQ(c.get(2, 2), 2);
}

TEST(Assign, MatrixAccumAddsEverywhereInRegion) {
  // BC: P += F.
  Matrix<double> p(2, 3);
  p.set_element(0, 0, 1.0);
  Matrix<double> f(2, 3);
  f.set_element(0, 0, 2.0);
  f.set_element(1, 2, 5.0);
  grb::assign(p, no_mask, grb::Plus{}, f, Indices::all(), Indices::all());
  EXPECT_EQ(p.get(0, 0), 3.0);
  EXPECT_EQ(p.get(1, 2), 5.0);
}

TEST(Assign, OutOfBoundsIndexThrows) {
  Vector<int> w(3);
  std::vector<Index> bad = {5};
  EXPECT_THROW(grb::assign(w, no_mask, grb::NoAccum{}, 1, Indices(bad)),
               grb::Exception);
}

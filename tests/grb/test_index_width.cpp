// Storage-width suite (ctest label "storage"): the per-container IndexWidth
// property added in the 32-bit CSR work. Pins down
//
//   - the auto-selection rule (u32 iff max(nrows, ncols, nvals) <
//     Config::u32_index_limit, clamped to the physical 2^31 ceiling) and the
//     Config::force_index_width override,
//   - u32 -> u64 promotion when a mutation batch crosses the limit, and
//     u64 -> u32 compression at finalize(), both visible in grb::stats(),
//   - the spec'd overflow guard: forced-u32 containers reject out-of-range
//     builds/stage batches with Info::index_out_of_bounds, never truncation,
//   - bit-identical kernel results u32 vs u64 across storage formats and
//     thread counts (the width must be invisible to every consumer), and
//   - the IndexArray / IndexSpan building blocks themselves.
//
// This file is also compiled a second time under -fsanitize=undefined as the
// narrowing-conversion smoke target (tests_storage_ubsan): every u32 store
// in the width-erased paths runs under the sanitizer on real kernel traffic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gen/generators.hpp"
#include "grb/grb.hpp"

namespace {

using grb::Index;
using grb::IndexWidth;
using T = std::int64_t;
using Mat = grb::Matrix<T>;
using Vec = grb::Vector<T>;

// Restores the full Config (width knobs, thread count, format force) on
// scope exit so test cases cannot leak settings into each other.
struct ConfigGuard {
  grb::Config saved = grb::config();
  ~ConfigGuard() { grb::config() = saved; }
};

Mat ladder(Index m, Index n, Index nvals) {
  std::vector<Index> ri, ci;
  std::vector<T> vv;
  for (Index p = 0; p < nvals; ++p) {
    ri.push_back(p % m);
    ci.push_back((p * 7 + p / m) % n);  // distinct (i, j) for nvals <= 5*m
    vv.push_back(static_cast<T>(1 + p));
  }
  Mat a(m, n);
  a.build(ri, ci, vv);
  a.finalize();
  return a;
}

std::vector<std::tuple<Index, Index, T>> tuples_of(const Mat &a) {
  std::vector<std::tuple<Index, Index, T>> out;
  a.for_each([&](Index i, Index j, const T &x) { out.emplace_back(i, j, x); });
  std::sort(out.begin(), out.end());
  return out;
}

// --- building blocks ------------------------------------------------------

TEST(IndexArray, WidthErasedRoundTrip) {
  grb::detail::IndexArray a(IndexWidth::u32);
  for (Index x : {Index{0}, Index{7}, Index{42}, Index{1000000}}) {
    a.push_back(x);
  }
  EXPECT_EQ(a.width(), IndexWidth::u32);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a.byte_size(), 4u * sizeof(std::uint32_t));
  EXPECT_EQ(a[3], 1000000u);
  EXPECT_EQ(a.back(), 1000000u);
  a.set(1, 9);
  EXPECT_EQ(a[1], 9u);

  // Widen: values survive, byte footprint doubles.
  a.convert(IndexWidth::u64);
  EXPECT_EQ(a.width(), IndexWidth::u64);
  EXPECT_EQ(a[0], 0u);
  EXPECT_EQ(a[1], 9u);
  EXPECT_EQ(a[3], 1000000u);
  EXPECT_EQ(a.byte_size(), 4u * sizeof(std::uint64_t));

  // Narrow back (all values in range): still intact.
  a.convert(IndexWidth::u32);
  EXPECT_EQ(a.width(), IndexWidth::u32);
  EXPECT_EQ(a.to_u64(), (std::vector<Index>{0, 9, 42, 1000000}));
}

TEST(IndexArray, AdoptAndTypedViews) {
  grb::detail::IndexArray a;
  a.adopt(std::vector<std::uint32_t>{3, 1, 4, 1, 5});
  EXPECT_EQ(a.width(), IndexWidth::u32);
  auto s32 = a.as<std::uint32_t>();
  ASSERT_EQ(s32.size(), 5u);
  EXPECT_EQ(s32[2], 4u);

  a.adopt(std::vector<std::uint64_t>{8, 6, 7});
  EXPECT_EQ(a.width(), IndexWidth::u64);
  EXPECT_EQ(a.as<std::uint64_t>()[2], 7u);
}

TEST(IndexSpan, ValueIteratorsOverBothWidths) {
  grb::detail::IndexArray a(IndexWidth::u32);
  for (Index x = 0; x < 10; ++x) a.push_back(x * x);
  grb::IndexSpan s{a};
  EXPECT_EQ(s.width(), IndexWidth::u32);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(s[3], 9u);
  EXPECT_EQ(s.front(), 0u);
  EXPECT_EQ(s.back(), 81u);

  // Random-access iterator contract: std algorithms over the erased view.
  auto it = std::lower_bound(s.begin(), s.end(), Index{16});
  EXPECT_EQ(it - s.begin(), 4);
  EXPECT_EQ(*it, 16u);
  std::vector<Index> copied(s.begin(), s.end());
  EXPECT_EQ(copied.size(), 10u);
  EXPECT_EQ(copied[7], 49u);

  auto sub = s.subspan(2, 3);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub[0], 4u);
  EXPECT_EQ(sub[2], 16u);

  // u64 spans view through the same type.
  std::vector<Index> v64{5, 10, 15};
  grb::IndexSpan w{std::span<const Index>{v64}};
  EXPECT_EQ(w.width(), IndexWidth::u64);
  EXPECT_EQ(w[1], 10u);
}

// --- selection rule and overrides -----------------------------------------

TEST(IndexWidthSelect, SmallContainersPickU32) {
  ConfigGuard g;
  Mat a = ladder(100, 100, 60);
  EXPECT_EQ(a.index_width(), IndexWidth::u32);
  if (a.format() == Mat::Format::csr) {
    // rowptr (m+1) + colidx (nnz), 4 bytes each.
    EXPECT_EQ(a.index_bytes(), (101 + a.nvals()) * 4u);
  } else {
    EXPECT_GT(a.index_bytes(), 0u);  // hypersparse: arrays still 4-byte
    EXPECT_EQ(a.index_bytes() % 4u, 0u);
  }
}

TEST(IndexWidthSelect, LoweredLimitPicksU64) {
  ConfigGuard g;
  grb::config().u32_index_limit = 50;  // dims >= 50 leave the u32 domain
  Mat a = ladder(100, 100, 60);
  EXPECT_EQ(a.index_width(), IndexWidth::u64);
  if (a.format() == Mat::Format::csr) {
    EXPECT_EQ(a.index_bytes(), (101 + a.nvals()) * 8u);
  } else {
    EXPECT_EQ(a.index_bytes() % 8u, 0u);
  }
}

TEST(IndexWidthSelect, NvalsAloneCanForceU64) {
  ConfigGuard g;
  grb::config().u32_index_limit = 32;
  // Dims fit (8 < 32) but the entry count does not (40 >= 32).
  Mat a = ladder(8, 8, 40);
  EXPECT_EQ(a.index_width(), IndexWidth::u64);
}

TEST(IndexWidthSelect, ForcedOverridesWin) {
  ConfigGuard g;
  grb::config().force_index_width = grb::ForceIndexWidth::u64;
  Mat a = ladder(16, 16, 20);
  EXPECT_EQ(a.index_width(), IndexWidth::u64);

  grb::config().force_index_width = grb::ForceIndexWidth::u32;
  Mat b = ladder(16, 16, 20);
  EXPECT_EQ(b.index_width(), IndexWidth::u32);
}

TEST(IndexWidthSelect, VectorsStayU64) {
  // Vector index storage is intentionally 64-bit (frontiers are transient);
  // the accessors exist so callers can account uniformly.
  Vec v(1000);
  v.set_element(3, 1);
  v.set_element(500, 2);
  v.finalize();
  EXPECT_EQ(v.index_width(), IndexWidth::u64);
  EXPECT_EQ(v.index_bytes(), v.nvals() * sizeof(Index));
}

// --- promotion and compression --------------------------------------------

TEST(IndexWidthTransitions, MutationBatchPromotesAcrossTheLimit) {
  ConfigGuard g;
  grb::config().u32_index_limit = 6;
  Mat a(5, 5);
  std::vector<Index> ri{0, 1, 2, 4}, ci{1, 4, 2, 0};
  std::vector<T> vv{3, 2, -1, 5};
  a.build(ri, ci, vv);
  a.finalize();
  ASSERT_EQ(a.index_width(), IndexWidth::u32);  // max(5, 5, 4) < 6

  const auto before = grb::stats().index_width_promotions.load();
  a.set_element(3, 3, 7);  // nvals 5: still under the limit after merge
  a.finalize();
  EXPECT_EQ(a.index_width(), IndexWidth::u32);

  a.set_element(0, 4, -2);  // nvals 6: crosses the boundary exactly
  a.finalize();
  EXPECT_EQ(a.index_width(), IndexWidth::u64);
  EXPECT_GE(grb::stats().index_width_promotions.load(), before + 1);

  // Contents survive the width change.
  auto t = tuples_of(a);
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t.front(), std::make_tuple(Index{0}, Index{1}, T{3}));
  EXPECT_EQ(std::get<2>(t[1]), T{-2});
}

TEST(IndexWidthTransitions, DeletionCompressesAtFinalize) {
  ConfigGuard g;
  grb::config().u32_index_limit = 6;
  Mat a(5, 5);
  std::vector<Index> ri, ci;
  std::vector<T> vv;
  for (Index p = 0; p < 5; ++p) {
    ri.push_back(p);
    ci.push_back((p + 1) % 5);
    vv.push_back(static_cast<T>(p));
  }
  ri.push_back(0);
  ci.push_back(3);
  vv.push_back(99);
  a.build(ri, ci, vv);
  a.finalize();
  ASSERT_EQ(a.index_width(), IndexWidth::u64);  // nvals 6 >= limit

  const auto before = grb::stats().index_width_compressions.load();
  a.remove_element(0, 3);
  a.remove_element(1, 2);
  a.finalize();  // nvals 4: back inside the u32 domain
  EXPECT_EQ(a.index_width(), IndexWidth::u32);
  EXPECT_GE(grb::stats().index_width_compressions.load(), before + 1);
  EXPECT_EQ(a.nvals(), 4u);
}

TEST(IndexWidthTransitions, AdoptedCsrStaysU64UntilFinalize) {
  ConfigGuard g;
  // adopt_csr is the zero-copy ingest path: the caller hands u64 arrays, so
  // the container keeps them as-is; finalize() applies the selection rule.
  std::vector<Index> rp{0, 1, 2};
  std::vector<Index> cx{1, 0};
  std::vector<T> vx{10, 20};
  Mat a(2, 2);
  a.adopt_csr(std::move(rp), std::move(cx), std::move(vx));
  EXPECT_EQ(a.index_width(), IndexWidth::u64);
  a.finalize();
  EXPECT_EQ(a.index_width(), IndexWidth::u32);
  EXPECT_EQ(a.nvals(), 2u);
}

// --- overflow guards ------------------------------------------------------

TEST(IndexWidthGuards, ForcedU32BuildThrowsSpeccedCode) {
  ConfigGuard g;
  grb::config().force_index_width = grb::ForceIndexWidth::u32;
  grb::config().u32_index_limit = 4;
  Mat a(8, 8);  // dims already out of the modeled u32 domain
  std::vector<Index> ri{0}, ci{0};
  std::vector<T> vv{1};
  try {
    a.build(ri, ci, vv);
    a.finalize();
    FAIL() << "expected Info::index_out_of_bounds";
  } catch (const grb::Exception &e) {
    EXPECT_EQ(e.info(), grb::Info::index_out_of_bounds);
  }
}

TEST(IndexWidthGuards, StageTuplesProjectedOverflowThrows) {
  ConfigGuard g;
  Mat a = ladder(4, 4, 3);
  grb::config().force_index_width = grb::ForceIndexWidth::u32;
  grb::config().u32_index_limit = 6;
  // 3 existing + 3 staged = 6 >= limit: the batch must be rejected up front
  // (projected count), not discovered as truncation at merge time.
  std::vector<Index> ri{0, 1, 2}, ci{3, 3, 3};
  std::vector<T> vv{1, 2, 3};
  std::vector<std::uint8_t> ops(ri.size(), Mat::kPendSet);
  try {
    a.stage_tuples(ri, ci, vv, ops);
    FAIL() << "expected Info::index_out_of_bounds";
  } catch (const grb::Exception &e) {
    EXPECT_EQ(e.info(), grb::Info::index_out_of_bounds);
  }
  // The guard fired before any mutation: the container is still usable.
  EXPECT_EQ(a.nvals(), 3u);
}

// --- kernel bit-identity across widths ------------------------------------

class WidthIdentity : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WidthIdentity, KernelsMatchAcrossWidths) {
  const auto [threads, fmt] = GetParam();
  auto el = gen::uniform_random(8, 6, 0x5eedULL);  // 256 rows, ~1.5k edges
  gen::add_uniform_weights(el, 1, 100, 0x99ULL);

  auto run = [&](grb::ForceIndexWidth w) {
    ConfigGuard g;
    grb::config().num_threads = threads;
    grb::config().force_format = static_cast<grb::ForceFormat>(fmt);
    grb::config().force_index_width = w;
    grb::Matrix<double> a = gen::to_matrix<double>(el);
    a.finalize();
    EXPECT_EQ(a.index_width(), w == grb::ForceIndexWidth::u32
                                   ? IndexWidth::u32
                                   : IndexWidth::u64);

    const Index n = a.ncols();
    grb::Vector<double> u(n);
    for (Index i = 0; i < n; i += 3) u.set_element(i, 1.0 + (i % 7));
    u.finalize();

    grb::Vector<double> w_out(a.nrows());
    grb::mxv(w_out, grb::no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a,
             u, grb::Descriptor{});

    grb::Matrix<double> at(a.ncols(), a.nrows());
    grb::transpose(at, grb::no_mask, grb::NoAccum{}, a, grb::Descriptor{});

    grb::Vector<double> rows(a.nrows());
    grb::reduce(rows, grb::no_mask, grb::NoAccum{}, grb::PlusMonoid<double>{},
                a, grb::Descriptor{});

    grb::Matrix<double> sq(a.nrows(), a.nrows());
    grb::mxm(sq, grb::no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a, at,
             grb::Descriptor{});

    std::vector<Index> wi, ri2, sqi, sqj;
    std::vector<double> wv, rv, sqv;
    w_out.extract_tuples(wi, wv);
    rows.extract_tuples(ri2, rv);
    std::vector<std::tuple<Index, Index, double>> sqt;
    sq.for_each([&](Index i, Index j, const double &x) {
      sqt.emplace_back(i, j, x);
    });
    std::sort(sqt.begin(), sqt.end());
    return std::make_tuple(wi, wv, ri2, rv, sqt);
  };

  auto r32 = run(grb::ForceIndexWidth::u32);
  auto r64 = run(grb::ForceIndexWidth::u64);
  EXPECT_EQ(std::get<0>(r32), std::get<0>(r64)) << "mxv index sets differ";
  EXPECT_EQ(std::get<1>(r32), std::get<1>(r64)) << "mxv values differ";
  EXPECT_EQ(std::get<2>(r32), std::get<2>(r64)) << "reduce index sets differ";
  EXPECT_EQ(std::get<3>(r32), std::get<3>(r64)) << "reduce values differ";
  EXPECT_EQ(std::get<4>(r32), std::get<4>(r64)) << "mxm results differ";
}

std::string width_param_name(
    const ::testing::TestParamInfo<WidthIdentity::ParamType> &info) {
  static const char *const kFmt[] = {"anyfmt", "sparse", "bitmap"};
  return "t" + std::to_string(std::get<0>(info.param)) + "_" +
         kFmt[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(ThreadsByFormat, WidthIdentity,
                         ::testing::Combine(::testing::Values(1, 4),
                                            ::testing::Values(0, 1, 2)),
                         width_param_name);

}  // namespace

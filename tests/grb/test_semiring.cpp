// Tests for the operator/monoid/semiring layer — each row of the paper's
// Table II has its semantics asserted here.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "grb/grb.hpp"

using grb::Index;

TEST(Ops, BinaryBasics) {
  EXPECT_EQ(grb::Plus{}(2, 3), 5);
  EXPECT_EQ(grb::Minus{}(2, 3), -1);
  EXPECT_EQ(grb::Times{}(2, 3), 6);
  EXPECT_EQ(grb::Div{}(6.0, 3.0), 2.0);
  EXPECT_EQ(grb::Min{}(2, 3), 2);
  EXPECT_EQ(grb::Max{}(2, 3), 3);
  EXPECT_EQ(grb::First{}(2, 3), 2);
  EXPECT_EQ(grb::Second{}(2, 3), 3);
  EXPECT_EQ(grb::Pair{}(17, 99), 1);  // pair(x,y) = 1, values ignored
}

TEST(Ops, Comparisons) {
  EXPECT_EQ(grb::Eq{}(3, 3), 1);
  EXPECT_EQ(grb::Ne{}(3, 3), 0);
  EXPECT_EQ(grb::Lt{}(2, 3), 1);
  EXPECT_EQ(grb::Ge{}(2, 3), 0);
}

TEST(Ops, UnaryBasics) {
  EXPECT_EQ(grb::Identity{}(5), 5);
  EXPECT_EQ(grb::AInv{}(5), -5);
  EXPECT_EQ(grb::Abs{}(-5), 5);
  EXPECT_EQ(grb::Abs{}(5u), 5u);
  EXPECT_EQ(grb::One{}(42), 1);
  EXPECT_EQ(grb::MInv{}(4.0), 0.25);
}

TEST(Ops, PositionalOps) {
  // In C = A ⊕.⊗ B the product a(i,k)·b(k,j) carries coordinates (i,k,j).
  EXPECT_EQ((grb::FirstI{}.operator()<Index>(7, 8, 9)), 7u);
  EXPECT_EQ((grb::FirstJ{}.operator()<Index>(7, 8, 9)), 8u);
  EXPECT_EQ((grb::SecondI{}.operator()<Index>(7, 8, 9)), 8u);
  EXPECT_EQ((grb::SecondJ{}.operator()<Index>(7, 8, 9)), 9u);
  static_assert(grb::is_positional_v<grb::SecondI>);
  static_assert(!grb::is_positional_v<grb::Second>);
}

TEST(Monoid, Identities) {
  EXPECT_EQ((grb::PlusMonoid<int>::identity()), 0);
  EXPECT_EQ((grb::TimesMonoid<int>::identity()), 1);
  EXPECT_EQ((grb::MinMonoid<int>::identity()), std::numeric_limits<int>::max());
  EXPECT_EQ((grb::MinMonoid<double>::identity()),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ((grb::MaxMonoid<double>::identity()),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ((grb::LOrMonoid<bool>::identity()), false);
}

TEST(Monoid, Terminals) {
  static_assert(!grb::PlusMonoid<int>::has_terminal);
  static_assert(grb::MinMonoid<int>::has_terminal);
  EXPECT_TRUE(grb::MinMonoid<int>::is_terminal(std::numeric_limits<int>::lowest()));
  EXPECT_FALSE(grb::MinMonoid<int>::is_terminal(0));
  EXPECT_TRUE(grb::LOrMonoid<int>::is_terminal(1));
  EXPECT_TRUE(grb::TimesMonoid<int>::is_terminal(0));
}

TEST(Monoid, AnyKeepsFirstAndIsAllTerminal) {
  grb::AnyMonoid<int> any;
  EXPECT_EQ(any(3, 9), 3);
  EXPECT_TRUE(grb::AnyMonoid<int>::is_terminal(42));
}

TEST(Semiring, ConventionalPlusTimes) {
  grb::PlusTimes<std::uint64_t> sr;
  EXPECT_EQ(sr.multiply(3u, 4u, 0, 0, 0), 12u);
  EXPECT_EQ(sr.add(3u, 4u), 7u);
}

TEST(Semiring, MinPlusPathLengths) {
  grb::MinPlus<double> sr;
  // ⊗ = plus computes the path length; ⊕ = min keeps the shortest.
  EXPECT_EQ(sr.multiply(2.0, 3.0, 0, 0, 0), 5.0);
  EXPECT_EQ(sr.add(5.0, 4.0), 4.0);
  EXPECT_EQ(grb::MinPlus<double>::add_monoid::identity(),
            std::numeric_limits<double>::infinity());
}

TEST(Semiring, PlusFirstCountsPaths) {
  grb::PlusFirst<std::uint64_t> sr;
  // first ignores the edge value: path counts propagate unchanged.
  EXPECT_EQ(sr.multiply(7u, 123u, 0, 0, 0), 7u);
}

TEST(Semiring, PlusSecondIgnoresEdgeWeightsFromLeft) {
  grb::PlusSecond<double> sr;
  EXPECT_EQ(sr.multiply(123.0, 0.5, 0, 0, 0), 0.5);
}

TEST(Semiring, PlusPairStructural) {
  grb::PlusPair<std::uint64_t> sr;
  EXPECT_EQ(sr.multiply(77u, 88u, 0, 0, 0), 1u);
}

TEST(Semiring, AnySecondIYieldsParentIndex) {
  grb::AnySecondI<std::uint64_t> sr;
  // The product of a(i,k)·b(k,j) is k — the id of the parent node.
  EXPECT_EQ(sr.multiply(1u, 1u, /*i=*/5, /*k=*/17, /*j=*/3), 17u);
  EXPECT_EQ(sr.add(17u, 99u), 17u);  // any keeps the first parent found
}

TEST(Semiring, MinSecondForFastSV) {
  grb::MinSecond<std::uint64_t> sr;
  EXPECT_EQ(sr.multiply(5u, 3u, 0, 0, 0), 3u);
  EXPECT_EQ(sr.add(3u, 2u), 2u);
}

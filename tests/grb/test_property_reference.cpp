// Property-based tests: every grb operation is checked against a brute-force
// dense reference model on randomized inputs, swept over sizes, densities,
// and seeds with parameterized gtest. The reference model stores explicit
// presence flags so structural semantics (union/intersection, masks,
// deletions) are modelled exactly.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <vector>

#include "grb/grb.hpp"

using grb::Index;
using grb::Matrix;
using grb::Vector;
using grb::no_mask;

namespace {

struct DenseVec {
  std::vector<bool> has;
  std::vector<double> val;
  explicit DenseVec(Index n) : has(n, false), val(n, 0.0) {}
  void set(Index i, double x) {
    has[i] = true;
    val[i] = x;
  }
};

struct DenseMat {
  Index m, n;
  std::vector<bool> has;
  std::vector<double> val;
  DenseMat(Index m_, Index n_)
      : m(m_), n(n_), has(m_ * n_, false), val(m_ * n_, 0.0) {}
  bool h(Index i, Index j) const { return has[i * n + j]; }
  double v(Index i, Index j) const { return val[i * n + j]; }
  void set(Index i, Index j, double x) {
    has[i * n + j] = true;
    val[i * n + j] = x;
  }
};

struct Params {
  Index size;
  double density;
  unsigned seed;
};

class PropertyTest : public ::testing::TestWithParam<Params> {
 protected:
  std::mt19937 rng{GetParam().seed};

  DenseVec random_vec(Index n, double density) {
    DenseVec d(n);
    std::uniform_real_distribution<double> u01(0.0, 1.0);
    std::uniform_int_distribution<int> uv(-5, 5);
    for (Index i = 0; i < n; ++i) {
      if (u01(rng) < density) d.set(i, uv(rng));
    }
    return d;
  }

  DenseMat random_mat(Index m, Index n, double density) {
    DenseMat d(m, n);
    std::uniform_real_distribution<double> u01(0.0, 1.0);
    std::uniform_int_distribution<int> uv(-5, 5);
    for (Index i = 0; i < m; ++i) {
      for (Index j = 0; j < n; ++j) {
        if (u01(rng) < density) d.set(i, j, uv(rng));
      }
    }
    return d;
  }

  static void set(DenseVec &d, Index i, double x) {
    d.has[i] = true;
    d.val[i] = x;
  }

  static Vector<double> lift(const DenseVec &d) {
    Vector<double> v(d.has.size());
    for (Index i = 0; i < d.has.size(); ++i) {
      if (d.has[i]) v.set_element(i, d.val[i]);
    }
    return v;
  }

  static Matrix<double> lift(const DenseMat &d) {
    Matrix<double> a(d.m, d.n);
    std::vector<Index> ri, ci;
    std::vector<double> vx;
    for (Index i = 0; i < d.m; ++i) {
      for (Index j = 0; j < d.n; ++j) {
        if (d.h(i, j)) {
          ri.push_back(i);
          ci.push_back(j);
          vx.push_back(d.v(i, j));
        }
      }
    }
    a.build(ri, ci, vx);
    return a;
  }

  static void expect_equal(const Vector<double> &got, const DenseVec &want) {
    ASSERT_EQ(got.size(), want.has.size());
    Index nv = 0;
    for (Index i = 0; i < want.has.size(); ++i) {
      if (want.has[i]) {
        ++nv;
        auto x = got.get(i);
        ASSERT_TRUE(x.has_value()) << "missing entry at " << i;
        EXPECT_DOUBLE_EQ(*x, want.val[i]) << "at " << i;
      } else {
        EXPECT_FALSE(got.has(i)) << "spurious entry at " << i;
      }
    }
    EXPECT_EQ(got.nvals(), nv);
  }

  static void expect_equal(const Matrix<double> &got, const DenseMat &want) {
    ASSERT_EQ(got.nrows(), want.m);
    ASSERT_EQ(got.ncols(), want.n);
    Index nv = 0;
    for (Index i = 0; i < want.m; ++i) {
      for (Index j = 0; j < want.n; ++j) {
        if (want.h(i, j)) {
          ++nv;
          auto x = got.get(i, j);
          ASSERT_TRUE(x.has_value()) << "missing (" << i << "," << j << ")";
          EXPECT_DOUBLE_EQ(*x, want.v(i, j));
        } else {
          EXPECT_FALSE(got.has(i, j)) << "spurious (" << i << "," << j << ")";
        }
      }
    }
    EXPECT_EQ(got.nvals(), nv);
  }
};

}  // namespace

TEST_P(PropertyTest, VxmMatchesReference) {
  const Index n = GetParam().size;
  auto du = random_vec(n, GetParam().density);
  auto da = random_mat(n, n, GetParam().density);
  auto u = lift(du);
  auto a = lift(da);

  DenseVec want(n);
  for (Index j = 0; j < n; ++j) {
    bool found = false;
    double acc = 0;
    for (Index k = 0; k < n; ++k) {
      if (du.has[k] && da.h(k, j)) {
        acc += du.val[k] * da.v(k, j);
        found = true;
      }
    }
    if (found) set(want, j, acc);
  }
  Vector<double> w(n);
  grb::vxm(w, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, u, a);
  expect_equal(w, want);
}

TEST_P(PropertyTest, MxvMatchesReference) {
  const Index n = GetParam().size;
  auto du = random_vec(n, GetParam().density);
  auto da = random_mat(n, n, GetParam().density);
  auto u = lift(du);
  auto a = lift(da);

  DenseVec want(n);
  for (Index i = 0; i < n; ++i) {
    bool found = false;
    double acc = 0;
    for (Index k = 0; k < n; ++k) {
      if (da.h(i, k) && du.has[k]) {
        acc += da.v(i, k) * du.val[k];
        found = true;
      }
    }
    if (found) set(want, i, acc);
  }
  Vector<double> w(n);
  grb::mxv(w, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a, u);
  expect_equal(w, want);
}

TEST_P(PropertyTest, MxvMinPlusMatchesReference) {
  const Index n = GetParam().size;
  auto du = random_vec(n, GetParam().density);
  auto da = random_mat(n, n, GetParam().density);
  auto u = lift(du);
  auto a = lift(da);

  DenseVec want(n);
  for (Index i = 0; i < n; ++i) {
    bool found = false;
    double acc = std::numeric_limits<double>::infinity();
    for (Index k = 0; k < n; ++k) {
      if (da.h(i, k) && du.has[k]) {
        acc = std::min(acc, da.v(i, k) + du.val[k]);
        found = true;
      }
    }
    if (found) set(want, i, acc);
  }
  Vector<double> w(n);
  grb::mxv(w, no_mask, grb::NoAccum{}, grb::MinPlus<double>{}, a, u);
  expect_equal(w, want);
}

TEST_P(PropertyTest, MxmMatchesReference) {
  const Index n = GetParam().size;
  auto da = random_mat(n, n, GetParam().density);
  auto db = random_mat(n, n, GetParam().density);
  auto a = lift(da);
  auto b = lift(db);

  DenseMat want(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      bool found = false;
      double acc = 0;
      for (Index k = 0; k < n; ++k) {
        if (da.h(i, k) && db.h(k, j)) {
          acc += da.v(i, k) * db.v(k, j);
          found = true;
        }
      }
      if (found) want.set(i, j, acc);
    }
  }
  Matrix<double> c(n, n);
  grb::mxm(c, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a, b);
  expect_equal(c, want);
}

TEST_P(PropertyTest, MxmDotWithMaskMatchesReference) {
  const Index n = GetParam().size;
  auto da = random_mat(n, n, GetParam().density);
  auto db = random_mat(n, n, GetParam().density);
  auto dm = random_mat(n, n, 0.3);
  auto a = lift(da);
  auto b = lift(db);
  auto m = lift(dm);

  DenseMat want(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (!dm.h(i, j)) continue;  // structural mask
      bool found = false;
      double acc = 0;
      for (Index k = 0; k < n; ++k) {
        if (da.h(i, k) && db.h(j, k)) {  // B transposed
          acc += da.v(i, k) * db.v(j, k);
          found = true;
        }
      }
      if (found) want.set(i, j, acc);
    }
  }
  Matrix<double> c(n, n);
  grb::mxm(c, m, grb::NoAccum{}, grb::PlusTimes<double>{}, a, b,
           grb::Descriptor{}.T1().S());
  expect_equal(c, want);
}

TEST_P(PropertyTest, EWiseAddMultMatchReference) {
  const Index n = GetParam().size;
  auto du = random_vec(n, GetParam().density);
  auto dv = random_vec(n, GetParam().density);
  auto u = lift(du);
  auto v = lift(dv);

  DenseVec wadd(n);
  DenseVec wmul(n);
  for (Index i = 0; i < n; ++i) {
    if (du.has[i] && dv.has[i]) {
      set(wadd, i, du.val[i] + dv.val[i]);
      set(wmul, i, du.val[i] * dv.val[i]);
    } else if (du.has[i]) {
      set(wadd, i, du.val[i]);
    } else if (dv.has[i]) {
      set(wadd, i, dv.val[i]);
    }
  }
  Vector<double> a(n);
  Vector<double> m(n);
  grb::eWiseAdd(a, no_mask, grb::NoAccum{}, grb::Plus{}, u, v);
  grb::eWiseMult(m, no_mask, grb::NoAccum{}, grb::Times{}, u, v);
  expect_equal(a, wadd);
  expect_equal(m, wmul);
}

TEST_P(PropertyTest, MaskedAccumulatedVxmMatchesReference) {
  const Index n = GetParam().size;
  auto du = random_vec(n, GetParam().density);
  auto da = random_mat(n, n, GetParam().density);
  auto dm = random_vec(n, 0.5);
  auto dw = random_vec(n, 0.4);
  auto u = lift(du);
  auto a = lift(da);
  auto m = lift(dm);
  auto w = lift(dw);

  for (int variant = 0; variant < 8; ++variant) {
    grb::Descriptor d;
    d.mask_structural = variant & 1;
    d.mask_complement = variant & 2;
    d.replace = variant & 4;

    // reference: t = u'A
    DenseVec t(n);
    for (Index j = 0; j < n; ++j) {
      bool found = false;
      double acc = 0;
      for (Index k = 0; k < n; ++k) {
        if (du.has[k] && da.h(k, j)) {
          acc += du.val[k] * da.v(k, j);
          found = true;
        }
      }
      if (found) set(t, j, acc);
    }
    // z = w (+) t on union
    DenseVec z(n);
    for (Index i = 0; i < n; ++i) {
      if (dw.has[i] && t.has[i]) {
        set(z, i, dw.val[i] + t.val[i]);
      } else if (dw.has[i]) {
        set(z, i, dw.val[i]);
      } else if (t.has[i]) {
        set(z, i, t.val[i]);
      }
    }
    // masked write
    DenseVec want(n);
    for (Index i = 0; i < n; ++i) {
      bool in_mask = dm.has[i] && (d.mask_structural || dm.val[i] != 0.0);
      if (d.mask_complement) in_mask = !in_mask;
      if (in_mask) {
        if (z.has[i]) set(want, i, z.val[i]);
      } else if (!d.replace && dw.has[i]) {
        set(want, i, dw.val[i]);
      }
    }
    Vector<double> got = w;
    grb::vxm(got, m, grb::Plus{}, grb::PlusTimes<double>{}, u, a, d);
    expect_equal(got, want);
  }
}

TEST_P(PropertyTest, TransposeRoundTrip) {
  const Index n = GetParam().size;
  auto da = random_mat(n, n, GetParam().density);
  auto a = lift(da);
  auto at = grb::transposed(a);
  DenseMat want(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (da.h(i, j)) want.set(j, i, da.v(i, j));
    }
  }
  expect_equal(at, want);
  EXPECT_EQ(grb::transposed(at), a);
}

TEST_P(PropertyTest, SelectPartitionsEntries) {
  const Index n = GetParam().size;
  auto du = random_vec(n, GetParam().density);
  auto u = lift(du);
  Vector<double> lo(n);
  Vector<double> hi(n);
  grb::select(lo, no_mask, grb::NoAccum{}, grb::ValueLt{}, u, 0.0);
  grb::select(hi, no_mask, grb::NoAccum{}, grb::ValueGe{}, u, 0.0);
  EXPECT_EQ(lo.nvals() + hi.nvals(), u.nvals());
  lo.for_each([&](Index, const double &x) { EXPECT_LT(x, 0.0); });
  hi.for_each([&](Index, const double &x) { EXPECT_GE(x, 0.0); });
}

TEST_P(PropertyTest, ReduceRowwiseMatchesScalarReduce) {
  const Index n = GetParam().size;
  auto da = random_mat(n, n, GetParam().density);
  auto a = lift(da);
  Vector<double> rows(n);
  grb::reduce(rows, no_mask, grb::NoAccum{}, grb::PlusMonoid<double>{}, a);
  double via_rows = 0;
  grb::reduce(via_rows, grb::NoAccum{}, grb::PlusMonoid<double>{}, rows);
  double direct = 0;
  grb::reduce(direct, grb::NoAccum{}, grb::PlusMonoid<double>{}, a);
  EXPECT_DOUBLE_EQ(via_rows, direct);
}

TEST_P(PropertyTest, ExtractAssignRoundTrip) {
  const Index n = GetParam().size;
  auto du = random_vec(n, GetParam().density);
  auto u = lift(du);
  // extract even positions then assign them back into an empty vector:
  // the result must equal u restricted to even positions.
  std::vector<Index> evens;
  for (Index i = 0; i < n; i += 2) evens.push_back(i);
  Vector<double> sub(evens.size());
  grb::extract(sub, no_mask, grb::NoAccum{}, u, grb::Indices(evens));
  Vector<double> back(n);
  grb::assign(back, no_mask, grb::NoAccum{}, sub, grb::Indices(evens));
  for (Index i = 0; i < n; ++i) {
    if (i % 2 == 0 && du.has[i]) {
      EXPECT_EQ(back.get(i), du.val[i]);
    } else {
      EXPECT_FALSE(back.has(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PropertyTest,
    ::testing::Values(Params{8, 0.3, 1}, Params{8, 0.8, 2}, Params{17, 0.1, 3},
                      Params{17, 0.5, 4}, Params{33, 0.05, 5},
                      Params{33, 0.25, 6}, Params{64, 0.02, 7},
                      Params{64, 0.15, 8}, Params{5, 1.0, 9},
                      Params{41, 0.4, 10}),
    [](const ::testing::TestParamInfo<Params> &info) {
      return "n" + std::to_string(info.param.size) + "_seed" +
             std::to_string(info.param.seed);
    });

TEST_P(PropertyTest, MatrixExtractMatchesReference) {
  const Index n = GetParam().size;
  auto da = random_mat(n, n, GetParam().density);
  auto a = lift(da);
  // pick every third row and every second column, reversed
  std::vector<Index> rows, cols;
  for (Index i = 0; i < n; i += 3) rows.push_back(i);
  for (Index j = n; j-- > 0;) {
    if (j % 2 == 0) cols.push_back(j);
  }
  DenseMat want(rows.size(), cols.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      if (da.h(rows[r], cols[c])) want.set(r, c, da.v(rows[r], cols[c]));
    }
  }
  grb::Matrix<double> got(rows.size(), cols.size());
  grb::extract(got, no_mask, grb::NoAccum{}, a, grb::Indices(rows),
               grb::Indices(cols));
  expect_equal(got, want);
}

TEST_P(PropertyTest, MatrixAssignMatchesReference) {
  const Index n = GetParam().size;
  auto dc = random_mat(n, n, GetParam().density);
  const Index k = n / 2 + 1;
  auto ds = random_mat(k, k, 0.5);
  auto c = lift(dc);
  auto s = lift(ds);
  std::vector<Index> rows, cols;
  for (Index i = 0; i < k; ++i) rows.push_back(n - 1 - i);  // reversed block
  for (Index j = 0; j < k; ++j) cols.push_back(j);
  // reference: inside the region, source content replaces (deleting where
  // the source has no entry); outside, old content survives.
  DenseMat want = dc;
  for (Index r = 0; r < k; ++r) {
    for (Index cc = 0; cc < k; ++cc) {
      auto p = rows[r] * n + cols[cc];
      want.has[p] = ds.h(r, cc);
      want.val[p] = ds.v(r, cc);
    }
  }
  grb::assign(c, no_mask, grb::NoAccum{}, s, grb::Indices(rows),
              grb::Indices(cols));
  expect_equal(c, want);
}

TEST_P(PropertyTest, MatrixScalarAssignWithMaskMatchesReference) {
  const Index n = GetParam().size;
  auto dc = random_mat(n, n, GetParam().density);
  auto dm = random_mat(n, n, 0.4);
  auto c = lift(dc);
  auto m = lift(dm);
  DenseMat want = dc;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      bool in_mask = dm.h(i, j) && dm.v(i, j) != 0.0;  // valued mask
      if (in_mask) want.set(i, j, 7.5);
    }
  }
  grb::assign(c, m, grb::NoAccum{}, 7.5, grb::Indices::all(),
              grb::Indices::all());
  expect_equal(c, want);
}

TEST_P(PropertyTest, MatrixApplySelectComposeToIdentity) {
  const Index n = GetParam().size;
  auto da = random_mat(n, n, GetParam().density);
  auto a = lift(da);
  // split by sign with select, negate the negative part, recombine
  grb::Matrix<double> neg(n, n);
  grb::Matrix<double> nonneg(n, n);
  grb::select(neg, no_mask, grb::NoAccum{}, grb::ValueLt{}, a, 0.0);
  grb::select(nonneg, no_mask, grb::NoAccum{}, grb::ValueGe{}, a, 0.0);
  EXPECT_EQ(neg.nvals() + nonneg.nvals(), a.nvals());
  grb::Matrix<double> back(n, n);
  grb::eWiseAdd(back, no_mask, grb::NoAccum{}, grb::Plus{}, neg, nonneg);
  expect_equal(back, da);
}

TEST_P(PropertyTest, KroneckerMatchesReference) {
  const Index n = std::min<Index>(GetParam().size, 12);  // keep n² small
  auto da = random_mat(n, n, GetParam().density);
  auto db = random_mat(3, 3, 0.6);
  auto a = lift(da);
  auto b = lift(db);
  DenseMat want(n * 3, n * 3);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (!da.h(i, j)) continue;
      for (Index k = 0; k < 3; ++k) {
        for (Index l = 0; l < 3; ++l) {
          if (!db.h(k, l)) continue;
          want.set(i * 3 + k, j * 3 + l, da.v(i, j) * db.v(k, l));
        }
      }
    }
  }
  grb::Matrix<double> c(n * 3, n * 3);
  grb::kronecker(c, no_mask, grb::NoAccum{}, grb::Times{}, a, b);
  expect_equal(c, want);
}

TEST_P(PropertyTest, ZombiesAndPendingAgreeWithRebuild) {
  const Index n = GetParam().size;
  auto da = random_mat(n, n, GetParam().density);
  auto a = lift(da);
  std::mt19937 rng(GetParam().seed ^ 0xdead);
  std::uniform_int_distribution<Index> uv(0, n - 1);
  // random interleaving of sets and removes, mirrored on the dense model
  DenseMat want = da;
  for (int op = 0; op < 40; ++op) {
    Index i = uv(rng);
    Index j = uv(rng);
    if (op % 3 == 0) {
      a.remove_element(i, j);
      want.has[i * n + j] = false;
    } else {
      double x = double(op);
      a.set_element(i, j, x);
      want.set(i, j, x);
    }
  }
  expect_equal(a, want);
}

// grb::trace test suite (ctest labels "obs" and "concurrency").
//
// Pins the observability layer's contracts:
//   - ring-buffer wraparound keeps the newest kRingCapacity spans per thread;
//   - span nesting records per-thread depth;
//   - disabled tracing (the default) leases no ring and records nothing —
//     the zero-allocation contract, observable through ring_count();
//   - sampling keeps roughly 1/N of the spans;
//   - collect() runs concurrently with writers (the TSan target: build with
//     -DLAGRAPH_SANITIZE=thread and run ctest -L obs);
//   - histograms bucket by floor(log2), percentiles interpolate;
//   - calibration fits ns-per-cost and ranks mispredictions;
//   - Chrome trace JSON export is well-formed and carries the span args;
//   - Stats::snapshot() returns a plain copy readable without atomics.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "grb/grb.hpp"

namespace {

using grb::trace::Span;
using grb::trace::SpanKind;

// Enable tracing for one test, restore the disabled default after.
struct TraceGuard {
  explicit TraceGuard(std::uint32_t every) {
    grb::config().trace_sample_every = every;
    grb::trace::reset();
  }
  ~TraceGuard() {
    grb::config().trace_sample_every = 0;
    grb::trace::reset();
  }
};

std::vector<Span> spans_of(SpanKind k) {
  std::vector<Span> out;
  for (const Span &s : grb::trace::collect()) {
    if (s.kind == k) out.push_back(s);
  }
  return out;
}

TEST(Trace, DisabledModeLeasesNoRing) {
  ASSERT_EQ(grb::config().trace_sample_every, 0u);
  const std::size_t rings_before = grb::trace::ring_count();
  // A fresh thread leases a ring only on its first *recorded* span; with
  // tracing disabled it must never lease one, no matter how many spans run.
  std::thread t([] {
    for (int i = 0; i < 1000; ++i) {
      grb::trace::ScopedSpan sp(SpanKind::mxv);
      sp.set_in_nvals(1);
      sp.set_out_nvals(1);
    }
  });
  t.join();
  EXPECT_EQ(grb::trace::ring_count(), rings_before);
  EXPECT_TRUE(grb::trace::collect().empty());
  EXPECT_EQ(grb::trace::op_histogram(SpanKind::mxv).count(), 0u);
}

TEST(Trace, RecordsSpanFields) {
  TraceGuard guard(1);
  {
    grb::trace::ScopedSpan sp(SpanKind::bfs_level);
    sp.set_iter(7);
    sp.set_in_nvals(123);
    sp.set_out_nvals(456);
    sp.set_threads(3);
    sp.set_extra(2.5);
    sp.set_direction(grb::plan::Direction::pull);
  }
  auto got = spans_of(SpanKind::bfs_level);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].iter, 7);
  EXPECT_EQ(got[0].in_nvals, 123u);
  EXPECT_EQ(got[0].out_nvals, 456u);
  EXPECT_EQ(got[0].threads, 3);
  EXPECT_DOUBLE_EQ(got[0].extra, 2.5);
  EXPECT_EQ(got[0].direction,
            static_cast<std::uint8_t>(grb::plan::Direction::pull));
  EXPECT_EQ(grb::trace::op_histogram(SpanKind::bfs_level).count(), 1u);
}

TEST(Trace, RingWraparoundKeepsNewest) {
  TraceGuard guard(1);
  const int total = static_cast<int>(grb::trace::kRingCapacity) + 1000;
  for (int i = 0; i < total; ++i) {
    grb::trace::ScopedSpan sp(SpanKind::apply);
    sp.set_iter(i);
  }
  auto got = spans_of(SpanKind::apply);
  EXPECT_EQ(got.size(), grb::trace::kRingCapacity);
  std::int64_t min_iter = total;
  std::int64_t max_iter = -1;
  for (const Span &s : got) {
    min_iter = std::min(min_iter, s.iter);
    max_iter = std::max(max_iter, s.iter);
  }
  // The newest span survives; everything older than capacity was overwritten.
  EXPECT_EQ(max_iter, total - 1);
  EXPECT_EQ(min_iter, total - static_cast<std::int64_t>(
                                  grb::trace::kRingCapacity));
  // The histogram saw every span regardless of ring eviction.
  EXPECT_EQ(grb::trace::op_histogram(SpanKind::apply).count(),
            static_cast<std::uint64_t>(total));
}

TEST(Trace, NestedSpansRecordDepth) {
  TraceGuard guard(1);
  {
    grb::trace::ScopedSpan outer(SpanKind::bfs_level);
    outer.set_iter(1);
    {
      grb::trace::ScopedSpan inner(SpanKind::vxm);
      inner.set_in_nvals(9);
      grb::trace::ScopedSpan inner2(SpanKind::reduce);
    }
  }
  auto all = grb::trace::collect();
  ASSERT_EQ(all.size(), 3u);
  // collect() sorts parents before children: by start time, longer first.
  EXPECT_EQ(all[0].kind, SpanKind::bfs_level);
  EXPECT_EQ(all[0].depth, 0);
  for (const Span &s : all) {
    if (s.kind == SpanKind::vxm) {
      EXPECT_EQ(s.depth, 1);
    }
    if (s.kind == SpanKind::reduce) {
      EXPECT_EQ(s.depth, 2);
    }
  }
}

TEST(Trace, SamplingRecordsEveryNth) {
  TraceGuard guard(4);
  // The per-thread tick phase is unknown (other tests may have advanced
  // it), so run on a fresh thread where the count is exact.
  std::thread t([] {
    for (int i = 0; i < 400; ++i) {
      grb::trace::ScopedSpan sp(SpanKind::select);
      sp.set_iter(i);
    }
  });
  t.join();
  EXPECT_EQ(spans_of(SpanKind::select).size(), 100u);
}

TEST(Trace, ResetDiscardsSpansAndHistograms) {
  TraceGuard guard(1);
  for (int i = 0; i < 32; ++i) {
    grb::trace::ScopedSpan sp(SpanKind::transpose);
  }
  ASSERT_FALSE(grb::trace::collect().empty());
  grb::trace::reset();
  EXPECT_TRUE(grb::trace::collect().empty());
  EXPECT_EQ(grb::trace::op_histogram(SpanKind::transpose).count(), 0u);
  // Recording keeps working after a reset.
  { grb::trace::ScopedSpan sp(SpanKind::transpose); }
  EXPECT_EQ(grb::trace::collect().size(), 1u);
}

TEST(Trace, ConcurrentWritersAndCollector) {
  TraceGuard guard(1);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 20000;
  std::atomic<bool> stop{false};
  std::atomic<int> done{0};

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        grb::trace::ScopedSpan sp(SpanKind::ewise_add);
        sp.set_iter(i);
        sp.set_in_nvals(static_cast<std::uint64_t>(w));
        grb::trace::ScopedSpan inner(SpanKind::ewise_mult);
        inner.set_out_nvals(static_cast<std::uint64_t>(i));
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }
  // Hammer collect() while the writers run: every returned span must be
  // internally consistent (never torn) even though rings are wrapping.
  std::thread collector([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const Span &s : grb::trace::collect()) {
        ASSERT_TRUE(s.kind == SpanKind::ewise_add ||
                    s.kind == SpanKind::ewise_mult);
        ASSERT_LT(s.in_nvals, static_cast<std::uint64_t>(kThreads));
        ASSERT_LT(s.iter, kSpansPerThread);
      }
    }
  });
  for (auto &w : writers) w.join();
  stop.store(true, std::memory_order_release);
  collector.join();

  EXPECT_EQ(done.load(), kThreads);
  // Histograms counted every span exactly once.
  EXPECT_EQ(grb::trace::op_histogram(SpanKind::ewise_add).count(),
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(grb::trace::op_histogram(SpanKind::ewise_mult).count(),
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
}

TEST(Trace, HistogramBucketsAndPercentiles) {
  grb::trace::Histogram h;
  // Bucket b covers [2^b, 2^(b+1)): 1 → bucket 0, 2..3 → bucket 1,
  // 1024..2047 → bucket 10.
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(1024);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum_ns(), 1030u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(10), 1u);
  // p100 lands in the top occupied bucket; p25 in the bottom one.
  EXPECT_LE(h.percentile_ns(25), 2.0);
  EXPECT_GE(h.percentile_ns(100), 1024.0);
  EXPECT_LE(h.percentile_ns(100),
            static_cast<double>(grb::trace::Histogram::bucket_upper_ns(10)) +
                1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile_ns(50), 0.0);
}

TEST(Trace, CalibrationRanksMispredictions) {
  std::vector<Span> spans;
  // Nine well-predicted spans at 100 ns per cost unit, one 8x outlier.
  for (int i = 0; i < 9; ++i) {
    Span s;
    s.kind = SpanKind::mxv;
    s.predicted_cost = 10.0;
    s.dur_ns = 1000;
    spans.push_back(s);
  }
  Span bad;
  bad.kind = SpanKind::vxm;
  bad.iter = 3;
  bad.predicted_cost = 10.0;
  bad.dur_ns = 8000;
  spans.push_back(bad);

  auto report = grb::trace::calibrate(spans, 5);
  EXPECT_EQ(report.samples, 10u);
  EXPECT_NEAR(report.ns_per_cost, 100.0, 1.0);
  ASSERT_FALSE(report.worst.empty());
  EXPECT_EQ(report.worst[0].kind, SpanKind::vxm);
  EXPECT_NEAR(report.worst[0].ratio, 8.0, 0.1);
  EXPECT_FALSE(report.text().empty());
}

TEST(Trace, ChromeTraceExport) {
  TraceGuard guard(1);
  {
    grb::trace::ScopedSpan sp(SpanKind::bfs_level);
    sp.set_iter(2);
    sp.set_in_nvals(77);
    sp.set_direction(grb::plan::Direction::pull);
  }
  {
    grb::trace::ScopedSpan sp(SpanKind::mxv);
    sp.set_in_nvals(5);
  }
  std::ostringstream os;
  grb::trace::write_chrome_trace(os, grb::trace::collect());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"bfs_level\""), std::string::npos);
  EXPECT_NE(json.find("\"frontier\":77"), std::string::npos);
  EXPECT_NE(json.find("\"direction\":\"pull\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mxv\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces/brackets — cheap structural validity (the check.sh
  // smoke test parses the real file with Python's json module).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// Pin num_threads = 1 for the section under test: the stress/obs binary
// also runs under TSan, where libgomp is not instrumented.
struct ThreadGuard {
  explicit ThreadGuard(int n) { grb::config().num_threads = n; }
  ~ThreadGuard() { grb::config().num_threads = 0; }
};

TEST(Trace, KernelsRecordSpansWithPlans) {
  TraceGuard guard(1);
  ThreadGuard tg(1);
  const grb::Index n = 64;
  grb::Matrix<double> a(n, n);
  for (grb::Index i = 0; i < n; ++i) {
    a.set_element(i, (i + 1) % n, 1.0);
    a.set_element(i, (i + 7) % n, 1.0);
  }
  a.finalize();
  grb::trace::reset();  // drop the build/finalize spans

  grb::Vector<double> u(n);
  u.set_element(0, 1.0);
  grb::Vector<double> w(n);
  grb::vxm(w, grb::no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, u, a);

  auto got = spans_of(SpanKind::vxm);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].in_nvals, 1u);
  EXPECT_EQ(got[0].out_nvals, 2u);
  EXPECT_GT(got[0].dur_ns, 0u);
  EXPECT_GT(got[0].predicted_cost, 0.0);
}

TEST(StatsSnapshot, MatchesLiveCountersAndVisitsAll) {
  grb::Stats &st = grb::stats();
  const std::uint64_t before = st.push_calls.load();
  st.push_calls.fetch_add(3, std::memory_order_relaxed);
  grb::StatsSnapshot snap = st.snapshot();
  EXPECT_EQ(snap.push_calls, before + 3);

  int visited = 0;
  bool saw_push_calls = false;
  snap.for_each([&](const char *name, std::uint64_t v) {
    ++visited;
    if (std::string(name) == "push_calls") {
      saw_push_calls = true;
      EXPECT_EQ(v, before + 3);
    }
  });
  EXPECT_TRUE(saw_push_calls);
  // Every counter in grb::Stats must be visited; update for_each when
  // adding one.
  EXPECT_EQ(visited, 27);
  st.push_calls.fetch_sub(3, std::memory_order_relaxed);
}

TEST(Trace, RequestScopeStampsSpans) {
  TraceGuard guard(1);
  // Outside any scope, spans carry request id 0.
  { grb::trace::ScopedSpan sp(SpanKind::mxv); }
  {
    grb::trace::RequestScope scope(42, 3);
    EXPECT_EQ(grb::trace::current_request_id(), 42u);
    { grb::trace::ScopedSpan sp(SpanKind::bfs_level); }
    {
      // Nesting: the inner scope wins while open, the outer is restored.
      grb::trace::RequestScope inner(43);
      { grb::trace::ScopedSpan sp(SpanKind::vxm); }
      EXPECT_EQ(inner.spans_recorded(), 1u);
    }
    EXPECT_EQ(grb::trace::current_request_id(), 42u);
    { grb::trace::ScopedSpan sp(SpanKind::ewise_add); }
    EXPECT_EQ(scope.spans_recorded(), 3u);  // includes the nested span
  }
  EXPECT_EQ(grb::trace::current_request_id(), 0u);

  std::uint64_t id0 = 99, id42 = 0, id43 = 0;
  std::uint32_t members42 = 0;
  for (const Span &s : grb::trace::collect()) {
    if (s.kind == SpanKind::mxv) id0 = s.request_id;
    if (s.kind == SpanKind::bfs_level) {
      id42 = s.request_id;
      members42 = s.batch_members;
    }
    if (s.kind == SpanKind::vxm) id43 = s.request_id;
  }
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id42, 42u);
  EXPECT_EQ(members42, 3u);
  EXPECT_EQ(id43, 43u);
}

// Format lint for the exposition helpers: one # HELP + # TYPE per family
// (in that order, before any sample), samples parse, label values escape.
TEST(Trace, PrometheusHistogramFormat) {
  grb::trace::Histogram h;
  h.record(100);
  h.record(2000);

  std::ostringstream os;
  grb::trace::write_prometheus_histogram(
      os, "demo_seconds", grb::trace::prometheus_label("kind", "bfs"), h,
      /*with_type_header=*/true, "Demo histogram.");
  grb::trace::write_prometheus_histogram(
      os, "demo_seconds", grb::trace::prometheus_label("kind", "sssp"), h,
      /*with_type_header=*/false);
  const std::string text = os.str();

  // Exactly one HELP and one TYPE for the family, HELP first.
  auto count_of = [&](const std::string &needle) {
    std::size_t n = 0;
    for (std::size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_of("# HELP demo_seconds "), 1u);
  EXPECT_EQ(count_of("# TYPE demo_seconds histogram"), 1u);
  EXPECT_LT(text.find("# HELP demo_seconds"),
            text.find("# TYPE demo_seconds"));
  EXPECT_LT(text.find("# TYPE demo_seconds"),
            text.find("demo_seconds_bucket"));
  // Both label sets emitted samples; +Inf bucket and _count/_sum present.
  EXPECT_NE(text.find("kind=\"bfs\""), std::string::npos);
  EXPECT_NE(text.find("kind=\"sssp\""), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_EQ(count_of("demo_seconds_count"), 2u);
  EXPECT_EQ(count_of("demo_seconds_sum"), 2u);

  // Label escaping: backslash, quote, newline are the three specials.
  EXPECT_EQ(grb::trace::prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(grb::trace::prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(grb::trace::prometheus_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(grb::trace::prometheus_escape_label("a\nb"), "a\\nb");
  EXPECT_EQ(grb::trace::prometheus_label("op", "x\"y"), "op=\"x\\\"y\"");
}

}  // namespace

// Tests for mxm: Gustavson kernel, masked dot kernel (transposed B),
// lazy-sort behaviour of the saxpy result, and the fused mxm+reduce kernel.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "grb/grb.hpp"

using grb::Index;
using grb::Matrix;
using grb::no_mask;

namespace {

Matrix<double> dense2x2(double a, double b, double c, double d) {
  Matrix<double> m(2, 2);
  std::vector<Index> ri = {0, 0, 1, 1};
  std::vector<Index> ci = {0, 1, 0, 1};
  std::vector<double> vx = {a, b, c, d};
  m.build(ri, ci, vx);
  return m;
}

// Undirected triangle plus a tail: 0-1, 0-2, 1-2, 2-3 (symmetric).
Matrix<std::uint64_t> triangle_graph() {
  Matrix<std::uint64_t> a(4, 4);
  std::vector<Index> ri = {0, 0, 1, 1, 2, 2, 2, 3};
  std::vector<Index> ci = {1, 2, 0, 2, 0, 1, 3, 2};
  std::vector<std::uint64_t> vx(8, 1);
  a.build(ri, ci, vx);
  return a;
}

}  // namespace

TEST(Mxm, DenseConventional) {
  auto a = dense2x2(1, 2, 3, 4);
  auto b = dense2x2(5, 6, 7, 8);
  Matrix<double> c(2, 2);
  grb::mxm(c, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a, b);
  EXPECT_EQ(c.get(0, 0), 19.0);
  EXPECT_EQ(c.get(0, 1), 22.0);
  EXPECT_EQ(c.get(1, 0), 43.0);
  EXPECT_EQ(c.get(1, 1), 50.0);
}

TEST(Mxm, SparseStructure) {
  // A: 0->1; B: 1->2 — product has a single entry (0,2).
  Matrix<double> a(3, 3);
  Matrix<double> b(3, 3);
  {
    std::vector<Index> ri = {0};
    std::vector<Index> ci = {1};
    std::vector<double> vx = {2.0};
    a.build(ri, ci, vx);
  }
  {
    std::vector<Index> ri = {1};
    std::vector<Index> ci = {2};
    std::vector<double> vx = {3.0};
    b.build(ri, ci, vx);
  }
  Matrix<double> c(3, 3);
  grb::mxm(c, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a, b);
  EXPECT_EQ(c.nvals(), 1u);
  EXPECT_EQ(c.get(0, 2), 6.0);
}

TEST(Mxm, TransposeDescriptorsMatchExplicitTranspose) {
  auto a = dense2x2(1, 2, 3, 4);
  auto b = dense2x2(5, 6, 7, 8);
  auto at = grb::transposed(a);
  auto bt = grb::transposed(b);

  Matrix<double> c_ref(2, 2);
  grb::mxm(c_ref, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, at, bt);

  Matrix<double> c1(2, 2);
  grb::mxm(c1, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a, b,
           grb::Descriptor{}.T0().T1());
  EXPECT_EQ(c_ref, c1);

  Matrix<double> c2(2, 2);
  grb::mxm(c2, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a, bt,
           grb::desc::T0);
  EXPECT_EQ(c_ref, c2);
}

TEST(Mxm, MaskedDotKernelTriangleCount) {
  // The TC step: C⟨s(L)⟩ = L plus.pair Uᵀ; sum(C) = number of triangles.
  auto a = triangle_graph();
  Matrix<std::uint64_t> l(4, 4);
  Matrix<std::uint64_t> u(4, 4);
  grb::select(l, no_mask, grb::NoAccum{}, grb::Tril{}, a, std::uint64_t(-1));
  grb::select(u, no_mask, grb::NoAccum{}, grb::Triu{}, a, std::uint64_t(1));
  Matrix<std::uint64_t> c(4, 4);
  grb::mxm(c, l, grb::NoAccum{}, grb::PlusPair<std::uint64_t>{}, l, u,
           grb::Descriptor{}.T1().S());
  std::uint64_t total = 0;
  grb::reduce(total, grb::NoAccum{}, grb::PlusMonoid<std::uint64_t>{}, c);
  EXPECT_EQ(total, 1u);
}

TEST(Mxm, FusedReduceMatchesUnfused) {
  auto a = triangle_graph();
  Matrix<std::uint64_t> l(4, 4);
  Matrix<std::uint64_t> u(4, 4);
  grb::select(l, no_mask, grb::NoAccum{}, grb::Tril{}, a, std::uint64_t(-1));
  grb::select(u, no_mask, grb::NoAccum{}, grb::Triu{}, a, std::uint64_t(1));
  auto fused = grb::mxm_reduce_scalar<std::uint64_t>(
      grb::PlusMonoid<std::uint64_t>{}, l, grb::PlusPair<std::uint64_t>{}, l,
      u, grb::Descriptor{}.T1().S());
  EXPECT_EQ(fused, 1u);
}

TEST(Mxm, ComplementedMaskDotComputesUnvisitedPairs) {
  // BC pull shape: compute products only at positions NOT in the mask.
  auto a = dense2x2(1, 1, 1, 1);
  Matrix<grb::Bool> p(2, 2);
  p.set_element(0, 0, true);
  p.set_element(1, 1, true);
  Matrix<double> c(2, 2);
  grb::mxm(c, p, grb::NoAccum{}, grb::PlusTimes<double>{}, a, a,
           grb::Descriptor{}.T1().S().C());
  EXPECT_EQ(c.nvals(), 2u);
  EXPECT_TRUE(c.get(0, 1).has_value());
  EXPECT_TRUE(c.get(1, 0).has_value());
  EXPECT_FALSE(c.get(0, 0).has_value());
}

TEST(Mxm, GustavsonLeavesResultJumbledUnderLazySort) {
  grb::config().lazy_sort = true;
  // Rows of the product touch columns out of order when A's row order and
  // B's structure disagree; the result must still read back correctly.
  Matrix<double> a(1, 3);
  {
    std::vector<Index> ri = {0, 0};
    std::vector<Index> ci = {1, 2};
    std::vector<double> vx = {1.0, 1.0};
    a.build(ri, ci, vx);
  }
  Matrix<double> b(3, 3);
  {
    std::vector<Index> ri = {1, 2};
    std::vector<Index> ci = {2, 0};
    std::vector<double> vx = {1.0, 1.0};
    b.build(ri, ci, vx);
  }
  Matrix<double> c(1, 3);
  grb::mxm(c, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{}, a, b);
  // Row 0 of C touches column 2 (via k=1) then column 0 (via k=2): jumbled.
  EXPECT_TRUE(c.jumbled());
  EXPECT_EQ(c.get(0, 0), 1.0);  // forces the deferred sort
  EXPECT_EQ(c.get(0, 2), 1.0);
  EXPECT_FALSE(c.jumbled());
}

TEST(Mxm, AccumulatorAddsToExisting) {
  auto a = dense2x2(1, 0, 0, 1);  // identity-ish (explicit zeros)
  Matrix<double> c(2, 2);
  c.set_element(0, 0, 10.0);
  grb::mxm(c, no_mask, grb::Plus{}, grb::PlusTimes<double>{}, a, a);
  EXPECT_EQ(c.get(0, 0), 11.0);
}

TEST(Mxm, DimensionMismatchThrows) {
  Matrix<double> a(2, 3);
  Matrix<double> b(2, 2);
  Matrix<double> c(2, 2);
  EXPECT_THROW(grb::mxm(c, no_mask, grb::NoAccum{}, grb::PlusTimes<double>{},
                        a, b),
               grb::Exception);
}

TEST(Mxm, AnyPairEarlyExitReachability) {
  // any.pair gives plain reachability with early exit; compare against
  // plus.pair structure.
  auto a = triangle_graph();
  Matrix<std::uint64_t> c1(4, 4);
  Matrix<std::uint64_t> c2(4, 4);
  grb::mxm(c1, no_mask, grb::NoAccum{}, grb::AnyPair<std::uint64_t>{}, a, a);
  grb::mxm(c2, no_mask, grb::NoAccum{}, grb::PlusPair<std::uint64_t>{}, a, a);
  ASSERT_EQ(c1.nvals(), c2.nvals());
  c1.for_each([&](Index i, Index j, const std::uint64_t &x) {
    EXPECT_EQ(x, 1u);
    EXPECT_TRUE(c2.get(i, j).has_value());
  });
}

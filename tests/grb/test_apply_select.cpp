// Tests for apply (unary, bound binary) and select (index-unary predicates).
#include <gtest/gtest.h>

#include <vector>

#include "grb/grb.hpp"

using grb::Index;
using grb::Matrix;
using grb::Vector;
using grb::no_mask;

TEST(Apply, UnaryAbs) {
  Vector<double> u(4);
  u.set_element(0, -2.0);
  u.set_element(2, 3.0);
  Vector<double> w(4);
  grb::apply(w, no_mask, grb::NoAccum{}, grb::Abs{}, u);
  EXPECT_EQ(w.get(0), 2.0);
  EXPECT_EQ(w.get(2), 3.0);
}

TEST(Apply, PreservesStructure) {
  Vector<int> u(10);
  u.set_element(3, 7);
  Vector<int> w(10);
  grb::apply(w, no_mask, grb::NoAccum{}, grb::One{}, u);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.get(3), 1);
}

TEST(Apply, Bind2ndDivScalesVector) {
  // PR's prescale: d = d_out / damping.
  Vector<double> u(3);
  u.set_element(0, 4.0);
  u.set_element(1, 8.0);
  Vector<double> w(3);
  grb::apply2nd(w, no_mask, grb::NoAccum{}, grb::Div{}, u, 2.0);
  EXPECT_EQ(w.get(0), 2.0);
  EXPECT_EQ(w.get(1), 4.0);
}

TEST(Apply, Bind1st) {
  Vector<double> u(3);
  u.set_element(0, 4.0);
  Vector<double> w(3);
  grb::apply1st(w, no_mask, grb::NoAccum{}, grb::Minus{}, 10.0, u);
  EXPECT_EQ(w.get(0), 6.0);
}

TEST(Apply, MatrixUnaryOneGivesPattern) {
  Matrix<double> a(2, 2);
  a.set_element(0, 1, 3.5);
  a.set_element(1, 0, -2.0);
  Matrix<grb::Bool> p(2, 2);
  grb::apply(p, no_mask, grb::NoAccum{}, grb::One{}, a);
  EXPECT_EQ(p.nvals(), 2u);
  EXPECT_EQ(p.get(0, 1), true);
  EXPECT_EQ(p.get(1, 0), true);
}

TEST(Apply, WithMaskAndAccum) {
  Vector<double> u(3);
  u.set_element(0, 1.0);
  u.set_element(1, 2.0);
  Vector<grb::Bool> m(3);
  m.set_element(1, true);
  Vector<double> w(3);
  w.set_element(1, 10.0);
  grb::apply(w, m, grb::Plus{}, grb::Identity{}, u);
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.get(1), 12.0);
}

TEST(Select, ValueThresholds) {
  Vector<double> u(5);
  for (Index i = 0; i < 5; ++i) u.set_element(i, double(i));
  Vector<double> w(5);
  grb::select(w, no_mask, grb::NoAccum{}, grb::ValueGe{}, u, 3.0);
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_TRUE(w.has(3));
  EXPECT_TRUE(w.has(4));
  grb::select(w, no_mask, grb::NoAccum{}, grb::ValueLt{}, u, 2.0);
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_TRUE(w.has(0));
  EXPECT_TRUE(w.has(1));
}

TEST(Select, SsspBucketSelection) {
  // tB = t⟨iΔ ≤ t < (i+1)Δ⟩ via two chained selects.
  Vector<double> t(6);
  t.set_element(0, 0.0);
  t.set_element(1, 1.5);
  t.set_element(2, 2.0);
  t.set_element(3, 3.7);
  const double delta = 2.0;
  const double lo = 1 * delta;
  Vector<double> tb(6);
  grb::select(tb, no_mask, grb::NoAccum{}, grb::ValueGe{}, t, lo);
  grb::select(tb, no_mask, grb::NoAccum{}, grb::ValueLt{}, tb, lo + delta);
  EXPECT_EQ(tb.nvals(), 2u);
  EXPECT_TRUE(tb.has(2));
  EXPECT_TRUE(tb.has(3));
}

TEST(Select, TrilTriuSplit) {
  // The TC preprocessing: L = tril(A), U = triu(A), diagonal excluded.
  Matrix<int> a(3, 3);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 3; ++j) a.set_element(i, j, 1);
  }
  Matrix<int> l(3, 3);
  Matrix<int> u(3, 3);
  grb::select(l, no_mask, grb::NoAccum{}, grb::Tril{}, a, -1);
  grb::select(u, no_mask, grb::NoAccum{}, grb::Triu{}, a, 1);
  EXPECT_EQ(l.nvals(), 3u);  // strictly lower
  EXPECT_EQ(u.nvals(), 3u);  // strictly upper
  EXPECT_TRUE(l.get(2, 0).has_value());
  EXPECT_FALSE(l.get(0, 0).has_value());
  EXPECT_TRUE(u.get(0, 2).has_value());
}

TEST(Select, DiagAndOffDiag) {
  Matrix<int> a(3, 3);
  for (Index i = 0; i < 3; ++i)
    for (Index j = 0; j < 3; ++j) a.set_element(i, j, 1);
  Matrix<int> diag(3, 3);
  Matrix<int> off(3, 3);
  grb::select(diag, no_mask, grb::NoAccum{}, grb::Diag{}, a, 0);
  grb::select(off, no_mask, grb::NoAccum{}, grb::OffDiag{}, a, 0);
  EXPECT_EQ(diag.nvals(), 3u);
  EXPECT_EQ(off.nvals(), 6u);
}

TEST(Select, MatrixValueSplitForSSSP) {
  // A_L = A⟨0 < A ≤ Δ⟩ and A_H = A⟨Δ < A⟩.
  Matrix<double> a(2, 2);
  a.set_element(0, 0, 1.0);
  a.set_element(0, 1, 5.0);
  a.set_element(1, 0, 2.0);
  a.set_element(1, 1, 9.0);
  const double delta = 3.0;
  Matrix<double> al(2, 2);
  Matrix<double> ah(2, 2);
  grb::select(al, no_mask, grb::NoAccum{}, grb::ValueLe{}, a, delta);
  grb::select(ah, no_mask, grb::NoAccum{}, grb::ValueGt{}, a, delta);
  EXPECT_EQ(al.nvals(), 2u);
  EXPECT_EQ(ah.nvals(), 2u);
  EXPECT_EQ(al.nvals() + ah.nvals(), a.nvals());
}

TEST(Select, EmptyResultIsValid) {
  Vector<int> u(3);
  u.set_element(0, 1);
  Vector<int> w(3);
  grb::select(w, no_mask, grb::NoAccum{}, grb::ValueGt{}, u, 100);
  EXPECT_EQ(w.nvals(), 0u);
}

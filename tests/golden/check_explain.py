#!/usr/bin/env python3
"""EXPLAIN stability check for the query planner.

Runs `lagraph_cli explain query '<pattern>' --gen kron 8` for a fixed set
of patterns, normalizes away the machine-dependent lines (calibration
coefficients, planner counters, elapsed wall time), and diffs the result
against tests/golden/explain_query.golden. A planner change that alters
step ordering, mask pushdown, CSE reuse, or estimates shows up as a
readable text diff; regenerate intentionally with --update.

Usage:
  python3 check_explain.py --cli PATH/TO/lagraph_cli [--update]
"""

import argparse
import difflib
import os
import subprocess
import sys

# Fixed patterns: a pinned chain (reordering + mask pushdown visible), a
# degree-filtered edge (filter step + CSE), and an undirected wedge.
PATTERNS = [
    "MATCH (a)-[]->(b)-[]->(c)-[]->(d) WHERE d = 100 RETURN COUNT(*)",
    "MATCH (a)-[]->(b) WHERE a.out >= 8 AND a <> b RETURN a, b LIMIT 10",
    "MATCH (a)-[]-(b)-[]-(c) WHERE b = 3 RETURN COUNT(*)",
]

GRAPH_ARGS = ["--gen", "kron", "8"]

# Lines whose content is machine- or run-dependent, dropped before diffing.
VOLATILE_PREFIXES = ("calibration:", "planner counters:", "elapsed:")


def normalize(text):
    lines = []
    for line in text.splitlines():
        if line.startswith(VOLATILE_PREFIXES):
            continue
        lines.append(line.rstrip())
    return "\n".join(lines) + "\n"


def render(cli):
    chunks = []
    for pat in PATTERNS:
        proc = subprocess.run(
            [cli, "explain", "query", pat] + GRAPH_ARGS,
            capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            sys.exit(f"explain query failed (exit {proc.returncode}): {pat}")
        chunks.append(f"=== {pat}\n" + normalize(proc.stdout))
    return "".join(chunks)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--cli", required=True, help="path to lagraph_cli")
    ap.add_argument("--golden", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "explain_query.golden"))
    ap.add_argument("--update", action="store_true",
                    help="rewrite the golden instead of checking")
    args = ap.parse_args()

    got = render(args.cli)
    if args.update:
        with open(args.golden, "w") as f:
            f.write(got)
        print(f"wrote {args.golden}")
        return 0

    try:
        with open(args.golden) as f:
            want = f.read()
    except FileNotFoundError:
        sys.exit(f"missing golden {args.golden} (run with --update)")
    if got != want:
        diff = difflib.unified_diff(
            want.splitlines(keepends=True), got.splitlines(keepends=True),
            fromfile="explain_query.golden", tofile="lagraph_cli output")
        sys.stdout.writelines(diff)
        sys.exit("EXPLAIN output drifted from the golden "
                 "(regenerate with --update if intentional)")
    print("explain output matches the golden "
          f"({len(PATTERNS)} patterns, graph {' '.join(GRAPH_ARGS)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

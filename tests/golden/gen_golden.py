#!/usr/bin/env python3
"""Independent reference implementations for the golden-file tests.

Regenerates tests/golden/<graph>.<algo>.golden from <graph>.edges using
straightforward textbook algorithms (BFS, Brandes, power iteration, Dijkstra,
triangle counting, union-find) written with no reference to the C++ library,
so the goldens are an independent check, not a snapshot of library output.

Usage: python3 gen_golden.py          (from tests/golden/)
"""

import heapq
import math
import os
import sys

DAMPING = 0.85
PR_TOL = 1e-8
PR_ITERMAX = 200
BC_SOURCES = [0, 1, 2, 3]
BFS_SOURCE = 0
SSSP_SOURCE = 0


def load(path):
    n = None
    directed = None
    edges = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "n":
                n = int(parts[1])
            elif parts[0] == "directed":
                directed = bool(int(parts[1]))
            else:
                u, v, w = int(parts[0]), int(parts[1]), float(parts[2])
                edges.append((u, v, w))
    assert n is not None and directed is not None
    return n, directed, edges


def adjacency(n, directed, edges):
    """Directed adjacency (undirected graphs get both arcs)."""
    adj = [[] for _ in range(n)]
    for u, v, w in edges:
        adj[u].append((v, w))
        if not directed:
            adj[v].append((u, w))
    return adj


def bfs_levels(n, adj, src):
    level = [-1] * n
    level[src] = 0
    frontier = [src]
    while frontier:
        nxt = []
        for u in frontier:
            for v, _ in adj[u]:
                if level[v] < 0:
                    level[v] = level[u] + 1
                    nxt.append(v)
        frontier = nxt
    return level


def pagerank(n, adj):
    """GAP-variant power iteration: dangling rank leaks (no redistribution),
    edge weights ignored, teleport = (1-d)/n, L1 convergence test."""
    outdeg = [len(a) for a in adj]
    inv = [[] for _ in range(n)]  # in-neighbours
    for u in range(n):
        for v, _ in adj[u]:
            inv[v].append(u)
    r = [1.0 / n] * n
    teleport = (1.0 - DAMPING) / n
    for _ in range(PR_ITERMAX):
        contrib = [DAMPING * r[u] / outdeg[u] if outdeg[u] else 0.0
                   for u in range(n)]
        rn = [teleport + sum(contrib[u] for u in inv[v]) for v in range(n)]
        delta = sum(abs(rn[v] - r[v]) for v in range(n))
        r = rn
        if delta < PR_TOL:
            break
    return r


def dijkstra(n, adj, src):
    dist = [math.inf] * n
    dist[src] = 0.0
    pq = [(0.0, src)]
    while pq:
        d, u = heapq.heappop(pq)
        if d > dist[u]:
            continue
        for v, w in adj[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(pq, (nd, v))
    return dist


def brandes_bc(n, adj, sources):
    """Unnormalized batched Brandes over unweighted shortest paths (GAP
    semantics: weights ignored, source not credited)."""
    bc = [0.0] * n
    for s in sources:
        sigma = [0.0] * n
        sigma[s] = 1.0
        dist = [-1] * n
        dist[s] = 0
        order = [s]
        frontier = [s]
        while frontier:
            nxt = []
            for u in frontier:
                for v, _ in adj[u]:
                    if dist[v] < 0:
                        dist[v] = dist[u] + 1
                        nxt.append(v)
                        order.append(v)
                    if dist[v] == dist[u] + 1:
                        sigma[v] += sigma[u]
            frontier = nxt
        delta = [0.0] * n
        for u in reversed(order):
            for v, _ in adj[u]:
                if dist[v] == dist[u] + 1 and sigma[v] > 0:
                    delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v])
            if u != s:
                bc[u] += delta[u]
    return bc


def triangles(n, adj):
    nbr = [set() for _ in range(n)]
    for u in range(n):
        for v, _ in adj[u]:
            if u != v:
                nbr[u].add(v)
                nbr[v].add(u)
    count = 0
    for u in range(n):
        for v in nbr[u]:
            if v > u:
                count += sum(1 for w in nbr[u] & nbr[v] if w > v)
    return count


def components(n, adj):
    """Min-node-id component labels over the symmetrized graph."""
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u in range(n):
        for v, _ in adj[u]:
            a, b = find(u), find(v)
            if a != b:
                parent[max(a, b)] = min(a, b)
    comp = [find(v) for v in range(n)]
    # Canonical: label = min node id in the component (find() already
    # union-by-min, one more pass makes it exact).
    lab = {}
    for v in range(n):
        lab.setdefault(comp[v], v)
    return [lab[comp[v]] for v in range(n)]


def arcs_of(n, directed, edges):
    """Directed arc set: undirected graphs contribute both directions
    (matching Kind::adjacency_undirected's symmetrized adjacency)."""
    arcs = set()
    for u, v, _ in edges:
        arcs.add((u, v))
        if not directed:
            arcs.add((v, u))
    return arcs


def eval_query(n, arcs, spec):
    """Tuple-at-a-time reference for the lagraph::query golden tests:
    enumerate every assignment of pattern variables to nodes (homomorphism
    semantics), check every constraint, project, sort, LIMIT. Written with
    no reference to the compiled pipeline — plain nested loops.

    spec keys: nv (variable count), edges [(src, dst, dir)] with dir in
    {'out', 'both'}, pins [(var, node)], neqs [(a, b)],
    degs [(var, 'out'|'in', cmp, bound)], count_only, returns [var...],
    limit (-1 = none), columns [name...].
    """
    outdeg = [0] * n
    indeg = [0] * n
    for (u, v) in arcs:
        outdeg[u] += 1
        indeg[v] += 1
    cmps = {
        ">=": lambda x, k: x >= k,
        "<=": lambda x, k: x <= k,
        ">": lambda x, k: x > k,
        "<": lambda x, k: x < k,
        "=": lambda x, k: x == k,
    }

    def ok(asg):
        for var, node in spec.get("pins", []):
            if asg[var] != node:
                return False
        for a, b in spec.get("neqs", []):
            if asg[a] == asg[b]:
                return False
        for var, which, cmp, bound in spec.get("degs", []):
            deg = outdeg[asg[var]] if which == "out" else indeg[asg[var]]
            if not cmps[cmp](deg, bound):
                return False
        for src, dst, direction in spec["edges"]:
            fwd = (asg[src], asg[dst]) in arcs
            if direction == "out":
                if not fwd:
                    return False
            else:  # 'both'
                if not fwd and (asg[dst], asg[src]) not in arcs:
                    return False
        return True

    matches = 0
    rows = []
    nv = spec["nv"]
    asg = [0] * nv

    def rec(d):
        nonlocal matches
        if d == nv:
            if ok(asg):
                matches += 1
                if not spec.get("count_only"):
                    rows.append([asg[v] for v in spec["returns"]])
            return
        for node in range(n):
            asg[d] = node
            rec(d + 1)

    rec(0)
    if spec.get("count_only"):
        rows = [[matches]]
    else:
        rows.sort()
    limit = spec.get("limit", -1)
    if limit >= 0:
        rows = rows[:limit]
    return spec["columns"], rows


def write_query(path, columns, rows):
    with open(path, "w") as f:
        f.write(" ".join(columns) + "\n")
        for row in rows:
            f.write(" ".join(str(x) for x in row) + "\n")


# The fixed queries of the golden query tests (tests/query/test_exec.cpp
# holds the same strings verbatim). Key = golden-file suffix.
GOLDEN_QUERIES = {
    "karate": {
        # MATCH (a)-[]-(b) WHERE a = 0 RETURN b
        "q_nbrs": dict(nv=2, edges=[(0, 1, "both")], pins=[(0, 0)],
                       returns=[1], columns=["b"]),
        # MATCH (a)-[]->(b)-[]->(c) WHERE a = 33 AND a <> c RETURN COUNT(*)
        "q_wedge_count": dict(nv=3, edges=[(0, 1, "out"), (1, 2, "out")],
                              pins=[(0, 33)], neqs=[(0, 2)],
                              count_only=True, columns=["count"]),
    },
    "path": {
        # MATCH (a)-[]->(b)-[]->(c) RETURN a, c LIMIT 5
        "q_pairs": dict(nv=3, edges=[(0, 1, "out"), (1, 2, "out")],
                        returns=[0, 2], limit=5, columns=["a", "c"]),
    },
    "wdag": {
        # MATCH (a)-[]->(b) WHERE a.out >= 2 RETURN a, b
        "q_fanout": dict(nv=2, edges=[(0, 1, "out")],
                        degs=[(0, "out", ">=", 2)],
                        returns=[0, 1], columns=["a", "b"]),
    },
}


def write_vec(path, values, fmt):
    with open(path, "w") as f:
        for i, x in enumerate(values):
            f.write(f"{i} {fmt(x)}\n")


def fnum(x):
    if math.isinf(x):
        return "inf"
    return f"{x:.12g}"


def main():
    here = os.path.dirname(os.path.abspath(__file__))
    for name in ("path", "karate", "wdag"):
        n, directed, edges = load(os.path.join(here, name + ".edges"))
        adj = adjacency(n, directed, edges)

        def out(algo):
            return os.path.join(here, f"{name}.{algo}.golden")

        write_vec(out("bfs"), bfs_levels(n, adj, BFS_SOURCE), str)
        write_vec(out("pr"), pagerank(n, adj), fnum)
        write_vec(out("sssp"), dijkstra(n, adj, SSSP_SOURCE), fnum)
        write_vec(out("bc"), brandes_bc(n, adj, BC_SOURCES), fnum)
        write_vec(out("cc"), components(n, adj), str)
        if not directed:  # triangle counting needs a symmetric pattern
            with open(out("tc"), "w") as f:
                f.write(f"{triangles(n, adj)}\n")
        arcs = arcs_of(n, directed, edges)
        for suffix, spec in GOLDEN_QUERIES.get(name, {}).items():
            cols, rows = eval_query(n, arcs, spec)
            write_query(out(suffix), cols, rows)
        print(f"{name}: n={n} directed={int(directed)} edges={len(edges)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Tests for the gapbs baseline kernels: each fast kernel is validated
// against its slow oracle on hand-built and generated graphs, so the
// baselines used in the Table III harness are themselves trustworthy.
#include <gtest/gtest.h>

#include <map>

#include "common/test_graphs.hpp"

using gapbs::NodeId;
using grb::Index;

namespace {

testutil::TestGraph kron(int scale, int ef, std::uint64_t seed) {
  return testutil::random_kron(scale, ef, seed);
}

}  // namespace

TEST(GapbsGraph, CsrBuild) {
  gen::EdgeList el;
  el.n = 4;
  el.push(0, 1);
  el.push(0, 2);
  el.push(3, 0);
  auto g = gapbs::Graph::build(el, /*directed=*/true);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_arcs(), 3);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.in_degree(0), 1);
  EXPECT_EQ(g.out_neigh(3)[0], 0);
  EXPECT_EQ(g.in_neigh(2)[0], 0);
}

TEST(GapbsGraph, UndirectedSharesAdjacency) {
  gen::EdgeList el;
  el.n = 3;
  el.push(0, 1);
  gen::symmetrize(el);
  auto g = gapbs::Graph::build(el, /*directed=*/false);
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.in_degree(0), 1);
}

TEST(GapbsBfs, ParentsValidOnGenerated) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    auto t = kron(7, 8, seed);
    auto levels = gapbs::bfs_levels_reference(t.ref, 0);
    for (auto *fn : {&gapbs::bfs_push}) {
      auto parent = (*fn)(t.ref, 0);
      for (NodeId v = 0; v < t.ref.num_nodes(); ++v) {
        if (levels[v] < 0) {
          EXPECT_EQ(parent[v], -1);
        } else if (v == 0) {
          EXPECT_EQ(parent[v], 0);
        } else {
          ASSERT_GE(parent[v], 0);
          EXPECT_EQ(levels[parent[v]] + 1, levels[v]);
        }
      }
    }
    // direction-optimizing agrees on reachability and levels
    auto parent = gapbs::bfs(t.ref, 0);
    for (NodeId v = 0; v < t.ref.num_nodes(); ++v) {
      EXPECT_EQ(parent[v] >= 0, levels[v] >= 0) << v;
      if (parent[v] >= 0 && v != 0) {
        EXPECT_EQ(levels[parent[v]] + 1, levels[v]) << v;
      }
    }
  }
}

TEST(GapbsBfs, DirectedGraphBottomUpUsesInEdges) {
  auto t = testutil::random_directed(8, 10, 3);
  auto levels = gapbs::bfs_levels_reference(t.ref, 1);
  auto parent = gapbs::bfs(t.ref, 1, /*alpha=*/1, /*beta=*/1024);  // force pull
  for (NodeId v = 0; v < t.ref.num_nodes(); ++v) {
    EXPECT_EQ(parent[v] >= 0, levels[v] >= 0) << v;
  }
}

TEST(GapbsBc, MatchesReference) {
  auto t = kron(6, 6, 5);
  const NodeId srcs[] = {0, 3, 9};
  auto got = gapbs::bc(t.ref, srcs);
  auto want = gapbs::bc_reference(t.ref, srcs);
  for (NodeId v = 0; v < t.ref.num_nodes(); ++v) {
    EXPECT_NEAR(got[v], want[v], 1e-9) << v;
  }
}

TEST(GapbsSssp, MatchesDijkstra) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto t = kron(6, 6, seed);
    auto got = gapbs::sssp(t.ref, 0, 2.0);
    auto want = gapbs::dijkstra(t.ref, 0);
    for (NodeId v = 0; v < t.ref.num_nodes(); ++v) {
      if (std::isinf(want[v])) {
        EXPECT_TRUE(std::isinf(got[v]));
      } else {
        EXPECT_DOUBLE_EQ(got[v], want[v]) << v;
      }
    }
  }
}

TEST(GapbsSssp, DeltaInsensitive) {
  auto t = kron(6, 8, 7);
  auto ref = gapbs::dijkstra(t.ref, 2);
  for (double delta : {1.0, 8.0, 64.0, 1e6}) {
    auto got = gapbs::sssp(t.ref, 2, delta);
    for (NodeId v = 0; v < t.ref.num_nodes(); ++v) {
      if (!std::isinf(ref[v])) EXPECT_DOUBLE_EQ(got[v], ref[v]);
    }
  }
}

TEST(GapbsTc, MatchesReference) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto t = kron(7, 6, seed);
    EXPECT_EQ(gapbs::tc(t.ref), gapbs::tc_reference(t.ref)) << seed;
  }
}

TEST(GapbsTc, SkewTriggersRelabelPathAndStaysCorrect) {
  auto t = kron(8, 10, 4);  // heavily skewed: relabelling kicks in
  EXPECT_EQ(gapbs::tc(t.ref), gapbs::tc_reference(t.ref));
}

TEST(GapbsCc, MatchesReferencePartition) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    auto t = testutil::random_undirected(7, 1, seed);
    auto got = gapbs::cc(t.ref);
    auto want = gapbs::cc_reference(t.ref);
    std::map<NodeId, NodeId> m1, m2;
    for (std::size_t v = 0; v < want.size(); ++v) {
      auto [i1, ins1] = m1.try_emplace(want[v], got[v]);
      EXPECT_EQ(i1->second, got[v]);
      auto [i2, ins2] = m2.try_emplace(got[v], want[v]);
      EXPECT_EQ(i2->second, want[v]);
    }
  }
}

TEST(GapbsPr, RanksSumToOneWithoutDanglingNodes) {
  // A cycle has no dangling nodes, so no rank mass can leak. (Kron graphs
  // are unsuitable here: their isolated vertices are dangling.)
  gen::EdgeList el;
  el.n = 64;
  for (Index i = 0; i < 64; ++i) el.push(i, (i + 1) % 64);
  auto g = gapbs::Graph::build(el, true);
  auto r = gapbs::pagerank(g, 0.85, 1e-10, 500);
  double sum = 0;
  for (auto x : r) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(GapbsPr, HubsOutrankLeaves) {
  // star graph: the centre collects rank
  gen::EdgeList el;
  el.n = 6;
  for (Index i = 1; i < 6; ++i) el.push(i, 0);
  el.push(0, 1);
  auto g = gapbs::Graph::build(el, true);
  auto r = gapbs::pagerank(g, 0.85, 1e-10, 500);
  for (int i = 2; i < 6; ++i) EXPECT_GT(r[0], r[i]);
}

TEST(GapbsOracles, DijkstraUnreachable) {
  auto t = testutil::two_components();
  auto d = gapbs::dijkstra(t.ref, 0);
  EXPECT_TRUE(std::isinf(d[5]));
  EXPECT_FALSE(std::isinf(d[2]));
}

// Tests for the synthetic graph generators: determinism, shape properties
// (degree skew, diameter), and the edge-list transformations.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "gen/generators.hpp"

using gen::EdgeList;
using grb::Index;

namespace {

std::vector<Index> out_degrees(const EdgeList &el) {
  std::vector<Index> deg(el.n, 0);
  for (auto s : el.src) ++deg[s];
  return deg;
}

double mean_of(const std::vector<Index> &v) {
  double s = 0;
  for (auto x : v) s += double(x);
  return s / double(v.size());
}

double median_of(std::vector<Index> v) {
  auto mid = v.begin() + v.size() / 2;
  std::nth_element(v.begin(), mid, v.end());
  return double(*mid);
}

}  // namespace

TEST(Gen, KroneckerDeterministicPerSeed) {
  auto a = gen::kronecker(8, 8, 42);
  auto b = gen::kronecker(8, 8, 42);
  auto c = gen::kronecker(8, 8, 43);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  EXPECT_NE(a.src, c.src);
}

TEST(Gen, KroneckerShape) {
  auto el = gen::kronecker(9, 8, 1);
  EXPECT_EQ(el.n, 512u);
  // symmetrized: every edge has its reverse
  std::set<std::pair<Index, Index>> edges;
  for (std::size_t e = 0; e < el.size(); ++e) {
    edges.emplace(el.src[e], el.dst[e]);
  }
  for (auto &[s, d] : edges) {
    EXPECT_TRUE(edges.count({d, s})) << s << "->" << d;
  }
  // heavy-tailed: mean well above median (the Alg. 6 sort heuristic fires)
  auto deg = out_degrees(el);
  EXPECT_GT(mean_of(deg), 2.0 * median_of(deg));
  // no self loops
  for (std::size_t e = 0; e < el.size(); ++e) {
    EXPECT_NE(el.src[e], el.dst[e]);
  }
}

TEST(Gen, UniformRandomIsNotSkewed) {
  auto el = gen::uniform_random(9, 8, 1);
  auto deg = out_degrees(el);
  EXPECT_LT(mean_of(deg), 2.0 * median_of(deg));
}

TEST(Gen, TwitterLikeIsDirectedAndSkewed) {
  auto el = gen::twitter_like(9, 8, 1);
  auto deg = out_degrees(el);
  EXPECT_GT(mean_of(deg), 1.5 * median_of(deg));
}

TEST(Gen, WebLikeHasLocality) {
  auto el = gen::web_like(9, 8, 1);
  // most edges span a short id distance
  std::size_t local = 0;
  for (std::size_t e = 0; e < el.size(); ++e) {
    auto d = el.src[e] > el.dst[e] ? el.src[e] - el.dst[e]
                                   : el.dst[e] - el.src[e];
    if (d < el.n / 8) ++local;
  }
  EXPECT_GT(double(local), 0.4 * double(el.size()));
}

TEST(Gen, RoadGridShape) {
  auto el = gen::road_grid(10, 10, 1);
  EXPECT_EQ(el.n, 100u);
  auto deg = out_degrees(el);
  // grid degrees are 2..4 plus a few shortcuts
  for (auto d : deg) EXPECT_LE(d, 6u);
  // both directions present for every edge
  std::set<std::pair<Index, Index>> edges;
  for (std::size_t e = 0; e < el.size(); ++e)
    edges.emplace(el.src[e], el.dst[e]);
  for (auto &[s, d] : edges) EXPECT_TRUE(edges.count({d, s}));
}

TEST(Gen, RemoveSelfLoops) {
  EdgeList el;
  el.n = 3;
  el.push(0, 0);
  el.push(0, 1);
  el.push(2, 2);
  gen::remove_self_loops(el);
  EXPECT_EQ(el.size(), 1u);
  EXPECT_EQ(el.src[0], 0u);
  EXPECT_EQ(el.dst[0], 1u);
}

TEST(Gen, SymmetrizeDoublesEdges) {
  EdgeList el;
  el.n = 3;
  el.push(0, 1);
  el.push(1, 2);
  gen::symmetrize(el);
  EXPECT_EQ(el.size(), 4u);
}

TEST(Gen, WeightsSymmetricAndInRange) {
  auto el = gen::kronecker(7, 4, 3);
  gen::add_uniform_weights(el, 1, 255, 99);
  ASSERT_TRUE(el.weighted());
  std::map<std::pair<Index, Index>, double> w;
  for (std::size_t e = 0; e < el.size(); ++e) {
    EXPECT_GE(el.weight[e], 1.0);
    EXPECT_LE(el.weight[e], 255.0);
    w[{el.src[e], el.dst[e]}] = el.weight[e];
  }
  for (auto &[k, x] : w) {
    auto rev = w.find({k.second, k.first});
    ASSERT_NE(rev, w.end());
    EXPECT_EQ(rev->second, x) << "asymmetric weight";
  }
}

TEST(Gen, ToMatrixDeduplicates) {
  EdgeList el;
  el.n = 2;
  el.push(0, 1);
  el.push(0, 1);
  el.push(1, 0);
  auto a = gen::to_matrix<double>(el);
  EXPECT_EQ(a.nvals(), 2u);
  EXPECT_EQ(a.get(0, 1), 1.0);
}

TEST(Gen, GapSuiteMatchesTableIVShape) {
  auto suite = gen::make_default_suite(7, 8, 1);
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "Kron");
  EXPECT_FALSE(suite[0].directed);
  EXPECT_EQ(suite[1].name, "Urand");
  EXPECT_FALSE(suite[1].directed);
  EXPECT_EQ(suite[2].name, "Twitter");
  EXPECT_TRUE(suite[2].directed);
  EXPECT_EQ(suite[3].name, "Web");
  EXPECT_TRUE(suite[3].directed);
  EXPECT_EQ(suite[4].name, "Road");
  EXPECT_TRUE(suite[4].directed);
  for (auto &g : suite) {
    EXPECT_GT(g.nodes(), 0u);
    EXPECT_GT(g.edges.size(), 0u);
    EXPECT_TRUE(g.edges.weighted());
  }
}

TEST(Gen, PlantedPartitionStructure) {
  auto el = gen::planted_partition(4, 32, 6, 0.9, 3);
  EXPECT_EQ(el.n, 128u);
  // most edges stay within their community
  std::size_t within = 0;
  for (std::size_t e = 0; e < el.size(); ++e) {
    if (el.src[e] / 32 == el.dst[e] / 32) ++within;
  }
  EXPECT_GT(double(within), 0.75 * double(el.size()));
  // symmetric
  std::set<std::pair<Index, Index>> edges;
  for (std::size_t e = 0; e < el.size(); ++e)
    edges.emplace(el.src[e], el.dst[e]);
  for (auto &[s, d] : edges) EXPECT_TRUE(edges.count({d, s}));
}

TEST(Gen, PlantedPartitionDeterministic) {
  auto a = gen::planted_partition(3, 10, 4, 0.8, 11);
  auto b = gen::planted_partition(3, 10, 4, 0.8, 11);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
}

// Observability tests (`ctest -L obs`): the request-scoped tracing chain
// end to end — kernel spans stamped with request ids, per-request roll-ups
// in the RequestLog ring, the slow-query log's deterministic deadline-miss
// trigger, and the embedded HTTP telemetry server scraped over a real
// 127.0.0.1 socket (/healthz, /metrics format lint, /statusz, /requestz).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/test_graphs.hpp"
#include "service/engine.hpp"
#include "service/request_log.hpp"
#include "service/telemetry.hpp"

namespace svc = lagraph::service;
using grb::Index;
using svc::Engine;
using svc::EngineConfig;
using svc::QueryKind;
using svc::QueryResult;
using svc::Request;
using svc::TelemetryServer;

namespace {

// Enable span tracing for one test, restore the disabled default after.
struct TraceGuard {
  explicit TraceGuard(std::uint32_t every) {
    grb::config().trace_sample_every = every;
    grb::trace::reset();
  }
  ~TraceGuard() {
    grb::config().trace_sample_every = 0;
    grb::trace::reset();
  }
};

svc::SnapshotPtr make_kron_snapshot(int scale, std::uint64_t seed) {
  auto el = gen::kronecker(scale, 6, seed);
  gen::remove_self_loops(el);
  lagraph::Graph<double> g;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::make_graph(g, gen::to_matrix<double>(el),
                                lagraph::Kind::adjacency_undirected, msg),
            LAGRAPH_OK);
  svc::SnapshotPtr snap;
  EXPECT_EQ(svc::make_snapshot(&snap, std::move(g), msg), LAGRAPH_OK) << msg;
  return snap;
}

Request bfs_req(Index source) {
  Request r;
  r.kind = QueryKind::bfs;
  r.source = source;
  return r;
}

// Scrape a target from the engine's own server through a real socket.
std::string scrape(const Engine &engine, const std::string &target) {
  TelemetryServer *tel = engine.telemetry();
  EXPECT_NE(tel, nullptr);
  EXPECT_GT(tel->port(), 0);
  return TelemetryServer::http_get("127.0.0.1", tel->port(), target);
}

}  // namespace

TEST(RequestTracing, KernelSpansCarryRequestIds) {
  TraceGuard guard(1);
  auto snap = make_kron_snapshot(6, 11);
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.enable_batching = false;  // solo path: trace_id == request_id
  Engine engine(snap, cfg);

  auto res = engine.submit(bfs_req(1)).get();
  ASSERT_EQ(res.status, LAGRAPH_OK) << res.error;
  ASSERT_GT(res.request_id, 0u);
  engine.stop();

  // Every kernel span recorded while the request executed must be stamped
  // with its id — that is the tentpole contract /requestz is built on.
  // (The query wrapper span is stamped too but closes after the roll-up
  // snapshots its count, so span_count covers the kernel spans only.)
  std::size_t stamped = 0;
  std::size_t kernel_stamped = 0;
  for (const auto &s : grb::trace::collect()) {
    if (s.request_id != res.request_id) continue;
    ++stamped;
    if (s.kind != grb::trace::SpanKind::query) ++kernel_stamped;
  }
  EXPECT_GT(stamped, 0u);

  // The roll-up ring retained the request, span count included.
  svc::RequestRecord rec;
  ASSERT_TRUE(engine.request_log().find(res.request_id, &rec));
  EXPECT_EQ(rec.trace_id, res.request_id);
  EXPECT_EQ(rec.status, LAGRAPH_OK);
  EXPECT_EQ(rec.span_count, kernel_stamped);
  EXPECT_GT(std::string(rec.plan).size(), 0u);  // ExecPlan::explain_line()
}

TEST(RequestTracing, BatchMembersShareTheSweepTraceId) {
  TraceGuard guard(1);
  auto snap = make_kron_snapshot(6, 12);
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.enable_batching = true;
  cfg.batch_window = std::chrono::microseconds(20000);
  Engine engine(snap, cfg);

  std::vector<std::future<QueryResult>> futs;
  for (Index s = 0; s < 8; ++s) futs.push_back(engine.submit(bfs_req(s)));
  std::vector<QueryResult> results;
  for (auto &f : futs) results.push_back(f.get());
  engine.stop();

  for (const auto &r : results) ASSERT_EQ(r.status, LAGRAPH_OK) << r.error;
  // At least one sweep of >= 2 must have formed under the widened window.
  bool any_batched = false;
  for (const auto &r : results) any_batched = any_batched || r.batched;
  ASSERT_TRUE(any_batched);

  // Batched members roll up with a shared trace id (the batch head's) and
  // the member count is stamped onto the spans.
  for (const auto &r : results) {
    if (!r.batched) continue;
    svc::RequestRecord rec;
    ASSERT_TRUE(engine.request_log().find(r.request_id, &rec));
    EXPECT_TRUE(rec.batched);
    EXPECT_GE(rec.batch_size, 2u);
    std::size_t stamped = 0;
    for (const auto &s : grb::trace::collect()) {
      if (s.request_id == rec.trace_id && s.batch_members >= 2) ++stamped;
    }
    EXPECT_GT(stamped, 0u) << "request " << r.request_id;
  }
}

TEST(SlowQueryLog, DeadlineMissEmitsExactlyOneRecord) {
  TraceGuard guard(1);
  auto snap = make_kron_snapshot(6, 13);
  const std::string path =
      ::testing::TempDir() + "lagraph_slow_query_test.jsonl";
  std::remove(path.c_str());

  EngineConfig cfg;
  cfg.threads = 1;
  cfg.enable_batching = false;
  cfg.slow_query_log = path;
  Engine engine(snap, cfg);

  // A deadline already in the past is failed at pop time — the
  // deterministic deadline-miss trigger (no sleeps, no timing games).
  Request late = bfs_req(2);
  late.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  auto res = engine.submit(late).get();
  EXPECT_EQ(res.status, LAGRAPH_SERVICE_DEADLINE);
  engine.stop();

  EXPECT_EQ(engine.counters().slow_queries, 1u);
  auto tail = engine.slow_query_tail();
  ASSERT_EQ(tail.size(), 1u);
  const std::string &line = tail.front();
  EXPECT_NE(line.find("\"deadline_missed\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"kind\":\"bfs\""), std::string::npos) << line;
  // The record carries the plan the query would have run — the acceptance
  // contract for post-mortems on expired requests.
  EXPECT_NE(line.find("\"plan\":\""), std::string::npos) << line;
  EXPECT_EQ(line.find("\"plan\":\"\""), std::string::npos) << line;

  // The JSONL sink got the same single record.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string file_line;
  std::size_t lines = 0;
  while (std::getline(in, file_line)) {
    if (!file_line.empty()) ++lines;
  }
  EXPECT_EQ(lines, 1u);
  std::remove(path.c_str());
}

TEST(SlowQueryLog, SilentUnderThreshold) {
  auto snap = make_kron_snapshot(6, 14);
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.slow_query_ms = 60000;  // nothing here takes a minute
  Engine engine(snap, cfg);
  for (Index s = 0; s < 4; ++s) {
    auto res = engine.submit(bfs_req(s)).get();
    ASSERT_EQ(res.status, LAGRAPH_OK) << res.error;
  }
  engine.stop();
  EXPECT_EQ(engine.counters().slow_queries, 0u);
  EXPECT_TRUE(engine.slow_query_tail().empty());
}

TEST(Telemetry, HealthzAndMetricsOverSocket) {
  auto snap = make_kron_snapshot(6, 15);
  EngineConfig cfg;
  cfg.telemetry_port = 0;  // ephemeral
  Engine engine(snap, cfg);
  for (Index s = 0; s < 4; ++s) {
    auto res = engine.submit(bfs_req(s)).get();
    ASSERT_EQ(res.status, LAGRAPH_OK) << res.error;
  }

  EXPECT_EQ(scrape(engine, "/healthz"), "ok\n");

  const std::string metrics = scrape(engine, "/metrics");
  ASSERT_FALSE(metrics.empty());
  // The scrape gate check.sh uses: requests flowed, the counter says so.
  EXPECT_NE(metrics.find("lagraph_requests_total 4"), std::string::npos);
  EXPECT_NE(metrics.find("lagraph_service_queue_depth"), std::string::npos);
  EXPECT_NE(metrics.find("lagraph_service_inflight_requests"),
            std::string::npos);
  EXPECT_NE(metrics.find("lagraph_service_active_workers"),
            std::string::npos);

  // Unknown targets 404 without killing the serving loop.
  EXPECT_NE(scrape(engine, "/nope").find("endpoints:"), std::string::npos);
  EXPECT_EQ(scrape(engine, "/healthz"), "ok\n");
  engine.stop();
}

// Line-by-line Prometheus exposition lint: every sample belongs to a
// family that announced itself with exactly one # HELP and one # TYPE
// (in that order, before any sample), and sample lines parse as
// `name{labels} value` with a finite value.
TEST(Telemetry, PrometheusFormatLint) {
  auto snap = make_kron_snapshot(6, 16);
  Engine engine(snap, EngineConfig{});
  for (Index s = 0; s < 3; ++s) {
    auto res = engine.submit(bfs_req(s)).get();
    ASSERT_EQ(res.status, LAGRAPH_OK) << res.error;
  }
  engine.stop();

  const std::string text = engine.prometheus_text();
  std::istringstream in(text);
  std::string line;
  std::map<std::string, int> help_count;
  std::map<std::string, int> type_count;
  std::set<std::string> announced;
  auto family_of = [](const std::string &sample) {
    // Strip {labels}, a _bucket/_sum/_count suffix, and the value.
    std::string name = sample.substr(0, sample.find_first_of("{ "));
    for (const char *suffix : {"_bucket", "_sum", "_count"}) {
      const std::size_t n = std::strlen(suffix);
      if (name.size() > n && name.compare(name.size() - n, n, suffix) == 0) {
        name.resize(name.size() - n);
      }
    }
    return name;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      std::istringstream ls(line.substr(7));
      std::string fam;
      ls >> fam;
      ++help_count[fam];
      EXPECT_EQ(type_count.count(fam), 0u)
          << "# HELP after # TYPE for " << fam;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream ls(line.substr(7));
      std::string fam, kind;
      ls >> fam >> kind;
      ++type_count[fam];
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      announced.insert(fam);
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment line: " << line;
    // Sample line: name[{labels}] value
    const std::string fam = family_of(line);
    EXPECT_TRUE(announced.count(fam) > 0)
        << "sample before # TYPE: " << line;
    const std::size_t sp = line.find_last_of(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    char *end = nullptr;
    const double v = std::strtod(line.c_str() + sp + 1, &end);
    EXPECT_TRUE(end != line.c_str() + sp + 1 && *end == '\0') << line;
    EXPECT_TRUE(std::isfinite(v) || line.find("+Inf") != std::string::npos)
        << line;
    // Braces, if present, are balanced on one line.
    const auto open = line.find('{');
    if (open != std::string::npos) {
      EXPECT_NE(line.find('}', open), std::string::npos) << line;
    }
  }
  for (const auto &[fam, n] : help_count) {
    EXPECT_EQ(n, 1) << "# HELP repeated for " << fam;
  }
  for (const auto &[fam, n] : type_count) {
    EXPECT_EQ(n, 1) << "# TYPE repeated for " << fam;
  }
}

TEST(Telemetry, StatuszAndRequestzReconstructTheRequest) {
  TraceGuard guard(1);
  auto snap = make_kron_snapshot(6, 17);
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.enable_batching = false;
  cfg.telemetry_port = 0;
  Engine engine(snap, cfg);

  auto res = engine.submit(bfs_req(3)).get();
  ASSERT_EQ(res.status, LAGRAPH_OK) << res.error;

  const std::string statusz = scrape(engine, "/statusz");
  ASSERT_FALSE(statusz.empty());
  EXPECT_NE(statusz.find("\"counters\""), std::string::npos);
  EXPECT_NE(statusz.find("\"recent\""), std::string::npos);
  EXPECT_NE(statusz.find("\"latency\""), std::string::npos);
  // The completed request shows up in the recent roll-ups by id.
  char idbuf[64];
  std::snprintf(idbuf, sizeof(idbuf), "\"request_id\":%llu",
                static_cast<unsigned long long>(res.request_id));
  EXPECT_NE(statusz.find(idbuf), std::string::npos) << statusz;

  // /requestz?id= replays the span breakdown as Chrome trace JSON.
  char target[64];
  std::snprintf(target, sizeof(target), "/requestz?id=%llu",
                static_cast<unsigned long long>(res.request_id));
  const std::string requestz = scrape(engine, target);
  ASSERT_FALSE(requestz.empty());
  EXPECT_NE(requestz.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(requestz.find(idbuf), std::string::npos);
  // At least one kernel span made it into the trace (names are grb ops).
  EXPECT_NE(requestz.find("\"ph\":\"X\""), std::string::npos) << requestz;

  // Unknown ids are a clean 404 body, not a crash.
  EXPECT_EQ(scrape(engine, "/requestz?id=999999999"),
            "request not in the retained window\n");
  EXPECT_EQ(scrape(engine, "/requestz"),
            "usage: /requestz?id=<request id>\n");
  engine.stop();
}

TEST(Telemetry, BindFailureLeavesEngineServing) {
  auto snap = make_kron_snapshot(6, 18);
  EngineConfig holder_cfg;
  holder_cfg.telemetry_port = 0;
  Engine holder(snap, holder_cfg);
  ASSERT_NE(holder.telemetry(), nullptr);
  const int taken = holder.telemetry()->port();
  ASSERT_GT(taken, 0);

  // Second engine asks for the exact port the first one holds: the bind
  // fails, the server goes inert, queries are unaffected.
  EngineConfig cfg;
  cfg.telemetry_port = taken;
  Engine engine(snap, cfg);
  ASSERT_NE(engine.telemetry(), nullptr);
  EXPECT_EQ(engine.telemetry()->port(), -1);
  auto res = engine.submit(bfs_req(0)).get();
  EXPECT_EQ(res.status, LAGRAPH_OK) << res.error;
  engine.stop();
  holder.stop();
}

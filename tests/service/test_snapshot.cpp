// GraphSnapshot tests: construction caches every property the query kernels
// need, freezes all containers, and hands out monotonically increasing ids.
#include <gtest/gtest.h>

#include "common/test_graphs.hpp"
#include "service/snapshot.hpp"

namespace svc = lagraph::service;
using grb::Index;

namespace {

lagraph::Graph<double> kron_graph(int scale, std::uint64_t seed) {
  auto el = gen::kronecker(scale, 6, seed);
  lagraph::Graph<double> g;
  char msg[LAGRAPH_MSG_LEN];
  lagraph::make_graph(g, gen::to_matrix<double>(el),
                      lagraph::Kind::adjacency_undirected, msg);
  return g;
}

}  // namespace

TEST(Snapshot, BuildCachesAndFreezesEverything) {
  auto g = kron_graph(7, 3);
  const auto nodes = g.nodes();
  const auto entries = g.entries();

  svc::SnapshotPtr snap;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(svc::make_snapshot(&snap, std::move(g), msg), LAGRAPH_OK) << msg;
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->nodes(), nodes);
  EXPECT_EQ(snap->entries(), entries);
  EXPECT_EQ(snap->kind(), lagraph::Kind::adjacency_undirected);

  const auto &sg = snap->graph();
  EXPECT_TRUE(sg.a.is_finalized());
  EXPECT_NE(sg.a.format(), grb::Matrix<double>::Format::hypersparse);
  ASSERT_TRUE(sg.row_degree.has_value());
  EXPECT_TRUE(sg.row_degree->is_finalized());
  EXPECT_EQ(sg.a_pattern_is_symmetric, lagraph::BooleanProperty::yes);
  EXPECT_GE(sg.ndiag, 0);
  EXPECT_NE(sg.transpose_view(), nullptr);
}

TEST(Snapshot, DirectedGraphGetsConcreteTranspose) {
  auto el = gen::twitter_like(7, 6, 5);
  lagraph::Graph<double> g;
  char msg[LAGRAPH_MSG_LEN];
  ASSERT_EQ(lagraph::make_graph(g, gen::to_matrix<double>(el),
                                lagraph::Kind::adjacency_directed, msg),
            LAGRAPH_OK);
  svc::SnapshotPtr snap;
  ASSERT_EQ(svc::make_snapshot(&snap, std::move(g), msg), LAGRAPH_OK) << msg;
  const auto &sg = snap->graph();
  ASSERT_TRUE(sg.at.has_value());
  EXPECT_TRUE(sg.at->is_finalized());
  EXPECT_EQ(sg.transpose_view(), &*sg.at);
}

TEST(Snapshot, IdsAreMonotonic) {
  char msg[LAGRAPH_MSG_LEN];
  svc::SnapshotPtr s1;
  svc::SnapshotPtr s2;
  ASSERT_EQ(svc::make_snapshot(&s1, kron_graph(5, 1), msg), LAGRAPH_OK);
  ASSERT_EQ(svc::make_snapshot(&s2, kron_graph(5, 2), msg), LAGRAPH_OK);
  EXPECT_LT(s1->id(), s2->id());
}

TEST(Snapshot, CountsInStats) {
  const auto before = grb::stats().snapshot_builds.load();
  char msg[LAGRAPH_MSG_LEN];
  svc::SnapshotPtr snap;
  ASSERT_EQ(svc::make_snapshot(&snap, kron_graph(5, 4), msg), LAGRAPH_OK);
  EXPECT_EQ(grb::stats().snapshot_builds.load(), before + 1);
}

TEST(Snapshot, RejectsNullOutAndBadGraph) {
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(svc::make_snapshot(nullptr, kron_graph(4, 1), msg),
            LAGRAPH_NULL_POINTER);
  lagraph::Graph<double> g;
  g.a = grb::Matrix<double>(3, 4);  // not square
  svc::SnapshotPtr snap;
  EXPECT_EQ(svc::make_snapshot(&snap, std::move(g), msg),
            LAGRAPH_INVALID_GRAPH);
}

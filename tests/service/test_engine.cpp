// Engine tests: query correctness through the service path, adaptive
// batching behaviour, deadlines and rejection codes, snapshot isolation,
// and the multi-threaded stress test (run under TSan via `ctest -L
// concurrency` in a -DLAGRAPH_SANITIZE=thread build).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/test_graphs.hpp"
#include "service/engine.hpp"

namespace svc = lagraph::service;
using grb::Index;
using svc::Engine;
using svc::EngineConfig;
using svc::QueryKind;
using svc::QueryResult;
using svc::Request;

namespace {

svc::SnapshotPtr make_kron_snapshot(int scale, std::uint64_t seed) {
  auto el = gen::kronecker(scale, 6, seed);
  gen::remove_self_loops(el);  // so tc queries are valid
  lagraph::Graph<double> g;
  char msg[LAGRAPH_MSG_LEN];
  EXPECT_EQ(lagraph::make_graph(g, gen::to_matrix<double>(el),
                                lagraph::Kind::adjacency_undirected, msg),
            LAGRAPH_OK);
  svc::SnapshotPtr snap;
  EXPECT_EQ(svc::make_snapshot(&snap, std::move(g), msg), LAGRAPH_OK) << msg;
  return snap;
}

Request bfs_req(Index source) {
  Request r;
  r.kind = QueryKind::bfs;
  r.source = source;
  return r;
}

}  // namespace

TEST(Engine, BfsMatchesDirectKernel) {
  auto snap = make_kron_snapshot(7, 3);
  Engine engine(snap, EngineConfig{});
  std::vector<Index> sources = {0, 5, 17, 40, 99};
  std::vector<std::future<QueryResult>> futs;
  for (auto s : sources) futs.push_back(engine.submit(bfs_req(s)));

  char msg[LAGRAPH_MSG_LEN];
  std::vector<grb::Vector<std::int64_t>> want;
  ASSERT_EQ(lagraph::experimental::msbfs_levels_demux(&want, snap->graph(),
                                                      sources, msg),
            LAGRAPH_OK)
      << msg;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    auto res = futs[i].get();
    ASSERT_EQ(res.status, LAGRAPH_OK) << res.error;
    EXPECT_EQ(res.kind, QueryKind::bfs);
    EXPECT_EQ(res.snapshot_id, snap->id());
    ASSERT_EQ(res.level.nvals(), want[i].nvals());
    want[i].for_each([&](Index v, const std::int64_t &lv) {
      auto got = res.level.get(v);
      ASSERT_TRUE(got.has_value()) << "node " << v;
      EXPECT_EQ(*got, lv) << "node " << v;
    });
  }
}

TEST(Engine, MixedQueriesMatchDirectCalls) {
  auto snap = make_kron_snapshot(7, 4);
  const auto &g = snap->graph();
  char msg[LAGRAPH_MSG_LEN];

  Engine engine(snap, EngineConfig{});
  Request sssp;
  sssp.kind = QueryKind::sssp;
  sssp.source = 3;
  sssp.delta = 2.0;
  Request pr;
  pr.kind = QueryKind::pagerank;
  Request tc;
  tc.kind = QueryKind::tc;
  auto f_sssp = engine.submit(sssp);
  auto f_pr = engine.submit(pr);
  auto f_tc = engine.submit(tc);

  grb::Vector<double> want_dist;
  ASSERT_EQ(lagraph::advanced::sssp_delta_stepping(&want_dist, g, 3, 2.0, msg),
            LAGRAPH_OK)
      << msg;
  grb::Vector<double> want_rank;
  int want_iters = 0;
  ASSERT_GE(lagraph::advanced::pagerank_gap(&want_rank, &want_iters, g, 0.85,
                                            1e-7, 100, msg),
            LAGRAPH_OK)
      << msg;
  std::uint64_t want_tris = 0;
  ASSERT_EQ(lagraph::advanced::triangle_count(&want_tris, g,
                                              lagraph::TcPresort::automatic,
                                              true, msg),
            LAGRAPH_OK)
      << msg;

  auto r_sssp = f_sssp.get();
  ASSERT_EQ(r_sssp.status, LAGRAPH_OK) << r_sssp.error;
  ASSERT_EQ(r_sssp.dist.nvals(), want_dist.nvals());
  want_dist.for_each([&](Index v, const double &d) {
    auto got = r_sssp.dist.get(v);
    ASSERT_TRUE(got.has_value());
    EXPECT_DOUBLE_EQ(*got, d);
  });

  auto r_pr = f_pr.get();
  ASSERT_GE(r_pr.status, LAGRAPH_OK) << r_pr.error;
  EXPECT_EQ(r_pr.iterations, want_iters);
  ASSERT_EQ(r_pr.ranks.nvals(), want_rank.nvals());
  want_rank.for_each([&](Index v, const double &x) {
    auto got = r_pr.ranks.get(v);
    ASSERT_TRUE(got.has_value());
    EXPECT_DOUBLE_EQ(*got, x);
  });

  auto r_tc = f_tc.get();
  ASSERT_EQ(r_tc.status, LAGRAPH_OK) << r_tc.error;
  EXPECT_EQ(r_tc.triangles, want_tris);
}

TEST(Engine, BurstCoalescesIntoFewSweeps) {
  auto snap = make_kron_snapshot(8, 5);
  EngineConfig cfg;
  cfg.threads = 1;  // all 32 queries sit queued behind one worker
  cfg.max_batch = 64;
  Engine engine(snap, cfg);
  std::vector<std::future<QueryResult>> futs;
  for (Index s = 0; s < 32; ++s) futs.push_back(engine.submit(bfs_req(s * 3)));
  std::size_t batched = 0;
  for (auto &f : futs) {
    auto res = f.get();
    ASSERT_EQ(res.status, LAGRAPH_OK) << res.error;
    if (res.batched) {
      ++batched;
      EXPECT_GE(res.batch_size, 2u);
    }
  }
  auto c = engine.counters();
  EXPECT_EQ(c.submitted, 32u);
  EXPECT_EQ(c.completed, 32u);
  EXPECT_EQ(c.batched_bfs, batched);
  // The first query may run solo, but the rest coalesce: far fewer sweeps
  // than queries.
  EXPECT_GE(batched, 30u);
  EXPECT_LE(c.bfs_sweeps, 3u);
}

TEST(Engine, BatchingDisabledRunsEverythingSolo) {
  auto snap = make_kron_snapshot(7, 6);
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.enable_batching = false;
  Engine engine(snap, cfg);
  std::vector<std::future<QueryResult>> futs;
  for (Index s = 0; s < 16; ++s) futs.push_back(engine.submit(bfs_req(s)));
  for (auto &f : futs) {
    auto res = f.get();
    ASSERT_EQ(res.status, LAGRAPH_OK) << res.error;
    EXPECT_FALSE(res.batched);
    EXPECT_EQ(res.batch_size, 1u);
  }
  auto c = engine.counters();
  EXPECT_EQ(c.bfs_sweeps, 0u);
  EXPECT_EQ(c.solo_queries, 16u);
}

TEST(Engine, ExpiredDeadlineIsRejected) {
  auto snap = make_kron_snapshot(6, 7);
  Engine engine(snap, EngineConfig{});
  Request r = bfs_req(0);
  r.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  auto res = engine.submit(r).get();
  EXPECT_EQ(res.status, LAGRAPH_SERVICE_DEADLINE);
  auto c = engine.counters();
  EXPECT_EQ(c.deadline_expired, 1u);
  EXPECT_EQ(c.failed, 1u);

  // A generous deadline is honoured.
  Request ok = bfs_req(1);
  ok.deadline = std::chrono::steady_clock::now() + std::chrono::minutes(5);
  EXPECT_EQ(engine.submit(ok).get().status, LAGRAPH_OK);
}

TEST(Engine, NoSnapshotAndStoppedAndQueueFull) {
  Engine empty;  // no snapshot installed
  EXPECT_EQ(empty.submit(bfs_req(0)).get().status,
            LAGRAPH_SERVICE_NO_SNAPSHOT);

  auto snap = make_kron_snapshot(6, 8);
  {
    Engine engine(snap, EngineConfig{});
    engine.stop();
    EXPECT_EQ(engine.submit(bfs_req(0)).get().status,
              LAGRAPH_SERVICE_STOPPED);
  }

  // Queue bound: hold the single worker on a slow query, then overfill.
  auto big = make_kron_snapshot(12, 9);
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.max_queue = 1;
  Engine engine(big, cfg);
  Request pr;
  pr.kind = QueryKind::pagerank;
  auto f_busy = engine.submit(pr);
  std::vector<std::future<QueryResult>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(engine.submit(bfs_req(0)));
  std::size_t rejected = 0;
  for (auto &f : futs) {
    if (f.get().status == LAGRAPH_SERVICE_QUEUE_FULL) ++rejected;
  }
  EXPECT_GE(f_busy.get().status, LAGRAPH_OK);
  EXPECT_GE(rejected, 1u);
  EXPECT_EQ(engine.counters().queue_rejected, rejected);
}

TEST(Engine, SnapshotIsolationAcrossInstall) {
  auto snap_a = make_kron_snapshot(7, 10);
  auto snap_b = make_kron_snapshot(7, 11);
  Engine engine(snap_a, EngineConfig{});
  auto f_a = engine.submit(bfs_req(2));
  engine.install_snapshot(snap_b);
  auto f_b = engine.submit(bfs_req(2));
  auto r_a = f_a.get();
  auto r_b = f_b.get();
  ASSERT_EQ(r_a.status, LAGRAPH_OK);
  ASSERT_EQ(r_b.status, LAGRAPH_OK);
  EXPECT_EQ(r_a.snapshot_id, snap_a->id());
  EXPECT_EQ(r_b.snapshot_id, snap_b->id());
  EXPECT_EQ(engine.counters().snapshot_installs, 1u);
}

// The acceptance-criterion stress test: 8 client threads firing mixed query
// types while the main thread keeps swapping snapshots underneath them.
// Correctness here is "every future resolves with a sane status and the
// books balance"; under TSan it is also "no data races anywhere in the
// engine, the kernels, or the snapshot machinery".
TEST(Engine, StressMixedQueriesWithConcurrentSnapshotSwap) {
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 60;
  constexpr int kSwaps = 10;

  std::vector<svc::SnapshotPtr> snaps;
  for (int i = 0; i < 3; ++i) snaps.push_back(make_kron_snapshot(7, 20 + i));

  EngineConfig cfg;
  cfg.threads = 4;
  cfg.max_batch = 16;
  Engine engine(snaps[0], cfg);

  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> failed{0};
  auto client = [&](int id) {
    std::uint64_t x = 0x9e3779b97f4a7c15ull * (id + 1);
    for (int q = 0; q < kQueriesPerClient; ++q) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      Request r;
      switch (x % 8) {
        case 0: r.kind = QueryKind::sssp; break;
        case 1: r.kind = QueryKind::pagerank; r.itermax = 20; break;
        case 2: r.kind = QueryKind::tc; break;
        default: r.kind = QueryKind::bfs; break;  // BFS-heavy mix
      }
      r.source = static_cast<Index>((x >> 8) % 128);
      auto res = engine.submit(r).get();
      if (res.status >= 0) {
        ok.fetch_add(1, std::memory_order_relaxed);
        if (r.kind == QueryKind::bfs) {
          EXPECT_GT(res.level.nvals(), 0u);
        }
      } else {
        // The only legal failure while snapshots churn is a service code.
        EXPECT_LE(res.status, LAGRAPH_SERVICE_DEADLINE);
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) clients.emplace_back(client, i);
  for (int s = 0; s < kSwaps; ++s) {
    engine.install_snapshot(snaps[s % snaps.size()]);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto &t : clients) t.join();
  engine.drain();

  auto c = engine.counters();
  EXPECT_EQ(ok.load() + failed.load(),
            static_cast<std::uint64_t>(kClients) * kQueriesPerClient);
  EXPECT_EQ(c.submitted,
            static_cast<std::uint64_t>(kClients) * kQueriesPerClient);
  EXPECT_EQ(c.completed, ok.load());
  EXPECT_EQ(c.failed, failed.load());
  EXPECT_EQ(c.snapshot_installs, static_cast<std::uint64_t>(kSwaps));
  engine.stop();
}

// Destruction under load: queued work is either completed or failed with
// LAGRAPH_SERVICE_STOPPED, never a broken promise.
TEST(Engine, StopUnderLoadLeavesNoBrokenPromises) {
  auto snap = make_kron_snapshot(8, 30);
  EngineConfig cfg;
  cfg.threads = 2;
  std::vector<std::future<QueryResult>> futs;
  {
    Engine engine(snap, cfg);
    for (Index s = 0; s < 40; ++s) futs.push_back(engine.submit(bfs_req(s)));
    // Engine destructor stops mid-queue.
  }
  for (auto &f : futs) {
    auto res = f.get();  // must not throw
    EXPECT_TRUE(res.status >= 0 || res.status == LAGRAPH_SERVICE_STOPPED)
        << res.status;
  }
}

# CMake generated Testfile for 
# Source directory: /root/repo/tests/gen
# Build directory: /root/repo/build/tests/gen
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/gen/tests_gen[1]_include.cmake")

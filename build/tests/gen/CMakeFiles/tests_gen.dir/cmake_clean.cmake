file(REMOVE_RECURSE
  "CMakeFiles/tests_gen.dir/test_generators.cpp.o"
  "CMakeFiles/tests_gen.dir/test_generators.cpp.o.d"
  "tests_gen"
  "tests_gen.pdb"
  "tests_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

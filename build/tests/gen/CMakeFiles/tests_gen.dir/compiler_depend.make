# Empty compiler generated dependencies file for tests_gen.
# This may be replaced when dependencies are built.

# Empty dependencies file for tests_grb.
# This may be replaced when dependencies are built.

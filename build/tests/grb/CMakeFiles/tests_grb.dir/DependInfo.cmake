
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/grb/test_apply_select.cpp" "tests/grb/CMakeFiles/tests_grb.dir/test_apply_select.cpp.o" "gcc" "tests/grb/CMakeFiles/tests_grb.dir/test_apply_select.cpp.o.d"
  "/root/repo/tests/grb/test_assign_extract.cpp" "tests/grb/CMakeFiles/tests_grb.dir/test_assign_extract.cpp.o" "gcc" "tests/grb/CMakeFiles/tests_grb.dir/test_assign_extract.cpp.o.d"
  "/root/repo/tests/grb/test_ewise.cpp" "tests/grb/CMakeFiles/tests_grb.dir/test_ewise.cpp.o" "gcc" "tests/grb/CMakeFiles/tests_grb.dir/test_ewise.cpp.o.d"
  "/root/repo/tests/grb/test_fastpaths.cpp" "tests/grb/CMakeFiles/tests_grb.dir/test_fastpaths.cpp.o" "gcc" "tests/grb/CMakeFiles/tests_grb.dir/test_fastpaths.cpp.o.d"
  "/root/repo/tests/grb/test_mask_semantics.cpp" "tests/grb/CMakeFiles/tests_grb.dir/test_mask_semantics.cpp.o" "gcc" "tests/grb/CMakeFiles/tests_grb.dir/test_mask_semantics.cpp.o.d"
  "/root/repo/tests/grb/test_matrix.cpp" "tests/grb/CMakeFiles/tests_grb.dir/test_matrix.cpp.o" "gcc" "tests/grb/CMakeFiles/tests_grb.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/grb/test_mxm.cpp" "tests/grb/CMakeFiles/tests_grb.dir/test_mxm.cpp.o" "gcc" "tests/grb/CMakeFiles/tests_grb.dir/test_mxm.cpp.o.d"
  "/root/repo/tests/grb/test_mxv_vxm.cpp" "tests/grb/CMakeFiles/tests_grb.dir/test_mxv_vxm.cpp.o" "gcc" "tests/grb/CMakeFiles/tests_grb.dir/test_mxv_vxm.cpp.o.d"
  "/root/repo/tests/grb/test_property_reference.cpp" "tests/grb/CMakeFiles/tests_grb.dir/test_property_reference.cpp.o" "gcc" "tests/grb/CMakeFiles/tests_grb.dir/test_property_reference.cpp.o.d"
  "/root/repo/tests/grb/test_reduce_transpose.cpp" "tests/grb/CMakeFiles/tests_grb.dir/test_reduce_transpose.cpp.o" "gcc" "tests/grb/CMakeFiles/tests_grb.dir/test_reduce_transpose.cpp.o.d"
  "/root/repo/tests/grb/test_semiring.cpp" "tests/grb/CMakeFiles/tests_grb.dir/test_semiring.cpp.o" "gcc" "tests/grb/CMakeFiles/tests_grb.dir/test_semiring.cpp.o.d"
  "/root/repo/tests/grb/test_vector.cpp" "tests/grb/CMakeFiles/tests_grb.dir/test_vector.cpp.o" "gcc" "tests/grb/CMakeFiles/tests_grb.dir/test_vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grb/CMakeFiles/grb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/tests_grb.dir/test_apply_select.cpp.o"
  "CMakeFiles/tests_grb.dir/test_apply_select.cpp.o.d"
  "CMakeFiles/tests_grb.dir/test_assign_extract.cpp.o"
  "CMakeFiles/tests_grb.dir/test_assign_extract.cpp.o.d"
  "CMakeFiles/tests_grb.dir/test_ewise.cpp.o"
  "CMakeFiles/tests_grb.dir/test_ewise.cpp.o.d"
  "CMakeFiles/tests_grb.dir/test_fastpaths.cpp.o"
  "CMakeFiles/tests_grb.dir/test_fastpaths.cpp.o.d"
  "CMakeFiles/tests_grb.dir/test_mask_semantics.cpp.o"
  "CMakeFiles/tests_grb.dir/test_mask_semantics.cpp.o.d"
  "CMakeFiles/tests_grb.dir/test_matrix.cpp.o"
  "CMakeFiles/tests_grb.dir/test_matrix.cpp.o.d"
  "CMakeFiles/tests_grb.dir/test_mxm.cpp.o"
  "CMakeFiles/tests_grb.dir/test_mxm.cpp.o.d"
  "CMakeFiles/tests_grb.dir/test_mxv_vxm.cpp.o"
  "CMakeFiles/tests_grb.dir/test_mxv_vxm.cpp.o.d"
  "CMakeFiles/tests_grb.dir/test_property_reference.cpp.o"
  "CMakeFiles/tests_grb.dir/test_property_reference.cpp.o.d"
  "CMakeFiles/tests_grb.dir/test_reduce_transpose.cpp.o"
  "CMakeFiles/tests_grb.dir/test_reduce_transpose.cpp.o.d"
  "CMakeFiles/tests_grb.dir/test_semiring.cpp.o"
  "CMakeFiles/tests_grb.dir/test_semiring.cpp.o.d"
  "CMakeFiles/tests_grb.dir/test_vector.cpp.o"
  "CMakeFiles/tests_grb.dir/test_vector.cpp.o.d"
  "tests_grb"
  "tests_grb.pdb"
  "tests_grb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_grb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

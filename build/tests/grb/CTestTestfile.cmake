# CMake generated Testfile for 
# Source directory: /root/repo/tests/grb
# Build directory: /root/repo/build/tests/grb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/grb/tests_grb[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/tests_gapbs.dir/test_gapbs.cpp.o"
  "CMakeFiles/tests_gapbs.dir/test_gapbs.cpp.o.d"
  "tests_gapbs"
  "tests_gapbs.pdb"
  "tests_gapbs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_gapbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

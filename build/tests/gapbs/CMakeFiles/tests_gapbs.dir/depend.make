# Empty dependencies file for tests_gapbs.
# This may be replaced when dependencies are built.

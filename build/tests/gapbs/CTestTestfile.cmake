# CMake generated Testfile for 
# Source directory: /root/repo/tests/gapbs
# Build directory: /root/repo/build/tests/gapbs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/gapbs/tests_gapbs[1]_include.cmake")

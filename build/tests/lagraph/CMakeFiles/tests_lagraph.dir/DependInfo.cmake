
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lagraph/test_bc.cpp" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_bc.cpp.o" "gcc" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_bc.cpp.o.d"
  "/root/repo/tests/lagraph/test_bfs.cpp" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_bfs.cpp.o" "gcc" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_bfs.cpp.o.d"
  "/root/repo/tests/lagraph/test_cc.cpp" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_cc.cpp.o" "gcc" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_cc.cpp.o.d"
  "/root/repo/tests/lagraph/test_error.cpp" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_error.cpp.o" "gcc" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_error.cpp.o.d"
  "/root/repo/tests/lagraph/test_experimental.cpp" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_experimental.cpp.o" "gcc" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_experimental.cpp.o.d"
  "/root/repo/tests/lagraph/test_experimental2.cpp" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_experimental2.cpp.o" "gcc" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_experimental2.cpp.o.d"
  "/root/repo/tests/lagraph/test_graph.cpp" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_graph.cpp.o" "gcc" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_graph.cpp.o.d"
  "/root/repo/tests/lagraph/test_integration.cpp" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_integration.cpp.o" "gcc" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_integration.cpp.o.d"
  "/root/repo/tests/lagraph/test_io.cpp" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_io.cpp.o" "gcc" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_io.cpp.o.d"
  "/root/repo/tests/lagraph/test_pagerank.cpp" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_pagerank.cpp.o" "gcc" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_pagerank.cpp.o.d"
  "/root/repo/tests/lagraph/test_sssp.cpp" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_sssp.cpp.o" "gcc" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_sssp.cpp.o.d"
  "/root/repo/tests/lagraph/test_tc.cpp" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_tc.cpp.o" "gcc" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_tc.cpp.o.d"
  "/root/repo/tests/lagraph/test_utils.cpp" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_utils.cpp.o" "gcc" "tests/lagraph/CMakeFiles/tests_lagraph.dir/test_utils.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lagraph/CMakeFiles/lagraph.dir/DependInfo.cmake"
  "/root/repo/build/src/gapbs/CMakeFiles/gapbs.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/gen.dir/DependInfo.cmake"
  "/root/repo/build/src/grb/CMakeFiles/grb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/tests_lagraph.dir/test_bc.cpp.o"
  "CMakeFiles/tests_lagraph.dir/test_bc.cpp.o.d"
  "CMakeFiles/tests_lagraph.dir/test_bfs.cpp.o"
  "CMakeFiles/tests_lagraph.dir/test_bfs.cpp.o.d"
  "CMakeFiles/tests_lagraph.dir/test_cc.cpp.o"
  "CMakeFiles/tests_lagraph.dir/test_cc.cpp.o.d"
  "CMakeFiles/tests_lagraph.dir/test_error.cpp.o"
  "CMakeFiles/tests_lagraph.dir/test_error.cpp.o.d"
  "CMakeFiles/tests_lagraph.dir/test_experimental.cpp.o"
  "CMakeFiles/tests_lagraph.dir/test_experimental.cpp.o.d"
  "CMakeFiles/tests_lagraph.dir/test_experimental2.cpp.o"
  "CMakeFiles/tests_lagraph.dir/test_experimental2.cpp.o.d"
  "CMakeFiles/tests_lagraph.dir/test_graph.cpp.o"
  "CMakeFiles/tests_lagraph.dir/test_graph.cpp.o.d"
  "CMakeFiles/tests_lagraph.dir/test_integration.cpp.o"
  "CMakeFiles/tests_lagraph.dir/test_integration.cpp.o.d"
  "CMakeFiles/tests_lagraph.dir/test_io.cpp.o"
  "CMakeFiles/tests_lagraph.dir/test_io.cpp.o.d"
  "CMakeFiles/tests_lagraph.dir/test_pagerank.cpp.o"
  "CMakeFiles/tests_lagraph.dir/test_pagerank.cpp.o.d"
  "CMakeFiles/tests_lagraph.dir/test_sssp.cpp.o"
  "CMakeFiles/tests_lagraph.dir/test_sssp.cpp.o.d"
  "CMakeFiles/tests_lagraph.dir/test_tc.cpp.o"
  "CMakeFiles/tests_lagraph.dir/test_tc.cpp.o.d"
  "CMakeFiles/tests_lagraph.dir/test_utils.cpp.o"
  "CMakeFiles/tests_lagraph.dir/test_utils.cpp.o.d"
  "tests_lagraph"
  "tests_lagraph.pdb"
  "tests_lagraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_lagraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tests_lagraph.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests/lagraph
# Build directory: /root/repo/build/tests/lagraph
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lagraph/tests_lagraph[1]_include.cmake")

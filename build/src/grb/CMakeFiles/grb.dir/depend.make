# Empty dependencies file for grb.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgrb.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/grb.dir/src/grb.cpp.o"
  "CMakeFiles/grb.dir/src/grb.cpp.o.d"
  "libgrb.a"
  "libgrb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

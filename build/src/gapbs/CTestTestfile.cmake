# CMake generated Testfile for 
# Source directory: /root/repo/src/gapbs
# Build directory: /root/repo/build/src/gapbs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

file(REMOVE_RECURSE
  "CMakeFiles/gapbs.dir/src/bc.cpp.o"
  "CMakeFiles/gapbs.dir/src/bc.cpp.o.d"
  "CMakeFiles/gapbs.dir/src/bfs.cpp.o"
  "CMakeFiles/gapbs.dir/src/bfs.cpp.o.d"
  "CMakeFiles/gapbs.dir/src/cc.cpp.o"
  "CMakeFiles/gapbs.dir/src/cc.cpp.o.d"
  "CMakeFiles/gapbs.dir/src/graph.cpp.o"
  "CMakeFiles/gapbs.dir/src/graph.cpp.o.d"
  "CMakeFiles/gapbs.dir/src/oracles.cpp.o"
  "CMakeFiles/gapbs.dir/src/oracles.cpp.o.d"
  "CMakeFiles/gapbs.dir/src/pagerank.cpp.o"
  "CMakeFiles/gapbs.dir/src/pagerank.cpp.o.d"
  "CMakeFiles/gapbs.dir/src/sssp.cpp.o"
  "CMakeFiles/gapbs.dir/src/sssp.cpp.o.d"
  "CMakeFiles/gapbs.dir/src/tc.cpp.o"
  "CMakeFiles/gapbs.dir/src/tc.cpp.o.d"
  "libgapbs.a"
  "libgapbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gapbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gapbs/src/bc.cpp" "src/gapbs/CMakeFiles/gapbs.dir/src/bc.cpp.o" "gcc" "src/gapbs/CMakeFiles/gapbs.dir/src/bc.cpp.o.d"
  "/root/repo/src/gapbs/src/bfs.cpp" "src/gapbs/CMakeFiles/gapbs.dir/src/bfs.cpp.o" "gcc" "src/gapbs/CMakeFiles/gapbs.dir/src/bfs.cpp.o.d"
  "/root/repo/src/gapbs/src/cc.cpp" "src/gapbs/CMakeFiles/gapbs.dir/src/cc.cpp.o" "gcc" "src/gapbs/CMakeFiles/gapbs.dir/src/cc.cpp.o.d"
  "/root/repo/src/gapbs/src/graph.cpp" "src/gapbs/CMakeFiles/gapbs.dir/src/graph.cpp.o" "gcc" "src/gapbs/CMakeFiles/gapbs.dir/src/graph.cpp.o.d"
  "/root/repo/src/gapbs/src/oracles.cpp" "src/gapbs/CMakeFiles/gapbs.dir/src/oracles.cpp.o" "gcc" "src/gapbs/CMakeFiles/gapbs.dir/src/oracles.cpp.o.d"
  "/root/repo/src/gapbs/src/pagerank.cpp" "src/gapbs/CMakeFiles/gapbs.dir/src/pagerank.cpp.o" "gcc" "src/gapbs/CMakeFiles/gapbs.dir/src/pagerank.cpp.o.d"
  "/root/repo/src/gapbs/src/sssp.cpp" "src/gapbs/CMakeFiles/gapbs.dir/src/sssp.cpp.o" "gcc" "src/gapbs/CMakeFiles/gapbs.dir/src/sssp.cpp.o.d"
  "/root/repo/src/gapbs/src/tc.cpp" "src/gapbs/CMakeFiles/gapbs.dir/src/tc.cpp.o" "gcc" "src/gapbs/CMakeFiles/gapbs.dir/src/tc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gen/CMakeFiles/gen.dir/DependInfo.cmake"
  "/root/repo/build/src/grb/CMakeFiles/grb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for gapbs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgapbs.a"
)

# CMake generated Testfile for 
# Source directory: /root/repo/src/lagraph
# Build directory: /root/repo/build/src/lagraph
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

file(REMOVE_RECURSE
  "CMakeFiles/lagraph.dir/src/lagraph.cpp.o"
  "CMakeFiles/lagraph.dir/src/lagraph.cpp.o.d"
  "liblagraph.a"
  "liblagraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lagraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/gen.dir/src/generators.cpp.o"
  "CMakeFiles/gen.dir/src/generators.cpp.o.d"
  "libgen.a"
  "libgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/lagraph_cli.dir/lagraph_cli.cpp.o"
  "CMakeFiles/lagraph_cli.dir/lagraph_cli.cpp.o.d"
  "lagraph_cli"
  "lagraph_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lagraph_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lagraph_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_formats.dir/ablation_formats.cpp.o"
  "CMakeFiles/ablation_formats.dir/ablation_formats.cpp.o.d"
  "ablation_formats"
  "ablation_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

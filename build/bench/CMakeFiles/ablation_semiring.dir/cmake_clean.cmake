file(REMOVE_RECURSE
  "CMakeFiles/ablation_semiring.dir/ablation_semiring.cpp.o"
  "CMakeFiles/ablation_semiring.dir/ablation_semiring.cpp.o.d"
  "ablation_semiring"
  "ablation_semiring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_semiring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_semiring.
# This may be replaced when dependencies are built.

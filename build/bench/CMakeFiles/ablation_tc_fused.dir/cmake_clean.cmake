file(REMOVE_RECURSE
  "CMakeFiles/ablation_tc_fused.dir/ablation_tc_fused.cpp.o"
  "CMakeFiles/ablation_tc_fused.dir/ablation_tc_fused.cpp.o.d"
  "ablation_tc_fused"
  "ablation_tc_fused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tc_fused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_tc_fused.
# This may be replaced when dependencies are built.

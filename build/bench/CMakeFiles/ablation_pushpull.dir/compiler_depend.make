# Empty compiler generated dependencies file for ablation_pushpull.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_pushpull.dir/ablation_pushpull.cpp.o"
  "CMakeFiles/ablation_pushpull.dir/ablation_pushpull.cpp.o.d"
  "ablation_pushpull"
  "ablation_pushpull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pushpull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table4_graphs.
# This may be replaced when dependencies are built.

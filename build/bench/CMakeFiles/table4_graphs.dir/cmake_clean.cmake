file(REMOVE_RECURSE
  "CMakeFiles/table4_graphs.dir/table4_graphs.cpp.o"
  "CMakeFiles/table4_graphs.dir/table4_graphs.cpp.o.d"
  "table4_graphs"
  "table4_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/graphalytics_workflow.dir/graphalytics_workflow.cpp.o"
  "CMakeFiles/graphalytics_workflow.dir/graphalytics_workflow.cpp.o.d"
  "graphalytics_workflow"
  "graphalytics_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphalytics_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

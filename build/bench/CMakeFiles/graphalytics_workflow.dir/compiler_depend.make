# Empty compiler generated dependencies file for graphalytics_workflow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_grb_ops.dir/bench_grb_ops.cpp.o"
  "CMakeFiles/bench_grb_ops.dir/bench_grb_ops.cpp.o.d"
  "bench_grb_ops"
  "bench_grb_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grb_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_grb_ops.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_diameter.dir/ablation_diameter.cpp.o"
  "CMakeFiles/ablation_diameter.dir/ablation_diameter.cpp.o.d"
  "ablation_diameter"
  "ablation_diameter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_diameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

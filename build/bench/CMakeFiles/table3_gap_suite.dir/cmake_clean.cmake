file(REMOVE_RECURSE
  "CMakeFiles/table3_gap_suite.dir/table3_gap_suite.cpp.o"
  "CMakeFiles/table3_gap_suite.dir/table3_gap_suite.cpp.o.d"
  "table3_gap_suite"
  "table3_gap_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_gap_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

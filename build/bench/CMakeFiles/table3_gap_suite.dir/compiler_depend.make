# Empty compiler generated dependencies file for table3_gap_suite.
# This may be replaced when dependencies are built.

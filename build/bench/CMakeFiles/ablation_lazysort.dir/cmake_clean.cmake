file(REMOVE_RECURSE
  "CMakeFiles/ablation_lazysort.dir/ablation_lazysort.cpp.o"
  "CMakeFiles/ablation_lazysort.dir/ablation_lazysort.cpp.o.d"
  "ablation_lazysort"
  "ablation_lazysort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lazysort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

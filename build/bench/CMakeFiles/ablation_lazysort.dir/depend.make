# Empty dependencies file for ablation_lazysort.
# This may be replaced when dependencies are built.

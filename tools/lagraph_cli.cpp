// lagraph_cli — command-line driver for the library: load a graph from a
// Matrix Market file (or generate a synthetic one), run a chosen algorithm,
// print the result. The adoption path for users who do not want to write
// C++ at all.
//
//   lagraph_cli <algorithm> [options]
//
// Algorithms: bfs, pagerank, pagerank-dangling, sssp, tc, cc, bc, ktruss,
//             lcc, cdlp, msbfs, stats
// Planner introspection:
//   explain [OP]         print the grb::plan execution plans the given op
//                        would run on this graph (OP: bfs|mxv|vxm|mxm|ewise|
//                        fused, default bfs) — cost-model inputs, chosen
//                        direction, operand formats, thread-team size, and
//                        the loaded calibration coefficients
//   explain query 'PAT'  compile the pattern query against this graph and
//                        print both the optimized and the naive multi-op
//                        plan (lagraph::query; grammar in docs/API.md) so
//                        the optimizer's reordering / mask pushdown / CSE
//                        decisions are visible side by side
// Service commands (lagraph::service):
//   serve                build a snapshot, start an Engine, run a query
//                        script through the batching worker pool; a script
//                        with mutation lines runs them through an
//                        ingest::Writer whose epochs are swapped into the
//                        engine live
//   replay               same script, but one worker and batching off —
//                        the one-query-at-a-time baseline to compare against
//                        (mutation lines are rejected: the baseline is
//                        deterministic)
//   top                  poll a running engine's /statusz telemetry endpoint
//                        (--host/--port/--interval-ms/--count) and print a
//                        one-line status per sample
// Ingest commands (lagraph::ingest):
//   mutate               stream a mutation script (or --mutations N random
//                        edits) through an ingest::Writer and report the
//                        published epochs and final snapshot
// Options:
//   --mtx FILE           load a Matrix Market file
//   --graphalytics V E   load Graphalytics vertex+edge files
//   --gen KIND SCALE     generate: kron|urand|twitter|web|road (default
//                        kron 12)
//   --undirected         treat the graph as undirected
//   --source N           source vertex (bfs/sssp/bc/msbfs; default 0)
//   --delta X            SSSP delta (default 2)
//   --k N                k for ktruss (default 3)
//   --top N              print the top-N entries of vector results (def. 10)
//   --script FILE        serve/replay/mutate script: one line per command —
//                        queries `bfs SRC`, `sssp SRC [DELTA]`, `pagerank`,
//                        `tc`, `query PATTERN...` (rest of the line is a
//                        lagraph::query pattern, run as QueryKind::cypher);
//                        mutations `ins SRC DST [W]`, `ups SRC DST
//                        [W]`, `del SRC DST`; `publish` forces an epoch
//                        boundary; '#' starts a comment. Without a script,
//                        serve runs 64 BFS queries from hashed sources and
//                        mutate streams --mutations random edits.
//   --mutations N        mutate: synthetic mutation count (default 1024)
//   --threads N          serve: worker pool size (default 2)
//   --window-us U        serve: BFS coalescing window in µs (default 200)
//   --max-batch B        serve: max sources per msbfs sweep (default 64)
//   --no-batch           serve: disable batching (still multi-threaded)
//   --prometheus FILE    serve/replay: write the engine's Prometheus text
//                        exposition (counters + latency histograms) to FILE
//   --telemetry-port P   serve: start the embedded HTTP telemetry server on
//                        port P (0 = ephemeral; the bound port is printed)
//   --serve-seconds S    serve: keep serving (and scraping) S seconds after
//                        the script completes
//   --slow-query-ms X    serve: threshold for the structured slow-query log
//   --slow-query-log F   serve: append slow-query JSONL records to F
//   --json               stats: dump graph summary + grb::Stats as JSON
//   --burble             narrate algorithm iterations to stderr
// Tracing (grb::trace):
//   trace ALGO [opts]    run ALGO with span recording on, write a Chrome
//                        trace-event JSON (open in Perfetto), print per-op
//                        latency percentiles and the plan-vs-actual
//                        calibration report
//   --trace-out FILE     trace: output path (default trace.json)
//   --sample N           trace: record every Nth span per thread (default 1)
// Cost-model calibration (grb::plan, see docs/API.md):
//   --calibration FILE   load fitted ns/cost-unit coefficients before
//                        planning (any command; explain reports them)
//   --calibration-out F  trace: persist the run's fitted coefficients to F
//                        for later --calibration loads
// Conformance fuzzing (grb::testing, see docs/TESTING.md):
//   fuzz [opts]          differential fuzz of the grb kernels against the
//                        naive oracle; exits non-zero on any mismatch
//   --seconds X          fuzz: wall-clock budget (default 30)
//   --ops N              fuzz: scenario budget instead of a time budget
//   --seed N             fuzz: first scenario seed (default 1; printed on
//                        failure so the run is reproducible)
//   --corpus DIR         fuzz: replay every .repro under DIR before fuzzing
//   --replay FILE        fuzz: replay one .repro and exit
//   --out FILE           fuzz: where to write a shrunk failure
//                        (default fuzz_failure.repro)
//   --emit-corpus DIR    fuzz: regenerate the seed corpus into DIR and exit
//   --query              fuzz: fuzz the query layer instead (pattern-query
//                        scenarios differentially checked against the
//                        tuple-at-a-time oracle; query::testing, corpus
//                        under tests/corpus/query/)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "grb/testing/differ.hpp"
#include "ingest/writer.hpp"
#include "lagraph/lagraph.hpp"
#include "query/query.hpp"
#include "query/testing/qtest.hpp"
#include "service/engine.hpp"
#include "service/telemetry.hpp"

namespace {

struct Options {
  std::string algorithm;
  std::string mtx;
  std::string ga_vertices;
  std::string ga_edges;
  std::string gen_kind = "kron";
  int gen_scale = 12;
  bool undirected = false;
  grb::Index source = 0;
  double delta = 2.0;
  std::uint32_t k = 3;
  int top = 10;
  std::string script;
  int threads = 2;
  long window_us = 200;
  std::uint32_t max_batch = 64;
  bool no_batch = false;
  std::string explain_op = "bfs";
  std::string query_text;  // explain query: the pattern source
  int mutations = 1024;
  bool json = false;
  bool burble = false;
  bool trace = false;
  std::string trace_out = "trace.json";
  std::uint32_t sample = 1;
  std::string prometheus;
  std::string calibration;
  std::string calibration_out;
  int telemetry_port = -1;      // serve: -1 = off, 0 = ephemeral
  double serve_seconds = 0;     // serve: keep serving after the script
  double slow_query_ms = 0;     // serve: slow-query threshold (0 = off)
  std::string slow_query_log;   // serve: slow-query JSONL sink
  std::string host = "127.0.0.1";  // top: telemetry host
  int port = -1;                   // top: telemetry port
  long interval_ms = 1000;         // top: poll interval
  int count = 5;                   // top: iterations (0 = forever)
};

int usage() {
  std::fprintf(
      stderr,
      "usage: lagraph_cli <bfs|pagerank|pagerank-dangling|sssp|tc|cc|bc|"
      "ktruss|lcc|cdlp|msbfs|stats|explain|serve|replay|mutate> [options]\n"
      "       lagraph_cli trace <algorithm> [options]\n"
      "       lagraph_cli fuzz [--query] [--seconds X|--ops N] [--seed N]\n"
      "                        [--corpus DIR] [--replay FILE] [--out FILE]\n"
      "                        [--emit-corpus DIR]\n"
      "  explain [bfs|mxv|vxm|mxm|ewise|fused]  print execution plans\n"
      "  explain query 'PATTERN'  print optimized vs naive query plans\n"
      "  --mtx FILE | --graphalytics V E | --gen KIND SCALE\n"
      "  --undirected --source N --delta X --k N --top N\n"
      "  --json (stats) --burble\n"
      "  --calibration FILE (load coefficients) --calibration-out FILE "
      "(trace: persist fit)\n"
      "  trace: --trace-out FILE --sample N\n"
      "  serve/replay: --script FILE --threads N --window-us U "
      "--max-batch B --no-batch --prometheus FILE\n"
      "  serve: --telemetry-port P (0 = ephemeral) --serve-seconds S\n"
      "         --slow-query-ms X --slow-query-log FILE\n"
      "  top: --host H --port P --interval-ms M --count N  (poll a running "
      "engine's /statusz)\n"
      "  mutate: --script FILE | --mutations N  (script lines: ins/ups/del "
      "SRC DST [W], publish)\n");
  return 2;
}

bool parse_args(int argc, char **argv, Options &opt) {
  if (argc < 2) return false;
  int first = 2;
  opt.algorithm = argv[1];
  if (opt.algorithm == "trace") {
    if (argc < 3 || argv[2][0] == '-') {
      std::fprintf(stderr, "trace: expected an algorithm\n");
      return false;
    }
    opt.trace = true;
    opt.algorithm = argv[2];
    first = 3;
  }
  const char *known[] = {"bfs",    "pagerank", "pagerank-dangling", "sssp",
                         "tc",     "cc",       "bc",                "ktruss",
                         "lcc",    "cdlp",     "msbfs",             "stats",
                         "explain", "serve",   "replay",            "mutate",
                         "top"};
  bool ok = false;
  for (const char *k : known) ok = ok || opt.algorithm == k;
  if (!ok) {
    std::fprintf(stderr, "unknown algorithm: %s\n", opt.algorithm.c_str());
    return false;
  }
  if (opt.algorithm == "explain" && argc > first && argv[first][0] != '-') {
    opt.explain_op = argv[first];
    ++first;
    // `explain query 'MATCH ...'` — the next argument is the pattern text.
    if (opt.explain_op == "query" && argc > first && argv[first][0] != '-') {
      opt.query_text = argv[first];
      ++first;
    }
  }
  for (int i = first; i < argc; ++i) {
    std::string a = argv[i];
    auto need = [&](int count) { return i + count < argc; };
    if (a == "--mtx" && need(1)) {
      opt.mtx = argv[++i];
    } else if (a == "--graphalytics" && need(2)) {
      opt.ga_vertices = argv[++i];
      opt.ga_edges = argv[++i];
    } else if (a == "--gen" && need(2)) {
      opt.gen_kind = argv[++i];
      opt.gen_scale = std::atoi(argv[++i]);
    } else if (a == "--undirected") {
      opt.undirected = true;
    } else if (a == "--source" && need(1)) {
      opt.source = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--delta" && need(1)) {
      opt.delta = std::atof(argv[++i]);
    } else if (a == "--k" && need(1)) {
      opt.k = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (a == "--top" && need(1)) {
      opt.top = std::atoi(argv[++i]);
    } else if (a == "--script" && need(1)) {
      opt.script = argv[++i];
    } else if (a == "--threads" && need(1)) {
      opt.threads = std::atoi(argv[++i]);
    } else if (a == "--window-us" && need(1)) {
      opt.window_us = std::atol(argv[++i]);
    } else if (a == "--max-batch" && need(1)) {
      opt.max_batch = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (a == "--no-batch") {
      opt.no_batch = true;
    } else if (a == "--mutations" && need(1)) {
      opt.mutations = std::atoi(argv[++i]);
    } else if (a == "--json") {
      opt.json = true;
    } else if (a == "--burble") {
      opt.burble = true;
    } else if (a == "--trace-out" && need(1)) {
      opt.trace_out = argv[++i];
    } else if (a == "--sample" && need(1)) {
      opt.sample = static_cast<std::uint32_t>(
          std::max(1, std::atoi(argv[++i])));
    } else if (a == "--prometheus" && need(1)) {
      opt.prometheus = argv[++i];
    } else if (a == "--telemetry-port" && need(1)) {
      opt.telemetry_port = std::atoi(argv[++i]);
    } else if (a == "--serve-seconds" && need(1)) {
      opt.serve_seconds = std::atof(argv[++i]);
    } else if (a == "--slow-query-ms" && need(1)) {
      opt.slow_query_ms = std::atof(argv[++i]);
    } else if (a == "--slow-query-log" && need(1)) {
      opt.slow_query_log = argv[++i];
    } else if (a == "--host" && need(1)) {
      opt.host = argv[++i];
    } else if (a == "--port" && need(1)) {
      opt.port = std::atoi(argv[++i]);
    } else if (a == "--interval-ms" && need(1)) {
      opt.interval_ms = std::atol(argv[++i]);
    } else if (a == "--count" && need(1)) {
      opt.count = std::atoi(argv[++i]);
    } else if (a == "--calibration" && need(1)) {
      opt.calibration = argv[++i];
    } else if (a == "--calibration-out" && need(1)) {
      opt.calibration_out = argv[++i];
    } else {
      std::fprintf(stderr, "unknown or incomplete option: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

int load_graph(lagraph::Graph<double> &g, const Options &opt, char *msg) {
  if (!opt.mtx.empty()) {
    grb::Matrix<double> a(0, 0);
    int status = lagraph::mm_read(a, opt.mtx, msg);
    if (status < 0) return status;
    return lagraph::make_graph(g, std::move(a),
                               opt.undirected
                                   ? lagraph::Kind::adjacency_undirected
                                   : lagraph::Kind::adjacency_directed,
                               msg);
  }
  if (!opt.ga_vertices.empty()) {
    return lagraph::graphalytics_read(g, nullptr, opt.ga_vertices,
                                      opt.ga_edges, !opt.undirected, msg);
  }
  gen::EdgeList el;
  bool directed = !opt.undirected;
  if (opt.gen_kind == "kron") {
    el = gen::kronecker(opt.gen_scale, 8, 42);
    directed = false;
  } else if (opt.gen_kind == "urand") {
    el = gen::uniform_random(opt.gen_scale, 8, 42);
    directed = false;
  } else if (opt.gen_kind == "twitter") {
    el = gen::twitter_like(opt.gen_scale, 8, 42);
  } else if (opt.gen_kind == "web") {
    el = gen::web_like(opt.gen_scale, 8, 42);
  } else if (opt.gen_kind == "road") {
    grb::Index side = grb::Index{1} << (opt.gen_scale / 2);
    el = gen::road_grid(side, side, 42);
  } else {
    return lagraph::detail::set_msg(msg, LAGRAPH_INVALID_VALUE,
                                    "unknown --gen kind");
  }
  gen::add_uniform_weights(el, 1, 255, 7);
  return lagraph::make_graph(g, gen::to_matrix<double>(el),
                             directed ? lagraph::Kind::adjacency_directed
                                      : lagraph::Kind::adjacency_undirected,
                             msg);
}

// One line of a serve/replay/mutate script: a query for the engine, a
// mutation for the ingest writer, or a forced epoch boundary.
struct ScriptItem {
  enum class What : std::uint8_t { query, mutation, publish };
  What what = What::query;
  lagraph::service::Request req;
  lagraph::ingest::Mutation mut;
};

// Parse a script (one command per line, '#' comments). With no --script,
// synthesize 64 BFS queries from hashed sources — the workload that shows
// batching off best. `allow_mutations` is off for replay (the deterministic
// baseline) and `allow_queries` off for the mutate command.
int parse_script(std::vector<ScriptItem> &items, const Options &opt,
                 grb::Index n, bool allow_queries, bool allow_mutations,
                 char *msg) {
  namespace svc = lagraph::service;
  namespace ing = lagraph::ingest;
  if (opt.script.empty()) {
    if (!allow_queries) return LAGRAPH_OK;  // mutate synthesizes its own
    for (int i = 0; i < 64; ++i) {
      ScriptItem it;
      it.req.kind = svc::QueryKind::bfs;
      it.req.source = static_cast<grb::Index>(i * 2654435761ull) % n;
      items.push_back(it);
    }
    return LAGRAPH_OK;
  }
  std::ifstream in(opt.script);
  if (!in) {
    return lagraph::detail::set_msg(msg, LAGRAPH_IO_ERROR,
                                    "cannot open --script file");
  }
  std::string line;
  while (std::getline(in, line)) {
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;
    ScriptItem it;
    it.req.delta = opt.delta;
    if (kind == "ins" || kind == "ups" || kind == "del") {
      if (!allow_mutations) {
        return lagraph::detail::set_msg(
            msg, LAGRAPH_INVALID_VALUE,
            "script: mutation lines are not allowed here (replay is the "
            "deterministic baseline; use serve or mutate)");
      }
      unsigned long long src, dst;
      if (!(ls >> src >> dst)) {
        return lagraph::detail::set_msg(
            msg, LAGRAPH_INVALID_VALUE,
            "script: ins/ups/del needs SRC DST [W]");
      }
      it.what = ScriptItem::What::mutation;
      it.mut.op = kind == "ins"   ? ing::MutationOp::insert
                  : kind == "ups" ? ing::MutationOp::upsert
                                  : ing::MutationOp::remove;
      it.mut.src = static_cast<grb::Index>(src) % n;
      it.mut.dst = static_cast<grb::Index>(dst) % n;
      double w;
      if (ls >> w) it.mut.weight = w;
    } else if (kind == "publish") {
      if (!allow_mutations) {
        return lagraph::detail::set_msg(
            msg, LAGRAPH_INVALID_VALUE,
            "script: publish is not allowed here");
      }
      it.what = ScriptItem::What::publish;
    } else if (!allow_queries) {
      return lagraph::detail::set_msg(
          msg, LAGRAPH_INVALID_VALUE,
          "script: mutate scripts take only ins/ups/del/publish lines");
    } else if (kind == "bfs" || kind == "sssp") {
      unsigned long long src;
      if (!(ls >> src)) {
        return lagraph::detail::set_msg(msg, LAGRAPH_INVALID_VALUE,
                                        "script: bfs/sssp needs a source");
      }
      it.req.source = static_cast<grb::Index>(src) % n;
      it.req.kind = kind == "bfs" ? svc::QueryKind::bfs : svc::QueryKind::sssp;
      if (kind == "sssp") {
        double d;
        if (ls >> d) it.req.delta = d;
      }
    } else if (kind == "query") {
      std::string rest;
      std::getline(ls, rest);
      const auto start = rest.find_first_not_of(" \t");
      if (start == std::string::npos) {
        return lagraph::detail::set_msg(msg, LAGRAPH_INVALID_VALUE,
                                        "script: query needs a pattern");
      }
      it.req.kind = svc::QueryKind::cypher;
      it.req.query = rest.substr(start);
    } else if (kind == "pagerank") {
      it.req.kind = svc::QueryKind::pagerank;
    } else if (kind == "tc") {
      it.req.kind = svc::QueryKind::tc;
    } else {
      return lagraph::detail::set_msg(msg, LAGRAPH_INVALID_VALUE,
                                      "script: unknown query kind");
    }
    items.push_back(it);
  }
  if (items.empty()) {
    return lagraph::detail::set_msg(msg, LAGRAPH_INVALID_VALUE,
                                    "script: no commands");
  }
  return LAGRAPH_OK;
}

// The seeds the committed corpus (tests/corpus/) is regenerated from with
// --emit-corpus: a deterministic spread over the op space. Append-only — a
// corpus file, once committed, must keep meaning the same scenario.
// Fibonacci spread over the seed space, plus regression seeds: 672 produced
// the complemented-no-mask assign_vv scenario that exposed the missing
// mask_complement check in the vector-assign bitmap fast path.
constexpr std::uint64_t kCorpusSeeds[] = {
    1,  2,  3,  5,  8,  13,  21,  34,  55,  89,  144, 233,
    377, 610, 672, 987, 1597, 2584, 4181, 6765, 10946, 17711, 28657};

// Query-layer analogue of kCorpusSeeds: the committed tests/corpus/query/
// seed_*.repro files are regenerated from these with `fuzz --query
// --emit-corpus`. Same append-only rule. Two hand-reduced scenarios
// (shrunk_degree_hub — both-direction edge + degree predicate over an
// undirected hub; shrunk_pin_cycle — directed cycle with a pin + LIMIT)
// live alongside them and are not regenerated.
constexpr std::uint64_t kQueryCorpusSeeds[] = {1, 2, 7, 19, 42, 137, 1009};

// `fuzz --query`: the same emit/replay/corpus/fuzz flow, one layer up —
// pattern-query scenarios differentially checked against the
// tuple-at-a-time oracle across the full RunConfig sweep × {naive,
// optimized} compilation.
int run_query_fuzz(double seconds, std::uint64_t ops, std::uint64_t seed,
                   const std::string &corpus, const std::string &replay,
                   const std::string &out, const std::string &emit) {
  namespace qt = lagraph::query::testing;

  if (!emit.empty()) {
    for (std::uint64_t s : kQueryCorpusSeeds) {
      qt::QueryScenario sc = qt::generate(s);
      char name[64];
      std::snprintf(name, sizeof name, "/seed_%llu.repro",
                    static_cast<unsigned long long>(s));
      std::ofstream f(emit + name);
      if (!f) {
        std::fprintf(stderr, "fuzz: cannot write to %s\n", emit.c_str());
        return 2;
      }
      f << qt::serialize(sc);
    }
    std::printf("fuzz: wrote %zu query corpus files to %s\n",
                std::size(kQueryCorpusSeeds), emit.c_str());
    return 0;
  }

  if (!replay.empty()) {
    std::string err;
    auto mm = qt::replay_file(replay, &err);
    if (!err.empty()) {
      std::fprintf(stderr, "fuzz: %s\n", err.c_str());
      return 2;
    }
    if (mm) {
      std::fprintf(stderr, "%s\n", mm->to_string().c_str());
      return 1;
    }
    std::printf("fuzz: %s replays clean across %zu configs x 2 modes\n",
                replay.c_str(), grb::testing::sweep_configs().size());
    return 0;
  }

  if (!corpus.empty()) {
    auto outcome = qt::replay_corpus(corpus);
    std::printf(
        "fuzz: query corpus %s — %d files, %llu instances, %d failures\n",
        corpus.c_str(), outcome.files,
        static_cast<unsigned long long>(outcome.instances), outcome.failures);
    if (outcome.failures > 0) {
      std::fprintf(stderr, "%s", outcome.detail.c_str());
      return 1;
    }
  }

  if (seconds <= 0 && ops == 0) return 0;

  qt::QueryFuzzOptions fo;
  fo.seconds = ops > 0 ? 0 : seconds;
  fo.max_scenarios = ops;
  fo.seed = seed;
  auto rep = qt::fuzz(fo);
  std::printf("fuzz: %llu query scenarios, %llu instances "
              "(scenario x config x mode), seeds %llu..%llu\n",
              static_cast<unsigned long long>(rep.scenarios),
              static_cast<unsigned long long>(rep.instances),
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed + rep.scenarios - 1));
  if (!rep.ok) {
    std::fprintf(stderr,
                 "fuzz: MISMATCH at seed %llu (rerun: lagraph_cli fuzz "
                 "--query --seed %llu --ops 1)\n%s\n",
                 static_cast<unsigned long long>(rep.failing_seed),
                 static_cast<unsigned long long>(rep.failing_seed),
                 rep.detail.c_str());
    std::ofstream f(out);
    if (f) {
      f << rep.repro;
      std::fprintf(stderr, "fuzz: shrunk repro written to %s\n", out.c_str());
    }
    return 1;
  }
  std::printf("fuzz: all query instances agree with the oracle\n");
  return 0;
}

int run_fuzz(int argc, char **argv) {
  namespace gt = grb::testing;
  bool query = false;
  double seconds = 30;
  std::uint64_t ops = 0;
  std::uint64_t seed = 1;
  std::string corpus, replay, out = "fuzz_failure.repro", emit;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    auto need = [&](int count) { return i + count < argc; };
    if (a == "--seconds" && need(1)) {
      seconds = std::atof(argv[++i]);
    } else if (a == "--ops" && need(1)) {
      ops = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--seed" && need(1)) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--corpus" && need(1)) {
      corpus = argv[++i];
    } else if (a == "--replay" && need(1)) {
      replay = argv[++i];
    } else if (a == "--out" && need(1)) {
      out = argv[++i];
    } else if (a == "--emit-corpus" && need(1)) {
      emit = argv[++i];
    } else if (a == "--query") {
      query = true;
    } else {
      std::fprintf(stderr, "fuzz: unknown or incomplete option: %s\n",
                   a.c_str());
      return 2;
    }
  }
  if (query) return run_query_fuzz(seconds, ops, seed, corpus, replay, out, emit);

  if (!emit.empty()) {
    for (std::uint64_t s : kCorpusSeeds) {
      gt::Scenario sc = gt::generate(s);
      char name[64];
      std::snprintf(name, sizeof name, "/seed_%llu.repro",
                    static_cast<unsigned long long>(s));
      std::ofstream f(emit + name);
      if (!f) {
        std::fprintf(stderr, "fuzz: cannot write to %s\n", emit.c_str());
        return 2;
      }
      f << gt::serialize(sc);
    }
    std::printf("fuzz: wrote %zu corpus files to %s\n",
                std::size(kCorpusSeeds), emit.c_str());
    return 0;
  }

  if (!replay.empty()) {
    std::string err;
    auto mm = gt::replay_file(replay, &err);
    if (!err.empty()) {
      std::fprintf(stderr, "fuzz: %s\n", err.c_str());
      return 2;
    }
    if (mm) {
      std::fprintf(stderr, "%s\n", mm->to_string().c_str());
      return 1;
    }
    std::printf("fuzz: %s replays clean across %zu configs\n", replay.c_str(),
                gt::sweep_configs().size());
    return 0;
  }

  if (!corpus.empty()) {
    auto outcome = gt::replay_corpus(corpus);
    std::printf("fuzz: corpus %s — %d files, %llu instances, %d failures\n",
                corpus.c_str(), outcome.files,
                static_cast<unsigned long long>(outcome.instances),
                outcome.failures);
    if (outcome.failures > 0) {
      std::fprintf(stderr, "%s", outcome.detail.c_str());
      return 1;
    }
  }

  // --seconds 0 without an --ops budget means "corpus / replay only":
  // letting both budgets be unlimited would fuzz forever.
  if (seconds <= 0 && ops == 0) return 0;

  gt::FuzzOptions fo;
  fo.seconds = ops > 0 ? 0 : seconds;
  fo.max_scenarios = ops;
  fo.seed = seed;
  auto rep = gt::fuzz(fo);
  std::printf(
      "fuzz: %llu scenarios, %llu instances (op × config), seeds %llu..%llu\n",
      static_cast<unsigned long long>(rep.scenarios),
      static_cast<unsigned long long>(rep.instances),
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(seed + rep.scenarios - 1));
  if (!rep.ok) {
    std::fprintf(stderr, "fuzz: MISMATCH at seed %llu (rerun: lagraph_cli "
                         "fuzz --seed %llu --ops 1)\n%s\n",
                 static_cast<unsigned long long>(rep.failing_seed),
                 static_cast<unsigned long long>(rep.failing_seed),
                 rep.detail.c_str());
    std::ofstream f(out);
    if (f) {
      f << rep.repro;
      std::fprintf(stderr, "fuzz: shrunk repro written to %s\n", out.c_str());
    }
    return 1;
  }
  std::printf("fuzz: all instances agree with the oracle\n");
  return 0;
}

// Naive single-key probe into the /statusz JSON — enough for a status line
// without a JSON parser in the CLI. Finds the first `"key":` and reads the
// number after it; returns fallback when the key is absent.
double json_number(const std::string &body, const char *key, double fallback) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = body.find(needle);
  if (pos == std::string::npos) return fallback;
  return std::atof(body.c_str() + pos + needle.size());
}

// `lagraph_cli top`: poll a running engine's /statusz and print a one-line
// summary per sample — the curses-free `top` for a serving process.
int run_top(const Options &opt) {
  namespace svc = lagraph::service;
  if (opt.port < 0) {
    std::fprintf(stderr, "top: --port is required (the engine prints its "
                 "telemetry port at startup)\n");
    return 2;
  }
  std::printf("%-8s %9s %9s %6s %8s %7s %6s %9s\n", "uptime", "submitted",
              "completed", "queue", "inflight", "workers", "slow",
              "p50(ms)");
  for (int it = 0; opt.count == 0 || it < opt.count; ++it) {
    if (it > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
    }
    const std::string body =
        svc::TelemetryServer::http_get(opt.host, opt.port, "/statusz");
    if (body.empty()) {
      std::fprintf(stderr, "top: no response from %s:%d\n", opt.host.c_str(),
                   opt.port);
      return 1;
    }
    // Best exec p50 across kinds: probe the first latency entry only (the
    // leading "exec_p50_ms" occurrence); absent until a query completes.
    std::printf("%-8.1f %9.0f %9.0f %6.0f %8.0f %7.0f %6.0f %9.3f\n",
                json_number(body, "uptime_s", 0),
                json_number(body, "submitted", 0),
                json_number(body, "completed", 0),
                json_number(body, "queue_depth", 0),
                json_number(body, "inflight", 0),
                json_number(body, "active_workers", 0),
                json_number(body, "slow_queries", 0),
                json_number(body, "exec_p50_ms", 0));
    std::fflush(stdout);
  }
  return 0;
}

void print_top(const grb::Vector<double> &v, int top, const char *what) {
  std::vector<std::pair<double, grb::Index>> entries;
  v.for_each([&](grb::Index i, const double &x) { entries.emplace_back(x, i); });
  auto k = std::min<std::size_t>(static_cast<std::size_t>(top), entries.size());
  std::partial_sort(entries.begin(),
                    entries.begin() + static_cast<std::ptrdiff_t>(k),
                    entries.end(), std::greater<>());
  std::printf("top %zu by %s:\n", k, what);
  for (std::size_t i = 0; i < k; ++i) {
    std::printf("  node %-10llu %.6g\n",
                static_cast<unsigned long long>(entries[i].second),
                entries[i].first);
  }
}

}  // namespace

#define LAGraph_CATCH(status)                                          \
  {                                                                    \
    std::fprintf(stderr, "error %d (%s): %s\n", status,                \
                 lagraph::status_name(status), msg);                   \
    return 1;                                                          \
  }

int main(int argc, char **argv) {
  if (argc >= 2 && std::strcmp(argv[1], "fuzz") == 0) {
    return run_fuzz(argc, argv);
  }
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage();
  char msg[LAGRAPH_MSG_LEN];

  // `top` talks to an already-running engine over HTTP; no graph to load.
  if (opt.algorithm == "top") return run_top(opt);

  if (opt.trace) grb::config().trace_sample_every = opt.sample;
  if (opt.burble) grb::config().burble = true;
  // Lazy-loaded at the first make_plan call; a bad path surfaces here.
  if (!opt.calibration.empty()) {
    grb::config().calibration_file = opt.calibration;
    if (!grb::plan::load_calibration(opt.calibration)) {
      std::fprintf(stderr, "cannot load --calibration file %s\n",
                   opt.calibration.c_str());
      return 1;
    }
  }
  if (!opt.calibration_out.empty() && !opt.trace) {
    std::fprintf(stderr, "--calibration-out requires the trace command "
                 "(the fit comes from recorded spans)\n");
    return 2;
  }
  // stats --json emits a machine-readable document: nothing else on stdout.
  const bool quiet = opt.algorithm == "stats" && opt.json;

  lagraph::Graph<double> g;
  LAGRAPH_TRY(load_graph(g, opt, msg));
  if (!quiet) {
    std::printf("graph: %llu nodes, %llu entries, %s\n",
                static_cast<unsigned long long>(g.nodes()),
                static_cast<unsigned long long>(g.entries()),
                lagraph::kind_name(g.kind));
  }

  lagraph::Timer timer;
  lagraph::tic(timer);

  if (opt.algorithm == "stats") {
    LAGRAPH_TRY(lagraph::property_row_degree(g, msg));
    LAGRAPH_TRY(lagraph::property_ndiag(g, msg));
    LAGRAPH_TRY(lagraph::property_symmetric_pattern(g, msg));
    double mean = 0;
    double median = 0;
    LAGRAPH_TRY(lagraph::sample_degree(&mean, &median, g, true, 1000, 1, msg));
    // Finalize the adjacency so the storage width reported below is the
    // published (compressed) one, not the load-time u64 staging width.
    g.a.finalize();
    const grb::IndexWidth iw = g.a.index_width();
    const std::size_t ib = g.a.index_bytes();
    const std::size_t saved = iw == grb::IndexWidth::u32 ? ib : 0;
    if (opt.json) {
      // Graph summary plus every grb::Stats counter, as one JSON object
      // (the counters reflect the property computations just run).
      std::printf("{\n  \"graph\": {\"nodes\": %llu, \"entries\": %llu, "
                  "\"kind\": \"%s\", \"ndiag\": %lld},\n",
                  static_cast<unsigned long long>(g.nodes()),
                  static_cast<unsigned long long>(g.entries()),
                  lagraph::kind_name(g.kind),
                  static_cast<long long>(g.ndiag));
      std::printf("  \"degree\": {\"mean\": %.6g, \"median\": %.6g},\n", mean,
                  median);
      std::printf("  \"index\": {\"width\": \"%s\", \"index_bytes\": %zu, "
                  "\"index_bytes_saved\": %zu},\n",
                  grb::index_width_name(iw), ib, saved);
      std::printf("  \"stats\": {");
      bool first_counter = true;
      grb::stats().snapshot().for_each(
          [&](const char *name, std::uint64_t v) {
            std::printf("%s\n    \"%s\": %llu", first_counter ? "" : ",",
                        name, static_cast<unsigned long long>(v));
            first_counter = false;
          });
      std::printf("\n  }\n}\n");
      return 0;
    }
    LAGRAPH_TRY(lagraph::display_graph(g, std::cout, msg));
    std::printf("degree: mean %.2f, median %.1f\n", mean, median);
    std::printf("index storage: %s (%zu index bytes, %zu saved vs u64)\n",
                grb::index_width_name(iw), ib, saved);
  } else if (opt.algorithm == "bfs") {
    grb::Vector<std::int64_t> level;
    grb::Vector<std::int64_t> parent;
    LAGRAPH_TRY(lagraph::bfs(&level, &parent, g, opt.source, msg));
    std::int64_t maxd = 0;
    level.for_each([&](grb::Index, const std::int64_t &l) {
      maxd = std::max(maxd, l);
    });
    std::printf("reached %llu nodes, max depth %lld\n",
                static_cast<unsigned long long>(level.nvals()),
                static_cast<long long>(maxd));
  } else if (opt.algorithm == "pagerank" ||
             opt.algorithm == "pagerank-dangling") {
    grb::Vector<double> r;
    int iters = 0;
    if (opt.algorithm == "pagerank") {
      LAGRAPH_TRY(lagraph::pagerank(&r, &iters, g, 0.85, 1e-7, 200, msg));
    } else {
      LAGRAPH_TRY(lagraph::pagerank_dangling_aware(&r, &iters, g, 0.85, 1e-7,
                                                   200, msg));
    }
    std::printf("converged in %d iterations\n", iters);
    print_top(r, opt.top, "rank");
  } else if (opt.algorithm == "sssp") {
    grb::Vector<double> dist;
    LAGRAPH_TRY(lagraph::sssp(&dist, g, opt.source, opt.delta, msg));
    std::printf("reached %llu nodes from %llu\n",
                static_cast<unsigned long long>(dist.nvals()),
                static_cast<unsigned long long>(opt.source));
  } else if (opt.algorithm == "tc") {
    std::uint64_t count = 0;
    LAGRAPH_TRY(lagraph::triangle_count(&count, g, msg));
    std::printf("%llu triangles\n", static_cast<unsigned long long>(count));
  } else if (opt.algorithm == "cc") {
    grb::Vector<grb::Index> comp;
    LAGRAPH_TRY(lagraph::connected_components(&comp, g, msg));
    std::vector<grb::Index> roots;
    comp.for_each([&](grb::Index v, const grb::Index &c) {
      if (v == c) roots.push_back(c);
    });
    std::printf("%zu components\n", roots.size());
  } else if (opt.algorithm == "bc") {
    std::vector<grb::Index> sources = {opt.source, (opt.source + 1) % g.nodes(),
                                       (opt.source + 2) % g.nodes(),
                                       (opt.source + 3) % g.nodes()};
    grb::Vector<double> c;
    LAGRAPH_TRY(lagraph::betweenness_centrality(&c, g, sources, msg));
    print_top(c, opt.top, "betweenness");
  } else if (opt.algorithm == "ktruss") {
    grb::Matrix<std::uint32_t> truss(0, 0);
    int iters = 0;
    LAGRAPH_TRY(lagraph::experimental::k_truss(&truss, &iters, g, opt.k, msg));
    std::printf("%u-truss: %llu surviving entries after %d rounds\n", opt.k,
                static_cast<unsigned long long>(truss.nvals()), iters);
  } else if (opt.algorithm == "lcc") {
    grb::Vector<double> lcc;
    LAGRAPH_TRY(
        lagraph::experimental::local_clustering_coefficient(&lcc, g, msg));
    print_top(lcc, opt.top, "clustering coefficient");
  } else if (opt.algorithm == "cdlp") {
    grb::Vector<grb::Index> labels;
    int rounds = 0;
    LAGRAPH_TRY(lagraph::experimental::cdlp(&labels, &rounds, g, 20, msg));
    std::vector<grb::Index> groups;
    labels.for_each([&](grb::Index, const grb::Index &l) {
      groups.push_back(l);
    });
    std::sort(groups.begin(), groups.end());
    groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
    std::printf("%zu communities after %d rounds\n", groups.size(), rounds);
  } else if (opt.algorithm == "msbfs") {
    std::vector<grb::Index> sources = {opt.source, (opt.source + 1) % g.nodes(),
                                       (opt.source + 2) % g.nodes(),
                                       (opt.source + 3) % g.nodes()};
    grb::Matrix<std::int64_t> level(0, 0);
    LAGRAPH_TRY(lagraph::experimental::msbfs_levels(&level, g, sources, msg));
    std::printf("batched BFS: %llu (source, node) pairs reached\n",
                static_cast<unsigned long long>(level.nvals()));
  } else if (opt.algorithm == "explain") {
    // Planner introspection: build the operation descriptors the named op
    // would hand to grb::plan::make_plan on this graph and print each plan.
    // BFS sweeps three representative traversal stages so the push→pull→push
    // trajectory of direction optimization is visible without running it.
    LAGRAPH_TRY(lagraph::property_at(g, msg));
    const grb::Index n = g.nodes();
    const grb::Index nnz = g.entries();
    auto base_desc = [&](grb::plan::OpKind op) {
      grb::plan::OpDesc od;
      od.op = op;
      od.out_size = n;
      od.a_rows = n;
      od.a_cols = n;
      od.a_nvals = nnz;
      od.a_width = g.a.index_width();
      od.b_width = od.a_width;
      return od;
    };
    auto show = [](const char *label, const grb::plan::OpDesc &od) {
      std::printf("-- %s --\n%s", label, grb::plan::make_plan(od).explain().c_str());
    };
    if (opt.explain_op == "bfs") {
      struct Stage {
        const char *label;
        grb::Index nq;
        grb::Index nvisited;
      };
      const Stage stages[] = {
          {"early level (frontier = source)", 1, 1},
          {"mid level (frontier ~ n/4)", std::max<grb::Index>(1, n / 4),
           std::max<grb::Index>(1, n / 3)},
          {"late level (tail, mostly visited)", std::max<grb::Index>(1, n / 64),
           static_cast<grb::Index>(0.9 * static_cast<double>(n))},
      };
      for (const auto &s : stages) {
        auto od = base_desc(grb::plan::OpKind::traversal);
        od.u_nvals = s.nq;
        od.pull_candidates = n - s.nvisited;
        od.masked = true;
        od.mask_complement = true;
        od.mask_structural = true;
        od.mask_nvals = s.nvisited;
        od.has_terminal = true;
        od.has_transpose = g.transpose_view() != nullptr;
        show(s.label, od);
      }
    } else if (opt.explain_op == "query") {
      // Multi-op query planning: compile the pattern both ways and print
      // the full plans side by side so the optimizer's edge reordering,
      // mask pushdown, and cached-property CSE are visible against the
      // textual-order baseline.
      if (opt.query_text.empty()) {
        std::fprintf(stderr,
                     "explain query: expected a pattern, e.g. "
                     "lagraph_cli explain query 'MATCH (a)-[]->(b) RETURN "
                     "COUNT(*)' --gen kron 8\n");
        return 2;
      }
      namespace q = lagraph::query;
      q::Query pq;
      LAGRAPH_TRY(q::parse(&pq, opt.query_text, msg));
      LAGRAPH_TRY(lagraph::property_row_degree(g, msg));
      if (g.kind == lagraph::Kind::adjacency_directed) {
        LAGRAPH_TRY(lagraph::property_col_degree(g, msg));
      }
      q::QueryPlan optimized, naive;
      LAGRAPH_TRY(q::compile(&optimized, pq, g, /*optimize=*/true, msg));
      LAGRAPH_TRY(q::compile(&naive, pq, g, /*optimize=*/false, msg));
      std::printf("-- optimized --\n%s", optimized.explain(pq).c_str());
      std::printf("-- naive (textual order, unmasked) --\n%s",
                  naive.explain(pq).c_str());
      std::printf("summary: %s | %s\n", optimized.explain_line().c_str(),
                  naive.explain_line().c_str());
    } else if (opt.explain_op == "mxv" || opt.explain_op == "vxm") {
      const bool is_mxv = opt.explain_op == "mxv";
      auto od = base_desc(is_mxv ? grb::plan::OpKind::mxv
                                 : grb::plan::OpKind::vxm);
      od.u_nvals = std::max<grb::Index>(1, n / 16);
      show("sparse operand (nnz(u) = n/16)", od);
      od.transpose_a = true;
      show("transposed descriptor (dot kernel)", od);
    } else if (opt.explain_op == "mxm") {
      auto od = base_desc(grb::plan::OpKind::mxm);
      od.b_nvals = nnz;
      od.transpose_b = true;
      od.masked = true;
      od.mask_nvals = nnz;
      od.mask_structural = true;
      show("masked A x B^T (triangle-count shape)", od);
      od.mask_complement = true;
      show("complement-masked A x B^T (BC forward shape)", od);
    } else if (opt.explain_op == "ewise") {
      auto od = base_desc(grb::plan::OpKind::ewise_add);
      od.u_nvals = std::max<grb::Index>(1, n / 8);
      od.v_nvals = n;
      od.u_format = 0;
      od.v_format = 1;
      show("eWiseAdd sparse + bitmap (SSSP relax shape)", od);
      od.op = grb::plan::OpKind::ewise_mult;
      show("eWiseMult sparse x bitmap (intersection)", od);
    } else if (opt.explain_op == "fused") {
      // The fusion catalogue (docs/API.md): product + follow-up op(s) in one
      // sweep when the modeled saving beats the composition. Same BFS-style
      // stages so the fuse/no-fuse flip is visible.
      auto od = base_desc(grb::plan::OpKind::fused_mxv_apply);
      od.u_nvals = 1;
      od.masked = true;
      od.mask_complement = true;
      od.mask_structural = true;
      od.mask_nvals = 1;
      od.has_terminal = true;
      show("fused mxv+apply, early BFS level (frontier = source)", od);
      od.u_nvals = std::max<grb::Index>(1, n / 4);
      od.mask_nvals = std::max<grb::Index>(1, n / 3);
      show("fused mxv+apply, mid BFS level (frontier ~ n/4)", od);
      auto ov = base_desc(grb::plan::OpKind::fused_vxm_select);
      ov.u_nvals = std::max<grb::Index>(1, n / 16);
      show("fused vxm+select, SSSP light relax (bucket = n/16)", ov);
    } else {
      std::fprintf(stderr, "explain: unknown op '%s' "
                   "(expected bfs|mxv|vxm|mxm|ewise|fused|query)\n",
                   opt.explain_op.c_str());
      return 2;
    }
    // Which ns/cost-unit coefficients planned the above: per-machine fits
    // persist across runs via --calibration / Config::calibration_file.
    const grb::plan::Calibration cal = grb::plan::calibration_snapshot();
    if (cal.loaded) {
      const long long age =
          cal.fitted_at_epoch_s > 0
              ? static_cast<long long>(std::time(nullptr)) -
                    static_cast<long long>(cal.fitted_at_epoch_s)
              : -1;
      std::printf("calibration: push %.2f, pull %.2f ns/cost-unit from %s "
                  "(%llu samples, fit age %llds)\n",
                  cal.push_ns_per_unit, cal.pull_ns_per_unit,
                  cal.source.empty() ? "online updates" : cal.source.c_str(),
                  static_cast<unsigned long long>(cal.samples), age);
    } else {
      std::printf("calibration: none loaded (model units only; fit one with "
                  "trace --calibration-out)\n");
    }
    const grb::Stats &ps = grb::stats();
    std::printf("planner counters: %llu built, %llu cached, %llu overridden, "
                "%llu push / %llu pull, %llu format conversions\n",
                static_cast<unsigned long long>(ps.plans_built.load()),
                static_cast<unsigned long long>(ps.plans_cached.load()),
                static_cast<unsigned long long>(ps.plans_overridden.load()),
                static_cast<unsigned long long>(ps.plan_push_decisions.load()),
                static_cast<unsigned long long>(ps.plan_pull_decisions.load()),
                static_cast<unsigned long long>(
                    ps.format_conversions.load()));
  } else if (opt.algorithm == "serve" || opt.algorithm == "replay") {
    namespace svc = lagraph::service;
    namespace ing = lagraph::ingest;
    std::vector<ScriptItem> items;
    LAGRAPH_TRY(parse_script(items, opt, g.nodes(), /*allow_queries=*/true,
                             /*allow_mutations=*/opt.algorithm == "serve",
                             msg));
    std::size_t n_queries = 0;
    std::size_t n_muts = 0;
    for (const auto &it : items) {
      if (it.what == ScriptItem::What::query) ++n_queries;
      if (it.what == ScriptItem::What::mutation) ++n_muts;
    }

    svc::EngineConfig cfg;
    cfg.threads = opt.threads;
    cfg.batch_window = std::chrono::microseconds(opt.window_us);
    cfg.max_batch = opt.max_batch;
    cfg.enable_batching = !opt.no_batch;
    cfg.telemetry_port = opt.telemetry_port;
    cfg.slow_query_ms = opt.slow_query_ms;
    cfg.slow_query_log = opt.slow_query_log;
    if (opt.algorithm == "replay") {
      // The one-query-at-a-time baseline: a single worker, no coalescing.
      cfg.threads = 1;
      cfg.enable_batching = false;
    }

    // A mutation-free script serves a frozen snapshot, exactly as before.
    // With mutations, the graph is handed to an ingest::Writer instead and
    // every published epoch is swapped into the engine under live traffic.
    svc::Engine engine(cfg);
    std::unique_ptr<ing::Writer> writer;
    const bool mutating = n_muts > 0;
    if (mutating) {
      writer = std::make_unique<ing::Writer>(
          std::move(g), ing::WriterConfig{},
          [&engine](const svc::SnapshotPtr &s) {
            engine.install_snapshot(s);
          });
    } else {
      svc::SnapshotPtr snap;
      LAGRAPH_TRY(svc::make_snapshot(&snap, std::move(g), msg));
      engine.install_snapshot(std::move(snap));
    }
    if (svc::TelemetryServer *tel = engine.telemetry()) {
      if (tel->port() < 0) {
        std::fprintf(stderr, "telemetry: failed to bind port %d\n",
                     opt.telemetry_port);
        return 1;
      }
      std::printf("telemetry: listening on 127.0.0.1:%d\n", tel->port());
      std::fflush(stdout);
      if (writer) {
        // The ingest gauges live a layer above service; splice them into
        // /metrics here where both libraries are visible.
        ing::Writer *w = writer.get();
        tel->set_extra_metrics([w] {
          char buf[512];
          std::snprintf(
              buf, sizeof(buf),
              "# HELP lagraph_ingest_pending Mutations queued but not yet "
              "staged.\n"
              "# TYPE lagraph_ingest_pending gauge\n"
              "lagraph_ingest_pending %zu\n"
              "# HELP lagraph_ingest_last_publish_seconds Wall time of the "
              "most recent epoch publication.\n"
              "# TYPE lagraph_ingest_last_publish_seconds gauge\n"
              "lagraph_ingest_last_publish_seconds %.9f\n",
              w->pending(), w->last_publish_seconds());
          return std::string(buf);
        });
      }
    }
    std::printf("%s: %zu queries, %zu mutations on snapshot %llu, "
                "%d worker(s), batching %s (window %ldus, max batch %u)\n",
                opt.algorithm.c_str(), n_queries, n_muts,
                static_cast<unsigned long long>(engine.snapshot()->id()),
                cfg.threads, cfg.enable_batching ? "on" : "off",
                static_cast<long>(cfg.batch_window.count()), cfg.max_batch);

    lagraph::Timer qt;
    lagraph::tic(qt);
    std::vector<std::future<svc::QueryResult>> futs;
    futs.reserve(n_queries);
    for (const auto &it : items) {
      switch (it.what) {
        case ScriptItem::What::query:
          futs.push_back(engine.submit(it.req));
          break;
        case ScriptItem::What::mutation: {
          int st = writer->submit(it.mut);
          if (st < 0) {
            std::snprintf(msg, LAGRAPH_MSG_LEN, "%s",
                          writer->error_message().c_str());
            LAGraph_CATCH(st);
          }
          break;
        }
        case ScriptItem::What::publish: {
          int st = writer->publish_now();
          if (st < 0) {
            std::snprintf(msg, LAGRAPH_MSG_LEN, "%s",
                          writer->error_message().c_str());
            LAGraph_CATCH(st);
          }
          break;
        }
      }
    }
    if (writer) writer->publish_now();  // make trailing edits visible
    if (opt.serve_seconds > 0) {
      // Keep the engine (and its telemetry endpoint) alive for scrapers —
      // the check.sh smoke test and `lagraph_cli top` attach here.
      std::printf("serving for %.1fs...\n", opt.serve_seconds);
      std::fflush(stdout);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(opt.serve_seconds));
    }
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t batched = 0;
    int first_err = 0;
    std::string first_err_msg;
    for (auto &f : futs) {
      auto res = f.get();
      if (res.status < 0) {
        ++failed;
        if (first_err == 0) {
          first_err = res.status;
          first_err_msg = res.error;
        }
      } else {
        ++ok;
        if (res.batched) ++batched;
      }
    }
    double qs = lagraph::toc(qt);
    if (writer) {
      std::printf("ingest: %llu epochs published, final snapshot %llu "
                  "(%llu entries), %zu snapshots retained\n",
                  static_cast<unsigned long long>(writer->epoch()),
                  static_cast<unsigned long long>(writer->current()->id()),
                  static_cast<unsigned long long>(
                      writer->current()->entries()),
                  writer->registry().size());
      writer->stop();
    }
    engine.stop();

    auto c = engine.counters();
    std::printf("completed %zu (%zu batched), failed %zu in %.3fs "
                "=> %.1f queries/s\n",
                ok, batched, failed, qs,
                static_cast<double>(n_queries) / qs);
    std::printf("engine: %llu bfs sweeps, %llu batched bfs, "
                "%llu solo queries\n",
                static_cast<unsigned long long>(c.bfs_sweeps),
                static_cast<unsigned long long>(c.batched_bfs),
                static_cast<unsigned long long>(c.solo_queries));
    const grb::Stats &ks = grb::stats();
    std::printf("kernels: %llu push, %llu pull, %llu parallel regions, "
                "%llu work items stolen\n",
                static_cast<unsigned long long>(ks.push_calls.load()),
                static_cast<unsigned long long>(ks.pull_calls.load()),
                static_cast<unsigned long long>(ks.parallel_regions.load()),
                static_cast<unsigned long long>(ks.work_items_stolen.load()));
    // Per-query-kind latency breakdown (log2 histograms; see grb::trace).
    for (const auto &kl : engine.latency_summary()) {
      std::printf("latency %-9s n=%-6llu p50 %.3fms  p95 %.3fms  "
                  "p99 %.3fms  mean %.3fms\n",
                  svc::query_kind_name(kl.kind),
                  static_cast<unsigned long long>(kl.count), kl.p50_ms,
                  kl.p95_ms, kl.p99_ms, kl.mean_ms);
    }
    if (!opt.prometheus.empty()) {
      std::ofstream pf(opt.prometheus);
      if (!pf) {
        std::fprintf(stderr, "cannot open --prometheus file %s\n",
                     opt.prometheus.c_str());
        return 1;
      }
      pf << engine.prometheus_text();
      std::printf("prometheus exposition written to %s\n",
                  opt.prometheus.c_str());
    }
    if (failed != 0) {
      std::fprintf(stderr, "first error %d (%s): %s\n", first_err,
                   lagraph::status_name(first_err), first_err_msg.c_str());
    }
  } else if (opt.algorithm == "mutate") {
    namespace ing = lagraph::ingest;
    std::vector<ScriptItem> items;
    LAGRAPH_TRY(parse_script(items, opt, g.nodes(), /*allow_queries=*/false,
                             /*allow_mutations=*/true, msg));
    const grb::Index n = g.nodes();
    const auto before = grb::stats().snapshot();
    ing::Writer writer(std::move(g));

    auto try_ingest = [&](int st) {
      if (st >= 0) return true;
      std::snprintf(msg, LAGRAPH_MSG_LEN, "%s", writer.error_message().c_str());
      return false;
    };
    if (items.empty()) {
      // No script: a deterministic synthetic stream of --mutations mixed
      // edits, submitted in batches so several epochs publish on the
      // writer's own cadence.
      std::uint64_t x = 0x9e3779b97f4a7c15ULL;
      auto rnd = [&] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
      };
      std::vector<ing::Mutation> batch;
      for (int q = 0; q < opt.mutations; ++q) {
        ing::Mutation m;
        const auto k = rnd() % 10;
        m.op = k < 5   ? ing::MutationOp::insert
               : k < 8 ? ing::MutationOp::upsert
                       : ing::MutationOp::remove;
        m.src = static_cast<grb::Index>(rnd() % n);
        m.dst = static_cast<grb::Index>(rnd() % n);
        m.weight = 1.0 + static_cast<double>(rnd() % 8);
        batch.push_back(m);
        if (batch.size() == 256) {
          if (!try_ingest(writer.submit_batch(batch)))
            LAGraph_CATCH(LAGRAPH_INGEST_STOPPED);
          batch.clear();
        }
      }
      if (!batch.empty() && !try_ingest(writer.submit_batch(batch))) {
        LAGraph_CATCH(LAGRAPH_INGEST_STOPPED);
      }
    } else {
      for (const auto &it : items) {
        const int st = it.what == ScriptItem::What::publish
                           ? writer.publish_now()
                           : writer.submit(it.mut);
        if (!try_ingest(st)) LAGraph_CATCH(st);
      }
    }
    {
      const int st = writer.publish_now();
      if (!try_ingest(st)) LAGraph_CATCH(st);
    }

    auto snap = writer.current();
    std::printf("mutate: %llu epochs published, final snapshot %llu: "
                "%llu nodes, %llu entries\n",
                static_cast<unsigned long long>(writer.epoch()),
                static_cast<unsigned long long>(snap->id()),
                static_cast<unsigned long long>(snap->nodes()),
                static_cast<unsigned long long>(snap->entries()));
    // The published graph must be fully consistent — a cheap end-to-end
    // check of the incremental property maintenance.
    const int cg = lagraph::check_graph(snap->graph(), msg);
    writer.stop();
    const auto after = grb::stats().snapshot();
    std::printf("ingest counters: %llu edges, %llu batches, %llu epochs, "
                "%llu snapshots reclaimed\n",
                static_cast<unsigned long long>(after.edges_ingested -
                                                before.edges_ingested),
                static_cast<unsigned long long>(after.ingest_batches -
                                                before.ingest_batches),
                static_cast<unsigned long long>(after.epochs_published -
                                                before.epochs_published),
                static_cast<unsigned long long>(after.snapshots_reclaimed -
                                                before.snapshots_reclaimed));
    if (cg < 0) LAGraph_CATCH(cg);
    std::printf("check_graph: OK\n");
  } else {
    return usage();
  }

  std::printf("elapsed: %.3fs\n", lagraph::toc(timer));

  if (opt.trace) {
    const auto spans = grb::trace::collect();
    {
      std::ofstream out(opt.trace_out);
      if (!out) {
        std::fprintf(stderr, "cannot open --trace-out file %s\n",
                     opt.trace_out.c_str());
        return 1;
      }
      grb::trace::write_chrome_trace(out, spans);
    }
    std::printf("trace: %zu spans -> %s (open in Perfetto / "
                "chrome://tracing)\n",
                spans.size(), opt.trace_out.c_str());
    // Per-op latency percentiles from the global histograms.
    for (int i = 0; i < grb::trace::kNumSpanKinds; ++i) {
      const auto k = static_cast<grb::trace::SpanKind>(i);
      const auto &h = grb::trace::op_histogram(k);
      if (h.count() == 0) continue;
      std::printf("op %-11s n=%-7llu p50 %9.1fus  p95 %9.1fus  "
                  "p99 %9.1fus\n",
                  grb::trace::name(k),
                  static_cast<unsigned long long>(h.count()),
                  h.percentile_ns(50) / 1e3, h.percentile_ns(95) / 1e3,
                  h.percentile_ns(99) / 1e3);
    }
    const auto report = grb::trace::calibrate(spans);
    std::printf("%s", report.text().c_str());
    if (!opt.calibration_out.empty()) {
      if (report.samples == 0) {
        std::fprintf(stderr, "--calibration-out: no spans with predictions; "
                     "nothing to persist\n");
        return 1;
      }
      grb::plan::Calibration cal;
      // Directions without samples fall back to the global fit so a loaded
      // file always has usable coefficients for both.
      cal.push_ns_per_unit = report.push_ns_per_cost > 0
                                 ? report.push_ns_per_cost
                                 : report.ns_per_cost;
      cal.pull_ns_per_unit = report.pull_ns_per_cost > 0
                                 ? report.pull_ns_per_cost
                                 : report.ns_per_cost;
      cal.samples = report.samples;
      cal.fitted_at_epoch_s = static_cast<std::uint64_t>(std::time(nullptr));
      cal.source = opt.calibration_out;
      cal.loaded = true;
      grb::plan::set_calibration(cal);
      if (!grb::plan::save_calibration(opt.calibration_out)) {
        std::fprintf(stderr, "cannot write --calibration-out file %s\n",
                     opt.calibration_out.c_str());
        return 1;
      }
      std::printf("calibration: push %.2f, pull %.2f ns/cost-unit "
                  "(%zu samples) -> %s\n",
                  cal.push_ns_per_unit, cal.pull_ns_per_unit, report.samples,
                  opt.calibration_out.c_str());
    }
  }
  return 0;
}

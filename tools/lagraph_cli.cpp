// lagraph_cli — command-line driver for the library: load a graph from a
// Matrix Market file (or generate a synthetic one), run a chosen algorithm,
// print the result. The adoption path for users who do not want to write
// C++ at all.
//
//   lagraph_cli <algorithm> [options]
//
// Algorithms: bfs, pagerank, pagerank-dangling, sssp, tc, cc, bc, ktruss,
//             lcc, cdlp, msbfs, stats
// Options:
//   --mtx FILE           load a Matrix Market file
//   --graphalytics V E   load Graphalytics vertex+edge files
//   --gen KIND SCALE     generate: kron|urand|twitter|web|road (default
//                        kron 12)
//   --undirected         treat the graph as undirected
//   --source N           source vertex (bfs/sssp/bc/msbfs; default 0)
//   --delta X            SSSP delta (default 2)
//   --k N                k for ktruss (default 3)
//   --top N              print the top-N entries of vector results (def. 10)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gen/generators.hpp"
#include "lagraph/lagraph.hpp"

namespace {

struct Options {
  std::string algorithm;
  std::string mtx;
  std::string ga_vertices;
  std::string ga_edges;
  std::string gen_kind = "kron";
  int gen_scale = 12;
  bool undirected = false;
  grb::Index source = 0;
  double delta = 2.0;
  std::uint32_t k = 3;
  int top = 10;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: lagraph_cli <bfs|pagerank|pagerank-dangling|sssp|tc|cc|bc|"
      "ktruss|lcc|cdlp|msbfs|stats> [options]\n"
      "  --mtx FILE | --graphalytics V E | --gen KIND SCALE\n"
      "  --undirected --source N --delta X --k N --top N\n");
  return 2;
}

bool parse_args(int argc, char **argv, Options &opt) {
  if (argc < 2) return false;
  opt.algorithm = argv[1];
  const char *known[] = {"bfs",    "pagerank", "pagerank-dangling", "sssp",
                         "tc",     "cc",       "bc",                "ktruss",
                         "lcc",    "cdlp",     "msbfs",             "stats"};
  bool ok = false;
  for (const char *k : known) ok = ok || opt.algorithm == k;
  if (!ok) {
    std::fprintf(stderr, "unknown algorithm: %s\n", opt.algorithm.c_str());
    return false;
  }
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    auto need = [&](int count) { return i + count < argc; };
    if (a == "--mtx" && need(1)) {
      opt.mtx = argv[++i];
    } else if (a == "--graphalytics" && need(2)) {
      opt.ga_vertices = argv[++i];
      opt.ga_edges = argv[++i];
    } else if (a == "--gen" && need(2)) {
      opt.gen_kind = argv[++i];
      opt.gen_scale = std::atoi(argv[++i]);
    } else if (a == "--undirected") {
      opt.undirected = true;
    } else if (a == "--source" && need(1)) {
      opt.source = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--delta" && need(1)) {
      opt.delta = std::atof(argv[++i]);
    } else if (a == "--k" && need(1)) {
      opt.k = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (a == "--top" && need(1)) {
      opt.top = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown or incomplete option: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

int load_graph(lagraph::Graph<double> &g, const Options &opt, char *msg) {
  if (!opt.mtx.empty()) {
    grb::Matrix<double> a(0, 0);
    int status = lagraph::mm_read(a, opt.mtx, msg);
    if (status < 0) return status;
    return lagraph::make_graph(g, std::move(a),
                               opt.undirected
                                   ? lagraph::Kind::adjacency_undirected
                                   : lagraph::Kind::adjacency_directed,
                               msg);
  }
  if (!opt.ga_vertices.empty()) {
    return lagraph::graphalytics_read(g, nullptr, opt.ga_vertices,
                                      opt.ga_edges, !opt.undirected, msg);
  }
  gen::EdgeList el;
  bool directed = !opt.undirected;
  if (opt.gen_kind == "kron") {
    el = gen::kronecker(opt.gen_scale, 8, 42);
    directed = false;
  } else if (opt.gen_kind == "urand") {
    el = gen::uniform_random(opt.gen_scale, 8, 42);
    directed = false;
  } else if (opt.gen_kind == "twitter") {
    el = gen::twitter_like(opt.gen_scale, 8, 42);
  } else if (opt.gen_kind == "web") {
    el = gen::web_like(opt.gen_scale, 8, 42);
  } else if (opt.gen_kind == "road") {
    grb::Index side = grb::Index{1} << (opt.gen_scale / 2);
    el = gen::road_grid(side, side, 42);
  } else {
    return lagraph::detail::set_msg(msg, LAGRAPH_INVALID_VALUE,
                                    "unknown --gen kind");
  }
  gen::add_uniform_weights(el, 1, 255, 7);
  return lagraph::make_graph(g, gen::to_matrix<double>(el),
                             directed ? lagraph::Kind::adjacency_directed
                                      : lagraph::Kind::adjacency_undirected,
                             msg);
}

void print_top(const grb::Vector<double> &v, int top, const char *what) {
  std::vector<std::pair<double, grb::Index>> entries;
  v.for_each([&](grb::Index i, const double &x) { entries.emplace_back(x, i); });
  auto k = std::min<std::size_t>(static_cast<std::size_t>(top), entries.size());
  std::partial_sort(entries.begin(),
                    entries.begin() + static_cast<std::ptrdiff_t>(k),
                    entries.end(), std::greater<>());
  std::printf("top %zu by %s:\n", k, what);
  for (std::size_t i = 0; i < k; ++i) {
    std::printf("  node %-10llu %.6g\n",
                static_cast<unsigned long long>(entries[i].second),
                entries[i].first);
  }
}

}  // namespace

#define LAGraph_CATCH(status)                                          \
  {                                                                    \
    std::fprintf(stderr, "error %d (%s): %s\n", status,                \
                 lagraph::status_name(status), msg);                   \
    return 1;                                                          \
  }

int main(int argc, char **argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return usage();
  char msg[LAGRAPH_MSG_LEN];

  lagraph::Graph<double> g;
  LAGRAPH_TRY(load_graph(g, opt, msg));
  std::printf("graph: %llu nodes, %llu entries, %s\n",
              static_cast<unsigned long long>(g.nodes()),
              static_cast<unsigned long long>(g.entries()),
              lagraph::kind_name(g.kind));

  lagraph::Timer timer;
  lagraph::tic(timer);

  if (opt.algorithm == "stats") {
    LAGRAPH_TRY(lagraph::property_row_degree(g, msg));
    LAGRAPH_TRY(lagraph::property_ndiag(g, msg));
    LAGRAPH_TRY(lagraph::property_symmetric_pattern(g, msg));
    double mean = 0;
    double median = 0;
    LAGRAPH_TRY(lagraph::sample_degree(&mean, &median, g, true, 1000, 1, msg));
    LAGRAPH_TRY(lagraph::display_graph(g, std::cout, msg));
    std::printf("degree: mean %.2f, median %.1f\n", mean, median);
  } else if (opt.algorithm == "bfs") {
    grb::Vector<std::int64_t> level;
    grb::Vector<std::int64_t> parent;
    LAGRAPH_TRY(lagraph::bfs(&level, &parent, g, opt.source, msg));
    std::int64_t maxd = 0;
    level.for_each([&](grb::Index, const std::int64_t &l) {
      maxd = std::max(maxd, l);
    });
    std::printf("reached %llu nodes, max depth %lld\n",
                static_cast<unsigned long long>(level.nvals()),
                static_cast<long long>(maxd));
  } else if (opt.algorithm == "pagerank" ||
             opt.algorithm == "pagerank-dangling") {
    grb::Vector<double> r;
    int iters = 0;
    if (opt.algorithm == "pagerank") {
      LAGRAPH_TRY(lagraph::pagerank(&r, &iters, g, 0.85, 1e-7, 200, msg));
    } else {
      LAGRAPH_TRY(lagraph::pagerank_dangling_aware(&r, &iters, g, 0.85, 1e-7,
                                                   200, msg));
    }
    std::printf("converged in %d iterations\n", iters);
    print_top(r, opt.top, "rank");
  } else if (opt.algorithm == "sssp") {
    grb::Vector<double> dist;
    LAGRAPH_TRY(lagraph::sssp(&dist, g, opt.source, opt.delta, msg));
    std::printf("reached %llu nodes from %llu\n",
                static_cast<unsigned long long>(dist.nvals()),
                static_cast<unsigned long long>(opt.source));
  } else if (opt.algorithm == "tc") {
    std::uint64_t count = 0;
    LAGRAPH_TRY(lagraph::triangle_count(&count, g, msg));
    std::printf("%llu triangles\n", static_cast<unsigned long long>(count));
  } else if (opt.algorithm == "cc") {
    grb::Vector<grb::Index> comp;
    LAGRAPH_TRY(lagraph::connected_components(&comp, g, msg));
    std::vector<grb::Index> roots;
    comp.for_each([&](grb::Index v, const grb::Index &c) {
      if (v == c) roots.push_back(c);
    });
    std::printf("%zu components\n", roots.size());
  } else if (opt.algorithm == "bc") {
    std::vector<grb::Index> sources = {opt.source, (opt.source + 1) % g.nodes(),
                                       (opt.source + 2) % g.nodes(),
                                       (opt.source + 3) % g.nodes()};
    grb::Vector<double> c;
    LAGRAPH_TRY(lagraph::betweenness_centrality(&c, g, sources, msg));
    print_top(c, opt.top, "betweenness");
  } else if (opt.algorithm == "ktruss") {
    grb::Matrix<std::uint32_t> truss(0, 0);
    int iters = 0;
    LAGRAPH_TRY(lagraph::experimental::k_truss(&truss, &iters, g, opt.k, msg));
    std::printf("%u-truss: %llu surviving entries after %d rounds\n", opt.k,
                static_cast<unsigned long long>(truss.nvals()), iters);
  } else if (opt.algorithm == "lcc") {
    grb::Vector<double> lcc;
    LAGRAPH_TRY(
        lagraph::experimental::local_clustering_coefficient(&lcc, g, msg));
    print_top(lcc, opt.top, "clustering coefficient");
  } else if (opt.algorithm == "cdlp") {
    grb::Vector<grb::Index> labels;
    int rounds = 0;
    LAGRAPH_TRY(lagraph::experimental::cdlp(&labels, &rounds, g, 20, msg));
    std::vector<grb::Index> groups;
    labels.for_each([&](grb::Index, const grb::Index &l) {
      groups.push_back(l);
    });
    std::sort(groups.begin(), groups.end());
    groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
    std::printf("%zu communities after %d rounds\n", groups.size(), rounds);
  } else if (opt.algorithm == "msbfs") {
    std::vector<grb::Index> sources = {opt.source, (opt.source + 1) % g.nodes(),
                                       (opt.source + 2) % g.nodes(),
                                       (opt.source + 3) % g.nodes()};
    grb::Matrix<std::int64_t> level(0, 0);
    LAGRAPH_TRY(lagraph::experimental::msbfs_levels(&level, g, sources, msg));
    std::printf("batched BFS: %llu (source, node) pairs reached\n",
                static_cast<unsigned long long>(level.nvals()));
  } else {
    return usage();
  }

  std::printf("elapsed: %.3fs\n", lagraph::toc(timer));
  return 0;
}

#!/usr/bin/env python3
"""Compare two lagraph bench JSON files and flag regressions.

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Both files normally follow the same schema (a mismatch warns and diffs the
cells that still match, rather than refusing), either of:

  lagraph-bench-v1 (bench_kernels / table3_gap_suite):
    {"schema": "lagraph-bench-v1", "suite": "...", "scale": N,
     "entries": [{"op", "graph", "threads", "reps", "median_ms"}, ...]}
    Entries are matched on the (op, graph, threads) key and compared on
    median_ms (lower is better).

  lagraph-service-bench-v1 (bench_service_throughput --mutation-mix):
    {"schema": "lagraph-service-bench-v1", "suite": "...", "scale": N,
     "entries": [{"workload", "op", "threads", "queries", "qps",
                  "p50_ms", "p95_ms", "p99_ms", ...}, ...]}
    Entries are matched on the (op, workload, threads) key; qps is inverted
    to ms-per-query so the same lower-is-better comparison applies (a qps
    drop beyond the threshold flags a regression).

A candidate entry whose cost exceeds the baseline's by more than the
threshold (default 10%) is flagged as a regression; the script prints a
table of all matched cells and exits 1 if any regression was found. Cells
present on only one side are reported but never fail the run (graph scale or
thread sweep may legitimately differ between commits).

Entries may optionally carry p50_ms / p95_ms / p99_ms percentile fields
(written by newer harnesses), and service entries may additionally carry
queue_wait_p50_ms / queue_wait_p95_ms / queue_wait_p99_ms (the submit →
worker-pickup share of the end-to-end latency, written since the telemetry
work). When a percentile is present on *both* sides of a matched cell its
ratio is shown alongside the median; all percentiles are informational only
and never flag a regression (with few reps they collapse toward the max and
are too noisy to gate on). A side lacking these fields — an older JSON —
diffs without warnings; the extra columns simply don't appear.

Entries may also carry memory fields (bytes_per_edge, peak_rss_mb — written
by bench_kernels since the 32-bit index storage work). Unlike percentiles,
memory IS gated: a matched cell whose candidate memory exceeds the baseline's
by more than the same threshold flags a regression. bytes_per_edge is
deterministic (pure storage accounting); peak_rss_mb is an OS high-water mark
but moves far more than 10% only when something real regressed.
"""

import argparse
import json
import sys

# Percentile fields are informational: compared when present on both sides,
# silently ignored otherwise (older JSONs simply lack the newer columns).
PCT_FIELDS = (
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "queue_wait_p50_ms",
    "queue_wait_p95_ms",
    "queue_wait_p99_ms",
)
PCT_LABELS = {
    "p50_ms": "p50",
    "p95_ms": "p95",
    "p99_ms": "p99",
    "queue_wait_p50_ms": "qw50",
    "queue_wait_p95_ms": "qw95",
    "queue_wait_p99_ms": "qw99",
}


def load_entries(path, role):
    try:
        with open(path) as f:
            data = json.load(f)
    except FileNotFoundError:
        hint = ""
        if role == "baseline":
            hint = (
                "\nhint: no baseline has been recorded yet -- run the bench "
                "once and copy its JSON to this path (see scripts/check.sh)"
            )
        sys.exit(f"bench_diff: {role} file not found: {path}{hint}")
    except json.JSONDecodeError as e:
        sys.exit(f"bench_diff: {path} is not valid JSON ({e}); "
                 "re-run the bench to regenerate it")
    schema = data.get("schema")
    if schema not in ("lagraph-bench-v1", "lagraph-service-bench-v1"):
        # A newer harness may bump the version suffix while keeping the entry
        # layout; as long as it is one of ours, warn and try to diff rather
        # than refusing -- unmatched keys simply fall out as one-sided.
        if isinstance(schema, str) and schema.startswith("lagraph-"):
            print(f"warning: {path}: unrecognized schema version {schema!r}; "
                  "attempting to diff anyway", file=sys.stderr)
        else:
            sys.exit(f"{path}: unexpected schema {schema!r}")
    out = {}
    pcts = {}
    mems = {}
    for e in data.get("entries", []):
        if schema == "lagraph-service-bench-v1":
            # Throughput cells: invert qps to ms-per-query so the shared
            # lower-is-better comparison below applies unchanged.
            key = (e["op"], e["workload"], int(e["threads"]))
            qps = float(e["qps"])
            out[key] = 1e3 / qps if qps > 0 else float("inf")
        else:
            key = (e["op"], e["graph"], int(e["threads"]))
            out[key] = float(e["median_ms"])
        pcts[key] = {
            p: float(e[p])
            for p in PCT_FIELDS
            if p in e and float(e[p]) >= 0
        }
        mems[key] = {
            m: float(e[m])
            for m in ("bytes_per_edge", "peak_rss_mb")
            if m in e and float(e[m]) >= 0
        }
    return data, out, pcts, mems


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative slowdown that counts as a regression (default 0.10)",
    )
    ap.add_argument(
        "--min-ms",
        type=float,
        default=0.0,
        help="cells whose baseline median is below this are shown but never "
        "flagged (sub-millisecond timings are noise on loaded machines)",
    )
    args = ap.parse_args()

    base_meta, base, base_pct, base_mem = load_entries(args.baseline,
                                                       "baseline")
    cand_meta, cand, cand_pct, cand_mem = load_entries(args.candidate,
                                                       "candidate")
    if base_meta.get("schema") != cand_meta.get("schema"):
        # Not fatal: a baseline recorded before a schema bump is still worth
        # diffing (keys that don't line up fall out as one-sided below).
        print(
            f"warning: schema mismatch (baseline "
            f"{base_meta.get('schema')!r}, candidate "
            f"{cand_meta.get('schema')!r}) -- matched cells are compared, "
            "the rest are reported as one-sided",
            file=sys.stderr,
        )
    if base_meta.get("scale") != cand_meta.get("scale"):
        print(
            f"note: scales differ (baseline {base_meta.get('scale')}, "
            f"candidate {cand_meta.get('scale')}) -- ratios may be meaningless"
        )

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    if not shared:
        print("bench_diff: no overlapping (op, graph, threads) keys between "
              f"{args.baseline} and {args.candidate}")
        print(f"  baseline has {len(base)} entr{'y' if len(base) == 1 else 'ies'}, "
              f"candidate has {len(cand)}")
        if only_base:
            print(f"  e.g. baseline-only key:  {only_base[0]}")
        if only_cand:
            print(f"  e.g. candidate-only key: {only_cand[0]}")
        print("  nothing to compare -- were the two runs produced by the same "
              "suite at the same scale?")
        return 0

    regressions = []
    print(f"{'op':24s} {'graph':12s} {'thr':>3s} {'base ms':>12s} "
          f"{'cand ms':>12s} {'ratio':>7s}")
    for key in shared:
        op, graph, threads = key
        b, c = base[key], cand[key]
        ratio = c / b if b > 0 else float("inf")
        flag = ""
        if b > 0 and ratio > 1.0 + args.threshold:
            if b < args.min_ms:
                flag = "  (slow, below --min-ms floor: not flagged)"
            else:
                flag = "  << REGRESSION"
                regressions.append((key, "median_ms", b, c, ratio))
        pct = ""
        shared_pcts = [
            p
            for p in PCT_FIELDS
            if p in base_pct.get(key, {}) and p in cand_pct.get(key, {})
        ]
        if shared_pcts:
            parts = []
            for p in shared_pcts:
                pb, pc = base_pct[key][p], cand_pct[key][p]
                pr = pc / pb if pb > 0 else float("inf")
                parts.append(f"{PCT_LABELS[p]} {pr:.2f}x")
            pct = "  [" + ", ".join(parts) + "]"
        mem = ""
        shared_mems = [
            m
            for m in ("bytes_per_edge", "peak_rss_mb")
            if m in base_mem.get(key, {}) and m in cand_mem.get(key, {})
        ]
        if shared_mems:
            parts = []
            for m in shared_mems:
                mb, mc = base_mem[key][m], cand_mem[key][m]
                mr = mc / mb if mb > 0 else float("inf")
                label = "B/edge" if m == "bytes_per_edge" else "rss"
                tag = ""
                if mb > 0 and mr > 1.0 + args.threshold:
                    tag = " <<MEM"
                    regressions.append((key, m, mb, mc, mr))
                parts.append(f"{label} {mr:.2f}x{tag}")
            mem = "  {" + ", ".join(parts) + "}"
        print(f"{op:24s} {graph:12s} {threads:3d} {b:12.3f} {c:12.3f} "
              f"{ratio:7.2f}{flag}{pct}{mem}")

    for key in only_base:
        print(f"only in baseline:  {key}")
    for key in only_cand:
        print(f"only in candidate: {key}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) above "
              f"{args.threshold:.0%} threshold:")
        for (op, graph, threads), metric, b, c, ratio in regressions:
            unit = "ms" if metric == "median_ms" else (
                "B/edge" if metric == "bytes_per_edge" else "MB")
            print(f"  {op} on {graph} @{threads}t [{metric}]: "
                  f"{b:.3f} {unit} -> {c:.3f} {unit} ({ratio:.2f}x)")
        return 1
    print(f"\nno regressions above {args.threshold:.0%} "
          f"({len(shared)} cells compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// quickstart — the smallest end-to-end LAGraph program:
//   1. build an adjacency matrix from tuples,
//   2. wrap it in a Graph (ownership moves in, LAGraph_New style),
//   3. run Basic-mode BFS and PageRank,
//   4. use the LAGRAPH_TRY / LAGraph_CATCH error-handling idiom throughout.
//
// Build:  cmake --build build --target quickstart
// Run:    ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "lagraph/lagraph.hpp"

// The paper's try/catch idiom (§II-D): define LAGraph_CATCH, then wrap
// every call in LAGRAPH_TRY.
#define LAGraph_CATCH(status)                                        \
  {                                                                  \
    std::fprintf(stderr, "LAGraph failure %d (%s): %s\n", status,    \
                 lagraph::status_name(status), msg);                 \
    return status;                                                   \
  }

int main() {
  char msg[LAGRAPH_MSG_LEN];

  // A small directed graph: a ring of 6 nodes with two chords.
  //     0 -> 1 -> 2 -> 3 -> 4 -> 5 -> 0,  plus 1 -> 4 and 3 -> 0
  const std::vector<grb::Index> src = {0, 1, 2, 3, 4, 5, 1, 3};
  const std::vector<grb::Index> dst = {1, 2, 3, 4, 5, 0, 4, 0};
  const std::vector<double> val(src.size(), 1.0);

  grb::Matrix<double> a(6, 6);
  a.build(std::span<const grb::Index>(src), std::span<const grb::Index>(dst),
          std::span<const double>(val));

  // LAGraph_New semantics: the matrix moves into the graph.
  lagraph::Graph<double> g;
  LAGRAPH_TRY(lagraph::make_graph(g, std::move(a),
                                  lagraph::Kind::adjacency_directed, msg));
  LAGRAPH_TRY(lagraph::display_graph(g, std::cout, msg));

  // Basic-mode BFS from node 0: computes and caches the transpose itself.
  grb::Vector<std::int64_t> level;
  grb::Vector<std::int64_t> parent;
  LAGRAPH_TRY(lagraph::bfs(&level, &parent, g, 0, msg));
  std::printf("\nBFS from node 0:\n");
  level.for_each([&](grb::Index v, const std::int64_t &l) {
    std::printf("  node %llu: level %lld, parent %lld\n",
                static_cast<unsigned long long>(v), static_cast<long long>(l),
                static_cast<long long>(*parent.get(v)));
  });

  // Basic-mode PageRank. The graph now has AT cached from the BFS; pagerank
  // adds the row degrees.
  grb::Vector<double> rank;
  int iters = 0;
  LAGRAPH_TRY(lagraph::pagerank(&rank, &iters, g, 0.85, 1e-9, 100, msg));
  std::printf("\nPageRank (%d iterations):\n", iters);
  rank.for_each([](grb::Index v, const double &r) {
    std::printf("  node %llu: %.4f\n", static_cast<unsigned long long>(v), r);
  });

  // The Graph object is not opaque: inspect the cached properties.
  std::printf("\ncached properties now: AT=%s row_degree=%s\n",
              g.at.has_value() ? "yes" : "no",
              g.row_degree.has_value() ? "yes" : "no");
  return 0;
}

// road_routing — shortest travel times on a road network. This example uses
// the Advanced-mode API (§II-B): the caller computes exactly the cached
// properties the algorithms require, opts into every computation, and keeps
// full control over Δ — the knob whose sensitivity the delta-stepping SSSP
// paper (and our ablation bench) explores.
//
// Run: ./build/examples/road_routing [grid_side]
#include <cstdio>
#include <cstdlib>

#include "gen/generators.hpp"
#include "lagraph/lagraph.hpp"

#define LAGraph_CATCH(status)                                     \
  {                                                               \
    std::fprintf(stderr, "error %d: %s\n", status, msg);          \
    return status;                                                \
  }

int main(int argc, char **argv) {
  char msg[LAGRAPH_MSG_LEN];
  const grb::Index side = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 96;

  std::printf("building a %llu x %llu road grid with travel times...\n",
              static_cast<unsigned long long>(side),
              static_cast<unsigned long long>(side));
  auto el = gen::road_grid(side, side, 1);
  gen::add_uniform_weights(el, 1, 255, 2);  // travel time per segment
  lagraph::Graph<double> g;
  LAGRAPH_TRY(lagraph::make_graph(g, gen::to_matrix<double>(el),
                                  lagraph::Kind::adjacency_directed, msg));

  // Advanced mode: cache exactly what we need, explicitly.
  LAGRAPH_TRY(lagraph::property_at(g, msg));
  LAGRAPH_TRY(lagraph::check_graph(g, msg));

  const grb::Index depot = 0;                      // top-left corner
  const grb::Index customer = side * side - 1;     // bottom-right corner

  // Hop count first (how many segments), via the direction-optimizing BFS.
  grb::Vector<std::int64_t> level;
  lagraph::Timer t;
  lagraph::tic(t);
  LAGRAPH_TRY(lagraph::advanced::bfs_do(&level, nullptr, g, depot, msg));
  std::printf("BFS: customer is %lld segments away (%.3fs; graph diameter "
              "makes this the paper's worst case)\n",
              static_cast<long long>(level.get(customer).value_or(-1)),
              lagraph::toc(t));

  // Travel time via delta-stepping, sweeping Δ to show the trade-off.
  for (double delta : {16.0, 64.0, 256.0}) {
    grb::Vector<double> dist;
    lagraph::tic(t);
    LAGRAPH_TRY(
        lagraph::advanced::sssp_delta_stepping(&dist, g, depot, delta, msg));
    std::printf("SSSP Δ=%-5.0f: travel time %.0f  (%.3fs, %llu reachable)\n",
                delta, dist.get(customer).value_or(-1), lagraph::toc(t),
                static_cast<unsigned long long>(dist.nvals()));
  }

  // Every intersection within a 500-time-unit service radius of the depot.
  grb::Vector<double> dist;
  LAGRAPH_TRY(
      lagraph::advanced::sssp_delta_stepping(&dist, g, depot, 64.0, msg));
  grb::Vector<double> radius(dist.size());
  grb::select(radius, grb::no_mask, grb::NoAccum{}, grb::ValueLe{}, dist,
              500.0);
  std::printf("\n%llu intersections lie within a 500-unit service radius\n",
              static_cast<unsigned long long>(radius.nvals()));
  return 0;
}

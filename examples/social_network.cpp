// social_network — network analysis on a Twitter-like follower graph:
// who matters (PageRank), how the graph fragments (connected components),
// and how clustered it is (triangle count). Everything runs through the
// Basic-mode API — the algorithms compute and cache the graph properties
// they need, which is the user experience §II-B designs for.
//
// Run: ./build/examples/social_network [scale] [edgefactor]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "gen/generators.hpp"
#include "lagraph/lagraph.hpp"

#define LAGraph_CATCH(status)                                     \
  {                                                               \
    std::fprintf(stderr, "error %d: %s\n", status, msg);          \
    return status;                                                \
  }

int main(int argc, char **argv) {
  char msg[LAGRAPH_MSG_LEN];
  const int scale = argc > 1 ? std::atoi(argv[1]) : 12;
  const int ef = argc > 2 ? std::atoi(argv[2]) : 12;

  std::printf("generating a Twitter-like follower graph (scale %d)...\n",
              scale);
  auto el = gen::twitter_like(scale, ef, 0x50c1a1ULL);
  lagraph::Graph<double> g;
  LAGRAPH_TRY(lagraph::make_graph(g, gen::to_matrix<double>(el),
                                  lagraph::Kind::adjacency_directed, msg));
  std::printf("%llu users, %llu follow edges\n\n",
              static_cast<unsigned long long>(g.nodes()),
              static_cast<unsigned long long>(g.entries()));

  // --- Influence: PageRank, top 10 accounts -------------------------------
  grb::Vector<double> rank;
  int iters = 0;
  lagraph::Timer t;
  lagraph::tic(t);
  LAGRAPH_TRY(lagraph::pagerank(&rank, &iters, g, 0.85, 1e-7, 200, msg));
  std::printf("PageRank converged in %d iterations (%.3fs)\n", iters,
              lagraph::toc(t));
  std::vector<std::pair<double, grb::Index>> top;
  rank.for_each([&](grb::Index v, const double &r) { top.emplace_back(r, v); });
  std::partial_sort(top.begin(), top.begin() + std::min<std::size_t>(10, top.size()),
                    top.end(), std::greater<>());
  std::printf("top influencers:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, top.size()); ++i) {
    std::printf("  #%2zu user %-8llu rank %.5f\n", i + 1,
                static_cast<unsigned long long>(top[i].second), top[i].first);
  }

  // --- Fragmentation: weakly connected components --------------------------
  grb::Vector<grb::Index> comp;
  lagraph::tic(t);
  LAGRAPH_TRY(lagraph::connected_components(&comp, g, msg));
  std::map<grb::Index, std::size_t> sizes;
  comp.for_each([&](grb::Index, const grb::Index &c) { ++sizes[c]; });
  std::size_t giant = 0;
  for (auto &[c, s] : sizes) giant = std::max(giant, s);
  std::printf("\n%zu weakly connected components (%.3fs); giant holds %.1f%% "
              "of users\n",
              sizes.size(), lagraph::toc(t),
              100.0 * double(giant) / double(g.nodes()));

  // --- Clustering: triangles on the mutual-follow graph --------------------
  // Symmetrize to the undirected "anyone-follows" graph first.
  gen::symmetrize(el);
  gen::remove_self_loops(el);
  lagraph::Graph<double> ug;
  LAGRAPH_TRY(lagraph::make_graph(ug, gen::to_matrix<double>(el),
                                  lagraph::Kind::adjacency_undirected, msg));
  std::uint64_t triangles = 0;
  lagraph::tic(t);
  LAGRAPH_TRY(lagraph::triangle_count(&triangles, ug, msg));
  std::printf("\n%llu triangles in the contact graph (%.3fs)\n",
              static_cast<unsigned long long>(triangles), lagraph::toc(t));
  return 0;
}

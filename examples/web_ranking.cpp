// web_ranking — ranking pages of a web crawl, demonstrating the paper's
// §IV-C point: the GAP-specified PageRank mishandles dangling pages (pages
// with no out-links lose their rank mass every iteration), while the
// Graphalytics variant redistributes it. On a crawl — where dead-end pages
// are common — the two give visibly different rankings and totals.
//
// Run: ./build/examples/web_ranking [scale]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "gen/generators.hpp"
#include "lagraph/lagraph.hpp"

#define LAGraph_CATCH(status)                                     \
  {                                                               \
    std::fprintf(stderr, "error %d: %s\n", status, msg);          \
    return status;                                                \
  }

int main(int argc, char **argv) {
  char msg[LAGRAPH_MSG_LEN];
  const int scale = argc > 1 ? std::atoi(argv[1]) : 12;

  std::printf("generating a web-like crawl graph (scale %d)...\n", scale);
  auto el = gen::web_like(scale, 8, 0x3eb5eedULL);
  lagraph::Graph<double> g;
  LAGRAPH_TRY(lagraph::make_graph(g, gen::to_matrix<double>(el),
                                  lagraph::Kind::adjacency_directed, msg));

  // Count the dangling pages (no out-links).
  LAGRAPH_TRY(lagraph::property_row_degree(g, msg));
  const grb::Index dangling = g.nodes() - g.row_degree->nvals();
  std::printf("%llu pages, %llu links, %llu dangling pages (%.1f%%)\n\n",
              static_cast<unsigned long long>(g.nodes()),
              static_cast<unsigned long long>(g.entries()),
              static_cast<unsigned long long>(dangling),
              100.0 * double(dangling) / double(g.nodes()));

  grb::Vector<double> r_gap;
  grb::Vector<double> r_lytics;
  int it1 = 0;
  int it2 = 0;
  LAGRAPH_TRY(lagraph::pagerank(&r_gap, &it1, g, 0.85, 1e-9, 200, msg));
  LAGRAPH_TRY(lagraph::pagerank_dangling_aware(&r_lytics, &it2, g, 0.85, 1e-9,
                                               200, msg));

  double sum_gap = 0;
  double sum_lytics = 0;
  grb::reduce(sum_gap, grb::NoAccum{}, grb::PlusMonoid<double>{}, r_gap);
  grb::reduce(sum_lytics, grb::NoAccum{}, grb::PlusMonoid<double>{}, r_lytics);
  std::printf("GAP variant          : %3d iterations, total rank mass %.4f\n",
              it1, sum_gap);
  std::printf("Graphalytics variant : %3d iterations, total rank mass %.4f\n",
              it2, sum_lytics);
  std::printf("(the GAP variant leaks the dangling pages' mass, §IV-C)\n\n");

  auto top_of = [](const grb::Vector<double> &r) {
    std::vector<std::pair<double, grb::Index>> top;
    r.for_each([&](grb::Index v, const double &x) { top.emplace_back(x, v); });
    std::partial_sort(top.begin(),
                      top.begin() + std::min<std::size_t>(5, top.size()),
                      top.end(), std::greater<>());
    top.resize(std::min<std::size_t>(5, top.size()));
    return top;
  };
  auto t1 = top_of(r_gap);
  auto t2 = top_of(r_lytics);
  std::printf("top pages            GAP                 Graphalytics\n");
  for (std::size_t i = 0; i < t1.size(); ++i) {
    std::printf("  #%zu       page %-8llu %.5f   page %-8llu %.5f\n", i + 1,
                static_cast<unsigned long long>(t1[i].second), t1[i].first,
                static_cast<unsigned long long>(t2[i].second), t2[i].first);
  }
  return 0;
}

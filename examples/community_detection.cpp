// community_detection — recovering planted communities with the
// experimental-tier CDLP algorithm (the LDBC Graphalytics kernel the paper
// names as its next evaluation target, §VII), then inspecting the result
// with the stable-tier algorithms.
//
// Run: ./build/examples/community_detection [communities] [size]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "gen/generators.hpp"
#include "lagraph/lagraph.hpp"

#define LAGraph_CATCH(status)                                     \
  {                                                               \
    std::fprintf(stderr, "error %d: %s\n", status, msg);          \
    return status;                                                \
  }

int main(int argc, char **argv) {
  char msg[LAGRAPH_MSG_LEN];
  const grb::Index communities =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
  const grb::Index size = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;

  std::printf("planting %llu communities of %llu members each...\n",
              static_cast<unsigned long long>(communities),
              static_cast<unsigned long long>(size));
  auto el = gen::planted_partition(communities, size, 8, 0.9, 0x0ddba11ULL);
  gen::remove_self_loops(el);
  lagraph::Graph<double> g;
  LAGRAPH_TRY(lagraph::make_graph(g, gen::to_matrix<double>(el),
                                  lagraph::Kind::adjacency_undirected, msg));

  grb::Vector<grb::Index> labels;
  int rounds = 0;
  lagraph::Timer t;
  lagraph::tic(t);
  LAGRAPH_TRY(lagraph::experimental::cdlp(&labels, &rounds, g, 50, msg));
  std::printf("CDLP converged after %d rounds (%.3fs)\n\n", rounds,
              lagraph::toc(t));

  // How well did the labels recover the planted partition? Score each
  // community by the share of its members that agree with the community's
  // majority label.
  std::size_t agree = 0;
  for (grb::Index c = 0; c < communities; ++c) {
    std::map<grb::Index, std::size_t> votes;
    for (grb::Index v = c * size; v < (c + 1) * size; ++v) {
      ++votes[*labels.get(v)];
    }
    std::size_t best = 0;
    for (auto &[l, cnt] : votes) best = std::max(best, cnt);
    agree += best;
  }
  std::printf("planted-community purity: %.1f%%\n",
              100.0 * double(agree) / double(g.nodes()));

  std::map<grb::Index, std::size_t> found;
  labels.for_each([&](grb::Index, const grb::Index &l) { ++found[l]; });
  std::printf("detected %zu label groups (planted %llu)\n", found.size(),
              static_cast<unsigned long long>(communities));

  // Cross-check with the stable tier: the graph should be one connected
  // component (communities are bridged by the inter-community edges)...
  grb::Vector<grb::Index> comp;
  LAGRAPH_TRY(lagraph::connected_components(&comp, g, msg));
  std::map<grb::Index, std::size_t> comps;
  comp.for_each([&](grb::Index, const grb::Index &c) { ++comps[c]; });
  std::printf("connected components: %zu\n", comps.size());

  // ...and intra-community clustering should exceed the global average.
  std::uint64_t triangles = 0;
  LAGRAPH_TRY(lagraph::triangle_count(&triangles, g, msg));
  std::printf("triangles: %llu (dense communities cluster heavily)\n",
              static_cast<unsigned long long>(triangles));
  return 0;
}

#!/usr/bin/env bash
# scripts/check.sh — the one-button pre-merge gate.
#
# Runs, in order:
#   1. tier-1 verify (configure + build + full ctest, per ROADMAP.md),
#   2. the focused suites behind their ctest labels:
#        parallel     bit-identical serial/parallel kernel determinism,
#        concurrency  lagraph::service snapshot/engine races + the
#                     lagraph::ingest reader-vs-mutation-stream stress
#                     (tests_ingest_stress, the TSan target),
#        plan         planner equivalence across formats × directions,
#        obs          grb::trace rings, histograms, calibration,
#        storage      index-width selection/promotion/guards + u32-vs-u64
#                     kernel bit-identity (plus the same suite under
#                     UBSan as the narrowing-conversion smoke),
#        conformance  differential oracle suite incl. corpus replay (kernel
#                     and query corpora) and the ingest snapshot-vs-rebuild
#                     fuzz sweep (tests_ingest),
#        query        lagraph::query parser/plan/exec units, optimizer
#                     decision tests, golden-file queries, the EXPLAIN
#                     stability golden, and a budgeted differential fuzz,
#   2b. a budgeted conformance fuzz: lagraph_cli fuzz replays the committed
#       corpus (tests/corpus/*.repro) then runs fresh seeded scenarios for
#       --fuzz-seconds (default 30) wall-clock seconds; any mismatch exits
#       non-zero and prints the failing seed + a shrunk repro — mutation
#       prologues now interleave insert/delete/accumulate across flush
#       boundaries, so the pending-tuple write path is fuzzed here too,
#   2b'. a budgeted query fuzz: lagraph_cli fuzz --query replays the
#        committed query corpus (tests/corpus/query/*.repro) then checks
#        QUERY_FUZZ_OPS fresh pattern-query scenarios (default 10000)
#        bit-exactly against the tuple-at-a-time oracle across the full
#        config sweep in both compilation modes,
#   2b''. a TSan leg: tests_query_stress rebuilt with
#        -DLAGRAPH_SANITIZE=thread in a side build tree (BUILD_DIR-tsan)
#        and run under the sanitizer — concurrent cypher traffic against a
#        mutating ingest::Writer (SKIP_TSAN=1 skips),
#   2c. an ingest smoke: lagraph_cli mutate streams a synthetic mixed
#       mutation load through an ingest::Writer and check_graph-validates
#       the final published snapshot,
#   3. a trace smoke: lagraph_cli trace bfs on a generated kron graph, with
#      the emitted Chrome trace-event JSON validated by python3,
#   3b. a calibration round-trip smoke: trace bfs fits per-machine
#       ns/cost-unit coefficients and persists them (--calibration-out);
#       the file is schema-checked and reloaded into a fresh process whose
#       `explain --calibration` must render the fitted values,
#   3c. a telemetry smoke: lagraph_cli serve --telemetry-port 0 on a
#       generated graph, the printed ephemeral port scraped over HTTP —
#       /healthz must answer "ok" and /metrics must expose a non-zero
#       lagraph_requests_total,
#   4. a perf smoke: bench_kernels --smoke, gated by tools/bench_diff.py
#      against the committed baseline bench/baselines/BENCH_smoke.json.
#
# Env knobs:
#   BUILD_DIR          build tree to use                 (default: build)
#   JOBS               parallel build/test jobs          (default: nproc)
#   SMOKE_THRESHOLD    relative slowdown that fails the
#                      perf smoke; generous by default
#                      because smoke timings on shared
#                      CI boxes are noisy                (default: 0.50)
#   SMOKE_MIN_MS       cells whose baseline median is
#                      below this many ms are shown but
#                      never fail the gate (sub-ms cells
#                      are noise)                        (default: 0.5)
#   SKIP_SMOKE=1       skip step 3 entirely
#   SKIP_TSAN=1        skip the TSan query-stress leg
#   QUERY_FUZZ_OPS     scenario budget for the query fuzz   (default: 10000)
#
# Args:
#   --fuzz-seconds N   wall-clock budget for the fresh-seed conformance
#                      fuzz stage (default 30; 0 skips the fresh fuzz but
#                      still replays the corpus)
#
# To (re)record the perf baseline on a quiet machine:
#   LAGRAPH_BENCH_JSON=bench/baselines/BENCH_smoke.json \
#       "$BUILD_DIR"/bench/bench_kernels --smoke
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}
SMOKE_THRESHOLD=${SMOKE_THRESHOLD:-0.50}
SMOKE_MIN_MS=${SMOKE_MIN_MS:-0.5}
BASELINE=bench/baselines/BENCH_smoke.json
FUZZ_SECONDS=30
FUZZ_SEED=${FUZZ_SEED:-1}
QUERY_FUZZ_OPS=${QUERY_FUZZ_OPS:-10000}

while [[ $# -gt 0 ]]; do
  case "$1" in
    --fuzz-seconds)
      FUZZ_SECONDS=${2:?--fuzz-seconds needs a value}
      shift 2
      ;;
    *)
      echo "check.sh: unknown argument: $1" >&2
      exit 2
      ;;
  esac
done

step() { printf '\n=== %s ===\n' "$*"; }

step "tier-1: configure + build ($BUILD_DIR, -j$JOBS)"
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j"$JOBS"

step "tier-1: full ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

for label in parallel concurrency plan obs storage conformance query; do
  step "ctest -L $label"
  ctest --test-dir "$BUILD_DIR" -L "$label" --output-on-failure -j"$JOBS"
done

step "UBSan narrowing smoke: tests_storage_ubsan"
# The storage suite compiled under -fsanitize=undefined: runs the u64 -> u32
# narrowing stores of the width-erased index paths on real kernel traffic
# with the sanitizer watching (the plain-build run above checks semantics;
# this run checks the casts themselves). The ctest -L storage loop already
# executes it when present; this explicit pass fails loudly if the target
# was configured out.
if [[ -x "$BUILD_DIR"/tests/grb/tests_storage_ubsan ]]; then
  "$BUILD_DIR"/tests/grb/tests_storage_ubsan \
      --gtest_filter='IndexArray.*:IndexSpan.*:*WidthIdentity*' >/dev/null \
    && echo "UBSan narrowing smoke OK"
else
  echo "check.sh: tests_storage_ubsan missing (global sanitizer build?) — skipped"
fi

step "conformance fuzz: corpus replay + ${FUZZ_SECONDS}s budget (seed $FUZZ_SEED)"
# Replays every committed tests/corpus/*.repro through the full config
# sweep, then fuzzes fresh seeded scenarios for the wall-clock budget. On a
# mismatch the CLI exits non-zero, prints the failing seed, and writes a
# shrunk self-contained repro to fuzz_failure.repro — commit the fixed
# kernel plus the repro (as tests/corpus/<name>.repro) together.
"$BUILD_DIR"/tools/lagraph_cli fuzz --corpus tests/corpus \
    --seconds "$FUZZ_SECONDS" --seed "$FUZZ_SEED"

step "query fuzz: corpus replay + $QUERY_FUZZ_OPS scenarios (seed $FUZZ_SEED)"
# Same contract one layer up: replays tests/corpus/query/*.repro, then
# checks fresh pattern-query scenarios against the tuple-at-a-time oracle
# under every RunConfig x {naive, optimized} compilation. A mismatch prints
# the failing seed and writes a shrunk qscenario repro to
# fuzz_failure.repro — commit it under tests/corpus/query/ with the fix.
"$BUILD_DIR"/tools/lagraph_cli fuzz --query --corpus tests/corpus/query \
    --ops "$QUERY_FUZZ_OPS" --seed "$FUZZ_SEED"

if [[ "${SKIP_TSAN:-0}" == "1" ]]; then
  step "TSan query stress: skipped (SKIP_TSAN=1)"
else
  step "TSan query stress: tests_query_stress under -DLAGRAPH_SANITIZE=thread"
  # Rebuilds only the query-stress target (plus its library closure) in a
  # dedicated TSan tree and runs the concurrent-cypher-vs-mutating-writer
  # suite under the sanitizer. This is the race gate for the new
  # Engine::cypher path and the snapshot handoff it rides on.
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . -DLAGRAPH_SANITIZE=thread >/dev/null
  cmake --build "$TSAN_DIR" -j"$JOBS" --target tests_query_stress >/dev/null
  "$TSAN_DIR"/tests/query/tests_query_stress
fi

step "ingest smoke: lagraph_cli mutate --gen kron 10 --mutations 2048"
# Streams a synthetic insert/upsert/delete mix through the epoch-publishing
# write path and check_graph-validates the final snapshot: a cheap
# end-to-end pass over stage_tuples → merge_pending → incremental property
# maintenance. Exits non-zero if the published graph is inconsistent.
"$BUILD_DIR"/tools/lagraph_cli mutate --gen kron 10 --mutations 2048

step "trace smoke: lagraph_cli trace bfs --gen kron 10"
trace_json=$(mktemp --suffix=.json)
"$BUILD_DIR"/tools/lagraph_cli trace bfs --gen kron 10 --trace-out "$trace_json"
python3 - "$trace_json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
levels = [e for e in events if e["name"] == "bfs_level"]
assert levels, "trace has no bfs_level spans"
for e in levels:
    assert e["ph"] == "X", e
    assert "frontier" in e["args"], e
    assert e["args"]["direction"] in ("push", "pull"), e
print(f"trace smoke OK: {len(events)} events, {len(levels)} bfs levels")
EOF
rm -f "$trace_json"

step "calibration round-trip: trace --calibration-out, reload, explain"
# Fits per-machine ns/cost-unit coefficients from a traced BFS, persists
# them, reloads them into a fresh process, and asserts `explain` renders the
# calibrated estimates (proof the file round-trips and the planner reads it).
cal_json=$(mktemp --suffix=.json)
"$BUILD_DIR"/tools/lagraph_cli trace bfs --gen kron 10 \
    --calibration-out "$cal_json" >/dev/null
python3 - "$cal_json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    cal = json.load(f)
assert cal["schema"] == "lagraph-calibration-v1", cal
assert cal["samples"] > 0, cal
assert cal["push_ns_per_unit"] > 0 or cal["pull_ns_per_unit"] > 0, cal
print(f"calibration file OK: push {cal['push_ns_per_unit']:.2f}, "
      f"pull {cal['pull_ns_per_unit']:.2f} ns/unit, "
      f"{cal['samples']} samples")
EOF
explain_out=$("$BUILD_DIR"/tools/lagraph_cli explain bfs --gen kron 10 \
    --calibration "$cal_json")
if ! grep -q "^calibration: push" <<<"$explain_out"; then
  echo "check.sh: explain did not report the loaded calibration:" >&2
  echo "$explain_out" >&2
  exit 1
fi
grep "^calibration:" <<<"$explain_out"
rm -f "$cal_json"

step "telemetry smoke: lagraph_cli serve --telemetry-port 0 --serve-seconds 8"
# Serves a generated graph with the embedded HTTP telemetry endpoint on an
# ephemeral port, parses the printed port, and scrapes /healthz + /metrics
# while the engine is live. The gate: the Prometheus exposition must carry a
# non-zero lagraph_requests_total (requests actually flowed through the
# instrumented path).
serve_log=$(mktemp)
"$BUILD_DIR"/tools/lagraph_cli serve --gen kron 10 --telemetry-port 0 \
    --serve-seconds 8 --slow-query-ms 60000 >"$serve_log" 2>&1 &
serve_pid=$!
tele_port=""
for _ in $(seq 1 100); do
  tele_port=$(sed -n 's/^telemetry: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "$serve_log")
  [[ -n "$tele_port" ]] && break
  if ! kill -0 "$serve_pid" 2>/dev/null; then break; fi
  sleep 0.1
done
if [[ -z "$tele_port" ]]; then
  echo "check.sh: serve never printed its telemetry port:" >&2
  cat "$serve_log" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
if ! python3 - "$tele_port" <<'EOF'
import sys
import urllib.request

port = sys.argv[1]

health = urllib.request.urlopen(
    f"http://127.0.0.1:{port}/healthz", timeout=10).read().decode()
assert health.strip() == "ok", f"unexpected /healthz body: {health!r}"

metrics = urllib.request.urlopen(
    f"http://127.0.0.1:{port}/metrics", timeout=10).read().decode()
for line in metrics.splitlines():
    if line.startswith("lagraph_requests_total "):
        value = float(line.split()[-1])
        assert value > 0, f"lagraph_requests_total is zero: {line!r}"
        print(f"telemetry smoke OK: /healthz ok, "
              f"lagraph_requests_total = {value:.0f}")
        break
else:
    sys.exit("no lagraph_requests_total sample in /metrics")
EOF
then
  kill "$serve_pid" 2>/dev/null || true
  cat "$serve_log" >&2
  exit 1
fi
wait "$serve_pid"
rm -f "$serve_log"

if [[ "${SKIP_SMOKE:-0}" == "1" ]]; then
  step "perf smoke: skipped (SKIP_SMOKE=1)"
else
  step "perf smoke: bench_kernels --smoke vs $BASELINE"
  smoke_json=$(mktemp --suffix=.json)
  trap 'rm -f "$smoke_json"' EXIT
  LAGRAPH_BENCH_JSON="$smoke_json" "$BUILD_DIR"/bench/bench_kernels --smoke
  # bench_diff exits with a friendly message if the baseline has not been
  # recorded yet; that is a hard failure here, since the baseline is
  # supposed to be committed.
  python3 tools/bench_diff.py "$BASELINE" "$smoke_json" \
      --threshold "$SMOKE_THRESHOLD" --min-ms "$SMOKE_MIN_MS"
fi

printf '\ncheck.sh: all gates passed\n'

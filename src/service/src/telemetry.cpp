// service/telemetry.cpp — poll()-loop HTTP server over POSIX sockets.

#include "service/telemetry.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "service/engine.hpp"

namespace lagraph {
namespace service {

namespace {

std::string http_response(const char *status, const char *content_type,
                          const std::string &body) {
  std::ostringstream os;
  os << "HTTP/1.0 " << status << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

std::string request_record_json(const RequestRecord &rec) {
  const char *kind = query_kind_name(static_cast<QueryKind>(rec.kind));
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"request_id\":%" PRIu64 ",\"trace_id\":%" PRIu64
      ",\"kind\":\"%s\",\"source\":%" PRIu64 ",\"status\":%d"
      ",\"deadline_missed\":%s,\"batched\":%s,\"batch_size\":%u"
      ",\"snapshot_id\":%" PRIu64 ",\"epoch\":%" PRIu64
      ",\"queue_ms\":%.3f,\"exec_ms\":%.3f,\"total_ms\":%.3f"
      ",\"span_count\":%" PRIu64,
      rec.request_id, rec.trace_id, kind, rec.source,
      static_cast<int>(rec.status), rec.deadline_missed ? "true" : "false",
      rec.batched ? "true" : "false", static_cast<unsigned>(rec.batch_size),
      rec.snapshot_id, rec.epoch, rec.queue_s * 1e3, rec.exec_s * 1e3,
      rec.total_s * 1e3, rec.span_count);
  std::string out = buf;
  out += ",\"plan\":\"" + json_escape(rec.plan) + "\"}";
  return out;
}

std::string statusz_json(const Engine &engine) {
  std::ostringstream os;
  char buf[256];
  const EngineCounters c = engine.counters();
  os << "{";
  std::snprintf(buf, sizeof(buf), "\"uptime_s\":%.3f,",
                engine.uptime_seconds());
  os << buf;

  if (const SnapshotPtr snap = engine.snapshot()) {
    std::snprintf(buf, sizeof(buf),
                  "\"snapshot\":{\"id\":%" PRIu64 ",\"epoch\":%" PRIu64
                  ",\"nodes\":%" PRIu64 ",\"entries\":%" PRIu64 "},",
                  snap->id(), snap->epoch(),
                  static_cast<std::uint64_t>(snap->nodes()),
                  static_cast<std::uint64_t>(snap->entries()));
    os << buf;
  } else {
    os << "\"snapshot\":null,";
  }

  os << "\"counters\":{";
  std::snprintf(buf, sizeof(buf),
                "\"submitted\":%" PRIu64 ",\"completed\":%" PRIu64
                ",\"failed\":%" PRIu64 ",\"deadline_expired\":%" PRIu64
                ",\"queue_rejected\":%" PRIu64 ",\"bfs_sweeps\":%" PRIu64
                ",\"batched_bfs\":%" PRIu64 ",\"solo_queries\":%" PRIu64
                ",\"snapshot_installs\":%" PRIu64 ",\"slow_queries\":%" PRIu64
                "},",
                c.submitted, c.completed, c.failed, c.deadline_expired,
                c.queue_rejected, c.bfs_sweeps, c.batched_bfs, c.solo_queries,
                c.snapshot_installs, c.slow_queries);
  os << buf;

  std::snprintf(buf, sizeof(buf),
                "\"gauges\":{\"queue_depth\":%zu,\"inflight\":%d"
                ",\"active_workers\":%d,\"workers\":%d},",
                engine.queue_depth(), engine.inflight(),
                engine.active_workers(), engine.config().threads);
  os << buf;

  os << "\"latency\":[";
  bool first = true;
  for (const KindLatency &kl : engine.latency_summary()) {
    if (!first) os << ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"kind\":\"%s\",\"count\":%" PRIu64
                  ",\"exec_p50_ms\":%.3f,\"exec_p95_ms\":%.3f"
                  ",\"exec_p99_ms\":%.3f,\"exec_mean_ms\":%.3f"
                  ",\"queue_p50_ms\":%.3f,\"queue_p95_ms\":%.3f"
                  ",\"queue_p99_ms\":%.3f,\"queue_mean_ms\":%.3f}",
                  query_kind_name(kl.kind), kl.count, kl.p50_ms, kl.p95_ms,
                  kl.p99_ms, kl.mean_ms, kl.queue_p50_ms, kl.queue_p95_ms,
                  kl.queue_p99_ms, kl.queue_mean_ms);
    os << buf;
  }
  os << "],";

  os << "\"recent\":[";
  first = true;
  for (const RequestRecord &rec : engine.request_log().recent(32)) {
    if (!first) os << ",";
    first = false;
    os << request_record_json(rec);
  }
  os << "],";

  os << "\"slow\":[";
  first = true;
  for (const std::string &line : engine.slow_query_tail()) {
    if (!first) os << ",";
    first = false;
    os << line;  // already a complete JSON object
  }
  os << "]}";
  return os.str();
}

std::string requestz_json(const Engine &engine, std::uint64_t id,
                          bool *found) {
  RequestRecord rec;
  if (!engine.request_log().find(id, &rec)) {
    *found = false;
    return "";
  }
  *found = true;
  std::vector<grb::trace::Span> spans;
  for (const grb::trace::Span &s : grb::trace::collect()) {
    if (s.request_id == rec.trace_id && rec.trace_id != 0) spans.push_back(s);
  }
  std::ostringstream os;
  os << "{\"request\":" << request_record_json(rec) << ",\"trace\":";
  grb::trace::write_chrome_trace(os, spans);
  os << "}";
  return os.str();
}

}  // namespace

TelemetryServer::TelemetryServer(Engine &engine, int port) : engine_(engine) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0 || ::pipe(wake_pipe_) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&addr), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  }
  thread_ = std::thread([this] { serve_loop(); });
}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::set_extra_metrics(std::function<std::string()> fn) {
  std::lock_guard<std::mutex> lk(extra_mu_);
  extra_ = std::move(fn);
}

void TelemetryServer::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (wake_pipe_[1] >= 0) {
    const char b = 'q';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (int &fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  listen_fd_ = -1;
}

void TelemetryServer::serve_loop() {
  pollfd fds[2];
  fds[0].fd = listen_fd_;
  fds[0].events = POLLIN;
  fds[1].fd = wake_pipe_[0];
  fds[1].events = POLLIN;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::poll(fds, 2, /*timeout ms=*/1000);
    if (n <= 0) continue;  // timeout or EINTR: re-check stopping_
    if (fds[1].revents != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    handle_connection(conn);
    ::close(conn);
  }
}

void TelemetryServer::handle_connection(int fd) {
  // Read until the end of the request head (we never accept bodies).
  std::string req;
  char buf[2048];
  while (req.size() < 16 * 1024 && req.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t sp1 = req.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                   : req.find(' ', sp1 + 1);
  std::string response;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response = http_response("400 Bad Request", "text/plain", "bad request\n");
  } else if (req.substr(0, sp1) != "GET") {
    response = http_response("405 Method Not Allowed", "text/plain",
                             "GET only\n");
  } else {
    response = respond(req.substr(sp1 + 1, sp2 - sp1 - 1));
  }
  std::size_t off = 0;
  while (off < response.size()) {
    const ssize_t n =
        ::send(fd, response.data() + off, response.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
}

std::string TelemetryServer::respond(const std::string &target) {
  const std::size_t q = target.find('?');
  const std::string path = target.substr(0, q);
  if (path == "/healthz") {
    return http_response("200 OK", "text/plain", "ok\n");
  }
  if (path == "/metrics") {
    std::ostringstream os;
    os << engine_.prometheus_text();
    std::function<std::string()> extra;
    {
      std::lock_guard<std::mutex> lk(extra_mu_);
      extra = extra_;
    }
    if (extra) os << extra();
    return http_response("200 OK", "text/plain; version=0.0.4", os.str());
  }
  if (path == "/statusz") {
    return http_response("200 OK", "application/json", statusz_json(engine_));
  }
  if (path == "/requestz") {
    std::uint64_t id = 0;
    bool have_id = false;
    if (q != std::string::npos) {
      const std::string query = target.substr(q + 1);
      const std::size_t at = query.find("id=");
      if (at != std::string::npos) {
        id = std::strtoull(query.c_str() + at + 3, nullptr, 10);
        have_id = true;
      }
    }
    if (!have_id) {
      return http_response("400 Bad Request", "text/plain",
                           "usage: /requestz?id=<request id>\n");
    }
    bool found = false;
    const std::string body = requestz_json(engine_, id, &found);
    if (!found) {
      return http_response("404 Not Found", "text/plain",
                           "request not in the retained window\n");
    }
    return http_response("200 OK", "application/json", body);
  }
  return http_response("404 Not Found", "text/plain",
                       "endpoints: /metrics /healthz /statusz /requestz?id=\n");
}

std::string TelemetryServer::http_get(const std::string &host, int port,
                                      const std::string &target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + target +
                          " HTTP/1.0\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

}  // namespace service
}  // namespace lagraph

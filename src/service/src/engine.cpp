// service/engine.cpp — worker pool, request queue, adaptive BFS batching.
//
// Locking discipline: mu_ guards the queue, the current snapshot pointer,
// the counters, and the batching EWMA. Workers hold it only while popping /
// scooping / bookkeeping — never while a query kernel runs. Promises are
// fulfilled outside the lock except for submit-time rejections.

#include "service/engine.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "query/query.hpp"
#include "service/telemetry.hpp"

namespace lagraph {
namespace service {

namespace {

using Clock = std::chrono::steady_clock;

bool has_deadline(const Request &r) {
  return r.deadline.time_since_epoch().count() != 0;
}

bool expired(const Request &r, Clock::time_point now) {
  return has_deadline(r) && now > r.deadline;
}

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Once the average sweep width drops below this, lingering for companions
// has stopped paying for itself and workers run BFS immediately.
constexpr double kLingerThreshold = 1.5;

// Slow-query records carry the top spans ranked by self-time.
constexpr std::size_t kSlowLogTopSpans = 5;

/// The representative plan one-liner a request's roll-up carries: the
/// planner decision for the query's dominant op shape against its bound
/// snapshot. Cheap (a cache probe under an installed CacheScope, a pure
/// cost-model run otherwise).
std::string plan_summary_for(const Request &req, const GraphSnapshot &snap) {
  const Graph<double> &g = snap.graph();
  if (req.kind == QueryKind::cypher) {
    // The cypher plan summary is the multi-op optimizer's own one-liner
    // (parse + compile are pure planning — no kernels run).
    query::Query q;
    query::QueryPlan plan;
    if (query::parse(&q, req.query, nullptr) != LAGRAPH_OK ||
        query::compile(&plan, q, g, /*optimize=*/true, nullptr) !=
            LAGRAPH_OK) {
      return "cypher[invalid]";
    }
    return plan.explain_line();
  }
  grb::plan::OpDesc d;
  const grb::Index n = g.a.nrows();
  d.a_rows = n;
  d.a_cols = g.a.ncols();
  d.a_nvals = g.a.nvals();
  d.a_width = g.a.index_width();
  d.out_size = n;
  switch (req.kind) {
    case QueryKind::bfs:
    case QueryKind::sssp:
      d.op = grb::plan::OpKind::traversal;
      d.u_nvals = 1;
      d.pull_candidates = n;
      d.has_transpose = g.at.has_value();
      d.has_terminal = true;
      d.masked = true;
      d.mask_structural = true;
      d.mask_complement = true;
      break;
    case QueryKind::pagerank:
      d.op = grb::plan::OpKind::mxv;
      d.u_nvals = n;
      break;
    case QueryKind::tc:
      d.op = grb::plan::OpKind::mxm;
      d.b_nvals = d.a_nvals;
      d.b_width = d.a_width;
      d.masked = true;
      d.mask_structural = true;
      d.mask_nvals = d.a_nvals;
      d.operands_aliased = true;
      break;
    case QueryKind::cypher:
      break;  // handled above
  }
  return grb::plan::make_plan(d).explain_line();
}

}  // namespace

const char *query_kind_name(QueryKind k) {
  switch (k) {
    case QueryKind::bfs: return "bfs";
    case QueryKind::sssp: return "sssp";
    case QueryKind::pagerank: return "pagerank";
    case QueryKind::tc: return "tc";
    case QueryKind::cypher: return "cypher";
  }
  return "?";
}

Engine::Engine(EngineConfig cfg) : Engine(SnapshotPtr{}, cfg) {}

Engine::Engine(SnapshotPtr snapshot, EngineConfig cfg)
    : cfg_(cfg),
      snap_(std::move(snapshot)),
      request_log_(cfg.request_log_capacity),
      started_(Clock::now()) {
  cfg_.threads = std::max(1, cfg_.threads);
  cfg_.max_batch = std::max<std::uint32_t>(1, cfg_.max_batch);
  slow_log_.open(cfg_.slow_query_log);
  if (cfg_.calibration_update_every > 0) {
    // Online cost-model calibration: workers' traced spans feed the fitted
    // ns/cost-unit coefficients. Span recording is a prerequisite — turn on
    // a sparse sampling rate if the process runs with tracing off.
    grb::config().calibration_update_every = cfg_.calibration_update_every;
    if (grb::config().trace_sample_every == 0) {
      grb::config().trace_sample_every = 64;
    }
  }
  // Optimistic start: assume lingering pays until the workload proves
  // otherwise, so bursts issued right after startup coalesce.
  ewma_batch_ = static_cast<double>(cfg_.max_batch);
  workers_.reserve(static_cast<std::size_t>(cfg_.threads));
  for (int i = 0; i < cfg_.threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  if (cfg_.telemetry_port >= 0) {
    telemetry_ = std::make_unique<TelemetryServer>(*this, cfg_.telemetry_port);
  }
}

Engine::~Engine() {
  // The telemetry thread reads engine state; retire it before anything else.
  telemetry_.reset();
  stop();
}

void Engine::install_snapshot(SnapshotPtr snapshot) {
  std::lock_guard<std::mutex> lk(mu_);
  snap_ = std::move(snapshot);
  ++counters_.snapshot_installs;
}

SnapshotPtr Engine::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return snap_;
}

EngineCounters Engine::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  EngineCounters c = counters_;
  c.slow_queries = slow_log_.emitted();
  return c;
}

std::size_t Engine::queue_depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

int Engine::inflight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return in_flight_;
}

int Engine::active_workers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return busy_workers_;
}

double Engine::uptime_seconds() const {
  return seconds_between(started_, Clock::now());
}

void Engine::observe(QueryKind k, double queue_s, double exec_s) noexcept {
  const int i = static_cast<int>(k);
  queue_hist_[i].record(static_cast<std::uint64_t>(queue_s * 1e9));
  exec_hist_[i].record(static_cast<std::uint64_t>(exec_s * 1e9));
}

std::vector<KindLatency> Engine::latency_summary() const {
  std::vector<KindLatency> out;
  for (int i = 0; i < kNumQueryKinds; ++i) {
    const auto &h = exec_hist_[i];
    if (h.count() == 0) continue;
    KindLatency kl;
    kl.kind = static_cast<QueryKind>(i);
    kl.count = h.count();
    kl.p50_ms = h.percentile_ns(50) / 1e6;
    kl.p95_ms = h.percentile_ns(95) / 1e6;
    kl.p99_ms = h.percentile_ns(99) / 1e6;
    kl.mean_ms = static_cast<double>(h.sum_ns()) /
                 static_cast<double>(h.count()) / 1e6;
    const auto &q = queue_hist_[i];
    if (q.count() > 0) {
      kl.queue_p50_ms = q.percentile_ns(50) / 1e6;
      kl.queue_p95_ms = q.percentile_ns(95) / 1e6;
      kl.queue_p99_ms = q.percentile_ns(99) / 1e6;
      kl.queue_mean_ms = static_cast<double>(q.sum_ns()) /
                         static_cast<double>(q.count()) / 1e6;
    }
    out.push_back(kl);
  }
  return out;
}

std::string Engine::prometheus_text() const {
  std::ostringstream os;
  const EngineCounters c = counters();
  auto counter = [&](const char *name, const char *help, std::uint64_t v) {
    os << "# HELP " << name << ' ' << help << '\n';
    os << "# TYPE " << name << " counter\n";
    os << name << ' ' << v << '\n';
  };
  counter("lagraph_service_queries_submitted_total", "Queries submitted",
          c.submitted);
  counter("lagraph_service_queries_completed_total", "Queries completed",
          c.completed);
  counter("lagraph_service_queries_failed_total", "Queries failed",
          c.failed);
  counter("lagraph_service_deadline_expired_total",
          "Queries expired in queue", c.deadline_expired);
  counter("lagraph_service_queue_rejected_total",
          "Queries rejected by the queue cap", c.queue_rejected);
  counter("lagraph_service_bfs_sweeps_total", "msbfs sweeps issued",
          c.bfs_sweeps);
  counter("lagraph_service_batched_bfs_total",
          "BFS queries answered by a sweep of width >= 2", c.batched_bfs);
  counter("lagraph_service_solo_queries_total", "Queries run unbatched",
          c.solo_queries);
  counter("lagraph_service_snapshot_installs_total", "Snapshots installed",
          c.snapshot_installs);
  counter("lagraph_service_slow_queries_total",
          "Slow-query log records emitted", c.slow_queries);
  // The scrape-gate alias: "did this engine see traffic at all?"
  counter("lagraph_requests_total", "Queries submitted (alias)", c.submitted);

  auto gauge = [&](const char *name, const char *help, double v) {
    os << "# HELP " << name << ' ' << help << '\n';
    os << "# TYPE " << name << " gauge\n";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os << name << ' ' << buf << '\n';
  };
  {
    std::lock_guard<std::mutex> lk(mu_);
    gauge("lagraph_service_queue_depth", "Requests waiting in the queue",
          static_cast<double>(queue_.size()));
    gauge("lagraph_service_inflight_requests",
          "Requests popped but not yet completed",
          static_cast<double>(in_flight_));
    gauge("lagraph_service_active_workers", "Workers executing right now",
          static_cast<double>(busy_workers_));
  }
  gauge("lagraph_calibration_updates_total",
        "Online cost-model calibration updates",
        static_cast<double>(grb::stats().calibration_updates.load(
            std::memory_order_relaxed)));

  for (int i = 0; i < kNumQueryKinds; ++i) {
    const std::string labels = grb::trace::prometheus_label(
        "kind", query_kind_name(static_cast<QueryKind>(i)));
    grb::trace::write_prometheus_histogram(
        os, "lagraph_service_exec_seconds", labels, exec_hist_[i], i == 0,
        "Query execution latency (seconds)");
  }
  for (int i = 0; i < kNumQueryKinds; ++i) {
    const std::string labels = grb::trace::prometheus_label(
        "kind", query_kind_name(static_cast<QueryKind>(i)));
    grb::trace::write_prometheus_histogram(
        os, "lagraph_service_queue_seconds", labels, queue_hist_[i], i == 0,
        "Queue wait before execution (seconds)");
  }

  // Global per-op kernel histograms (fed by grb::trace spans; empty unless
  // tracing is sampling).
  bool first = true;
  for (int i = 0; i < grb::trace::kNumSpanKinds; ++i) {
    const auto k = static_cast<grb::trace::SpanKind>(i);
    const auto &h = grb::trace::op_histogram(k);
    if (h.count() == 0) continue;
    const std::string labels =
        grb::trace::prometheus_label("kind", grb::trace::name(k));
    grb::trace::write_prometheus_histogram(os, "grb_op_seconds", labels, h,
                                           first,
                                           "grb kernel latency (seconds)");
    first = false;
  }

  os << "# HELP grb_stats grb substrate counters\n";
  os << "# TYPE grb_stats counter\n";
  grb::stats().snapshot().for_each([&](const char *name, std::uint64_t v) {
    os << "grb_stats{" << grb::trace::prometheus_label("counter", name)
       << "} " << v << '\n';
  });
  return os.str();
}

std::future<QueryResult> Engine::submit(Request req) {
  Pending p;
  p.req = req;
  p.enqueued = Clock::now();
  p.id = next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto fut = p.promise.get_future();

  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.submitted;
  if (stopping_ || stopped_) {
    fail_locked(std::move(p), LAGRAPH_SERVICE_STOPPED, "engine is stopped");
    return fut;
  }
  if (snap_ == nullptr) {
    fail_locked(std::move(p), LAGRAPH_SERVICE_NO_SNAPSHOT,
                "no snapshot installed");
    return fut;
  }
  if (cfg_.max_queue != 0 && queue_.size() >= cfg_.max_queue) {
    fail_locked(std::move(p), LAGRAPH_SERVICE_QUEUE_FULL, "queue is full");
    return fut;
  }
  p.snap = snap_;
  queue_.push_back(std::move(p));
  cv_.notify_one();
  return fut;
}

void Engine::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [&] { return queue_.empty() && in_flight_ == 0; });
}

void Engine::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopped_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto &w : workers_) w.join();
  workers_.clear();
  std::lock_guard<std::mutex> lk(mu_);
  // Workers drain the queue before exiting, but be defensive.
  while (!queue_.empty()) {
    fail_locked(std::move(queue_.front()), LAGRAPH_SERVICE_STOPPED,
                "engine stopped before execution");
    queue_.pop_front();
  }
  stopped_ = true;
  cv_idle_.notify_all();
}

void Engine::fail_locked(Pending &&p, int status, const char *what) {
  QueryResult r;
  r.status = status;
  r.error = what != nullptr ? what : "";
  r.kind = p.req.kind;
  r.request_id = p.id;
  if (p.snap) r.snapshot_id = p.snap->id();
  ++counters_.failed;
  if (status == LAGRAPH_SERVICE_DEADLINE) ++counters_.deadline_expired;
  if (status == LAGRAPH_SERVICE_QUEUE_FULL) ++counters_.queue_rejected;
  const auto now = Clock::now();
  r.queue_seconds = seconds_between(p.enqueued, now);
  // A deadline-expired request still gets a roll-up (and, since by
  // definition it missed its deadline, a slow-query record) — that's the
  // request a tail-latency investigation most wants to see.
  log_request(p, r, now, /*span_count=*/0, /*trace_id=*/0,
              p.snap ? plan_summary_for(p.req, *p.snap) : std::string());
  p.promise.set_value(std::move(r));
}

void Engine::log_request(const Pending &p, const QueryResult &r,
                         Clock::time_point end, std::uint64_t span_count,
                         std::uint64_t trace_id,
                         const std::string &plan_summary) {
  RequestRecord rec;
  rec.request_id = p.id;
  rec.trace_id = trace_id;
  rec.snapshot_id = r.snapshot_id;
  rec.epoch = p.snap ? p.snap->epoch() : 0;
  rec.span_count = span_count;
  rec.source = static_cast<std::uint64_t>(p.req.source);
  rec.end_ns = grb::trace::detail::now_ns();
  rec.status = r.status;
  rec.kind = static_cast<std::uint8_t>(p.req.kind);
  rec.batched = r.batched;
  rec.batch_size = static_cast<std::uint16_t>(r.batch_size);
  rec.deadline_missed = has_deadline(p.req) && end > p.req.deadline;
  rec.queue_s = r.queue_seconds;
  rec.exec_s = r.exec_seconds;
  rec.total_s = seconds_between(p.enqueued, end);
  rec.set_plan(plan_summary);
  request_log_.record(rec);

  const bool over_threshold =
      cfg_.slow_query_ms > 0 && rec.total_s * 1e3 > cfg_.slow_query_ms;
  if (over_threshold || rec.deadline_missed) {
    // Top-k spans by self-time — only the spans this request stamped, and
    // only when tracing was actually sampling (collect() is empty
    // otherwise). The query-kind span wrapping the whole execution is
    // excluded: it would always "win" with zero information.
    std::vector<grb::trace::Span> mine;
    if (trace_id != 0) {
      for (const grb::trace::Span &s : grb::trace::collect()) {
        if (s.request_id == trace_id &&
            s.kind != grb::trace::SpanKind::query) {
          mine.push_back(s);
        }
      }
    }
    slow_log_.emit(slow_query_json(
        rec, query_kind_name(p.req.kind),
        top_spans_by_self_time(std::move(mine), kSlowLogTopSpans)));
  }
}

void Engine::scoop_bfs_locked(std::vector<Pending> &batch) {
  const GraphSnapshot *want = batch.front().snap.get();
  const auto now = Clock::now();
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < cfg_.max_batch;) {
    if (it->req.kind != QueryKind::bfs || it->snap.get() != want) {
      ++it;
      continue;
    }
    if (expired(it->req, now)) {
      fail_locked(std::move(*it), LAGRAPH_SERVICE_DEADLINE,
                  "deadline expired in queue");
    } else {
      batch.push_back(std::move(*it));
      ++in_flight_;
    }
    it = queue_.erase(it);
  }
}

void Engine::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;

    if (expired(p.req, Clock::now())) {
      fail_locked(std::move(p), LAGRAPH_SERVICE_DEADLINE,
                  "deadline expired in queue");
      --in_flight_;
      cv_idle_.notify_all();
      continue;
    }

    if (p.req.kind == QueryKind::bfs && cfg_.enable_batching) {
      std::vector<Pending> batch;
      batch.push_back(std::move(p));
      scoop_bfs_locked(batch);
      // Adaptive linger: hold the batch open for one coalescing window so
      // concurrent submitters can join — but only while the EWMA says
      // batches have actually been forming; on a solo-query workload this
      // gate closes and BFS latency is unaffected.
      if (batch.size() < cfg_.max_batch &&
          cfg_.batch_window.count() > 0 &&
          ewma_batch_ >= kLingerThreshold && !stopping_) {
        const auto until = Clock::now() + cfg_.batch_window;
        while (batch.size() < cfg_.max_batch && !stopping_) {
          if (cv_.wait_until(lk, until) == std::cv_status::timeout) {
            scoop_bfs_locked(batch);
            break;
          }
          scoop_bfs_locked(batch);
        }
      }
      const auto width = static_cast<double>(batch.size());
      ewma_batch_ = 0.75 * ewma_batch_ + 0.25 * width;
      ++counters_.bfs_sweeps;
      if (batch.size() >= 2) {
        counters_.batched_bfs += batch.size();
        grb::stats().batched_queries.fetch_add(batch.size(),
                                               std::memory_order_relaxed);
      } else {
        ++counters_.solo_queries;
        grb::stats().solo_queries.fetch_add(1, std::memory_order_relaxed);
      }
      grb::stats().batch_sweeps.fetch_add(1, std::memory_order_relaxed);
      const auto count = batch.size();
      ++busy_workers_;
      lk.unlock();
      run_bfs_sweep(std::move(batch));
      lk.lock();
      --busy_workers_;
      in_flight_ -= static_cast<int>(count);
      cv_idle_.notify_all();
    } else {
      ++counters_.solo_queries;
      grb::stats().solo_queries.fetch_add(1, std::memory_order_relaxed);
      ++busy_workers_;
      lk.unlock();
      run_solo(std::move(p));
      lk.lock();
      --busy_workers_;
      --in_flight_;
      cv_idle_.notify_all();
    }
  }
}

void Engine::run_bfs_sweep(std::vector<Pending> batch) {
  const auto start = Clock::now();
  // Every kernel span the sweep records is stamped with the batch head's
  // request id plus the member count; members' roll-ups carry that id as
  // their trace_id so /requestz resolves any of them to the shared sweep.
  grb::trace::RequestScope rscope(batch.front().id,
                                  static_cast<std::uint32_t>(batch.size()));
  grb::trace::ScopedSpan qsp(grb::trace::SpanKind::query);
  qsp.set_in_nvals(batch.size());
  // Route every grb::plan lookup in this batch through the snapshot's
  // pre-warmed cache (one batch = one snapshot; demux checked that).
  grb::plan::CacheScope plan_scope(&batch.front().snap->plan_cache());
  std::vector<grb::Index> sources;
  sources.reserve(batch.size());
  for (const auto &p : batch) sources.push_back(p.req.source);

  char msg[LAGRAPH_MSG_LEN];
  std::vector<grb::Vector<std::int64_t>> levels;
  const int st = experimental::msbfs_levels_demux(
      &levels, batch.front().snap->graph(), sources, msg);
  const auto end = Clock::now();

  const auto width = static_cast<std::uint32_t>(batch.size());
  const std::uint64_t sweep_spans = rscope.spans_recorded();
  const std::string summary =
      plan_summary_for(batch.front().req, *batch.front().snap);
  std::vector<QueryResult> results;
  results.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    QueryResult r;
    r.status = st;
    r.kind = QueryKind::bfs;
    r.request_id = batch[i].id;
    r.snapshot_id = batch[i].snap->id();
    r.batched = width > 1;
    r.batch_size = width;
    r.queue_seconds = seconds_between(batch[i].enqueued, start);
    r.exec_seconds = seconds_between(start, end);
    if (st >= 0) observe(QueryKind::bfs, r.queue_seconds, r.exec_seconds);
    if (st < 0) {
      r.error = msg;
    } else {
      r.level = std::move(levels[i]);
    }
    results.push_back(std::move(r));
  }

  {
    // Count before fulfilling the promises: a waiter that observes its
    // future ready must also observe the completion counters advanced.
    std::lock_guard<std::mutex> lk(mu_);
    if (st < 0) {
      counters_.failed += batch.size();
    } else {
      counters_.completed += batch.size();
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    // Roll up before set_value so a waiter that sees its future ready can
    // already find the record at /statusz and /requestz. Members share the
    // sweep's span count and trace id.
    log_request(batch[i], results[i], end, sweep_spans, batch.front().id,
                summary);
    batch[i].promise.set_value(std::move(results[i]));
  }
}

void Engine::run_solo(Pending p) {
  const auto start = Clock::now();
  grb::trace::RequestScope rscope(p.id, 1);
  grb::trace::ScopedSpan qsp(grb::trace::SpanKind::query);
  qsp.set_in_nvals(1);
  grb::plan::CacheScope plan_scope(&p.snap->plan_cache());
  char msg[LAGRAPH_MSG_LEN];
  msg[0] = '\0';

  QueryResult r;
  r.kind = p.req.kind;
  r.request_id = p.id;
  r.snapshot_id = p.snap->id();
  const Graph<double> &g = p.snap->graph();

  switch (p.req.kind) {
    case QueryKind::bfs: {
      // Same kernel as the batched path, sweep width 1 — one code path to
      // trust, and the word-parallel core at width 1 is an ordinary
      // direction-optimized BFS.
      std::vector<grb::Vector<std::int64_t>> levels;
      const grb::Index src[1] = {p.req.source};
      r.status = experimental::msbfs_levels_demux(&levels, g, src, msg);
      if (r.status >= 0) r.level = std::move(levels[0]);
      break;
    }
    case QueryKind::sssp:
      r.status = advanced::sssp_delta_stepping(&r.dist, g, p.req.source,
                                               p.req.delta, msg);
      break;
    case QueryKind::pagerank:
      r.status = advanced::pagerank_gap(&r.ranks, &r.iterations, g,
                                        p.req.damping, p.req.tol,
                                        p.req.itermax, msg);
      break;
    case QueryKind::tc:
      r.status = advanced::triangle_count(&r.triangles, g,
                                          TcPresort::automatic,
                                          /*fused=*/true, msg);
      break;
    case QueryKind::cypher: {
      query::Query q;
      r.status = query::parse(&q, p.req.query, msg);
      if (r.status >= 0) {
        query::QueryPlan qplan;
        r.status = query::compile(&qplan, q, g, /*optimize=*/true, msg);
        if (r.status >= 0) {
          r.plan = qplan.explain_line();
          r.status = query::execute(&r.table, q, qplan, g, msg);
        }
      }
      break;
    }
  }

  const auto end = Clock::now();
  r.queue_seconds = seconds_between(p.enqueued, start);
  r.exec_seconds = seconds_between(start, end);
  if (r.status >= 0) observe(p.req.kind, r.queue_seconds, r.exec_seconds);
  if (r.status < 0) r.error = msg;
  const bool ok = r.status >= 0;
  // Still inside the plan CacheScope: the summary probe is a cache hit.
  // Cypher requests already carry their compiled plan's one-liner.
  const std::string summary = (p.req.kind == QueryKind::cypher && !r.plan.empty())
                                  ? r.plan
                                  : plan_summary_for(p.req, *p.snap);
  {
    // Count before set_value so waiters never see a ready future ahead of
    // the completion counters.
    std::lock_guard<std::mutex> lk(mu_);
    if (ok) {
      ++counters_.completed;
    } else {
      ++counters_.failed;
    }
  }
  log_request(p, r, end, rscope.spans_recorded(), p.id, summary);
  p.promise.set_value(std::move(r));
}

}  // namespace service
}  // namespace lagraph

// service/snapshot.cpp — GraphSnapshot construction.

#include "service/snapshot.hpp"

#include <atomic>

namespace lagraph {
namespace service {

namespace {

std::atomic<std::uint64_t> next_id{1};

// Pre-warm a fresh snapshot's plan cache: sweep frontier-size buckets of
// the BFS/MS-BFS traversal shape so the first batch of queries starts
// with memoized push/pull decisions instead of each worker paying the
// cost-model walk per level. Buckets are log-spaced — exactly the
// granularity of plan::cache_key — so a handful of probes covers every
// level a real traversal can present.
void prewarm_plan_cache(const Graph<double> &g, grb::plan::PlanCache *cache) {
  grb::plan::CacheScope scope(cache);
  const grb::Index n = g.a.nrows();
  const bool has_at = g.transpose_view() != nullptr;
  for (grb::Index nq = 1; nq > 0 && nq <= n; nq *= 4) {
    grb::plan::OpDesc od;
    od.op = grb::plan::OpKind::traversal;
    od.out_size = n;
    od.a_rows = n;
    od.a_cols = g.a.ncols();
    od.a_nvals = g.a.nvals();
    od.u_nvals = nq;
    od.pull_candidates = n > nq ? n - nq : grb::Index{0};
    od.masked = true;
    od.mask_complement = true;
    od.mask_structural = true;
    od.mask_nvals = nq;
    od.has_terminal = true;
    od.has_transpose = has_at;
    (void)grb::plan::make_plan(od);
  }
}

// Drain every deferred mutation (pending tuples, sort, format) and arm the
// debug-mode tripwires: from here on, const access is genuinely read-only
// (grb threading contract, matrix.hpp).
void freeze_graph(Graph<double> &g) {
  g.a.finalize();
  if (g.at.has_value()) g.at->finalize();
  if (g.row_degree.has_value()) g.row_degree->finalize();
  if (g.col_degree.has_value()) g.col_degree->finalize();
}

}  // namespace

int make_snapshot(SnapshotPtr *out, Graph<double> &&g, char *msg) {
  return detail::guarded(msg, [&]() {
    if (out == nullptr) {
      return detail::set_msg(msg, LAGRAPH_NULL_POINTER,
                             "make_snapshot: output is null");
    }
    if (g.a.nrows() != g.a.ncols()) {
      return detail::set_msg(msg, LAGRAPH_INVALID_GRAPH,
                             "make_snapshot: adjacency matrix is not square");
    }

    // Cache every property the query kernels consult so no Advanced-mode
    // algorithm run by a worker will ever want to mutate the graph.
    int st;
    if ((st = property_at(g, msg)) < 0) return st;
    if ((st = property_row_degree(g, msg)) < 0) return st;
    if ((st = property_symmetric_pattern(g, msg)) < 0) return st;
    if ((st = property_ndiag(g, msg)) < 0) return st;

    freeze_graph(g);

    auto snap = std::shared_ptr<GraphSnapshot>(new GraphSnapshot());
    snap->g_ = std::move(g);
    snap->id_ = next_id.fetch_add(1, std::memory_order_relaxed);
    prewarm_plan_cache(snap->g_, &snap->plan_cache_);

    grb::stats().snapshot_builds.fetch_add(1, std::memory_order_relaxed);
    *out = std::move(snap);
    return LAGRAPH_OK;
  });
}

int publish_snapshot(SnapshotPtr *out, Graph<double> &&g, std::uint64_t epoch,
                     char *msg) {
  return detail::guarded(msg, [&]() {
    if (out == nullptr) {
      return detail::set_msg(msg, LAGRAPH_NULL_POINTER,
                             "publish_snapshot: output is null");
    }
    if (g.a.nrows() != g.a.ncols()) {
      return detail::set_msg(
          msg, LAGRAPH_INVALID_GRAPH,
          "publish_snapshot: adjacency matrix is not square");
    }

    // The writer maintains properties incrementally; trust whatever it
    // populated and recompute nothing. Only drain + freeze.
    freeze_graph(g);

    auto snap = std::shared_ptr<GraphSnapshot>(new GraphSnapshot());
    snap->g_ = std::move(g);
    snap->id_ = next_id.fetch_add(1, std::memory_order_relaxed);
    snap->epoch_ = epoch;
    prewarm_plan_cache(snap->g_, &snap->plan_cache_);

    grb::stats().snapshot_builds.fetch_add(1, std::memory_order_relaxed);
    grb::stats().epochs_published.fetch_add(1, std::memory_order_relaxed);
    *out = std::move(snap);
    return LAGRAPH_OK;
  });
}

}  // namespace service
}  // namespace lagraph

// service/request_log.cpp — roll-up ring, self-time ranking, slow-query JSON.

#include "service/request_log.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace lagraph {
namespace service {

namespace {

constexpr std::uint64_t kBusy = ~std::uint64_t{0};
constexpr std::size_t kPlanWords = RequestRecord::kPlanChars / 8;

std::uint64_t dbits(double d) noexcept {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double bits2d(std::uint64_t u) noexcept {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

std::uint64_t pack_meta(const RequestRecord &r) noexcept {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.status)) |
         (static_cast<std::uint64_t>(r.kind) << 32) |
         (static_cast<std::uint64_t>(r.batch_size) << 40) |
         (static_cast<std::uint64_t>(r.batched ? 1 : 0) << 56) |
         (static_cast<std::uint64_t>(r.deadline_missed ? 1 : 0) << 57);
}

void unpack_meta(std::uint64_t m, RequestRecord &r) noexcept {
  r.status = static_cast<std::int32_t>(static_cast<std::uint32_t>(m));
  r.kind = static_cast<std::uint8_t>((m >> 32) & 0xFF);
  r.batch_size = static_cast<std::uint16_t>((m >> 40) & 0xFFFF);
  r.batched = ((m >> 56) & 1) != 0;
  r.deadline_missed = ((m >> 57) & 1) != 0;
}

}  // namespace

/// Seqlock slot: payload words are themselves atomics (like the grb::trace
/// span rings), so concurrent readers are data-race-free by construction.
struct RequestLog::Slot {
  std::atomic<std::uint64_t> seq{0};  // 0 = never written, kBusy = mid-write
  std::atomic<std::uint64_t> req{0};
  std::atomic<std::uint64_t> trace{0};
  std::atomic<std::uint64_t> snap{0};
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<std::uint64_t> spans{0};
  std::atomic<std::uint64_t> source{0};
  std::atomic<std::uint64_t> end{0};
  std::atomic<std::uint64_t> meta{0};
  std::atomic<std::uint64_t> queue{0};  // double bits
  std::atomic<std::uint64_t> exec{0};   // double bits
  std::atomic<std::uint64_t> total{0};  // double bits
  std::atomic<std::uint64_t> plan[kPlanWords]{};
};

RequestLog::RequestLog(std::size_t capacity)
    : capacity_(capacity == 0 ? kDefaultCapacity : capacity),
      slots_(new Slot[capacity_]) {}

RequestLog::~RequestLog() = default;

void RequestLog::record(const RequestRecord &rec) noexcept {
  const std::uint64_t id = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot &slot = slots_[id % capacity_];

  // Claim the slot. Another writer mid-write here means two completions
  // landed `capacity_` apart inside one record write; the one carrying the
  // older id yields so the newer roll-up survives.
  std::uint64_t cur = slot.seq.load(std::memory_order_relaxed);
  for (;;) {
    if (cur == kBusy) {
      cur = slot.seq.load(std::memory_order_relaxed);
      continue;
    }
    if (cur > id + 1) return;  // lapped: a newer record already owns it
    if (slot.seq.compare_exchange_weak(cur, kBusy, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      break;
    }
  }

  slot.req.store(rec.request_id, std::memory_order_relaxed);
  slot.trace.store(rec.trace_id, std::memory_order_relaxed);
  slot.snap.store(rec.snapshot_id, std::memory_order_relaxed);
  slot.epoch.store(rec.epoch, std::memory_order_relaxed);
  slot.spans.store(rec.span_count, std::memory_order_relaxed);
  slot.source.store(rec.source, std::memory_order_relaxed);
  slot.end.store(rec.end_ns, std::memory_order_relaxed);
  slot.meta.store(pack_meta(rec), std::memory_order_relaxed);
  slot.queue.store(dbits(rec.queue_s), std::memory_order_relaxed);
  slot.exec.store(dbits(rec.exec_s), std::memory_order_relaxed);
  slot.total.store(dbits(rec.total_s), std::memory_order_relaxed);
  for (std::size_t w = 0; w < kPlanWords; ++w) {
    std::uint64_t word = 0;
    std::memcpy(&word, rec.plan + w * 8, 8);
    slot.plan[w].store(word, std::memory_order_relaxed);
  }
  slot.seq.store(id + 1, std::memory_order_release);
}

bool RequestLog::read_slot(std::uint64_t id, RequestRecord *out) const {
  const Slot &slot = slots_[id % capacity_];
  if (slot.seq.load(std::memory_order_acquire) != id + 1) return false;
  RequestRecord r;
  r.request_id = slot.req.load(std::memory_order_relaxed);
  r.trace_id = slot.trace.load(std::memory_order_relaxed);
  r.snapshot_id = slot.snap.load(std::memory_order_relaxed);
  r.epoch = slot.epoch.load(std::memory_order_relaxed);
  r.span_count = slot.spans.load(std::memory_order_relaxed);
  r.source = slot.source.load(std::memory_order_relaxed);
  r.end_ns = slot.end.load(std::memory_order_relaxed);
  unpack_meta(slot.meta.load(std::memory_order_relaxed), r);
  r.queue_s = bits2d(slot.queue.load(std::memory_order_relaxed));
  r.exec_s = bits2d(slot.exec.load(std::memory_order_relaxed));
  r.total_s = bits2d(slot.total.load(std::memory_order_relaxed));
  for (std::size_t w = 0; w < kPlanWords; ++w) {
    const std::uint64_t word = slot.plan[w].load(std::memory_order_relaxed);
    std::memcpy(r.plan + w * 8, &word, 8);
  }
  r.plan[RequestRecord::kPlanChars - 1] = '\0';
  if (slot.seq.load(std::memory_order_acquire) != id + 1) return false;
  *out = r;
  return true;
}

std::vector<RequestRecord> RequestLog::recent(std::size_t max_n) const {
  std::vector<RequestRecord> out;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t lo = head > capacity_ ? head - capacity_ : 0;
  for (std::uint64_t id = head; id > lo && out.size() < max_n; --id) {
    RequestRecord r;
    if (read_slot(id - 1, &r)) out.push_back(r);
  }
  return out;
}

bool RequestLog::find(std::uint64_t request_id, RequestRecord *out) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t lo = head > capacity_ ? head - capacity_ : 0;
  for (std::uint64_t id = head; id > lo; --id) {
    RequestRecord r;
    if (read_slot(id - 1, &r) && r.request_id == request_id) {
      *out = r;
      return true;
    }
  }
  return false;
}

std::vector<SpanSelfTime> top_spans_by_self_time(
    std::vector<grb::trace::Span> spans, std::size_t k) {
  std::vector<SpanSelfTime> rows;
  rows.reserve(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const grb::trace::Span &s = spans[i];
    // Self-time = duration minus direct children: spans on the same thread
    // one nesting level deeper whose interval lies inside this one.
    std::uint64_t children_ns = 0;
    for (std::size_t j = 0; j < spans.size(); ++j) {
      const grb::trace::Span &c = spans[j];
      if (j == i || c.tid != s.tid || c.depth != s.depth + 1) continue;
      if (c.t0_ns >= s.t0_ns && c.t0_ns + c.dur_ns <= s.t0_ns + s.dur_ns) {
        children_ns += c.dur_ns;
      }
    }
    SpanSelfTime row;
    row.span = s;
    row.self_ns = s.dur_ns > children_ns ? s.dur_ns - children_ns : 0;
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const SpanSelfTime &a, const SpanSelfTime &b) {
              return a.self_ns > b.self_ns;
            });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

std::string json_escape(const std::string &s) {
  std::string out;
  out.reserve(s.size());
  char buf[8];
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
        break;
    }
  }
  return out;
}

std::string slow_query_json(const RequestRecord &rec, const char *kind_name,
                            const std::vector<SpanSelfTime> &top) {
  char buf[512];
  std::string out = "{";
  std::snprintf(
      buf, sizeof(buf),
      "\"request_id\":%" PRIu64 ",\"trace_id\":%" PRIu64
      ",\"kind\":\"%s\",\"source\":%" PRIu64 ",\"status\":%d"
      ",\"deadline_missed\":%s,\"batched\":%s,\"batch_size\":%u"
      ",\"snapshot_id\":%" PRIu64 ",\"epoch\":%" PRIu64
      ",\"queue_ms\":%.3f,\"exec_ms\":%.3f,\"total_ms\":%.3f"
      ",\"span_count\":%" PRIu64,
      rec.request_id, rec.trace_id, kind_name, rec.source,
      static_cast<int>(rec.status), rec.deadline_missed ? "true" : "false",
      rec.batched ? "true" : "false",
      static_cast<unsigned>(rec.batch_size), rec.snapshot_id, rec.epoch,
      rec.queue_s * 1e3, rec.exec_s * 1e3, rec.total_s * 1e3, rec.span_count);
  out += buf;
  out += ",\"plan\":\"" + json_escape(rec.plan) + "\"";
  out += ",\"top_spans\":[";
  for (std::size_t i = 0; i < top.size(); ++i) {
    const grb::trace::Span &s = top[i].span;
    if (i > 0) out += ",";
    std::snprintf(buf, sizeof(buf),
                  "{\"op\":\"%s\",\"self_ms\":%.3f,\"dur_ms\":%.3f"
                  ",\"iter\":%" PRId64 ",\"in_nvals\":%" PRIu64
                  ",\"out_nvals\":%" PRIu64 ",\"dir\":\"%s\",\"depth\":%u}",
                  grb::trace::name(s.kind),
                  static_cast<double>(top[i].self_ns) / 1e6,
                  static_cast<double>(s.dur_ns) / 1e6, s.iter, s.in_nvals,
                  s.out_nvals,
                  grb::plan::name(static_cast<grb::plan::Direction>(
                      s.direction)),
                  static_cast<unsigned>(s.depth));
    out += buf;
  }
  out += "]}";
  return out;
}

void SlowQueryLog::open(const std::string &path) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!path.empty()) out_.open(path, std::ios::app);
}

void SlowQueryLog::emit(const std::string &json_line) {
  std::lock_guard<std::mutex> lk(mu_);
  if (out_.is_open()) {
    out_ << json_line << '\n';
    out_.flush();
  }
  tail_.push_back(json_line);
  while (tail_.size() > kTailCapacity) tail_.pop_front();
  emitted_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::string> SlowQueryLog::tail() const {
  std::lock_guard<std::mutex> lk(mu_);
  return std::vector<std::string>(tail_.begin(), tail_.end());
}

}  // namespace service
}  // namespace lagraph

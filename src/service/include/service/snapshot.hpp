// service/snapshot.hpp — immutable graph snapshots for concurrent serving.
//
// A GraphSnapshot owns a lagraph::Graph<double> that has been fully
// finalized: pending tuples merged, zombies buried, rows sorted, hypersparse
// storage expanded, and every property the query kernels consult (transpose,
// row degrees, symmetric pattern, diagonal count) computed up front. After
// construction nothing about the snapshot ever changes, so any number of
// worker threads may run queries against it without synchronization — the
// "finalized" half of the grb threading contract (see grb/matrix.hpp).
//
// Snapshots are handed around as shared_ptr<const GraphSnapshot>: the
// Engine's install_snapshot swaps the pointer atomically while queries
// already bound to the old snapshot keep it alive until they finish —
// snapshot isolation by reference counting, the same discipline RedisGraph
// applies to its in-flight queries during a graph swap.
#pragma once

#include <cstdint>
#include <memory>

#include "lagraph/lagraph.hpp"

namespace lagraph {
namespace service {

class GraphSnapshot;
using SnapshotPtr = std::shared_ptr<const GraphSnapshot>;

class GraphSnapshot {
 public:
  /// The wrapped graph. Everything reachable from it is finalized;
  /// treat it as deeply immutable.
  [[nodiscard]] const Graph<double> &graph() const noexcept { return g_; }

  [[nodiscard]] grb::Index nodes() const noexcept { return g_.a.nrows(); }
  [[nodiscard]] grb::Index entries() const { return g_.a.nvals(); }
  [[nodiscard]] Kind kind() const noexcept { return g_.kind; }

  /// Monotonically increasing build id (process-wide); lets clients tell
  /// which graph version answered their query.
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  /// Storage width the finalized adjacency settled on (u32 when the freeze
  /// found dimensions and nnz inside the u32 domain) and the bytes its
  /// index arrays currently occupy.
  [[nodiscard]] grb::IndexWidth index_width() const {
    return g_.a.index_width();
  }
  [[nodiscard]] std::size_t index_bytes() const { return g_.a.index_bytes(); }
  /// Estimated index bytes saved vs hypothetical u64 storage. u32 halves
  /// every slot, so the saving equals the current footprint; 0 for u64.
  [[nodiscard]] std::size_t index_bytes_saved() const {
    return index_width() == grb::IndexWidth::u32 ? index_bytes() : 0;
  }

  /// Ingest epoch this snapshot was published at. Snapshots built outside
  /// the write path (make_snapshot) are epoch 0; the ingest Writer stamps
  /// each publication with its strictly increasing epoch counter, which
  /// keys plan-cache scoping and registry reclamation. Two snapshots with
  /// different epochs never share a plan cache.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Per-snapshot grb::plan memo. make_snapshot pre-warms it with traversal
  /// plans across a sweep of frontier densities; workers install it (via
  /// grb::plan::CacheScope) for the duration of each query so repeated
  /// shape buckets across a batch hit the cache instead of re-running the
  /// cost model. PlanCache is internally synchronized, hence mutable here:
  /// inserting a memoized plan does not observably change the snapshot.
  [[nodiscard]] grb::plan::PlanCache &plan_cache() const noexcept {
    return plan_cache_;
  }

 private:
  friend int make_snapshot(SnapshotPtr *out, Graph<double> &&g, char *msg);
  friend int publish_snapshot(SnapshotPtr *out, Graph<double> &&g,
                              std::uint64_t epoch, char *msg);
  GraphSnapshot() = default;

  Graph<double> g_;
  std::uint64_t id_ = 0;
  std::uint64_t epoch_ = 0;
  mutable grb::plan::PlanCache plan_cache_;
};

/// Build a snapshot from a graph (ownership moves, LAGraph_New style): cache
/// transpose + row degrees + symmetric pattern + ndiag, drain all deferred
/// work, freeze every container. On success *out holds the new snapshot.
int make_snapshot(SnapshotPtr *out, Graph<double> &&g, char *msg);

/// Ingest fast path: wrap an ALREADY-maintained graph — properties kept
/// current incrementally by the writer (degrees, transpose, ndiag) — into a
/// snapshot stamped with `epoch`, skipping the from-scratch property
/// recomputation of make_snapshot. Deferred work is still drained and every
/// container frozen; properties the writer did not populate stay absent
/// (query paths fall back, exactly as with a property-less make_snapshot
/// graph). The fresh per-snapshot plan cache is pre-warmed the same way.
int publish_snapshot(SnapshotPtr *out, Graph<double> &&g, std::uint64_t epoch,
                     char *msg);

}  // namespace service
}  // namespace lagraph

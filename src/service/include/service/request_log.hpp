// service/request_log.hpp — per-request roll-ups and the slow-query log.
//
// Two retention structures sit behind the telemetry endpoints:
//
//   RequestLog   a fixed-capacity lock-free ring of the last N completed
//                requests' roll-ups (queue/exec/total wall time, span count,
//                plan summary, snapshot epoch). Same seqlock-over-atomic-
//                words design as the grb::trace span rings, so engine
//                workers record without a lock and /statusz reads
//                concurrently without tearing — but multi-writer: slots are
//                claimed by CAS-ing the sequence word to BUSY, and a lapped
//                writer that finds a newer record in its slot drops its own.
//
//   SlowQueryLog a mutex-guarded JSONL sink (file I/O can't be lock-free
//                and doesn't need to be — a request only reaches it by
//                blowing the latency threshold or missing its deadline)
//                that also retains a short in-memory tail for /statusz.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "grb/trace.hpp"

namespace lagraph {
namespace service {

/// One completed (or failed) request's roll-up. Plain data with a bounded
/// plan-summary buffer so it packs into a lock-free ring slot.
struct RequestRecord {
  static constexpr std::size_t kPlanChars = 96;

  std::uint64_t request_id = 0;
  /// The id kernel spans were stamped with: equal to request_id for solo
  /// queries, the batch head's id for members of a merged MS-BFS sweep.
  std::uint64_t trace_id = 0;
  std::uint64_t snapshot_id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t span_count = 0;  // kernel spans recorded while executing
  std::uint64_t source = 0;
  std::uint64_t end_ns = 0;  // steady-clock completion time
  std::int32_t status = 0;
  std::uint8_t kind = 0;  // service::QueryKind
  bool batched = false;
  bool deadline_missed = false;
  std::uint16_t batch_size = 1;
  double queue_s = 0;
  double exec_s = 0;
  double total_s = 0;
  char plan[kPlanChars] = {0};  // ExecPlan::explain_line(), truncated

  void set_plan(const std::string &s) noexcept {
    const std::size_t n = s.size() < kPlanChars - 1 ? s.size() : kPlanChars - 1;
    std::memcpy(plan, s.data(), n);
    plan[n] = '\0';
  }
};

/// Lock-free ring of the last `capacity` RequestRecords. record() is
/// wait-free except when two writers land on the same slot (capacity
/// completions apart within one record write — the loser drops out);
/// readers drop torn slots, mirroring grb::trace::collect().
class RequestLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit RequestLog(std::size_t capacity = kDefaultCapacity);
  ~RequestLog();  // out-of-line: Slot is complete only in request_log.cpp

  void record(const RequestRecord &rec) noexcept;

  /// Newest-first roll-ups, at most `max_n`.
  [[nodiscard]] std::vector<RequestRecord> recent(std::size_t max_n) const;

  /// Look up one request by its id (linear scan over the retained window).
  bool find(std::uint64_t request_id, RequestRecord *out) const;

  /// Requests ever recorded (monotonic).
  [[nodiscard]] std::uint64_t total() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Slot;
  bool read_slot(std::uint64_t id, RequestRecord *out) const;

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// One span's contribution to a slow request, ranked by self-time (span
/// duration minus the duration of its direct children on the same thread).
struct SpanSelfTime {
  grb::trace::Span span;
  std::uint64_t self_ns = 0;
};

/// Top-k spans of one request by self-time. `spans` should already be
/// filtered to the request's trace id (and is consumed sorted).
std::vector<SpanSelfTime> top_spans_by_self_time(
    std::vector<grb::trace::Span> spans, std::size_t k);

/// Render one slow-query JSONL record: the full roll-up plus `top` spans.
/// `kind_name` is the query kind's text form (request_log is layered below
/// engine.hpp, so the caller supplies it).
std::string slow_query_json(const RequestRecord &rec, const char *kind_name,
                            const std::vector<SpanSelfTime> &top);

/// JSON string escaping (also used by the /statusz builder).
std::string json_escape(const std::string &s);

/// Threshold/deadline-triggered JSONL sink with an in-memory tail.
class SlowQueryLog {
 public:
  static constexpr std::size_t kTailCapacity = 32;

  /// Route records to a JSONL file ("" = tail only). Not thread-safe
  /// against concurrent emit(); call before serving starts.
  void open(const std::string &path);

  /// Append one record (a complete JSON object, no trailing newline).
  void emit(const std::string &json_line);

  /// Most recent records, oldest first.
  [[nodiscard]] std::vector<std::string> tail() const;

  [[nodiscard]] std::uint64_t emitted() const noexcept {
    return emitted_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::ofstream out_;
  std::deque<std::string> tail_;
  std::atomic<std::uint64_t> emitted_{0};
};

}  // namespace service
}  // namespace lagraph

// service/engine.hpp — concurrent graph-query engine (the serving layer).
//
// An Engine owns a fixed-size worker pool and a request queue. Clients
// submit bfs / sssp / pagerank / tc queries with optional per-request
// deadlines and get std::futures back. Every request is bound at submit
// time to the snapshot then installed — install_snapshot() swaps graphs
// atomically under live traffic, and in-flight queries finish against the
// version they started with (snapshot isolation).
//
// The headline optimization is adaptive BFS batching: BFS requests that are
// queued together against the same snapshot are merged into one
// experimental msbfs sweep (the ns×n frontier trick the paper uses for BC,
// executed by the word-parallel MS-BFS kernel) and demuxed back into
// individual responses — k queued traversals for roughly the price of one
// sweep. A worker that pops a lone BFS may additionally linger for a short
// coalescing window (EngineConfig::batch_window) to let concurrent
// submitters catch up; the wait is adaptive — an EWMA of recent batch sizes
// decides whether lingering has been paying off, so a solo-query workload
// degrades to zero added latency.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lagraph/lagraph.hpp"
#include "query/resultset.hpp"
#include "service/request_log.hpp"
#include "service/snapshot.hpp"

// Service-layer status codes, extending the lagraph convention (< 0 error).
inline constexpr int LAGRAPH_SERVICE_DEADLINE = -31;     // expired in queue
inline constexpr int LAGRAPH_SERVICE_STOPPED = -32;      // engine shut down
inline constexpr int LAGRAPH_SERVICE_QUEUE_FULL = -33;   // bounded queue hit
inline constexpr int LAGRAPH_SERVICE_NO_SNAPSHOT = -34;  // nothing installed

namespace lagraph {
namespace service {

enum class QueryKind : std::uint8_t { bfs, sssp, pagerank, tc, cypher };

const char *query_kind_name(QueryKind k);

struct Request {
  QueryKind kind = QueryKind::bfs;
  grb::Index source = 0;  ///< bfs / sssp start vertex
  double delta = 2.0;     ///< sssp bucket width
  double damping = 0.85;  ///< pagerank
  double tol = 1e-7;      ///< pagerank convergence threshold
  int itermax = 100;      ///< pagerank iteration cap
  std::string query;      ///< cypher: pattern-query source text
  /// Optional deadline; a request still queued past it is failed with
  /// LAGRAPH_SERVICE_DEADLINE instead of executed. Default (epoch) = none.
  std::chrono::steady_clock::time_point deadline{};
};

struct QueryResult {
  int status = LAGRAPH_OK;  ///< lagraph status (plus the service codes above)
  std::string error;        ///< message buffer contents when status < 0
  QueryKind kind = QueryKind::bfs;
  /// Monotonic id assigned at submit; every kernel span recorded while this
  /// request executed is stamped with it (batch members share the batch
  /// head's id — see RequestRecord::trace_id), and /requestz?id= replays
  /// the span breakdown.
  std::uint64_t request_id = 0;
  std::uint64_t snapshot_id = 0;  ///< which graph version answered
  bool batched = false;           ///< answered by a merged msbfs sweep
  std::uint32_t batch_size = 1;   ///< sweep width (1 = solo)
  double queue_seconds = 0;       ///< submit → execution start
  double exec_seconds = 0;        ///< execution only

  // One of these is populated according to `kind`.
  grb::Vector<std::int64_t> level;  ///< bfs
  grb::Vector<double> dist;         ///< sssp
  grb::Vector<double> ranks;        ///< pagerank
  std::uint64_t triangles = 0;      ///< tc
  int iterations = 0;               ///< pagerank iterations taken
  query::ResultSet table;           ///< cypher: columnar resultset
  std::string plan;                 ///< cypher: compiled-plan one-liner
};

struct EngineConfig {
  int threads = 2;  ///< worker pool size (clamped to >= 1)
  /// How long a worker holding a lone BFS lingers for companions. 0
  /// disables lingering (only already-queued requests are merged).
  std::chrono::microseconds batch_window{200};
  std::uint32_t max_batch = 64;  ///< max sources per msbfs sweep
  bool enable_batching = true;   ///< false = strictly one query at a time
  std::size_t max_queue = 0;     ///< queued-request cap; 0 = unbounded
  /// Feed every Nth traced kernel span back into the planner's calibration
  /// coefficients (grb::plan::observe_span_ns) so long-running services
  /// converge the cost model onto the machine they are serving from. 0
  /// disables online updates. Enabling this turns on span sampling
  /// (grb::Config::trace_sample_every) if the process has it off.
  std::uint32_t calibration_update_every = 0;
  /// Slow-query threshold in milliseconds: a request whose total wall time
  /// (submit → completion) exceeds it — or that misses its deadline — emits
  /// one structured JSONL record to the slow-query log. 0 disables the
  /// threshold (deadline misses are always logged).
  double slow_query_ms = 0;
  /// JSONL sink for slow-query records ("" = in-memory tail only, served
  /// at /statusz).
  std::string slow_query_log;
  /// Embedded HTTP telemetry server: -1 disables it, 0 binds an ephemeral
  /// port (read back via Engine::telemetry()->port()), otherwise the port
  /// to listen on (127.0.0.1 only).
  int telemetry_port = -1;
  /// Completed-request roll-ups retained for /statusz and /requestz.
  std::size_t request_log_capacity = RequestLog::kDefaultCapacity;
};

/// One query kind's execution-latency distribution (from the engine's log₂
/// histograms; see grb::trace::Histogram). Milliseconds for readability.
struct KindLatency {
  QueryKind kind = QueryKind::bfs;
  std::uint64_t count = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double mean_ms = 0;
  // Queue-wait distribution (submit → execution start) for the same kind —
  // saturation shows up here, slow kernels in the exec percentiles above.
  double queue_p50_ms = 0;
  double queue_p95_ms = 0;
  double queue_p99_ms = 0;
  double queue_mean_ms = 0;
};

/// Monotonic totals since construction (snapshot under the engine lock).
struct EngineCounters {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;         // includes warnings
  std::uint64_t failed = 0;            // status < 0 (any reason)
  std::uint64_t deadline_expired = 0;  // subset of failed
  std::uint64_t queue_rejected = 0;    // subset of failed
  std::uint64_t bfs_sweeps = 0;        // msbfs calls issued
  std::uint64_t batched_bfs = 0;       // bfs answered in a sweep of >= 2
  std::uint64_t solo_queries = 0;      // everything else
  std::uint64_t snapshot_installs = 0;
  std::uint64_t slow_queries = 0;  // slow-query log records emitted
};

class TelemetryServer;

class Engine {
 public:
  explicit Engine(EngineConfig cfg = {});
  Engine(SnapshotPtr snapshot, EngineConfig cfg = {});
  ~Engine();  // stop()s

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Swap the serving graph. Queries already submitted (queued or running)
  /// keep the snapshot they were bound to.
  void install_snapshot(SnapshotPtr snapshot);

  /// The snapshot new submissions will be bound to (may be null).
  [[nodiscard]] SnapshotPtr snapshot() const;

  /// Enqueue a query. The future always becomes ready — check
  /// QueryResult::status, never expect a broken promise.
  std::future<QueryResult> submit(Request req);

  /// Block until every submitted request has completed.
  void drain();

  /// Drain, then join the workers. Subsequent submits fail with
  /// LAGRAPH_SERVICE_STOPPED. Idempotent.
  void stop();

  [[nodiscard]] const EngineConfig &config() const noexcept { return cfg_; }
  [[nodiscard]] EngineCounters counters() const;

  /// p50/p95/p99/mean execution latency per query kind, in submission
  /// order of QueryKind; kinds with no completed queries are omitted.
  [[nodiscard]] std::vector<KindLatency> latency_summary() const;

  /// Prometheus text exposition: the engine counters, per-query-kind
  /// execution/queue latency histograms (`lagraph_service_exec_seconds`,
  /// `lagraph_service_queue_seconds`), the global per-op-kind kernel
  /// histograms (`grb_op_seconds`), and every grb::Stats counter
  /// (`grb_stats`). Readable live with bounded skew.
  [[nodiscard]] std::string prometheus_text() const;

  /// Roll-ups of the last N completed requests (lock-free reads).
  [[nodiscard]] const RequestLog &request_log() const noexcept {
    return request_log_;
  }

  /// Slow-query records retained in memory (newest last).
  [[nodiscard]] std::vector<std::string> slow_query_tail() const {
    return slow_log_.tail();
  }

  // Live gauges for /metrics and /statusz.
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] int inflight() const;        ///< popped but not completed
  [[nodiscard]] int active_workers() const;  ///< workers executing right now
  [[nodiscard]] double uptime_seconds() const;

  /// The embedded telemetry server, or nullptr when telemetry_port < 0.
  [[nodiscard]] TelemetryServer *telemetry() const noexcept {
    return telemetry_.get();
  }

 private:
  struct Pending {
    Request req;
    std::promise<QueryResult> promise;
    SnapshotPtr snap;
    std::chrono::steady_clock::time_point enqueued;
    std::uint64_t id = 0;  ///< request id, assigned at submit
  };

  void worker_loop();
  // Move every queued BFS bound to the same snapshot into `batch` (expired
  // ones are failed in place). Caller holds mu_.
  void scoop_bfs_locked(std::vector<Pending> &batch);
  void run_bfs_sweep(std::vector<Pending> batch);
  void run_solo(Pending p);
  void fail_locked(Pending &&p, int status, const char *what);
  // Feed the per-kind latency histograms; lock-free (relaxed counters).
  void observe(QueryKind k, double queue_s, double exec_s) noexcept;
  // Roll up one finished request into the request log, and route it to the
  // slow-query log when it blew the threshold or missed its deadline.
  void log_request(const Pending &p, const QueryResult &r,
                   std::chrono::steady_clock::time_point end,
                   std::uint64_t span_count, std::uint64_t trace_id,
                   const std::string &plan_summary);

  static constexpr int kNumQueryKinds = 5;
  // Indexed by QueryKind; recordable from any worker without the lock.
  grb::trace::Histogram exec_hist_[kNumQueryKinds];
  grb::trace::Histogram queue_hist_[kNumQueryKinds];

  EngineConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;       // queue activity / shutdown
  std::condition_variable cv_idle_;  // completion events (drain)
  std::deque<Pending> queue_;
  SnapshotPtr snap_;
  EngineCounters counters_;
  double ewma_batch_;  // recent sweep width; decides whether lingering pays
  int in_flight_ = 0;
  int busy_workers_ = 0;  // workers currently off the queue, executing
  bool stopping_ = false;
  bool stopped_ = false;
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> next_request_id_{0};
  RequestLog request_log_;
  SlowQueryLog slow_log_;
  std::chrono::steady_clock::time_point started_;
  std::unique_ptr<TelemetryServer> telemetry_;
};

}  // namespace service
}  // namespace lagraph

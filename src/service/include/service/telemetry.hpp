// service/telemetry.hpp — the embedded HTTP telemetry endpoint.
//
// A deliberately minimal HTTP/1.0 server: one dedicated thread blocks in
// poll() on the listening socket (plus a self-pipe for shutdown), accepts
// one connection at a time, answers, closes. No dependencies beyond POSIX
// sockets; no keep-alive, no TLS, no request bodies — it serves four
// read-only debug endpoints and nothing else:
//
//   /metrics       Prometheus text: Engine::prometheus_text() plus any
//                  extra gauges registered by the embedder (the CLI wires
//                  ingest writer backlog / publish latency here).
//   /healthz       "ok" — liveness.
//   /statusz       JSON: counters, gauges, per-kind latency summary,
//                  recent request roll-ups, slow-query tail.
//   /requestz?id=  one request's kernel-span breakdown as Chrome
//                  trace-event JSON (requires span tracing to be sampling).
//
// Binds 127.0.0.1 only — this is a debug endpoint, not a public API.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace lagraph {
namespace service {

class Engine;

class TelemetryServer {
 public:
  /// Bind 127.0.0.1:`port` (0 = ephemeral) and start the serving thread.
  /// On bind failure the server is inert: port() returns -1 and no thread
  /// runs — the engine serves queries regardless.
  TelemetryServer(Engine &engine, int port);
  ~TelemetryServer();  // stop()s

  TelemetryServer(const TelemetryServer &) = delete;
  TelemetryServer &operator=(const TelemetryServer &) = delete;

  /// The bound port, or -1 when binding failed.
  [[nodiscard]] int port() const noexcept { return port_; }

  /// Extra Prometheus text appended to /metrics (gauges the engine can't
  /// see: ingest writer backlog, epoch publish latency, ...). The callback
  /// runs on the serving thread; keep it cheap and thread-safe.
  void set_extra_metrics(std::function<std::string()> fn);

  /// Join the serving thread and close the socket. Idempotent.
  void stop();

  /// One /statusz-style GET against a local telemetry server; returns the
  /// response body or "" on connection failure. Shared by the CLI `top`
  /// subcommand and the socket tests, so the client and server agree on
  /// one HTTP dialect.
  static std::string http_get(const std::string &host, int port,
                              const std::string &target);

 private:
  void serve_loop();
  void handle_connection(int fd);
  /// Route one request-target to (status line, content type, body).
  std::string respond(const std::string &target);

  Engine &engine_;
  int listen_fd_ = -1;
  int port_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};
  std::mutex extra_mu_;
  std::function<std::string()> extra_;
  std::thread thread_;
};

}  // namespace service
}  // namespace lagraph

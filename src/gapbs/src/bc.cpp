// Batched Brandes betweenness centrality — the bc.cc baseline.
//
// For each source: a BFS records path counts and the vertices of each depth
// level; the backward sweep accumulates dependencies. Scores are left
// unnormalized (the sum of dependencies), matching the quantity the LAGraph
// Alg. 3 computes as Σᵢ(B(i,:)) − ns.
#include <vector>

#include "gapbs/graph.hpp"

namespace gapbs {

std::vector<double> bc(const Graph &g, std::span<const NodeId> sources) {
  const NodeId n = g.num_nodes();
  std::vector<double> scores(n, 0.0);
  std::vector<double> num_paths(n);
  std::vector<double> deltas(n);
  std::vector<std::int64_t> depth(n);
  std::vector<NodeId> order;
  order.reserve(n);

  for (NodeId s : sources) {
    std::fill(num_paths.begin(), num_paths.end(), 0.0);
    std::fill(depth.begin(), depth.end(), -1);
    order.clear();

    // forward BFS counting shortest paths
    num_paths[s] = 1.0;
    depth[s] = 0;
    std::vector<NodeId> frontier = {s};
    std::int64_t d = 0;
    while (!frontier.empty()) {
      order.insert(order.end(), frontier.begin(), frontier.end());
      std::vector<NodeId> next;
      for (NodeId u : frontier) {
        for (NodeId v : g.out_neigh(u)) {
          if (depth[v] < 0) {
            depth[v] = d + 1;
            next.push_back(v);
          }
          if (depth[v] == d + 1) num_paths[v] += num_paths[u];
        }
      }
      frontier.swap(next);
      ++d;
    }

    // backward dependency accumulation
    std::fill(deltas.begin(), deltas.end(), 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      NodeId u = *it;
      for (NodeId v : g.out_neigh(u)) {
        if (depth[v] == depth[u] + 1) {
          deltas[u] += (num_paths[u] / num_paths[v]) * (1.0 + deltas[v]);
        }
      }
      if (u != s) scores[u] += deltas[u];
    }
  }
  return scores;
}

}  // namespace gapbs

// Direction-optimizing BFS (Beamer et al., SC'12) — the bfs.cc baseline.
//
// Top-down (push) processes the frontier as a sparse queue; bottom-up (pull)
// scans unvisited vertices' in-edges against a bitmap frontier and stops at
// the first visited parent — the benign-race "any parent" selection that
// inspired the GraphBLAS `any` monoid (paper §IV-A).
#include <vector>

#include "gapbs/graph.hpp"

namespace gapbs {

namespace {

std::int64_t top_down_step(const Graph &g, const std::vector<NodeId> &frontier,
                           std::vector<NodeId> &next,
                           std::vector<NodeId> &parent) {
  std::int64_t scout = 0;
  for (NodeId u : frontier) {
    for (NodeId v : g.out_neigh(u)) {
      if (parent[v] < 0) {
        parent[v] = u;
        next.push_back(v);
        scout += g.out_degree(v);
      }
    }
  }
  return scout;
}

std::int64_t bottom_up_step(const Graph &g, const std::vector<bool> &front,
                            std::vector<bool> &next,
                            std::vector<NodeId> &parent) {
  std::int64_t awake = 0;
  const NodeId n = g.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    if (parent[v] >= 0) continue;
    for (NodeId u : g.in_neigh(v)) {
      if (front[u]) {
        parent[v] = u;  // any parent in the frontier is valid
        next[v] = true;
        ++awake;
        break;
      }
    }
  }
  return awake;
}

}  // namespace

std::vector<NodeId> bfs(const Graph &g, NodeId source, int alpha, int beta) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> parent(n, -1);
  parent[source] = source;
  std::vector<NodeId> frontier = {source};
  std::int64_t edges_to_check = g.num_arcs();
  std::int64_t scout_count = g.out_degree(source);

  while (!frontier.empty()) {
    if (scout_count > edges_to_check / alpha) {
      // switch to bottom-up until the frontier shrinks again
      std::vector<bool> front(n, false);
      for (NodeId u : frontier) front[u] = true;
      std::int64_t awake = static_cast<std::int64_t>(frontier.size());
      std::int64_t old_awake;
      do {
        old_awake = awake;
        std::vector<bool> next(n, false);
        awake = bottom_up_step(g, front, next, parent);
        front.swap(next);
      } while (awake >= old_awake || awake > n / beta);
      frontier.clear();
      for (NodeId v = 0; v < n; ++v) {
        if (front[v]) frontier.push_back(v);
      }
      scout_count = 1;
    } else {
      edges_to_check -= scout_count;
      std::vector<NodeId> next;
      scout_count = top_down_step(g, frontier, next, parent);
      frontier.swap(next);
    }
  }
  return parent;
}

std::vector<NodeId> bfs_push(const Graph &g, NodeId source) {
  std::vector<NodeId> parent(g.num_nodes(), -1);
  parent[source] = source;
  std::vector<NodeId> frontier = {source};
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    top_down_step(g, frontier, next, parent);
    frontier.swap(next);
  }
  return parent;
}

}  // namespace gapbs

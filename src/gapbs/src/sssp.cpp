// Delta-stepping SSSP with a bucket queue — the sssp.cc baseline.
#include <limits>
#include <vector>

#include "gapbs/graph.hpp"

namespace gapbs {

std::vector<double> sssp(const Graph &g, NodeId source, double delta) {
  const NodeId n = g.num_nodes();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  dist[source] = 0.0;

  std::vector<std::vector<NodeId>> buckets(1);
  buckets[0].push_back(source);
  auto bucket_of = [&](double d) {
    return static_cast<std::size_t>(d / delta);
  };
  auto push = [&](NodeId v, double d) {
    std::size_t b = bucket_of(d);
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(v);
  };

  for (std::size_t bi = 0; bi < buckets.size(); ++bi) {
    // settle the bucket: light-edge relaxations may re-insert into bucket bi
    std::vector<NodeId> settled;
    while (!buckets[bi].empty()) {
      std::vector<NodeId> current;
      current.swap(buckets[bi]);
      for (NodeId u : current) {
        if (dist[u] >= static_cast<double>(bi + 1) * delta ||
            dist[u] < static_cast<double>(bi) * delta) {
          continue;  // stale entry
        }
        settled.push_back(u);
        auto neigh = g.out_neigh(u);
        auto wts = g.out_weights(u);
        for (std::size_t e = 0; e < neigh.size(); ++e) {
          if (wts[e] > delta) continue;  // heavy edges after the bucket
          double nd = dist[u] + wts[e];
          if (nd < dist[neigh[e]]) {
            dist[neigh[e]] = nd;
            push(neigh[e], nd);
          }
        }
      }
    }
    // heavy edges of everything settled in this bucket
    for (NodeId u : settled) {
      auto neigh = g.out_neigh(u);
      auto wts = g.out_weights(u);
      for (std::size_t e = 0; e < neigh.size(); ++e) {
        if (wts[e] <= delta) continue;
        double nd = dist[u] + wts[e];
        if (nd < dist[neigh[e]]) {
          dist[neigh[e]] = nd;
          push(neigh[e], nd);
        }
      }
    }
  }
  return dist;
}

}  // namespace gapbs

#include "gapbs/graph.hpp"

#include <numeric>

namespace gapbs {

namespace {

void build_csr(NodeId n, const std::vector<gen::Index> &src,
               const std::vector<gen::Index> &dst,
               const std::vector<double> &wt, std::vector<std::int64_t> &row,
               std::vector<NodeId> &col, std::vector<double> &out_wt) {
  row.assign(static_cast<std::size_t>(n) + 1, 0);
  for (gen::Index s : src) ++row[s + 1];
  std::partial_sum(row.begin(), row.end(), row.begin());
  col.resize(src.size());
  const bool weighted = !wt.empty();
  if (weighted) out_wt.resize(src.size());
  std::vector<std::int64_t> next(row.begin(), row.end() - 1);
  for (std::size_t e = 0; e < src.size(); ++e) {
    auto p = next[src[e]]++;
    col[p] = static_cast<NodeId>(dst[e]);
    if (weighted) out_wt[p] = wt[e];
  }
  // Deduplicate parallel edges (keeping the first weight) so the CSR agrees
  // with the adjacency-matrix view, where duplicates collapse to one entry.
  std::vector<std::pair<NodeId, double>> scratch;
  std::vector<std::int64_t> new_row(row.size(), 0);
  std::size_t out = 0;
  for (NodeId u = 0; u < n; ++u) {
    scratch.clear();
    for (auto p = row[u]; p < row[u + 1]; ++p) {
      scratch.emplace_back(col[p], weighted ? out_wt[p] : 0.0);
    }
    std::stable_sort(scratch.begin(), scratch.end(),
                     [](const auto &a, const auto &b) {
                       return a.first < b.first;
                     });
    for (std::size_t q = 0; q < scratch.size(); ++q) {
      if (q > 0 && scratch[q].first == scratch[q - 1].first) continue;
      col[out] = scratch[q].first;
      if (weighted) out_wt[out] = scratch[q].second;
      ++out;
    }
    new_row[u + 1] = static_cast<std::int64_t>(out);
  }
  col.resize(out);
  if (weighted) out_wt.resize(out);
  row = std::move(new_row);
}

}  // namespace

Graph Graph::build(const gen::EdgeList &el, bool directed) {
  Graph g;
  g.n_ = static_cast<NodeId>(el.n);
  g.directed_ = directed;
  build_csr(g.n_, el.src, el.dst, el.weight, g.out_row_, g.out_col_,
            g.out_wt_);
  if (directed) {
    build_csr(g.n_, el.dst, el.src, el.weight, g.in_row_, g.in_col_,
              g.in_wt_);
  }
  return g;
}

}  // namespace gapbs

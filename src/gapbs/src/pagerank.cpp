// GAP-style PageRank (pr.cc): pull iteration over in-edges.
//
// contrib(u) = score(u) / out_degree(u); score(v) = base + damping · Σ
// contrib over in-neighbours; stop when the L1 norm of the change < tol.
// Dangling vertices are deliberately NOT redistributed — the paper (§IV-C)
// notes that the GAP benchmark PR "does not properly handle dangling
// vertices"; the Graphalytics-style fix lives on the LAGraph side.
#include <cmath>
#include <vector>

#include "gapbs/graph.hpp"

namespace gapbs {

std::vector<double> pagerank(const Graph &g, double damping, double tol,
                             int max_iters) {
  const NodeId n = g.num_nodes();
  const double base = (1.0 - damping) / static_cast<double>(n);
  std::vector<double> scores(n, 1.0 / static_cast<double>(n));
  std::vector<double> contrib(n, 0.0);
  for (int it = 0; it < max_iters; ++it) {
    double error = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      auto deg = g.out_degree(u);
      contrib[u] = deg > 0 ? scores[u] / static_cast<double>(deg) : 0.0;
    }
    for (NodeId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (NodeId u : g.in_neigh(v)) sum += contrib[u];
      double next = base + damping * sum;
      error += std::fabs(next - scores[v]);
      scores[v] = next;
    }
    if (error < tol) break;
  }
  return scores;
}

}  // namespace gapbs

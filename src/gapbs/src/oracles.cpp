// Slow, obviously-correct reference implementations used only by the test
// suite to validate both the gapbs kernels and the LAGraph algorithms.
#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <set>
#include <vector>

#include "gapbs/graph.hpp"

namespace gapbs {

std::vector<std::int64_t> bfs_levels_reference(const Graph &g, NodeId source) {
  std::vector<std::int64_t> level(g.num_nodes(), -1);
  level[source] = 0;
  std::queue<NodeId> q;
  q.push(source);
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (NodeId v : g.out_neigh(u)) {
      if (level[v] < 0) {
        level[v] = level[u] + 1;
        q.push(v);
      }
    }
  }
  return level;
}

std::vector<double> dijkstra(const Graph &g, NodeId source) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.num_nodes(), kInf);
  dist[source] = 0.0;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    auto neigh = g.out_neigh(u);
    auto wts = g.out_weights(u);
    for (std::size_t e = 0; e < neigh.size(); ++e) {
      double nd = d + wts[e];
      if (nd < dist[neigh[e]]) {
        dist[neigh[e]] = nd;
        pq.emplace(nd, neigh[e]);
      }
    }
  }
  return dist;
}

std::uint64_t tc_reference(const Graph &g) {
  // Count each triangle once via i < j < k enumeration with set probes.
  const NodeId n = g.num_nodes();
  std::vector<std::set<NodeId>> adj(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.out_neigh(u)) {
      if (v != u) adj[u].insert(v);
    }
  }
  std::uint64_t total = 0;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j : adj[i]) {
      if (j <= i) continue;
      for (NodeId k : adj[j]) {
        if (k <= j) continue;
        if (adj[i].count(k)) ++total;
      }
    }
  }
  return total;
}

std::vector<NodeId> cc_reference(const Graph &g) {
  // BFS flood fill over the undirected closure.
  const NodeId n = g.num_nodes();
  std::vector<std::vector<NodeId>> undirected(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.out_neigh(u)) {
      undirected[u].push_back(v);
      undirected[v].push_back(u);
    }
  }
  std::vector<NodeId> comp(n, -1);
  for (NodeId s = 0; s < n; ++s) {
    if (comp[s] >= 0) continue;
    comp[s] = s;
    std::queue<NodeId> q;
    q.push(s);
    while (!q.empty()) {
      NodeId u = q.front();
      q.pop();
      for (NodeId v : undirected[u]) {
        if (comp[v] < 0) {
          comp[v] = s;
          q.push(v);
        }
      }
    }
  }
  return comp;
}

std::vector<double> bc_reference(const Graph &g,
                                 std::span<const NodeId> sources) {
  // Textbook Brandes with an explicit predecessor list.
  const NodeId n = g.num_nodes();
  std::vector<double> scores(n, 0.0);
  for (NodeId s : sources) {
    std::vector<std::vector<NodeId>> preds(n);
    std::vector<double> sigma(n, 0.0);
    std::vector<std::int64_t> depth(n, -1);
    std::vector<NodeId> order;
    sigma[s] = 1.0;
    depth[s] = 0;
    std::queue<NodeId> q;
    q.push(s);
    while (!q.empty()) {
      NodeId u = q.front();
      q.pop();
      order.push_back(u);
      for (NodeId v : g.out_neigh(u)) {
        if (depth[v] < 0) {
          depth[v] = depth[u] + 1;
          q.push(v);
        }
        if (depth[v] == depth[u] + 1) {
          sigma[v] += sigma[u];
          preds[v].push_back(u);
        }
      }
    }
    std::vector<double> delta(n, 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      NodeId w = *it;
      for (NodeId u : preds[w]) {
        delta[u] += (sigma[u] / sigma[w]) * (1.0 + delta[w]);
      }
      if (w != s) scores[w] += delta[w];
    }
  }
  return scores;
}

}  // namespace gapbs

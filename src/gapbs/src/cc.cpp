// Connected components — Shiloach-Vishkin style hooking + pointer jumping,
// the algorithm family of GAP's cc.cc (Afforest without the sampling
// shortcut, which only matters at billion-edge scale).
#include <numeric>
#include <vector>

#include "gapbs/graph.hpp"

namespace gapbs {

std::vector<NodeId> cc(const Graph &g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> comp(n);
  std::iota(comp.begin(), comp.end(), NodeId{0});
  bool change = true;
  while (change) {
    change = false;
    // hooking: comp[max] -> comp[min] along every arc (both directions are
    // present for undirected graphs; for directed graphs we treat arcs as
    // undirected, which is what weak connectivity means)
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v : g.out_neigh(u)) {
        NodeId cu = comp[u];
        NodeId cv = comp[v];
        if (cu == cv) continue;
        NodeId hi = std::max(cu, cv);
        NodeId lo = std::min(cu, cv);
        if (comp[hi] == hi) {
          comp[hi] = lo;
          change = true;
        }
      }
    }
    // pointer jumping (shortcutting)
    for (NodeId u = 0; u < n; ++u) {
      while (comp[u] != comp[comp[u]]) comp[u] = comp[comp[u]];
    }
  }
  return comp;
}

}  // namespace gapbs

// Triangle counting — the tc.cc baseline: relabel by ascending degree when
// the degree distribution is skewed, then count ordered wedges u > v > w by
// sorted-adjacency intersection.
#include <algorithm>
#include <numeric>
#include <vector>

#include "gapbs/graph.hpp"

namespace gapbs {

namespace {

bool worth_relabelling(const Graph &g) {
  // GAP heuristic: relabel when the average degree is much larger than the
  // median degree (sampled). We compute the exact median; n is small here.
  const NodeId n = g.num_nodes();
  if (n == 0) return false;
  std::vector<std::int64_t> deg(n);
  for (NodeId u = 0; u < n; ++u) deg[u] = g.out_degree(u);
  auto mid = deg.begin() + n / 2;
  std::nth_element(deg.begin(), mid, deg.end());
  double mean = static_cast<double>(g.num_arcs()) / static_cast<double>(n);
  return mean > 4.0 * static_cast<double>(*mid);
}

}  // namespace

std::uint64_t tc(const Graph &g) {
  const NodeId n = g.num_nodes();
  // rank[] orders vertices; by degree when skewed, by id otherwise.
  std::vector<NodeId> rank(n);
  std::iota(rank.begin(), rank.end(), NodeId{0});
  if (worth_relabelling(g)) {
    std::vector<NodeId> byd(n);
    std::iota(byd.begin(), byd.end(), NodeId{0});
    std::stable_sort(byd.begin(), byd.end(), [&](NodeId a, NodeId b) {
      return g.out_degree(a) < g.out_degree(b);
    });
    for (NodeId r = 0; r < n; ++r) rank[byd[r]] = r;
  }

  // Oriented adjacency: keep only edges to higher-ranked endpoints, sorted.
  std::vector<std::vector<NodeId>> up(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.out_neigh(u)) {
      if (rank[v] > rank[u]) up[u].push_back(v);
    }
    std::sort(up[u].begin(), up[u].end(),
              [&](NodeId a, NodeId b) { return rank[a] < rank[b]; });
  }

  std::uint64_t total = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : up[u]) {
      // count common higher-ranked neighbours of u and v
      auto &a = up[u];
      auto &b = up[v];
      std::size_t p = 0;
      std::size_t q = 0;
      while (p < a.size() && q < b.size()) {
        if (rank[a[p]] < rank[b[q]]) {
          ++p;
        } else if (rank[b[q]] < rank[a[p]]) {
          ++q;
        } else {
          ++total;
          ++p;
          ++q;
        }
      }
    }
  }
  return total;
}

}  // namespace gapbs

// gapbs/graph.hpp — flat CSR graph for the direct GAP-style kernels.
//
// Holds both out-adjacency and in-adjacency (shared when the graph is
// undirected, exactly as the GAP benchmark builder does), with optional
// per-edge weights kept alongside the column arrays.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gen/generators.hpp"

namespace gapbs {

using NodeId = std::int64_t;

class Graph {
 public:
  /// Build from an edge list. For undirected inputs the edge list is
  /// expected to already contain both directions (gen::symmetrize).
  static Graph build(const gen::EdgeList &el, bool directed);

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }
  /// Number of stored directed arcs (twice the undirected edge count).
  [[nodiscard]] std::int64_t num_arcs() const noexcept {
    return static_cast<std::int64_t>(out_col_.size());
  }
  [[nodiscard]] bool directed() const noexcept { return directed_; }
  [[nodiscard]] bool weighted() const noexcept { return !out_wt_.empty(); }

  [[nodiscard]] std::int64_t out_degree(NodeId u) const {
    return out_row_[u + 1] - out_row_[u];
  }
  [[nodiscard]] std::int64_t in_degree(NodeId u) const {
    return in_row()[u + 1] - in_row()[u];
  }

  [[nodiscard]] std::span<const NodeId> out_neigh(NodeId u) const {
    return {out_col_.data() + out_row_[u],
            static_cast<std::size_t>(out_degree(u))};
  }
  [[nodiscard]] std::span<const double> out_weights(NodeId u) const {
    return {out_wt_.data() + out_row_[u],
            static_cast<std::size_t>(out_degree(u))};
  }
  [[nodiscard]] std::span<const NodeId> in_neigh(NodeId u) const {
    const auto &col = directed_ ? in_col_ : out_col_;
    return {col.data() + in_row()[u],
            static_cast<std::size_t>(in_degree(u))};
  }
  [[nodiscard]] std::span<const double> in_weights(NodeId u) const {
    const auto &wt = directed_ ? in_wt_ : out_wt_;
    return {wt.data() + in_row()[u],
            static_cast<std::size_t>(in_degree(u))};
  }

 private:
  [[nodiscard]] const std::vector<std::int64_t> &in_row() const {
    return directed_ ? in_row_ : out_row_;
  }

  NodeId n_ = 0;
  bool directed_ = false;
  std::vector<std::int64_t> out_row_;
  std::vector<NodeId> out_col_;
  std::vector<double> out_wt_;
  std::vector<std::int64_t> in_row_;
  std::vector<NodeId> in_col_;
  std::vector<double> in_wt_;
};

// -- the six GAP kernels --------------------------------------------------------

/// Direction-optimizing BFS (Beamer): top-down with a sparse queue, bottom-up
/// with a bitmap frontier. Returns the parent of each node (-1 unreached;
/// the source is its own parent). alpha/beta are the GAP switching defaults.
std::vector<NodeId> bfs(const Graph &g, NodeId source, int alpha = 15,
                        int beta = 18);

/// Push-only (top-down) BFS, the unoptimized baseline.
std::vector<NodeId> bfs_push(const Graph &g, NodeId source);

/// Batched Brandes betweenness centrality from the given sources
/// (unnormalized dependency scores, as accumulated by GAP's bc.cc).
std::vector<double> bc(const Graph &g, std::span<const NodeId> sources);

/// GAP-style PageRank: pull iteration, damping 0.85, stops when the L1 norm
/// of the change drops below tol. Dangling nodes are NOT handled — their
/// rank mass leaks, faithfully reproducing pr.cc (paper §IV-C).
std::vector<double> pagerank(const Graph &g, double damping = 0.85,
                             double tol = 1e-4, int max_iters = 1000);

/// Delta-stepping SSSP with a bucket queue; returns distances (inf if
/// unreached).
std::vector<double> sssp(const Graph &g, NodeId source, double delta);

/// Triangle count for undirected graphs: degree-ordered, sorted-intersection
/// merge (the tc.cc algorithm).
std::uint64_t tc(const Graph &g);

/// Connected components, Shiloach-Vishkin style hooking + shortcutting (the
/// algorithm family of GAP's cc.cc / Afforest). Returns component labels.
std::vector<NodeId> cc(const Graph &g);

// -- slow but obviously-correct oracles (for tests) -------------------------------

std::vector<std::int64_t> bfs_levels_reference(const Graph &g, NodeId source);
std::vector<double> dijkstra(const Graph &g, NodeId source);
std::uint64_t tc_reference(const Graph &g);
std::vector<NodeId> cc_reference(const Graph &g);
std::vector<double> bc_reference(const Graph &g,
                                 std::span<const NodeId> sources);

}  // namespace gapbs

// ingest/registry.cpp — snapshot history + grace-period reclamation.

#include "ingest/registry.hpp"

#include "grb/grb.hpp"

namespace lagraph {
namespace ingest {

std::size_t SnapshotRegistry::publish(service::SnapshotPtr snap) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    history_.push_back(std::move(snap));
  }
  return reclaim();
}

service::SnapshotPtr SnapshotRegistry::current() const {
  std::lock_guard<std::mutex> lk(mu_);
  return history_.empty() ? nullptr : history_.back();
}

std::size_t SnapshotRegistry::reclaim() {
  std::lock_guard<std::mutex> lk(mu_);
  if (history_.size() <= grace_depth_) return 0;
  const std::size_t keep_from = history_.size() - grace_depth_;
  std::vector<service::SnapshotPtr> kept;
  kept.reserve(history_.size());
  std::size_t dropped = 0;
  for (std::size_t k = 0; k < history_.size(); ++k) {
    // use_count() == 1 means the registry holds the last reference: no
    // reader can acquire it anymore (current() only hands out the head),
    // so dropping it here cannot free a graph a query still traverses.
    if (k < keep_from && history_[k].use_count() == 1) {
      ++dropped;
      continue;
    }
    kept.push_back(std::move(history_[k]));
  }
  history_.swap(kept);
  if (dropped != 0) {
    grb::stats().snapshots_reclaimed.fetch_add(dropped,
                                               std::memory_order_relaxed);
  }
  return dropped;
}

std::size_t SnapshotRegistry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return history_.size();
}

}  // namespace ingest
}  // namespace lagraph

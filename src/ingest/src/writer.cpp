// ingest/writer.cpp — the single-writer mutation thread.

#include "ingest/writer.hpp"

#include <algorithm>
#include <vector>

namespace lagraph {
namespace ingest {

Writer::Writer(Graph<double> &&g, WriterConfig cfg, PublishHook on_publish)
    : cfg_(cfg),
      on_publish_(std::move(on_publish)),
      queue_(cfg.max_queue),
      registry_(cfg.grace_depth),
      master_(std::move(g)) {
  // Establish the property baseline once; from here on the writer only
  // ever applies deltas. symmetric_pattern is left as the kind implies
  // (undirected = yes by definition, directed = unknown — a full pattern
  // comparison per epoch would defeat incremental maintenance).
  char msg[LAGRAPH_MSG_LEN];
  int st = property_at(master_, msg);
  if (st >= 0) st = property_row_degree(master_, msg);
  if (st >= 0 && master_.at.has_value()) st = property_col_degree(master_, msg);
  if (st >= 0) st = property_ndiag(master_, msg);
  if (master_.kind == Kind::adjacency_undirected) {
    master_.a_pattern_is_symmetric = BooleanProperty::yes;
  }
  if (!master_.at.has_value()) {
    // Without a cached transpose there is no cheap way to maintain
    // column degrees incrementally; drop a caller-cached vector rather
    // than publish stale values (consumers recompute on demand).
    master_.col_degree.reset();
  }
  if (st < 0) {
    std::lock_guard<std::mutex> lk(pub_mu_);
    error_status_ = st;
    error_msg_ = msg;
  }
  master_.a.for_each([&](grb::Index i, grb::Index j, const double &) {
    if (i == j) diag_present_.insert(i);
  });

  // Publish the initial graph as epoch 1 so current() is never null, then
  // hand the master to the writer thread.
  publish_epoch();
  thread_ = std::thread([this] { writer_loop(); });
}

Writer::~Writer() { stop(); }

int Writer::submit(const Mutation &m) {
  return submit_batch(std::span<const Mutation>(&m, 1));
}

int Writer::submit_batch(std::span<const Mutation> muts) {
  const grb::Index n = master_.a.nrows();  // fixed at construction
  for (const Mutation &m : muts) {
    if (m.src >= n || m.dst >= n) return LAGRAPH_INVALID_VALUE;
  }
  int st = queue_.push(muts);
  if (st == 0) {
    grb::stats().edges_ingested.fetch_add(muts.size(),
                                          std::memory_order_relaxed);
  }
  return st;
}

int Writer::publish_now() {
  std::uint64_t ticket;
  {
    std::lock_guard<std::mutex> lk(pub_mu_);
    if (stopped_) return error_status_ != 0 ? error_status_
                                            : LAGRAPH_INGEST_STOPPED;
    ticket = ++publish_wanted_;
  }
  queue_.kick();
  std::unique_lock<std::mutex> lk(pub_mu_);
  pub_cv_.wait(lk, [&] { return publish_done_ >= ticket; });
  return error_status_;
}

void Writer::stop() {
  {
    std::lock_guard<std::mutex> lk(pub_mu_);
    if (stopped_) {
      // A second stop() may race the first's join; only the thread's
      // owner joins below.
    }
    stopped_ = true;
  }
  queue_.close();
  if (thread_.joinable()) thread_.join();
}

void Writer::writer_loop() {
  std::deque<Mutation> batch;
  bool alive = true;
  while (alive) {
    batch.clear();
    // With staged-but-unpublished work and a publication rate limit in
    // force, bound the wait so the deferred epoch goes out on time even if
    // the mutation stream has gone quiet.
    double timeout_ms = -1;
    if (unpublished_ > 0 && cfg_.min_publish_interval_ms > 0) {
      const double since = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - last_publish_)
                               .count();
      timeout_ms = std::max(0.0, cfg_.min_publish_interval_ms - since);
    }
    alive = queue_.pop_all(batch, timeout_ms);

    // A barrier ticket taken before this point must see every command
    // submitted before it; those commands are in the queue by the time
    // the ticket exists, so one more non-blocking scoop suffices.
    std::uint64_t wanted;
    {
      std::lock_guard<std::mutex> lk(pub_mu_);
      wanted = publish_wanted_;
    }
    const bool barrier = wanted > publish_done_;
    if (barrier || !alive) queue_.try_pop_all(batch);

    if (!batch.empty()) {
      grb::stats().ingest_batches.fetch_add(1, std::memory_order_relaxed);
      apply_batch(batch);
      unpublished_ += batch.size();
    }

    // Drain-triggered publication is rate-limited (min_publish_interval_ms)
    // so a steady trickle of tiny batches does not republish the whole
    // graph on every cycle; barriers, the backlog cap, and shutdown always
    // publish so no path can strand staged work.
    const bool interval_ok =
        cfg_.min_publish_interval_ms <= 0 ||
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - last_publish_)
                .count() >= cfg_.min_publish_interval_ms;
    if (unpublished_ > 0 &&
        (barrier || !alive || unpublished_ >= cfg_.publish_threshold ||
         (queue_.size() == 0 && interval_ok))) {
      publish_epoch();
    }
    if (barrier || !alive) {
      std::lock_guard<std::mutex> lk(pub_mu_);
      // On exit, satisfy every ticket (even future ones raced in): the
      // published head already contains all drained work.
      publish_done_ = alive ? wanted : publish_wanted_;
      pub_cv_.notify_all();
    }
  }
}

void Writer::apply_batch(std::deque<Mutation> &batch) {
  const bool undirected = master_.kind == Kind::adjacency_undirected;
  const bool mirror_at = master_.at.has_value();
  std::vector<grb::Index> ri, ci, ti, tj;
  std::vector<double> v;
  std::vector<std::uint8_t> ops;
  ri.reserve(batch.size() * (undirected ? 2 : 1));
  ci.reserve(ri.capacity());
  v.reserve(ri.capacity());
  ops.reserve(ri.capacity());
  for (const Mutation &m : batch) {
    const auto op = static_cast<std::uint8_t>(m.op);
    ri.push_back(m.src);
    ci.push_back(m.dst);
    v.push_back(m.weight);
    ops.push_back(op);
    touched_rows_.insert(m.src);
    touched_cols_.insert(m.dst);
    if (m.src == m.dst) touched_diag_.insert(m.src);
    if (undirected && m.src != m.dst) {
      // An undirected edge lives at both (i,j) and (j,i); mirror so A
      // stays symmetric and transpose_view() can keep aliasing A.
      ri.push_back(m.dst);
      ci.push_back(m.src);
      v.push_back(m.weight);
      ops.push_back(op);
      touched_rows_.insert(m.dst);
      touched_cols_.insert(m.src);
    }
  }
  master_.a.stage_tuples(ri, ci, v, ops);
  if (mirror_at) {
    // Directed graphs maintain the cached transpose by mirroring every
    // op with swapped indices — same pending machinery, same flush.
    ti.reserve(ri.size());
    tj.reserve(ri.size());
    for (std::size_t p = 0; p < ri.size(); ++p) {
      ti.push_back(ci[p]);
      tj.push_back(ri[p]);
    }
    master_.at->stage_tuples(ti, tj, v, ops);
  }
}

void Writer::publish_epoch() {
  const auto publish_t0 = std::chrono::steady_clock::now();
  // Flush boundary: merge pending tuples, bury zombies.
  master_.a.wait();
  if (master_.at.has_value()) master_.at->wait();

  // Incremental property maintenance — touched rows/cols only.
  if (master_.row_degree.has_value()) {
    for (grb::Index i : touched_rows_) {
      const auto d = static_cast<std::int64_t>(master_.a.row_nvals(i));
      if (d > 0) {
        master_.row_degree->set_element(i, d);
      } else {
        master_.row_degree->remove_element(i);
      }
    }
  }
  if (master_.col_degree.has_value() && master_.at.has_value()) {
    for (grb::Index j : touched_cols_) {
      const auto d = static_cast<std::int64_t>(master_.at->row_nvals(j));
      if (d > 0) {
        master_.col_degree->set_element(j, d);
      } else {
        master_.col_degree->remove_element(j);
      }
    }
  }
  if (master_.ndiag >= 0) {
    for (grb::Index i : touched_diag_) {
      const bool now = master_.a.has(i, i);
      const bool before = diag_present_.count(i) != 0;
      if (now && !before) {
        ++master_.ndiag;
        diag_present_.insert(i);
      } else if (!now && before) {
        --master_.ndiag;
        diag_present_.erase(i);
      }
    }
  }
  if (unpublished_ > 0 && master_.kind == Kind::adjacency_directed) {
    // Mutations may have broken (or created) pattern symmetry; unknown is
    // the honest cache state and costs nothing to requery later.
    master_.a_pattern_is_symmetric = BooleanProperty::unknown;
  }
  touched_rows_.clear();
  touched_cols_.clear();
  touched_diag_.clear();

  // Copy-and-freeze: the copy is O(nnz) flat-array duplication, far
  // cheaper than rebuilding transpose/degrees/sort order from scratch,
  // and the master stays mutable for the next batch.
  Graph<double> copy = master_;
  char msg[LAGRAPH_MSG_LEN];
  msg[0] = '\0';
  service::SnapshotPtr snap;
  const std::uint64_t next = epoch_ + 1;  // epoch_ written only by this thread
  const int st = service::publish_snapshot(&snap, std::move(copy), next, msg);
  if (st >= 0) {
    registry_.publish(snap);
    if (on_publish_) on_publish_(snap);
  }
  {
    std::lock_guard<std::mutex> lk(pub_mu_);
    if (st < 0) {
      if (error_status_ == 0) {
        error_status_ = st;
        error_msg_ = msg;
      }
    } else {
      epoch_ = next;
    }
  }
  unpublished_ = 0;
  last_publish_ = std::chrono::steady_clock::now();
  last_publish_ns_.store(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(last_publish_ -
                                                               publish_t0)
              .count()),
      std::memory_order_relaxed);
}

}  // namespace ingest
}  // namespace lagraph

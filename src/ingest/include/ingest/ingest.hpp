// ingest/ingest.hpp — the streaming mutation write path (lagraph::ingest).
//
// The subsystem turns the service layer's static snapshots into a live
// system: clients enqueue edge insert / delete / upsert commands on an
// IngestQueue; a single Writer thread drains the queue in batches, stages
// every command on the grb pending-tuple/zombie machinery (so a thousand
// upserts cost one merge, not a thousand CSR rewrites), maintains the
// cached graph properties incrementally, and publishes immutable
// GraphSnapshots through an epoch/RCU-style pointer swap. Readers bound to
// an older epoch keep their snapshot alive by refcount; the registry
// reclaims retired epochs once their grace period expires with no readers
// pinning them. See docs/API.md "Ingest & snapshot epochs".
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>

#include "grb/grb.hpp"

// Ingest status codes, extending the lagraph convention (< 0 error) in the
// style of the service codes (service/engine.hpp, -3x block).
inline constexpr int LAGRAPH_INGEST_STOPPED = -41;     // writer shut down
inline constexpr int LAGRAPH_INGEST_QUEUE_FULL = -42;  // bounded queue hit

namespace lagraph {
namespace ingest {

/// What a mutation command does to edge (src, dst). Values match the grb
/// pending-op codes (grb::Matrix kPendSet / kPendDelete / kPendAccum) so a
/// batch forwards to Matrix::stage_tuples without translation.
enum class MutationOp : std::uint8_t {
  insert = 0,  ///< set the edge weight (insert-or-overwrite)
  remove = 1,  ///< delete the edge if present
  upsert = 2,  ///< add into the weight, or insert if absent
};

struct Mutation {
  MutationOp op = MutationOp::insert;
  grb::Index src = 0;
  grb::Index dst = 0;
  double weight = 1.0;  ///< ignored for remove
};

/// Writer tuning knobs.
struct WriterConfig {
  /// Mutations applied since the last publication that force a new epoch
  /// even while the queue stays busy. The writer also publishes whenever
  /// the queue drains empty with unpublished work, so a light stream sees
  /// every batch promptly and a heavy stream amortizes.
  std::size_t publish_threshold = 4096;
  /// Minimum milliseconds between drain-triggered publications. Each epoch
  /// pays an O(nnz) flush + copy-and-freeze, so a steady trickle of tiny
  /// batches would otherwise republish the whole graph every few hundred
  /// microseconds and starve readers of CPU. The interval only gates the
  /// queue-drained-empty trigger: publish_now() barriers, the
  /// publish_threshold backlog cap, and shutdown all publish immediately.
  /// 0 = publish on every drain (lowest staleness).
  double min_publish_interval_ms = 0;
  /// Enqueued-mutation cap; submits beyond it fail with
  /// LAGRAPH_INGEST_QUEUE_FULL rather than buffering unboundedly. 0 = off.
  std::size_t max_queue = 1 << 20;
  /// Retired snapshots younger than this many epochs are never reclaimed,
  /// even with no readers — a grace period so a reader that loaded the
  /// current pointer moments ago cannot have it swept mid-bind.
  std::size_t grace_depth = 2;
};

/// Bounded multi-producer queue feeding the single Writer thread. Producers
/// block never: a full queue rejects with LAGRAPH_INGEST_QUEUE_FULL, a
/// closed queue with LAGRAPH_INGEST_STOPPED. The consumer side (Writer)
/// drains whole batches under one lock acquisition.
class IngestQueue {
 public:
  explicit IngestQueue(std::size_t max_queue) : max_queue_(max_queue) {}

  /// Enqueue a batch atomically: all commands are accepted or none.
  int push(std::span<const Mutation> muts) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return LAGRAPH_INGEST_STOPPED;
      if (max_queue_ != 0 && q_.size() + muts.size() > max_queue_) {
        return LAGRAPH_INGEST_QUEUE_FULL;
      }
      q_.insert(q_.end(), muts.begin(), muts.end());
    }
    cv_.notify_one();
    return 0;
  }

  /// Consumer: block until commands, a publish request, or close arrive,
  /// then move every queued command into `out` (appended). Returns false
  /// once the queue is closed AND empty — the writer's exit condition.
  /// A non-negative `timeout_ms` bounds the wait (the writer uses this to
  /// wake when a rate-limited publication falls due even if the mutation
  /// stream has gone quiet); a timed-out wait returns with `out` unchanged.
  bool pop_all(std::deque<Mutation> &out, double timeout_ms = -1) {
    std::unique_lock<std::mutex> lk(mu_);
    const auto ready = [&] { return closed_ || wake_ || !q_.empty(); };
    if (timeout_ms < 0) {
      cv_.wait(lk, ready);
    } else {
      cv_.wait_for(lk, std::chrono::duration<double, std::milli>(timeout_ms),
                   ready);
    }
    wake_ = false;
    if (q_.empty() && closed_) return false;
    while (!q_.empty()) {
      out.push_back(q_.front());
      q_.pop_front();
    }
    return true;
  }

  /// Non-blocking drain: move whatever is queued right now into `out`.
  /// The publish_now barrier uses this to scoop commands that raced in
  /// between the consumer's last blocking pop and the barrier request.
  void try_pop_all(std::deque<Mutation> &out) {
    std::lock_guard<std::mutex> lk(mu_);
    while (!q_.empty()) {
      out.push_back(q_.front());
      q_.pop_front();
    }
  }

  /// Wake the consumer without enqueueing (publish_now, stop).
  void kick() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      wake_ = true;
    }
    cv_.notify_one();
  }

  /// No further pushes; the consumer drains what is left, then pop_all
  /// returns false.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return q_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Mutation> q_;
  std::size_t max_queue_;
  bool closed_ = false;
  bool wake_ = false;
};

}  // namespace ingest
}  // namespace lagraph

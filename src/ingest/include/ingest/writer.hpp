// ingest/writer.hpp — the single-writer mutation thread.
//
// The Writer is the one component allowed to mutate graph containers after
// service startup — the "single writer" half of the grb threading contract
// (grb/matrix.hpp), made concrete: exactly one thread stages pending
// tuples, flushes them at publication boundaries, and hands out deeply
// immutable snapshots. Readers never lock against it and never observe a
// torn graph: they see whichever epoch was current when they bound.
//
// Publication pipeline (one epoch):
//   1. drain the IngestQueue, stage commands on the master adjacency via
//      Matrix::stage_tuples (undirected graphs mirror (i,j)→(j,i); directed
//      graphs mirror into the cached transpose instead);
//   2. at the flush boundary, wait() merges pending tuples / buries
//      zombies in one sweep;
//   3. maintain cached properties incrementally — row/col degrees are
//      recomputed only for touched rows (Matrix::row_nvals is O(1) on a
//      flushed CSR), ndiag by presence deltas on touched diagonal cells —
//      instead of the from-scratch rebuilds make_snapshot would pay;
//   4. copy the master graph (O(nnz) memcpy — cheaper than rebuilding
//      transpose + degrees + sort order) and publish_snapshot() the copy,
//      stamped with the next epoch, into the SnapshotRegistry;
//   5. notify the on_publish hook (the serving Engine installs the new
//      snapshot there) and sweep reclaimable epochs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <unordered_set>

#include "ingest/ingest.hpp"
#include "ingest/registry.hpp"
#include "lagraph/lagraph.hpp"
#include "service/snapshot.hpp"

namespace lagraph {
namespace ingest {

class Writer {
 public:
  /// Called with each freshly published snapshot, from the writer thread;
  /// keep it cheap (Engine::install_snapshot is a pointer swap).
  using PublishHook = std::function<void(const service::SnapshotPtr &)>;

  /// Take ownership of the graph and immediately publish it as epoch 1 so
  /// current() is never null. Missing cached properties (transpose,
  /// degrees, ndiag) are computed once here; afterwards they are only
  /// ever maintained by deltas.
  explicit Writer(Graph<double> &&g, WriterConfig cfg = {},
                  PublishHook on_publish = nullptr);
  ~Writer();  // stop()s

  Writer(const Writer &) = delete;
  Writer &operator=(const Writer &) = delete;

  /// Enqueue mutations (thread-safe, non-blocking). Indices are validated
  /// here: out-of-range commands reject the whole batch with
  /// LAGRAPH_INVALID_VALUE before anything is staged.
  int submit(const Mutation &m);
  int submit_batch(std::span<const Mutation> muts);

  /// Force a publication boundary and block until a snapshot containing
  /// every mutation submitted-before-this-call is published. Returns the
  /// writer's sticky error status (0 if the epoch published cleanly).
  int publish_now();

  /// The newest published snapshot (never null after construction).
  [[nodiscard]] service::SnapshotPtr current() const {
    return registry_.current();
  }

  /// Epoch of the newest publication.
  [[nodiscard]] std::uint64_t epoch() const {
    std::lock_guard<std::mutex> lk(pub_mu_);
    return epoch_;
  }

  /// First error a publication hit (sticky; 0 = none). The message text
  /// accompanies it.
  [[nodiscard]] int error_status() const {
    std::lock_guard<std::mutex> lk(pub_mu_);
    return error_status_;
  }
  [[nodiscard]] std::string error_message() const {
    std::lock_guard<std::mutex> lk(pub_mu_);
    return error_msg_;
  }

  [[nodiscard]] const SnapshotRegistry &registry() const { return registry_; }

  /// Mutations queued but not yet staged — the ingest backlog gauge the
  /// telemetry endpoint exposes (lock-free-ish: one queue mutex probe).
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Wall time the most recent epoch publication took (flush + incremental
  /// property maintenance + copy + publish), in seconds; 0 before the
  /// first publication completes. Readable from any thread.
  [[nodiscard]] double last_publish_seconds() const {
    return static_cast<double>(
               last_publish_ns_.load(std::memory_order_relaxed)) /
           1e9;
  }

  /// Drain the queue, publish any unpublished work, join the thread.
  /// Subsequent submits fail with LAGRAPH_INGEST_STOPPED. Idempotent.
  void stop();

 private:
  void writer_loop();
  void apply_batch(std::deque<Mutation> &batch);
  void publish_epoch();

  WriterConfig cfg_;
  PublishHook on_publish_;
  IngestQueue queue_;
  SnapshotRegistry registry_;

  // Writer-thread-private state: the mutable master graph plus the delta
  // tracking that makes property maintenance incremental.
  Graph<double> master_;
  std::unordered_set<grb::Index> touched_rows_;
  std::unordered_set<grb::Index> touched_cols_;
  std::unordered_set<grb::Index> touched_diag_;
  std::unordered_set<grb::Index> diag_present_;  // diagonal cells currently set
  std::size_t unpublished_ = 0;  // mutations applied since the last epoch
  std::chrono::steady_clock::time_point last_publish_{};  // rate-limit anchor
  std::atomic<std::uint64_t> last_publish_ns_{0};  // latency of last epoch

  // Publication barrier + error reporting (shared with callers).
  mutable std::mutex pub_mu_;
  std::condition_variable pub_cv_;
  std::uint64_t epoch_ = 0;           // last published epoch
  std::uint64_t publish_wanted_ = 0;  // publish_now requests issued
  std::uint64_t publish_done_ = 0;    // publish_now requests satisfied
  int error_status_ = 0;
  std::string error_msg_;

  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace ingest
}  // namespace lagraph

// ingest/registry.hpp — epoch-ordered snapshot history with grace-period
// reclamation.
//
// The Writer publishes every epoch here. current() is what new readers
// bind; older entries stay registered until (a) they are at least
// `grace_depth` epochs behind the head AND (b) no reader still holds a
// reference (shared_ptr use_count — the registry's own reference is the
// last one). That is the RCU discipline with refcounts standing in for
// quiescent-state detection: a reader pins its epoch simply by holding the
// SnapshotPtr it was handed, and reclamation can never free a graph a
// query is still traversing.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "service/snapshot.hpp"

namespace lagraph {
namespace ingest {

class SnapshotRegistry {
 public:
  explicit SnapshotRegistry(std::size_t grace_depth = 2)
      : grace_depth_(grace_depth < 1 ? 1 : grace_depth) {}

  /// Install a new head epoch, then sweep reclaimable predecessors.
  /// Returns the number of snapshots reclaimed by the sweep.
  std::size_t publish(service::SnapshotPtr snap);

  /// The newest published snapshot (null before the first publish).
  [[nodiscard]] service::SnapshotPtr current() const;

  /// Sweep retired epochs: drop every entry that is beyond the grace
  /// depth and whose only remaining reference is the registry's own.
  /// Entries still pinned by in-flight readers survive until a later
  /// sweep. Returns how many were dropped (also added to the
  /// grb::stats().snapshots_reclaimed counter).
  std::size_t reclaim();

  /// Published epochs still registered (pinned or within grace).
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<service::SnapshotPtr> history_;  // oldest first; back = head
  std::size_t grace_depth_;
};

}  // namespace ingest
}  // namespace lagraph

#include "gen/generators.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace gen {

namespace {

/// One R-MAT edge: descend `scale` levels of the quadtree.
std::pair<Index, Index> rmat_edge(int scale, const RmatParams &p,
                                  std::mt19937_64 &rng) {
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  Index row = 0;
  Index col = 0;
  for (int lvl = 0; lvl < scale; ++lvl) {
    double r = u01(rng);
    row <<= 1;
    col <<= 1;
    if (r < p.a) {
      // top-left: nothing to add
    } else if (r < p.a + p.b) {
      col |= 1;
    } else if (r < p.a + p.b + p.c) {
      row |= 1;
    } else {
      row |= 1;
      col |= 1;
    }
  }
  return {row, col};
}

std::vector<Index> random_permutation(Index n, std::mt19937_64 &rng) {
  std::vector<Index> perm(n);
  std::iota(perm.begin(), perm.end(), Index{0});
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

void permute_ids_in_place(EdgeList &el, std::mt19937_64 &rng) {
  auto perm = random_permutation(el.n, rng);
  for (auto &s : el.src) s = perm[s];
  for (auto &d : el.dst) d = perm[d];
}

}  // namespace

EdgeList rmat(int scale, int edgefactor, RmatParams p, std::uint64_t seed,
              bool permute_ids) {
  std::mt19937_64 rng(seed);
  EdgeList el;
  el.n = Index{1} << scale;
  const std::size_t m = static_cast<std::size_t>(edgefactor) << scale;
  el.src.reserve(m);
  el.dst.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    auto [s, d] = rmat_edge(scale, p, rng);
    el.push(s, d);
  }
  if (permute_ids) permute_ids_in_place(el, rng);
  return el;
}

EdgeList kronecker(int scale, int edgefactor, std::uint64_t seed) {
  EdgeList el = rmat(scale, edgefactor, kGraph500, seed, /*permute_ids=*/true);
  remove_self_loops(el);
  symmetrize(el);
  return el;
}

EdgeList uniform_random(int scale, int edgefactor, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  EdgeList el;
  el.n = Index{1} << scale;
  const std::size_t m = static_cast<std::size_t>(edgefactor) << scale;
  std::uniform_int_distribution<Index> uv(0, el.n - 1);
  el.src.reserve(m);
  el.dst.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    Index s = uv(rng);
    Index d = uv(rng);
    if (s == d) continue;
    el.push(s, d);
  }
  symmetrize(el);
  return el;
}

EdgeList twitter_like(int scale, int edgefactor, std::uint64_t seed) {
  EdgeList el = rmat(scale, edgefactor, kTwitterLike, seed);
  remove_self_loops(el);
  return el;
}

EdgeList web_like(int scale, int edgefactor, std::uint64_t seed) {
  // Web crawls have strong locality: most links stay within a host. Model
  // this by mixing R-MAT hubs with short-range links on the id axis.
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ULL);
  EdgeList el = rmat(scale, std::max(1, edgefactor / 2), kWebLike, seed,
                     /*permute_ids=*/false);
  const std::size_t local = (static_cast<std::size_t>(edgefactor) << scale) -
                            el.size();
  std::uniform_int_distribution<Index> uv(0, el.n - 1);
  std::geometric_distribution<Index> hop(0.1);
  for (std::size_t e = 0; e < local; ++e) {
    Index s = uv(rng);
    Index d = (s + hop(rng) + 1) % el.n;
    el.push(s, d);
  }
  remove_self_loops(el);
  return el;
}

EdgeList road_grid(Index width, Index height, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  EdgeList el;
  el.n = width * height;
  auto id = [&](Index x, Index y) { return y * width + x; };
  for (Index y = 0; y < height; ++y) {
    for (Index x = 0; x < width; ++x) {
      if (x + 1 < width) {
        el.push(id(x, y), id(x + 1, y));
        el.push(id(x + 1, y), id(x, y));
      }
      if (y + 1 < height) {
        el.push(id(x, y), id(x, y + 1));
        el.push(id(x, y + 1), id(x, y));
      }
    }
  }
  // A few diagonal "highway" shortcuts (~0.5% of nodes) keep the degree
  // distribution road-like without collapsing the diameter.
  std::uniform_int_distribution<Index> ux(0, width - 2);
  std::uniform_int_distribution<Index> uy(0, height - 2);
  const Index shortcuts = std::max<Index>(1, el.n / 200);
  for (Index s = 0; s < shortcuts; ++s) {
    Index x = ux(rng);
    Index y = uy(rng);
    el.push(id(x, y), id(x + 1, y + 1));
    el.push(id(x + 1, y + 1), id(x, y));
  }
  return el;
}

EdgeList planted_partition(Index communities, Index community_size,
                           Index degree, double p_within,
                           std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  EdgeList el;
  el.n = communities * community_size;
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  std::uniform_int_distribution<Index> in_comm(0, community_size - 1);
  std::uniform_int_distribution<Index> anywhere(0, el.n - 1);
  for (Index v = 0; v < el.n; ++v) {
    const Index base = (v / community_size) * community_size;
    for (Index e = 0; e < degree; ++e) {
      Index w;
      if (u01(rng) < p_within) {
        w = base + in_comm(rng);
      } else {
        w = anywhere(rng);
      }
      if (w == v) continue;
      el.push(v, w);
    }
  }
  symmetrize(el);
  return el;
}

void symmetrize(EdgeList &el) {
  const std::size_t m = el.size();
  el.src.reserve(2 * m);
  el.dst.reserve(2 * m);
  if (el.weighted()) el.weight.reserve(2 * m);
  for (std::size_t e = 0; e < m; ++e) {
    el.src.push_back(el.dst[e]);
    el.dst.push_back(el.src[e]);
    if (el.weighted()) el.weight.push_back(el.weight[e]);
  }
}

void remove_self_loops(EdgeList &el) {
  std::size_t out = 0;
  for (std::size_t e = 0; e < el.size(); ++e) {
    if (el.src[e] == el.dst[e]) continue;
    el.src[out] = el.src[e];
    el.dst[out] = el.dst[e];
    if (el.weighted()) el.weight[out] = el.weight[e];
    ++out;
  }
  el.src.resize(out);
  el.dst.resize(out);
  if (el.weighted()) el.weight.resize(out);
}

void add_uniform_weights(EdgeList &el, int lo, int hi, std::uint64_t seed) {
  // Hash each undirected pair so (u,v) and (v,u) get the same weight and the
  // result does not depend on edge order.
  el.weight.resize(el.size());
  std::uniform_int_distribution<int> uw(lo, hi);
  for (std::size_t e = 0; e < el.size(); ++e) {
    Index a = std::min(el.src[e], el.dst[e]);
    Index b = std::max(el.src[e], el.dst[e]);
    std::uint64_t h = seed;
    h ^= (a + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    h ^= (b + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    std::mt19937_64 rng(h);
    el.weight[e] = static_cast<double>(uw(rng));
  }
}

const char *gap_graph_name(GapGraphId id) {
  switch (id) {
    case GapGraphId::kron: return "Kron";
    case GapGraphId::urand: return "Urand";
    case GapGraphId::twitter: return "Twitter";
    case GapGraphId::web: return "Web";
    case GapGraphId::road: return "Road";
  }
  return "?";
}

GapGraph make_gap_graph(const GapGraphSpec &spec) {
  GapGraph g;
  g.name = gap_graph_name(spec.id);
  switch (spec.id) {
    case GapGraphId::kron:
      g.directed = false;
      g.edges = kronecker(spec.scale, spec.edgefactor, spec.seed);
      break;
    case GapGraphId::urand:
      g.directed = false;
      g.edges = uniform_random(spec.scale, spec.edgefactor, spec.seed);
      break;
    case GapGraphId::twitter:
      g.directed = true;
      g.edges = twitter_like(spec.scale, spec.edgefactor, spec.seed);
      break;
    case GapGraphId::web:
      g.directed = true;
      g.edges = web_like(spec.scale, spec.edgefactor, spec.seed);
      break;
    case GapGraphId::road: {
      g.directed = true;  // Table IV lists Road as directed
      // Grid side so that node count ≈ 2^scale.
      Index side = Index{1} << (spec.scale / 2);
      if (spec.scale % 2) side = static_cast<Index>(side * 1.41421356);
      g.edges = road_grid(side, side, spec.seed);
      break;
    }
  }
  add_uniform_weights(g.edges, 1, 255, spec.seed ^ 0xfeedULL);
  return g;
}

std::vector<GapGraph> make_default_suite(int scale, int edgefactor,
                                         std::uint64_t seed) {
  std::vector<GapGraph> out;
  for (GapGraphId id : kAllGapGraphs) {
    // Road uses edgefactor ~2.4 naturally; the parameter applies elsewhere.
    out.push_back(make_gap_graph({id, scale, edgefactor, seed}));
  }
  return out;
}

}  // namespace gen

// gen/generators.hpp — synthetic graph generators.
//
// The paper evaluates on the five GAP benchmark graphs (Table IV). Those
// require tens of gigabytes; this module generates shape-faithful stand-ins
// at configurable scale (see DESIGN.md for the substitution argument):
//   - kronecker:       Graph500 R-MAT (A=.57,B=.19,C=.19,D=.05), undirected,
//                      heavy-tailed degrees — the "Kron" graph.
//   - uniform_random:  Erdős–Rényi by edge count — the "Urand" graph.
//   - rmat:            parameterizable R-MAT; presets give a skewed directed
//                      "Twitter"-like graph and a locality-heavy "Web"-like
//                      graph.
//   - road_grid:       2-D grid with unit-ish random weights; diameter
//                      Θ(√n), reproducing the Road graph's high-diameter
//                      pathology (paper §VI-B).
// All generators are deterministic functions of their seed.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "grb/grb.hpp"

namespace gen {

using grb::Index;

/// A multigraph edge list; duplicates and self-loops may be present until
/// the clean-up helpers run.
struct EdgeList {
  Index n = 0;
  std::vector<Index> src;
  std::vector<Index> dst;
  std::vector<double> weight;  // empty = unweighted

  [[nodiscard]] std::size_t size() const noexcept { return src.size(); }
  [[nodiscard]] bool weighted() const noexcept { return !weight.empty(); }
  void push(Index s, Index d) {
    src.push_back(s);
    dst.push_back(d);
  }
};

/// R-MAT quadrant probabilities.
struct RmatParams {
  double a, b, c;
  // d = 1 - a - b - c
};

inline constexpr RmatParams kGraph500{0.57, 0.19, 0.19};
inline constexpr RmatParams kTwitterLike{0.50, 0.20, 0.19};
inline constexpr RmatParams kWebLike{0.42, 0.32, 0.12};

/// Graph500-style Kronecker generator: 2^scale vertices, edgefactor·2^scale
/// undirected edges, vertex ids randomly permuted (as the Graph500 spec
/// requires, so degree does not correlate with id).
EdgeList kronecker(int scale, int edgefactor, std::uint64_t seed);

/// Uniform-random (Erdős–Rényi style, fixed edge count) undirected graph.
EdgeList uniform_random(int scale, int edgefactor, std::uint64_t seed);

/// General R-MAT, directed.
EdgeList rmat(int scale, int edgefactor, RmatParams p, std::uint64_t seed,
              bool permute_ids = true);

/// Skewed directed graph standing in for the Twitter follower graph.
EdgeList twitter_like(int scale, int edgefactor, std::uint64_t seed);

/// Locality-heavy directed graph standing in for the Web crawl.
EdgeList web_like(int scale, int edgefactor, std::uint64_t seed);

/// width × height 4-neighbour grid (directed, both directions present),
/// with a sprinkle of diagonal shortcuts; diameter ≈ width + height.
EdgeList road_grid(Index width, Index height, std::uint64_t seed);

/// Planted-partition ("stochastic block model") graph: `communities` groups
/// of `community_size` nodes; each node gets ~`degree` neighbours, a
/// `p_within` fraction of them inside its own community. Undirected. The
/// ground-truth community of node v is v / community_size.
EdgeList planted_partition(Index communities, Index community_size,
                           Index degree, double p_within,
                           std::uint64_t seed);

// -- transformations ---------------------------------------------------------

/// Add the reverse of every edge (A := A ∨ Aᵀ structurally).
void symmetrize(EdgeList &el);

/// Drop self-loops in place.
void remove_self_loops(EdgeList &el);

/// Attach uniform integer weights in [lo, hi] (the GAP SSSP convention,
/// which uses [1, 255]). Symmetric pairs (u,v)/(v,u) receive the same
/// weight so undirected graphs stay consistent.
void add_uniform_weights(EdgeList &el, int lo, int hi, std::uint64_t seed);

/// Build an adjacency matrix; duplicate edges collapse to a single entry
/// (keeping the first weight).
template <typename T>
grb::Matrix<T> to_matrix(const EdgeList &el) {
  grb::Matrix<T> a(el.n, el.n);
  std::vector<T> vals(el.size());
  for (std::size_t e = 0; e < el.size(); ++e) {
    vals[e] = el.weighted() ? static_cast<T>(el.weight[e]) : T(1);
  }
  a.build(std::span<const Index>(el.src), std::span<const Index>(el.dst),
          std::span<const T>(vals), grb::First{});
  return a;
}

// -- the benchmark suite ------------------------------------------------------

/// Which of the five GAP-shaped graphs to generate.
enum class GapGraphId { kron, urand, twitter, web, road };

inline constexpr GapGraphId kAllGapGraphs[] = {
    GapGraphId::kron, GapGraphId::urand, GapGraphId::twitter, GapGraphId::web,
    GapGraphId::road};

const char *gap_graph_name(GapGraphId id);

struct GapGraphSpec {
  GapGraphId id;
  int scale;        // 2^scale vertices (road: grid side derived from scale)
  int edgefactor;   // edges per vertex
  std::uint64_t seed;
};

/// A generated benchmark graph: unweighted structure plus a weighted copy
/// (for SSSP), and the directedness flag matching Table IV.
struct GapGraph {
  std::string name;
  bool directed;
  EdgeList edges;           // weighted
  grb::Index nodes() const { return edges.n; }
};

/// Generate one of the five benchmark graphs at the given scale.
GapGraph make_gap_graph(const GapGraphSpec &spec);

/// The default laptop-scale suite (scales chosen so the whole Table III
/// harness runs in minutes on one core).
std::vector<GapGraph> make_default_suite(int scale, int edgefactor,
                                         std::uint64_t seed);

}  // namespace gen

// differ.cpp — execute scenarios through the real kernels and the oracle,
// compare bit-exactly, shrink failures.
#include "grb/testing/differ.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "grb/grb.hpp"
#include "grb/testing/oracle.hpp"

namespace grb::testing {

namespace {

using T = std::int64_t;

/// Sentinel a getElement probe reports when the entry is absent.
constexpr T kAbsent = std::numeric_limits<T>::min();

// ---------------------------------------------------------------------------
// Config sweep
// ---------------------------------------------------------------------------

struct ConfigGuard {
  Config saved;

  explicit ConfigGuard(const RunConfig &rc) : saved(config()) {
    Config &c = config();
    c.num_threads = rc.threads;
    c.force_format = static_cast<ForceFormat>(rc.force_format);
    c.force_push = rc.force_push;
    c.force_pull = rc.force_pull;
    c.force_index_width = static_cast<ForceIndexWidth>(rc.force_index_width);
  }
  ~ConfigGuard() { config() = saved; }
  ConfigGuard(const ConfigGuard &) = delete;
  ConfigGuard &operator=(const ConfigGuard &) = delete;
};

}  // namespace

std::string RunConfig::name() const {
  std::ostringstream os;
  os << "t" << threads << "/"
     << (force_format == 0 ? "any" : force_format == 1 ? "sparse" : "bitmap");
  if (force_push) os << "/push";
  if (force_pull) os << "/pull";
  if (force_index_width == 1) os << "/u32";
  if (force_index_width == 2) os << "/u64";
  return os.str();
}

std::vector<RunConfig> sweep_configs() {
  std::vector<RunConfig> out;
  for (int threads : {1, 4, 8}) {
    for (int ff : {0, 1, 2}) {
      RunConfig rc;
      rc.threads = threads;
      rc.force_format = ff;
      // Fold the planner direction overrides onto two sweep points so the
      // hint machinery is exercised without doubling the grid.
      rc.force_push = threads == 4 && ff == 1;
      rc.force_pull = threads == 8 && ff == 2;
      // Width joins the sweep on the format-free column: u32 at t1 and t8
      // (serial + parallel compressed storage), an explicit u64 pin at t4
      // so the no-compress path is also exercised.
      rc.force_index_width = ff == 0 ? (threads == 4 ? 2 : 1) : 0;
      out.push_back(rc);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Enum → real-functor dispatch (each with_* expands the template
// cross-product the kernels need; element type is always std::int64_t).
// ---------------------------------------------------------------------------

namespace {

template <typename F>
void with_accum(AccumKind k, F &&f) {
  switch (k) {
    case AccumKind::none: f(NoAccum{}); break;
    case AccumKind::plus: f(Plus{}); break;
    case AccumKind::min: f(Min{}); break;
    case AccumKind::max: f(Max{}); break;
    case AccumKind::second: f(Second{}); break;
    case AccumKind::kCount: break;
  }
}

template <typename F>
void with_semiring(SemiringKind k, F &&f) {
  switch (k) {
    case SemiringKind::plus_times: f(PlusTimes<T>{}); break;
    case SemiringKind::min_plus: f(MinPlus<T>{}); break;
    case SemiringKind::plus_second: f(PlusSecond<T>{}); break;
    case SemiringKind::plus_pair: f(PlusPair<T>{}); break;
    case SemiringKind::lor_land: f(LOrLAnd<T>{}); break;
    case SemiringKind::max_first: f(Semiring<MaxMonoid<T>, First>{}); break;
    case SemiringKind::any_secondi: f(AnySecondI<T>{}); break;
    case SemiringKind::kCount: break;
  }
}

template <typename F>
void with_monoid(MonoidKind k, F &&f) {
  switch (k) {
    case MonoidKind::plus: f(PlusMonoid<T>{}); break;
    case MonoidKind::min: f(MinMonoid<T>{}); break;
    case MonoidKind::max: f(MaxMonoid<T>{}); break;
    case MonoidKind::kCount: break;
  }
}

template <typename F>
void with_binop(BinOpKind k, F &&f) {
  switch (k) {
    case BinOpKind::plus: f(Plus{}); break;
    case BinOpKind::times: f(Times{}); break;
    case BinOpKind::min: f(Min{}); break;
    case BinOpKind::max: f(Max{}); break;
    case BinOpKind::first: f(First{}); break;
    case BinOpKind::second: f(Second{}); break;
    case BinOpKind::minus: f(Minus{}); break;
    case BinOpKind::kCount: break;
  }
}

template <typename F>
void with_select(SelectKind k, F &&f) {
  switch (k) {
    case SelectKind::tril: f(Tril{}); break;
    case SelectKind::triu: f(Triu{}); break;
    case SelectKind::diag: f(Diag{}); break;
    case SelectKind::offdiag: f(OffDiag{}); break;
    case SelectKind::value_ne: f(ValueNe{}); break;
    case SelectKind::value_le: f(ValueLe{}); break;
    case SelectKind::row_lt: f(RowIndexLt{}); break;
    case SelectKind::col_lt: f(ColIndexLt{}); break;
    case SelectKind::kCount: break;
  }
}

template <typename F>
void with_mat_mask(bool has, const Matrix<T> &mask, F &&f) {
  if (has) {
    f(mask);
  } else {
    f(no_mask);
  }
}

template <typename F>
void with_vec_mask(bool has, const Vector<T> &mask, F &&f) {
  if (has) {
    f(mask);
  } else {
    f(no_mask);
  }
}

// ---------------------------------------------------------------------------
// Real-side container construction + mutation prologue
// ---------------------------------------------------------------------------

template <typename Dup>
Matrix<T> mk_mat(const MatData &d, Dup dup) {
  Matrix<T> a(d.m, d.n);
  a.build(std::span<const Index>(d.ri), std::span<const Index>(d.ci),
          std::span<const T>(d.vv), dup);
  switch (d.fmt) {
    case MatFmt::csr: break;  // build leaves CSR
    case MatFmt::hypersparse: a.to_hypersparse(); break;
    case MatFmt::bitmap: a.to_bitmap(); break;
    case MatFmt::kCount: break;
  }
  return a;
}

Matrix<T> mk_mat(const MatData &d) { return mk_mat(d, Second{}); }

template <typename Dup>
Vector<T> mk_vec(const VecData &d, Dup dup) {
  Vector<T> u(d.n);
  u.build(std::span<const Index>(d.ix), std::span<const T>(d.vv), dup);
  if (d.fmt == VecFmt::bitmap) u.to_bitmap();
  return u;
}

Vector<T> mk_vec(const VecData &d) { return mk_vec(d, Second{}); }

/// Apply the non-blocking mutation prologue to the real matrix, recording
/// probe answers. Probes force the pending-tuple / zombie machinery: nvals
/// and getElement flush, the reduce walks the flushed structure.
void mutate_real(Matrix<T> &a, const std::vector<Mutation> &muts,
                 std::vector<T> &observed) {
  for (const auto &mu : muts) {
    if (mu.del) {
      a.remove_element(mu.i, mu.j);
    } else if (mu.add) {
      a.accum_element(mu.i, mu.j, mu.v);
    } else {
      a.set_element(mu.i, mu.j, mu.v);
    }
    switch (mu.probe) {
      case 1: observed.push_back(static_cast<T>(a.nvals())); break;
      case 2: {
        auto v = a.get(mu.i, mu.j);
        observed.push_back(v ? *v : kAbsent);
        break;
      }
      case 3: {
        T s = 0;
        reduce(s, NoAccum{}, PlusMonoid<T>{}, a);
        observed.push_back(s);
        break;
      }
      case 4:
        // Flush boundary: merge pending / bury zombies, record nothing.
        // The oracle side applies its map update and does nothing else,
        // so any divergence here is a merge bug, not a probe mismatch.
        a.wait();
        break;
      default: break;
    }
  }
}

void mutate_real(Vector<T> &u, const std::vector<Mutation> &muts,
                 std::vector<T> &observed) {
  for (const auto &mu : muts) {
    if (mu.del) {
      u.remove_element(mu.i);
    } else if (mu.add) {
      auto v = u.get(mu.i);
      u.set_element(mu.i, v ? static_cast<T>(*v + mu.v) : mu.v);
    } else {
      u.set_element(mu.i, mu.v);
    }
    switch (mu.probe) {
      case 1: observed.push_back(static_cast<T>(u.nvals())); break;
      case 2: {
        auto v = u.get(mu.i);
        observed.push_back(v ? *v : kAbsent);
        break;
      }
      case 3: {
        T s = 0;
        reduce(s, NoAccum{}, PlusMonoid<T>{}, u);
        observed.push_back(s);
        break;
      }
      case 4: break;  // flush boundary; vector mutations are eager
      default: break;
    }
  }
}

Result read_mat(const Matrix<T> &a, std::vector<T> observed) {
  Result r;
  r.kind = Result::Kind::matrix;
  r.m = a.nrows();
  r.n = a.ncols();
  std::vector<Index> ri, ci;
  std::vector<T> vv;
  a.extract_tuples(ri, ci, vv);
  r.mat.reserve(ri.size());
  for (std::size_t p = 0; p < ri.size(); ++p) {
    r.mat.emplace_back(ri[p], ci[p], vv[p]);
  }
  std::sort(r.mat.begin(), r.mat.end());
  r.observed = std::move(observed);
  return r;
}

Result read_vec(const Vector<T> &u, std::vector<T> observed) {
  Result r;
  r.kind = Result::Kind::vector;
  r.n = u.size();
  std::vector<Index> ix;
  std::vector<T> vv;
  u.extract_tuples(ix, vv);
  r.vec.reserve(ix.size());
  for (std::size_t p = 0; p < ix.size(); ++p) r.vec.emplace_back(ix[p], vv[p]);
  std::sort(r.vec.begin(), r.vec.end());
  r.observed = std::move(observed);
  return r;
}

Indices mk_indices(bool all, const std::vector<Index> &list) {
  return all ? Indices::all() : Indices(list);
}

/// Fold a fused op's companion output into the probe log: nvals, then
/// (index, value) pairs in ascending index order. The oracle encodes its
/// companions identically (append_ref_observed), so a stamp or prune
/// divergence trips the same Result comparison as the primary output.
void append_vec_observed(std::vector<T> &obs, const Vector<T> &x) {
  obs.push_back(static_cast<T>(x.nvals()));
  std::vector<Index> ix;
  std::vector<T> vv;
  x.extract_tuples(ix, vv);
  std::vector<std::pair<Index, T>> e;
  e.reserve(ix.size());
  for (std::size_t p = 0; p < ix.size(); ++p) e.emplace_back(ix[p], vv[p]);
  std::sort(e.begin(), e.end());
  for (const auto &[i, v] : e) {
    obs.push_back(static_cast<T>(i));
    obs.push_back(v);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// run_real
// ---------------------------------------------------------------------------

Result run_real(const Scenario &s, const RunConfig &rc) {
  ConfigGuard guard(rc);
  // A scenario that pins its own storage width (u32-path and promotion
  // repros) wins over the sweep's fold; the guard still restores on exit.
  if (s.force_index_width != 0) {
    config().force_index_width =
        static_cast<ForceIndexWidth>(s.force_index_width);
  }
  if (s.u32_limit != 0) {
    config().u32_index_limit = s.u32_limit;
    // A lowered limit is about exercising auto-selection and promotion; the
    // sweep's forced-u32 column would instead turn the overflow into the
    // spec'd error. Run those scenarios in auto mode unless they pin a width.
    if (s.force_index_width == 0) {
      config().force_index_width = ForceIndexWidth::auto_select;
    }
  }
  Descriptor d;
  d.transpose_a = s.ta;
  d.transpose_b = s.tb;
  d.mask_complement = s.comp;
  d.mask_structural = s.structural;
  d.replace = s.replace;

  std::vector<T> observed;
  Result r;

  switch (s.op) {
    case OpKind::mxm: {
      Matrix<T> a = mk_mat(s.a), b = mk_mat(s.b), c = mk_mat(s.cinit);
      Matrix<T> mask = mk_mat(s.mmask);
      mutate_real(a, s.a.muts, observed);
      with_mat_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum, [&](auto acc) {
          with_semiring(s.sr, [&](auto sr) { mxm(c, m, acc, sr, a, b, d); });
        });
      });
      r = read_mat(c, std::move(observed));
      break;
    }
    case OpKind::mxv:
    case OpKind::vxm: {
      Matrix<T> a = mk_mat(s.a);
      Vector<T> u = mk_vec(s.u), w = mk_vec(s.winit);
      Vector<T> mask = mk_vec(s.vmask);
      mutate_real(a, s.a.muts, observed);
      with_vec_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum, [&](auto acc) {
          with_semiring(s.sr, [&](auto sr) {
            if (s.op == OpKind::mxv) {
              mxv(w, m, acc, sr, a, u, d);
            } else {
              vxm(w, m, acc, sr, u, a, d);
            }
          });
        });
      });
      r = read_vec(w, std::move(observed));
      break;
    }
    case OpKind::ewise_add_m:
    case OpKind::ewise_mult_m: {
      Matrix<T> a = mk_mat(s.a), b = mk_mat(s.b), c = mk_mat(s.cinit);
      Matrix<T> mask = mk_mat(s.mmask);
      mutate_real(a, s.a.muts, observed);
      with_mat_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum, [&](auto acc) {
          with_binop(s.binop, [&](auto op) {
            if (s.op == OpKind::ewise_add_m) {
              eWiseAdd(c, m, acc, op, a, b, d);
            } else {
              eWiseMult(c, m, acc, op, a, b, d);
            }
          });
        });
      });
      r = read_mat(c, std::move(observed));
      break;
    }
    case OpKind::ewise_add_v:
    case OpKind::ewise_mult_v: {
      Vector<T> u = mk_vec(s.u), v = mk_vec(s.v), w = mk_vec(s.winit);
      Vector<T> mask = mk_vec(s.vmask);
      mutate_real(u, s.u.muts, observed);
      with_vec_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum, [&](auto acc) {
          with_binop(s.binop, [&](auto op) {
            if (s.op == OpKind::ewise_add_v) {
              eWiseAdd(w, m, acc, op, u, v, d);
            } else {
              eWiseMult(w, m, acc, op, u, v, d);
            }
          });
        });
      });
      r = read_vec(w, std::move(observed));
      break;
    }
    case OpKind::apply_m: {
      Matrix<T> a = mk_mat(s.a), c = mk_mat(s.cinit);
      Matrix<T> mask = mk_mat(s.mmask);
      mutate_real(a, s.a.muts, observed);
      const T th = s.thunk;
      with_mat_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum, [&](auto acc) {
          switch (s.unop) {
            case UnaryKind::identity: apply(c, m, acc, Identity{}, a, d); break;
            case UnaryKind::ainv: apply(c, m, acc, AInv{}, a, d); break;
            case UnaryKind::abs_op: apply(c, m, acc, Abs{}, a, d); break;
            case UnaryKind::one: apply(c, m, acc, One{}, a, d); break;
            case UnaryKind::plus_thunk:
              apply2nd(c, m, acc, Plus{}, a, th, d);
              break;
            case UnaryKind::times_thunk:
              apply2nd(c, m, acc, Times{}, a, th, d);
              break;
            case UnaryKind::kCount: break;
          }
        });
      });
      r = read_mat(c, std::move(observed));
      break;
    }
    case OpKind::apply_v: {
      Vector<T> u = mk_vec(s.u), w = mk_vec(s.winit);
      Vector<T> mask = mk_vec(s.vmask);
      mutate_real(u, s.u.muts, observed);
      const T th = s.thunk;
      with_vec_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum, [&](auto acc) {
          switch (s.unop) {
            case UnaryKind::identity: apply(w, m, acc, Identity{}, u, d); break;
            case UnaryKind::ainv: apply(w, m, acc, AInv{}, u, d); break;
            case UnaryKind::abs_op: apply(w, m, acc, Abs{}, u, d); break;
            case UnaryKind::one: apply(w, m, acc, One{}, u, d); break;
            case UnaryKind::plus_thunk:
              apply2nd(w, m, acc, Plus{}, u, th, d);
              break;
            case UnaryKind::times_thunk:
              apply2nd(w, m, acc, Times{}, u, th, d);
              break;
            case UnaryKind::kCount: break;
          }
        });
      });
      r = read_vec(w, std::move(observed));
      break;
    }
    case OpKind::select_m: {
      Matrix<T> a = mk_mat(s.a), c = mk_mat(s.cinit);
      Matrix<T> mask = mk_mat(s.mmask);
      mutate_real(a, s.a.muts, observed);
      with_mat_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum, [&](auto acc) {
          with_select(s.sel, [&](auto sel) {
            select(c, m, acc, sel, a, s.thunk, d);
          });
        });
      });
      r = read_mat(c, std::move(observed));
      break;
    }
    case OpKind::select_v: {
      Vector<T> u = mk_vec(s.u), w = mk_vec(s.winit);
      Vector<T> mask = mk_vec(s.vmask);
      mutate_real(u, s.u.muts, observed);
      with_vec_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum, [&](auto acc) {
          with_select(s.sel, [&](auto sel) {
            select(w, m, acc, sel, u, s.thunk, d);
          });
        });
      });
      r = read_vec(w, std::move(observed));
      break;
    }
    case OpKind::reduce_m2v: {
      Matrix<T> a = mk_mat(s.a);
      Vector<T> w = mk_vec(s.winit);
      Vector<T> mask = mk_vec(s.vmask);
      mutate_real(a, s.a.muts, observed);
      with_vec_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum, [&](auto acc) {
          with_monoid(s.monoid, [&](auto mono) {
            reduce(w, m, acc, mono, a, d);
          });
        });
      });
      r = read_vec(w, std::move(observed));
      break;
    }
    case OpKind::reduce_m2s: {
      Matrix<T> a = mk_mat(s.a);
      mutate_real(a, s.a.muts, observed);
      T sc = s.scalar;
      with_accum(s.accum, [&](auto acc) {
        with_monoid(s.monoid, [&](auto mono) { reduce(sc, acc, mono, a); });
      });
      r.kind = Result::Kind::scalar;
      r.scalar = sc;
      r.observed = std::move(observed);
      break;
    }
    case OpKind::reduce_v2s: {
      Vector<T> u = mk_vec(s.u);
      mutate_real(u, s.u.muts, observed);
      T sc = s.scalar;
      with_accum(s.accum, [&](auto acc) {
        with_monoid(s.monoid, [&](auto mono) { reduce(sc, acc, mono, u); });
      });
      r.kind = Result::Kind::scalar;
      r.scalar = sc;
      r.observed = std::move(observed);
      break;
    }
    case OpKind::transpose_m: {
      Matrix<T> a = mk_mat(s.a), c = mk_mat(s.cinit);
      Matrix<T> mask = mk_mat(s.mmask);
      mutate_real(a, s.a.muts, observed);
      with_mat_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum,
                   [&](auto acc) { transpose(c, m, acc, a, d); });
      });
      r = read_mat(c, std::move(observed));
      break;
    }
    case OpKind::kron: {
      Matrix<T> a = mk_mat(s.a), b = mk_mat(s.b), c = mk_mat(s.cinit);
      Matrix<T> mask = mk_mat(s.mmask);
      mutate_real(a, s.a.muts, observed);
      with_mat_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum, [&](auto acc) {
          with_binop(s.binop,
                     [&](auto op) { kronecker(c, m, acc, op, a, b, d); });
        });
      });
      r = read_mat(c, std::move(observed));
      break;
    }
    case OpKind::extract_v: {
      Vector<T> u = mk_vec(s.u), w = mk_vec(s.winit);
      Vector<T> mask = mk_vec(s.vmask);
      mutate_real(u, s.u.muts, observed);
      const Indices ix = mk_indices(s.rows_all, s.rows);
      with_vec_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum,
                   [&](auto acc) { extract(w, m, acc, u, ix, d); });
      });
      r = read_vec(w, std::move(observed));
      break;
    }
    case OpKind::extract_m: {
      Matrix<T> a = mk_mat(s.a), c = mk_mat(s.cinit);
      Matrix<T> mask = mk_mat(s.mmask);
      mutate_real(a, s.a.muts, observed);
      const Indices rows = mk_indices(s.rows_all, s.rows);
      const Indices cols = mk_indices(s.cols_all, s.cols);
      with_mat_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum,
                   [&](auto acc) { extract(c, m, acc, a, rows, cols, d); });
      });
      r = read_mat(c, std::move(observed));
      break;
    }
    case OpKind::extract_col: {
      Matrix<T> a = mk_mat(s.a);
      Vector<T> w = mk_vec(s.winit);
      Vector<T> mask = mk_vec(s.vmask);
      mutate_real(a, s.a.muts, observed);
      with_vec_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum,
                   [&](auto acc) { extract_col(w, m, acc, a, s.col, d); });
      });
      r = read_vec(w, std::move(observed));
      break;
    }
    case OpKind::assign_vv: {
      Vector<T> u = mk_vec(s.u), w = mk_vec(s.winit);
      Vector<T> mask = mk_vec(s.vmask);
      mutate_real(u, s.u.muts, observed);
      const Indices ix = mk_indices(s.rows_all, s.rows);
      with_vec_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum,
                   [&](auto acc) { assign(w, m, acc, u, ix, d); });
      });
      r = read_vec(w, std::move(observed));
      break;
    }
    case OpKind::assign_vs: {
      Vector<T> w = mk_vec(s.winit);
      Vector<T> mask = mk_vec(s.vmask);
      const Indices ix = mk_indices(s.rows_all, s.rows);
      with_vec_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum,
                   [&](auto acc) { assign(w, m, acc, s.scalar, ix, d); });
      });
      r = read_vec(w, std::move(observed));
      break;
    }
    case OpKind::assign_ms: {
      Matrix<T> c = mk_mat(s.cinit);
      Matrix<T> mask = mk_mat(s.mmask);
      const Indices rows = mk_indices(s.rows_all, s.rows);
      const Indices cols = mk_indices(s.cols_all, s.cols);
      with_mat_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum, [&](auto acc) {
          assign(c, m, acc, s.scalar, rows, cols, d);
        });
      });
      r = read_mat(c, std::move(observed));
      break;
    }
    case OpKind::assign_mm: {
      Matrix<T> a = mk_mat(s.a), c = mk_mat(s.cinit);
      Matrix<T> mask = mk_mat(s.mmask);
      mutate_real(a, s.a.muts, observed);
      const Indices rows = mk_indices(s.rows_all, s.rows);
      const Indices cols = mk_indices(s.cols_all, s.cols);
      with_mat_mask(s.has_mask, mask, [&](const auto &m) {
        with_accum(s.accum,
                   [&](auto acc) { assign(c, m, acc, a, rows, cols, d); });
      });
      r = read_mat(c, std::move(observed));
      break;
    }
    case OpKind::dup_m: {
      // build with duplicate combining, then GrB_Matrix_dup (copy) and read
      // the copy back through extractTuples.
      Matrix<T> a(s.a.m, s.a.n);
      with_binop(s.binop, [&](auto dup) { a = mk_mat(s.a, dup); });
      Matrix<T> copy = a;
      r = read_mat(copy, std::move(observed));
      break;
    }
    case OpKind::dup_v: {
      Vector<T> u(s.u.n);
      with_binop(s.binop, [&](auto dup) { u = mk_vec(s.u, dup); });
      Vector<T> copy = u;
      r = read_vec(copy, std::move(observed));
      break;
    }
    case OpKind::mutate_m: {
      Matrix<T> a = mk_mat(s.a);
      mutate_real(a, s.a.muts, observed);
      r = read_mat(a, std::move(observed));
      break;
    }
    case OpKind::mutate_v: {
      Vector<T> u = mk_vec(s.u);
      mutate_real(u, s.u.muts, observed);
      r = read_vec(u, std::move(observed));
      break;
    }
    case OpKind::fused_mxv_apply: {
      Matrix<T> a = mk_mat(s.a);
      Vector<T> u = mk_vec(s.u), w = mk_vec(s.winit);
      Vector<T> mask = mk_vec(s.vmask);
      // Companion stamp targets: the copy target seeded from s.v, the const
      // target empty. Bitmap so the single-sweep fast path is reachable
      // (anything else falls back to the composition, also under test).
      Vector<T> stampc = mk_vec(s.v);
      Vector<T> stampk(w.size());
      stampc.to_bitmap();
      stampk.to_bitmap();
      mutate_real(a, s.a.muts, observed);
      with_semiring(s.sr, [&](auto sr) {
        fused_mxv_apply(w, mask, sr, a, u, d, &stampc, &stampk, s.thunk);
      });
      r = read_vec(w, std::move(observed));
      append_vec_observed(r.observed, stampc);
      append_vec_observed(r.observed, stampk);
      break;
    }
    case OpKind::fused_vxm_select: {
      Matrix<T> a = mk_mat(s.a);
      Vector<T> u = mk_vec(s.u), w = mk_vec(s.winit);
      Vector<T> pruned(w.size());
      mutate_real(a, s.a.muts, observed);
      const T lo = std::min(s.thunk, s.scalar);
      const T hi = std::max(s.thunk, s.scalar) + 1;
      with_semiring(s.sr, [&](auto sr) {
        vxm_select_range(w, pruned, sr, u, a, lo, hi, d);
      });
      r = read_vec(w, std::move(observed));
      append_vec_observed(r.observed, pruned);
      break;
    }
    case OpKind::kCount: break;
  }
  return r;
}

// ---------------------------------------------------------------------------
// run_oracle
// ---------------------------------------------------------------------------

namespace {

OBinary oracle_binop(BinOpKind k) {
  switch (k) {
    case BinOpKind::plus: return [](Value x, Value y) { return x + y; };
    case BinOpKind::times: return [](Value x, Value y) { return x * y; };
    case BinOpKind::min:
      return [](Value x, Value y) { return y < x ? y : x; };
    case BinOpKind::max:
      return [](Value x, Value y) { return x < y ? y : x; };
    case BinOpKind::first: return [](Value x, Value) { return x; };
    case BinOpKind::second: return [](Value, Value y) { return y; };
    case BinOpKind::minus: return [](Value x, Value y) { return x - y; };
    case BinOpKind::kCount: break;
  }
  return [](Value x, Value) { return x; };
}

OAccum oracle_accum(AccumKind k) {
  switch (k) {
    case AccumKind::none: return std::nullopt;
    case AccumKind::plus: return OBinary([](Value x, Value y) { return x + y; });
    case AccumKind::min:
      return OBinary([](Value x, Value y) { return y < x ? y : x; });
    case AccumKind::max:
      return OBinary([](Value x, Value y) { return x < y ? y : x; });
    case AccumKind::second: return OBinary([](Value, Value y) { return y; });
    case AccumKind::kCount: break;
  }
  return std::nullopt;
}

struct OracleSemiring {
  OBinary add;
  OMultiply mult;
};

OracleSemiring oracle_semiring(SemiringKind k) {
  auto plus = [](Value x, Value y) { return x + y; };
  switch (k) {
    case SemiringKind::plus_times:
      return {plus, [](Value a, Value b, Index, Index, Index) { return a * b; }};
    case SemiringKind::min_plus:
      return {[](Value x, Value y) { return y < x ? y : x; },
              [](Value a, Value b, Index, Index, Index) { return a + b; }};
    case SemiringKind::plus_second:
      return {plus, [](Value, Value b, Index, Index, Index) { return b; }};
    case SemiringKind::plus_pair:
      return {plus, [](Value, Value, Index, Index, Index) { return Value{1}; }};
    case SemiringKind::lor_land:
      return {[](Value x, Value y) { return Value(x != 0 || y != 0); },
              [](Value a, Value b, Index, Index, Index) {
                return Value(a != 0 && b != 0);
              }};
    case SemiringKind::max_first:
      return {[](Value x, Value y) { return x < y ? y : x; },
              [](Value a, Value, Index, Index, Index) { return a; }};
    case SemiringKind::any_secondi:
      // `any` monoid: the fold keeps the first value (add returns the
      // accumulator); multiply is the positional SecondI (the inner index k).
      return {[](Value x, Value) { return x; },
              [](Value, Value, Index, Index k, Index) {
                return static_cast<Value>(k);
              }};
    case SemiringKind::kCount: break;
  }
  return {plus, [](Value a, Value b, Index, Index, Index) { return a * b; }};
}

Value oracle_identity(MonoidKind k) {
  switch (k) {
    case MonoidKind::plus: return 0;
    case MonoidKind::min: return std::numeric_limits<Value>::max();
    case MonoidKind::max: return std::numeric_limits<Value>::lowest();
    case MonoidKind::kCount: break;
  }
  return 0;
}

OBinary oracle_monoid(MonoidKind k) {
  switch (k) {
    case MonoidKind::plus: return [](Value x, Value y) { return x + y; };
    case MonoidKind::min:
      return [](Value x, Value y) { return y < x ? y : x; };
    case MonoidKind::max:
      return [](Value x, Value y) { return x < y ? y : x; };
    case MonoidKind::kCount: break;
  }
  return [](Value x, Value y) { return x + y; };
}

OUnary oracle_unary(UnaryKind k, Value thunk) {
  switch (k) {
    case UnaryKind::identity: return [](Value x) { return x; };
    case UnaryKind::ainv: return [](Value x) { return -x; };
    case UnaryKind::abs_op: return [](Value x) { return x < 0 ? -x : x; };
    case UnaryKind::one: return [](Value) { return Value{1}; };
    case UnaryKind::plus_thunk:
      return [thunk](Value x) { return x + thunk; };
    case UnaryKind::times_thunk:
      return [thunk](Value x) { return x * thunk; };
    case UnaryKind::kCount: break;
  }
  return [](Value x) { return x; };
}

// Transcribed from grb/ops.hpp index-unary predicates — including the
// unsigned thunk cast of RowIndexLt/ColIndexLt, which is part of the spec'd
// behavior (a negative thunk wraps and keeps everything).
OSelect oracle_select(SelectKind k) {
  switch (k) {
    case SelectKind::tril:
      return [](Value, Index i, Index j, Value th) {
        return static_cast<std::int64_t>(j) <=
               static_cast<std::int64_t>(i) + th;
      };
    case SelectKind::triu:
      return [](Value, Index i, Index j, Value th) {
        return static_cast<std::int64_t>(j) >=
               static_cast<std::int64_t>(i) + th;
      };
    case SelectKind::diag:
      return [](Value, Index i, Index j, Value th) {
        return static_cast<std::int64_t>(j) ==
               static_cast<std::int64_t>(i) + th;
      };
    case SelectKind::offdiag:
      return [](Value, Index i, Index j, Value th) {
        return static_cast<std::int64_t>(j) !=
               static_cast<std::int64_t>(i) + th;
      };
    case SelectKind::value_ne:
      return [](Value x, Index, Index, Value th) { return x != th; };
    case SelectKind::value_le:
      return [](Value x, Index, Index, Value th) { return x <= th; };
    case SelectKind::row_lt:
      return [](Value, Index i, Index, Value th) {
        return i < static_cast<Index>(th);
      };
    case SelectKind::col_lt:
      return [](Value, Index, Index j, Value th) {
        return j < static_cast<Index>(th);
      };
    case SelectKind::kCount: break;
  }
  return [](Value, Index, Index, Value) { return true; };
}

RefMat mk_ref(const MatData &d, const OBinary &dup) {
  return oracle::build_mat(d.m, d.n, d.ri, d.ci, d.vv, dup);
}

RefVec mk_ref(const VecData &d, const OBinary &dup) {
  return oracle::build_vec(d.n, d.ix, d.vv, dup);
}

OBinary last_wins() {
  return [](Value, Value y) { return y; };
}

void mutate_ref(RefMat &a, const std::vector<Mutation> &muts,
                std::vector<Value> &observed) {
  for (const auto &mu : muts) {
    if (mu.del) {
      a.remove(mu.i, mu.j);
    } else if (mu.add) {
      auto v = a.get(mu.i, mu.j);
      a.set(mu.i, mu.j, v ? *v + mu.v : mu.v);
    } else {
      a.set(mu.i, mu.j, mu.v);
    }
    switch (mu.probe) {
      case 1: observed.push_back(static_cast<Value>(a.e.size())); break;
      case 2: {
        auto v = a.get(mu.i, mu.j);
        observed.push_back(v ? *v : kAbsent);
        break;
      }
      case 3: {
        Value sum = 0;
        for (const auto &[ij, x] : a.e) sum += x;
        observed.push_back(sum);
        break;
      }
      default: break;
    }
  }
}

void mutate_ref(RefVec &u, const std::vector<Mutation> &muts,
                std::vector<Value> &observed) {
  for (const auto &mu : muts) {
    if (mu.del) {
      u.remove(mu.i);
    } else if (mu.add) {
      auto v = u.get(mu.i);
      u.set(mu.i, v ? *v + mu.v : mu.v);
    } else {
      u.set(mu.i, mu.v);
    }
    switch (mu.probe) {
      case 1: observed.push_back(static_cast<Value>(u.e.size())); break;
      case 2: {
        auto v = u.get(mu.i);
        observed.push_back(v ? *v : kAbsent);
        break;
      }
      case 3: {
        Value sum = 0;
        for (const auto &[i, x] : u.e) sum += x;
        observed.push_back(sum);
        break;
      }
      default: break;
    }
  }
}

Result read_ref(const RefMat &a, std::vector<Value> observed) {
  Result r;
  r.kind = Result::Kind::matrix;
  r.m = a.m;
  r.n = a.n;
  for (const auto &[ij, v] : a.e) r.mat.emplace_back(ij.first, ij.second, v);
  r.observed = std::move(observed);
  return r;
}

Result read_ref(const RefVec &u, std::vector<Value> observed) {
  Result r;
  r.kind = Result::Kind::vector;
  r.n = u.n;
  for (const auto &[i, v] : u.e) r.vec.emplace_back(i, v);
  r.observed = std::move(observed);
  return r;
}

oracle::OIndices mk_oindices(bool all, const std::vector<Index> &list) {
  oracle::OIndices ix;
  ix.all = all;
  ix.list = list;
  return ix;
}

/// Oracle twin of append_vec_observed: nvals then ascending (index, value)
/// pairs (std::map iterates in index order already).
void append_ref_observed(std::vector<Value> &obs, const RefVec &x) {
  obs.push_back(static_cast<Value>(x.e.size()));
  for (const auto &[i, v] : x.e) {
    obs.push_back(static_cast<Value>(i));
    obs.push_back(v);
  }
}

}  // namespace

Result run_oracle(const Scenario &s) {
  ODesc d;
  d.transpose_a = s.ta;
  d.transpose_b = s.tb;
  d.complement = s.comp;
  d.structural = s.structural;
  d.replace = s.replace;

  const OAccum accum = oracle_accum(s.accum);
  const OBinary lw = last_wins();
  std::vector<Value> observed;

  RefMat a = mk_ref(s.a, lw), b = mk_ref(s.b, lw);
  RefMat c = mk_ref(s.cinit, lw);
  RefMat mmask = mk_ref(s.mmask, lw);
  RefVec u = mk_ref(s.u, lw), v = mk_ref(s.v, lw);
  RefVec w = mk_ref(s.winit, lw);
  RefVec vmask = mk_ref(s.vmask, lw);
  const RefMat *mmp = s.has_mask ? &mmask : nullptr;
  const RefVec *vmp = s.has_mask ? &vmask : nullptr;

  switch (s.op) {
    case OpKind::mxm: {
      mutate_ref(a, s.a.muts, observed);
      auto sr = oracle_semiring(s.sr);
      oracle::mxm(c, mmp, accum, sr.add, sr.mult, a, b, d);
      return read_ref(c, std::move(observed));
    }
    case OpKind::mxv: {
      mutate_ref(a, s.a.muts, observed);
      auto sr = oracle_semiring(s.sr);
      oracle::mxv(w, vmp, accum, sr.add, sr.mult, a, u, d);
      return read_ref(w, std::move(observed));
    }
    case OpKind::vxm: {
      mutate_ref(a, s.a.muts, observed);
      auto sr = oracle_semiring(s.sr);
      oracle::vxm(w, vmp, accum, sr.add, sr.mult, u, a, d);
      return read_ref(w, std::move(observed));
    }
    case OpKind::ewise_add_m:
    case OpKind::ewise_mult_m: {
      mutate_ref(a, s.a.muts, observed);
      oracle::ewise_mat(c, mmp, accum, oracle_binop(s.binop), a, b,
                        s.op == OpKind::ewise_add_m, d);
      return read_ref(c, std::move(observed));
    }
    case OpKind::ewise_add_v:
    case OpKind::ewise_mult_v: {
      mutate_ref(u, s.u.muts, observed);
      oracle::ewise_vec(w, vmp, accum, oracle_binop(s.binop), u, v,
                        s.op == OpKind::ewise_add_v, d);
      return read_ref(w, std::move(observed));
    }
    case OpKind::apply_m: {
      mutate_ref(a, s.a.muts, observed);
      oracle::apply_mat(c, mmp, accum, oracle_unary(s.unop, s.thunk), a, d);
      return read_ref(c, std::move(observed));
    }
    case OpKind::apply_v: {
      mutate_ref(u, s.u.muts, observed);
      oracle::apply_vec(w, vmp, accum, oracle_unary(s.unop, s.thunk), u, d);
      return read_ref(w, std::move(observed));
    }
    case OpKind::select_m: {
      mutate_ref(a, s.a.muts, observed);
      oracle::select_mat(c, mmp, accum, oracle_select(s.sel), a, s.thunk, d);
      return read_ref(c, std::move(observed));
    }
    case OpKind::select_v: {
      mutate_ref(u, s.u.muts, observed);
      oracle::select_vec(w, vmp, accum, oracle_select(s.sel), u, s.thunk, d);
      return read_ref(w, std::move(observed));
    }
    case OpKind::reduce_m2v: {
      mutate_ref(a, s.a.muts, observed);
      oracle::reduce_mat_to_vec(w, vmp, accum, oracle_monoid(s.monoid), a, d);
      return read_ref(w, std::move(observed));
    }
    case OpKind::reduce_m2s: {
      mutate_ref(a, s.a.muts, observed);
      Result r;
      r.kind = Result::Kind::scalar;
      r.scalar = oracle::reduce_mat_to_scalar(
          s.scalar, accum, oracle_monoid(s.monoid),
          oracle_identity(s.monoid), a);
      r.observed = std::move(observed);
      return r;
    }
    case OpKind::reduce_v2s: {
      mutate_ref(u, s.u.muts, observed);
      Result r;
      r.kind = Result::Kind::scalar;
      r.scalar = oracle::reduce_vec_to_scalar(
          s.scalar, accum, oracle_monoid(s.monoid),
          oracle_identity(s.monoid), u);
      r.observed = std::move(observed);
      return r;
    }
    case OpKind::transpose_m: {
      mutate_ref(a, s.a.muts, observed);
      oracle::transpose(c, mmp, accum, a, d);
      return read_ref(c, std::move(observed));
    }
    case OpKind::kron: {
      mutate_ref(a, s.a.muts, observed);
      oracle::kronecker(c, mmp, accum, oracle_binop(s.binop), a, b, d);
      return read_ref(c, std::move(observed));
    }
    case OpKind::extract_v: {
      mutate_ref(u, s.u.muts, observed);
      oracle::extract_vec(w, vmp, accum, u, mk_oindices(s.rows_all, s.rows),
                          d);
      return read_ref(w, std::move(observed));
    }
    case OpKind::extract_m: {
      mutate_ref(a, s.a.muts, observed);
      oracle::extract_mat(c, mmp, accum, a, mk_oindices(s.rows_all, s.rows),
                          mk_oindices(s.cols_all, s.cols), d);
      return read_ref(c, std::move(observed));
    }
    case OpKind::extract_col: {
      mutate_ref(a, s.a.muts, observed);
      oracle::extract_col(w, vmp, accum, a, s.col, d);
      return read_ref(w, std::move(observed));
    }
    case OpKind::assign_vv: {
      mutate_ref(u, s.u.muts, observed);
      oracle::assign_vec(w, vmp, accum, u, mk_oindices(s.rows_all, s.rows),
                         d);
      return read_ref(w, std::move(observed));
    }
    case OpKind::assign_vs: {
      oracle::assign_vec_scalar(w, vmp, accum, s.scalar,
                                mk_oindices(s.rows_all, s.rows), d);
      return read_ref(w, std::move(observed));
    }
    case OpKind::assign_ms: {
      oracle::assign_mat_scalar(c, mmp, accum, s.scalar,
                                mk_oindices(s.rows_all, s.rows),
                                mk_oindices(s.cols_all, s.cols), d);
      return read_ref(c, std::move(observed));
    }
    case OpKind::assign_mm: {
      mutate_ref(a, s.a.muts, observed);
      oracle::assign_mat(c, mmp, accum, a, mk_oindices(s.rows_all, s.rows),
                         mk_oindices(s.cols_all, s.cols), d);
      return read_ref(c, std::move(observed));
    }
    case OpKind::dup_m: {
      RefMat built = mk_ref(s.a, oracle_binop(s.binop));
      return read_ref(built, std::move(observed));
    }
    case OpKind::dup_v: {
      RefVec built = mk_ref(s.u, oracle_binop(s.binop));
      return read_ref(built, std::move(observed));
    }
    case OpKind::mutate_m: {
      mutate_ref(a, s.a.muts, observed);
      return read_ref(a, std::move(observed));
    }
    case OpKind::mutate_v: {
      mutate_ref(u, s.u.muts, observed);
      return read_ref(u, std::move(observed));
    }
    case OpKind::fused_mxv_apply: {
      // The unfused composition the fused kernel must match bit-for-bit:
      // masked mxv, then copy⟨s(w)⟩ = w and konst⟨s(w)⟩ = thunk.
      mutate_ref(a, s.a.muts, observed);
      auto sr = oracle_semiring(s.sr);
      oracle::mxv(w, vmp, accum, sr.add, sr.mult, a, u, d);
      RefVec stampc = v;  // seeded from s.v, like the real side
      RefVec stampk(w.n);
      for (const auto &[i, x] : w.e) {
        stampc.set(i, x);
        stampk.set(i, s.thunk);
      }
      Result r = read_ref(w, std::move(observed));
      append_ref_observed(r.observed, stampc);
      append_ref_observed(r.observed, stampk);
      return r;
    }
    case OpKind::fused_vxm_select: {
      // Unmasked vxm, then the [lo, hi) window prune into a companion.
      mutate_ref(a, s.a.muts, observed);
      auto sr = oracle_semiring(s.sr);
      oracle::vxm(w, vmp, accum, sr.add, sr.mult, u, a, d);
      const Value lo = std::min(s.thunk, s.scalar);
      const Value hi = std::max(s.thunk, s.scalar) + 1;
      RefVec pruned(w.n);
      for (const auto &[i, x] : w.e) {
        if (x >= lo && x < hi) pruned.set(i, x);
      }
      Result r = read_ref(w, std::move(observed));
      append_ref_observed(r.observed, pruned);
      return r;
    }
    case OpKind::kCount: break;
  }
  return {};
}

// ---------------------------------------------------------------------------
// Comparison + mismatch reporting
// ---------------------------------------------------------------------------

std::string Mismatch::to_string() const {
  std::ostringstream os;
  os << "conformance mismatch: op=" << op_name(scenario.op)
     << " seed=" << scenario.seed << " config=" << rc.name() << "\n";
  if (!note.empty()) os << note << "\n";
  os << "--- oracle (expected) ---\n" << expected.to_string();
  os << "--- kernels (actual) ---\n" << actual.to_string();
  os << "--- repro ---\n" << serialize(scenario);
  return os.str();
}

std::optional<Mismatch> check_one(const Scenario &s, const RunConfig &rc,
                                  const CorruptHook *corrupt) {
  Mismatch mm;
  mm.scenario = s;
  mm.rc = rc;
  try {
    mm.expected = run_oracle(s);
  } catch (const std::exception &e) {
    mm.note = std::string("oracle threw: ") + e.what();
    return mm;
  }
  try {
    mm.actual = run_real(s, rc);
  } catch (const std::exception &e) {
    mm.note = std::string("real side threw: ") + e.what();
    return mm;
  }
  if (corrupt && *corrupt) (*corrupt)(s, rc, mm.actual);
  if (mm.expected == mm.actual) return std::nullopt;
  return mm;
}

std::optional<Mismatch> check_sweep(const Scenario &s,
                                    std::uint64_t *instances,
                                    const CorruptHook *corrupt) {
  for (const RunConfig &rc : sweep_configs()) {
    if (instances) ++*instances;
    auto mm = check_one(s, rc, corrupt);
    if (mm) return mm;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------------

namespace {

/// Try one candidate edit: normalize, keep if the failure persists.
bool accept(Scenario &s, Scenario cand, const FailPred &fails) {
  normalize(cand);
  if (!fails(cand)) return false;
  s = std::move(cand);
  return true;
}

/// Drop ranges from a matrix's tuple list: halves first, then singles.
bool shrink_mat_tuples(Scenario &s, MatData Scenario::*field,
                       const FailPred &fails) {
  bool improved = false;
  auto erase_range = [&](std::size_t lo, std::size_t hi) {
    Scenario cand = s;
    MatData &d = cand.*field;
    d.ri.erase(d.ri.begin() + lo, d.ri.begin() + hi);
    d.ci.erase(d.ci.begin() + lo, d.ci.begin() + hi);
    d.vv.erase(d.vv.begin() + lo, d.vv.begin() + hi);
    return accept(s, std::move(cand), fails);
  };
  // Halves.
  while ((s.*field).ri.size() > 1) {
    const std::size_t n = (s.*field).ri.size();
    if (erase_range(n / 2, n) || erase_range(0, n / 2)) {
      improved = true;
      continue;
    }
    break;
  }
  // Singles.
  for (std::size_t p = 0; p < (s.*field).ri.size();) {
    if (erase_range(p, p + 1)) {
      improved = true;
    } else {
      ++p;
    }
  }
  return improved;
}

bool shrink_vec_tuples(Scenario &s, VecData Scenario::*field,
                       const FailPred &fails) {
  bool improved = false;
  auto erase_range = [&](std::size_t lo, std::size_t hi) {
    Scenario cand = s;
    VecData &d = cand.*field;
    d.ix.erase(d.ix.begin() + lo, d.ix.begin() + hi);
    d.vv.erase(d.vv.begin() + lo, d.vv.begin() + hi);
    return accept(s, std::move(cand), fails);
  };
  while ((s.*field).ix.size() > 1) {
    const std::size_t n = (s.*field).ix.size();
    if (erase_range(n / 2, n) || erase_range(0, n / 2)) {
      improved = true;
      continue;
    }
    break;
  }
  for (std::size_t p = 0; p < (s.*field).ix.size();) {
    if (erase_range(p, p + 1)) {
      improved = true;
    } else {
      ++p;
    }
  }
  return improved;
}

template <typename Elem>
bool shrink_plain_list(Scenario &s, std::vector<Elem> Scenario::*field,
                       const FailPred &fails) {
  bool improved = false;
  auto erase_range = [&](std::size_t lo, std::size_t hi) {
    Scenario cand = s;
    auto &l = cand.*field;
    l.erase(l.begin() + lo, l.begin() + hi);
    return accept(s, std::move(cand), fails);
  };
  while ((s.*field).size() > 1) {
    const std::size_t n = (s.*field).size();
    if (erase_range(n / 2, n) || erase_range(0, n / 2)) {
      improved = true;
      continue;
    }
    break;
  }
  for (std::size_t p = 0; p < (s.*field).size();) {
    if (erase_range(p, p + 1)) {
      improved = true;
    } else {
      ++p;
    }
  }
  return improved;
}

bool shrink_muts(Scenario &s, const FailPred &fails) {
  bool improved = false;
  for (auto which : {0, 1}) {
    auto erase_range = [&](std::size_t lo, std::size_t hi) {
      Scenario cand = s;
      auto &muts = which == 0 ? cand.a.muts : cand.u.muts;
      muts.erase(muts.begin() + lo, muts.begin() + hi);
      return accept(s, std::move(cand), fails);
    };
    auto size = [&] { return which == 0 ? s.a.muts.size() : s.u.muts.size(); };
    while (size() > 1) {
      const std::size_t n = size();
      if (erase_range(n / 2, n) || erase_range(0, n / 2)) {
        improved = true;
        continue;
      }
      break;
    }
    for (std::size_t p = 0; p < size();) {
      if (erase_range(p, p + 1)) {
        improved = true;
      } else {
        ++p;
      }
    }
  }
  return improved;
}

bool shrink_dims(Scenario &s, const FailPred &fails) {
  bool improved = false;
  for (auto field : {&Scenario::dm, &Scenario::dk, &Scenario::dn}) {
    // Halve while it still fails, then step down by one.
    while (s.*field > 1) {
      Scenario cand = s;
      cand.*field = std::max<Index>(1, cand.*field / 2);
      if (!accept(s, std::move(cand), fails)) break;
      improved = true;
    }
    while (s.*field > 1) {
      Scenario cand = s;
      cand.*field -= 1;
      if (!accept(s, std::move(cand), fails)) break;
      improved = true;
    }
  }
  return improved;
}

bool clear_flags(Scenario &s, const FailPred &fails) {
  bool improved = false;
  auto try_set = [&](auto set) {
    Scenario cand = s;
    set(cand);
    if (accept(s, std::move(cand), fails)) improved = true;
  };
  if (s.has_mask) try_set([](Scenario &c) { c.has_mask = false; });
  if (s.replace) try_set([](Scenario &c) { c.replace = false; });
  if (s.comp) try_set([](Scenario &c) { c.comp = false; });
  if (s.structural) try_set([](Scenario &c) { c.structural = false; });
  if (s.ta) try_set([](Scenario &c) { c.ta = false; });
  if (s.tb) try_set([](Scenario &c) { c.tb = false; });
  if (s.accum != AccumKind::none) {
    try_set([](Scenario &c) { c.accum = AccumKind::none; });
  }
  if (!s.rows_all) try_set([](Scenario &c) { c.rows_all = true; });
  if (!s.cols_all) try_set([](Scenario &c) { c.cols_all = true; });
  if (s.force_index_width != 0) {
    try_set([](Scenario &c) { c.force_index_width = 0; });
  }
  if (s.u32_limit != 0) try_set([](Scenario &c) { c.u32_limit = 0; });
  return improved;
}

}  // namespace

Scenario minimize(Scenario s, const FailPred &fails) {
  normalize(s);
  if (!fails(s)) return s;  // caller's predicate must hold at the start
  bool improved = true;
  while (improved) {
    improved = false;
    improved |= shrink_dims(s, fails);
    improved |= clear_flags(s, fails);
    improved |= shrink_muts(s, fails);
    improved |= shrink_mat_tuples(s, &Scenario::a, fails);
    improved |= shrink_mat_tuples(s, &Scenario::b, fails);
    improved |= shrink_mat_tuples(s, &Scenario::cinit, fails);
    improved |= shrink_mat_tuples(s, &Scenario::mmask, fails);
    improved |= shrink_vec_tuples(s, &Scenario::u, fails);
    improved |= shrink_vec_tuples(s, &Scenario::v, fails);
    improved |= shrink_vec_tuples(s, &Scenario::winit, fails);
    improved |= shrink_vec_tuples(s, &Scenario::vmask, fails);
    improved |= shrink_plain_list(s, &Scenario::rows, fails);
    improved |= shrink_plain_list(s, &Scenario::cols, fails);
  }
  return s;
}

Scenario minimize_against(const Scenario &s, const RunConfig &rc,
                          const CorruptHook *corrupt) {
  return minimize(s, [&](const Scenario &cand) {
    return check_one(cand, rc, corrupt).has_value();
  });
}

// ---------------------------------------------------------------------------
// Fuzz loop + corpus replay
// ---------------------------------------------------------------------------

FuzzReport fuzz(const FuzzOptions &opt) {
  FuzzReport rep;
  const auto start = std::chrono::steady_clock::now();
  const CorruptHook *hook = opt.corrupt ? &opt.corrupt : nullptr;
  for (std::uint64_t seed = opt.seed;; ++seed) {
    if (opt.max_scenarios && rep.scenarios >= opt.max_scenarios) break;
    if (opt.seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed >= opt.seconds) break;
    }
    if (!opt.max_scenarios && opt.seconds <= 0) break;  // no budget: no work
    Scenario s = generate(seed);
    ++rep.scenarios;
    auto mm = check_sweep(s, &rep.instances, hook);
    if (!mm) continue;
    rep.ok = false;
    rep.failing_seed = seed;
    if (opt.shrink) {
      Scenario small = minimize_against(mm->scenario, mm->rc, hook);
      auto small_mm = check_one(small, mm->rc, hook);
      rep.shrunk = small;
      rep.repro = serialize(small);
      rep.detail = small_mm ? small_mm->to_string() : mm->to_string();
    } else {
      rep.shrunk = mm->scenario;
      rep.repro = serialize(mm->scenario);
      rep.detail = mm->to_string();
    }
    break;
  }
  return rep;
}

std::optional<Mismatch> replay_file(const std::string &path,
                                    std::string *error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    Mismatch mm;
    mm.note = "cannot open " + path;
    return mm;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string perr;
  auto s = parse(buf.str(), &perr);
  if (!s) {
    if (error) *error = path + ": " + perr;
    Mismatch mm;
    mm.note = path + ": parse error: " + perr;
    return mm;
  }
  if (error) error->clear();
  return check_sweep(*s);
}

ReplayOutcome replay_corpus(const std::string &dir) {
  ReplayOutcome out;
  std::error_code ec;
  std::vector<std::filesystem::path> files;
  for (const auto &entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".repro") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto &path : files) {
    ++out.files;
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string perr;
    auto s = parse(buf.str(), &perr);
    if (!s) {
      ++out.failures;
      out.detail += path.string() + ": parse error: " + perr + "\n";
      continue;
    }
    auto mm = check_sweep(*s, &out.instances);
    if (mm) {
      ++out.failures;
      out.detail += path.string() + ":\n" + mm->to_string() + "\n";
    }
  }
  return out;
}

}  // namespace grb::testing

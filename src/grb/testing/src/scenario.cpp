// scenario.cpp — serialization, normalization, and seeded generation of
// conformance scenarios (see grb/testing/scenario.hpp).
#include "grb/testing/scenario.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>
#include <unordered_set>

namespace grb::testing {

// ---------------------------------------------------------------------------
// Enum <-> name tables (serialized by name; append-only).
// ---------------------------------------------------------------------------

namespace {

constexpr std::array<const char *, static_cast<int>(OpKind::kCount)> kOpNames{
    "mxm",        "mxv",        "vxm",         "ewise_add_m", "ewise_mult_m",
    "ewise_add_v", "ewise_mult_v", "apply_m",   "apply_v",     "select_m",
    "select_v",   "reduce_m2v", "reduce_m2s",  "reduce_v2s",  "transpose_m",
    "kron",       "extract_v",  "extract_m",   "extract_col", "assign_vv",
    "assign_vs",  "assign_ms",  "assign_mm",   "dup_m",       "dup_v",
    "mutate_m",   "mutate_v",   "fused_mxv_apply", "fused_vxm_select"};

constexpr std::array<const char *, static_cast<int>(AccumKind::kCount)>
    kAccumNames{"none", "plus", "min", "max", "second"};

constexpr std::array<const char *, static_cast<int>(SemiringKind::kCount)>
    kSrNames{"plus_times", "min_plus",  "plus_second", "plus_pair",
             "lor_land",   "max_first", "any_secondi"};

constexpr std::array<const char *, static_cast<int>(MonoidKind::kCount)>
    kMonoidNames{"plus", "min", "max"};

constexpr std::array<const char *, static_cast<int>(BinOpKind::kCount)>
    kBinOpNames{"plus", "times", "min", "max", "first", "second", "minus"};

constexpr std::array<const char *, static_cast<int>(UnaryKind::kCount)>
    kUnaryNames{"identity", "ainv", "abs", "one", "plus_thunk", "times_thunk"};

constexpr std::array<const char *, static_cast<int>(SelectKind::kCount)>
    kSelectNames{"tril",     "triu",     "diag",   "offdiag",
                 "value_ne", "value_le", "row_lt", "col_lt"};

constexpr std::array<const char *, static_cast<int>(MatFmt::kCount)>
    kMatFmtNames{"csr", "hypersparse", "bitmap"};

constexpr std::array<const char *, static_cast<int>(VecFmt::kCount)>
    kVecFmtNames{"sparse", "bitmap"};

template <typename E, std::size_t N>
std::optional<E> from_name(const std::array<const char *, N> &names,
                           const std::string &s) {
  for (std::size_t i = 0; i < N; ++i) {
    if (s == names[i]) return static_cast<E>(i);
  }
  return std::nullopt;
}

}  // namespace

const char *op_name(OpKind op) { return kOpNames[static_cast<int>(op)]; }

// ---------------------------------------------------------------------------
// Per-op feature table: which scenario fields an operation consumes. Used by
// normalize() to canonicalize unused fields (stable serialization, honest
// repro files) and by the minimizer to know what is worth perturbing.
// ---------------------------------------------------------------------------

namespace {

struct OpTraits {
  bool uses_a = false, uses_b = false, uses_u = false, uses_v = false;
  bool mat_out = false, vec_out = false, scalar_out = false;
  bool uses_sr = false, uses_monoid = false, uses_binop = false;
  bool uses_unop = false, uses_sel = false;
  bool uses_rows = false, uses_cols = false;
  bool uses_scalar = false, uses_thunk = false, uses_col = false;
  bool uses_ta = false, uses_tb = false;
  bool uses_mask = false, uses_accum = false;
  bool rows_unique = false, cols_unique = false;
  bool keep_dup_tuples = false;  // dup_m / dup_v exercise duplicate combining
  bool probes = false;           // mutation prologue may carry probes
};

OpTraits traits(OpKind op) {
  OpTraits t;
  switch (op) {
    case OpKind::mxm:
      t.uses_a = t.uses_b = t.mat_out = true;
      t.uses_sr = t.uses_ta = t.uses_tb = t.uses_mask = t.uses_accum = true;
      break;
    case OpKind::mxv:
    case OpKind::vxm:
      t.uses_a = t.uses_u = t.vec_out = true;
      t.uses_sr = t.uses_ta = t.uses_mask = t.uses_accum = true;
      break;
    case OpKind::ewise_add_m:
    case OpKind::ewise_mult_m:
      t.uses_a = t.uses_b = t.mat_out = true;
      t.uses_binop = t.uses_mask = t.uses_accum = true;
      break;
    case OpKind::ewise_add_v:
    case OpKind::ewise_mult_v:
      t.uses_u = t.uses_v = t.vec_out = true;
      t.uses_binop = t.uses_mask = t.uses_accum = true;
      break;
    case OpKind::apply_m:
      t.uses_a = t.mat_out = true;
      t.uses_unop = t.uses_thunk = t.uses_mask = t.uses_accum = true;
      break;
    case OpKind::apply_v:
      t.uses_u = t.vec_out = true;
      t.uses_unop = t.uses_thunk = t.uses_mask = t.uses_accum = true;
      break;
    case OpKind::select_m:
      t.uses_a = t.mat_out = true;
      t.uses_sel = t.uses_thunk = t.uses_mask = t.uses_accum = true;
      break;
    case OpKind::select_v:
      t.uses_u = t.vec_out = true;
      t.uses_sel = t.uses_thunk = t.uses_mask = t.uses_accum = true;
      break;
    case OpKind::reduce_m2v:
      t.uses_a = t.vec_out = true;
      t.uses_monoid = t.uses_ta = t.uses_mask = t.uses_accum = true;
      break;
    case OpKind::reduce_m2s:
      t.uses_a = t.scalar_out = true;
      t.uses_monoid = t.uses_scalar = t.uses_accum = true;
      break;
    case OpKind::reduce_v2s:
      t.uses_u = t.scalar_out = true;
      t.uses_monoid = t.uses_scalar = t.uses_accum = true;
      break;
    case OpKind::transpose_m:
      t.uses_a = t.mat_out = true;
      t.uses_ta = t.uses_mask = t.uses_accum = true;
      break;
    case OpKind::kron:
      t.uses_a = t.uses_b = t.mat_out = true;
      t.uses_binop = t.uses_mask = t.uses_accum = true;
      break;
    case OpKind::extract_v:
      t.uses_u = t.vec_out = true;
      t.uses_rows = t.uses_mask = t.uses_accum = true;
      break;
    case OpKind::extract_m:
      t.uses_a = t.mat_out = true;
      t.uses_rows = t.uses_cols = t.uses_ta = t.uses_mask = t.uses_accum =
          true;
      break;
    case OpKind::extract_col:
      t.uses_a = t.vec_out = true;
      t.uses_col = t.uses_ta = t.uses_mask = t.uses_accum = true;
      break;
    case OpKind::assign_vv:
      t.uses_u = t.vec_out = true;
      t.uses_rows = t.uses_mask = t.uses_accum = true;
      break;
    case OpKind::assign_vs:
      t.vec_out = true;
      t.uses_rows = t.uses_scalar = t.uses_mask = t.uses_accum = true;
      break;
    case OpKind::assign_ms:
      t.mat_out = true;
      t.uses_rows = t.uses_cols = t.uses_scalar = t.uses_mask = t.uses_accum =
          true;
      break;
    case OpKind::assign_mm:
      t.uses_a = t.mat_out = true;
      t.uses_rows = t.uses_cols = t.uses_mask = t.uses_accum = true;
      t.rows_unique = t.cols_unique = true;
      break;
    case OpKind::dup_m:
      t.uses_a = t.mat_out = true;
      t.uses_binop = t.keep_dup_tuples = true;
      break;
    case OpKind::dup_v:
      t.uses_u = t.vec_out = true;
      t.uses_binop = t.keep_dup_tuples = true;
      break;
    case OpKind::mutate_m:
      t.uses_a = t.mat_out = true;
      t.probes = true;
      break;
    case OpKind::mutate_v:
      t.uses_u = t.vec_out = true;
      t.probes = true;
      break;
    case OpKind::fused_mxv_apply:
      // w⟨mask⟩ = A ⊕.⊗ u plus the two stamp companions: v seeds the
      // stamp-copy target, thunk is the stamp-const value. Mask mandatory
      // (the entry point takes a vector mask); accum fixed at NoAccum.
      t.uses_a = t.uses_u = t.uses_v = t.vec_out = true;
      t.uses_sr = t.uses_ta = t.uses_mask = t.uses_thunk = true;
      break;
    case OpKind::fused_vxm_select:
      // w = u ⊕.⊗ A plus the [lo, hi) prune companion; thunk/scalar span
      // the window. Unmasked, NoAccum by construction.
      t.uses_a = t.uses_u = t.vec_out = true;
      t.uses_sr = t.uses_ta = t.uses_thunk = t.uses_scalar = true;
      break;
    case OpKind::kCount: break;
  }
  return t;
}

// Last-one-wins tuple dedup, preserving ascending (i, j) output order (the
// real build with Second{} dup produces exactly this content).
void dedup_mat(MatData &a) {
  std::map<std::pair<Index, Index>, std::int64_t> m;
  for (std::size_t p = 0; p < a.ri.size(); ++p) m[{a.ri[p], a.ci[p]}] = a.vv[p];
  a.ri.clear();
  a.ci.clear();
  a.vv.clear();
  for (const auto &[ij, v] : m) {
    a.ri.push_back(ij.first);
    a.ci.push_back(ij.second);
    a.vv.push_back(v);
  }
}

void dedup_vec(VecData &u) {
  std::map<Index, std::int64_t> m;
  for (std::size_t p = 0; p < u.ix.size(); ++p) m[u.ix[p]] = u.vv[p];
  u.ix.clear();
  u.vv.clear();
  for (const auto &[i, v] : m) {
    u.ix.push_back(i);
    u.vv.push_back(v);
  }
}

void clamp_mat(MatData &a, Index m, Index n, bool keep_dups) {
  a.m = m;
  a.n = n;
  std::vector<Index> ri, ci;
  std::vector<std::int64_t> vv;
  for (std::size_t p = 0; p < a.ri.size(); ++p) {
    if (a.ri[p] < m && a.ci[p] < n) {
      ri.push_back(a.ri[p]);
      ci.push_back(a.ci[p]);
      vv.push_back(a.vv[p]);
    }
  }
  a.ri = std::move(ri);
  a.ci = std::move(ci);
  a.vv = std::move(vv);
  if (!keep_dups) dedup_mat(a);
  std::vector<Mutation> muts;
  for (auto mu : a.muts) {
    if (mu.i < m && mu.j < n) muts.push_back(mu);
  }
  a.muts = std::move(muts);
  if (m == 0 || n == 0) {
    a.ri.clear();
    a.ci.clear();
    a.vv.clear();
    a.muts.clear();
  }
}

void clamp_vec(VecData &u, Index n, bool keep_dups) {
  u.n = n;
  std::vector<Index> ix;
  std::vector<std::int64_t> vv;
  for (std::size_t p = 0; p < u.ix.size(); ++p) {
    if (u.ix[p] < n) {
      ix.push_back(u.ix[p]);
      vv.push_back(u.vv[p]);
    }
  }
  u.ix = std::move(ix);
  u.vv = std::move(vv);
  if (!keep_dups) dedup_vec(u);
  std::vector<Mutation> muts;
  for (auto mu : u.muts) {
    if (mu.i < n) muts.push_back(mu);
  }
  u.muts = std::move(muts);
  if (n == 0) {
    u.ix.clear();
    u.vv.clear();
    u.muts.clear();
  }
}

void clamp_list(std::vector<Index> &list, Index domain, bool unique) {
  std::vector<Index> out;
  std::unordered_set<Index> seen;
  for (Index x : list) {
    if (x >= domain) continue;
    if (unique && !seen.insert(x).second) continue;
    out.push_back(x);
  }
  list = std::move(out);
}

}  // namespace

// ---------------------------------------------------------------------------
// normalize
// ---------------------------------------------------------------------------

void normalize(Scenario &s) {
  const OpTraits t = traits(s.op);

  // Logical dims: ≥ 1, capped so a scenario is always tiny.
  auto cap = [](Index &d) { d = std::max<Index>(1, std::min<Index>(d, 64)); };
  cap(s.dm);
  cap(s.dk);
  cap(s.dn);

  // Canonicalize unused selector fields.
  if (!t.uses_sr) s.sr = SemiringKind::plus_times;
  if (!t.uses_monoid) s.monoid = MonoidKind::plus;
  if (!t.uses_binop) s.binop = BinOpKind::plus;
  if (!t.uses_unop) s.unop = UnaryKind::identity;
  if (!t.uses_sel) s.sel = SelectKind::tril;
  if (!t.uses_thunk) s.thunk = 0;
  if (!t.uses_scalar) s.scalar = 0;
  if (!t.uses_ta) s.ta = false;
  if (!t.uses_tb) s.tb = false;
  if (!t.uses_accum) s.accum = AccumKind::none;
  if (!t.uses_mask) {
    s.has_mask = false;
    s.comp = false;
    s.structural = false;
    s.replace = false;
  }
  // The fused mxv+apply entry point takes a mandatory vector mask (BFS's
  // ¬s(parent) shape); scenarios always carry one.
  if (s.op == OpKind::fused_mxv_apply) s.has_mask = true;
  if (!s.has_mask) s.structural = false;
  if (!t.uses_rows) {
    s.rows_all = true;
    s.rows.clear();
  }
  if (!t.uses_cols) {
    s.cols_all = true;
    s.cols.clear();
  }
  if (!t.uses_col) s.col = 0;
  if (!t.probes) {
    // Flush boundaries (probe 4) survive: they record nothing, so they are
    // legal on any op's prologue and keep multi-flush interleavings alive.
    for (auto &mu : s.a.muts) {
      if (mu.probe != 4) mu.probe = 0;
    }
    for (auto &mu : s.u.muts) {
      if (mu.probe != 4) mu.probe = 0;
    }
  }

  // Derive container dims from the logical dims, per op.
  Index out_m = 0, out_n = 0, out_vn = 0;  // matrix / vector output shapes
  const bool keep = t.keep_dup_tuples;
  switch (s.op) {
    case OpKind::mxm:
      clamp_mat(s.a, s.ta ? s.dk : s.dm, s.ta ? s.dm : s.dk, false);
      clamp_mat(s.b, s.tb ? s.dn : s.dk, s.tb ? s.dk : s.dn, false);
      out_m = s.dm;
      out_n = s.dn;
      break;
    case OpKind::mxv:
      clamp_mat(s.a, s.ta ? s.dk : s.dm, s.ta ? s.dm : s.dk, false);
      clamp_vec(s.u, s.dk, false);
      out_vn = s.dm;
      break;
    case OpKind::vxm:
      clamp_mat(s.a, s.ta ? s.dn : s.dk, s.ta ? s.dk : s.dn, false);
      clamp_vec(s.u, s.dk, false);
      out_vn = s.dn;
      break;
    case OpKind::ewise_add_m:
    case OpKind::ewise_mult_m:
      clamp_mat(s.a, s.dm, s.dn, false);
      clamp_mat(s.b, s.dm, s.dn, false);
      out_m = s.dm;
      out_n = s.dn;
      break;
    case OpKind::ewise_add_v:
    case OpKind::ewise_mult_v:
      clamp_vec(s.u, s.dn, false);
      clamp_vec(s.v, s.dn, false);
      out_vn = s.dn;
      break;
    case OpKind::apply_m:
    case OpKind::select_m:
      clamp_mat(s.a, s.dm, s.dn, false);
      out_m = s.dm;
      out_n = s.dn;
      break;
    case OpKind::apply_v:
    case OpKind::select_v:
      clamp_vec(s.u, s.dn, false);
      out_vn = s.dn;
      break;
    case OpKind::reduce_m2v:
      clamp_mat(s.a, s.dm, s.dn, false);
      out_vn = s.ta ? s.dn : s.dm;
      break;
    case OpKind::reduce_m2s:
      clamp_mat(s.a, s.dm, s.dn, false);
      break;
    case OpKind::reduce_v2s:
      clamp_vec(s.u, s.dn, false);
      break;
    case OpKind::transpose_m:
      clamp_mat(s.a, s.dm, s.dn, false);
      out_m = s.ta ? s.dm : s.dn;
      out_n = s.ta ? s.dn : s.dm;
      break;
    case OpKind::kron:
      clamp_mat(s.a, s.dm, s.dn, false);
      clamp_mat(s.b, s.dk, s.dk, false);
      out_m = s.dm * s.dk;
      out_n = s.dn * s.dk;
      break;
    case OpKind::extract_v:
      clamp_vec(s.u, s.dn, false);
      clamp_list(s.rows, s.dn, false);
      out_vn = s.rows_all ? s.dn : static_cast<Index>(s.rows.size());
      break;
    case OpKind::extract_m: {
      clamp_mat(s.a, s.dm, s.dn, false);
      const Index sm = s.ta ? s.dn : s.dm;
      const Index sn = s.ta ? s.dm : s.dn;
      clamp_list(s.rows, sm, false);
      clamp_list(s.cols, sn, false);
      out_m = s.rows_all ? sm : static_cast<Index>(s.rows.size());
      out_n = s.cols_all ? sn : static_cast<Index>(s.cols.size());
      break;
    }
    case OpKind::extract_col:
      clamp_mat(s.a, s.dm, s.dn, false);
      s.col = s.col % (s.ta ? s.dm : s.dn);
      out_vn = s.ta ? s.dn : s.dm;
      break;
    case OpKind::assign_vv:
      clamp_list(s.rows, s.dn, false);
      clamp_vec(s.u,
                s.rows_all ? s.dn : static_cast<Index>(s.rows.size()), false);
      out_vn = s.dn;
      break;
    case OpKind::assign_vs:
      clamp_list(s.rows, s.dn, false);
      out_vn = s.dn;
      break;
    case OpKind::assign_ms:
      clamp_list(s.rows, s.dm, false);
      clamp_list(s.cols, s.dn, false);
      out_m = s.dm;
      out_n = s.dn;
      break;
    case OpKind::assign_mm:
      clamp_list(s.rows, s.dm, /*unique=*/true);
      clamp_list(s.cols, s.dn, /*unique=*/true);
      clamp_mat(s.a, s.rows_all ? s.dm : static_cast<Index>(s.rows.size()),
                s.cols_all ? s.dn : static_cast<Index>(s.cols.size()), false);
      out_m = s.dm;
      out_n = s.dn;
      break;
    case OpKind::dup_m:
    case OpKind::mutate_m:
      clamp_mat(s.a, s.dm, s.dn, keep);
      out_m = s.dm;
      out_n = s.dn;
      break;
    case OpKind::dup_v:
    case OpKind::mutate_v:
      clamp_vec(s.u, s.dn, keep);
      out_vn = s.dn;
      break;
    case OpKind::fused_mxv_apply:
      clamp_mat(s.a, s.ta ? s.dk : s.dm, s.ta ? s.dm : s.dk, false);
      clamp_vec(s.u, s.dk, false);
      clamp_vec(s.v, s.dm, false);  // stamp-copy companion's initial content
      out_vn = s.dm;
      break;
    case OpKind::fused_vxm_select:
      clamp_mat(s.a, s.ta ? s.dn : s.dk, s.ta ? s.dk : s.dn, false);
      clamp_vec(s.u, s.dk, false);
      out_vn = s.dn;
      break;
    case OpKind::kCount: break;
  }

  // Output initial content + mask share the output shape.
  if (t.mat_out) {
    clamp_mat(s.cinit, out_m, out_n, false);
    clamp_mat(s.mmask, s.has_mask ? out_m : 0, s.has_mask ? out_n : 0, false);
    s.winit = VecData{};
    s.vmask = VecData{};
  } else if (t.vec_out) {
    clamp_vec(s.winit, out_vn, false);
    clamp_vec(s.vmask, s.has_mask ? out_vn : 0, false);
    s.cinit = MatData{};
    s.mmask = MatData{};
  } else {
    s.cinit = MatData{};
    s.mmask = MatData{};
    s.winit = VecData{};
    s.vmask = VecData{};
  }
  if (!t.uses_a) s.a = MatData{};
  if (!t.uses_b) s.b = MatData{};
  if (!t.uses_u) s.u = VecData{};
  if (!t.uses_v) s.v = VecData{};

  // Mutation prologues live on the primary input only.
  s.b.muts.clear();
  s.v.muts.clear();
  s.cinit.muts.clear();
  s.mmask.muts.clear();
  s.winit.muts.clear();
  s.vmask.muts.clear();
}

// ---------------------------------------------------------------------------
// Result printing
// ---------------------------------------------------------------------------

std::string Result::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::matrix:
      os << "matrix " << m << "x" << n << " nvals=" << mat.size() << "\n";
      for (const auto &[i, j, x] : mat) {
        os << "  (" << i << "," << j << ") = " << x << "\n";
      }
      break;
    case Kind::vector:
      os << "vector " << n << " nvals=" << vec.size() << "\n";
      for (const auto &[i, x] : vec) os << "  (" << i << ") = " << x << "\n";
      break;
    case Kind::scalar: os << "scalar " << scalar << "\n"; break;
  }
  if (!observed.empty()) {
    os << "  probes:";
    for (auto x : observed) os << " " << x;
    os << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Serialization — line-based text, one key per line. Unknown keys are
// errors (a repro must mean exactly what it says).
// ---------------------------------------------------------------------------

namespace {

void write_muts(std::ostringstream &os, const char *name,
                const std::vector<Mutation> &muts) {
  if (muts.empty()) return;
  os << "muts " << name << " " << muts.size() << "\n";
  for (const auto &mu : muts) {
    os << (mu.del ? "del " : mu.add ? "add " : "set ") << mu.i << " " << mu.j
       << " " << mu.v << " probe=" << mu.probe << "\n";
  }
}

void write_mat(std::ostringstream &os, const char *name, const MatData &a) {
  os << "mat " << name << " " << a.m << " " << a.n << " "
     << kMatFmtNames[static_cast<int>(a.fmt)] << " " << a.ri.size() << "\n";
  for (std::size_t p = 0; p < a.ri.size(); ++p) {
    os << a.ri[p] << " " << a.ci[p] << " " << a.vv[p] << "\n";
  }
  write_muts(os, name, a.muts);
}

void write_vec(std::ostringstream &os, const char *name, const VecData &u) {
  os << "vec " << name << " " << u.n << " "
     << kVecFmtNames[static_cast<int>(u.fmt)] << " " << u.ix.size() << "\n";
  for (std::size_t p = 0; p < u.ix.size(); ++p) {
    os << u.ix[p] << " " << u.vv[p] << "\n";
  }
  write_muts(os, name, u.muts);
}

void write_list(std::ostringstream &os, const char *name, bool all,
                const std::vector<Index> &list) {
  os << name;
  if (all) {
    os << " all";
  } else {
    for (Index x : list) os << " " << x;
  }
  os << "\n";
}

}  // namespace

std::string serialize(const Scenario &s) {
  std::ostringstream os;
  os << "grb-repro v1\n";
  os << "seed " << s.seed << "\n";
  os << "op " << op_name(s.op) << "\n";
  os << "accum " << kAccumNames[static_cast<int>(s.accum)] << "\n";
  os << "sr " << kSrNames[static_cast<int>(s.sr)] << "\n";
  os << "monoid " << kMonoidNames[static_cast<int>(s.monoid)] << "\n";
  os << "binop " << kBinOpNames[static_cast<int>(s.binop)] << "\n";
  os << "unop " << kUnaryNames[static_cast<int>(s.unop)] << "\n";
  os << "sel " << kSelectNames[static_cast<int>(s.sel)] << "\n";
  os << "thunk " << s.thunk << "\n";
  os << "scalar " << s.scalar << "\n";
  os << "col " << s.col << "\n";
  // Append-only key (new parsers read old files; old parsers reject new
  // files loudly rather than silently dropping the pin). Written only when
  // pinned so pre-existing corpus bytes stay stable.
  if (s.force_index_width != 0) {
    os << "iwidth " << s.force_index_width << "\n";
  }
  if (s.u32_limit != 0) {
    os << "u32limit " << s.u32_limit << "\n";
  }
  os << "desc ta=" << s.ta << " tb=" << s.tb << " comp=" << s.comp
     << " struct=" << s.structural << " replace=" << s.replace
     << " mask=" << s.has_mask << "\n";
  os << "dims " << s.dm << " " << s.dk << " " << s.dn << "\n";
  write_list(os, "rows", s.rows_all, s.rows);
  write_list(os, "cols", s.cols_all, s.cols);
  write_mat(os, "a", s.a);
  write_mat(os, "b", s.b);
  write_mat(os, "cinit", s.cinit);
  write_mat(os, "mmask", s.mmask);
  write_vec(os, "u", s.u);
  write_vec(os, "v", s.v);
  write_vec(os, "winit", s.winit);
  write_vec(os, "vmask", s.vmask);
  os << "end\n";
  return os.str();
}

namespace {

struct Parser {
  std::istringstream in;
  std::string err;
  int lineno = 0;

  explicit Parser(const std::string &text) : in(text) {}

  bool next_line(std::string &line) {
    while (std::getline(in, line)) {
      ++lineno;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      return true;
    }
    return false;
  }

  bool fail(const std::string &what) {
    err = "line " + std::to_string(lineno) + ": " + what;
    return false;
  }
};

bool parse_muts(Parser &p, std::istringstream &ls, std::vector<Mutation> &out) {
  std::size_t count = 0;
  std::string name;  // already consumed by caller
  ls >> count;
  for (std::size_t q = 0; q < count; ++q) {
    std::string line;
    if (!p.next_line(line)) return p.fail("truncated mutation list");
    std::istringstream ms(line);
    std::string kind, probe;
    Mutation mu;
    ms >> kind >> mu.i >> mu.j >> mu.v >> probe;
    if (kind != "set" && kind != "del" && kind != "add") {
      return p.fail("bad mutation kind");
    }
    mu.del = kind == "del";
    mu.add = kind == "add";
    if (probe.rfind("probe=", 0) != 0) return p.fail("bad mutation probe");
    mu.probe = std::atoi(probe.c_str() + 6);
    out.push_back(mu);
  }
  return true;
}

bool parse_mat(Parser &p, std::istringstream &ls, MatData &a) {
  std::string fmt;
  std::size_t nz = 0;
  ls >> a.m >> a.n >> fmt >> nz;
  auto f = from_name<MatFmt>(kMatFmtNames, fmt);
  if (!f) return p.fail("unknown matrix format: " + fmt);
  a.fmt = *f;
  a.ri.clear();
  a.ci.clear();
  a.vv.clear();
  for (std::size_t q = 0; q < nz; ++q) {
    std::string line;
    if (!p.next_line(line)) return p.fail("truncated matrix tuples");
    std::istringstream ts(line);
    Index i = 0, j = 0;
    std::int64_t v = 0;
    ts >> i >> j >> v;
    a.ri.push_back(i);
    a.ci.push_back(j);
    a.vv.push_back(v);
  }
  return true;
}

bool parse_vec(Parser &p, std::istringstream &ls, VecData &u) {
  std::string fmt;
  std::size_t nz = 0;
  ls >> u.n >> fmt >> nz;
  auto f = from_name<VecFmt>(kVecFmtNames, fmt);
  if (!f) return p.fail("unknown vector format: " + fmt);
  u.fmt = *f;
  u.ix.clear();
  u.vv.clear();
  for (std::size_t q = 0; q < nz; ++q) {
    std::string line;
    if (!p.next_line(line)) return p.fail("truncated vector tuples");
    std::istringstream ts(line);
    Index i = 0;
    std::int64_t v = 0;
    ts >> i >> v;
    u.ix.push_back(i);
    u.vv.push_back(v);
  }
  return true;
}

bool parse_list(std::istringstream &ls, bool &all, std::vector<Index> &list) {
  all = false;
  list.clear();
  std::string tok;
  while (ls >> tok) {
    if (tok == "all") {
      all = true;
      return true;
    }
    list.push_back(static_cast<Index>(std::stoull(tok)));
  }
  return true;
}

bool parse_flag(const std::string &tok, const char *key, bool &out) {
  const std::string prefix = std::string(key) + "=";
  if (tok.rfind(prefix, 0) != 0) return false;
  out = tok[prefix.size()] == '1';
  return true;
}

}  // namespace

std::optional<Scenario> parse(const std::string &text, std::string *error) {
  Parser p(text);
  Scenario s;
  std::string line;
  auto bail = [&](const std::string &what) -> std::optional<Scenario> {
    p.fail(what);
    if (error) *error = p.err;
    return std::nullopt;
  };
  if (!p.next_line(line) || line != "grb-repro v1") {
    return bail("missing 'grb-repro v1' header");
  }
  while (p.next_line(line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "end") {
      normalize(s);
      return s;
    } else if (key == "seed") {
      ls >> s.seed;
    } else if (key == "op") {
      std::string name;
      ls >> name;
      auto op = from_name<OpKind>(kOpNames, name);
      if (!op) return bail("unknown op: " + name);
      s.op = *op;
    } else if (key == "accum") {
      std::string name;
      ls >> name;
      auto v = from_name<AccumKind>(kAccumNames, name);
      if (!v) return bail("unknown accum: " + name);
      s.accum = *v;
    } else if (key == "sr") {
      std::string name;
      ls >> name;
      auto v = from_name<SemiringKind>(kSrNames, name);
      if (!v) return bail("unknown semiring: " + name);
      s.sr = *v;
    } else if (key == "monoid") {
      std::string name;
      ls >> name;
      auto v = from_name<MonoidKind>(kMonoidNames, name);
      if (!v) return bail("unknown monoid: " + name);
      s.monoid = *v;
    } else if (key == "binop") {
      std::string name;
      ls >> name;
      auto v = from_name<BinOpKind>(kBinOpNames, name);
      if (!v) return bail("unknown binop: " + name);
      s.binop = *v;
    } else if (key == "unop") {
      std::string name;
      ls >> name;
      auto v = from_name<UnaryKind>(kUnaryNames, name);
      if (!v) return bail("unknown unop: " + name);
      s.unop = *v;
    } else if (key == "sel") {
      std::string name;
      ls >> name;
      auto v = from_name<SelectKind>(kSelectNames, name);
      if (!v) return bail("unknown select op: " + name);
      s.sel = *v;
    } else if (key == "thunk") {
      ls >> s.thunk;
    } else if (key == "scalar") {
      ls >> s.scalar;
    } else if (key == "col") {
      ls >> s.col;
    } else if (key == "iwidth") {
      ls >> s.force_index_width;
      if (s.force_index_width < 0 || s.force_index_width > 2) {
        return bail("iwidth must be 0 (auto), 1 (u32), or 2 (u64)");
      }
    } else if (key == "u32limit") {
      ls >> s.u32_limit;
    } else if (key == "desc") {
      std::string tok;
      while (ls >> tok) {
        if (!parse_flag(tok, "ta", s.ta) && !parse_flag(tok, "tb", s.tb) &&
            !parse_flag(tok, "comp", s.comp) &&
            !parse_flag(tok, "struct", s.structural) &&
            !parse_flag(tok, "replace", s.replace) &&
            !parse_flag(tok, "mask", s.has_mask)) {
          return bail("unknown descriptor token: " + tok);
        }
      }
    } else if (key == "dims") {
      ls >> s.dm >> s.dk >> s.dn;
    } else if (key == "rows") {
      if (!parse_list(ls, s.rows_all, s.rows)) return bail("bad rows list");
    } else if (key == "cols") {
      if (!parse_list(ls, s.cols_all, s.cols)) return bail("bad cols list");
    } else if (key == "mat") {
      std::string name;
      ls >> name;
      MatData *target = name == "a"       ? &s.a
                        : name == "b"     ? &s.b
                        : name == "cinit" ? &s.cinit
                        : name == "mmask" ? &s.mmask
                                          : nullptr;
      if (target == nullptr) return bail("unknown matrix name: " + name);
      if (!parse_mat(p, ls, *target)) break;
    } else if (key == "vec") {
      std::string name;
      ls >> name;
      VecData *target = name == "u"       ? &s.u
                        : name == "v"     ? &s.v
                        : name == "winit" ? &s.winit
                        : name == "vmask" ? &s.vmask
                                          : nullptr;
      if (target == nullptr) return bail("unknown vector name: " + name);
      if (!parse_vec(p, ls, *target)) break;
    } else if (key == "muts") {
      std::string name;
      ls >> name;
      std::vector<Mutation> *target = name == "a"   ? &s.a.muts
                                      : name == "u" ? &s.u.muts
                                                    : nullptr;
      if (target == nullptr) return bail("mutations only allowed on a/u");
      if (!parse_muts(p, ls, *target)) break;
    } else {
      return bail("unknown key: " + key);
    }
  }
  if (error) *error = p.err.empty() ? "missing 'end'" : p.err;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Seeded generation
// ---------------------------------------------------------------------------

namespace {

/// SplitMix64 — tiny, seedable, and good enough for fuzzing.
struct Rng {
  std::uint64_t state;

  explicit Rng(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
  bool chance(int pct) { return below(100) < static_cast<std::uint64_t>(pct); }
  std::int64_t value() {
    // Small signed values, with 0 well represented so valued masks and the
    // lor/land semiring see "present but false" entries.
    return static_cast<std::int64_t>(below(14)) - 4;
  }
};

enum class Shape : int { er_sparse, er_mid, er_dense, power_law, empty, full, diagonal };

Shape pick_shape(Rng &rng) {
  const std::uint64_t r = rng.below(16);
  if (r < 4) return Shape::er_sparse;
  if (r < 7) return Shape::er_mid;
  if (r < 9) return Shape::er_dense;
  if (r < 12) return Shape::power_law;
  if (r < 13) return Shape::empty;
  if (r < 15) return Shape::full;
  return Shape::diagonal;
}

void fill_mat(Rng &rng, MatData &a, Index m, Index n) {
  a = MatData{};
  a.m = m;
  a.n = n;
  a.fmt = static_cast<MatFmt>(rng.below(static_cast<int>(MatFmt::kCount)));
  const Shape shape = pick_shape(rng);
  auto push = [&](Index i, Index j) {
    a.ri.push_back(i);
    a.ci.push_back(j);
    a.vv.push_back(rng.value());
  };
  switch (shape) {
    case Shape::er_sparse:
    case Shape::er_mid:
    case Shape::er_dense: {
      const int pct = shape == Shape::er_sparse ? 8
                      : shape == Shape::er_mid ? 25
                                               : 60;
      for (Index i = 0; i < m; ++i) {
        for (Index j = 0; j < n; ++j) {
          if (rng.chance(pct)) push(i, j);
        }
      }
      break;
    }
    case Shape::power_law:
      // A few hub rows own most of the entries; the tail is near-empty.
      for (Index i = 0; i < m; ++i) {
        const bool hub = rng.chance(20);
        const int pct = hub ? 70 : 5;
        for (Index j = 0; j < n; ++j) {
          if (rng.chance(pct)) push(i, j);
        }
      }
      break;
    case Shape::empty: break;
    case Shape::full:
      for (Index i = 0; i < m; ++i) {
        for (Index j = 0; j < n; ++j) push(i, j);
      }
      break;
    case Shape::diagonal:
      for (Index i = 0; i < std::min(m, n); ++i) push(i, i);
      break;
  }
}

void fill_vec(Rng &rng, VecData &u, Index n) {
  u = VecData{};
  u.n = n;
  u.fmt = static_cast<VecFmt>(rng.below(static_cast<int>(VecFmt::kCount)));
  const std::uint64_t r = rng.below(8);
  int pct = 30;
  if (r == 0) pct = 0;          // empty
  else if (r == 1) pct = 100;   // full
  else if (r < 4) pct = 10;     // sparse
  for (Index i = 0; i < n; ++i) {
    if (rng.chance(pct)) {
      u.ix.push_back(i);
      u.vv.push_back(rng.value());
    }
  }
}

void fill_muts(Rng &rng, std::vector<Mutation> &muts, Index m, Index n,
               bool probes, int count) {
  // Mutations arrive in rounds separated by explicit flush boundaries
  // (probe 4) — the ingest write path's batch/publish cadence. A zombie
  // staged in round 1 must stay buried when round 2's merge lands on the
  // CSR that already absorbed it, so multi-flush interleavings cover the
  // pending/zombie state machine across merges, not just within one.
  const int rounds = 1 + static_cast<int>(rng.below(3));
  for (int r = 0; r < rounds; ++r) {
    for (int q = 0; q < count; ++q) {
      Mutation mu;
      const std::uint64_t k = rng.below(10);
      mu.del = k < 4;
      mu.add = !mu.del && k < 7;  // 30% upsert (accum_element)
      mu.i = rng.below(m);
      mu.j = n == 0 ? 0 : rng.below(n);
      mu.v = rng.value();
      mu.probe = probes && rng.chance(50) ? static_cast<int>(1 + rng.below(3))
                                          : 0;
      muts.push_back(mu);
    }
    if (r + 1 < rounds) {
      Mutation fb;  // flush boundary between rounds (applies its op too)
      fb.del = rng.chance(50);
      fb.i = rng.below(m);
      fb.j = n == 0 ? 0 : rng.below(n);
      fb.v = rng.value();
      fb.probe = 4;
      muts.push_back(fb);
    }
  }
}

void fill_list(Rng &rng, std::vector<Index> &list, bool &all, Index domain,
               bool allow_dups) {
  if (rng.chance(30)) {
    all = true;
    list.clear();
    return;
  }
  all = false;
  list.clear();
  const Index len = 1 + rng.below(domain);
  for (Index k = 0; k < len; ++k) {
    list.push_back(rng.below(domain));
  }
  if (!allow_dups) {
    std::vector<Index> uniq;
    std::unordered_set<Index> seen;
    for (Index x : list) {
      if (seen.insert(x).second) uniq.push_back(x);
    }
    list = std::move(uniq);
  }
}

}  // namespace

Scenario generate(std::uint64_t seed) {
  Rng rng(seed * 0x2545f4914f6cdd1dULL + 0x9e3779b97f4a7c15ULL);
  Scenario s;
  s.seed = seed;
  s.op = static_cast<OpKind>(rng.below(static_cast<int>(OpKind::kCount)));
  const OpTraits t = traits(s.op);

  // Small dims (kron multiplies them, so keep those extra small).
  const Index lo = 1, hi = s.op == OpKind::kron ? 5 : 12;
  s.dm = lo + rng.below(hi);
  s.dk = lo + rng.below(hi);
  s.dn = lo + rng.below(hi);

  s.accum = static_cast<AccumKind>(rng.below(static_cast<int>(AccumKind::kCount)));
  s.sr = static_cast<SemiringKind>(rng.below(static_cast<int>(SemiringKind::kCount)));
  s.monoid = static_cast<MonoidKind>(rng.below(static_cast<int>(MonoidKind::kCount)));
  s.binop = static_cast<BinOpKind>(rng.below(static_cast<int>(BinOpKind::kCount)));
  s.unop = static_cast<UnaryKind>(rng.below(static_cast<int>(UnaryKind::kCount)));
  s.sel = static_cast<SelectKind>(rng.below(static_cast<int>(SelectKind::kCount)));
  s.thunk = static_cast<std::int64_t>(rng.below(9)) - 4;
  s.scalar = rng.value();
  s.ta = rng.chance(35);
  s.tb = rng.chance(35);
  s.has_mask = t.uses_mask && rng.chance(60);
  s.comp = rng.chance(25);
  s.structural = rng.chance(50);
  s.replace = rng.chance(35);
  // Occasionally pin the storage width so the fuzzer reaches u32/u64 paths
  // even on sweep points whose fold leaves width on auto.
  if (rng.chance(25)) s.force_index_width = 1 + rng.below(2);
  // Occasionally shrink the u32 limit so auto-selection and the u32 → u64
  // promotion path run on fuzz-sized containers. Never combined with a
  // forced-u32 pin: there the overflow is the spec'd error, not a promotion.
  if (s.force_index_width == 0 && rng.chance(15)) {
    s.u32_limit = 4 + rng.below(60);
  }

  // Index lists (domains fixed up by normalize; generate in a generous
  // domain so clamping keeps most entries).
  const Index dom = std::max({s.dm, s.dk, s.dn});
  fill_list(rng, s.rows, s.rows_all, dom, !t.rows_unique);
  fill_list(rng, s.cols, s.cols_all, dom, !t.cols_unique);
  s.col = rng.below(dom);

  // Containers, sized generously; normalize clamps to the derived dims.
  fill_mat(rng, s.a, s.dm, s.dn);
  fill_mat(rng, s.b, s.dn, s.dn);
  fill_mat(rng, s.cinit, s.dm, s.dn);
  fill_mat(rng, s.mmask, s.dm, s.dn);
  fill_vec(rng, s.u, dom);
  fill_vec(rng, s.v, dom);
  fill_vec(rng, s.winit, dom);
  fill_vec(rng, s.vmask, dom);

  // Resize the primary operands to their true shapes before adding the
  // mutation prologue (normalize would otherwise drop out-of-range muts).
  normalize(s);
  if (s.op == OpKind::mutate_m || s.op == OpKind::mutate_v || rng.chance(40)) {
    const int count = static_cast<int>(1 + rng.below(t.probes ? 10 : 5));
    if (t.uses_a && s.a.m > 0) {
      fill_muts(rng, s.a.muts, s.a.m, s.a.n, t.probes, count);
    } else if (t.uses_u && s.u.n > 0) {
      fill_muts(rng, s.u.muts, s.u.n, 0, t.probes, count);
    }
  }
  // dup_m / dup_v: inject duplicate tuples on purpose.
  if (t.keep_dup_tuples && !s.a.ri.empty() && s.op == OpKind::dup_m) {
    const int extra = static_cast<int>(1 + rng.below(5));
    for (int q = 0; q < extra; ++q) {
      const std::size_t p = rng.below(s.a.ri.size());
      s.a.ri.push_back(s.a.ri[p]);
      s.a.ci.push_back(s.a.ci[p]);
      s.a.vv.push_back(rng.value());
    }
  }
  if (t.keep_dup_tuples && !s.u.ix.empty() && s.op == OpKind::dup_v) {
    const int extra = static_cast<int>(1 + rng.below(5));
    for (int q = 0; q < extra; ++q) {
      const std::size_t p = rng.below(s.u.ix.size());
      s.u.ix.push_back(s.u.ix[p]);
      s.u.vv.push_back(rng.value());
    }
  }
  normalize(s);
  return s;
}

}  // namespace grb::testing

// grb/testing/oracle.hpp — a deliberately naive reference interpreter for the
// Table I operation set.
//
// The oracle is the "obviously correct" half of the differential conformance
// harness: a dense, serial, map-based model of GraphBLAS containers with the
// mask/accumulator/replace output step transcribed directly from the C-spec
// §2.3 prose (NOT from grb/mask.hpp — sharing code with the kernels would
// make the comparison vacuous). Everything is concrete std::int64_t: the
// fuzzer compares bit-exactly, which integer arithmetic permits and floating
// point (associativity) would not.
//
// Conventions the oracle pins down, matching the documented grb semantics:
//   * reductions and multiply-add folds visit the inner index in ascending
//     order, seeding with the first value seen — for the `any` monoid
//     ("first wins") this is exactly the deterministic instance the serial
//     kernels implement and the parallel ones preserve;
//   * accumulators apply as accum(old, new);
//   * a complemented descriptor with no mask selects nothing;
//   * structural masks test presence, valued masks test value != 0.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "grb/types.hpp"

namespace grb::testing {

using Value = std::int64_t;

/// Dense map model of a vector: size + {index → value}.
struct RefVec {
  Index n = 0;
  std::map<Index, Value> e;

  RefVec() = default;
  explicit RefVec(Index size) : n(size) {}

  void set(Index i, Value v) { e[i] = v; }
  void remove(Index i) { e.erase(i); }
  [[nodiscard]] std::optional<Value> get(Index i) const {
    auto it = e.find(i);
    if (it == e.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] bool has(Index i) const { return e.count(i) != 0; }
};

/// Dense map model of a matrix: dims + {(row, col) → value}.
struct RefMat {
  Index m = 0;
  Index n = 0;
  std::map<std::pair<Index, Index>, Value> e;

  RefMat() = default;
  RefMat(Index rows, Index cols) : m(rows), n(cols) {}

  void set(Index i, Index j, Value v) { e[{i, j}] = v; }
  void remove(Index i, Index j) { e.erase({i, j}); }
  [[nodiscard]] std::optional<Value> get(Index i, Index j) const {
    auto it = e.find({i, j});
    if (it == e.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] bool has(Index i, Index j) const { return e.count({i, j}) != 0; }
};

/// The descriptor fields the output step and the ops consult.
struct ODesc {
  bool transpose_a = false;
  bool transpose_b = false;
  bool complement = false;
  bool structural = false;
  bool replace = false;
};

/// accum(old, new) — absent means "no accumulator" (w = t, with deletions
/// inside the mask where t has no entry).
using OAccum = std::optional<std::function<Value(Value, Value)>>;
/// Monoid fold operator (identity handled by the caller / fold seeding).
using OBinary = std::function<Value(Value, Value)>;
/// Semiring multiply with the coordinate triple of a(i,k)·b(k,j) for
/// positional operators.
using OMultiply = std::function<Value(Value, Value, Index i, Index k, Index j)>;
/// Unary map for apply.
using OUnary = std::function<Value(Value)>;
/// Index-unary predicate for select: f(value, i, j, thunk).
using OSelect = std::function<bool(Value, Index, Index, Value)>;

namespace oracle {

// ---------------------------------------------------------------------------
// The §2.3 output step, transcribed from the spec prose.
//
//   T = op(inputs)                            (caller provides t)
//   Z = accum ? C ⊙ T : T                     (⊙ merges on the union,
//                                              accum on the intersection)
//   C⟨M, r⟩ = Z:  inside the mask C receives Z's content, including the
//   absence of an entry (deletion); outside the mask C keeps its old
//   content, unless replace clears it.
// ---------------------------------------------------------------------------

inline bool mask_pass_vec(const RefVec *mask, Index i, const ODesc &d) {
  if (mask == nullptr) return !d.complement;  // complement of all-true: none
  auto v = mask->get(i);
  const bool in = v.has_value() && (d.structural || *v != 0);
  return d.complement != in;
}

inline bool mask_pass_mat(const RefMat *mask, Index i, Index j,
                          const ODesc &d) {
  if (mask == nullptr) return !d.complement;
  auto v = mask->get(i, j);
  const bool in = v.has_value() && (d.structural || *v != 0);
  return d.complement != in;
}

inline void write_vec(RefVec &w, const RefVec &t, const RefVec *mask,
                      const OAccum &accum, const ODesc &d) {
  detail::check_same_size(t.n, w.n, "oracle: result dimension mismatch");
  if (mask != nullptr) {
    detail::check_same_size(mask->n, w.n, "oracle: mask dimension mismatch");
  }
  RefVec out(w.n);
  for (Index i = 0; i < w.n; ++i) {
    auto c = w.get(i);
    auto tv = t.get(i);
    // Z at position i.
    std::optional<Value> z;
    if (accum) {
      if (c && tv) {
        z = (*accum)(*c, *tv);
      } else if (c) {
        z = c;
      } else {
        z = tv;
      }
    } else {
      z = tv;
    }
    if (mask_pass_vec(mask, i, d)) {
      if (z) out.set(i, *z);
    } else if (!d.replace && c) {
      out.set(i, *c);
    }
  }
  w = std::move(out);
}

inline void write_mat(RefMat &c, const RefMat &t, const RefMat *mask,
                      const OAccum &accum, const ODesc &d) {
  detail::check_same_size(t.m, c.m, "oracle: result row mismatch");
  detail::check_same_size(t.n, c.n, "oracle: result col mismatch");
  if (mask != nullptr) {
    detail::check_same_size(mask->m, c.m, "oracle: mask row mismatch");
    detail::check_same_size(mask->n, c.n, "oracle: mask col mismatch");
  }
  RefMat out(c.m, c.n);
  for (Index i = 0; i < c.m; ++i) {
    for (Index j = 0; j < c.n; ++j) {
      auto cv = c.get(i, j);
      auto tv = t.get(i, j);
      std::optional<Value> z;
      if (accum) {
        if (cv && tv) {
          z = (*accum)(*cv, *tv);
        } else if (cv) {
          z = cv;
        } else {
          z = tv;
        }
      } else {
        z = tv;
      }
      if (mask_pass_mat(mask, i, j, d)) {
        if (z) out.set(i, j, *z);
      } else if (!d.replace && cv) {
        out.set(i, j, *cv);
      }
    }
  }
  c = std::move(out);
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

inline RefMat transpose_of(const RefMat &a) {
  RefMat t(a.n, a.m);
  for (const auto &[ij, v] : a.e) t.set(ij.second, ij.first, v);
  return t;
}

/// Fold `next` into an optional accumulator, seeding with the first value —
/// the "first wins" convention the any-monoid relies on.
inline void fold(std::optional<Value> &acc, Value next, const OBinary &add) {
  if (acc) {
    acc = add(*acc, next);
  } else {
    acc = next;
  }
}

// ---------------------------------------------------------------------------
// Table I operations over the model. Each computes T naively (dense triple
// loops, ascending indices) and defers to the §2.3 write step.
// ---------------------------------------------------------------------------

/// C⟨M⟩ ⊙= A ⊕.⊗ B (with effective transposes applied per descriptor).
inline void mxm(RefMat &c, const RefMat *mask, const OAccum &accum,
                const OBinary &add, const OMultiply &mult, RefMat a, RefMat b,
                const ODesc &d) {
  if (d.transpose_a) a = transpose_of(a);
  if (d.transpose_b) b = transpose_of(b);
  detail::check_same_size(a.n, b.m, "oracle mxm: inner dimension mismatch");
  detail::check_same_size(c.m, a.m, "oracle mxm: output row mismatch");
  detail::check_same_size(c.n, b.n, "oracle mxm: output col mismatch");
  RefMat t(a.m, b.n);
  for (Index i = 0; i < a.m; ++i) {
    for (Index j = 0; j < b.n; ++j) {
      std::optional<Value> acc;
      for (Index k = 0; k < a.n; ++k) {
        auto av = a.get(i, k);
        auto bv = b.get(k, j);
        if (av && bv) fold(acc, mult(*av, *bv, i, k, j), add);
      }
      if (acc) t.set(i, j, *acc);
    }
  }
  write_mat(c, t, mask, accum, d);
}

/// w⟨m⟩ ⊙= uᵀ ⊕.⊗ A: w(j) = ⊕_k u(k) ⊗ a(k,j), coords (0, k, j).
inline void vxm(RefVec &w, const RefVec *mask, const OAccum &accum,
                const OBinary &add, const OMultiply &mult, const RefVec &u,
                RefMat a, const ODesc &d) {
  if (d.transpose_a) a = transpose_of(a);
  detail::check_same_size(u.n, a.m, "oracle vxm: u/A dimension mismatch");
  detail::check_same_size(w.n, a.n, "oracle vxm: w/A dimension mismatch");
  RefVec t(a.n);
  for (Index j = 0; j < a.n; ++j) {
    std::optional<Value> acc;
    for (Index k = 0; k < a.m; ++k) {
      auto uv = u.get(k);
      auto av = a.get(k, j);
      if (uv && av) fold(acc, mult(*uv, *av, 0, k, j), add);
    }
    if (acc) t.set(j, *acc);
  }
  write_vec(w, t, mask, accum, d);
}

/// w⟨m⟩ ⊙= A ⊕.⊗ u: w(i) = ⊕_k a(i,k) ⊗ u(k), coords (i, k, 0).
inline void mxv(RefVec &w, const RefVec *mask, const OAccum &accum,
                const OBinary &add, const OMultiply &mult, RefMat a,
                const RefVec &u, const ODesc &d) {
  if (d.transpose_a) a = transpose_of(a);
  detail::check_same_size(u.n, a.n, "oracle mxv: u/A dimension mismatch");
  detail::check_same_size(w.n, a.m, "oracle mxv: w/A dimension mismatch");
  RefVec t(a.m);
  for (Index i = 0; i < a.m; ++i) {
    std::optional<Value> acc;
    for (Index k = 0; k < a.n; ++k) {
      auto av = a.get(i, k);
      auto uv = u.get(k);
      if (av && uv) fold(acc, mult(*av, *uv, i, k, 0), add);
    }
    if (acc) t.set(i, *acc);
  }
  write_vec(w, t, mask, accum, d);
}

/// Element-wise union (eWiseAdd) / intersection (eWiseMult).
inline void ewise_vec(RefVec &w, const RefVec *mask, const OAccum &accum,
                      const OBinary &op, const RefVec &u, const RefVec &v,
                      bool union_mode, const ODesc &d) {
  detail::check_same_size(u.n, v.n, "oracle ewise: input size mismatch");
  detail::check_same_size(w.n, u.n, "oracle ewise: output size mismatch");
  RefVec t(u.n);
  for (Index i = 0; i < u.n; ++i) {
    auto a = u.get(i);
    auto b = v.get(i);
    if (a && b) {
      t.set(i, op(*a, *b));
    } else if (union_mode && a) {
      t.set(i, *a);
    } else if (union_mode && b) {
      t.set(i, *b);
    }
  }
  write_vec(w, t, mask, accum, d);
}

inline void ewise_mat(RefMat &c, const RefMat *mask, const OAccum &accum,
                      const OBinary &op, const RefMat &a, const RefMat &b,
                      bool union_mode, const ODesc &d) {
  detail::check_same_size(a.m, b.m, "oracle ewise: input row mismatch");
  detail::check_same_size(a.n, b.n, "oracle ewise: input col mismatch");
  detail::check_same_size(c.m, a.m, "oracle ewise: output row mismatch");
  detail::check_same_size(c.n, a.n, "oracle ewise: output col mismatch");
  RefMat t(a.m, a.n);
  for (Index i = 0; i < a.m; ++i) {
    for (Index j = 0; j < a.n; ++j) {
      auto x = a.get(i, j);
      auto y = b.get(i, j);
      if (x && y) {
        t.set(i, j, op(*x, *y));
      } else if (union_mode && x) {
        t.set(i, j, *x);
      } else if (union_mode && y) {
        t.set(i, j, *y);
      }
    }
  }
  write_mat(c, t, mask, accum, d);
}

/// apply: per-entry unary map, structure preserved.
inline void apply_vec(RefVec &w, const RefVec *mask, const OAccum &accum,
                      const OUnary &f, const RefVec &u, const ODesc &d) {
  detail::check_same_size(w.n, u.n, "oracle apply: size mismatch");
  RefVec t(u.n);
  for (const auto &[i, x] : u.e) t.set(i, f(x));
  write_vec(w, t, mask, accum, d);
}

inline void apply_mat(RefMat &c, const RefMat *mask, const OAccum &accum,
                      const OUnary &f, const RefMat &a, const ODesc &d) {
  detail::check_same_size(c.m, a.m, "oracle apply: shape mismatch");
  detail::check_same_size(c.n, a.n, "oracle apply: shape mismatch");
  RefMat t(a.m, a.n);
  for (const auto &[ij, x] : a.e) t.set(ij.first, ij.second, f(x));
  write_mat(c, t, mask, accum, d);
}

/// select: keep entries where the index-unary predicate holds. Vector
/// entries present their position as the row coordinate with column 0.
inline void select_vec(RefVec &w, const RefVec *mask, const OAccum &accum,
                       const OSelect &f, const RefVec &u, Value thunk,
                       const ODesc &d) {
  detail::check_same_size(w.n, u.n, "oracle select: size mismatch");
  RefVec t(u.n);
  for (const auto &[i, x] : u.e) {
    if (f(x, i, 0, thunk)) t.set(i, x);
  }
  write_vec(w, t, mask, accum, d);
}

inline void select_mat(RefMat &c, const RefMat *mask, const OAccum &accum,
                       const OSelect &f, const RefMat &a, Value thunk,
                       const ODesc &d) {
  detail::check_same_size(c.m, a.m, "oracle select: shape mismatch");
  detail::check_same_size(c.n, a.n, "oracle select: shape mismatch");
  RefMat t(a.m, a.n);
  for (const auto &[ij, x] : a.e) {
    if (f(x, ij.first, ij.second, thunk)) t.set(ij.first, ij.second, x);
  }
  write_mat(c, t, mask, accum, d);
}

/// Row-wise reduce to a vector (column-wise under transpose_a). Rows with no
/// entries produce no entry (the identity is NOT inserted).
inline void reduce_mat_to_vec(RefVec &w, const RefVec *mask,
                              const OAccum &accum, const OBinary &add,
                              RefMat a, const ODesc &d) {
  if (d.transpose_a) a = transpose_of(a);
  detail::check_same_size(w.n, a.m, "oracle reduce: size mismatch");
  RefVec t(a.m);
  for (Index i = 0; i < a.m; ++i) {
    std::optional<Value> acc;
    for (Index j = 0; j < a.n; ++j) {
      auto x = a.get(i, j);
      if (x) fold(acc, *x, add);
    }
    if (acc) t.set(i, *acc);
  }
  write_vec(w, t, mask, accum, d);
}

/// Reduce a matrix to a scalar, seeding with the monoid identity.
inline Value reduce_mat_to_scalar(Value s, const OAccum &accum,
                                  const OBinary &add, Value identity,
                                  const RefMat &a) {
  Value acc = identity;
  for (const auto &[ij, x] : a.e) acc = add(acc, x);  // ascending (i, j)
  return accum ? (*accum)(s, acc) : acc;
}

inline Value reduce_vec_to_scalar(Value s, const OAccum &accum,
                                  const OBinary &add, Value identity,
                                  const RefVec &u) {
  Value acc = identity;
  for (const auto &[i, x] : u.e) acc = add(acc, x);
  return accum ? (*accum)(s, acc) : acc;
}

/// C⟨M⟩ ⊙= Aᵀ — with transpose_a the operation is a masked copy of A.
inline void transpose(RefMat &c, const RefMat *mask, const OAccum &accum,
                      const RefMat &a, const ODesc &d) {
  RefMat t = d.transpose_a ? a : transpose_of(a);
  write_mat(c, t, mask, accum, d);
}

/// Kronecker product: C(i·mb + ib, k·nb + l) = op(a(i,k), b(ib,l)).
inline void kronecker(RefMat &c, const RefMat *mask, const OAccum &accum,
                      const OBinary &op, const RefMat &a, const RefMat &b,
                      const ODesc &d) {
  detail::check_same_size(c.m, a.m * b.m, "oracle kron: output rows");
  detail::check_same_size(c.n, a.n * b.n, "oracle kron: output cols");
  RefMat t(a.m * b.m, a.n * b.n);
  for (const auto &[aij, av] : a.e) {
    for (const auto &[bij, bv] : b.e) {
      t.set(aij.first * b.m + bij.first, aij.second * b.n + bij.second,
            op(av, bv));
    }
  }
  write_mat(c, t, mask, accum, d);
}

/// Index selection for extract/assign: either ALL or an explicit list.
struct OIndices {
  bool all = true;
  std::vector<Index> list;

  [[nodiscard]] Index size(Index n) const {
    return all ? n : static_cast<Index>(list.size());
  }
  [[nodiscard]] Index map(Index k) const { return all ? k : list[k]; }
};

/// w⟨m⟩ ⊙= u(idx): output position k ← u(idx[k]).
inline void extract_vec(RefVec &w, const RefVec *mask, const OAccum &accum,
                        const RefVec &u, const OIndices &ix, const ODesc &d) {
  const Index out_n = ix.size(u.n);
  detail::check_same_size(w.n, out_n, "oracle extract: output size mismatch");
  RefVec t(out_n);
  for (Index k = 0; k < out_n; ++k) {
    const Index i = ix.map(k);
    detail::require(i < u.n, Info::index_out_of_bounds, "oracle extract");
    auto x = u.get(i);
    if (x) t.set(k, *x);
  }
  write_vec(w, t, mask, accum, d);
}

/// C⟨M⟩ ⊙= A(rows, cols) — induced submatrix (of Aᵀ under transpose_a).
/// Duplicate indices in the lists replicate rows/columns.
inline void extract_mat(RefMat &c, const RefMat *mask, const OAccum &accum,
                        RefMat a, const OIndices &rows, const OIndices &cols,
                        const ODesc &d) {
  if (d.transpose_a) a = transpose_of(a);
  const Index out_m = rows.size(a.m);
  const Index out_n = cols.size(a.n);
  detail::check_same_size(c.m, out_m, "oracle extract: output rows mismatch");
  detail::check_same_size(c.n, out_n, "oracle extract: output cols mismatch");
  RefMat t(out_m, out_n);
  for (Index r = 0; r < out_m; ++r) {
    const Index si = rows.map(r);
    detail::require(si < a.m, Info::index_out_of_bounds, "oracle extract row");
    for (Index q = 0; q < out_n; ++q) {
      const Index sj = cols.map(q);
      detail::require(sj < a.n, Info::index_out_of_bounds,
                      "oracle extract col");
      auto x = a.get(si, sj);
      if (x) t.set(r, q, *x);
    }
  }
  write_mat(c, t, mask, accum, d);
}

/// w⟨m⟩ ⊙= A(:, j) (row j of A under transpose_a).
inline void extract_col(RefVec &w, const RefVec *mask, const OAccum &accum,
                        const RefMat &a, Index j, const ODesc &d) {
  if (d.transpose_a) {
    detail::require(j < a.m, Info::index_out_of_bounds, "oracle extract_col");
    detail::check_same_size(w.n, a.n, "oracle extract_col: size mismatch");
    RefVec t(a.n);
    for (Index k = 0; k < a.n; ++k) {
      auto x = a.get(j, k);
      if (x) t.set(k, *x);
    }
    write_vec(w, t, mask, accum, d);
  } else {
    detail::require(j < a.n, Info::index_out_of_bounds, "oracle extract_col");
    detail::check_same_size(w.n, a.m, "oracle extract_col: size mismatch");
    RefVec t(a.m);
    for (Index i = 0; i < a.m; ++i) {
      auto x = a.get(i, j);
      if (x) t.set(i, *x);
    }
    write_vec(w, t, mask, accum, d);
  }
}

// ---------------------------------------------------------------------------
// assign — GrB_assign semantics: the mask is sized like the output; inside
// the mask but outside the assigned region the output keeps its old content;
// outside the mask, replace clears anywhere in the output. The documented
// grb extension for duplicate vector-assign indices is mirrored: duplicates
// combine sequentially through the accumulator (ascending source position),
// last-one-wins without an accumulator.
// ---------------------------------------------------------------------------

namespace detail_assign {

/// Shared final walk once region membership and the mapped source values are
/// known for each output position.
inline void walk_vec(RefVec &w, const RefVec *mask, const OAccum &accum,
                     const std::vector<std::uint8_t> &inreg, const RefVec &t,
                     const ODesc &d) {
  RefVec out(w.n);
  for (Index p = 0; p < w.n; ++p) {
    auto c = w.get(p);
    const bool in_mask = mask_pass_vec(mask, p, d);
    if (!in_mask) {
      if (!d.replace && c) out.set(p, *c);
      continue;
    }
    if (!inreg[p]) {
      if (c) out.set(p, *c);
      continue;
    }
    auto tv = t.get(p);
    if (accum) {
      if (c && tv) {
        out.set(p, (*accum)(*c, *tv));
      } else if (c) {
        out.set(p, *c);
      } else if (tv) {
        out.set(p, *tv);
      }
    } else if (tv) {
      out.set(p, *tv);
    }
  }
  w = std::move(out);
}

}  // namespace detail_assign

/// w⟨m⟩(idx) ⊙= u
inline void assign_vec(RefVec &w, const RefVec *mask, const OAccum &accum,
                       const RefVec &u, const OIndices &ix, const ODesc &d) {
  const Index reg = ix.size(w.n);
  detail::check_same_size(u.n, reg, "oracle assign: source size mismatch");
  if (mask != nullptr) {
    detail::check_same_size(mask->n, w.n, "oracle assign: mask size mismatch");
  }
  std::vector<std::uint8_t> inreg(static_cast<std::size_t>(w.n), 0);
  for (Index k = 0; k < reg; ++k) {
    const Index p = ix.map(k);
    detail::require(p < w.n, Info::index_out_of_bounds, "oracle assign");
    inreg[p] = 1;
  }
  RefVec t(w.n);
  for (const auto &[k, x] : u.e) {  // ascending source position
    const Index p = ix.map(k);
    auto prev = t.get(p);
    if (prev && accum) {
      t.set(p, (*accum)(*prev, x));
    } else {
      t.set(p, x);  // first landing, or duplicates without accum: last wins
    }
  }
  detail_assign::walk_vec(w, mask, accum, inreg, t, d);
}

/// w⟨m⟩(idx) ⊙= s — scalar assign: the region is densely present.
inline void assign_vec_scalar(RefVec &w, const RefVec *mask,
                              const OAccum &accum, Value s, const OIndices &ix,
                              const ODesc &d) {
  const Index reg = ix.size(w.n);
  if (mask != nullptr) {
    detail::check_same_size(mask->n, w.n, "oracle assign: mask size mismatch");
  }
  std::vector<std::uint8_t> inreg(static_cast<std::size_t>(w.n), 0);
  RefVec t(w.n);
  for (Index k = 0; k < reg; ++k) {
    const Index p = ix.map(k);
    detail::require(p < w.n, Info::index_out_of_bounds, "oracle assign");
    inreg[p] = 1;
    t.set(p, s);
  }
  detail_assign::walk_vec(w, mask, accum, inreg, t, d);
}

/// C⟨M⟩(rows, cols) ⊙= s — every region position receives the scalar.
inline void assign_mat_scalar(RefMat &c, const RefMat *mask,
                              const OAccum &accum, Value s,
                              const OIndices &rows, const OIndices &cols,
                              const ODesc &d) {
  if (mask != nullptr) {
    detail::check_same_size(mask->m, c.m, "oracle assign: mask rows");
    detail::check_same_size(mask->n, c.n, "oracle assign: mask cols");
  }
  std::vector<std::uint8_t> rowin(static_cast<std::size_t>(c.m),
                                  rows.all ? 1 : 0);
  std::vector<std::uint8_t> colin(static_cast<std::size_t>(c.n),
                                  cols.all ? 1 : 0);
  for (Index k = 0; k < rows.size(c.m) && !rows.all; ++k) {
    detail::require(rows.map(k) < c.m, Info::index_out_of_bounds,
                    "oracle assign row");
    rowin[rows.map(k)] = 1;
  }
  for (Index k = 0; k < cols.size(c.n) && !cols.all; ++k) {
    detail::require(cols.map(k) < c.n, Info::index_out_of_bounds,
                    "oracle assign col");
    colin[cols.map(k)] = 1;
  }
  RefMat out(c.m, c.n);
  for (Index i = 0; i < c.m; ++i) {
    for (Index j = 0; j < c.n; ++j) {
      auto cv = c.get(i, j);
      const bool in_mask = mask_pass_mat(mask, i, j, d);
      const bool inreg = rowin[i] && colin[j];
      if (!in_mask) {
        if (!d.replace && cv) out.set(i, j, *cv);
        continue;
      }
      if (!inreg) {
        if (cv) out.set(i, j, *cv);
        continue;
      }
      if (accum && cv) {
        out.set(i, j, (*accum)(*cv, s));
      } else {
        out.set(i, j, s);
      }
    }
  }
  c = std::move(out);
}

/// C⟨M⟩(rows, cols) ⊙= A. Duplicate indices are rejected upstream (the real
/// implementation raises invalid_value); the oracle assumes unique lists.
inline void assign_mat(RefMat &c, const RefMat *mask, const OAccum &accum,
                       const RefMat &a, const OIndices &rows,
                       const OIndices &cols, const ODesc &d) {
  detail::check_same_size(a.m, rows.size(c.m), "oracle assign: source rows");
  detail::check_same_size(a.n, cols.size(c.n), "oracle assign: source cols");
  if (mask != nullptr) {
    detail::check_same_size(mask->m, c.m, "oracle assign: mask rows");
    detail::check_same_size(mask->n, c.n, "oracle assign: mask cols");
  }
  constexpr Index kNone = std::numeric_limits<Index>::max();
  std::vector<Index> rowmap(static_cast<std::size_t>(c.m), kNone);
  std::vector<Index> colmap(static_cast<std::size_t>(c.n), kNone);
  for (Index k = 0; k < rows.size(c.m); ++k) {
    const Index p = rows.map(k);
    detail::require(p < c.m, Info::index_out_of_bounds, "oracle assign row");
    rowmap[p] = k;
  }
  for (Index k = 0; k < cols.size(c.n); ++k) {
    const Index p = cols.map(k);
    detail::require(p < c.n, Info::index_out_of_bounds, "oracle assign col");
    colmap[p] = k;
  }
  RefMat out(c.m, c.n);
  for (Index i = 0; i < c.m; ++i) {
    for (Index j = 0; j < c.n; ++j) {
      auto cv = c.get(i, j);
      const bool in_mask = mask_pass_mat(mask, i, j, d);
      const bool inreg = rowmap[i] != kNone && colmap[j] != kNone;
      if (!in_mask) {
        if (!d.replace && cv) out.set(i, j, *cv);
        continue;
      }
      if (!inreg) {
        if (cv) out.set(i, j, *cv);
        continue;
      }
      auto tv = a.get(rowmap[i], colmap[j]);
      if (accum) {
        if (cv && tv) {
          out.set(i, j, (*accum)(*cv, *tv));
        } else if (cv) {
          out.set(i, j, *cv);
        } else if (tv) {
          out.set(i, j, *tv);
        }
      } else if (tv) {
        out.set(i, j, *tv);
      }
    }
  }
  c = std::move(out);
}

/// build: combine duplicate tuples with `dup` in sequence order — matching
/// the real build's order-preserving counting sort.
inline RefMat build_mat(Index m, Index n, const std::vector<Index> &ri,
                        const std::vector<Index> &ci,
                        const std::vector<Value> &vv, const OBinary &dup) {
  RefMat a(m, n);
  for (std::size_t p = 0; p < ri.size(); ++p) {
    detail::require(ri[p] < m && ci[p] < n, Info::index_out_of_bounds,
                    "oracle build: tuple out of bounds");
    auto prev = a.get(ri[p], ci[p]);
    a.set(ri[p], ci[p], prev ? dup(*prev, vv[p]) : vv[p]);
  }
  return a;
}

inline RefVec build_vec(Index n, const std::vector<Index> &ix,
                        const std::vector<Value> &vv, const OBinary &dup) {
  RefVec u(n);
  for (std::size_t p = 0; p < ix.size(); ++p) {
    detail::require(ix[p] < n, Info::index_out_of_bounds,
                    "oracle build: tuple out of bounds");
    auto prev = u.get(ix[p]);
    u.set(ix[p], prev ? dup(*prev, vv[p]) : vv[p]);
  }
  return u;
}

}  // namespace oracle
}  // namespace grb::testing

// grb/testing/scenario.hpp — the fuzzer's op-instance description.
//
// A Scenario is pure data: one Table I operation, its descriptor/accumulator/
// semiring choices, every input container as (dims, tuples, storage format),
// an optional non-blocking mutation prologue (setElement/removeElement with
// interleaved probes that force pending-tuple and zombie flushes), and the
// index lists for extract/assign. Scenarios serialize to a line-based text
// format (.repro files) so a shrunk failure is a self-contained, committable
// artifact that `lagraph_cli fuzz --replay` and the conformance ctest suite
// replay byte-for-byte.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "grb/types.hpp"

namespace grb::testing {

// Enumerations are serialized by name (see scenario.cpp); append-only so old
// corpus files keep parsing.

enum class OpKind : int {
  mxm = 0,
  mxv,
  vxm,
  ewise_add_m,
  ewise_mult_m,
  ewise_add_v,
  ewise_mult_v,
  apply_m,
  apply_v,
  select_m,
  select_v,
  reduce_m2v,
  reduce_m2s,
  reduce_v2s,
  transpose_m,
  kron,
  extract_v,
  extract_m,
  extract_col,
  assign_vv,
  assign_vs,
  assign_ms,
  assign_mm,
  dup_m,
  dup_v,
  mutate_m,
  mutate_v,
  // Fused kernels (grb/mxv.hpp, grb/apply.hpp): the real side runs the fused
  // entry point, the oracle composes the unfused primitives — fusion must be
  // bit-invisible. The vector output plus the stamp / prune companions are
  // all folded into Result (companions appended to `observed`).
  fused_mxv_apply,
  fused_vxm_select,
  kCount
};

enum class AccumKind : int { none = 0, plus, min, max, second, kCount };

enum class SemiringKind : int {
  plus_times = 0,
  min_plus,
  plus_second,
  plus_pair,
  lor_land,
  max_first,
  any_secondi,
  kCount
};

enum class MonoidKind : int { plus = 0, min, max, kCount };

enum class BinOpKind : int {
  plus = 0,
  times,
  min,
  max,
  first,
  second,
  minus,
  kCount
};

enum class UnaryKind : int {
  identity = 0,
  ainv,
  abs_op,
  one,
  plus_thunk,   // bind-second: x + thunk (GrB_apply with a bound scalar)
  times_thunk,  // bind-second: x * thunk
  kCount
};

enum class SelectKind : int {
  tril = 0,
  triu,
  diag,
  offdiag,
  value_ne,
  value_le,
  row_lt,
  col_lt,
  kCount
};

/// Storage format requested for a matrix operand (full is reachable only via
/// the full_matrix constructor and is covered by the targeted unit tests).
enum class MatFmt : int { csr = 0, hypersparse, bitmap, kCount };
enum class VecFmt : int { sparse = 0, bitmap, kCount };

/// One step of a non-blocking mutation prologue. `probe` forces a read
/// between mutations: the real side must flush pending tuples / bury zombies
/// to answer it, and the answer itself is compared against the oracle.
/// Probe 4 is a pure flush boundary (wait() on the real side, no-op on the
/// oracle, records nothing): it splits the prologue into batches the way
/// the ingest write path does, so the fuzzer exercises multi-flush
/// interleavings — a zombie staged in batch 1 must stay buried after the
/// merge in batch 2 flushes on top of it.
struct Mutation {
  bool del = false;  // removeElement instead of setElement
  bool add = false;  // accum_element (upsert: add into value, or insert)
  Index i = 0;
  Index j = 0;       // unused for vector mutations
  std::int64_t v = 0;
  int probe = 0;     // 0 none, 1 nvals, 2 getElement(i,j), 3 reduce(plus),
                     // 4 flush boundary (wait(); nothing recorded)
};

struct MatData {
  Index m = 0;
  Index n = 0;
  std::vector<Index> ri, ci;
  std::vector<std::int64_t> vv;
  MatFmt fmt = MatFmt::csr;
  std::vector<Mutation> muts;  // applied after build, before the op
};

struct VecData {
  Index n = 0;
  std::vector<Index> ix;
  std::vector<std::int64_t> vv;
  VecFmt fmt = VecFmt::sparse;
  std::vector<Mutation> muts;
};

struct Scenario {
  std::uint64_t seed = 0;  // provenance: generate(seed) reproduces this
  OpKind op = OpKind::mxm;
  AccumKind accum = AccumKind::none;
  SemiringKind sr = SemiringKind::plus_times;
  MonoidKind monoid = MonoidKind::plus;
  BinOpKind binop = BinOpKind::plus;
  UnaryKind unop = UnaryKind::identity;
  SelectKind sel = SelectKind::tril;
  std::int64_t thunk = 0;
  std::int64_t scalar = 0;  // scalar assign value / scalar-reduce init
  Index col = 0;            // extract_col column

  // Descriptor.
  bool ta = false, tb = false, comp = false, structural = false,
       replace = false;
  bool has_mask = false;

  // Pinned storage width for the real side: 0 = follow the sweep's
  // Config::force_index_width, 1 = u32, 2 = u64. Serialized as `iwidth` —
  // an append-only .repro key, so old files parse unchanged (field stays 0).
  int force_index_width = 0;
  // Lowered Config::u32_index_limit for the real side (0 = default). Lets a
  // tiny corpus scenario sit exactly on the u32 → u64 promotion boundary:
  // containers under the limit store u32, a mutation batch pushing nvals
  // past it must promote. Serialized as `u32limit`, append-only like iwidth.
  Index u32_limit = 0;

  // Logical dimensions; container dims are derived from these (and the index
  // list lengths) by normalize(), so the minimizer can shrink coherently.
  Index dm = 1, dk = 1, dn = 1;

  MatData a, b, cinit, mmask;
  VecData u, v, winit, vmask;

  bool rows_all = true, cols_all = true;
  std::vector<Index> rows, cols;
};

/// The observable outcome of running a scenario (on either side): final
/// output container contents plus the probe log of the mutation prologue.
struct Result {
  enum class Kind : int { matrix = 0, vector, scalar };
  Kind kind = Kind::matrix;
  Index m = 0, n = 0;
  std::vector<std::tuple<Index, Index, std::int64_t>> mat;  // sorted (i, j)
  std::vector<std::pair<Index, std::int64_t>> vec;          // sorted i
  std::int64_t scalar = 0;
  std::vector<std::int64_t> observed;  // probe answers, in prologue order

  bool operator==(const Result &) const = default;
  [[nodiscard]] std::string to_string() const;
};

const char *op_name(OpKind op);

/// Re-derive container dims from the logical dims + index lists, clamp every
/// tuple/list/mutation into range, and enforce op-specific constraints
/// (unique assign lists, matching mutation shapes). Generation and every
/// minimizer edit funnel through this, so a Scenario in flight is always
/// executable on both sides.
void normalize(Scenario &s);

/// Deterministic scenario generation: same seed, same scenario.
Scenario generate(std::uint64_t seed);

/// Text (de)serialization — the .repro format.
std::string serialize(const Scenario &s);
std::optional<Scenario> parse(const std::string &text, std::string *error);

}  // namespace grb::testing

// grb/testing/differ.hpp — the differential half of the conformance harness.
//
// A Scenario is executed twice: once through the real grb kernels (under a
// swept Config: thread count × forced storage format × planner direction
// hints) and once through the naive oracle (grb/testing/oracle.hpp). The two
// Results must agree bit-exactly — element type is std::int64_t throughout,
// so there is no floating-point associativity escape hatch.
//
// When a sweep variant disagrees, minimize() shrinks the scenario (drop
// tuples/mutations/list entries, clear descriptor flags, halve dimensions —
// each edit re-normalized) to a small self-contained .repro file.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "grb/testing/scenario.hpp"

namespace grb::testing {

/// One point of the execution sweep: every scenario runs under each of
/// these and must match the oracle under all of them.
struct RunConfig {
  int threads = 1;          // Config::num_threads (1 = bit-exact serial)
  int force_format = 0;     // 0 none, 1 sparse, 2 bitmap (ForceFormat)
  bool force_push = false;  // planner direction overrides
  bool force_pull = false;
  int force_index_width = 0;  // 0 auto, 1 u32, 2 u64 (ForceIndexWidth)

  [[nodiscard]] std::string name() const;
};

/// The standard sweep: threads {1, 4, 8} × force_format {none, sparse,
/// bitmap}, with the planner direction overrides folded onto two of the
/// nine points and the storage-width overrides folded onto the format-free
/// column, so every knob is exercised. A scenario's own force_index_width
/// (from an .repro) takes precedence over the sweep's.
std::vector<RunConfig> sweep_configs();

/// Test hook: mutate the real side's Result before comparison. Used to
/// validate that the harness catches (and shrinks) an injected kernel bug.
using CorruptHook =
    std::function<void(const Scenario &, const RunConfig &, Result &)>;

/// Execute through the real kernels under `rc`. Throws only if the scenario
/// is malformed (normalize() prevents that for generated/parsed scenarios).
Result run_real(const Scenario &s, const RunConfig &rc);

/// Execute through the oracle (config-independent).
Result run_oracle(const Scenario &s);

struct Mismatch {
  Scenario scenario;
  RunConfig rc;
  Result expected;  // oracle
  Result actual;    // real kernels
  std::string note;  // set when a side threw instead of producing a Result

  [[nodiscard]] std::string to_string() const;
};

/// Run one scenario under one config and compare. nullopt = match.
std::optional<Mismatch> check_one(const Scenario &s, const RunConfig &rc,
                                  const CorruptHook *corrupt = nullptr);

/// Run one scenario under the full sweep. `instances`, when given, is
/// incremented once per (scenario, config) execution pair.
std::optional<Mismatch> check_sweep(const Scenario &s,
                                    std::uint64_t *instances = nullptr,
                                    const CorruptHook *corrupt = nullptr);

/// Greedy fixed-point shrink: apply every known edit (drop tuples, drop
/// mutations, drop index-list entries, clear flags/accum/mask, shrink
/// dimensions), keep an edit iff `fails` still holds after normalize().
using FailPred = std::function<bool(const Scenario &)>;
Scenario minimize(Scenario s, const FailPred &fails);

/// Convenience: minimize against "check_one(s, rc, corrupt) mismatches".
Scenario minimize_against(const Scenario &s, const RunConfig &rc,
                          const CorruptHook *corrupt = nullptr);

struct FuzzOptions {
  double seconds = 0;              // wall-clock budget; 0 = no time limit
  std::uint64_t max_scenarios = 0; // scenario budget; 0 = no count limit
  std::uint64_t seed = 1;          // first scenario seed (consecutive after)
  bool shrink = true;              // minimize the first failure
  CorruptHook corrupt;             // test hook (see above)
};

struct FuzzReport {
  std::uint64_t scenarios = 0;
  std::uint64_t instances = 0;  // (scenario, config) pairs executed
  bool ok = true;
  std::uint64_t failing_seed = 0;
  std::string detail;                // human-readable mismatch description
  std::optional<Scenario> shrunk;    // minimized failing scenario
  std::string repro;                 // serialize(*shrunk) (or the unshrunk one)
};

/// Seeded fuzz loop: scenarios generate(seed), generate(seed+1), … until a
/// budget is hit or a mismatch is found (stops at the first failure).
FuzzReport fuzz(const FuzzOptions &opt);

/// Replay every .repro file under `dir` (non-recursive) through the sweep.
struct ReplayOutcome {
  int files = 0;
  int failures = 0;
  std::uint64_t instances = 0;
  std::string detail;  // per-failure descriptions
};
ReplayOutcome replay_corpus(const std::string &dir);

/// Replay a single .repro file; nullopt string = parse error (in *error).
std::optional<Mismatch> replay_file(const std::string &path,
                                    std::string *error);

}  // namespace grb::testing

// grb/types.hpp — fundamental types, status codes, and the exception type for
// the grb GraphBLAS substrate.
//
// grb is a from-scratch C++20 implementation of the GraphBLAS operation set
// (mxm/mxv/vxm, element-wise ops, extract/assign, apply/select, reduce,
// transpose, build/extractTuples) over arbitrary semirings, with masks
// (valued/structural, complemented), accumulators, and replace/merge output
// semantics. It plays the role SuiteSparse:GraphBLAS plays in the LAGraph
// paper: the substrate on which the LAGraph algorithms are written.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace grb {

/// Index type for rows, columns, and vector positions. GraphBLAS mandates
/// 64-bit indices (the paper cites this as one source of the gap vs the
/// 32-bit GAP benchmark), so we use 64-bit throughout.
using Index = std::uint64_t;

/// Sentinel meaning "all indices" in assign/extract, mirroring GrB_ALL.
inline constexpr Index ALL = std::numeric_limits<Index>::max();

/// Boolean element type (GrB_BOOL). `bool` itself is rejected as a container
/// element because std::vector<bool> is a packed bitset whose elements cannot
/// be exposed through spans/pointers; use grb::Bool instead.
using Bool = std::uint8_t;

/// Status codes, modelled on GrB_Info. Negative values are errors; positive
/// values are informational (no_value); zero is success.
enum class Info : int {
  success = 0,
  no_value = 1,

  uninitialized_object = -1,
  null_pointer = -2,
  invalid_value = -3,
  invalid_index = -4,
  domain_mismatch = -5,
  dimension_mismatch = -6,
  output_not_empty = -7,
  not_implemented = -8,
  panic = -9,
  out_of_memory = -10,
  insufficient_space = -11,
  index_out_of_bounds = -12,
  empty_object = -13,
};

/// Human-readable name for a status code.
inline const char *info_name(Info info) noexcept {
  switch (info) {
    case Info::success: return "success";
    case Info::no_value: return "no_value";
    case Info::uninitialized_object: return "uninitialized_object";
    case Info::null_pointer: return "null_pointer";
    case Info::invalid_value: return "invalid_value";
    case Info::invalid_index: return "invalid_index";
    case Info::domain_mismatch: return "domain_mismatch";
    case Info::dimension_mismatch: return "dimension_mismatch";
    case Info::output_not_empty: return "output_not_empty";
    case Info::not_implemented: return "not_implemented";
    case Info::panic: return "panic";
    case Info::out_of_memory: return "out_of_memory";
    case Info::insufficient_space: return "insufficient_space";
    case Info::index_out_of_bounds: return "index_out_of_bounds";
    case Info::empty_object: return "empty_object";
  }
  return "unknown";
}

/// Exception carrying a GraphBLAS status code. The grb layer reports errors
/// by throwing; the lagraph layer converts exceptions into the paper's
/// int-status + message-buffer convention at its public boundary.
class Exception : public std::runtime_error {
 public:
  Exception(Info info, const std::string &what)
      : std::runtime_error(std::string(info_name(info)) + ": " + what),
        info_(info) {}

  [[nodiscard]] Info info() const noexcept { return info_; }

 private:
  Info info_;
};

namespace detail {

[[noreturn]] inline void fail(Info info, const std::string &what) {
  throw Exception(info, what);
}

inline void require(bool ok, Info info, const char *what) {
  if (!ok) fail(info, what);
}

inline void check_same_size(Index a, Index b, const char *what) {
  if (a != b) fail(Info::dimension_mismatch, what);
}

}  // namespace detail

/// Library version information (see src/grb.cpp).
struct Version {
  int major;
  int minor;
  int patch;
};

Version version() noexcept;
const char *version_string() noexcept;

}  // namespace grb

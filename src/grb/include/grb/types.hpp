// grb/types.hpp — fundamental types, status codes, and the exception type for
// the grb GraphBLAS substrate.
//
// grb is a from-scratch C++20 implementation of the GraphBLAS operation set
// (mxm/mxv/vxm, element-wise ops, extract/assign, apply/select, reduce,
// transpose, build/extractTuples) over arbitrary semirings, with masks
// (valued/structural, complemented), accumulators, and replace/merge output
// semantics. It plays the role SuiteSparse:GraphBLAS plays in the LAGraph
// paper: the substrate on which the LAGraph algorithms are written.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace grb {

/// Index type for rows, columns, and vector positions. GraphBLAS mandates
/// 64-bit indices (the paper cites this as one source of the gap vs the
/// 32-bit GAP benchmark), so we use 64-bit throughout.
using Index = std::uint64_t;

/// Sentinel meaning "all indices" in assign/extract, mirroring GrB_ALL.
inline constexpr Index ALL = std::numeric_limits<Index>::max();

/// Physical width of the index arrays inside a container. The API above is
/// 64-bit everywhere (Index stays std::uint64_t); width is a *storage*
/// property chosen per container at build/finalize time, SuiteSparse-style:
/// u32 when every dimension and the entry count fit below 2^31, u64
/// otherwise. Kernels dispatch once per call to a width-typed executor.
enum class IndexWidth : std::uint8_t { u32, u64 };

/// Containers whose max(nrows, ncols, nvals) is below this fit u32 storage.
/// 2^31 (not 2^32) so that sizes, one-past-the-end row pointers, and signed
/// intermediate arithmetic all stay representable without overflow checks.
inline constexpr Index kU32IndexLimit = Index{1} << 31;

inline const char *index_width_name(IndexWidth w) noexcept {
  return w == IndexWidth::u32 ? "u32" : "u64";
}

/// Bytes one stored index occupies at the given width.
inline constexpr std::size_t index_width_bytes(IndexWidth w) noexcept {
  return w == IndexWidth::u32 ? 4 : 8;
}

/// Boolean element type (GrB_BOOL). `bool` itself is rejected as a container
/// element because std::vector<bool> is a packed bitset whose elements cannot
/// be exposed through spans/pointers; use grb::Bool instead.
using Bool = std::uint8_t;

/// Status codes, modelled on GrB_Info. Negative values are errors; positive
/// values are informational (no_value); zero is success.
enum class Info : int {
  success = 0,
  no_value = 1,

  uninitialized_object = -1,
  null_pointer = -2,
  invalid_value = -3,
  invalid_index = -4,
  domain_mismatch = -5,
  dimension_mismatch = -6,
  output_not_empty = -7,
  not_implemented = -8,
  panic = -9,
  out_of_memory = -10,
  insufficient_space = -11,
  index_out_of_bounds = -12,
  empty_object = -13,
};

/// Human-readable name for a status code.
inline const char *info_name(Info info) noexcept {
  switch (info) {
    case Info::success: return "success";
    case Info::no_value: return "no_value";
    case Info::uninitialized_object: return "uninitialized_object";
    case Info::null_pointer: return "null_pointer";
    case Info::invalid_value: return "invalid_value";
    case Info::invalid_index: return "invalid_index";
    case Info::domain_mismatch: return "domain_mismatch";
    case Info::dimension_mismatch: return "dimension_mismatch";
    case Info::output_not_empty: return "output_not_empty";
    case Info::not_implemented: return "not_implemented";
    case Info::panic: return "panic";
    case Info::out_of_memory: return "out_of_memory";
    case Info::insufficient_space: return "insufficient_space";
    case Info::index_out_of_bounds: return "index_out_of_bounds";
    case Info::empty_object: return "empty_object";
  }
  return "unknown";
}

/// Exception carrying a GraphBLAS status code. The grb layer reports errors
/// by throwing; the lagraph layer converts exceptions into the paper's
/// int-status + message-buffer convention at its public boundary.
class Exception : public std::runtime_error {
 public:
  Exception(Info info, const std::string &what)
      : std::runtime_error(std::string(info_name(info)) + ": " + what),
        info_(info) {}

  [[nodiscard]] Info info() const noexcept { return info_; }

 private:
  Info info_;
};

namespace detail {

[[noreturn]] inline void fail(Info info, const std::string &what) {
  throw Exception(info, what);
}

inline void require(bool ok, Info info, const char *what) {
  if (!ok) fail(info, what);
}

inline void check_same_size(Index a, Index b, const char *what) {
  if (a != b) fail(Info::dimension_mismatch, what);
}

}  // namespace detail

/// Library version information (see src/grb.cpp).
struct Version {
  int major;
  int minor;
  int patch;
};

Version version() noexcept;
const char *version_string() noexcept;

}  // namespace grb

// grb/mxv.hpp — matrix-vector and vector-matrix multiplication.
//
// These two operations are the push/pull pair of the paper (§IV-A):
//   - vxm (w = uᵀ ⊕.⊗ A) iterates the entries of u and scatters along the
//     rows of A — a "push" step, cheap when the frontier u is small;
//   - mxv (w = A ⊕.⊗ u) iterates rows of A and computes sparse dot products
//     against u — a "pull" step, cheap when the mask prunes most rows and
//     the `any` monoid allows the dot product to stop at the first hit.
// A transposed descriptor swaps the kernels (uᵀAᵀ is a pull, Aᵀu is a push),
// so LAGraph's direction-optimizing BFS simply chooses between vxm(u, A) and
// mxv(Aᵀ, u) on the explicitly cached transpose.
//
// Masks are pushed down into both kernels (output positions outside the
// effective mask are never computed) and then the common output step in
// mask.hpp applies the full mask/accumulator/replace semantics.
#pragma once

#include <algorithm>
#include <vector>

#include "grb/mask.hpp"
#include "grb/semiring.hpp"

namespace grb {
namespace detail {

/// Push kernel: for each entry u(k), scatter along row k of A into the
/// workspace. `combine(aval, uval, jout, k) -> Z` evaluates the semiring
/// multiply with the caller's operand order and coordinate convention.
template <typename Z, typename SR, typename AT, typename U, typename Pred,
          typename Combine>
Vector<Z> push_kernel(SR sr, const Matrix<AT> &a, const Vector<U> &u,
                      Pred &&allowed, Combine &&combine, Index out_size) {
  std::vector<Z> work(static_cast<std::size_t>(out_size));
  std::vector<std::uint8_t> mark(static_cast<std::size_t>(out_size), 0);
  std::vector<Index> touched;
  using AddM = typename SR::add_monoid;
  u.for_each([&](Index k, const U &uk) {
    a.for_each_in_row(k, [&](Index j, const AT &akj) {
      if (!allowed(j)) return;
      if (mark[j]) {
        if constexpr (AddM::has_terminal) {
          if (AddM::is_terminal(work[j])) return;
        }
        work[j] = sr.add(work[j], combine(akj, uk, j, k));
      } else {
        mark[j] = 1;
        work[j] = combine(akj, uk, j, k);
        touched.push_back(j);
      }
    });
  });
  std::sort(touched.begin(), touched.end());
  std::vector<Index> idx;
  std::vector<Z> val;
  idx.reserve(touched.size());
  val.reserve(touched.size());
  for (Index j : touched) {
    idx.push_back(j);
    val.push_back(work[j]);
  }
  Vector<Z> t(out_size);
  t.adopt_sparse(std::move(idx), std::move(val));
  return t;
}

/// Dot kernel: for each row i of A passing `row_allowed`, reduce
/// combine(a(i,k), u(k), i, k) over the entries shared with u. With an
/// all-terminal (`any`) monoid this stops at the first shared entry — the
/// bottom-up BFS early exit.
template <typename Z, typename SR, typename AT, typename U, typename Pred,
          typename Combine>
Vector<Z> dot_kernel(SR sr, const Matrix<AT> &a, const Vector<U> &u,
                     Pred &&row_allowed, Combine &&combine) {
  const Index m = a.nrows();
  // The bitmap format gives O(1) probes into u, making each dot product
  // proportional to the row length — "particularly important for the 'pull'
  // phase" (§VI-A). With the bitmap disabled in Config (the format
  // ablation), probes fall back to binary search on the sorted sparse u.
  const bool use_bitmap = config().bitmap_switch_density <= 1.0;
  if (use_bitmap) {
    u.to_bitmap();
  } else {
    u.to_sparse();
  }
  const std::uint8_t *up = use_bitmap ? u.bitmap_present() : nullptr;
  const U *uv = use_bitmap ? u.bitmap_values() : nullptr;
  auto us_idx = use_bitmap ? std::span<const Index>{} : u.sparse_indices();
  auto us_val = use_bitmap ? std::span<const U>{} : u.sparse_values();
  auto probe = [&](Index k) -> const U * {
    if (use_bitmap) return up[k] ? &uv[k] : nullptr;
    auto it = std::lower_bound(us_idx.begin(), us_idx.end(), k);
    if (it == us_idx.end() || *it != k) return nullptr;
    return &us_val[static_cast<std::size_t>(it - us_idx.begin())];
  };
  using AddM = typename SR::add_monoid;

  a.finish();
  const bool csr = a.format() == Matrix<AT>::Format::csr;
  auto rp = csr ? a.rowptr() : std::span<const Index>{};
  auto cx = csr ? a.colidx() : std::span<const Index>{};
  auto vx = csr ? a.values() : std::span<const AT>{};

  // Rows are independent dot products: embarrassingly parallel. Results
  // land in per-row slots (no shared push_back) and are packed afterwards.
  std::vector<std::uint8_t> found(static_cast<std::size_t>(m), 0);
  std::vector<Z> out(static_cast<std::size_t>(m));
#pragma omp parallel for schedule(dynamic, 256)
  for (Index i = 0; i < m; ++i) {
    if (!row_allowed(i)) continue;
    bool hit = false;
    Z acc{};
    auto step = [&](Index k, const AT &aik) -> bool {
      const U *ukp = probe(k);
      if (ukp == nullptr) return false;
      Z prod = combine(aik, *ukp, i, k);
      if (!hit) {
        hit = true;
        acc = prod;
      } else {
        acc = sr.add(acc, prod);
      }
      if constexpr (AddM::has_terminal) {
        return AddM::is_terminal(acc);
      }
      return false;
    };
    if (csr) {
      for (Index p = rp[i]; p < rp[i + 1]; ++p) {
        if (step(cx[p], vx[p])) break;
      }
    } else {
      // bitmap/full rows: for_each_in_row cannot break, so saturate instead.
      bool done = false;
      a.for_each_in_row(i, [&](Index k, const AT &aik) {
        if (done) return;
        done = step(k, aik);
      });
    }
    if (hit) {
      found[i] = 1;
      out[i] = acc;
    }
  }
  std::vector<Index> idx;
  std::vector<Z> val;
  for (Index i = 0; i < m; ++i) {
    if (found[i]) {
      idx.push_back(i);
      val.push_back(out[i]);
    }
  }
  Vector<Z> t(m);
  t.adopt_sparse(std::move(idx), std::move(val));
  return t;
}

}  // namespace detail

/// w⟨m⟩ ⊙= uᵀ ⊕.⊗ A  (push; with desc.transpose_a: uᵀ ⊕.⊗ Aᵀ, a pull).
template <typename W, typename MaskT, typename Accum, typename SR, typename U,
          typename AT>
void vxm(Vector<W> &w, const MaskT &mask, Accum accum, SR sr,
         const Vector<U> &u, const Matrix<AT> &a,
         const Descriptor &d = desc::DEFAULT) {
  using Z = typename SR::value_type;
  auto allowed = [&](Index j) { return detail::vmask_test(mask, j, d); };
  Vector<Z> t(0);
  if (!d.transpose_a) {
    detail::check_same_size(u.size(), a.nrows(), "vxm: u/A dimension mismatch");
    detail::check_vector_mask(mask, a.ncols());
    detail::check_same_size(w.size(), a.ncols(), "vxm: w/A dimension mismatch");
    // w(j) = ⊕_k u(k) ⊗ a(k,j): first operand u (row vector, coords (0,k)),
    // second operand a(k,j).
    t = detail::push_kernel<Z>(
        sr, a, u, allowed,
        [&](const AT &aval, const U &uval, Index j, Index k) {
          return sr.multiply(uval, aval, Index{0}, k, j);
        },
        a.ncols());
  } else {
    detail::check_same_size(u.size(), a.ncols(), "vxm: u/Aᵀ dimension mismatch");
    detail::check_vector_mask(mask, a.nrows());
    detail::check_same_size(w.size(), a.nrows(), "vxm: w/Aᵀ dimension mismatch");
    // w(i) = ⊕_k u(k) ⊗ aᵀ(k,i) = ⊕_k u(k) ⊗ a(i,k): dot products over rows.
    t = detail::dot_kernel<Z>(
        sr, a, u, allowed, [&](const AT &aval, const U &uval, Index i, Index k) {
          return sr.multiply(uval, aval, Index{0}, k, i);
        });
  }
  detail::write_result(w, std::move(t), mask, accum, d, /*t_is_masked=*/true);
}

/// w⟨m⟩ ⊙= A ⊕.⊗ u  (pull; with desc.transpose_a: Aᵀ ⊕.⊗ u, a push).
template <typename W, typename MaskT, typename Accum, typename SR, typename AT,
          typename U>
void mxv(Vector<W> &w, const MaskT &mask, Accum accum, SR sr,
         const Matrix<AT> &a, const Vector<U> &u,
         const Descriptor &d = desc::DEFAULT) {
  using Z = typename SR::value_type;
  auto allowed = [&](Index i) { return detail::vmask_test(mask, i, d); };
  Vector<Z> t(0);
  if (!d.transpose_a) {
    detail::check_same_size(u.size(), a.ncols(), "mxv: u/A dimension mismatch");
    detail::check_vector_mask(mask, a.nrows());
    detail::check_same_size(w.size(), a.nrows(), "mxv: w/A dimension mismatch");
    // w(i) = ⊕_k a(i,k) ⊗ u(k): first operand is the matrix element.
    t = detail::dot_kernel<Z>(
        sr, a, u, allowed, [&](const AT &aval, const U &uval, Index i, Index k) {
          return sr.multiply(aval, uval, i, k, Index{0});
        });
  } else {
    detail::check_same_size(u.size(), a.nrows(), "mxv: u/Aᵀ dimension mismatch");
    detail::check_vector_mask(mask, a.ncols());
    detail::check_same_size(w.size(), a.ncols(), "mxv: w/Aᵀ dimension mismatch");
    // w(j) = ⊕_k aᵀ(j,k) ⊗ u(k) = ⊕_k a(k,j) ⊗ u(k): scatter along rows of A.
    t = detail::push_kernel<Z>(
        sr, a, u, allowed,
        [&](const AT &aval, const U &uval, Index j, Index k) {
          return sr.multiply(aval, uval, j, k, Index{0});
        },
        a.ncols());
  }
  detail::write_result(w, std::move(t), mask, accum, d, /*t_is_masked=*/true);
}

}  // namespace grb

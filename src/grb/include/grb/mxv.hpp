// grb/mxv.hpp — matrix-vector and vector-matrix multiplication.
//
// These two operations are the push/pull pair of the paper (§IV-A):
//   - vxm (w = uᵀ ⊕.⊗ A) iterates the entries of u and scatters along the
//     rows of A — a "push" step, cheap when the frontier u is small;
//   - mxv (w = A ⊕.⊗ u) iterates rows of A and computes sparse dot products
//     against u — a "pull" step, cheap when the mask prunes most rows and
//     the `any` monoid allows the dot product to stop at the first hit.
// A transposed descriptor swaps the kernels (uᵀAᵀ is a pull, Aᵀu is a push),
// so LAGraph's direction-optimizing BFS simply chooses between vxm(u, A) and
// mxv(Aᵀ, u) on the explicitly cached transpose.
//
// Both kernels are parallel (grb/parallel.hpp):
//   - the push kernel partitions the frontier into contiguous chunks of
//     ~equal scattered nnz; each thread scatters its chunk into a pooled
//     dense accumulator + touched list, and a parallel pass merges the
//     per-thread partials over disjoint output ranges, folding chunks in
//     ascending frontier order — the exact serial order, so results match
//     num_threads=1 bit-for-bit (any/min/max terminals are absorbing;
//     plus/times over exactly-representable values are associative);
//   - the pull kernel partitions rows by the CSR row-pointer prefix (nnz)
//     instead of row count, so power-law hub rows no longer serialize a
//     dynamic schedule.
//
// Masks are pushed down into both kernels (output positions outside the
// effective mask are never computed) and then the common output step in
// mask.hpp applies the full mask/accumulator/replace semantics.
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

#include "grb/assign.hpp"
#include "grb/mask.hpp"
#include "grb/parallel.hpp"
#include "grb/plan.hpp"
#include "grb/semiring.hpp"
#include "grb/trace.hpp"

namespace grb {
namespace detail {

/// Push kernel: for each entry u(k), scatter along row k of A into a dense
/// accumulator workspace. `combine(aval, uval, jout, k) -> Z` evaluates the
/// semiring multiply with the caller's operand order and coordinate
/// convention. Parallel saxpy: frontier chunks balanced by row nnz, one
/// pooled workspace per thread, per-thread partials merged in chunk order.
template <typename Z, typename SR, typename AT, typename U, typename Pred,
          typename Combine>
Vector<Z> push_kernel(SR sr, const Matrix<AT> &a, const Vector<U> &u,
                      Pred &&allowed, Combine &&combine, Index out_size,
                      [[maybe_unused]] const plan::ExecPlan &pl) {
  assert(pl.direction == plan::Direction::push);
  stats().push_calls.fetch_add(1, std::memory_order_relaxed);
  using AddM = typename SR::add_monoid;

  // Materialize the frontier in ascending index order: chunk boundaries over
  // this list give each thread a contiguous k-range, and merging per-thread
  // partials in chunk order then reproduces the serial scatter order.
  std::vector<Index> fk;
  std::vector<U> fv;
  fk.reserve(u.nvals());
  fv.reserve(u.nvals());
  u.for_each([&](Index k, const U &uk) {
    fk.push_back(k);
    fv.push_back(uk);
  });
  const Index nf = static_cast<Index>(fk.size());

  a.finish();
  const bool csr = a.format() == Matrix<AT>::Format::csr;
  // Width-erased view is fine here: the row pointer is only consulted for
  // the per-frontier-row work estimate; the scatter itself goes through
  // for_each_in_row, which dispatches on the storage width per row.
  IndexSpan rp = csr ? a.rowptr() : IndexSpan{};

  auto scatter = [&](SaxpyWorkspace<Z> &ws, Index k, const U &uk) {
    a.for_each_in_row(k, [&](Index j, const AT &akj) {
      if (!allowed(j)) return;
      if (ws.mark[j]) {
        if constexpr (AddM::has_terminal) {
          if (AddM::is_terminal(ws.work[j])) return;
        }
        ws.work[j] = sr.add(ws.work[j], combine(akj, uk, j, k));
      } else {
        ws.mark[j] = 1;
        ws.work[j] = combine(akj, uk, j, k);
        ws.touched.push_back(j);
      }
    });
  };

  // Team size: the plan records the a-priori estimate; the final gate runs
  // the planner's rule (plan::team_size) on the exact scattered work so BFS
  // tail levels stay on the serial schedule even when the estimate was off.
  int nthreads = effective_threads();
  if (nthreads > 1) {
    Index total_work = 0;
    if (csr) {
      for (Index e = 0; e < nf; ++e) total_work += rp[fk[e] + 1] - rp[fk[e]];
    } else {
      total_work = nf * a.ncols();
    }
    nthreads = plan::team_size(total_work);
  }

  std::vector<Index> idx;
  std::vector<Z> val;
  if (nthreads <= 1 || nf < 2) {
    // Serial schedule — also the reference order the parallel path must
    // reproduce. The pooled workspace makes repeated calls (BFS levels)
    // O(touched) instead of O(out_size) per call.
    WorkspaceLease<Z> lease(out_size);
    auto &ws = *lease;
    for (Index e = 0; e < nf; ++e) scatter(ws, fk[e], fv[e]);
    std::sort(ws.touched.begin(), ws.touched.end());
    idx.reserve(ws.touched.size());
    val.reserve(ws.touched.size());
    for (Index j : ws.touched) {
      idx.push_back(j);
      val.push_back(ws.work[j]);
    }
  } else {
    // Frontier chunks of ~equal scattered nnz (+1 biases against degenerate
    // all-empty chunks); exactly one chunk and workspace per thread.
    std::vector<Index> fbounds =
        csr ? partition_rows_by_work(
                  nf, nthreads,
                  [&](Index e) { return rp[fk[e] + 1] - rp[fk[e]] + 1; })
            : partition_even(nf, nthreads);
    const int P = static_cast<int>(fbounds.size()) - 1;

    auto &pool = WorkspacePool<Z>::instance();
    std::vector<SaxpyWorkspace<Z>> ws;
    ws.reserve(static_cast<std::size_t>(P));
    for (int t = 0; t < P; ++t) ws.push_back(pool.acquire(out_size));

    parallel_region(P, [&](int t) {
      for (Index e = fbounds[t]; e < fbounds[t + 1]; ++e) {
        scatter(ws[t], fk[e], fv[e]);
      }
      std::sort(ws[t].touched.begin(), ws[t].touched.end());
    });

    // Merge pass, parallel over disjoint output ranges. For each output j
    // the per-chunk partials fold in ascending chunk (= frontier) order:
    // `any` keeps the first chunk's value, terminal accumulators stay
    // absorbed, associative ops regroup without reordering.
    std::vector<Index> rbounds = partition_even(out_size, P);
    const int R = static_cast<int>(rbounds.size()) - 1;
    std::vector<std::vector<Index>> ridx(static_cast<std::size_t>(R));
    std::vector<std::vector<Z>> rval(static_cast<std::size_t>(R));
    for_each_chunk(rbounds, [&](int r, Index lo, Index hi) {
      std::vector<std::size_t> head(static_cast<std::size_t>(P));
      std::vector<std::size_t> tail(static_cast<std::size_t>(P));
      for (int t = 0; t < P; ++t) {
        const auto &tc = ws[t].touched;
        head[t] = static_cast<std::size_t>(
            std::lower_bound(tc.begin(), tc.end(), lo) - tc.begin());
        tail[t] = static_cast<std::size_t>(
            std::lower_bound(tc.begin(), tc.end(), hi) - tc.begin());
      }
      auto &oi = ridx[r];
      auto &ov = rval[r];
      for (;;) {
        Index jmin = ALL;
        for (int t = 0; t < P; ++t) {
          if (head[t] < tail[t] && ws[t].touched[head[t]] < jmin) {
            jmin = ws[t].touched[head[t]];
          }
        }
        if (jmin == ALL) break;
        bool first = true;
        Z acc{};
        for (int t = 0; t < P; ++t) {
          if (head[t] < tail[t] && ws[t].touched[head[t]] == jmin) {
            ++head[t];
            const Z &part = ws[t].work[jmin];
            if (first) {
              first = false;
              acc = part;
            } else {
              if constexpr (AddM::has_terminal) {
                if (AddM::is_terminal(acc)) continue;
              }
              acc = sr.add(acc, part);
            }
          }
        }
        oi.push_back(jmin);
        ov.push_back(acc);
      }
    });
    concat_chunks(ridx, rval, idx, val);

    parallel_region(P, [&](int t) { ws[t].clear(); });
    for (int t = 0; t < P; ++t) pool.release(std::move(ws[t]));
  }

  Vector<Z> t(out_size);
  t.adopt_sparse(std::move(idx), std::move(val));
  return t;
}

/// Dot kernel: for each row i of A passing `row_allowed`, reduce
/// combine(a(i,k), u(k), i, k) over the entries shared with u. With an
/// all-terminal (`any`) monoid this stops at the first shared entry — the
/// bottom-up BFS early exit. Rows are chunked by nnz (the CSR row pointer is
/// the work prefix sum), not by count.
template <typename Z, typename SR, typename AT, typename U, typename Pred,
          typename Combine>
Vector<Z> dot_kernel(SR sr, const Matrix<AT> &a, const Vector<U> &u,
                     Pred &&row_allowed, Combine &&combine,
                     [[maybe_unused]] const plan::ExecPlan &pl) {
  stats().pull_calls.fetch_add(1, std::memory_order_relaxed);
  const Index m = a.nrows();
  const Index n = a.ncols();
  // The probed operand's format is a plan decision (bitmap = O(1) probes,
  // "particularly important for the 'pull' phase", §VI-A; sorted sparse =
  // binary-search probes, the format ablation's path). The entry point
  // already converted u via plan::prepare — this kernel only executes.
  assert(pl.direction == plan::Direction::pull);
  const bool use_bitmap = u.format() == Vector<U>::Format::bitmap;
  assert(use_bitmap == (pl.u_format == plan::VecFormat::bitmap));
  const std::uint8_t *up = use_bitmap ? u.bitmap_present() : nullptr;
  const U *uv = use_bitmap ? u.bitmap_values() : nullptr;
  auto us_idx = use_bitmap ? std::span<const Index>{} : u.sparse_indices();
  auto us_val = use_bitmap ? std::span<const U>{} : u.sparse_values();
  auto probe = [&](Index k) -> const U * {
    if (use_bitmap) return up[k] ? &uv[k] : nullptr;
    auto it = std::lower_bound(us_idx.begin(), us_idx.end(), k);
    if (it == us_idx.end() || *it != k) return nullptr;
    return &us_val[static_cast<std::size_t>(it - us_idx.begin())];
  };
  using AddM = typename SR::add_monoid;

  a.finish();
  const auto fmt = a.format();
  const bool csr = fmt == Matrix<AT>::Format::csr;
  const std::uint8_t *apres =
      fmt == Matrix<AT>::Format::bitmap ? a.bitmap_present() : nullptr;
  const AT *adense = (fmt == Matrix<AT>::Format::bitmap ||
                      fmt == Matrix<AT>::Format::full)
                         ? a.dense_values()
                         : nullptr;

  // Rows are independent dot products: results land in per-row slots (no
  // shared push_back) and are packed afterwards.
  std::vector<std::uint8_t> found(static_cast<std::size_t>(m), 0);
  std::vector<Z> out(static_cast<std::size_t>(m));

  // One width dispatch per kernel call: the per-entry CSR scan below runs
  // on typed u32 or u64 spans, so halving the index width halves the bytes
  // this bandwidth-bound loop streams.
  dispatch_width(a.index_width(), [&](auto tag) {
    using I = decltype(tag);
    auto rp = csr ? a.rowptr().template as<I>() : std::span<const I>{};
    auto cx = csr ? a.colidx().template as<I>() : std::span<const I>{};
    auto vx = csr ? a.values() : std::span<const AT>{};

    auto do_row = [&](Index i) {
      if (!row_allowed(i)) return;
      bool hit = false;
      Z acc{};
      auto step = [&](Index k, const AT &aik) -> bool {
        const U *ukp = probe(k);
        if (ukp == nullptr) return false;
        Z prod = combine(aik, *ukp, i, k);
        if (!hit) {
          hit = true;
          acc = prod;
        } else {
          acc = sr.add(acc, prod);
        }
        if constexpr (AddM::has_terminal) {
          return AddM::is_terminal(acc);
        }
        return false;
      };
      if (csr) {
        for (std::size_t p = rp[i]; p < rp[i + 1]; ++p) {
          if (step(cx[p], vx[p])) break;  // terminal short-circuit
        }
      } else if (adense != nullptr) {
        // bitmap/full rows: direct indexing so a terminal accumulator
        // (`any`, `lor`, ...) breaks out of the row instead of merely
        // saturating.
        const std::size_t base = static_cast<std::size_t>(i) * n;
        if (apres != nullptr) {
          for (Index k = 0; k < n; ++k) {
            if (apres[base + k] && step(k, adense[base + k])) break;
          }
        } else {
          for (Index k = 0; k < n; ++k) {
            if (step(k, adense[base + k])) break;
          }
        }
      } else {
        // hypersparse: for_each_in_row cannot break, so saturate instead.
        bool done = false;
        a.for_each_in_row(i, [&](Index k, const AT &aik) {
          if (done) return;
          done = step(k, aik);
        });
      }
      if (hit) {
        found[i] = 1;
        out[i] = acc;
      }
    };

    const Index total_work =
        csr ? (rp.empty() ? 0 : static_cast<Index>(rp[m])) : m * n;
    const int parts = plan::chunk_parts(total_work, 4);
    std::vector<Index> bounds = csr && parts > 1
                                    ? partition_rows_by_work(rp, parts)
                                    : partition_even(m, parts);
    for_each_chunk(bounds, [&](int, Index lo, Index hi) {
      for (Index i = lo; i < hi; ++i) do_row(i);
    });
  });

  std::vector<Index> idx;
  std::vector<Z> val;
  pack_slots(found, out, idx, val);
  Vector<Z> t(m);
  t.adopt_sparse(std::move(idx), std::move(val));
  return t;
}

/// Shared planning step for vxm/mxv: describe the op, get the plan, and
/// prepare the probed operand for a pull. The kernels below assert what
/// this promised.
template <typename SR, typename AT, typename U, typename MaskT>
plan::ExecPlan plan_mxv_op(plan::OpKind op, const Matrix<AT> &a,
                           const Vector<U> &u, const MaskT &mask,
                           const Descriptor &d, Index out_size) {
  plan::OpDesc od;
  od.op = op;
  od.out_size = out_size;
  od.a_rows = a.nrows();
  od.a_cols = a.ncols();
  od.a_nvals = a.nvals();
  od.a_width = a.index_width();
  od.u_nvals = u.nvals();
  od.transpose_a = d.transpose_a;
  od.has_terminal = SR::add_monoid::has_terminal;
  if constexpr (has_mask_v<MaskT>) {
    od.masked = true;
    od.mask_nvals = mask.nvals();
    od.mask_complement = d.mask_complement;
    od.mask_structural = d.mask_structural;
  }
  plan::ExecPlan pl = plan::make_plan(od);
  if (pl.direction == plan::Direction::pull) plan::prepare(u, pl.u_format);
  return pl;
}

}  // namespace detail

/// w⟨m⟩ ⊙= uᵀ ⊕.⊗ A  (push; with desc.transpose_a: uᵀ ⊕.⊗ Aᵀ, a pull).
template <typename W, typename MaskT, typename Accum, typename SR, typename U,
          typename AT>
void vxm(Vector<W> &w, const MaskT &mask, Accum accum, SR sr,
         const Vector<U> &u, const Matrix<AT> &a,
         const Descriptor &d = desc::DEFAULT) {
  using Z = typename SR::value_type;
  auto allowed = [&](Index j) { return detail::vmask_test(mask, j, d); };
  trace::ScopedSpan sp(trace::SpanKind::vxm);
  sp.set_in_nvals(u.nvals());
  Vector<Z> t(0);
  if (!d.transpose_a) {
    detail::check_same_size(u.size(), a.nrows(), "vxm: u/A dimension mismatch");
    detail::check_vector_mask(mask, a.ncols());
    detail::check_same_size(w.size(), a.ncols(), "vxm: w/A dimension mismatch");
    const auto pl = detail::plan_mxv_op<SR>(plan::OpKind::vxm, a, u, mask, d,
                                            a.ncols());
    sp.set_plan(pl);
    // w(j) = ⊕_k u(k) ⊗ a(k,j): first operand u (row vector, coords (0,k)),
    // second operand a(k,j).
    t = detail::push_kernel<Z>(
        sr, a, u, allowed,
        [&](const AT &aval, const U &uval, Index j, Index k) {
          return sr.multiply(uval, aval, Index{0}, k, j);
        },
        a.ncols(), pl);
  } else {
    detail::check_same_size(u.size(), a.ncols(), "vxm: u/Aᵀ dimension mismatch");
    detail::check_vector_mask(mask, a.nrows());
    detail::check_same_size(w.size(), a.nrows(), "vxm: w/Aᵀ dimension mismatch");
    const auto pl = detail::plan_mxv_op<SR>(plan::OpKind::vxm, a, u, mask, d,
                                            a.nrows());
    sp.set_plan(pl);
    // w(i) = ⊕_k u(k) ⊗ aᵀ(k,i) = ⊕_k u(k) ⊗ a(i,k): dot products over rows.
    t = detail::dot_kernel<Z>(
        sr, a, u, allowed,
        [&](const AT &aval, const U &uval, Index i, Index k) {
          return sr.multiply(uval, aval, Index{0}, k, i);
        },
        pl);
  }
  sp.set_out_nvals(t.nvals());
  detail::write_result(w, std::move(t), mask, accum, d, /*t_is_masked=*/true);
}

/// w⟨m⟩ ⊙= A ⊕.⊗ u  (pull; with desc.transpose_a: Aᵀ ⊕.⊗ u, a push).
template <typename W, typename MaskT, typename Accum, typename SR, typename AT,
          typename U>
void mxv(Vector<W> &w, const MaskT &mask, Accum accum, SR sr,
         const Matrix<AT> &a, const Vector<U> &u,
         const Descriptor &d = desc::DEFAULT) {
  using Z = typename SR::value_type;
  auto allowed = [&](Index i) { return detail::vmask_test(mask, i, d); };
  trace::ScopedSpan sp(trace::SpanKind::mxv);
  sp.set_in_nvals(u.nvals());
  Vector<Z> t(0);
  if (!d.transpose_a) {
    detail::check_same_size(u.size(), a.ncols(), "mxv: u/A dimension mismatch");
    detail::check_vector_mask(mask, a.nrows());
    detail::check_same_size(w.size(), a.nrows(), "mxv: w/A dimension mismatch");
    const auto pl = detail::plan_mxv_op<SR>(plan::OpKind::mxv, a, u, mask, d,
                                            a.nrows());
    sp.set_plan(pl);
    // w(i) = ⊕_k a(i,k) ⊗ u(k): first operand is the matrix element.
    t = detail::dot_kernel<Z>(
        sr, a, u, allowed,
        [&](const AT &aval, const U &uval, Index i, Index k) {
          return sr.multiply(aval, uval, i, k, Index{0});
        },
        pl);
  } else {
    detail::check_same_size(u.size(), a.nrows(), "mxv: u/Aᵀ dimension mismatch");
    detail::check_vector_mask(mask, a.ncols());
    detail::check_same_size(w.size(), a.ncols(), "mxv: w/Aᵀ dimension mismatch");
    const auto pl = detail::plan_mxv_op<SR>(plan::OpKind::mxv, a, u, mask, d,
                                            a.ncols());
    sp.set_plan(pl);
    // w(j) = ⊕_k aᵀ(j,k) ⊗ u(k) = ⊕_k a(k,j) ⊗ u(k): scatter along rows of A.
    t = detail::push_kernel<Z>(
        sr, a, u, allowed,
        [&](const AT &aval, const U &uval, Index j, Index k) {
          return sr.multiply(aval, uval, j, k, Index{0});
        },
        a.ncols(), pl);
  }
  sp.set_out_nvals(t.nvals());
  detail::write_result(w, std::move(t), mask, accum, d, /*t_is_masked=*/true);
}

namespace detail {

/// One-pass stamp epilogue over the freshly written frontier: replicates the
/// two assign bitmap fast paths (grb/assign.hpp) — `copy⟨s(w)⟩ = w` and
/// `konst⟨s(w)⟩ = value` — in a single sweep of w's entries. Caller
/// guarantees both targets are bitmap-format; results are bit-identical to
/// the two separate assigns because each fast path is an unconditional
/// overwrite at w's (ascending) entry positions.
template <typename W, typename PT, typename LT>
void stamp_frontier(const Vector<W> &w, Vector<PT> *copy, Vector<LT> *konst,
                    LT value) {
  std::uint8_t *pp = copy != nullptr ? copy->bitmap_present_mut() : nullptr;
  PT *pv = copy != nullptr ? copy->bitmap_values_mut() : nullptr;
  std::uint8_t *lp = konst != nullptr ? konst->bitmap_present_mut() : nullptr;
  LT *lv = konst != nullptr ? konst->bitmap_values_mut() : nullptr;
  Index pn = copy != nullptr ? copy->nvals() : 0;
  Index ln = konst != nullptr ? konst->nvals() : 0;
  w.for_each([&](Index p, const W &x) {
    if (pp != nullptr) {
      if (!pp[p]) {
        pp[p] = 1;
        ++pn;
      }
      pv[p] = static_cast<PT>(x);
    }
    if (lp != nullptr) {
      if (!lp[p]) {
        lp[p] = 1;
        ++ln;
      }
      lv[p] = value;
    }
  });
  if (copy != nullptr) copy->set_bitmap_nvals(pn);
  if (konst != nullptr) konst->set_bitmap_nvals(ln);
}

/// Describe a fused op for the planner. `transpose_for_plan` encodes the
/// product's direction in OpDesc terms (fused_mxv_apply is mxv-like: no
/// transpose = pull dot, transpose = push scatter).
template <typename SR, typename AT, typename U, typename MaskT>
plan::ExecPlan plan_fused_op(plan::OpKind op, const Matrix<AT> &a,
                             const Vector<U> &u, const MaskT &mask,
                             const Descriptor &d, Index out_size,
                             bool transpose_for_plan) {
  plan::OpDesc od;
  od.op = op;
  od.out_size = out_size;
  od.a_rows = a.nrows();
  od.a_cols = a.ncols();
  od.a_nvals = a.nvals();
  od.a_width = a.index_width();
  od.u_nvals = u.nvals();
  od.transpose_a = transpose_for_plan;
  od.has_terminal = SR::add_monoid::has_terminal;
  if constexpr (has_mask_v<MaskT>) {
    od.masked = true;
    od.mask_nvals = mask.nvals();
    od.mask_complement = d.mask_complement;
    od.mask_structural = d.mask_structural;
  }
  plan::ExecPlan pl = plan::make_plan(od);
  if (pl.direction == plan::Direction::pull) plan::prepare(u, pl.u_format);
  return pl;
}

/// Shared body of the two fused product+stamp entry points. `pull_form`
/// selects the product shape: mxv-style masked dots (A ⊕.⊗ u) or vxm-style
/// scatter (u ⊕.⊗ A). After the product lands in w through the normal
/// write_result step, one sweep stamps `stamp_copy⟨s(w)⟩ = w` and
/// `stamp_const⟨s(w)⟩ = stamp_value` — the BFS parent and level updates —
/// without two more kernel dispatches. Falls back to the exact unfused
/// composition whenever the planner declines fusion or a fast-path
/// precondition fails, so results are bit-identical by construction.
template <typename W, typename MaskV, typename SR, typename AT, typename PT,
          typename LT>
void fused_product_stamp(bool pull_form, Vector<W> &w,
                         const Vector<MaskV> &mask, SR sr, const Matrix<AT> &a,
                         const Vector<W> &u, const Descriptor &d,
                         Vector<PT> *stamp_copy, Vector<LT> *stamp_const,
                         LT stamp_value) {
  using Z = typename SR::value_type;
  // Transpose-aware dims: a transpose descriptor swaps the product's shape
  // (and lands on the unfused fallback — the fuse gate excludes it).
  const bool eff_rows = pull_form != d.transpose_a;
  const Index out_size = eff_rows ? a.nrows() : a.ncols();
  check_same_size(u.size(), eff_rows ? a.ncols() : a.nrows(),
                  "fused_mxv_apply: u/A dimension mismatch");
  check_vector_mask(mask, out_size);
  check_same_size(w.size(), out_size,
                  "fused_mxv_apply: w/A dimension mismatch");
  // Direction in OpDesc terms: mxv is a pull dot unless transposed; vxm is a
  // push scatter unless transposed.
  const plan::ExecPlan pl =
      plan_fused_op<SR>(plan::OpKind::fused_mxv_apply, a, u, mask, d, out_size,
                        pull_form == d.transpose_a);

  // Beyond the cost model, the single-sweep path needs the assign fast-path
  // preconditions: bitmap stamp targets and a product the output can adopt
  // verbatim (same value type — guaranteed by the signature — and either
  // replace semantics or an empty output).
  bool fuse = pl.use_fused && std::is_same_v<W, Z> && !d.transpose_a &&
              (d.replace || w.nvals() == 0);
  if (stamp_copy != nullptr &&
      stamp_copy->format() != Vector<PT>::Format::bitmap) {
    fuse = false;
  }
  if (stamp_const != nullptr &&
      stamp_const->format() != Vector<LT>::Format::bitmap) {
    fuse = false;
  }

  if (!fuse) {
    // Unfused composition — the reference semantics the fused path must
    // reproduce bit-for-bit (and the conformance sweep checks it does).
    if (pull_form) {
      mxv(w, mask, NoAccum{}, sr, a, u, d);
    } else {
      vxm(w, mask, NoAccum{}, sr, u, a, d);
    }
    if (stamp_copy != nullptr) {
      assign(*stamp_copy, w, NoAccum{}, w, Indices::all(), desc::S);
    }
    if (stamp_const != nullptr) {
      assign(*stamp_const, w, NoAccum{}, stamp_value, Indices::all(),
             desc::S);
    }
    return;
  }

  stats().fused_dispatches.fetch_add(1, std::memory_order_relaxed);
  trace::ScopedSpan sp(trace::SpanKind::fused_mxv_apply);
  sp.set_in_nvals(u.nvals());
  sp.set_plan(pl);
  auto allowed = [&](Index i) { return vmask_test(mask, i, d); };
  Vector<Z> t(0);
  if (pull_form) {
    t = dot_kernel<Z>(
        sr, a, u, allowed,
        [&](const AT &aval, const W &uval, Index i, Index k) {
          return sr.multiply(aval, uval, i, k, Index{0});
        },
        pl);
  } else {
    t = push_kernel<Z>(
        sr, a, u, allowed,
        [&](const AT &aval, const W &uval, Index j, Index k) {
          return sr.multiply(uval, aval, Index{0}, k, j);
        },
        a.ncols(), pl);
  }
  sp.set_out_nvals(t.nvals());
  write_result(w, std::move(t), mask, NoAccum{}, d, /*t_is_masked=*/true);
  stamp_frontier(w, stamp_copy, stamp_const, stamp_value);
}

}  // namespace detail

/// Fused masked pull product + stamps (one BFS level, pull direction):
///   w⟨mask,d⟩ = A ⊕.⊗ u;  stamp_copy⟨s(w)⟩ = w;  stamp_const⟨s(w)⟩ = value
/// in one kernel sweep when the planner fuses (ExecPlan::use_fused), else
/// the exact mxv + assign + assign chain. Pass nullptr to skip a stamp.
template <typename W, typename MaskV, typename SR, typename AT, typename PT,
          typename LT>
void fused_mxv_apply(Vector<W> &w, const Vector<MaskV> &mask, SR sr,
                     const Matrix<AT> &a, const Vector<W> &u,
                     const Descriptor &d, Vector<PT> *stamp_copy,
                     Vector<LT> *stamp_const, LT stamp_value) {
  detail::fused_product_stamp(/*pull_form=*/true, w, mask, sr, a, u, d,
                              stamp_copy, stamp_const, stamp_value);
}

/// Push-direction form of the same fusion (one BFS level, push direction):
///   w⟨mask,d⟩ = u ⊕.⊗ A;  stamp_copy⟨s(w)⟩ = w;  stamp_const⟨s(w)⟩ = value.
template <typename W, typename MaskV, typename SR, typename AT, typename PT,
          typename LT>
void fused_vxm_apply(Vector<W> &w, const Vector<MaskV> &mask, SR sr,
                     const Vector<W> &u, const Matrix<AT> &a,
                     const Descriptor &d, Vector<PT> *stamp_copy,
                     Vector<LT> *stamp_const, LT stamp_value) {
  detail::fused_product_stamp(/*pull_form=*/false, w, mask, sr, a, u, d,
                              stamp_copy, stamp_const, stamp_value);
}

}  // namespace grb

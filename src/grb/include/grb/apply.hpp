// grb/apply.hpp — apply (unary / bound binary) and select (paper §III-B f).
//
// apply evaluates an operator on every entry; the bound-binary forms
// (apply2nd / apply1st) correspond to GrB_apply with a BinaryOp and a bound
// scalar. select keeps the entries for which an index-unary predicate
// f(value, i, j, thunk) holds, zeroing out (dropping) the rest.
//
// apply is a pure per-entry map (output position = input position), so the
// parallel form writes each transformed entry straight into its slot; select
// filters, so chunks emit into their own buffers and concatenate in chunk
// order (grb/parallel.hpp). Both match the serial walk exactly.
#pragma once

#include <vector>

#include "grb/mask.hpp"
#include "grb/mxv.hpp"
#include "grb/ops.hpp"
#include "grb/parallel.hpp"
#include "grb/plan.hpp"
#include "grb/trace.hpp"

namespace grb {

/// w⟨m⟩ ⊙= f(u)
template <typename W, typename MaskT, typename Accum, typename F, typename U>
void apply(Vector<W> &w, const MaskT &mask, Accum accum, F f,
           const Vector<U> &u, const Descriptor &d = desc::DEFAULT) {
  detail::check_same_size(w.size(), u.size(), "apply: size mismatch");
  const Index n = u.size();
  trace::ScopedSpan sp(trace::SpanKind::apply);
  sp.set_in_nvals(u.nvals());
  std::vector<Index> idx;
  std::vector<W> val;
  const int parts = plan::chunk_parts(u.nvals(), 2);
  sp.set_threads(parts);
  if (u.format() == Vector<U>::Format::sparse) {
    auto ui = u.sparse_indices();
    auto uv = u.sparse_values();
    const Index nv = static_cast<Index>(ui.size());
    idx.resize(nv);
    val.resize(nv);
    detail::for_each_chunk(detail::partition_even(nv, parts),
                           [&](int, Index lo, Index hi) {
                             for (Index p = lo; p < hi; ++p) {
                               idx[p] = ui[p];
                               val[p] = static_cast<W>(
                                   f(static_cast<W>(uv[p])));
                             }
                           });
  } else {
    const std::uint8_t *up = u.bitmap_present();
    const U *uvp = u.bitmap_values();
    std::vector<std::uint8_t> found(static_cast<std::size_t>(n), 0);
    std::vector<W> out(static_cast<std::size_t>(n));
    detail::for_each_chunk(detail::partition_even(n, parts),
                           [&](int, Index lo, Index hi) {
                             for (Index i = lo; i < hi; ++i) {
                               if (!up[i]) continue;
                               found[i] = 1;
                               out[i] = static_cast<W>(
                                   f(static_cast<W>(uvp[i])));
                             }
                           });
    detail::pack_slots(found, out, idx, val);
  }
  Vector<W> t(n);
  t.adopt_sparse(std::move(idx), std::move(val));
  sp.set_out_nvals(t.nvals());
  detail::write_result(w, std::move(t), mask, accum, d);
}

/// w⟨m⟩ ⊙= op(u, s)  (bind-second)
template <typename W, typename MaskT, typename Accum, typename Op, typename U,
          typename S>
void apply2nd(Vector<W> &w, const MaskT &mask, Accum accum, Op op,
              const Vector<U> &u, const S &s,
              const Descriptor &d = desc::DEFAULT) {
  apply(
      w, mask, accum,
      [&](const W &x) { return op(x, static_cast<W>(s)); }, u, d);
}

/// w⟨m⟩ ⊙= op(s, u)  (bind-first)
template <typename W, typename MaskT, typename Accum, typename Op, typename S,
          typename U>
void apply1st(Vector<W> &w, const MaskT &mask, Accum accum, Op op, const S &s,
              const Vector<U> &u, const Descriptor &d = desc::DEFAULT) {
  apply(
      w, mask, accum,
      [&](const W &x) { return op(static_cast<W>(s), x); }, u, d);
}

/// C⟨M⟩ ⊙= f(A)
template <typename W, typename MaskT, typename Accum, typename F, typename U>
void apply(Matrix<W> &c, const MaskT &mask, Accum accum, F f,
           const Matrix<U> &a, const Descriptor &d = desc::DEFAULT) {
  detail::check_same_size(c.nrows(), a.nrows(), "apply: shape mismatch");
  detail::check_same_size(c.ncols(), a.ncols(), "apply: shape mismatch");
  trace::ScopedSpan sp(trace::SpanKind::apply);
  sp.set_in_nvals(a.nvals());
  const Index m = a.nrows();
  a.ensure_sorted();
  std::vector<Index> rp(static_cast<std::size_t>(m) + 1, 0);
  std::vector<Index> ci;
  std::vector<W> cv;
  if (a.format() == Matrix<U>::Format::csr) {
    // CSR fast path: same structure, transformed values — a flat map over
    // the nnz positions.
    // One width dispatch; the flat copy loop reads typed spans.
    detail::dispatch_width(a.index_width(), [&](auto tag) {
      using I = decltype(tag);
      auto arp = a.rowptr().template as<I>();
      auto acx = a.colidx().template as<I>();
      auto avx = a.values();
      rp.assign(arp.begin(), arp.end());
      const Index nz = static_cast<Index>(acx.size());
      ci.resize(nz);
      cv.resize(nz);
      const int parts = plan::chunk_parts(nz, 2);
      detail::for_each_chunk(detail::partition_even(nz, parts),
                             [&](int, Index lo, Index hi) {
                               for (Index p = lo; p < hi; ++p) {
                                 ci[p] = acx[p];
                                 cv[p] = static_cast<W>(
                                     f(static_cast<W>(avx[p])));
                               }
                             });
    });
  } else {
    ci.reserve(a.nvals());
    cv.reserve(a.nvals());
    for (Index i = 0; i < m; ++i) {
      a.for_each_in_row(i, [&](Index j, const U &x) {
        ci.push_back(j);
        cv.push_back(static_cast<W>(f(static_cast<W>(x))));
      });
      rp[i + 1] = static_cast<Index>(ci.size());
    }
  }
  Matrix<W> t(m, a.ncols());
  t.adopt_csr(std::move(rp), std::move(ci), std::move(cv), false);
  sp.set_out_nvals(t.nvals());
  detail::write_result(c, std::move(t), mask, accum, d);
}

/// C⟨M⟩ ⊙= op(A, s)  (bind-second)
template <typename W, typename MaskT, typename Accum, typename Op, typename U,
          typename S>
void apply2nd(Matrix<W> &c, const MaskT &mask, Accum accum, Op op,
              const Matrix<U> &a, const S &s,
              const Descriptor &d = desc::DEFAULT) {
  apply(
      c, mask, accum,
      [&](const W &x) { return op(x, static_cast<W>(s)); }, a, d);
}

/// w⟨m⟩ ⊙= u⟨f(u, thunk)⟩ — keep entries where the predicate holds.
template <typename W, typename MaskT, typename Accum, typename F, typename U,
          typename S>
void select(Vector<W> &w, const MaskT &mask, Accum accum, F f,
            const Vector<U> &u, const S &thunk,
            const Descriptor &d = desc::DEFAULT) {
  detail::check_same_size(w.size(), u.size(), "select: size mismatch");
  const Index n = u.size();
  trace::ScopedSpan sp(trace::SpanKind::select);
  sp.set_in_nvals(u.nvals());
  const U th = static_cast<U>(thunk);
  std::vector<Index> idx;
  std::vector<W> val;
  const int parts = plan::chunk_parts(u.nvals(), 2);
  sp.set_threads(parts);
  if (u.format() == Vector<U>::Format::sparse) {
    auto ui = u.sparse_indices();
    auto uv = u.sparse_values();
    const Index nv = static_cast<Index>(ui.size());
    auto bounds = detail::partition_even(nv, parts);
    const int nchunks = static_cast<int>(bounds.size()) - 1;
    std::vector<std::vector<Index>> cidx(static_cast<std::size_t>(nchunks));
    std::vector<std::vector<W>> cval(static_cast<std::size_t>(nchunks));
    detail::for_each_chunk(bounds, [&](int c, Index lo, Index hi) {
      for (Index p = lo; p < hi; ++p) {
        if (f(uv[p], ui[p], Index{0}, th)) {
          cidx[c].push_back(ui[p]);
          cval[c].push_back(static_cast<W>(uv[p]));
        }
      }
    });
    detail::concat_chunks(cidx, cval, idx, val);
  } else {
    const std::uint8_t *up = u.bitmap_present();
    const U *uvp = u.bitmap_values();
    std::vector<std::uint8_t> found(static_cast<std::size_t>(n), 0);
    std::vector<W> out(static_cast<std::size_t>(n));
    detail::for_each_chunk(detail::partition_even(n, parts),
                           [&](int, Index lo, Index hi) {
                             for (Index i = lo; i < hi; ++i) {
                               if (!up[i] || !f(uvp[i], i, Index{0}, th)) {
                                 continue;
                               }
                               found[i] = 1;
                               out[i] = static_cast<W>(uvp[i]);
                             }
                           });
    detail::pack_slots(found, out, idx, val);
  }
  Vector<W> t(n);
  t.adopt_sparse(std::move(idx), std::move(val));
  sp.set_out_nvals(t.nvals());
  detail::write_result(w, std::move(t), mask, accum, d);
}

/// C⟨M⟩ ⊙= A⟨f(A, thunk)⟩
template <typename W, typename MaskT, typename Accum, typename F, typename U,
          typename S>
void select(Matrix<W> &c, const MaskT &mask, Accum accum, F f,
            const Matrix<U> &a, const S &thunk,
            const Descriptor &d = desc::DEFAULT) {
  detail::check_same_size(c.nrows(), a.nrows(), "select: shape mismatch");
  detail::check_same_size(c.ncols(), a.ncols(), "select: shape mismatch");
  trace::ScopedSpan sp(trace::SpanKind::select);
  sp.set_in_nvals(a.nvals());
  const Index m = a.nrows();
  a.ensure_sorted();
  const U th = static_cast<U>(thunk);

  // Rows filter independently: chunk by row nnz, emit per-chunk buffers,
  // stitch the row pointer from per-chunk row lengths (as in ewise_mat).
  const int parts = plan::chunk_parts(a.nvals(), 2);
  sp.set_threads(parts);
  std::vector<Index> bounds =
      parts > 1 ? detail::partition_rows_by_work(
                      m, parts, [&](Index i) { return a.row_nvals(i) + 1; })
                : detail::partition_even(m, 1);
  const int nchunks = static_cast<int>(bounds.size()) - 1;
  std::vector<std::vector<Index>> crlen(static_cast<std::size_t>(nchunks));
  std::vector<std::vector<Index>> cci(static_cast<std::size_t>(nchunks));
  std::vector<std::vector<W>> ccv(static_cast<std::size_t>(nchunks));
  detail::for_each_chunk(bounds, [&](int c, Index lo, Index hi) {
    auto &rlen = crlen[c];
    auto &ci = cci[c];
    auto &cv = ccv[c];
    rlen.reserve(static_cast<std::size_t>(hi - lo));
    for (Index i = lo; i < hi; ++i) {
      const std::size_t before = ci.size();
      a.for_each_in_row(i, [&](Index j, const U &x) {
        if (f(x, i, j, th)) {
          ci.push_back(j);
          cv.push_back(static_cast<W>(x));
        }
      });
      rlen.push_back(static_cast<Index>(ci.size() - before));
    }
  });

  std::vector<Index> rp(static_cast<std::size_t>(m) + 1, 0);
  {
    Index at = 0;
    Index i = 0;
    for (int cc = 0; cc < nchunks; ++cc) {
      for (Index len : crlen[cc]) {
        rp[i] = at;
        at += len;
        ++i;
      }
    }
    rp[m] = at;
  }
  std::vector<Index> ci;
  std::vector<W> cv;
  detail::concat_chunks(cci, ccv, ci, cv);
  Matrix<W> t(m, a.ncols());
  t.adopt_csr(std::move(rp), std::move(ci), std::move(cv), false);
  sp.set_out_nvals(t.nvals());
  detail::write_result(c, std::move(t), mask, accum, d);
}

/// Fused relax-and-filter (the SSSP/BC light-edge inner step):
///   w = u ⊕.⊗ A;  pruned = w⟨lo ≤ w < hi⟩
/// — the unmasked vxm product plus the ValueGe/ValueLt select pair, with the
/// range filter folded into the product's epilogue when the planner fuses
/// (ExecPlan::use_fused). Both outputs are bit-identical to the unfused
/// chain `vxm; select(ValueGe, lo); select(ValueLt, hi)`, which the entry
/// runs verbatim whenever fusion is declined. NoAccum/no-mask only — the
/// shape the delta-stepping loop uses.
template <typename W, typename SR, typename AT>
void vxm_select_range(Vector<W> &w, Vector<W> &pruned, SR sr,
                      const Vector<W> &u, const Matrix<AT> &a, const W &lo,
                      const W &hi, const Descriptor &d = desc::DEFAULT) {
  using Z = typename SR::value_type;
  const Index out_size = d.transpose_a ? a.nrows() : a.ncols();
  detail::check_same_size(w.size(), out_size,
                          "vxm_select_range: w/A dimension mismatch");
  detail::check_same_size(pruned.size(), out_size,
                          "vxm_select_range: pruned/A dimension mismatch");
  const plan::ExecPlan pl = detail::plan_fused_op<SR>(
      plan::OpKind::fused_vxm_select, a, u, no_mask, d, out_size,
      d.transpose_a);

  // The one-sweep path adopts the product into w verbatim: same value type
  // (signature) and no mask, so the only extra precondition is the planner's
  // own decision and the untransposed push shape the kernel implements.
  const bool fuse = pl.use_fused && std::is_same_v<W, Z> && !d.transpose_a &&
                    !d.mask_complement;
  if (!fuse) {
    vxm(w, no_mask, NoAccum{}, sr, u, a, d);
    select(pruned, no_mask, NoAccum{}, ValueGe{}, w, lo);
    select(pruned, no_mask, NoAccum{}, ValueLt{}, pruned, hi);
    return;
  }

  stats().fused_dispatches.fetch_add(1, std::memory_order_relaxed);
  trace::ScopedSpan sp(trace::SpanKind::fused_vxm_select);
  sp.set_in_nvals(u.nvals());
  sp.set_plan(pl);
  detail::check_same_size(u.size(), a.nrows(),
                          "vxm_select_range: u/A dimension mismatch");
  auto allowed = [](Index) { return true; };
  Vector<Z> t = detail::push_kernel<Z>(
      sr, a, u, allowed,
      [&](const AT &aval, const W &uval, Index j, Index k) {
        return sr.multiply(uval, aval, Index{0}, k, j);
      },
      a.ncols(), pl);
  sp.set_out_nvals(t.nvals());
  detail::write_result(w, std::move(t), no_mask, NoAccum{}, d);

  // Range filter in the same dispatch: exactly the two chained selects'
  // predicates over w's (ascending) entries.
  std::vector<Index> idx;
  std::vector<W> val;
  w.for_each([&](Index i, const W &x) {
    if (ValueGe{}(x, i, Index{0}, lo) && ValueLt{}(x, i, Index{0}, hi)) {
      idx.push_back(i);
      val.push_back(x);
    }
  });
  pruned.adopt_sparse(std::move(idx), std::move(val));
  pruned.maybe_switch_format();
}

}  // namespace grb

// grb/apply.hpp — apply (unary / bound binary) and select (paper §III-B f).
//
// apply evaluates an operator on every entry; the bound-binary forms
// (apply2nd / apply1st) correspond to GrB_apply with a BinaryOp and a bound
// scalar. select keeps the entries for which an index-unary predicate
// f(value, i, j, thunk) holds, zeroing out (dropping) the rest.
#pragma once

#include <vector>

#include "grb/mask.hpp"

namespace grb {

/// w⟨m⟩ ⊙= f(u)
template <typename W, typename MaskT, typename Accum, typename F, typename U>
void apply(Vector<W> &w, const MaskT &mask, Accum accum, F f,
           const Vector<U> &u, const Descriptor &d = desc::DEFAULT) {
  detail::check_same_size(w.size(), u.size(), "apply: size mismatch");
  std::vector<Index> idx;
  std::vector<W> val;
  idx.reserve(u.nvals());
  val.reserve(u.nvals());
  u.for_each([&](Index i, const U &x) {
    idx.push_back(i);
    val.push_back(static_cast<W>(f(static_cast<W>(x))));
  });
  Vector<W> t(u.size());
  t.adopt_sparse(std::move(idx), std::move(val));
  detail::write_result(w, std::move(t), mask, accum, d);
}

/// w⟨m⟩ ⊙= op(u, s)  (bind-second)
template <typename W, typename MaskT, typename Accum, typename Op, typename U,
          typename S>
void apply2nd(Vector<W> &w, const MaskT &mask, Accum accum, Op op,
              const Vector<U> &u, const S &s,
              const Descriptor &d = desc::DEFAULT) {
  apply(
      w, mask, accum,
      [&](const W &x) { return op(x, static_cast<W>(s)); }, u, d);
}

/// w⟨m⟩ ⊙= op(s, u)  (bind-first)
template <typename W, typename MaskT, typename Accum, typename Op, typename S,
          typename U>
void apply1st(Vector<W> &w, const MaskT &mask, Accum accum, Op op, const S &s,
              const Vector<U> &u, const Descriptor &d = desc::DEFAULT) {
  apply(
      w, mask, accum,
      [&](const W &x) { return op(static_cast<W>(s), x); }, u, d);
}

/// C⟨M⟩ ⊙= f(A)
template <typename W, typename MaskT, typename Accum, typename F, typename U>
void apply(Matrix<W> &c, const MaskT &mask, Accum accum, F f,
           const Matrix<U> &a, const Descriptor &d = desc::DEFAULT) {
  detail::check_same_size(c.nrows(), a.nrows(), "apply: shape mismatch");
  detail::check_same_size(c.ncols(), a.ncols(), "apply: shape mismatch");
  const Index m = a.nrows();
  a.ensure_sorted();
  std::vector<Index> rp(static_cast<std::size_t>(m) + 1, 0);
  std::vector<Index> ci;
  std::vector<W> cv;
  ci.reserve(a.nvals());
  cv.reserve(a.nvals());
  for (Index i = 0; i < m; ++i) {
    a.for_each_in_row(i, [&](Index j, const U &x) {
      ci.push_back(j);
      cv.push_back(static_cast<W>(f(static_cast<W>(x))));
    });
    rp[i + 1] = static_cast<Index>(ci.size());
  }
  Matrix<W> t(m, a.ncols());
  t.adopt_csr(std::move(rp), std::move(ci), std::move(cv), false);
  detail::write_result(c, std::move(t), mask, accum, d);
}

/// C⟨M⟩ ⊙= op(A, s)  (bind-second)
template <typename W, typename MaskT, typename Accum, typename Op, typename U,
          typename S>
void apply2nd(Matrix<W> &c, const MaskT &mask, Accum accum, Op op,
              const Matrix<U> &a, const S &s,
              const Descriptor &d = desc::DEFAULT) {
  apply(
      c, mask, accum,
      [&](const W &x) { return op(x, static_cast<W>(s)); }, a, d);
}

/// w⟨m⟩ ⊙= u⟨f(u, thunk)⟩ — keep entries where the predicate holds.
template <typename W, typename MaskT, typename Accum, typename F, typename U,
          typename S>
void select(Vector<W> &w, const MaskT &mask, Accum accum, F f,
            const Vector<U> &u, const S &thunk,
            const Descriptor &d = desc::DEFAULT) {
  detail::check_same_size(w.size(), u.size(), "select: size mismatch");
  std::vector<Index> idx;
  std::vector<W> val;
  const U th = static_cast<U>(thunk);
  u.for_each([&](Index i, const U &x) {
    if (f(x, i, Index{0}, th)) {
      idx.push_back(i);
      val.push_back(static_cast<W>(x));
    }
  });
  Vector<W> t(u.size());
  t.adopt_sparse(std::move(idx), std::move(val));
  detail::write_result(w, std::move(t), mask, accum, d);
}

/// C⟨M⟩ ⊙= A⟨f(A, thunk)⟩
template <typename W, typename MaskT, typename Accum, typename F, typename U,
          typename S>
void select(Matrix<W> &c, const MaskT &mask, Accum accum, F f,
            const Matrix<U> &a, const S &thunk,
            const Descriptor &d = desc::DEFAULT) {
  detail::check_same_size(c.nrows(), a.nrows(), "select: shape mismatch");
  detail::check_same_size(c.ncols(), a.ncols(), "select: shape mismatch");
  const Index m = a.nrows();
  a.ensure_sorted();
  const U th = static_cast<U>(thunk);
  std::vector<Index> rp(static_cast<std::size_t>(m) + 1, 0);
  std::vector<Index> ci;
  std::vector<W> cv;
  for (Index i = 0; i < m; ++i) {
    a.for_each_in_row(i, [&](Index j, const U &x) {
      if (f(x, i, j, th)) {
        ci.push_back(j);
        cv.push_back(static_cast<W>(x));
      }
    });
    rp[i + 1] = static_cast<Index>(ci.size());
  }
  Matrix<W> t(m, a.ncols());
  t.adopt_csr(std::move(rp), std::move(ci), std::move(cv), false);
  detail::write_result(c, std::move(t), mask, accum, d);
}

}  // namespace grb

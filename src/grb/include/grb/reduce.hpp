// grb/reduce.hpp — reductions (paper §III-B g).
//
// Row-wise matrix→vector reduction (column-wise under a transposed
// descriptor), matrix→scalar, and vector→scalar. Scalar reductions of empty
// objects yield the monoid identity.
#pragma once

#include <vector>

#include "grb/mask.hpp"
#include "grb/semiring.hpp"
#include "grb/transpose.hpp"

namespace grb {

/// w⟨m⟩ ⊙= [⊕_j A(:,j)] — row-wise reduce to a column vector.
template <typename W, typename MaskT, typename Accum, typename M, typename A>
void reduce(Vector<W> &w, const MaskT &mask, Accum accum, M monoid,
            const Matrix<A> &a, const Descriptor &d = desc::DEFAULT) {
  using Z = typename M::value_type;
  const Matrix<A> *src = &a;
  Matrix<A> at;
  if (d.transpose_a) {
    at = transposed(a);
    src = &at;
  }
  detail::check_same_size(w.size(), src->nrows(), "reduce: size mismatch");
  src->finish();
  const Index m = src->nrows();
  std::vector<std::uint8_t> found(static_cast<std::size_t>(m), 0);
  std::vector<Z> out(static_cast<std::size_t>(m));
  // Row reductions are independent; per-row slots keep the loop parallel.
#pragma omp parallel for schedule(static)
  for (Index i = 0; i < m; ++i) {
    bool hit = false;
    Z acc{};
    src->for_each_in_row(i, [&](Index, const A &x) {
      if (!hit) {
        hit = true;
        acc = static_cast<Z>(x);
      } else {
        acc = monoid(acc, static_cast<Z>(x));
      }
    });
    if (hit) {
      found[i] = 1;
      out[i] = acc;
    }
  }
  std::vector<Index> idx;
  std::vector<Z> val;
  for (Index i = 0; i < m; ++i) {
    if (found[i]) {
      idx.push_back(i);
      val.push_back(out[i]);
    }
  }
  Vector<Z> t(src->nrows());
  t.adopt_sparse(std::move(idx), std::move(val));
  detail::write_result(w, std::move(t), mask, accum, d);
}

/// s ⊙= [⊕_{i,j} A(i,j)] — reduce a matrix to a scalar.
template <typename S, typename Accum, typename M, typename A>
void reduce(S &s, Accum accum, M monoid, const Matrix<A> &a) {
  using Z = typename M::value_type;
  Z acc = M::identity();
  a.for_each([&](Index, Index, const A &x) {
    acc = monoid(acc, static_cast<Z>(x));
  });
  if constexpr (is_accum_v<Accum>) {
    s = static_cast<S>(accum(static_cast<Z>(s), acc));
  } else {
    (void)accum;
    s = static_cast<S>(acc);
  }
}

/// s ⊙= [⊕_i u(i)] — reduce a vector to a scalar.
template <typename S, typename Accum, typename M, typename U>
void reduce(S &s, Accum accum, M monoid, const Vector<U> &u) {
  using Z = typename M::value_type;
  Z acc = M::identity();
  u.for_each([&](Index, const U &x) { acc = monoid(acc, static_cast<Z>(x)); });
  if constexpr (is_accum_v<Accum>) {
    s = static_cast<S>(accum(static_cast<Z>(s), acc));
  } else {
    (void)accum;
    s = static_cast<S>(acc);
  }
}

}  // namespace grb

// grb/reduce.hpp — reductions (paper §III-B g).
//
// Row-wise matrix→vector reduction (column-wise under a transposed
// descriptor), matrix→scalar, and vector→scalar. Scalar reductions of empty
// objects yield the monoid identity.
//
// Parallel form (grb/parallel.hpp): row reductions chunk by nnz and fill
// independent per-row slots; scalar reductions fold each chunk separately
// (seeded with the identity) and combine the partials in chunk order — for a
// monoid that regrouping leaves the result unchanged.
#pragma once

#include <vector>

#include "grb/mask.hpp"
#include "grb/parallel.hpp"
#include "grb/plan.hpp"
#include "grb/semiring.hpp"
#include "grb/trace.hpp"
#include "grb/transpose.hpp"

namespace grb {

/// w⟨m⟩ ⊙= [⊕_j A(:,j)] — row-wise reduce to a column vector.
template <typename W, typename MaskT, typename Accum, typename M, typename A>
void reduce(Vector<W> &w, const MaskT &mask, Accum accum, M monoid,
            const Matrix<A> &a, const Descriptor &d = desc::DEFAULT) {
  using Z = typename M::value_type;
  trace::ScopedSpan sp(trace::SpanKind::reduce);
  sp.set_in_nvals(a.nvals());
  const Matrix<A> *src = &a;
  Matrix<A> at;
  if (d.transpose_a) {
    at = transposed(a);
    src = &at;
  }
  detail::check_same_size(w.size(), src->nrows(), "reduce: size mismatch");
  src->finish();
  const Index m = src->nrows();
  std::vector<std::uint8_t> found(static_cast<std::size_t>(m), 0);
  std::vector<Z> out(static_cast<std::size_t>(m));

  auto do_row = [&](Index i) {
    bool hit = false;
    Z acc{};
    src->for_each_in_row(i, [&](Index, const A &x) {
      if (!hit) {
        hit = true;
        acc = static_cast<Z>(x);
      } else {
        acc = monoid(acc, static_cast<Z>(x));
      }
    });
    if (hit) {
      found[i] = 1;
      out[i] = acc;
    }
  };

  // Row reductions are independent; chunk them by row nnz (the CSR row
  // pointer is the work prefix) so hub rows don't serialize the loop.
  const bool csr = src->format() == Matrix<A>::Format::csr;
  const int parts = plan::chunk_parts(src->nvals(), 4);
  sp.set_threads(parts);
  std::vector<Index> bounds =
      csr && parts > 1 ? detail::partition_rows_by_work(src->rowptr(), parts)
                       : detail::partition_even(m, parts);
  detail::for_each_chunk(bounds, [&](int, Index lo, Index hi) {
    for (Index i = lo; i < hi; ++i) do_row(i);
  });

  std::vector<Index> idx;
  std::vector<Z> val;
  detail::pack_slots(found, out, idx, val);
  Vector<Z> t(src->nrows());
  t.adopt_sparse(std::move(idx), std::move(val));
  sp.set_out_nvals(t.nvals());
  detail::write_result(w, std::move(t), mask, accum, d);
}

/// s ⊙= [⊕_{i,j} A(i,j)] — reduce a matrix to a scalar.
template <typename S, typename Accum, typename M, typename A>
void reduce(S &s, Accum accum, M monoid, const Matrix<A> &a) {
  using Z = typename M::value_type;
  trace::ScopedSpan sp(trace::SpanKind::reduce);
  sp.set_in_nvals(a.nvals());
  sp.set_out_nvals(1);
  Z acc = M::identity();
  a.finish();
  const bool csr = a.format() == Matrix<A>::Format::csr;
  const int parts = csr ? plan::chunk_parts(a.nvals(), 4) : 1;
  sp.set_threads(parts);
  if (parts > 1) {
    auto bounds = detail::partition_rows_by_work(a.rowptr(), parts);
    const int nchunks = static_cast<int>(bounds.size()) - 1;
    std::vector<Z> part(static_cast<std::size_t>(nchunks), M::identity());
    detail::for_each_chunk(bounds, [&](int c, Index lo, Index hi) {
      Z p = M::identity();
      for (Index i = lo; i < hi; ++i) {
        a.for_each_in_row(i, [&](Index, const A &x) {
          p = monoid(p, static_cast<Z>(x));
        });
      }
      part[c] = p;
    });
    for (const Z &p : part) acc = monoid(acc, p);
  } else {
    a.for_each([&](Index, Index, const A &x) {
      acc = monoid(acc, static_cast<Z>(x));
    });
  }
  if constexpr (is_accum_v<Accum>) {
    s = static_cast<S>(accum(static_cast<Z>(s), acc));
  } else {
    (void)accum;
    s = static_cast<S>(acc);
  }
}

/// s ⊙= [⊕_i u(i)] — reduce a vector to a scalar.
template <typename S, typename Accum, typename M, typename U>
void reduce(S &s, Accum accum, M monoid, const Vector<U> &u) {
  using Z = typename M::value_type;
  trace::ScopedSpan sp(trace::SpanKind::reduce);
  sp.set_in_nvals(u.nvals());
  sp.set_out_nvals(1);
  Z acc = M::identity();
  const int parts = plan::chunk_parts(u.nvals(), 4);
  sp.set_threads(parts);
  if (parts > 1 && u.format() == Vector<U>::Format::sparse) {
    auto uv = u.sparse_values();
    auto bounds = detail::partition_even(static_cast<Index>(uv.size()), parts);
    const int nchunks = static_cast<int>(bounds.size()) - 1;
    std::vector<Z> part(static_cast<std::size_t>(nchunks), M::identity());
    detail::for_each_chunk(bounds, [&](int c, Index lo, Index hi) {
      Z p = M::identity();
      for (Index i = lo; i < hi; ++i) p = monoid(p, static_cast<Z>(uv[i]));
      part[c] = p;
    });
    for (const Z &p : part) acc = monoid(acc, p);
  } else if (parts > 1) {
    const std::uint8_t *up = u.bitmap_present();
    const U *uvp = u.bitmap_values();
    auto bounds = detail::partition_even(u.size(), parts);
    const int nchunks = static_cast<int>(bounds.size()) - 1;
    std::vector<Z> part(static_cast<std::size_t>(nchunks), M::identity());
    detail::for_each_chunk(bounds, [&](int c, Index lo, Index hi) {
      Z p = M::identity();
      for (Index i = lo; i < hi; ++i) {
        if (up[i]) p = monoid(p, static_cast<Z>(uvp[i]));
      }
      part[c] = p;
    });
    for (const Z &p : part) acc = monoid(acc, p);
  } else {
    u.for_each(
        [&](Index, const U &x) { acc = monoid(acc, static_cast<Z>(x)); });
  }
  if constexpr (is_accum_v<Accum>) {
    s = static_cast<S>(accum(static_cast<Z>(s), acc));
  } else {
    (void)accum;
    s = static_cast<S>(acc);
  }
}

}  // namespace grb

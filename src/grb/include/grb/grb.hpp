// grb/grb.hpp — umbrella header for the grb GraphBLAS substrate.
//
// Everything in Table I of the LAGraph paper is available from this one
// include: containers (Vector, Matrix), operators and semirings (Table II),
// descriptors, and the operations mxm, mxv, vxm, eWiseAdd, eWiseMult,
// extract, assign, apply, select, reduce, transpose, plus the container
// methods dup (copy construction), build, extractTuples, setElement, and
// extractElement.
#pragma once

#include "grb/apply.hpp"
#include "grb/assign.hpp"
#include "grb/config.hpp"
#include "grb/descriptor.hpp"
#include "grb/ewise.hpp"
#include "grb/kronecker.hpp"
#include "grb/mask.hpp"
#include "grb/matrix.hpp"
#include "grb/mxm.hpp"
#include "grb/mxv.hpp"
#include "grb/ops.hpp"
#include "grb/plan.hpp"
#include "grb/reduce.hpp"
#include "grb/semiring.hpp"
#include "grb/trace.hpp"
#include "grb/transpose.hpp"
#include "grb/types.hpp"
#include "grb/vector.hpp"

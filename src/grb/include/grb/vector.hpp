// grb/vector.hpp — sparse vector with two internal formats.
//
// A Vector<T> of size n holds nvals ≤ n explicit entries. Two storage
// formats are supported, mirroring the SuiteSparse v4 formats the paper
// credits for the pull-step speedups (§VI-A):
//   - sparse: parallel arrays of sorted indices and values (good for small
//     frontiers, i.e. "push");
//   - bitmap: a byte-per-slot presence array plus a dense value array (good
//     for large frontiers, i.e. "pull", where random access must be O(1)).
// Conversions are automatic based on density (see Config), and kernels may
// request a specific format.
//
// Threading contract: format conversions are logically const (mutable
// storage), so a vector follows the same "single writer OR finalized" rule
// as grb::Matrix — finalize() pins the current format, after which const
// members are genuinely read-only and the vector may be shared across
// threads. See the contract write-up in grb/matrix.hpp.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <numeric>
#include <optional>
#include <span>
#include <vector>

#include "grb/config.hpp"
#include "grb/ops.hpp"
#include "grb/types.hpp"

namespace grb {

template <typename T>
class Vector {
 public:
  using value_type = T;

  enum class Format : std::uint8_t { sparse, bitmap };

  Vector() : n_(0) {}

  /// An empty (no entries) vector of size n.
  explicit Vector(Index n) : n_(n) {}

  /// A vector with all n entries present, each equal to `fill` ("full").
  static Vector full(Index n, const T &fill) {
    Vector v(n);
    v.fmt_ = Format::bitmap;
    v.present_.assign(static_cast<std::size_t>(n), 1);
    v.dense_.assign(static_cast<std::size_t>(n), fill);
    v.nvals_ = n;
    return v;
  }

  [[nodiscard]] Index size() const noexcept { return n_; }
  [[nodiscard]] Index nvals() const noexcept {
    return fmt_ == Format::sparse ? static_cast<Index>(idx_.size()) : nvals_;
  }
  [[nodiscard]] bool empty() const noexcept { return nvals() == 0; }
  [[nodiscard]] Format format() const noexcept { return fmt_; }

  /// Storage width of the sparse index array. Vector indices stay 64-bit —
  /// frontiers are transient and the CSR matrices carry the memory win — but
  /// the accessors mirror Matrix so stats/oracle code is container-agnostic.
  [[nodiscard]] IndexWidth index_width() const noexcept {
    return IndexWidth::u64;
  }
  /// Bytes currently held by index storage (sparse format only; bitmap and
  /// dense vectors keep no index array).
  [[nodiscard]] std::size_t index_bytes() const noexcept {
    return idx_.size() * sizeof(Index);
  }

  /// Remove all entries (size is unchanged).
  void clear() {
    finalized_ = false;
    idx_.clear();
    val_.clear();
    present_.clear();
    dense_.clear();
    nvals_ = 0;
    fmt_ = Format::sparse;
  }

  /// Change the dimension; entries at indices >= n are dropped.
  void resize(Index n) {
    if (n == n_) return;
    finalized_ = false;
    to_sparse();
    while (!idx_.empty() && idx_.back() >= n) {
      idx_.pop_back();
      val_.pop_back();
    }
    n_ = n;
  }

  // -- element access ------------------------------------------------------

  [[nodiscard]] bool has(Index i) const {
    check_index(i);
    if (fmt_ == Format::bitmap) return present_[i] != 0;
    auto it = std::lower_bound(idx_.begin(), idx_.end(), i);
    return it != idx_.end() && *it == i;
  }

  /// Value at i, or nullopt if no entry exists there.
  [[nodiscard]] std::optional<T> get(Index i) const {
    check_index(i);
    if (fmt_ == Format::bitmap) {
      if (!present_[i]) return std::nullopt;
      return dense_[i];
    }
    auto it = std::lower_bound(idx_.begin(), idx_.end(), i);
    if (it == idx_.end() || *it != i) return std::nullopt;
    return val_[static_cast<std::size_t>(it - idx_.begin())];
  }

  /// w(i) = x, inserting or overwriting.
  void set_element(Index i, const T &x) {
    check_index(i);
    finalized_ = false;
    if (fmt_ == Format::bitmap) {
      if (!present_[i]) {
        present_[i] = 1;
        ++nvals_;
      }
      dense_[i] = x;
      return;
    }
    auto it = std::lower_bound(idx_.begin(), idx_.end(), i);
    auto pos = static_cast<std::size_t>(it - idx_.begin());
    if (it != idx_.end() && *it == i) {
      val_[pos] = x;
    } else {
      idx_.insert(it, i);
      val_.insert(val_.begin() + static_cast<std::ptrdiff_t>(pos), x);
    }
  }

  /// Delete the entry at i if present.
  void remove_element(Index i) {
    check_index(i);
    finalized_ = false;
    if (fmt_ == Format::bitmap) {
      if (present_[i]) {
        present_[i] = 0;
        --nvals_;
      }
      return;
    }
    auto it = std::lower_bound(idx_.begin(), idx_.end(), i);
    if (it != idx_.end() && *it == i) {
      auto pos = static_cast<std::size_t>(it - idx_.begin());
      idx_.erase(it);
      val_.erase(val_.begin() + static_cast<std::ptrdiff_t>(pos));
    }
  }

  // -- build / extractTuples ------------------------------------------------

  /// w ↤ {i, x}: build from tuples, combining duplicates with `dup`.
  /// Existing entries are discarded.
  template <typename Dup = Second>
  void build(std::span<const Index> indices, std::span<const T> values,
             Dup dup = {}) {
    detail::require(indices.size() == values.size(), Info::invalid_value,
                    "build: index/value array length mismatch");
    clear();
    std::vector<std::size_t> order(indices.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (indices[a] != indices[b]) return indices[a] < indices[b];
      return a < b;  // stable within an index so dup order is input order
    });
    idx_.reserve(indices.size());
    val_.reserve(indices.size());
    for (std::size_t r : order) {
      detail::require(indices[r] < n_, Info::index_out_of_bounds,
                      "build: index out of bounds");
      if (!idx_.empty() && idx_.back() == indices[r]) {
        val_.back() = dup(val_.back(), values[r]);
      } else {
        idx_.push_back(indices[r]);
        val_.push_back(values[r]);
      }
    }
    maybe_switch_format();
  }

  /// {i, x} ↤ w: extract all tuples in ascending index order.
  void extract_tuples(std::vector<Index> &indices, std::vector<T> &values) const {
    indices.clear();
    values.clear();
    indices.reserve(nvals());
    values.reserve(nvals());
    for_each([&](Index i, const T &x) {
      indices.push_back(i);
      values.push_back(x);
    });
  }

  // -- iteration -------------------------------------------------------------

  /// Visit every entry in ascending index order as f(index, value).
  template <typename F>
  void for_each(F &&f) const {
    if (fmt_ == Format::sparse) {
      for (std::size_t p = 0; p < idx_.size(); ++p) f(idx_[p], val_[p]);
    } else {
      for (Index i = 0; i < n_; ++i) {
        if (present_[i]) f(i, dense_[i]);
      }
    }
  }

  // -- mask semantics ---------------------------------------------------------

  /// Mask membership test: valued masks require a present, non-zero entry;
  /// structural masks require only presence.
  [[nodiscard]] bool mask_test(Index i, bool structural) const {
    if (fmt_ == Format::bitmap) {
      if (!present_[i]) return false;
      return structural || dense_[i] != T(0);
    }
    auto it = std::lower_bound(idx_.begin(), idx_.end(), i);
    if (it == idx_.end() || *it != i) return false;
    return structural ||
           val_[static_cast<std::size_t>(it - idx_.begin())] != T(0);
  }

  // -- format management ------------------------------------------------------

  void to_sparse() const {
    if (fmt_ == Format::sparse) return;
    assert(!finalized_ &&
           "grb::Vector: format conversion on a finalized vector — the "
           "single-writer-or-finalized threading contract was violated");
    auto &self = const_cast<Vector &>(*this);
    self.idx_.clear();
    self.val_.clear();
    self.idx_.reserve(nvals_);
    self.val_.reserve(nvals_);
    for (Index i = 0; i < n_; ++i) {
      if (present_[i]) {
        self.idx_.push_back(i);
        self.val_.push_back(dense_[i]);
      }
    }
    self.present_.clear();
    self.present_.shrink_to_fit();
    self.dense_.clear();
    self.dense_.shrink_to_fit();
    self.nvals_ = 0;
    self.fmt_ = Format::sparse;
    stats().format_switches.fetch_add(1, std::memory_order_relaxed);
  }

  void to_bitmap() const {
    if (fmt_ == Format::bitmap) return;
    assert(!finalized_ &&
           "grb::Vector: format conversion on a finalized vector — the "
           "single-writer-or-finalized threading contract was violated");
    auto &self = const_cast<Vector &>(*this);
    self.present_.assign(static_cast<std::size_t>(n_), 0);
    self.dense_.resize(static_cast<std::size_t>(n_));
    for (std::size_t p = 0; p < idx_.size(); ++p) {
      self.present_[idx_[p]] = 1;
      self.dense_[idx_[p]] = val_[p];
    }
    self.nvals_ = static_cast<Index>(idx_.size());
    self.idx_.clear();
    self.idx_.shrink_to_fit();
    self.val_.clear();
    self.val_.shrink_to_fit();
    self.fmt_ = Format::bitmap;
    stats().format_switches.fetch_add(1, std::memory_order_relaxed);
  }

  /// Pick the format the density heuristic prefers.
  void maybe_switch_format() const {
    if (n_ == 0) return;
    double density =
        static_cast<double>(nvals()) / static_cast<double>(n_);
    if (fmt_ == Format::sparse && density > config().bitmap_switch_density) {
      to_bitmap();
    } else if (fmt_ == Format::bitmap &&
               density < config().bitmap_switch_density / 4.0) {
      to_sparse();
    }
  }

  // -- raw access for kernels --------------------------------------------------

  [[nodiscard]] std::span<const Index> sparse_indices() const {
    return {idx_.data(), idx_.size()};
  }
  [[nodiscard]] std::span<const T> sparse_values() const {
    return {val_.data(), val_.size()};
  }
  [[nodiscard]] const std::uint8_t *bitmap_present() const {
    return present_.data();
  }
  [[nodiscard]] const T *bitmap_values() const { return dense_.data(); }

  // Mutable bitmap access for in-place kernels (assign fast paths). The
  // caller owns the invariant: after inserting/removing entries through
  // these pointers it must fix the count via set_bitmap_nvals.
  [[nodiscard]] std::uint8_t *bitmap_present_mut() {
    finalized_ = false;
    return present_.data();
  }
  [[nodiscard]] T *bitmap_values_mut() {
    finalized_ = false;
    return dense_.data();
  }
  void set_bitmap_nvals(Index nv) { nvals_ = nv; }

  /// Adopt sparse storage directly (indices must be sorted and unique).
  void adopt_sparse(std::vector<Index> &&indices, std::vector<T> &&values) {
    detail::require(indices.size() == values.size(), Info::invalid_value,
                    "adopt_sparse: length mismatch");
    clear();
    idx_ = std::move(indices);
    val_ = std::move(values);
  }

  /// Adopt bitmap storage directly (present.size() == dense.size() == size()).
  void adopt_bitmap(std::vector<std::uint8_t> &&present, std::vector<T> &&dense,
                    Index nvals) {
    detail::require(present.size() == static_cast<std::size_t>(n_) &&
                        dense.size() == static_cast<std::size_t>(n_),
                    Info::invalid_value, "adopt_bitmap: length mismatch");
    clear();
    present_ = std::move(present);
    dense_ = std::move(dense);
    nvals_ = nvals;
    fmt_ = Format::bitmap;
  }

  /// Freeze for concurrent sharing (same contract as grb::Matrix): pins the
  /// current storage format, after which const members are genuinely
  /// read-only. Cleared by any non-const mutation.
  void finalize() const {
    finalized_ = true;
    stats().finalize_calls.fetch_add(1, std::memory_order_relaxed);
  }

  /// True while the vector is frozen for concurrent readers.
  [[nodiscard]] bool is_finalized() const noexcept { return finalized_; }

  friend bool operator==(const Vector &a, const Vector &b) {
    if (a.n_ != b.n_ || a.nvals() != b.nvals()) return false;
    bool eq = true;
    a.for_each([&](Index i, const T &x) {
      auto y = b.get(i);
      if (!y || !(*y == x)) eq = false;
    });
    return eq;
  }

 private:
  void check_index(Index i) const {
    detail::require(i < n_, Info::index_out_of_bounds,
                    "vector index out of bounds");
  }

  Index n_;
  mutable bool finalized_ = false;  // frozen for concurrent readers
  // Formats are logically interchangeable, so conversion is const-qualified
  // (same convention SuiteSparse uses for its internal format changes).
  mutable Format fmt_ = Format::sparse;
  mutable std::vector<Index> idx_;           // sparse: sorted indices
  mutable std::vector<T> val_;               // sparse: values
  mutable std::vector<std::uint8_t> present_;  // bitmap: presence
  mutable std::vector<T> dense_;             // bitmap: values
  mutable Index nvals_ = 0;                  // bitmap: entry count
};

}  // namespace grb

// grb/descriptor.hpp — operation descriptors (paper Table I footnote).
//
// A Descriptor modifies how an operation treats its inputs, mask, and output:
//   - transpose_a / transpose_b: use Aᵀ (resp. Bᵀ) as input,
//   - mask_structural: test mask entry presence, not value (⟨s(M)⟩),
//   - mask_complement: use the complement of the mask (⟨¬M⟩),
//   - replace: clear output entries outside the mask (⟨M, r⟩).
// Named constants mirror the common GrB_DESC_* combinations used in the
// paper's algorithms (e.g. RSC = replace + structural + complemented, the
// BFS frontier mask ⟨¬s(p), r⟩).
#pragma once

namespace grb {

struct Descriptor {
  bool transpose_a = false;
  bool transpose_b = false;
  bool mask_structural = false;
  bool mask_complement = false;
  bool replace = false;

  // Builder-style modifiers so call sites read like the paper's notation.
  [[nodiscard]] constexpr Descriptor T0() const {
    Descriptor d = *this;
    d.transpose_a = true;
    return d;
  }
  [[nodiscard]] constexpr Descriptor T1() const {
    Descriptor d = *this;
    d.transpose_b = true;
    return d;
  }
  [[nodiscard]] constexpr Descriptor S() const {
    Descriptor d = *this;
    d.mask_structural = true;
    return d;
  }
  [[nodiscard]] constexpr Descriptor C() const {
    Descriptor d = *this;
    d.mask_complement = true;
    return d;
  }
  [[nodiscard]] constexpr Descriptor R() const {
    Descriptor d = *this;
    d.replace = true;
    return d;
  }
};

namespace desc {

inline constexpr Descriptor DEFAULT{};
inline constexpr Descriptor T0{true, false, false, false, false};
inline constexpr Descriptor T1{false, true, false, false, false};
inline constexpr Descriptor S{false, false, true, false, false};
inline constexpr Descriptor C{false, false, false, true, false};
inline constexpr Descriptor R{false, false, false, false, true};
inline constexpr Descriptor RS{false, false, true, false, true};
inline constexpr Descriptor SC{false, false, true, true, false};
inline constexpr Descriptor RC{false, false, false, true, true};
inline constexpr Descriptor RSC{false, false, true, true, true};
inline constexpr Descriptor T0_RSC{true, false, true, true, true};

}  // namespace desc

}  // namespace grb

// grb/plan.hpp — the execution planner: one cost model for format,
// direction, and thread-team dispatch across every layer.
//
// The paper's Table III story is about *which* kernel variant runs — push
// vxm vs bitmap-pull mxv, dot-product mxm on a transposed B, lazy-sort
// tolerant ops. Before this header those choices were smeared across the
// stack: kernels converted formats ad-hoc and each algorithm hand-rolled its
// own GAP-flavoured direction threshold. Following SuiteSparse:GraphBLAS and
// GraphBLAST, the choice is now centralized:
//
//   OpDesc (shapes, nnz, frontier density, mask, semiring traits)
//     → make_plan() — cost model + Config overrides + caller hints
//       → ExecPlan (direction, operand formats, thread-team size)
//         → prepare() — explicit, counted operand conversions
//           → kernel — a pure executor that asserts its preconditions.
//
// The unified traversal cost model (one formula replacing the per-algorithm
// magic constants in BFS/BC/msbfs):
//
//   d̄         = a_nvals / a_rows                   (mean degree)
//   push_cost = frontier_nvals · d̄                 (edges scanned forward)
//   probe     = has_terminal ? min(d̄, out_size / frontier_nvals) : d̄
//   pull_cost = kPullBias · pull_candidates · probe
//
// push scans every edge leaving the frontier; pull runs one dot product per
// candidate output, each costing ~d̄ probes — except under a terminal monoid
// (`any`, the BFS case), where a dot stops at the first frontier neighbour,
// after ~out_size/frontier_nvals probes on average. kPullBias accounts for
// the constant-factor cost of probing over sequential scatter.
//
// Plans are memoized per (op, shape-bucket) in a PlanCache; a
// lagraph::service snapshot owns one and pre-warms it, and CacheScope
// installs it thread-locally so kernels deep in a query reuse decisions
// across a batch without any plumbing through template signatures.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "grb/config.hpp"
#include "grb/parallel.hpp"
#include "grb/types.hpp"

namespace grb {
namespace plan {

/// Operation kinds the planner understands. `traversal` is the algorithm-
/// level push/pull choice (BFS levels, BC sweeps, msbfs groups); the rest
/// are the grb kernel entry points. The `fused_*` kinds are single-sweep
/// compositions (masked mxv/vxm + stamp assigns, vxm + range select) the
/// planner may dispatch instead of the op chain they replace.
enum class OpKind : std::uint8_t {
  mxv,
  vxm,
  mxm,
  ewise_add,
  ewise_mult,
  apply,
  reduce,
  traversal,
  fused_mxv_apply,
  fused_vxm_select,
};

enum class Direction : std::uint8_t { none, push, pull };

/// Requested matrix operand format. `keep` = leave as found.
enum class MatFormat : std::uint8_t { keep, csr, bitmap };

/// Requested vector operand format. `keep` = leave as found.
enum class VecFormat : std::uint8_t { keep, sparse, bitmap };

/// Who made the call — the per-decision outcome recorded in Stats.
enum class Chosen : std::uint8_t {
  cost_model,       // the cost model's own pick
  config_override,  // Config::force_push / force_pull / force_format
  caller_hint,      // an Advanced-mode algorithm forced it
  cached,           // served from a PlanCache
};

const char *name(OpKind k) noexcept;
const char *name(Direction d) noexcept;
const char *name(MatFormat f) noexcept;
const char *name(VecFormat f) noexcept;
const char *name(Chosen c) noexcept;

/// Everything the cost model may consult. Callers fill in what their op has;
/// unused fields stay zero and do not perturb the decision.
struct OpDesc {
  OpKind op = OpKind::mxv;
  Index out_size = 0;    // output cells (vector length, or ns·n for BC)
  Index a_rows = 0;      // primary matrix operand
  Index a_cols = 0;
  Index a_nvals = 0;
  Index u_nvals = 0;     // vector operand / frontier nnz
  Index v_nvals = 0;     // second vector operand (eWise)
  Index b_nvals = 0;     // second matrix operand (mxm)
  Index mask_nvals = 0;
  Index pull_candidates = 0;  // traversal: outputs a pull would compute
  IndexWidth a_width = IndexWidth::u64;  // primary operand's storage width
  IndexWidth b_width = IndexWidth::u64;  // second matrix operand (mxm)
  int u_format = -1;     // Vector<T>::Format as int, -1 when n/a
  int v_format = -1;
  bool masked = false;
  bool mask_complement = false;
  bool mask_structural = false;
  bool transpose_a = false;
  bool transpose_b = false;
  bool has_terminal = false;      // additive monoid short-circuits (any/lor)
  bool operands_aliased = false;  // mxm: A and B are the same object
  bool has_transpose = false;     // traversal: a pull path exists
  Direction hint = Direction::none;  // Advanced-mode forced direction
};

/// The planner's decision. Kernels execute it verbatim and assert the
/// preconditions it promises (formats already converted by prepare()).
struct ExecPlan {
  OpKind op = OpKind::mxv;
  Direction direction = Direction::none;
  MatFormat a_format = MatFormat::keep;
  MatFormat b_format = MatFormat::keep;
  MatFormat mask_format = MatFormat::keep;
  VecFormat u_format = VecFormat::keep;
  VecFormat v_format = VecFormat::keep;
  bool use_dot = false;    // mxm: dot kernel instead of Gustavson
  bool use_fused = false;  // fused_* ops: single-sweep kernel vs op chain
  int threads = 1;         // team-size cap from the PR-2 partitioner
  Chosen chosen = Chosen::cost_model;
  double cost_push = 0.0;  // model estimates (0 when not applicable)
  double cost_pull = 0.0;
  double cost_fused = 0.0;    // fused_* ops: one-sweep estimate
  double cost_unfused = 0.0;  // fused_* ops: op-chain estimate
  OpDesc desc;  // the inputs the decision was made from (for explain)

  /// Human-readable decision record — `lagraph_cli explain` output.
  [[nodiscard]] std::string explain() const;

  /// Compact one-line form of explain() — what per-request roll-ups and the
  /// slow-query log carry as the "plan summary".
  [[nodiscard]] std::string explain_line() const;
};

/// Build a plan for `d`: probe the thread-local PlanCache (if one is
/// installed), apply caller hints and Config overrides, otherwise run the
/// cost model. Bumps the Stats planner counters.
ExecPlan make_plan(const OpDesc &d);

/// Fixed per-call overhead in cost-model units, charged on every kernel
/// dispatch. The calibration run (EXPERIMENTS.md §Observability) measured
/// single-vertex push frontiers ~6.8× under-estimated because the model
/// priced only the edge scan; dispatch + plan probe + write_result dominate
/// at that size. Both directions pay it, so large-frontier decisions are
/// unchanged.
inline constexpr double kCallOverheadUnits = 64.0;

/// Fitted per-machine translation between cost-model units and wall time,
/// one coefficient per traversal direction. Cost-model *decisions* compare
/// unit counts against unit counts and never need these; they exist so
/// `explain` and the trace calibration report can render model estimates in
/// nanoseconds, and so repeated trace runs can measure model drift on this
/// machine. Persisted as a small JSON file (Config::calibration_file) and
/// updated online by service::Engine workers via an exponentially-weighted
/// fit over recorded spans.
struct Calibration {
  double push_ns_per_unit = 0.0;  // 0 = not fitted yet
  double pull_ns_per_unit = 0.0;
  std::uint64_t samples = 0;        // spans folded into the fit
  std::uint64_t fitted_at_epoch_s = 0;  // wall-clock seconds of last fit
  std::string source;               // file it was loaded from, "" = in-memory
  bool loaded = false;              // true once load/set succeeded
};

/// Load coefficients from a calibration file (the lagraph-calibration-v1
/// JSON written by save_calibration / `lagraph_cli trace --calibration-out`).
/// Returns false (and leaves the current state untouched) when the file is
/// missing or malformed. Thread-safe.
bool load_calibration(const std::string &path);

/// Persist the current coefficients to `path`. Returns false on I/O error.
bool save_calibration(const std::string &path);

/// Value copy of the current coefficient state. Thread-safe.
Calibration calibration_snapshot() noexcept;

/// Install coefficients directly (used by the CLI after a trace fit and by
/// tests). Thread-safe.
void set_calibration(const Calibration &c) noexcept;

/// Drop back to the unfitted state (tests).
void reset_calibration() noexcept;

/// Online update from one recorded span: fold `actual_ns / predicted_units`
/// into the per-direction coefficient with an exponentially-weighted moving
/// average (α = 0.05, so ~20 recent spans dominate). Called by the trace
/// layer when Config::calibration_update_every is set; cheap enough for a
/// kernel epilogue (two relaxed atomics). Bumps Stats::calibration_updates.
void observe_span_ns(Direction dir, double predicted_units,
                     std::uint64_t actual_ns) noexcept;

/// Thread-team size for `total_work` units: the PR-2 gating rule
/// (effective_threads() when the work clears kParallelGrain, else the
/// bit-exact serial schedule), stated once here instead of inline in every
/// kernel.
inline int team_size(Index total_work) noexcept {
  const int t = detail::effective_threads();
  return (t > 1 && total_work >= detail::kParallelGrain) ? t : 1;
}

/// Chunk count for a chunked kernel loop: team size × an oversubscription
/// factor (nnz-imbalance headroom), or 1 when the serial schedule is pinned.
inline int chunk_parts(Index total_work, int oversub = 1) noexcept {
  const int t = team_size(total_work);
  return t > 1 ? t * oversub : 1;
}

/// Format for an iteratively-updated output vector (the BFS parent/level
/// vectors, SSSP's tentative distances): bitmap so per-round masked assigns
/// scatter in place, unless Config pins sparse.
VecFormat iterative_output_format(Index size) noexcept;

/// Triangle-counting presort decision (paper Alg. 6): permute by degree when
/// the sampled distribution is skewed.
bool tc_presort(double mean_degree, double median_degree) noexcept;

/// Default Δ for delta-stepping SSSP, scaled from the maximum edge weight
/// (the GAP benchmark's Δ = 2 on [1, 255] weights).
double sssp_default_delta(double max_weight) noexcept;

/// Apply a planned matrix conversion explicitly. This is the only sanctioned
/// way to change an operand's format on behalf of a kernel — it bumps
/// Stats::format_conversions so formerly-silent O(n) expansions (hypersparse
/// raw access, rowptr() before this refactor) show up in the counters.
template <typename Mat>
void prepare(const Mat &a, MatFormat f) {
  using F = typename Mat::Format;
  switch (f) {
    case MatFormat::keep:
      break;
    case MatFormat::csr:
      if (a.format() != F::csr) {
        stats().format_conversions.fetch_add(1, std::memory_order_relaxed);
        a.to_csr();
      }
      break;
    case MatFormat::bitmap:
      if (a.format() != F::bitmap) {
        stats().format_conversions.fetch_add(1, std::memory_order_relaxed);
        a.to_bitmap();
      }
      break;
  }
}

/// Apply a planned vector conversion explicitly (counted, as above).
template <typename Vec>
void prepare(const Vec &u, VecFormat f) {
  using F = typename Vec::Format;
  switch (f) {
    case VecFormat::keep:
      break;
    case VecFormat::sparse:
      if (u.format() != F::sparse) {
        stats().format_conversions.fetch_add(1, std::memory_order_relaxed);
        u.to_sparse();
      }
      break;
    case VecFormat::bitmap:
      if (u.format() != F::bitmap) {
        stats().format_conversions.fetch_add(1, std::memory_order_relaxed);
        u.to_bitmap();
      }
      break;
  }
}

/// Per-snapshot plan memo, keyed by (op, shape-bucket). Shape buckets are
/// log₂ ranges of the nnz-like inputs, so one BFS run populates a handful of
/// entries that every later query with similar frontier densities reuses.
/// Thread-safe; a snapshot shares one cache across all engine workers.
class PlanCache {
 public:
  bool lookup(std::uint64_t key, ExecPlan &out) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    out = it->second;
    return true;
  }

  void insert(std::uint64_t key, const ExecPlan &p) {
    std::lock_guard<std::mutex> lk(mu_);
    map_.emplace(key, p);
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return map_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, ExecPlan> map_;
};

/// The cache make_plan consults on this thread (nullptr = plan fresh).
PlanCache *active_cache() noexcept;

/// RAII installer for a PlanCache: algorithms and service workers wrap query
/// execution in a CacheScope so every kernel below them memoizes into the
/// snapshot's cache — no cache parameter threads through the template API.
class CacheScope {
 public:
  explicit CacheScope(PlanCache *cache) noexcept;
  ~CacheScope();
  CacheScope(const CacheScope &) = delete;
  CacheScope &operator=(const CacheScope &) = delete;

 private:
  PlanCache *prev_;
};

/// Bucketed memo key for `d` (exposed for tests and pre-warming).
std::uint64_t cache_key(const OpDesc &d) noexcept;

}  // namespace plan
}  // namespace grb

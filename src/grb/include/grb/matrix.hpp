// grb/matrix.hpp — sparse matrix with CSR, bitmap, and full formats.
//
// The CSR ("sparse") format is the workhorse, held by row as in
// SuiteSparse:GraphBLAS. Three pieces of deferred ("non-blocking mode")
// state reproduce the mechanisms the paper describes in §VI-A:
//   - pending tuples: set_element / accum_element append to an unsorted side
//     list instead of rewriting the CSR arrays; finish() merges them in one
//     pass, folding each position's ops in arrival order (set overwrites,
//     accum adds into the current value or inserts);
//   - zombies: remove_element marks the entry dead on a side list rather
//     than compacting the CSR arrays; finish() buries them in the same pass;
//   - lazy sort: kernels that naturally emit a row's entries out of column
//     order (saxpy-style mxm) may leave the matrix "jumbled"; the sort runs
//     only when some consumer actually needs sorted rows (dot products,
//     element-wise merges). If no consumer needs it, the sort never happens.
// The bitmap and full formats store an m×n dense layout; bitmap adds a
// byte-per-slot presence array. They serve dense-ish intermediates such as
// the ns×n frontier matrices in betweenness centrality.
//
// Threading contract ("single writer OR finalized"):
//   The deferred-work machinery above is *logically* const — finish(),
//   ensure_sorted(), and the to_*() format switches mutate internal state
//   behind const methods. That is undefined behavior if two threads touch
//   the same matrix concurrently, even if both only "read". A matrix may
//   therefore be used from exactly one thread at a time, UNLESS it has been
//   finalized: finalize() drains every deferred path (pending tuples,
//   zombies, lazy sort, hypersparse row list) up front, after which all
//   const member functions are genuinely read-only and any number of
//   threads may share the matrix. In debug builds the lazy paths assert
//   that they are never reached on a finalized matrix; any non-const
//   mutation (set_element, build, clear, adopt_csr, ...) returns the
//   matrix to single-writer mode by clearing the finalized flag.
//   lagraph::service::GraphSnapshot is the intended consumer: it finalizes
//   a graph's containers once, then serves it to a worker pool.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <numeric>
#include <optional>
#include <span>
#include <vector>

#include "grb/config.hpp"
#include "grb/indexarray.hpp"
#include "grb/ops.hpp"
#include "grb/parallel.hpp"
#include "grb/trace.hpp"
#include "grb/types.hpp"

namespace grb {

template <typename T>
class Matrix {
 public:
  using value_type = T;

  enum class Format : std::uint8_t { csr, hypersparse, bitmap, full };

  /// Pending-op codes for stage_tuples (the batched mutation entry point).
  static constexpr std::uint8_t kPendSet = 0;     // insert-or-overwrite
  static constexpr std::uint8_t kPendDelete = 1;  // zombie (remove if present)
  static constexpr std::uint8_t kPendAccum = 2;   // add into value, or insert

  Matrix() : m_(0), n_(0) {
    init_width(detail::select_index_width_lenient(0, 0, 0));
    rowptr_.assign(1, 0);
  }

  /// An empty m×n matrix in CSR format. Storage width starts at the
  /// dimension-implied width and is re-selected at every build/finalize
  /// (the non-throwing rule: a forced-u32 overflow is reported by the next
  /// build/stage_tuples, not by the constructor).
  Matrix(Index m, Index n) : m_(m), n_(n) {
    init_width(detail::select_index_width_lenient(m, n, 0));
    rowptr_.assign(static_cast<std::size_t>(m) + 1, 0);
  }

  /// An m×n matrix with every entry present and equal to `fill` ("full").
  static Matrix full_matrix(Index m, Index n, const T &fill) {
    Matrix a(m, n);
    a.fmt_ = Format::full;
    a.rowptr_.clear();
    a.dense_.assign(static_cast<std::size_t>(m) * n, fill);
    return a;
  }

  [[nodiscard]] Index nrows() const noexcept { return m_; }
  [[nodiscard]] Index ncols() const noexcept { return n_; }
  [[nodiscard]] Format format() const noexcept { return fmt_; }

  [[nodiscard]] Index nvals() const {
    finish();
    switch (fmt_) {
      case Format::csr:
      case Format::hypersparse: return static_cast<Index>(colidx_.size());
      case Format::bitmap: return bitmap_nvals_;
      case Format::full: return m_ * n_;
    }
    return 0;
  }

  void clear() {
    finalized_ = false;
    rowptr_.assign(static_cast<std::size_t>(m_) + 1, 0);
    colidx_.clear();
    vals_.clear();
    present_.clear();
    dense_.clear();
    pend_i_.clear();
    pend_j_.clear();
    pend_v_.clear();
    pend_op_.clear();
    hrows_.clear();
    hrowptr_.clear();
    bitmap_nvals_ = 0;
    jumbled_ = false;
    fmt_ = Format::csr;
  }

  // -- element access ---------------------------------------------------------

  /// C(i,j) = x. In CSR format the update lands on the pending-tuple list;
  /// it is merged on the next finish(). Later writes win over earlier ones.
  void set_element(Index i, Index j, const T &x) {
    check_indices(i, j);
    finalized_ = false;
    if (fmt_ == Format::hypersparse) to_csr();
    if (fmt_ != Format::csr) {
      auto p = static_cast<std::size_t>(i) * n_ + j;
      if (fmt_ == Format::bitmap && !present_[p]) {
        present_[p] = 1;
        ++bitmap_nvals_;
      }
      dense_[p] = x;
      return;
    }
    pend_i_.push_back(i);
    pend_j_.push_back(j);
    pend_v_.push_back(x);
    pend_op_.push_back(kPendSet);
  }

  /// C(i,j) = C(i,j) + x if the entry exists, else C(i,j) = x — the deferred
  /// "upsert" the ingest write path uses (GrB_setElement with a plus
  /// accumulator). Rides the same pending-tuple list as set_element, so a
  /// stream of accumulates costs one merge at the next flush boundary, not a
  /// CSR rewrite per call.
  void accum_element(Index i, Index j, const T &x) {
    check_indices(i, j);
    finalized_ = false;
    if (fmt_ == Format::hypersparse) to_csr();
    if (fmt_ != Format::csr) {
      auto p = static_cast<std::size_t>(i) * n_ + j;
      if (fmt_ == Format::bitmap && !present_[p]) {
        present_[p] = 1;
        ++bitmap_nvals_;
        dense_[p] = x;
      } else {
        dense_[p] = static_cast<T>(dense_[p] + x);
      }
      return;
    }
    pend_i_.push_back(i);
    pend_j_.push_back(j);
    pend_v_.push_back(x);
    pend_op_.push_back(kPendAccum);
  }

  /// Delete the entry at (i,j) if present. In CSR format this creates a
  /// "zombie": the deletion is recorded on a side list and applied on the
  /// next finish(), so no CSR compaction happens per call.
  void remove_element(Index i, Index j) {
    check_indices(i, j);
    finalized_ = false;
    if (fmt_ == Format::hypersparse) to_csr();
    if (fmt_ != Format::csr) {
      auto p = static_cast<std::size_t>(i) * n_ + j;
      if (fmt_ == Format::bitmap && present_[p]) {
        present_[p] = 0;
        --bitmap_nvals_;
      } else if (fmt_ == Format::full) {
        // A full matrix has no "missing" state: demote to bitmap first.
        to_bitmap();
        remove_element(i, j);
      }
      return;
    }
    pend_i_.push_back(i);
    pend_j_.push_back(j);
    pend_v_.push_back(T{});
    pend_op_.push_back(kPendDelete);
  }

  /// Batched non-blocking mutation: append `ops[p]`-coded updates (one of
  /// the kPend* codes) for positions (rows[p], cols[p]) to the pending list
  /// in one call — the ingest write path's entry point, amortizing the
  /// per-element virtual bookkeeping over a whole edge batch. Out-of-range
  /// indices throw before anything is staged. Deletes and accumulates obey
  /// exactly the set_element / remove_element / accum_element semantics at
  /// the next flush boundary.
  void stage_tuples(std::span<const Index> rows, std::span<const Index> cols,
                    std::span<const T> values,
                    std::span<const std::uint8_t> ops) {
    detail::require(rows.size() == cols.size() &&
                        rows.size() == values.size() &&
                        rows.size() == ops.size(),
                    Info::invalid_value, "stage_tuples: array length mismatch");
    for (std::size_t p = 0; p < rows.size(); ++p) {
      detail::require(rows[p] < m_ && cols[p] < n_,
                      Info::index_out_of_bounds,
                      "stage_tuples: index out of bounds");
      detail::require(ops[p] <= kPendAccum, Info::invalid_value,
                      "stage_tuples: unknown op code");
    }
    // Overflow guard: under a forced u32 width, reject any batch whose
    // projected entry count (pre-dedup — conservative) would exceed the u32
    // domain, before anything is staged. Auto mode instead promotes to u64
    // at the merge_pending → build boundary.
    if (config().force_index_width == ForceIndexWidth::u32) {
      const Index limit = std::min(config().u32_index_limit, kU32IndexLimit);
      // colidx_.size() is the current materialized entry count (bitmap/full
      // containers route through set_element below, where build re-checks);
      // avoid nvals() here — it would finish() and flush the pending list.
      const Index projected = static_cast<Index>(colidx_.size()) +
                              static_cast<Index>(pend_i_.size()) +
                              static_cast<Index>(rows.size());
      detail::require(std::max({m_, n_, projected}) < limit,
                      Info::index_out_of_bounds,
                      "stage_tuples: batch exceeds the container's u32 index "
                      "width");
    }
    finalized_ = false;
    if (fmt_ == Format::hypersparse) to_csr();
    if (fmt_ != Format::csr) {
      for (std::size_t p = 0; p < rows.size(); ++p) {
        switch (ops[p]) {
          case kPendSet: set_element(rows[p], cols[p], values[p]); break;
          case kPendDelete: remove_element(rows[p], cols[p]); break;
          default: accum_element(rows[p], cols[p], values[p]); break;
        }
      }
      return;
    }
    pend_i_.insert(pend_i_.end(), rows.begin(), rows.end());
    pend_j_.insert(pend_j_.end(), cols.begin(), cols.end());
    pend_v_.insert(pend_v_.end(), values.begin(), values.end());
    pend_op_.insert(pend_op_.end(), ops.begin(), ops.end());
  }

  [[nodiscard]] std::optional<T> get(Index i, Index j) const {
    check_indices(i, j);
    finish();
    if (fmt_ == Format::full) {
      return dense_[static_cast<std::size_t>(i) * n_ + j];
    }
    if (fmt_ == Format::bitmap) {
      auto p = static_cast<std::size_t>(i) * n_ + j;
      if (!present_[p]) return std::nullopt;
      return dense_[p];
    }
    ensure_sorted();
    return detail::dispatch_width(iw_, [&](auto tag) -> std::optional<T> {
      using I = decltype(tag);
      auto cx = colidx_.template as<I>();
      std::size_t lo = 0, hi = 0;
      if (fmt_ == Format::hypersparse) {
        auto hr = hrows_.template as<I>();
        auto hp = hrowptr_.template as<I>();
        auto it = std::lower_bound(hr.begin(), hr.end(), static_cast<I>(i));
        if (it == hr.end() || *it != static_cast<I>(i)) return std::nullopt;
        auto h = static_cast<std::size_t>(it - hr.begin());
        lo = hp[h];
        hi = hp[h + 1];
      } else {
        auto rp = rowptr_.template as<I>();
        lo = rp[i];
        hi = rp[i + 1];
      }
      auto first = cx.begin() + static_cast<std::ptrdiff_t>(lo);
      auto last = cx.begin() + static_cast<std::ptrdiff_t>(hi);
      auto jt = std::lower_bound(first, last, static_cast<I>(j));
      if (jt == last || *jt != static_cast<I>(j)) return std::nullopt;
      return vals_[static_cast<std::size_t>(jt - cx.begin())];
    });
  }

  [[nodiscard]] bool has(Index i, Index j) const { return get(i, j).has_value(); }

  // -- build / extractTuples ----------------------------------------------------

  /// C ↤ {i, j, x}: build from tuples, combining duplicates with `dup`.
  template <typename Dup = Plus>
  void build(std::span<const Index> rows, std::span<const Index> cols,
             std::span<const T> values, Dup dup = {}) {
    detail::require(rows.size() == cols.size() && rows.size() == values.size(),
                    Info::invalid_value, "build: array length mismatch");
    trace::ScopedSpan sp(trace::SpanKind::build);
    sp.set_in_nvals(rows.size());
    const std::size_t nz = rows.size();
    // Width selection happens here, where the entry count is first known
    // (nz counts pre-dedup tuples — conservative: finalize() re-compresses
    // if duplicate combining shrank the matrix back under the limit). In
    // forced-u32 mode an over-limit container throws index_out_of_bounds
    // before any storage is touched.
    const IndexWidth want =
        detail::select_index_width(m_, n_, static_cast<Index>(nz));
    const bool had_entries = !colidx_.empty();
    if (want != iw_ && had_entries) {
      if (want == IndexWidth::u32) {
        stats().index_width_compressions.fetch_add(1,
                                                   std::memory_order_relaxed);
      } else {
        stats().index_width_promotions.fetch_add(1, std::memory_order_relaxed);
      }
    }
    clear();  // also drops the finalized flag: back to single-writer mode
    init_width(want);
    // Counting sort by row, then per-row stable sort by column. The parallel
    // form (grb/parallel.hpp) mirrors the transpose bucket sort: per-chunk
    // row counts, prefix offsets giving each (chunk, row) pair a disjoint
    // slice, then a scatter — chunk order preserves ascending tuple position
    // within a row, and the stable column sort preserves it within equal
    // columns, so duplicate combining happens in exactly the serial order.
    int nthreads = detail::effective_threads();
    if (nz < detail::kParallelGrain ||
        static_cast<std::size_t>(nthreads) *
                (static_cast<std::size_t>(m_) + 1) >
            4 * nz + 1024) {
      nthreads = 1;
    }
    sp.set_threads(nthreads);
    std::vector<Index> count(static_cast<std::size_t>(m_) + 1, 0);
    std::vector<std::size_t> order(nz);
    if (nthreads <= 1) {
      for (std::size_t p = 0; p < nz; ++p) {
        detail::require(rows[p] < m_ && cols[p] < n_, Info::index_out_of_bounds,
                        "build: tuple out of bounds");
        ++count[rows[p] + 1];
      }
      std::partial_sum(count.begin(), count.end(), count.begin());
      std::vector<Index> next(count.begin(), count.end() - 1);
      for (std::size_t p = 0; p < nz; ++p) order[next[rows[p]]++] = p;
    } else {
      auto pbounds =
          detail::partition_even(static_cast<Index>(nz), nthreads);
      const int nchunks = static_cast<int>(pbounds.size()) - 1;
      std::vector<std::vector<Index>> ccount(
          static_cast<std::size_t>(nchunks),
          std::vector<Index>(static_cast<std::size_t>(m_), 0));
      // No exception may escape an OpenMP region: record bad tuples per
      // chunk and throw after the join.
      std::vector<std::uint8_t> bad(static_cast<std::size_t>(nchunks), 0);
      detail::for_each_chunk(pbounds, [&](int c, Index lo, Index hi) {
        auto &cnt = ccount[c];
        for (Index p = lo; p < hi; ++p) {
          if (rows[p] >= m_ || cols[p] >= n_) {
            bad[c] = 1;
            continue;
          }
          ++cnt[rows[p]];
        }
      });
      for (std::uint8_t b : bad) {
        detail::require(!b, Info::index_out_of_bounds,
                        "build: tuple out of bounds");
      }
      for (Index i = 0; i < m_; ++i) {
        Index total = 0;
        for (int c = 0; c < nchunks; ++c) total += ccount[c][i];
        count[i + 1] = count[i] + total;
      }
      std::vector<std::vector<Index>> off(static_cast<std::size_t>(nchunks));
      for (int c = 0; c < nchunks; ++c) {
        off[c].resize(static_cast<std::size_t>(m_));
      }
      detail::for_each_chunk(detail::partition_even(m_, nchunks),
                             [&](int, Index lo, Index hi) {
                               for (Index i = lo; i < hi; ++i) {
                                 Index at = count[i];
                                 for (int c = 0; c < nchunks; ++c) {
                                   off[c][i] = at;
                                   at += ccount[c][i];
                                 }
                               }
                             });
      detail::for_each_chunk(pbounds, [&](int c, Index lo, Index hi) {
        auto &nx = off[c];
        for (Index p = lo; p < hi; ++p) {
          order[nx[rows[p]]++] = static_cast<std::size_t>(p);
        }
      });
    }
    {
      // Per-row column sorts are independent; chunk rows by their tuple
      // count so one dense row doesn't serialize the pass.
      std::vector<Index> rbounds =
          nthreads > 1
              ? detail::partition_rows_by_work(std::span<const Index>(count),
                                               nthreads * 4)
              : detail::partition_even(m_, 1);
      detail::for_each_chunk(rbounds, [&](int, Index rlo, Index rhi) {
        for (Index i = rlo; i < rhi; ++i) {
          auto lo = order.begin() + static_cast<std::ptrdiff_t>(count[i]);
          auto hi = order.begin() + static_cast<std::ptrdiff_t>(count[i + 1]);
          std::stable_sort(lo, hi, [&](std::size_t a, std::size_t b) {
            return cols[a] < cols[b];
          });
        }
      });
    }
    // Emit directly at the selected width: the loop is monomorphic after
    // one dispatch, and the arrays are adopted zero-copy.
    detail::dispatch_width(iw_, [&](auto tag) {
      using I = decltype(tag);
      std::vector<I> rp(static_cast<std::size_t>(m_) + 1, 0);
      std::vector<I> ci;
      std::vector<T> vx;
      ci.reserve(nz);
      vx.reserve(nz);
      Index row = 0;
      for (std::size_t q = 0; q < nz; ++q) {
        std::size_t p = order[q];
        while (row < rows[p]) rp[++row] = static_cast<I>(ci.size());
        if (!ci.empty() && static_cast<Index>(ci.size()) >
                               static_cast<Index>(rp[row]) &&
            ci.back() == static_cast<I>(cols[p])) {
          vx.back() = dup(vx.back(), values[p]);
        } else {
          ci.push_back(static_cast<I>(cols[p]));
          vx.push_back(values[p]);
        }
      }
      while (row < m_) rp[++row] = static_cast<I>(ci.size());
      rowptr_.adopt(std::move(rp));
      colidx_.adopt(std::move(ci));
      vals_ = std::move(vx);
    });
    jumbled_ = false;
    sp.set_out_nvals(colidx_.size());
  }

  /// {i, j, x} ↤ C, in row-major (and within-row ascending column) order.
  void extract_tuples(std::vector<Index> &rows, std::vector<Index> &cols,
                      std::vector<T> &values) const {
    finish();
    ensure_sorted();
    rows.clear();
    cols.clear();
    values.clear();
    rows.reserve(nvals());
    cols.reserve(nvals());
    values.reserve(nvals());
    for_each([&](Index i, Index j, const T &x) {
      rows.push_back(i);
      cols.push_back(j);
      values.push_back(x);
    });
  }

  // -- iteration ----------------------------------------------------------------

  /// Visit each entry of row i as f(column, value). CSR rows may be jumbled
  /// (unsorted) unless ensure_sorted() was called.
  template <typename F>
  void for_each_in_row(Index i, F &&f) const {
    finish();
    if (fmt_ == Format::csr) {
      // One width dispatch per row, monomorphic inner loop.
      detail::dispatch_width(iw_, [&](auto tag) {
        using I = decltype(tag);
        auto rp = rowptr_.template as<I>();
        auto cx = colidx_.template as<I>();
        for (std::size_t p = rp[i]; p < rp[i + 1]; ++p) {
          f(static_cast<Index>(cx[p]), vals_[p]);
        }
      });
    } else if (fmt_ == Format::hypersparse) {
      detail::dispatch_width(iw_, [&](auto tag) {
        using I = decltype(tag);
        auto hr = hrows_.template as<I>();
        auto hp = hrowptr_.template as<I>();
        auto cx = colidx_.template as<I>();
        auto it = std::lower_bound(hr.begin(), hr.end(), static_cast<I>(i));
        if (it == hr.end() || *it != static_cast<I>(i)) return;
        auto h = static_cast<std::size_t>(it - hr.begin());
        for (std::size_t p = hp[h]; p < hp[h + 1]; ++p) {
          f(static_cast<Index>(cx[p]), vals_[p]);
        }
      });
    } else if (fmt_ == Format::bitmap) {
      auto base = static_cast<std::size_t>(i) * n_;
      for (Index j = 0; j < n_; ++j) {
        if (present_[base + j]) f(j, dense_[base + j]);
      }
    } else {
      auto base = static_cast<std::size_t>(i) * n_;
      for (Index j = 0; j < n_; ++j) f(j, dense_[base + j]);
    }
  }

  /// Visit every entry in row-major order as f(row, column, value).
  template <typename F>
  void for_each(F &&f) const {
    finish();
    if (fmt_ == Format::hypersparse) {
      // only the non-empty rows, without the binary search per row
      detail::dispatch_width(iw_, [&](auto tag) {
        using I = decltype(tag);
        auto hr = hrows_.template as<I>();
        auto hp = hrowptr_.template as<I>();
        auto cx = colidx_.template as<I>();
        for (std::size_t h = 0; h < hr.size(); ++h) {
          for (std::size_t p = hp[h]; p < hp[h + 1]; ++p) {
            f(static_cast<Index>(hr[h]), static_cast<Index>(cx[p]), vals_[p]);
          }
        }
      });
      return;
    }
    for (Index i = 0; i < m_; ++i) {
      for_each_in_row(i, [&](Index j, const T &x) { f(i, j, x); });
    }
  }

  [[nodiscard]] Index row_nvals(Index i) const {
    finish();
    if (fmt_ == Format::csr) return rowptr_[i + 1] - rowptr_[i];
    if (fmt_ == Format::hypersparse) {
      return detail::dispatch_width(iw_, [&](auto tag) -> Index {
        using I = decltype(tag);
        auto hr = hrows_.template as<I>();
        auto hp = hrowptr_.template as<I>();
        auto it = std::lower_bound(hr.begin(), hr.end(), static_cast<I>(i));
        if (it == hr.end() || *it != static_cast<I>(i)) return 0;
        auto h = static_cast<std::size_t>(it - hr.begin());
        return static_cast<Index>(hp[h + 1]) - static_cast<Index>(hp[h]);
      });
    }
    if (fmt_ == Format::full) return n_;
    Index c = 0;
    auto base = static_cast<std::size_t>(i) * n_;
    for (Index j = 0; j < n_; ++j) c += present_[base + j];
    return c;
  }

  // -- mask semantics -------------------------------------------------------------

  [[nodiscard]] bool mask_test(Index i, Index j, bool structural) const {
    auto v = get(i, j);
    if (!v) return false;
    return structural || *v != T(0);
  }

  // -- deferred work ----------------------------------------------------------------

  [[nodiscard]] bool jumbled() const noexcept { return jumbled_; }
  [[nodiscard]] bool has_pending() const noexcept { return !pend_i_.empty(); }

  /// Number of staged-but-unmerged mutations (pending tuples + zombies).
  /// The ingest writer polls this to decide when a flush boundary is due.
  [[nodiscard]] Index pending_count() const noexcept {
    return static_cast<Index>(pend_i_.size());
  }

  /// Merge pending tuples into the CSR structure. Logically const: the
  /// matrix's mathematical content does not change.
  void finish() const {
    if (pend_i_.empty()) return;
    assert_lazy_path_allowed("finish");
    auto &self = const_cast<Matrix &>(*this);
    self.merge_pending();
  }

  /// Sort every CSR row by column index if the matrix is jumbled.
  void ensure_sorted() const {
    finish();
    if (!jumbled_) return;
    assert_lazy_path_allowed("ensure_sorted");
    if (fmt_ == Format::hypersparse) to_csr();
    if (fmt_ != Format::csr) return;
    auto &self = const_cast<Matrix &>(*this);
    self.sort_rows();
    stats().row_sorts.fetch_add(1, std::memory_order_relaxed);
  }

  /// GrB_wait equivalent: complete all deferred work.
  void wait() const {
    finish();
    ensure_sorted();
  }

  /// Freeze for concurrent sharing (see the threading contract above).
  /// Drains every deferred path: pending tuples and zombies are merged,
  /// jumbled rows sorted, and hypersparse storage expanded to CSR (so the
  /// kernels' raw-access entry points never need a format write while the
  /// matrix is shared). After finalize() all const member functions are
  /// genuinely read-only; debug builds assert if a lazy path is ever
  /// reached. Any later non-const mutation clears the flag.
  void finalize() const {
    wait();
    if (fmt_ == Format::hypersparse) to_csr();
    // Snapshot-publish is where the memory win lands: with the deferred
    // work drained the entry count is final, so re-select the width and
    // compress u64 → u32 when the auto rule (or a forced override) allows.
    if (fmt_ == Format::csr) {
      refresh_width(static_cast<Index>(colidx_.size()));
      auto &self = const_cast<Matrix &>(*this);
      self.rowptr_.shrink_to_fit();
      self.colidx_.shrink_to_fit();
    }
    finalized_ = true;
    stats().finalize_calls.fetch_add(1, std::memory_order_relaxed);
  }

  /// Physical width of the index arrays (see grb/indexarray.hpp). Merges
  /// pending work first: staged mutations can change the selected width.
  [[nodiscard]] IndexWidth index_width() const {
    finish();
    return iw_;
  }

  /// Heap bytes the index arrays occupy at the current width — the
  /// numerator of the bytes-per-edge accounting (values excluded; their
  /// size is width-independent).
  [[nodiscard]] std::size_t index_bytes() const {
    finish();
    return rowptr_.byte_size() + colidx_.byte_size() + hrows_.byte_size() +
           hrowptr_.byte_size();
  }

  /// True while the matrix is frozen for concurrent readers.
  [[nodiscard]] bool is_finalized() const noexcept { return finalized_; }

  // -- format management ---------------------------------------------------------------

  void to_csr() const {
    finish();
    if (fmt_ == Format::csr) return;
    assert_lazy_path_allowed("to_csr");
    auto &self = const_cast<Matrix &>(*this);
    if (fmt_ == Format::hypersparse) {
      // expand the compressed row list into a full row-pointer array, at
      // the container's width (m_ and nvals both fit: iw_ covered them when
      // the hypersparse form was built)
      detail::dispatch_width(iw_, [&](auto tag) {
        using I = decltype(tag);
        auto hr = hrows_.template as<I>();
        auto hp = hrowptr_.template as<I>();
        std::vector<I> rp(static_cast<std::size_t>(m_) + 1, 0);
        for (std::size_t h = 0; h < hr.size(); ++h) {
          rp[static_cast<std::size_t>(hr[h]) + 1] = hp[h + 1] - hp[h];
        }
        for (Index i = 0; i < m_; ++i) {
          rp[i + 1] = static_cast<I>(rp[i + 1] + rp[i]);
        }
        self.rowptr_.adopt(std::move(rp));
      });
      self.hrows_.clear();
      self.hrows_.shrink_to_fit();
      self.hrowptr_.clear();
      self.hrowptr_.shrink_to_fit();
      self.fmt_ = Format::csr;
      stats().format_switches.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Bitmap/full → CSR. A bitmap can hold more entries than its
    // dimensions suggest (nvals up to m·n), so the width is re-selected
    // for the realized entry count before the index arrays are emitted.
    const Index nz = nvals();
    const IndexWidth want = detail::select_index_width(m_, n_, nz);
    if (want != self.iw_) self.iw_ = want;
    detail::dispatch_width(iw_, [&](auto tag) {
      using I = decltype(tag);
      std::vector<I> rp(static_cast<std::size_t>(m_) + 1, 0);
      std::vector<I> ci;
      std::vector<T> vx;
      ci.reserve(nz);
      vx.reserve(nz);
      for (Index i = 0; i < m_; ++i) {
        for_each_in_row(i, [&](Index j, const T &x) {
          ci.push_back(static_cast<I>(j));
          vx.push_back(x);
        });
        rp[i + 1] = static_cast<I>(ci.size());
      }
      self.rowptr_.adopt(std::move(rp));
      self.colidx_.adopt(std::move(ci));
      self.vals_ = std::move(vx);
    });
    self.present_.clear();
    self.present_.shrink_to_fit();
    self.dense_.clear();
    self.dense_.shrink_to_fit();
    self.bitmap_nvals_ = 0;
    self.jumbled_ = false;
    self.fmt_ = Format::csr;
    stats().format_switches.fetch_add(1, std::memory_order_relaxed);
  }

  void to_bitmap() const {
    finish();
    if (fmt_ == Format::bitmap) return;
    assert_lazy_path_allowed("to_bitmap");
    auto &self = const_cast<Matrix &>(*this);
    std::vector<std::uint8_t> pr(static_cast<std::size_t>(m_) * n_, 0);
    std::vector<T> dn(static_cast<std::size_t>(m_) * n_, T{});
    Index nz = 0;
    for_each([&](Index i, Index j, const T &x) {
      pr[static_cast<std::size_t>(i) * n_ + j] = 1;
      dn[static_cast<std::size_t>(i) * n_ + j] = x;
      ++nz;
    });
    self.rowptr_.clear();
    self.colidx_.clear();
    self.colidx_.shrink_to_fit();
    self.vals_.clear();
    self.vals_.shrink_to_fit();
    self.present_ = std::move(pr);
    self.dense_ = std::move(dn);
    self.bitmap_nvals_ = nz;
    self.jumbled_ = false;
    self.fmt_ = Format::bitmap;
    stats().format_switches.fetch_add(1, std::memory_order_relaxed);
  }

  /// Convert to the hypersparse format (Buluç & Gilbert [8] in the paper):
  /// only the non-empty rows carry a row pointer, so a matrix with m ≫
  /// nnz rows costs O(nnz) instead of O(m) — the format SuiteSparse pairs
  /// with CSR as its two primary sparse structures (§VI-A).
  void to_hypersparse() const {
    wait();  // hypersparse rows are kept sorted and merged
    if (fmt_ == Format::hypersparse) return;
    assert_lazy_path_allowed("to_hypersparse");
    to_csr();
    auto &self = const_cast<Matrix &>(*this);
    detail::dispatch_width(iw_, [&](auto tag) {
      using I = decltype(tag);
      auto rp = rowptr_.template as<I>();
      std::vector<I> hr;
      std::vector<I> hp;
      hp.push_back(0);
      for (Index i = 0; i < m_; ++i) {
        if (rp[i + 1] > rp[i]) {
          hr.push_back(static_cast<I>(i));
          hp.push_back(rp[i + 1]);
        }
      }
      self.hrows_.adopt(std::move(hr));
      self.hrowptr_.adopt(std::move(hp));
    });
    self.rowptr_.clear();
    self.rowptr_.shrink_to_fit();
    self.fmt_ = Format::hypersparse;
    stats().format_switches.fetch_add(1, std::memory_order_relaxed);
  }

  /// Number of non-empty rows (hypersparse row-list length).
  [[nodiscard]] Index nrows_nonempty() const {
    finish();
    if (fmt_ == Format::hypersparse) return static_cast<Index>(hrows_.size());
    Index c = 0;
    for (Index i = 0; i < m_; ++i) c += row_nvals(i) > 0 ? 1 : 0;
    return c;
  }

  // -- raw access for kernels -------------------------------------------------------------

  [[nodiscard]] IndexSpan rowptr() const {
    finish();
    // No silent hypersparse expansion: materializing the O(nrows) row
    // pointer is a planner decision, not a side effect of peeking at raw
    // storage. Callers convert explicitly first — grb::plan::prepare(a,
    // MatFormat::csr) — which also bumps Stats::format_conversions so the
    // blowup is visible in the counters.
    detail::require(fmt_ != Format::hypersparse, Info::invalid_value,
                    "rowptr: hypersparse matrix has no dense row pointer; "
                    "convert via grb::plan::prepare(a, MatFormat::csr)");
    return IndexSpan(rowptr_);
  }
  [[nodiscard]] IndexSpan colidx() const {
    finish();
    return IndexSpan(colidx_);
  }
  [[nodiscard]] std::span<const T> values() const {
    finish();
    return {vals_.data(), vals_.size()};
  }
  [[nodiscard]] const std::uint8_t *bitmap_present() const {
    return present_.data();
  }
  [[nodiscard]] const T *dense_values() const { return dense_.data(); }

  /// Adopt CSR storage built by a kernel. `jumbled` marks rows whose column
  /// order is unspecified (lazy sort). If lazy sort is disabled in Config the
  /// rows are sorted immediately.
  void adopt_csr(std::vector<Index> &&rowptr, std::vector<Index> &&colidx,
                 std::vector<T> &&values, bool jumbled = false) {
    detail::require(rowptr.size() == static_cast<std::size_t>(m_) + 1 &&
                        colidx.size() == values.size(),
                    Info::invalid_value, "adopt_csr: shape mismatch");
    clear();  // also drops the finalized flag: back to single-writer mode
    const Index nz = static_cast<Index>(colidx.size());
    iw_ = IndexWidth::u64;
    rowptr_.adopt(std::move(rowptr));
    colidx_.adopt(std::move(colidx));
    vals_ = std::move(values);
    // Kernel outputs stay u64 zero-copy in auto mode (width is re-picked at
    // finalize/publish); a forced width converts — or, for u32, throws —
    // here, so the conformance sweep's forced-u32 runs exercise the 32-bit
    // kernels on intermediates too.
    if (config().force_index_width != ForceIndexWidth::auto_select) {
      refresh_width(nz);
    }
    jumbled_ = jumbled;
    if (jumbled_ && !config().lazy_sort) {
      sort_rows();
      stats().eager_sorts.fetch_add(1, std::memory_order_relaxed);
    }
  }

  friend bool operator==(const Matrix &a, const Matrix &b) {
    if (a.m_ != b.m_ || a.n_ != b.n_ || a.nvals() != b.nvals()) return false;
    bool eq = true;
    a.for_each([&](Index i, Index j, const T &x) {
      auto y = b.get(i, j);
      if (!y || !(*y == x)) eq = false;
    });
    return eq;
  }

 private:
  void check_indices(Index i, Index j) const {
    detail::require(i < m_ && j < n_, Info::index_out_of_bounds,
                    "matrix index out of bounds");
  }

  /// Set the shared width of every index array without converting payloads
  /// (constructor / post-clear use only — arrays must be empty or about to
  /// be overwritten).
  void init_width(IndexWidth w) {
    iw_ = w;
    rowptr_ = detail::IndexArray(w);
    colidx_ = detail::IndexArray(w);
    hrows_ = detail::IndexArray(w);
    hrowptr_ = detail::IndexArray(w);
  }

  /// Re-select the storage width for the given entry count and convert all
  /// index arrays in place, bumping the transition counters. Throws
  /// Info::index_out_of_bounds when force_index_width=u32 cannot represent
  /// the container (the spec'd overflow guard). Logically const — the
  /// mathematical content is unchanged.
  void refresh_width(Index nvals) const {
    const IndexWidth want = detail::select_index_width(m_, n_, nvals);
    if (want == iw_) return;
    auto &self = const_cast<Matrix &>(*this);
    self.rowptr_.convert(want);
    self.colidx_.convert(want);
    self.hrows_.convert(want);
    self.hrowptr_.convert(want);
    self.iw_ = want;
    if (want == IndexWidth::u32) {
      stats().index_width_compressions.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats().index_width_promotions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Debug tripwire for the threading contract: a finalized matrix must never
  // reach a logically-const mutation (see the header comment).
  void assert_lazy_path_allowed([[maybe_unused]] const char *what) const {
    assert(!finalized_ &&
           "grb::Matrix: deferred mutation on a finalized matrix — the "
           "single-writer-or-finalized threading contract was violated");
  }

  void merge_pending() {
    stats().pending_flushes.fetch_add(1, std::memory_order_relaxed);
    std::vector<Index> pi;
    std::vector<Index> pj;
    std::vector<T> pv;
    std::vector<std::uint8_t> pd;
    pi.swap(pend_i_);
    pj.swap(pend_j_);
    pv.swap(pend_v_);
    pd.swap(pend_op_);
    // pending lists are detached, so these cannot re-enter merge_pending
    if (fmt_ == Format::hypersparse) to_csr();
    ensure_sorted();
    // Collect existing tuples, then pending ops in arrival order, and fold
    // each position's ops in that order: a set overwrites, a zombie buries
    // the entry, an accumulate adds into the running value (or inserts).
    // The stable sort below keys on (i, j) only, so within a position the
    // existing CSR entry comes first and pending ops keep arrival order —
    // exactly the sequential setElement/removeElement semantics.
    std::vector<Index> ri;
    std::vector<Index> rj;
    std::vector<T> rv;
    std::vector<std::uint8_t> rd;
    const std::size_t total = colidx_.size() + pi.size();
    ri.reserve(total);
    rj.reserve(total);
    rv.reserve(total);
    rd.reserve(total);
    for (Index i = 0; i < m_; ++i) {
      for (Index p = rowptr_[i]; p < rowptr_[i + 1]; ++p) {
        ri.push_back(i);
        rj.push_back(colidx_[p]);
        rv.push_back(vals_[p]);
        rd.push_back(kPendSet);
      }
    }
    ri.insert(ri.end(), pi.begin(), pi.end());
    rj.insert(rj.end(), pj.begin(), pj.end());
    rv.insert(rv.end(), pv.begin(), pv.end());
    rd.insert(rd.end(), pd.begin(), pd.end());
    std::vector<std::size_t> order(ri.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (ri[a] != ri[b]) return ri[a] < ri[b];
                       return rj[a] < rj[b];
                     });
    std::vector<Index> fi;
    std::vector<Index> fj;
    std::vector<T> fv;
    for (std::size_t q = 0; q < order.size();) {
      const Index gi = ri[order[q]];
      const Index gj = rj[order[q]];
      bool present = false;
      T val{};
      for (; q < order.size() && ri[order[q]] == gi && rj[order[q]] == gj;
           ++q) {
        const std::size_t p = order[q];
        switch (rd[p]) {
          case kPendDelete: present = false; break;
          case kPendAccum:
            val = present ? static_cast<T>(val + rv[p]) : rv[p];
            present = true;
            break;
          default:  // kPendSet
            val = rv[p];
            present = true;
            break;
        }
      }
      if (!present) continue;  // the zombie is buried here
      fi.push_back(gi);
      fj.push_back(gj);
      fv.push_back(val);
    }
    build(std::span<const Index>(fi), std::span<const Index>(fj),
          std::span<const T>(fv), Second{});
  }

  void sort_rows() {
    // Rows sort independently in place (disjoint CSR slices), so chunk them
    // by nnz — the row pointer is the work prefix (grb/parallel.hpp). One
    // width dispatch up front keeps the per-entry scan monomorphic.
    detail::dispatch_width(iw_, [&](auto tag) {
      using I = decltype(tag);
      auto rp = rowptr_.template as<I>();
      auto cx = colidx_.template as_mut<I>();
      const Index total = rp.empty() ? 0 : static_cast<Index>(rp[m_]);
      const int parts =
          (detail::effective_threads() > 1 && total >= detail::kParallelGrain)
              ? detail::effective_threads() * 4
              : 1;
      std::vector<Index> bounds = parts > 1
                                      ? detail::partition_rows_by_work(rp, parts)
                                      : detail::partition_even(m_, 1);
      detail::for_each_chunk(bounds, [&](int, Index rlo, Index rhi) {
        std::vector<std::pair<I, T>> row;
        for (Index i = rlo; i < rhi; ++i) {
          std::size_t lo = rp[i];
          std::size_t hi = rp[i + 1];
          if (hi - lo < 2) continue;
          bool sorted = true;
          for (std::size_t p = lo + 1; p < hi; ++p) {
            if (cx[p - 1] > cx[p]) {
              sorted = false;
              break;
            }
          }
          if (sorted) continue;
          row.clear();
          row.reserve(hi - lo);
          for (std::size_t p = lo; p < hi; ++p) {
            row.emplace_back(cx[p], vals_[p]);
          }
          std::sort(row.begin(), row.end(), [](const auto &a, const auto &b) {
            return a.first < b.first;
          });
          for (std::size_t p = lo; p < hi; ++p) {
            cx[p] = row[p - lo].first;
            vals_[p] = row[p - lo].second;
          }
        }
      });
    });
    jumbled_ = false;
  }

  Index m_;
  Index n_;
  mutable bool finalized_ = false;  // frozen for concurrent readers
  mutable Format fmt_ = Format::csr;
  // Storage width invariant: rowptr_/colidx_/hrows_/hrowptr_ always share
  // iw_. Pending-tuple staging stays u64 (it is transient and must accept
  // any Index); build() re-selects the width when the lists merge.
  mutable IndexWidth iw_ = IndexWidth::u64;
  mutable detail::IndexArray rowptr_;
  mutable detail::IndexArray colidx_;
  mutable std::vector<T> vals_;
  mutable bool jumbled_ = false;
  // pending ops (deferred set/accum_element + remove_element "zombies"),
  // coded with the kPend* constants
  mutable std::vector<Index> pend_i_;
  mutable std::vector<Index> pend_j_;
  mutable std::vector<T> pend_v_;
  mutable std::vector<std::uint8_t> pend_op_;
  // hypersparse storage (non-empty row ids + their row pointers)
  mutable detail::IndexArray hrows_;
  mutable detail::IndexArray hrowptr_;
  // bitmap / full storage
  mutable std::vector<std::uint8_t> present_;
  mutable std::vector<T> dense_;
  mutable Index bitmap_nvals_ = 0;
};

}  // namespace grb

// grb/matrix.hpp — sparse matrix with CSR, bitmap, and full formats.
//
// The CSR ("sparse") format is the workhorse, held by row as in
// SuiteSparse:GraphBLAS. Three pieces of deferred ("non-blocking mode")
// state reproduce the mechanisms the paper describes in §VI-A:
//   - pending tuples: set_element / accum_element append to an unsorted side
//     list instead of rewriting the CSR arrays; finish() merges them in one
//     pass, folding each position's ops in arrival order (set overwrites,
//     accum adds into the current value or inserts);
//   - zombies: remove_element marks the entry dead on a side list rather
//     than compacting the CSR arrays; finish() buries them in the same pass;
//   - lazy sort: kernels that naturally emit a row's entries out of column
//     order (saxpy-style mxm) may leave the matrix "jumbled"; the sort runs
//     only when some consumer actually needs sorted rows (dot products,
//     element-wise merges). If no consumer needs it, the sort never happens.
// The bitmap and full formats store an m×n dense layout; bitmap adds a
// byte-per-slot presence array. They serve dense-ish intermediates such as
// the ns×n frontier matrices in betweenness centrality.
//
// Threading contract ("single writer OR finalized"):
//   The deferred-work machinery above is *logically* const — finish(),
//   ensure_sorted(), and the to_*() format switches mutate internal state
//   behind const methods. That is undefined behavior if two threads touch
//   the same matrix concurrently, even if both only "read". A matrix may
//   therefore be used from exactly one thread at a time, UNLESS it has been
//   finalized: finalize() drains every deferred path (pending tuples,
//   zombies, lazy sort, hypersparse row list) up front, after which all
//   const member functions are genuinely read-only and any number of
//   threads may share the matrix. In debug builds the lazy paths assert
//   that they are never reached on a finalized matrix; any non-const
//   mutation (set_element, build, clear, adopt_csr, ...) returns the
//   matrix to single-writer mode by clearing the finalized flag.
//   lagraph::service::GraphSnapshot is the intended consumer: it finalizes
//   a graph's containers once, then serves it to a worker pool.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <numeric>
#include <optional>
#include <span>
#include <vector>

#include "grb/config.hpp"
#include "grb/ops.hpp"
#include "grb/parallel.hpp"
#include "grb/trace.hpp"
#include "grb/types.hpp"

namespace grb {

template <typename T>
class Matrix {
 public:
  using value_type = T;

  enum class Format : std::uint8_t { csr, hypersparse, bitmap, full };

  /// Pending-op codes for stage_tuples (the batched mutation entry point).
  static constexpr std::uint8_t kPendSet = 0;     // insert-or-overwrite
  static constexpr std::uint8_t kPendDelete = 1;  // zombie (remove if present)
  static constexpr std::uint8_t kPendAccum = 2;   // add into value, or insert

  Matrix() : m_(0), n_(0) { rowptr_.assign(1, 0); }

  /// An empty m×n matrix in CSR format.
  Matrix(Index m, Index n) : m_(m), n_(n) {
    rowptr_.assign(static_cast<std::size_t>(m) + 1, 0);
  }

  /// An m×n matrix with every entry present and equal to `fill` ("full").
  static Matrix full_matrix(Index m, Index n, const T &fill) {
    Matrix a(m, n);
    a.fmt_ = Format::full;
    a.rowptr_.clear();
    a.dense_.assign(static_cast<std::size_t>(m) * n, fill);
    return a;
  }

  [[nodiscard]] Index nrows() const noexcept { return m_; }
  [[nodiscard]] Index ncols() const noexcept { return n_; }
  [[nodiscard]] Format format() const noexcept { return fmt_; }

  [[nodiscard]] Index nvals() const {
    finish();
    switch (fmt_) {
      case Format::csr:
      case Format::hypersparse: return static_cast<Index>(colidx_.size());
      case Format::bitmap: return bitmap_nvals_;
      case Format::full: return m_ * n_;
    }
    return 0;
  }

  void clear() {
    finalized_ = false;
    rowptr_.assign(static_cast<std::size_t>(m_) + 1, 0);
    colidx_.clear();
    vals_.clear();
    present_.clear();
    dense_.clear();
    pend_i_.clear();
    pend_j_.clear();
    pend_v_.clear();
    pend_op_.clear();
    hrows_.clear();
    hrowptr_.clear();
    bitmap_nvals_ = 0;
    jumbled_ = false;
    fmt_ = Format::csr;
  }

  // -- element access ---------------------------------------------------------

  /// C(i,j) = x. In CSR format the update lands on the pending-tuple list;
  /// it is merged on the next finish(). Later writes win over earlier ones.
  void set_element(Index i, Index j, const T &x) {
    check_indices(i, j);
    finalized_ = false;
    if (fmt_ == Format::hypersparse) to_csr();
    if (fmt_ != Format::csr) {
      auto p = static_cast<std::size_t>(i) * n_ + j;
      if (fmt_ == Format::bitmap && !present_[p]) {
        present_[p] = 1;
        ++bitmap_nvals_;
      }
      dense_[p] = x;
      return;
    }
    pend_i_.push_back(i);
    pend_j_.push_back(j);
    pend_v_.push_back(x);
    pend_op_.push_back(kPendSet);
  }

  /// C(i,j) = C(i,j) + x if the entry exists, else C(i,j) = x — the deferred
  /// "upsert" the ingest write path uses (GrB_setElement with a plus
  /// accumulator). Rides the same pending-tuple list as set_element, so a
  /// stream of accumulates costs one merge at the next flush boundary, not a
  /// CSR rewrite per call.
  void accum_element(Index i, Index j, const T &x) {
    check_indices(i, j);
    finalized_ = false;
    if (fmt_ == Format::hypersparse) to_csr();
    if (fmt_ != Format::csr) {
      auto p = static_cast<std::size_t>(i) * n_ + j;
      if (fmt_ == Format::bitmap && !present_[p]) {
        present_[p] = 1;
        ++bitmap_nvals_;
        dense_[p] = x;
      } else {
        dense_[p] = static_cast<T>(dense_[p] + x);
      }
      return;
    }
    pend_i_.push_back(i);
    pend_j_.push_back(j);
    pend_v_.push_back(x);
    pend_op_.push_back(kPendAccum);
  }

  /// Delete the entry at (i,j) if present. In CSR format this creates a
  /// "zombie": the deletion is recorded on a side list and applied on the
  /// next finish(), so no CSR compaction happens per call.
  void remove_element(Index i, Index j) {
    check_indices(i, j);
    finalized_ = false;
    if (fmt_ == Format::hypersparse) to_csr();
    if (fmt_ != Format::csr) {
      auto p = static_cast<std::size_t>(i) * n_ + j;
      if (fmt_ == Format::bitmap && present_[p]) {
        present_[p] = 0;
        --bitmap_nvals_;
      } else if (fmt_ == Format::full) {
        // A full matrix has no "missing" state: demote to bitmap first.
        to_bitmap();
        remove_element(i, j);
      }
      return;
    }
    pend_i_.push_back(i);
    pend_j_.push_back(j);
    pend_v_.push_back(T{});
    pend_op_.push_back(kPendDelete);
  }

  /// Batched non-blocking mutation: append `ops[p]`-coded updates (one of
  /// the kPend* codes) for positions (rows[p], cols[p]) to the pending list
  /// in one call — the ingest write path's entry point, amortizing the
  /// per-element virtual bookkeeping over a whole edge batch. Out-of-range
  /// indices throw before anything is staged. Deletes and accumulates obey
  /// exactly the set_element / remove_element / accum_element semantics at
  /// the next flush boundary.
  void stage_tuples(std::span<const Index> rows, std::span<const Index> cols,
                    std::span<const T> values,
                    std::span<const std::uint8_t> ops) {
    detail::require(rows.size() == cols.size() &&
                        rows.size() == values.size() &&
                        rows.size() == ops.size(),
                    Info::invalid_value, "stage_tuples: array length mismatch");
    for (std::size_t p = 0; p < rows.size(); ++p) {
      detail::require(rows[p] < m_ && cols[p] < n_,
                      Info::index_out_of_bounds,
                      "stage_tuples: index out of bounds");
      detail::require(ops[p] <= kPendAccum, Info::invalid_value,
                      "stage_tuples: unknown op code");
    }
    finalized_ = false;
    if (fmt_ == Format::hypersparse) to_csr();
    if (fmt_ != Format::csr) {
      for (std::size_t p = 0; p < rows.size(); ++p) {
        switch (ops[p]) {
          case kPendSet: set_element(rows[p], cols[p], values[p]); break;
          case kPendDelete: remove_element(rows[p], cols[p]); break;
          default: accum_element(rows[p], cols[p], values[p]); break;
        }
      }
      return;
    }
    pend_i_.insert(pend_i_.end(), rows.begin(), rows.end());
    pend_j_.insert(pend_j_.end(), cols.begin(), cols.end());
    pend_v_.insert(pend_v_.end(), values.begin(), values.end());
    pend_op_.insert(pend_op_.end(), ops.begin(), ops.end());
  }

  [[nodiscard]] std::optional<T> get(Index i, Index j) const {
    check_indices(i, j);
    finish();
    if (fmt_ == Format::full) {
      return dense_[static_cast<std::size_t>(i) * n_ + j];
    }
    if (fmt_ == Format::bitmap) {
      auto p = static_cast<std::size_t>(i) * n_ + j;
      if (!present_[p]) return std::nullopt;
      return dense_[p];
    }
    if (fmt_ == Format::hypersparse) {
      ensure_sorted();
      auto it = std::lower_bound(hrows_.begin(), hrows_.end(), i);
      if (it == hrows_.end() || *it != i) return std::nullopt;
      auto h = static_cast<std::size_t>(it - hrows_.begin());
      auto lo = colidx_.begin() + static_cast<std::ptrdiff_t>(hrowptr_[h]);
      auto hi = colidx_.begin() + static_cast<std::ptrdiff_t>(hrowptr_[h + 1]);
      auto jt = std::lower_bound(lo, hi, j);
      if (jt == hi || *jt != j) return std::nullopt;
      return vals_[static_cast<std::size_t>(jt - colidx_.begin())];
    }
    ensure_sorted();
    auto lo = colidx_.begin() + static_cast<std::ptrdiff_t>(rowptr_[i]);
    auto hi = colidx_.begin() + static_cast<std::ptrdiff_t>(rowptr_[i + 1]);
    auto it = std::lower_bound(lo, hi, j);
    if (it == hi || *it != j) return std::nullopt;
    return vals_[static_cast<std::size_t>(it - colidx_.begin())];
  }

  [[nodiscard]] bool has(Index i, Index j) const { return get(i, j).has_value(); }

  // -- build / extractTuples ----------------------------------------------------

  /// C ↤ {i, j, x}: build from tuples, combining duplicates with `dup`.
  template <typename Dup = Plus>
  void build(std::span<const Index> rows, std::span<const Index> cols,
             std::span<const T> values, Dup dup = {}) {
    detail::require(rows.size() == cols.size() && rows.size() == values.size(),
                    Info::invalid_value, "build: array length mismatch");
    trace::ScopedSpan sp(trace::SpanKind::build);
    sp.set_in_nvals(rows.size());
    clear();  // also drops the finalized flag: back to single-writer mode
    const std::size_t nz = rows.size();
    // Counting sort by row, then per-row stable sort by column. The parallel
    // form (grb/parallel.hpp) mirrors the transpose bucket sort: per-chunk
    // row counts, prefix offsets giving each (chunk, row) pair a disjoint
    // slice, then a scatter — chunk order preserves ascending tuple position
    // within a row, and the stable column sort preserves it within equal
    // columns, so duplicate combining happens in exactly the serial order.
    int nthreads = detail::effective_threads();
    if (nz < detail::kParallelGrain ||
        static_cast<std::size_t>(nthreads) *
                (static_cast<std::size_t>(m_) + 1) >
            4 * nz + 1024) {
      nthreads = 1;
    }
    sp.set_threads(nthreads);
    std::vector<Index> count(static_cast<std::size_t>(m_) + 1, 0);
    std::vector<std::size_t> order(nz);
    if (nthreads <= 1) {
      for (std::size_t p = 0; p < nz; ++p) {
        detail::require(rows[p] < m_ && cols[p] < n_, Info::index_out_of_bounds,
                        "build: tuple out of bounds");
        ++count[rows[p] + 1];
      }
      std::partial_sum(count.begin(), count.end(), count.begin());
      std::vector<Index> next(count.begin(), count.end() - 1);
      for (std::size_t p = 0; p < nz; ++p) order[next[rows[p]]++] = p;
    } else {
      auto pbounds =
          detail::partition_even(static_cast<Index>(nz), nthreads);
      const int nchunks = static_cast<int>(pbounds.size()) - 1;
      std::vector<std::vector<Index>> ccount(
          static_cast<std::size_t>(nchunks),
          std::vector<Index>(static_cast<std::size_t>(m_), 0));
      // No exception may escape an OpenMP region: record bad tuples per
      // chunk and throw after the join.
      std::vector<std::uint8_t> bad(static_cast<std::size_t>(nchunks), 0);
      detail::for_each_chunk(pbounds, [&](int c, Index lo, Index hi) {
        auto &cnt = ccount[c];
        for (Index p = lo; p < hi; ++p) {
          if (rows[p] >= m_ || cols[p] >= n_) {
            bad[c] = 1;
            continue;
          }
          ++cnt[rows[p]];
        }
      });
      for (std::uint8_t b : bad) {
        detail::require(!b, Info::index_out_of_bounds,
                        "build: tuple out of bounds");
      }
      for (Index i = 0; i < m_; ++i) {
        Index total = 0;
        for (int c = 0; c < nchunks; ++c) total += ccount[c][i];
        count[i + 1] = count[i] + total;
      }
      std::vector<std::vector<Index>> off(static_cast<std::size_t>(nchunks));
      for (int c = 0; c < nchunks; ++c) {
        off[c].resize(static_cast<std::size_t>(m_));
      }
      detail::for_each_chunk(detail::partition_even(m_, nchunks),
                             [&](int, Index lo, Index hi) {
                               for (Index i = lo; i < hi; ++i) {
                                 Index at = count[i];
                                 for (int c = 0; c < nchunks; ++c) {
                                   off[c][i] = at;
                                   at += ccount[c][i];
                                 }
                               }
                             });
      detail::for_each_chunk(pbounds, [&](int c, Index lo, Index hi) {
        auto &nx = off[c];
        for (Index p = lo; p < hi; ++p) {
          order[nx[rows[p]]++] = static_cast<std::size_t>(p);
        }
      });
    }
    {
      // Per-row column sorts are independent; chunk rows by their tuple
      // count so one dense row doesn't serialize the pass.
      std::vector<Index> rbounds =
          nthreads > 1
              ? detail::partition_rows_by_work(std::span<const Index>(count),
                                               nthreads * 4)
              : detail::partition_even(m_, 1);
      detail::for_each_chunk(rbounds, [&](int, Index rlo, Index rhi) {
        for (Index i = rlo; i < rhi; ++i) {
          auto lo = order.begin() + static_cast<std::ptrdiff_t>(count[i]);
          auto hi = order.begin() + static_cast<std::ptrdiff_t>(count[i + 1]);
          std::stable_sort(lo, hi, [&](std::size_t a, std::size_t b) {
            return cols[a] < cols[b];
          });
        }
      });
    }
    rowptr_.assign(static_cast<std::size_t>(m_) + 1, 0);
    colidx_.reserve(nz);
    vals_.reserve(nz);
    Index row = 0;
    for (std::size_t q = 0; q < nz; ++q) {
      std::size_t p = order[q];
      while (row < rows[p]) rowptr_[++row] = static_cast<Index>(colidx_.size());
      if (!colidx_.empty() &&
          static_cast<Index>(colidx_.size()) > rowptr_[row] &&
          colidx_.back() == cols[p]) {
        vals_.back() = dup(vals_.back(), values[p]);
      } else {
        colidx_.push_back(cols[p]);
        vals_.push_back(values[p]);
      }
    }
    while (row < m_) rowptr_[++row] = static_cast<Index>(colidx_.size());
    jumbled_ = false;
    sp.set_out_nvals(colidx_.size());
  }

  /// {i, j, x} ↤ C, in row-major (and within-row ascending column) order.
  void extract_tuples(std::vector<Index> &rows, std::vector<Index> &cols,
                      std::vector<T> &values) const {
    finish();
    ensure_sorted();
    rows.clear();
    cols.clear();
    values.clear();
    rows.reserve(nvals());
    cols.reserve(nvals());
    values.reserve(nvals());
    for_each([&](Index i, Index j, const T &x) {
      rows.push_back(i);
      cols.push_back(j);
      values.push_back(x);
    });
  }

  // -- iteration ----------------------------------------------------------------

  /// Visit each entry of row i as f(column, value). CSR rows may be jumbled
  /// (unsorted) unless ensure_sorted() was called.
  template <typename F>
  void for_each_in_row(Index i, F &&f) const {
    finish();
    if (fmt_ == Format::csr) {
      for (Index p = rowptr_[i]; p < rowptr_[i + 1]; ++p) f(colidx_[p], vals_[p]);
    } else if (fmt_ == Format::hypersparse) {
      auto it = std::lower_bound(hrows_.begin(), hrows_.end(), i);
      if (it == hrows_.end() || *it != i) return;
      auto h = static_cast<std::size_t>(it - hrows_.begin());
      for (Index p = hrowptr_[h]; p < hrowptr_[h + 1]; ++p) {
        f(colidx_[p], vals_[p]);
      }
    } else if (fmt_ == Format::bitmap) {
      auto base = static_cast<std::size_t>(i) * n_;
      for (Index j = 0; j < n_; ++j) {
        if (present_[base + j]) f(j, dense_[base + j]);
      }
    } else {
      auto base = static_cast<std::size_t>(i) * n_;
      for (Index j = 0; j < n_; ++j) f(j, dense_[base + j]);
    }
  }

  /// Visit every entry in row-major order as f(row, column, value).
  template <typename F>
  void for_each(F &&f) const {
    finish();
    if (fmt_ == Format::hypersparse) {
      // only the non-empty rows, without the binary search per row
      for (std::size_t h = 0; h < hrows_.size(); ++h) {
        for (Index p = hrowptr_[h]; p < hrowptr_[h + 1]; ++p) {
          f(hrows_[h], colidx_[p], vals_[p]);
        }
      }
      return;
    }
    for (Index i = 0; i < m_; ++i) {
      for_each_in_row(i, [&](Index j, const T &x) { f(i, j, x); });
    }
  }

  [[nodiscard]] Index row_nvals(Index i) const {
    finish();
    if (fmt_ == Format::csr) return rowptr_[i + 1] - rowptr_[i];
    if (fmt_ == Format::hypersparse) {
      auto it = std::lower_bound(hrows_.begin(), hrows_.end(), i);
      if (it == hrows_.end() || *it != i) return 0;
      auto h = static_cast<std::size_t>(it - hrows_.begin());
      return hrowptr_[h + 1] - hrowptr_[h];
    }
    if (fmt_ == Format::full) return n_;
    Index c = 0;
    auto base = static_cast<std::size_t>(i) * n_;
    for (Index j = 0; j < n_; ++j) c += present_[base + j];
    return c;
  }

  // -- mask semantics -------------------------------------------------------------

  [[nodiscard]] bool mask_test(Index i, Index j, bool structural) const {
    auto v = get(i, j);
    if (!v) return false;
    return structural || *v != T(0);
  }

  // -- deferred work ----------------------------------------------------------------

  [[nodiscard]] bool jumbled() const noexcept { return jumbled_; }
  [[nodiscard]] bool has_pending() const noexcept { return !pend_i_.empty(); }

  /// Number of staged-but-unmerged mutations (pending tuples + zombies).
  /// The ingest writer polls this to decide when a flush boundary is due.
  [[nodiscard]] Index pending_count() const noexcept {
    return static_cast<Index>(pend_i_.size());
  }

  /// Merge pending tuples into the CSR structure. Logically const: the
  /// matrix's mathematical content does not change.
  void finish() const {
    if (pend_i_.empty()) return;
    assert_lazy_path_allowed("finish");
    auto &self = const_cast<Matrix &>(*this);
    self.merge_pending();
  }

  /// Sort every CSR row by column index if the matrix is jumbled.
  void ensure_sorted() const {
    finish();
    if (!jumbled_) return;
    assert_lazy_path_allowed("ensure_sorted");
    if (fmt_ == Format::hypersparse) to_csr();
    if (fmt_ != Format::csr) return;
    auto &self = const_cast<Matrix &>(*this);
    self.sort_rows();
    stats().row_sorts.fetch_add(1, std::memory_order_relaxed);
  }

  /// GrB_wait equivalent: complete all deferred work.
  void wait() const {
    finish();
    ensure_sorted();
  }

  /// Freeze for concurrent sharing (see the threading contract above).
  /// Drains every deferred path: pending tuples and zombies are merged,
  /// jumbled rows sorted, and hypersparse storage expanded to CSR (so the
  /// kernels' raw-access entry points never need a format write while the
  /// matrix is shared). After finalize() all const member functions are
  /// genuinely read-only; debug builds assert if a lazy path is ever
  /// reached. Any later non-const mutation clears the flag.
  void finalize() const {
    wait();
    if (fmt_ == Format::hypersparse) to_csr();
    finalized_ = true;
    stats().finalize_calls.fetch_add(1, std::memory_order_relaxed);
  }

  /// True while the matrix is frozen for concurrent readers.
  [[nodiscard]] bool is_finalized() const noexcept { return finalized_; }

  // -- format management ---------------------------------------------------------------

  void to_csr() const {
    finish();
    if (fmt_ == Format::csr) return;
    assert_lazy_path_allowed("to_csr");
    auto &self = const_cast<Matrix &>(*this);
    if (fmt_ == Format::hypersparse) {
      // expand the compressed row list into a full row-pointer array
      std::vector<Index> rp(static_cast<std::size_t>(m_) + 1, 0);
      for (std::size_t h = 0; h < hrows_.size(); ++h) {
        rp[hrows_[h] + 1] = hrowptr_[h + 1] - hrowptr_[h];
      }
      for (Index i = 0; i < m_; ++i) rp[i + 1] += rp[i];
      self.rowptr_ = std::move(rp);
      self.hrows_.clear();
      self.hrows_.shrink_to_fit();
      self.hrowptr_.clear();
      self.hrowptr_.shrink_to_fit();
      self.fmt_ = Format::csr;
      stats().format_switches.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::vector<Index> rp(static_cast<std::size_t>(m_) + 1, 0);
    std::vector<Index> ci;
    std::vector<T> vx;
    ci.reserve(nvals());
    vx.reserve(nvals());
    for (Index i = 0; i < m_; ++i) {
      for_each_in_row(i, [&](Index j, const T &x) {
        ci.push_back(j);
        vx.push_back(x);
      });
      rp[i + 1] = static_cast<Index>(ci.size());
    }
    self.present_.clear();
    self.present_.shrink_to_fit();
    self.dense_.clear();
    self.dense_.shrink_to_fit();
    self.rowptr_ = std::move(rp);
    self.colidx_ = std::move(ci);
    self.vals_ = std::move(vx);
    self.bitmap_nvals_ = 0;
    self.jumbled_ = false;
    self.fmt_ = Format::csr;
    stats().format_switches.fetch_add(1, std::memory_order_relaxed);
  }

  void to_bitmap() const {
    finish();
    if (fmt_ == Format::bitmap) return;
    assert_lazy_path_allowed("to_bitmap");
    auto &self = const_cast<Matrix &>(*this);
    std::vector<std::uint8_t> pr(static_cast<std::size_t>(m_) * n_, 0);
    std::vector<T> dn(static_cast<std::size_t>(m_) * n_, T{});
    Index nz = 0;
    for_each([&](Index i, Index j, const T &x) {
      pr[static_cast<std::size_t>(i) * n_ + j] = 1;
      dn[static_cast<std::size_t>(i) * n_ + j] = x;
      ++nz;
    });
    self.rowptr_.clear();
    self.colidx_.clear();
    self.colidx_.shrink_to_fit();
    self.vals_.clear();
    self.vals_.shrink_to_fit();
    self.present_ = std::move(pr);
    self.dense_ = std::move(dn);
    self.bitmap_nvals_ = nz;
    self.jumbled_ = false;
    self.fmt_ = Format::bitmap;
    stats().format_switches.fetch_add(1, std::memory_order_relaxed);
  }

  /// Convert to the hypersparse format (Buluç & Gilbert [8] in the paper):
  /// only the non-empty rows carry a row pointer, so a matrix with m ≫
  /// nnz rows costs O(nnz) instead of O(m) — the format SuiteSparse pairs
  /// with CSR as its two primary sparse structures (§VI-A).
  void to_hypersparse() const {
    wait();  // hypersparse rows are kept sorted and merged
    if (fmt_ == Format::hypersparse) return;
    assert_lazy_path_allowed("to_hypersparse");
    to_csr();
    auto &self = const_cast<Matrix &>(*this);
    std::vector<Index> hr;
    std::vector<Index> hp;
    hp.push_back(0);
    for (Index i = 0; i < m_; ++i) {
      if (rowptr_[i + 1] > rowptr_[i]) {
        hr.push_back(i);
        hp.push_back(rowptr_[i + 1]);
      }
    }
    self.hrows_ = std::move(hr);
    self.hrowptr_ = std::move(hp);
    self.rowptr_.clear();
    self.rowptr_.shrink_to_fit();
    self.fmt_ = Format::hypersparse;
    stats().format_switches.fetch_add(1, std::memory_order_relaxed);
  }

  /// Number of non-empty rows (hypersparse row-list length).
  [[nodiscard]] Index nrows_nonempty() const {
    finish();
    if (fmt_ == Format::hypersparse) return static_cast<Index>(hrows_.size());
    Index c = 0;
    for (Index i = 0; i < m_; ++i) c += row_nvals(i) > 0 ? 1 : 0;
    return c;
  }

  // -- raw access for kernels -------------------------------------------------------------

  [[nodiscard]] std::span<const Index> rowptr() const {
    finish();
    // No silent hypersparse expansion: materializing the O(nrows) row
    // pointer is a planner decision, not a side effect of peeking at raw
    // storage. Callers convert explicitly first — grb::plan::prepare(a,
    // MatFormat::csr) — which also bumps Stats::format_conversions so the
    // blowup is visible in the counters.
    detail::require(fmt_ != Format::hypersparse, Info::invalid_value,
                    "rowptr: hypersparse matrix has no dense row pointer; "
                    "convert via grb::plan::prepare(a, MatFormat::csr)");
    return {rowptr_.data(), rowptr_.size()};
  }
  [[nodiscard]] std::span<const Index> colidx() const {
    finish();
    return {colidx_.data(), colidx_.size()};
  }
  [[nodiscard]] std::span<const T> values() const {
    finish();
    return {vals_.data(), vals_.size()};
  }
  [[nodiscard]] const std::uint8_t *bitmap_present() const {
    return present_.data();
  }
  [[nodiscard]] const T *dense_values() const { return dense_.data(); }

  /// Adopt CSR storage built by a kernel. `jumbled` marks rows whose column
  /// order is unspecified (lazy sort). If lazy sort is disabled in Config the
  /// rows are sorted immediately.
  void adopt_csr(std::vector<Index> &&rowptr, std::vector<Index> &&colidx,
                 std::vector<T> &&values, bool jumbled = false) {
    detail::require(rowptr.size() == static_cast<std::size_t>(m_) + 1 &&
                        colidx.size() == values.size(),
                    Info::invalid_value, "adopt_csr: shape mismatch");
    clear();  // also drops the finalized flag: back to single-writer mode
    rowptr_ = std::move(rowptr);
    colidx_ = std::move(colidx);
    vals_ = std::move(values);
    jumbled_ = jumbled;
    if (jumbled_ && !config().lazy_sort) {
      sort_rows();
      stats().eager_sorts.fetch_add(1, std::memory_order_relaxed);
    }
  }

  friend bool operator==(const Matrix &a, const Matrix &b) {
    if (a.m_ != b.m_ || a.n_ != b.n_ || a.nvals() != b.nvals()) return false;
    bool eq = true;
    a.for_each([&](Index i, Index j, const T &x) {
      auto y = b.get(i, j);
      if (!y || !(*y == x)) eq = false;
    });
    return eq;
  }

 private:
  void check_indices(Index i, Index j) const {
    detail::require(i < m_ && j < n_, Info::index_out_of_bounds,
                    "matrix index out of bounds");
  }

  // Debug tripwire for the threading contract: a finalized matrix must never
  // reach a logically-const mutation (see the header comment).
  void assert_lazy_path_allowed([[maybe_unused]] const char *what) const {
    assert(!finalized_ &&
           "grb::Matrix: deferred mutation on a finalized matrix — the "
           "single-writer-or-finalized threading contract was violated");
  }

  void merge_pending() {
    stats().pending_flushes.fetch_add(1, std::memory_order_relaxed);
    std::vector<Index> pi;
    std::vector<Index> pj;
    std::vector<T> pv;
    std::vector<std::uint8_t> pd;
    pi.swap(pend_i_);
    pj.swap(pend_j_);
    pv.swap(pend_v_);
    pd.swap(pend_op_);
    // pending lists are detached, so these cannot re-enter merge_pending
    if (fmt_ == Format::hypersparse) to_csr();
    ensure_sorted();
    // Collect existing tuples, then pending ops in arrival order, and fold
    // each position's ops in that order: a set overwrites, a zombie buries
    // the entry, an accumulate adds into the running value (or inserts).
    // The stable sort below keys on (i, j) only, so within a position the
    // existing CSR entry comes first and pending ops keep arrival order —
    // exactly the sequential setElement/removeElement semantics.
    std::vector<Index> ri;
    std::vector<Index> rj;
    std::vector<T> rv;
    std::vector<std::uint8_t> rd;
    const std::size_t total = colidx_.size() + pi.size();
    ri.reserve(total);
    rj.reserve(total);
    rv.reserve(total);
    rd.reserve(total);
    for (Index i = 0; i < m_; ++i) {
      for (Index p = rowptr_[i]; p < rowptr_[i + 1]; ++p) {
        ri.push_back(i);
        rj.push_back(colidx_[p]);
        rv.push_back(vals_[p]);
        rd.push_back(kPendSet);
      }
    }
    ri.insert(ri.end(), pi.begin(), pi.end());
    rj.insert(rj.end(), pj.begin(), pj.end());
    rv.insert(rv.end(), pv.begin(), pv.end());
    rd.insert(rd.end(), pd.begin(), pd.end());
    std::vector<std::size_t> order(ri.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (ri[a] != ri[b]) return ri[a] < ri[b];
                       return rj[a] < rj[b];
                     });
    std::vector<Index> fi;
    std::vector<Index> fj;
    std::vector<T> fv;
    for (std::size_t q = 0; q < order.size();) {
      const Index gi = ri[order[q]];
      const Index gj = rj[order[q]];
      bool present = false;
      T val{};
      for (; q < order.size() && ri[order[q]] == gi && rj[order[q]] == gj;
           ++q) {
        const std::size_t p = order[q];
        switch (rd[p]) {
          case kPendDelete: present = false; break;
          case kPendAccum:
            val = present ? static_cast<T>(val + rv[p]) : rv[p];
            present = true;
            break;
          default:  // kPendSet
            val = rv[p];
            present = true;
            break;
        }
      }
      if (!present) continue;  // the zombie is buried here
      fi.push_back(gi);
      fj.push_back(gj);
      fv.push_back(val);
    }
    build(std::span<const Index>(fi), std::span<const Index>(fj),
          std::span<const T>(fv), Second{});
  }

  void sort_rows() {
    // Rows sort independently in place (disjoint CSR slices), so chunk them
    // by nnz — the row pointer is the work prefix (grb/parallel.hpp).
    const Index total = rowptr_.empty() ? 0 : rowptr_[m_];
    const int parts =
        (detail::effective_threads() > 1 && total >= detail::kParallelGrain)
            ? detail::effective_threads() * 4
            : 1;
    std::vector<Index> bounds =
        parts > 1 ? detail::partition_rows_by_work(
                        std::span<const Index>(rowptr_), parts)
                  : detail::partition_even(m_, 1);
    detail::for_each_chunk(bounds, [&](int, Index rlo, Index rhi) {
      std::vector<std::pair<Index, T>> row;
      for (Index i = rlo; i < rhi; ++i) {
        Index lo = rowptr_[i];
        Index hi = rowptr_[i + 1];
        if (hi - lo < 2) continue;
        bool sorted = true;
        for (Index p = lo + 1; p < hi; ++p) {
          if (colidx_[p - 1] > colidx_[p]) {
            sorted = false;
            break;
          }
        }
        if (sorted) continue;
        row.clear();
        row.reserve(hi - lo);
        for (Index p = lo; p < hi; ++p) row.emplace_back(colidx_[p], vals_[p]);
        std::sort(row.begin(), row.end(), [](const auto &a, const auto &b) {
          return a.first < b.first;
        });
        for (Index p = lo; p < hi; ++p) {
          colidx_[p] = row[p - lo].first;
          vals_[p] = row[p - lo].second;
        }
      }
    });
    jumbled_ = false;
  }

  Index m_;
  Index n_;
  mutable bool finalized_ = false;  // frozen for concurrent readers
  mutable Format fmt_ = Format::csr;
  mutable std::vector<Index> rowptr_;
  mutable std::vector<Index> colidx_;
  mutable std::vector<T> vals_;
  mutable bool jumbled_ = false;
  // pending ops (deferred set/accum_element + remove_element "zombies"),
  // coded with the kPend* constants
  mutable std::vector<Index> pend_i_;
  mutable std::vector<Index> pend_j_;
  mutable std::vector<T> pend_v_;
  mutable std::vector<std::uint8_t> pend_op_;
  // hypersparse storage (non-empty row ids + their row pointers)
  mutable std::vector<Index> hrows_;
  mutable std::vector<Index> hrowptr_;
  // bitmap / full storage
  mutable std::vector<std::uint8_t> present_;
  mutable std::vector<T> dense_;
  mutable Index bitmap_nvals_ = 0;
};

}  // namespace grb

// grb/semiring.hpp — monoids and semirings (paper Table II).
//
// A Monoid is a binary operator with an identity and, optionally, a terminal
// ("annihilator") value that permits early exit: once a reduction reaches the
// terminal, no further input can change the result. The `any` monoid is all
// terminal: it keeps the first value it sees and stops. This is the
// sequential analogue of the benign race the paper describes for the GAP BFS
// (any valid parent is acceptable).
//
// A Semiring pairs an additive monoid ⊕ with a multiplicative binary op ⊗
// (which may be positional, see ops.hpp).
#pragma once

#include <limits>
#include <type_traits>

#include "grb/ops.hpp"
#include "grb/types.hpp"

namespace grb {

// ---------------------------------------------------------------------------
// Monoids
// ---------------------------------------------------------------------------

template <typename Op, typename T>
struct Monoid {
  using value_type = T;
  using op_type = Op;

  Op op{};

  T operator()(const T &x, const T &y) const { return op(x, y); }

  static constexpr bool has_terminal = false;

  static constexpr T identity() {
    if constexpr (std::is_same_v<Op, Plus> || std::is_same_v<Op, LOr> ||
                  std::is_same_v<Op, LXor>) {
      return T(0);
    } else if constexpr (std::is_same_v<Op, Times> || std::is_same_v<Op, LAnd>) {
      return T(1);
    } else if constexpr (std::is_same_v<Op, Min>) {
      if constexpr (std::is_floating_point_v<T>) {
        return std::numeric_limits<T>::infinity();
      } else {
        return std::numeric_limits<T>::max();
      }
    } else if constexpr (std::is_same_v<Op, Max>) {
      if constexpr (std::is_floating_point_v<T>) {
        return -std::numeric_limits<T>::infinity();
      } else {
        return std::numeric_limits<T>::lowest();
      }
    } else {
      static_assert(std::is_same_v<Op, Plus>, "no identity known for this op");
    }
  }

  static constexpr bool is_terminal(const T &) { return false; }
};

/// Monoids with a terminal value allow reductions and dot products to stop
/// early (min reaching -inf, lor reaching true, ...). Kernels query the
/// triple (has_terminal, is_terminal, terminal_value): the dot kernel breaks
/// out of a row as soon as is_terminal(acc) holds — on every storage format,
/// not just CSR rows (see grb/mxv.hpp).
template <typename Op, typename T, typename Base = Monoid<Op, T>>
struct TerminalMonoid : Base {
  static constexpr bool has_terminal = true;

  static constexpr T terminal() {
    if constexpr (std::is_same_v<Op, Min>) {
      if constexpr (std::is_floating_point_v<T>) {
        return -std::numeric_limits<T>::infinity();
      } else {
        return std::numeric_limits<T>::lowest();
      }
    } else if constexpr (std::is_same_v<Op, Max>) {
      if constexpr (std::is_floating_point_v<T>) {
        return std::numeric_limits<T>::infinity();
      } else {
        return std::numeric_limits<T>::max();
      }
    } else if constexpr (std::is_same_v<Op, LOr>) {
      return T(1);
    } else if constexpr (std::is_same_v<Op, LAnd>) {
      return T(0);
    } else if constexpr (std::is_same_v<Op, Times>) {
      return T(0);
    } else {
      static_assert(std::is_same_v<Op, Min>, "no terminal known for this op");
    }
  }

  static constexpr bool is_terminal(const T &x) { return x == terminal(); }

  /// Canonical accessor name (GxB_Monoid_terminal analogue).
  static constexpr T terminal_value() { return terminal(); }
};

/// The `any` monoid: keeps the first value it sees; every value is terminal
/// (so there is no single terminal_value — is_terminal is the authority).
/// GraphBLAS leaves the choice nondeterministic; a sequential reduction
/// deterministically keeps the first, which is a valid instance — and the
/// parallel saxpy kernel preserves it by merging per-thread partials in
/// ascending frontier order (grb/mxv.hpp).
template <typename T>
struct AnyMonoid {
  using value_type = T;

  T operator()(const T &x, const T &) const { return x; }

  static constexpr bool has_terminal = true;
  static constexpr T identity() { return T(0); }
  static constexpr bool is_terminal(const T &) { return true; }
};

template <typename T>
using PlusMonoid = Monoid<Plus, T>;
template <typename T>
using TimesMonoid = TerminalMonoid<Times, T>;
template <typename T>
using MinMonoid = TerminalMonoid<Min, T>;
template <typename T>
using MaxMonoid = TerminalMonoid<Max, T>;
template <typename T>
using LOrMonoid = TerminalMonoid<LOr, T>;
template <typename T>
using LAndMonoid = TerminalMonoid<LAnd, T>;

// ---------------------------------------------------------------------------
// Semirings
// ---------------------------------------------------------------------------

/// Semiring ⊕.⊗ over element type T. MultOp may be positional; the kernels
/// dispatch on is_positional_v<MultOp> and pass coordinates instead of
/// values.
template <typename AddMonoid, typename MultOp>
struct Semiring {
  using add_monoid = AddMonoid;
  using mult_op = MultOp;
  using value_type = typename AddMonoid::value_type;

  AddMonoid add{};
  MultOp mult{};

  /// Multiply a(i,k) ⊗ b(k,j), where positional ops use the coordinates.
  template <typename TA, typename TB>
  value_type multiply(const TA &a, const TB &b, Index i, Index k,
                      Index j) const {
    if constexpr (is_positional_v<MultOp>) {
      (void)a;
      (void)b;
      return mult.template operator()<value_type>(i, k, j);
    } else {
      return mult(static_cast<value_type>(a), static_cast<value_type>(b));
    }
  }
};

// Semirings of Table II (and min.second, used by FastSV).
template <typename T>
using PlusTimes = Semiring<PlusMonoid<T>, Times>;  // "conventional"
template <typename T>
using AnySecondI = Semiring<AnyMonoid<T>, SecondI>;
template <typename T>
using AnyFirstI = Semiring<AnyMonoid<T>, FirstI>;
template <typename T>
using MinPlus = Semiring<MinMonoid<T>, Plus>;
template <typename T>
using PlusFirst = Semiring<PlusMonoid<T>, First>;
template <typename T>
using PlusSecond = Semiring<PlusMonoid<T>, Second>;
template <typename T>
using PlusPair = Semiring<PlusMonoid<T>, Pair>;
template <typename T>
using MinSecond = Semiring<MinMonoid<T>, Second>;
template <typename T>
using MinFirst = Semiring<MinMonoid<T>, First>;
template <typename T>
using LOrLAnd = Semiring<LOrMonoid<T>, LAnd>;
template <typename T>
using AnyPair = Semiring<AnyMonoid<T>, Pair>;
template <typename T>
using AnySecond = Semiring<AnyMonoid<T>, Second>;

}  // namespace grb

// grb/indexarray.hpp — width-erased index storage for container internals.
//
// The public API keeps 64-bit indices everywhere (grb::Index), but the CSR
// row-pointer / column-index arrays inside a Matrix are memory-bandwidth
// critical: on graphs whose dimensions and entry count fit below 2^31 —
// every graph in the bench suite — storing them as u32 halves index traffic.
// SuiteSparse:GraphBLAS retrofits the same 32/64 switch globally; here the
// width is a per-container property chosen at build/finalize time
// (select_index_width) and recorded in the storage itself:
//
//   - IndexArray: an owning buffer that is *either* a std::vector<uint32_t>
//     or a std::vector<uint64_t>. Element reads/writes go through
//     width-branching accessors (fine for cold maintenance paths); hot
//     kernels call as<I>() for a typed span after one dispatch_width() per
//     kernel invocation, so inner loops are monomorphic.
//   - IndexSpan: a width-erased read-only view with value-returning
//     iterators, the type Matrix::rowptr()/colidx() hand to generic callers
//     that only need operator[] / iteration (io, algorithms, tests).
//   - dispatch_width(w, f): calls f with a uint32_t{} or uint64_t{} tag;
//     kernels do `using I = decltype(tag)` and instantiate once per width.
//
// Widths never mix within one matrix: rowptr/colidx/hypersparse arrays share
// the container's single IndexWidth invariant.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <utility>
#include <vector>

#include "grb/config.hpp"
#include "grb/types.hpp"

namespace grb {
namespace detail {

/// Dispatch once per kernel call: invokes f with a value-initialized tag of
/// the active index type. Kernels recover it via `using I = decltype(tag)`.
template <typename F>
decltype(auto) dispatch_width(IndexWidth w, F &&f) {
  if (w == IndexWidth::u32) return f(std::uint32_t{});
  return f(std::uint64_t{});
}

/// The width a container's storage should use, honouring the Config
/// override. In auto mode: u32 iff max(nrows, ncols, nvals) stays below the
/// (test-adjustable) limit. Forcing u32 on an out-of-range container throws
/// Info::index_out_of_bounds — the spec'd overflow guard, never truncation.
inline IndexWidth select_index_width(Index nrows, Index ncols, Index nvals) {
  const Index magnitude = std::max(nrows, std::max(ncols, nvals));
  // u32_index_limit defines the modeled u32 domain (tests lower it to reach
  // the promotion boundary with tiny containers); it is clamped to the
  // physical 2^31 ceiling.
  const Index limit = std::min(config().u32_index_limit, kU32IndexLimit);
  switch (config().force_index_width) {
    case ForceIndexWidth::u32:
      require(magnitude < limit, Info::index_out_of_bounds,
              "force_index_width=u32: container dimensions or nvals exceed "
              "the u32 storage limit");
      return IndexWidth::u32;
    case ForceIndexWidth::u64: return IndexWidth::u64;
    default: break;
  }
  return magnitude < limit ? IndexWidth::u32 : IndexWidth::u64;
}

/// Non-throwing companion used where storage must exist before the guard
/// can sensibly fire (constructors, adopt): forced-u32 overflow falls back
/// to u64 here, and the throwing guard fires at the next build/finalize.
inline IndexWidth select_index_width_lenient(Index nrows, Index ncols,
                                             Index nvals) noexcept {
  if (config().force_index_width == ForceIndexWidth::u64) {
    return IndexWidth::u64;
  }
  const Index magnitude = std::max(nrows, std::max(ncols, nvals));
  const Index limit = std::min(config().u32_index_limit, kU32IndexLimit);
  return magnitude < limit ? IndexWidth::u32 : IndexWidth::u64;
}

/// Owning, width-erased index buffer. Exactly one of the two vectors is
/// active (the other stays empty); `width_` says which. All value traffic
/// through the erased interface is grb::Index (u64) — narrowing to u32 only
/// happens under the container's width invariant, which guarantees every
/// stored value fits.
class IndexArray {
 public:
  IndexArray() = default;
  explicit IndexArray(IndexWidth w) : width_(w) {}

  [[nodiscard]] IndexWidth width() const noexcept { return width_; }

  [[nodiscard]] std::size_t size() const noexcept {
    return width_ == IndexWidth::u32 ? v32_.size() : v64_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Heap bytes the active buffer's *elements* occupy (capacity ignored:
  /// this feeds the bytes-per-edge accounting, which wants the steady-state
  /// cost, and finalized containers are shrink_to_fit anyway).
  [[nodiscard]] std::size_t byte_size() const noexcept {
    return size() * index_width_bytes(width_);
  }

  void clear() noexcept {
    v32_.clear();
    v64_.clear();
  }

  void reserve(std::size_t n) {
    if (width_ == IndexWidth::u32) {
      v32_.reserve(n);
    } else {
      v64_.reserve(n);
    }
  }

  void shrink_to_fit() {
    v32_.shrink_to_fit();
    v64_.shrink_to_fit();
  }

  /// Reset to `n` copies of `x` at the current width.
  void assign(std::size_t n, Index x) {
    if (width_ == IndexWidth::u32) {
      assert(x < kU32IndexLimit);
      v64_.clear();
      v32_.assign(n, static_cast<std::uint32_t>(x));
    } else {
      v32_.clear();
      v64_.assign(n, x);
    }
  }

  void push_back(Index x) {
    if (width_ == IndexWidth::u32) {
      assert(x < kU32IndexLimit);
      v32_.push_back(static_cast<std::uint32_t>(x));
    } else {
      v64_.push_back(x);
    }
  }

  [[nodiscard]] Index operator[](std::size_t p) const noexcept {
    return width_ == IndexWidth::u32 ? Index{v32_[p]} : v64_[p];
  }

  [[nodiscard]] Index back() const noexcept {
    return width_ == IndexWidth::u32 ? Index{v32_.back()} : v64_.back();
  }

  void set(std::size_t p, Index x) noexcept {
    if (width_ == IndexWidth::u32) {
      assert(x < kU32IndexLimit);
      v32_[p] = static_cast<std::uint32_t>(x);
    } else {
      v64_[p] = x;
    }
  }

  /// Typed view for the hot kernels; I must match the active width (use
  /// dispatch_width on this array's width() to guarantee it).
  template <typename I>
  [[nodiscard]] std::span<const I> as() const noexcept {
    if constexpr (sizeof(I) == 4) {
      assert(width_ == IndexWidth::u32);
      return {reinterpret_cast<const I *>(v32_.data()), v32_.size()};
    } else {
      assert(width_ == IndexWidth::u64);
      return {reinterpret_cast<const I *>(v64_.data()), v64_.size()};
    }
  }

  /// Mutable typed view (in-place row sorts); same width contract as as<I>.
  template <typename I>
  [[nodiscard]] std::span<I> as_mut() noexcept {
    if constexpr (sizeof(I) == 4) {
      assert(width_ == IndexWidth::u32);
      return {reinterpret_cast<I *>(v32_.data()), v32_.size()};
    } else {
      assert(width_ == IndexWidth::u64);
      return {reinterpret_cast<I *>(v64_.data()), v64_.size()};
    }
  }

  /// Take ownership of a width-typed vector (zero-copy adopt).
  void adopt(std::vector<std::uint32_t> &&v) {
    width_ = IndexWidth::u32;
    v32_ = std::move(v);
    v64_.clear();
    v64_.shrink_to_fit();
  }
  void adopt(std::vector<std::uint64_t> &&v) {
    width_ = IndexWidth::u64;
    v64_ = std::move(v);
    v32_.clear();
    v32_.shrink_to_fit();
  }

  /// Convert the buffer to the target width in one pass. Widening is always
  /// safe; narrowing asserts the invariant (callers run select_index_width
  /// first, which throws on genuine overflow before any data moves).
  void convert(IndexWidth w) {
    if (w == width_) return;
    if (w == IndexWidth::u32) {
      std::vector<std::uint32_t> out;
      out.reserve(v64_.size());
      for (std::uint64_t x : v64_) {
        assert(x < kU32IndexLimit);
        out.push_back(static_cast<std::uint32_t>(x));
      }
      adopt(std::move(out));
    } else {
      std::vector<std::uint64_t> out(v32_.begin(), v32_.end());
      adopt(std::move(out));
    }
  }

  /// Copy out as u64 (for callers that splice index data into generic
  /// Index-typed buffers, e.g. the pending-merge path).
  [[nodiscard]] std::vector<Index> to_u64() const {
    if (width_ == IndexWidth::u32) {
      return std::vector<Index>(v32_.begin(), v32_.end());
    }
    return v64_;
  }

 private:
  IndexWidth width_ = IndexWidth::u64;
  std::vector<std::uint32_t> v32_;
  std::vector<std::uint64_t> v64_;
};

}  // namespace detail

/// Width-erased read-only view over an index array: what Matrix::rowptr()
/// and colidx() return. operator[] and the value-returning random-access
/// iterator widen every element to grb::Index, so generic callers (I/O,
/// algorithms, std::lower_bound, container constructors) compile unchanged;
/// width-aware kernels instead go through dispatch_width + as<I>() typed
/// spans and never pay the per-element branch.
class IndexSpan {
 public:
  class iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = Index;
    using difference_type = std::ptrdiff_t;
    using pointer = const Index *;
    using reference = Index;

    iterator() = default;
    iterator(const void *base, IndexWidth w, std::size_t pos) noexcept
        : base_(base), pos_(pos), width_(w) {}

    Index operator*() const noexcept { return load(pos_); }
    Index operator[](difference_type d) const noexcept {
      return load(pos_ + static_cast<std::size_t>(d));
    }

    iterator &operator++() noexcept { ++pos_; return *this; }
    iterator operator++(int) noexcept { auto t = *this; ++pos_; return t; }
    iterator &operator--() noexcept { --pos_; return *this; }
    iterator operator--(int) noexcept { auto t = *this; --pos_; return t; }
    iterator &operator+=(difference_type d) noexcept {
      pos_ += static_cast<std::size_t>(d);
      return *this;
    }
    iterator &operator-=(difference_type d) noexcept {
      pos_ -= static_cast<std::size_t>(d);
      return *this;
    }
    friend iterator operator+(iterator it, difference_type d) noexcept {
      it += d;
      return it;
    }
    friend iterator operator+(difference_type d, iterator it) noexcept {
      it += d;
      return it;
    }
    friend iterator operator-(iterator it, difference_type d) noexcept {
      it -= d;
      return it;
    }
    friend difference_type operator-(const iterator &a,
                                     const iterator &b) noexcept {
      return static_cast<difference_type>(a.pos_) -
             static_cast<difference_type>(b.pos_);
    }
    friend bool operator==(const iterator &a, const iterator &b) noexcept {
      return a.pos_ == b.pos_;
    }
    friend auto operator<=>(const iterator &a, const iterator &b) noexcept {
      return a.pos_ <=> b.pos_;
    }

   private:
    Index load(std::size_t p) const noexcept {
      if (width_ == IndexWidth::u32) {
        return static_cast<const std::uint32_t *>(base_)[p];
      }
      return static_cast<const std::uint64_t *>(base_)[p];
    }

    const void *base_ = nullptr;
    std::size_t pos_ = 0;
    IndexWidth width_ = IndexWidth::u64;
  };

  IndexSpan() = default;
  IndexSpan(const void *base, std::size_t size, IndexWidth w) noexcept
      : base_(base), size_(size), width_(w) {}
  explicit IndexSpan(const detail::IndexArray &a) noexcept
      : size_(a.size()), width_(a.width()) {
    base_ = width_ == IndexWidth::u32
                ? static_cast<const void *>(a.as<std::uint32_t>().data())
                : static_cast<const void *>(a.as<std::uint64_t>().data());
  }
  /// A plain u64 span views as an IndexSpan (keeps old call sites working).
  IndexSpan(std::span<const Index> s) noexcept  // NOLINT(google-explicit-constructor)
      : base_(s.data()), size_(s.size()), width_(IndexWidth::u64) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] IndexWidth width() const noexcept { return width_; }

  [[nodiscard]] Index operator[](std::size_t p) const noexcept {
    if (width_ == IndexWidth::u32) {
      return static_cast<const std::uint32_t *>(base_)[p];
    }
    return static_cast<const std::uint64_t *>(base_)[p];
  }
  [[nodiscard]] Index front() const noexcept { return (*this)[0]; }
  [[nodiscard]] Index back() const noexcept { return (*this)[size_ - 1]; }

  [[nodiscard]] iterator begin() const noexcept {
    return {base_, width_, 0};
  }
  [[nodiscard]] iterator end() const noexcept { return {base_, width_, size_}; }

  [[nodiscard]] IndexSpan subspan(std::size_t off, std::size_t count) const {
    const std::size_t w = index_width_bytes(width_);
    return {static_cast<const std::byte *>(base_) + off * w, count, width_};
  }

  /// Typed view; I must match the active width (see IndexArray::as).
  template <typename I>
  [[nodiscard]] std::span<const I> as() const noexcept {
    assert(sizeof(I) == index_width_bytes(width_));
    return {static_cast<const I *>(base_), size_};
  }

 private:
  const void *base_ = nullptr;
  std::size_t size_ = 0;
  IndexWidth width_ = IndexWidth::u64;
};

}  // namespace grb

// grb/mxm.hpp — matrix-matrix multiplication.
//
// Two kernels, chosen the way SuiteSparse does for the paper's algorithms:
//   - Gustavson (saxpy) kernel for C⟨M⟩ = A ⊕.⊗ B: row-at-a-time scatter into
//     a dense workspace. Its rows come out in first-touch order, so the
//     result is "jumbled" and the sort is deferred (lazy sort, §VI-A).
//   - dot kernel for C⟨M⟩ = A ⊕.⊗ Bᵀ (transposed descriptor on B): each
//     C(i,j) is a sparse dot product of row i of A and row j of B. With a
//     non-complemented mask only the mask's entries are computed — exactly
//     the triangle-counting step C⟨s(L)⟩ = L plus.pair Uᵀ; with a
//     complemented mask all surviving (i,j) pairs are computed — the
//     "pull" step of betweenness centrality.
// mxm_reduce_scalar is the fused mxm+reduce kernel the paper's §VI-B wishes
// for ("All that GraphBLAS needs is a fused kernel that does not explicitly
// instantiate the temporary matrix C") — used by the TC fusion ablation.
#pragma once

#include <cassert>
#include <vector>

#include "grb/mask.hpp"
#include "grb/parallel.hpp"
#include "grb/plan.hpp"
#include "grb/semiring.hpp"
#include "grb/trace.hpp"
#include "grb/transpose.hpp"

namespace grb {
namespace detail {

/// Gustavson (row-wise saxpy) kernel. Output rows are independent, so rows
/// are split into contiguous chunks of ~equal *flops* (Σ over a(i,k) of
/// |B(k,:)|, the true per-row cost on power-law graphs) and each chunk
/// scatters into its own pooled workspace. Within a row the scatter order is
/// exactly the serial order, and chunks concatenate back in row order, so
/// the result is identical for any thread count.
template <typename Z, typename SR, typename TA, typename TB, typename Pred>
Matrix<Z> mxm_gustavson(SR sr, const Matrix<TA> &a, const Matrix<TB> &b,
                        Pred &&allowed) {
  const Index m = a.nrows();
  const Index n = b.ncols();
  using AddM = typename SR::add_monoid;

  // Drain deferred work before forking: for_each_in_row is read-only
  // afterwards (threading contract in matrix.hpp).
  a.finish();
  b.finish();

  // Per-row flop prefix (counted in parallel, summed serially).
  std::vector<Index> flops(static_cast<std::size_t>(m) + 1, 0);
  {
    const int cparts = effective_threads() > 1 ? effective_threads() * 4 : 1;
    for_each_chunk(partition_even(m, cparts), [&](int, Index lo, Index hi) {
      for (Index i = lo; i < hi; ++i) {
        Index fl = 1;  // bias so empty rows still cost something
        a.for_each_in_row(
            i, [&](Index k, const TA &) { fl += b.row_nvals(k); });
        flops[i + 1] = fl;
      }
    });
    for (Index i = 0; i < m; ++i) flops[i + 1] += flops[i];
  }

  const int P = plan::team_size(flops[m]);
  std::vector<Index> bounds =
      partition_rows_by_work(std::span<const Index>(flops), P);
  const int nchunks = static_cast<int>(bounds.size()) - 1;

  std::vector<std::vector<Index>> crlen(static_cast<std::size_t>(nchunks));
  std::vector<std::vector<Index>> cci(static_cast<std::size_t>(nchunks));
  std::vector<std::vector<Z>> ccv(static_cast<std::size_t>(nchunks));

  for_each_chunk(bounds, [&](int c, Index lo, Index hi) {
    auto &pool = WorkspacePool<Z>::instance();
    SaxpyWorkspace<Z> ws = pool.acquire(n);
    auto &rlen = crlen[c];
    auto &ci = cci[c];
    auto &cv = ccv[c];
    rlen.reserve(static_cast<std::size_t>(hi - lo));
    for (Index i = lo; i < hi; ++i) {
      ws.touched.clear();
      a.for_each_in_row(i, [&](Index k, const TA &aik) {
        b.for_each_in_row(k, [&](Index j, const TB &bkj) {
          if (!allowed(i, j)) return;
          if (ws.mark[j]) {
            if constexpr (AddM::has_terminal) {
              if (AddM::is_terminal(ws.work[j])) return;
            }
            ws.work[j] = sr.add(ws.work[j], sr.multiply(aik, bkj, i, k, j));
          } else {
            ws.mark[j] = 1;
            ws.work[j] = sr.multiply(aik, bkj, i, k, j);
            ws.touched.push_back(j);
          }
        });
      });
      for (Index j : ws.touched) {
        ci.push_back(j);
        cv.push_back(ws.work[j]);
        ws.mark[j] = 0;
      }
      rlen.push_back(static_cast<Index>(ws.touched.size()));
    }
    ws.touched.clear();
    pool.release(std::move(ws));
  });

  // Stitch per-chunk row lengths into the row pointer (row i spans
  // [rp[i], rp[i+1])) and concatenate the chunk buffers in row order.
  std::vector<Index> rp(static_cast<std::size_t>(m) + 1, 0);
  {
    Index at = 0;
    Index i = 0;
    for (int c = 0; c < nchunks; ++c) {
      for (Index len : crlen[c]) {
        rp[i] = at;
        at += len;
        ++i;
      }
    }
    rp[m] = at;
  }
  std::vector<Index> ci;
  std::vector<Z> cv;
  concat_chunks(cci, ccv, ci, cv);
  Matrix<Z> t(m, n);
  // First-touch order is not column order: the result is jumbled and the
  // sort is left pending (Matrix::adopt_csr sorts eagerly if lazy sort is
  // disabled in Config).
  t.adopt_csr(std::move(rp), std::move(ci), std::move(cv), /*jumbled=*/true);
  return t;
}

/// Sorted-sparse-row dot product: ⊕_k combine(a(i,k), b(j,k)). Generic over
/// the two operands' index widths (IA/IB may differ — a u32 snapshot can
/// multiply against a freshly-adopted u64 intermediate); the comparisons
/// promote to 64-bit, so the merge walk is width-agnostic.
template <typename Z, typename SR, typename IA, typename IB, typename TA,
          typename TB>
bool row_dot(SR sr, std::span<const IA> acol, std::span<const TA> aval,
             std::span<const IB> bcol, std::span<const TB> bval, Index i,
             Index j, Z &out) {
  using AddM = typename SR::add_monoid;
  std::size_t p = 0;
  std::size_t q = 0;
  bool found = false;
  Z acc{};
  while (p < acol.size() && q < bcol.size()) {
    if (acol[p] < bcol[q]) {
      ++p;
    } else if (bcol[q] < acol[p]) {
      ++q;
    } else {
      Z prod = sr.multiply(aval[p], bval[q], i, acol[p], j);
      if (!found) {
        found = true;
        acc = prod;
      } else {
        acc = sr.add(acc, prod);
      }
      if constexpr (AddM::has_terminal) {
        if (AddM::is_terminal(acc)) break;
      }
      ++p;
      ++q;
    }
  }
  if (found) out = acc;
  return found;
}

/// Dot kernel for C = A ⊕.⊗ Bᵀ: candidate (i,j) pairs come from the mask
/// (non-complemented) or from the full cross product filtered by the mask.
template <typename Z, typename SR, typename TA, typename TB, typename MaskT>
Matrix<Z> mxm_dot(SR sr, const Matrix<TA> &a, const Matrix<TB> &b,
                  const MaskT &mask, const Descriptor &d,
                  const plan::ExecPlan &pl) {
  const Index m = a.nrows();
  const Index n = b.nrows();  // logical Bᵀ has b.nrows() columns
  using AddM = typename SR::add_monoid;

  // The first operand's format is a plan decision (bitmap reduces each dot
  // to O(|B row|) probes — the §VI-A effect — unless A and B alias and must
  // share one format). The entry point already converted both operands per
  // the plan; this kernel only asserts what it was promised.
  const bool a_bitmap = pl.a_format == plan::MatFormat::bitmap;
  assert(a.format() == (a_bitmap ? Matrix<TA>::Format::bitmap
                                 : Matrix<TA>::Format::csr));
  assert(b.format() == Matrix<TB>::Format::csr);
  const std::uint8_t *apres = a_bitmap ? a.bitmap_present() : nullptr;
  const TA *avals = a_bitmap ? a.dense_values() : nullptr;

  // Each output row is independent: rows fill their own buffer in parallel
  // and are concatenated into CSR afterwards.
  std::vector<std::vector<std::pair<Index, Z>>> rows(
      static_cast<std::size_t>(m));

  // One nested width dispatch per call: the merge walks below run on
  // monomorphic typed spans (A and B may carry different widths — row_dot
  // promotes per element).
  dispatch_width(a_bitmap ? b.index_width() : a.index_width(), [&](auto atag) {
    using IA = decltype(atag);
    dispatch_width(b.index_width(), [&](auto btag) {
      using IB = decltype(btag);
      auto arp = a_bitmap ? std::span<const IA>{} : a.rowptr().template as<IA>();
      auto acx = a_bitmap ? std::span<const IA>{} : a.colidx().template as<IA>();
      auto avx = a_bitmap ? std::span<const TA>{} : a.values();
      auto brp = b.rowptr().template as<IB>();
      auto bcx = b.colidx().template as<IB>();
      auto bvx = b.values();
      auto arow_c = [&](Index i) {
        return acx.subspan(arp[i], arp[i + 1] - arp[i]);
      };
      auto arow_v = [&](Index i) {
        return avx.subspan(arp[i], arp[i + 1] - arp[i]);
      };
      auto brow_c = [&](Index j) {
        return bcx.subspan(brp[j], brp[j + 1] - brp[j]);
      };
      auto brow_v = [&](Index j) {
        return bvx.subspan(brp[j], brp[j + 1] - brp[j]);
      };

      auto try_pair = [&](std::vector<std::pair<Index, Z>> &rowbuf, Index i,
                          Index j) {
        Z out{};
        bool found = false;
        if (a_bitmap) {
          const std::size_t base = static_cast<std::size_t>(i) * a.ncols();
          auto bc = brow_c(j);
          auto bv = brow_v(j);
          Z acc{};
          for (std::size_t p = 0; p < bc.size(); ++p) {
            const Index k = bc[p];
            if (!apres[base + k]) continue;
            Z prod = sr.multiply(avals[base + k], bv[p], i, k, j);
            if (!found) {
              found = true;
              acc = prod;
            } else {
              acc = sr.add(acc, prod);
            }
            if constexpr (AddM::has_terminal) {
              if (AddM::is_terminal(acc)) break;
            }
          }
          out = acc;
        } else {
          found = row_dot<Z>(sr, arow_c(i), arow_v(i), brow_c(j), brow_v(j), i,
                             j, out);
        }
        if (found) rowbuf.emplace_back(j, out);
      };

      bool masked_candidates = false;
      if constexpr (has_mask_v<MaskT>) {
        masked_candidates = !d.mask_complement;
        // Complete any deferred work before the parallel region: probing a
        // jumbled/pending mask would otherwise race on its lazy mutation.
        mask.wait();
      }
      const int nparts =
          effective_threads() > 1 ? effective_threads() * 4 : 1;
      if (masked_candidates) {
        if constexpr (has_mask_v<MaskT>) {
          // Candidates are exactly the mask's entries (row-major sorted). Rows
          // are chunked by mask nnz — for triangle counting the mask is L
          // itself, so this is exactly the nnz balance the hub rows need.
          mask.ensure_sorted();
          mask.finish();
          std::vector<Index> bounds =
              (nparts > 1 && mask.nvals() >= kParallelGrain)
                  ? partition_rows_by_work(
                        m, nparts,
                        [&](Index i) { return mask.row_nvals(i) + 1; })
                  : partition_even(m, 1);
          for_each_chunk(bounds, [&](int, Index lo, Index hi) {
            for (Index i = lo; i < hi; ++i) {
              mask.for_each_in_row(i, [&](Index j, const auto &mv) {
                if (!d.mask_structural && mv == 0) return;
                try_pair(rows[i], i, j);
              });
            }
          });
        }
      } else {
        // Complemented mask (or none): all surviving pairs — the bottom-up
        // shape. Every row probes all n candidates, but the dot cost still
        // scales with |A(i,:)|, so balance on that when A is sparse.
        std::vector<Index> bounds;
        if (nparts > 1 && m >= 2) {
          if (!a_bitmap) {
            bounds = partition_rows_by_work(m, nparts, [&](Index i) {
              return static_cast<Index>(arp[i + 1] - arp[i]) + n / 16 + 1;
            });
          } else {
            bounds = partition_even(m, nparts);
          }
        } else {
          bounds = partition_even(m, 1);
        }
        for_each_chunk(bounds, [&](int, Index lo, Index hi) {
          for (Index i = lo; i < hi; ++i) {
            for (Index j = 0; j < n; ++j) {
              if (!mmask_test(mask, i, j, d)) continue;
              try_pair(rows[i], i, j);
            }
          }
        });
      }
    });
  });

  std::vector<Index> rp(static_cast<std::size_t>(m) + 1, 0);
  std::vector<Index> ci;
  std::vector<Z> cv;
  for (Index i = 0; i < m; ++i) {
    for (const auto &[j, x] : rows[i]) {
      ci.push_back(j);
      cv.push_back(x);
    }
    rp[i + 1] = static_cast<Index>(ci.size());
  }
  Matrix<Z> t(m, n);
  t.adopt_csr(std::move(rp), std::move(ci), std::move(cv), false);
  return t;
}

}  // namespace detail

/// C⟨M⟩ ⊙= A ⊕.⊗ B (with optional transposed inputs via the descriptor).
template <typename W, typename MaskT, typename Accum, typename SR, typename TA,
          typename TB>
void mxm(Matrix<W> &c, const MaskT &mask, Accum accum, SR sr,
         const Matrix<TA> &a, const Matrix<TB> &b,
         const Descriptor &d = desc::DEFAULT) {
  using Z = typename SR::value_type;
  if (d.transpose_a) {
    Matrix<TA> at = transposed(a);
    Descriptor d2 = d;
    d2.transpose_a = false;
    mxm(c, mask, accum, sr, at, b, d2);
    return;
  }
  trace::ScopedSpan sp(trace::SpanKind::mxm);
  sp.set_in_nvals(static_cast<std::uint64_t>(a.nvals()) + b.nvals());
  const Index inner = d.transpose_b ? b.ncols() : b.nrows();
  const Index n = d.transpose_b ? b.nrows() : b.ncols();
  detail::check_same_size(a.ncols(), inner, "mxm: inner dimension mismatch");
  detail::check_same_size(c.nrows(), a.nrows(), "mxm: output row mismatch");
  detail::check_same_size(c.ncols(), n, "mxm: output column mismatch");
  detail::check_matrix_mask(mask, c.nrows(), c.ncols());

  // Describe the op and plan kernel + operand formats: dot vs Gustavson,
  // bitmap vs CSR first operand, and whether the mask is worth a bitmap
  // conversion for O(1) probes (the BC mask ¬s(P) grows dense as the
  // traversal proceeds).
  plan::OpDesc od;
  od.op = plan::OpKind::mxm;
  od.a_rows = a.nrows();
  od.a_cols = a.ncols();
  od.a_nvals = a.nvals();
  od.b_nvals = b.nvals();
  od.a_width = a.index_width();
  od.b_width = b.index_width();
  od.transpose_b = d.transpose_b;
  od.has_terminal = SR::add_monoid::has_terminal;
  if constexpr (has_mask_v<MaskT>) {
    od.masked = true;
    od.mask_nvals = mask.nvals();
    od.mask_complement = d.mask_complement;
    od.mask_structural = d.mask_structural;
  }
  if constexpr (std::is_same_v<TA, TB>) {
    od.operands_aliased =
        static_cast<const void *>(&a) == static_cast<const void *>(&b);
  }
  const auto pl = plan::make_plan(od);
  sp.set_plan(pl);

  // Apply the planned mask conversion, then drain the mask's deferred work:
  // the kernels probe it from inside parallel regions, where a lazy sort
  // would be a race.
  if constexpr (has_mask_v<MaskT>) {
    plan::prepare(mask, pl.mask_format);
    mask.wait();
  }

  Matrix<Z> t(0, 0);
  if (d.transpose_b) {
    if constexpr (has_mask_v<MaskT>) {
      // Prepare both operands per the plan; the dot kernel asserts this.
      if (pl.a_format == plan::MatFormat::bitmap) {
        plan::prepare(a, plan::MatFormat::bitmap);
      } else {
        a.ensure_sorted();
        plan::prepare(a, plan::MatFormat::csr);
      }
      b.ensure_sorted();
      plan::prepare(b, pl.b_format);
      t = detail::mxm_dot<Z>(sr, a, b, mask, d, pl);
    } else {
      // No mask: materializing Bᵀ and running Gustavson beats n² dots.
      Matrix<TB> bt = transposed(b);
      t = detail::mxm_gustavson<Z>(sr, a, bt,
                                   [](Index, Index) { return true; });
    }
  } else {
    t = detail::mxm_gustavson<Z>(sr, a, b, [&](Index i, Index j) {
      return detail::mmask_test(mask, i, j, d);
    });
  }
  sp.set_out_nvals(t.nvals());
  detail::write_result(c, std::move(t), mask, accum, d, /*t_is_masked=*/true);
}

/// Fused C⟨M⟩ = A ⊕.⊗ Bᵀ followed by reduce(C) to a scalar, without
/// materializing C (§VI-B's missing fused kernel for triangle counting).
template <typename S, typename ReduceMonoid, typename MaskT, typename SR,
          typename TA, typename TB>
S mxm_reduce_scalar(ReduceMonoid rm, const MaskT &mask, SR sr,
                    const Matrix<TA> &a, const Matrix<TB> &b,
                    const Descriptor &d = desc::DEFAULT) {
  using Z = typename SR::value_type;
  detail::require(d.transpose_b, Info::not_implemented,
                  "mxm_reduce_scalar: only the dot (transposed B) form");
  trace::ScopedSpan sp(trace::SpanKind::mxm_reduce);
  sp.set_in_nvals(static_cast<std::uint64_t>(a.nvals()) + b.nvals());
  // Both operands walk rows via rowptr(); route the CSR materialization
  // through the planner so hypersparse expansion is counted, never silent.
  plan::OpDesc od;
  od.op = plan::OpKind::mxm;
  od.a_rows = a.nrows();
  od.a_cols = a.ncols();
  od.a_nvals = a.nvals();
  od.b_nvals = b.nvals();
  od.a_width = a.index_width();
  od.b_width = b.index_width();
  od.transpose_b = true;
  if constexpr (has_mask_v<MaskT>) {
    od.masked = true;
    od.mask_nvals = mask.nvals();
    od.mask_complement = d.mask_complement;
    od.mask_structural = d.mask_structural;
  }
  if constexpr (std::is_same_v<TA, TB>) {
    od.operands_aliased =
        static_cast<const void *>(&a) == static_cast<const void *>(&b);
  }
  sp.set_plan(plan::make_plan(od));
  a.ensure_sorted();
  b.ensure_sorted();
  plan::prepare(a, plan::MatFormat::csr);
  plan::prepare(b, plan::MatFormat::csr);
  S total = static_cast<S>(ReduceMonoid::identity());
  // One nested width dispatch; the dot walks below run on typed spans.
  detail::dispatch_width(a.index_width(), [&](auto atag) {
    using IA = decltype(atag);
    detail::dispatch_width(b.index_width(), [&](auto btag) {
      using IB = decltype(btag);
      auto arp = a.rowptr().template as<IA>();
      auto acx = a.colidx().template as<IA>();
      auto avx = a.values();
      auto brp = b.rowptr().template as<IB>();
      auto bcx = b.colidx().template as<IB>();
      auto bvx = b.values();
      auto do_pair = [&](Index i, Index j) {
        Z out{};
        if (detail::row_dot<Z>(sr, acx.subspan(arp[i], arp[i + 1] - arp[i]),
                               avx.subspan(arp[i], arp[i + 1] - arp[i]),
                               bcx.subspan(brp[j], brp[j + 1] - brp[j]),
                               bvx.subspan(brp[j], brp[j + 1] - brp[j]), i, j,
                               out)) {
          total = static_cast<S>(rm(total, static_cast<S>(out)));
        }
      };
      if constexpr (has_mask_v<MaskT>) {
        if (!d.mask_complement) {
          mask.ensure_sorted();
          for (Index i = 0; i < a.nrows(); ++i) {
            mask.for_each_in_row(i, [&](Index j, const auto &mv) {
              if (!d.mask_structural && mv == 0) return;
              do_pair(i, j);
            });
          }
          return;
        }
      }
      for (Index i = 0; i < a.nrows(); ++i) {
        for (Index j = 0; j < b.nrows(); ++j) {
          if (!detail::mmask_test(mask, i, j, d)) continue;
          do_pair(i, j);
        }
      }
    });
  });
  return total;
}

}  // namespace grb

// grb/transpose.hpp — matrix transposition.
//
// The internal helper produces the explicit transpose in CSR with naturally
// sorted rows in O(m + n + nnz): scanning A in row-major order appends to
// each output row in ascending source-row order.
#pragma once

#include <vector>

#include "grb/mask.hpp"

namespace grb {
namespace detail {

template <typename T>
Matrix<T> transpose_impl(const Matrix<T> &a) {
  const Index m = a.nrows();
  const Index n = a.ncols();
  std::vector<Index> rp(static_cast<std::size_t>(n) + 1, 0);
  a.for_each([&](Index, Index j, const T &) { ++rp[j + 1]; });
  for (Index j = 0; j < n; ++j) rp[j + 1] += rp[j];
  std::vector<Index> next(rp.begin(), rp.end() - 1);
  std::vector<Index> ci(a.nvals());
  std::vector<T> cv(a.nvals());
  a.for_each([&](Index i, Index j, const T &x) {
    ci[next[j]] = i;
    cv[next[j]] = x;
    ++next[j];
  });
  Matrix<T> at(n, m);
  at.adopt_csr(std::move(rp), std::move(ci), std::move(cv), /*jumbled=*/false);
  return at;
}

}  // namespace detail

/// C⟨M⟩ ⊙= Aᵀ (or A itself under desc.transpose_a, matching the C API where
/// GrB_transpose with INP0 transposed is a masked copy).
template <typename W, typename MaskT, typename Accum, typename A>
void transpose(Matrix<W> &c, const MaskT &mask, Accum accum, const Matrix<A> &a,
               const Descriptor &d = desc::DEFAULT) {
  Matrix<A> t = d.transpose_a ? a : detail::transpose_impl(a);
  if constexpr (std::is_same_v<A, W>) {
    detail::write_result(c, std::move(t), mask, accum, d);
  } else {
    Matrix<W> tw(t.nrows(), t.ncols());
    std::vector<Index> rp(t.rowptr().begin(), t.rowptr().end());
    std::vector<Index> ci(t.colidx().begin(), t.colidx().end());
    std::vector<W> cv;
    cv.reserve(t.nvals());
    for (const A &x : t.values()) cv.push_back(static_cast<W>(x));
    tw.adopt_csr(std::move(rp), std::move(ci), std::move(cv), t.jumbled());
    detail::write_result(c, std::move(tw), mask, accum, d);
  }
}

/// Convenience: return Aᵀ directly.
template <typename T>
Matrix<T> transposed(const Matrix<T> &a) {
  return detail::transpose_impl(a);
}

}  // namespace grb

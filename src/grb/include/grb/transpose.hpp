// grb/transpose.hpp — matrix transposition.
//
// The internal helper produces the explicit transpose in CSR with naturally
// sorted rows in O(m + n + nnz): scanning A in row-major order appends to
// each output row in ascending source-row order. The parallel form is a
// bucket counting sort (grb/parallel.hpp): source rows split into
// nnz-balanced chunks, each chunk counts per-column, a prefix pass gives
// every (chunk, column) pair its own disjoint output range, and the scatter
// pass writes with no synchronization. Chunk ranges within a column follow
// chunk (= source row) order, so the output is byte-identical to the serial
// scan for any thread count.
#pragma once

#include <vector>

#include "grb/mask.hpp"
#include "grb/parallel.hpp"
#include "grb/trace.hpp"

namespace grb {
namespace detail {

template <typename T>
Matrix<T> transpose_impl(const Matrix<T> &a) {
  const Index m = a.nrows();
  const Index n = a.ncols();
  trace::ScopedSpan sp(trace::SpanKind::transpose);
  sp.set_in_nvals(a.nvals());
  sp.set_out_nvals(a.nvals());
  a.finish();
  const bool csr = a.format() == Matrix<T>::Format::csr;
  const Index nz = a.nvals();

  int nthreads = effective_threads();
  // The parallel sort keeps one count row per chunk: P*(n+1) extra index
  // slots. Gate on that staying proportional to the nnz being moved.
  if (!csr || nz < kParallelGrain ||
      static_cast<std::size_t>(nthreads) * (static_cast<std::size_t>(n) + 1) >
          4 * static_cast<std::size_t>(nz) + 1024) {
    nthreads = 1;
  }
  sp.set_threads(nthreads);

  if (nthreads <= 1) {
    std::vector<Index> rp(static_cast<std::size_t>(n) + 1, 0);
    a.for_each([&](Index, Index j, const T &) { ++rp[j + 1]; });
    for (Index j = 0; j < n; ++j) rp[j + 1] += rp[j];
    std::vector<Index> next(rp.begin(), rp.end() - 1);
    std::vector<Index> ci(a.nvals());
    std::vector<T> cv(a.nvals());
    a.for_each([&](Index i, Index j, const T &x) {
      ci[next[j]] = i;
      cv[next[j]] = x;
      ++next[j];
    });
    Matrix<T> at(n, m);
    at.adopt_csr(std::move(rp), std::move(ci), std::move(cv),
                 /*jumbled=*/false);
    return at;
  }

  std::vector<Index> rp(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Index> ci(static_cast<std::size_t>(nz));
  std::vector<T> cv(static_cast<std::size_t>(nz));
  // One width dispatch: both counting passes and the scatter walk typed
  // spans. Chunk boundaries come from the 64-bit partitioner, so the
  // (chunk, column) ranges — and therefore the output bytes — are identical
  // for either width.
  dispatch_width(a.index_width(), [&](auto tag) {
    using I = decltype(tag);
    auto arp = a.rowptr().template as<I>();
    auto acx = a.colidx().template as<I>();
    auto avx = a.values();
    std::vector<Index> bounds = partition_rows_by_work(arp, nthreads);
    const int nchunks = static_cast<int>(bounds.size()) - 1;

    // Pass 1: per-chunk per-column counts.
    std::vector<std::vector<Index>> count(
        static_cast<std::size_t>(nchunks),
        std::vector<Index>(static_cast<std::size_t>(n), 0));
    for_each_chunk(bounds, [&](int c, Index lo, Index hi) {
      auto &cnt = count[c];
      for (std::size_t p = arp[lo]; p < arp[hi]; ++p) ++cnt[acx[p]];
    });

    // Column starts, then per-(chunk, column) offsets: chunk c's slice of
    // column j begins after all earlier chunks' entries for j.
    for (Index j = 0; j < n; ++j) {
      Index total = 0;
      for (int c = 0; c < nchunks; ++c) total += count[c][j];
      rp[j + 1] = rp[j] + total;
    }
    std::vector<std::vector<Index>> off(static_cast<std::size_t>(nchunks));
    for (int c = 0; c < nchunks; ++c) {
      off[c].resize(static_cast<std::size_t>(n));
    }
    for_each_chunk(partition_even(n, nchunks), [&](int, Index lo, Index hi) {
      for (Index j = lo; j < hi; ++j) {
        Index at = rp[j];
        for (int c = 0; c < nchunks; ++c) {
          off[c][j] = at;
          at += count[c][j];
        }
      }
    });

    // Pass 2: scatter — every (chunk, column) range is disjoint.
    for_each_chunk(bounds, [&](int c, Index lo, Index hi) {
      auto &nx = off[c];
      for (Index i = lo; i < hi; ++i) {
        for (std::size_t p = arp[i]; p < arp[i + 1]; ++p) {
          const Index j = acx[p];
          ci[nx[j]] = i;
          cv[nx[j]] = avx[p];
          ++nx[j];
        }
      }
    });
  });

  Matrix<T> at(n, m);
  at.adopt_csr(std::move(rp), std::move(ci), std::move(cv), /*jumbled=*/false);
  return at;
}

}  // namespace detail

/// C⟨M⟩ ⊙= Aᵀ (or A itself under desc.transpose_a, matching the C API where
/// GrB_transpose with INP0 transposed is a masked copy).
template <typename W, typename MaskT, typename Accum, typename A>
void transpose(Matrix<W> &c, const MaskT &mask, Accum accum, const Matrix<A> &a,
               const Descriptor &d = desc::DEFAULT) {
  Matrix<A> t = d.transpose_a ? a : detail::transpose_impl(a);
  if constexpr (std::is_same_v<A, W>) {
    detail::write_result(c, std::move(t), mask, accum, d);
  } else {
    Matrix<W> tw(t.nrows(), t.ncols());
    std::vector<Index> rp(t.rowptr().begin(), t.rowptr().end());
    std::vector<Index> ci(t.colidx().begin(), t.colidx().end());
    std::vector<W> cv;
    cv.reserve(t.nvals());
    for (const A &x : t.values()) cv.push_back(static_cast<W>(x));
    tw.adopt_csr(std::move(rp), std::move(ci), std::move(cv), t.jumbled());
    detail::write_result(c, std::move(tw), mask, accum, d);
  }
}

/// Convenience: return Aᵀ directly.
template <typename T>
Matrix<T> transposed(const Matrix<T> &a) {
  return detail::transpose_impl(a);
}

}  // namespace grb
